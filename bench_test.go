// Package repro's top-level benchmarks regenerate each figure of the
// paper's evaluation at the Quick scale, reporting the modelled figures of
// merit as custom benchmark metrics. One benchmark exists per paper figure
// plus one per ablation; `cmd/figures` prints the full tables at the
// reproduction scale.
package repro

import (
	"strings"
	"testing"
	"time"

	"repro/internal/apps/heat"
	"repro/internal/apps/miniamr"
	"repro/internal/apps/streaming"
	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/fabric"
	"repro/internal/figures"
	"repro/internal/vclock"
)

// reportSeries registers each (series, x) value of a figure as a metric.
func reportSeries(b *testing.B, f figures.Figure) {
	b.Helper()
	for _, s := range f.Series {
		name := strings.ReplaceAll(s.Name, " ", "_")
		for i, y := range s.Y {
			if i < len(f.X) {
				b.ReportMetric(y, name+"@"+trim(f.X[i]))
			}
		}
	}
}

func trim(x float64) string {
	if x == float64(int64(x)) {
		return itoa(int64(x))
	}
	return "x"
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func benchFigure(b *testing.B, id string) {
	gen := figures.All()[id]
	var last figures.Figure
	for i := 0; i < b.N; i++ {
		last = gen(figures.Opts{Preset: figures.Quick})
	}
	reportSeries(b, last)
}

// benchAllFigures regenerates the complete Quick figure set through the
// exp engine at the given host-worker bound — the repo's hot path, and
// the headline measurement for the engine's host-parallel speedup.
func benchAllFigures(b *testing.B, workers int) {
	gens := figures.All()
	for i := 0; i < b.N; i++ {
		for _, id := range figures.IDs() {
			gens[id](figures.Opts{
				Preset: figures.Quick,
				Exec:   exp.Options{Workers: workers},
			})
		}
	}
}

func BenchmarkAllFiguresSequential(b *testing.B) { benchAllFigures(b, 1) }
func BenchmarkAllFiguresParallel(b *testing.B)   { benchAllFigures(b, 0) }

func BenchmarkFig09GaussSeidelScaling(b *testing.B)   { benchFigure(b, "9") }
func BenchmarkFig10GaussSeidelBlocksize(b *testing.B) { benchFigure(b, "10") }
func BenchmarkFig11MiniAMRScaling(b *testing.B)       { benchFigure(b, "11") }
func BenchmarkFig12MiniAMRVariables(b *testing.B)     { benchFigure(b, "12") }
func BenchmarkFig13aStreamingMN4(b *testing.B)        { benchFigure(b, "13a") }
func BenchmarkFig13bStreamingCTEAMD(b *testing.B)     { benchFigure(b, "13b") }
func BenchmarkAblationMPILockContention(b *testing.B) { benchFigure(b, "lock") }
func BenchmarkAblationPollingPeriod(b *testing.B)     { benchFigure(b, "poll") }
func BenchmarkAblationRMANotification(b *testing.B)   { benchFigure(b, "rma") }
func BenchmarkAblationOnready(b *testing.B)           { benchFigure(b, "onready") }

// BenchmarkCourierDelivery measures the fabric courier hot path on the
// host — one uninstrumented Send through injection and delivery — in the
// shape the protocol models drive it: a window of in-flight messages per
// wakeup, so the couriers' batched draining is exercised. ns/op and
// allocs/op here are the per-message host cost of the simulator's most
// executed path; the committed allocation budget lives in
// internal/fabric's TestCourierAllocBudget.
func BenchmarkCourierDelivery(b *testing.B) {
	const window = 64
	clk := vclock.NewVirtual()
	f := fabric.New(clk, fabric.NewTopology(2, 1), fabric.ProfileOmniPath())
	delivered := make(chan struct{}, window)
	f.Register(1, fabric.ClassMPI, func(m *fabric.Message) { delivered <- struct{}{} })
	send := func(n int) {
		for i := 0; i < n; i++ {
			m := fabric.NewMessage()
			m.Src, m.Dst, m.Class, m.Size = 0, 1, fabric.ClassMPI, 256
			f.Send(m)
		}
		for i := 0; i < n; i++ {
			<-delivered
		}
	}
	send(window) // warm up: courier spawn, queue growth, pool fill
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += window {
		n := window
		if b.N-done < n {
			n = b.N - done
		}
		send(n)
	}
	b.StopTimer()
	f.Close()
}

// BenchmarkGaussSeidelTAGASPI measures one mid-size hybrid Gauss-Seidel
// run end to end (host time), reporting modelled throughput.
func BenchmarkGaussSeidelTAGASPI(b *testing.B) {
	p := heat.Params{Rows: 512, Cols: 1024, Timesteps: 8, BlockRows: 32, BlockCols: 32}
	var thr float64
	for i := 0; i < b.N; i++ {
		cfg := cluster.Config{
			Nodes: 4, RanksPerNode: 2, CoresPerRank: 4,
			Profile:     fabric.ProfileOmniPath(),
			WithTasking: true, WithTAGASPI: true,
			TAGASPIPoll: 5 * time.Microsecond,
		}
		res := cluster.Run(cfg, func(env *cluster.Env) { heat.RunTAGASPI(env, p) })
		thr = p.Updates() / res.Elapsed.Seconds() / 1e9
	}
	b.ReportMetric(thr, "GUpd/s")
}

// BenchmarkStreamingTAGASPI measures the Streaming pipeline on the
// InfiniBand profile.
func BenchmarkStreamingTAGASPI(b *testing.B) {
	p := streaming.Params{Chunks: 8, ChunkElems: 16 << 10, BlockSize: 512}
	var thr float64
	for i := 0; i < b.N; i++ {
		cfg := cluster.Config{
			Nodes: 4, RanksPerNode: 1, CoresPerRank: 8,
			Profile:     fabric.ProfileInfiniBand(),
			WithTasking: true, WithTAGASPI: true,
			TAGASPIPoll: time.Microsecond,
		}
		res := cluster.Run(cfg, func(env *cluster.Env) { streaming.RunTAGASPI(env, p) })
		thr = p.Elements() / res.Elapsed.Seconds() / 1e9
	}
	b.ReportMetric(thr, "GElem/s")
}

// BenchmarkMiniAMRTAGASPI measures the AMR proxy end to end.
func BenchmarkMiniAMRTAGASPI(b *testing.B) {
	p := miniamr.Params{
		Grid: [3]int{2, 2, 2}, Cells: 4, Vars: 10,
		Steps: 10, RefineEvery: 5, MaxLevel: 1, Radius: 0.5,
	}
	cfg := cluster.Config{
		Nodes: 2, RanksPerNode: 2, CoresPerRank: 4,
		Profile:     fabric.ProfileOmniPath(),
		WithTasking: true, WithTAMPI: true, WithTAGASPI: true,
		TAMPIPoll: 5 * time.Microsecond, TAGASPIPoll: 5 * time.Microsecond,
	}
	epochs := p.Epochs(4)
	var thr float64
	for i := 0; i < b.N; i++ {
		res := cluster.Run(cfg, func(env *cluster.Env) { miniamr.RunTAGASPI(env, p, epochs) })
		thr = miniamr.Work(p, epochs) / res.Elapsed.Seconds() / 1e9
	}
	b.ReportMetric(thr, "GUpd/s")
}
