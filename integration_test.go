package repro

import (
	"testing"

	"repro/internal/figures"
)

// The integration tests assert the paper's qualitative claims on the
// Quick-preset figure reproductions: who wins, and in which regime. The
// absolute numbers live in EXPERIMENTS.md; these tests pin the shape.

func TestHeadlineFig10TAGASPIWinsAcrossBlockSizes(t *testing.T) {
	f := figures.Fig10GaussSeidelBlocksize(figures.Opts{Preset: figures.Quick})
	series := seriesMap(f)
	for i := range f.X {
		if series["TAGASPI"][i] < series["TAMPI"][i] {
			t.Errorf("block %v: TAGASPI (%.3f) below TAMPI (%.3f)",
				f.X[i], series["TAGASPI"][i], series["TAMPI"][i])
		}
	}
}

func TestHeadlineFig13bTAGASPIWinsOnInfiniBand(t *testing.T) {
	f := figures.Fig13bStreamingInfiniBand(figures.Opts{Preset: figures.Quick})
	series := seriesMap(f)
	// At the small block size, TAMPI collapses on the MPI lock while
	// TAGASPI stays close to (or above) MPI-only.
	small := 0
	if series["TAGASPI"][small] < 2*series["TAMPI"][small] {
		t.Errorf("small blocks: TAGASPI (%.3f) not well above TAMPI (%.3f)",
			series["TAGASPI"][small], series["TAMPI"][small])
	}
}

func TestHeadlineRMANotificationRoundTrip(t *testing.T) {
	f := figures.AblationRMANotification(figures.Opts{Preset: figures.Quick})
	series := seriesMap(f)
	for i := range f.X {
		mpi := series["MPI put+flush+send"][i]
		gaspi := series["GASPI write_notify"][i]
		if mpi <= gaspi {
			t.Errorf("size %v: MPI idiom (%.2fus) not slower than GASPI (%.2fus)",
				f.X[i], mpi, gaspi)
		}
	}
}

func TestHeadlinePollingPeriodMatters(t *testing.T) {
	f := figures.AblationPollingPeriod(figures.Opts{Preset: figures.Quick})
	series := seriesMap(f)
	ys := series["TAGASPI"]
	if ys[0] <= ys[len(ys)-1] {
		t.Errorf("finer polling (%.3f) not faster than coarser (%.3f) on the communication-bound workload",
			ys[0], ys[len(ys)-1])
	}
}

func TestHeadlineLockBlowupSuperlinear(t *testing.T) {
	f := figures.AblationMPILockBlowup(figures.Opts{Preset: figures.Quick})
	series := seriesMap(f)
	times := series["MPI time (s)"]
	msgs := series["messages"]
	last := len(times) - 1
	timeRatio := times[0] / times[last]
	msgRatio := msgs[0] / msgs[last]
	if timeRatio <= msgRatio {
		t.Errorf("MPI time ratio %.1f not superlinear vs message ratio %.1f", timeRatio, msgRatio)
	}
}

func seriesMap(f figures.Figure) map[string][]float64 {
	m := make(map[string][]float64, len(f.Series))
	for _, s := range f.Series {
		m[s.Name] = s.Y
	}
	return m
}
