package cluster

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/gaspisim"
	"repro/internal/tasking"
)

// TestScaleBoundedGoroutines is the 256-node smoke test of the sharded
// host substrate (ARCHITECTURE.md "Sharded host substrate"): a job at the
// paper's node count (reduced to one rank per node) with GASPI
// neighbourhood traffic and pooled tasks must keep the host goroutine
// count linear in ranks with a small constant — one main per rank plus a
// bounded worker pool, plus a fixed number of courier shards — and must
// unwind completely after Run (fabric closed, schedulers shut down). The
// pre-shard substrate (a courier goroutine pair per ordering domain, a
// goroutine per running task) blows the in-flight budget at this scale,
// and a leaked courier or worker trips the settle check.
func TestScaleBoundedGoroutines(t *testing.T) {
	const (
		nodes  = 256
		cores  = 2
		rounds = 3
	)
	base := runtime.NumGoroutine()
	var peak atomic.Int64
	sample := func() {
		g := int64(runtime.NumGoroutine())
		for {
			cur := peak.Load()
			if g <= cur || peak.CompareAndSwap(cur, g) {
				return
			}
		}
	}

	cfg := Config{
		Nodes: nodes, RanksPerNode: 1, CoresPerRank: cores,
		Profile:     fabric.ProfileOmniPath(),
		WithTasking: true,
		Seed:        42,
	}
	const seg = gaspisim.SegmentID(1)
	res := Run(cfg, func(env *Env) {
		n := env.Ranks()
		me := int(env.Rank)
		if _, err := env.GASPI.SegmentCreate(seg, 64); err != nil {
			t.Errorf("rank %d: segment: %v", me, err)
			return
		}
		env.MPI.Barrier()
		// Four neighbourhood partners per rank (±1, ±16 with wraparound):
		// enough distinct ordering domains (4n) that a courier-per-domain
		// substrate would dwarf the sharded pool's goroutine budget.
		dirs := [4]int{1, n - 1, 16, n - 16}
		for round := 0; round < rounds; round++ {
			for d, step := range dirs {
				dst := fabric.Rank((me + step) % n)
				if err := env.GASPI.WriteNotify(seg, 0, dst, seg, 0, 8,
					gaspisim.NotificationID(d), int64(round+1), 0, nil); err != nil {
					t.Errorf("rank %d: write_notify: %v", me, err)
					return
				}
			}
			env.RT.Submit(func(*tasking.Task) {})
			for d := range dirs {
				if _, ok := env.GASPI.NotifyWaitSome(seg, gaspisim.NotificationID(d),
					1, -1); !ok {
					t.Errorf("rank %d: notification %d never arrived", me, d)
					return
				}
				env.GASPI.NotifyReset(seg, gaspisim.NotificationID(d))
			}
			env.GASPI.Wait(0)
			sample()
			env.MPI.Barrier()
		}
	})
	if res.Fabric.Messages < int64(4*nodes*rounds) {
		t.Fatalf("fabric carried %d messages, want >= %d", res.Fabric.Messages, 4*nodes*rounds)
	}

	// In-flight budget: a main goroutine per rank, up to Cores pool workers
	// plus one in flight per rank, a fixed courier-shard pool (<= 64) and
	// slack for the test harness itself. Linear in ranks — NOT in ordering
	// domains (4n of them here) and NOT in submitted tasks.
	budget := int64(base + nodes*(2+cores) + 192)
	if p := peak.Load(); p > budget {
		t.Fatalf("peak goroutine count %d exceeds budget %d (base %d): host substrate no longer bounded", p, budget, base)
	}

	// Leak check: everything the job spawned (rank mains, pool workers,
	// couriers, clock shards) must unwind after Run returns. The job is
	// over, so this settle loop measures the host, not the model.
	//lint:ignore detlint host-side settle deadline: the simulation has already finished
	deadline := time.Now().Add(10 * time.Second)
	//lint:ignore detlint host-side settle poll: the simulation has already finished
	for runtime.NumGoroutine() > base+8 && time.Now().Before(deadline) {
		//lint:ignore detlint host-side settle poll: the simulation has already finished
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > base+8 {
		t.Fatalf("goroutines leaked after Run: %d before, %d after", base, after)
	}
}

// TestEarlyExitTeardown drives the whole-job teardown path with ranks
// that exit as early as possible: every rank fires a burst of one-sided
// writes at its neighbour and returns without waiting for delivery, local
// completion, or the notification. Run's teardown (barrier, scheduler
// shutdown, fabric Close) must drain the in-flight burst and return
// without panicking or stranding a courier — the regression that used to
// bite when a rank exited during an in-flight batch.
func TestEarlyExitTeardown(t *testing.T) {
	const seg = gaspisim.SegmentID(3)
	res := Run(Config{
		Nodes: 8, RanksPerNode: 2, CoresPerRank: 2,
		Profile:     fabric.ProfileOmniPath(),
		WithTasking: true,
		Seed:        7,
	}, func(env *Env) {
		n := env.Ranks()
		me := int(env.Rank)
		if _, err := env.GASPI.SegmentCreate(seg, 256); err != nil {
			t.Errorf("rank %d: segment: %v", me, err)
			return
		}
		env.MPI.Barrier()
		dst := fabric.Rank((me + 1) % n)
		for i := 0; i < 16; i++ {
			if err := env.GASPI.WriteNotify(seg, 0, dst, seg, 0, 128,
				gaspisim.NotificationID(i), 1, 0, nil); err != nil {
				t.Errorf("rank %d: write_notify: %v", me, err)
				return
			}
		}
		// Early exit: the burst is still in flight.
	})
	if res.Fabric.Messages == 0 {
		t.Fatal("no fabric traffic recorded")
	}
}
