package cluster_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/tasking"
)

// TestLinkOutageRecovery drives a two-node hybrid job through a hard link
// outage: the sender's first write+notify fails (queue error state), the
// TAGASPI retry policy backs off, repairs the queue and resubmits until the
// link recovers, and the receiver ends up with intact data. Both fault
// counters must surface in the job snapshots. Run under -race by the CI
// fault gate.
func TestLinkOutageRecovery(t *testing.T) {
	const n = 256
	outEnd := 300 * time.Microsecond
	cfg := cluster.Config{
		Nodes: 2, RanksPerNode: 1, CoresPerRank: 4,
		Profile:     fabric.ProfileIdeal(),
		WithTasking: true, WithTAGASPI: true,
		TAGASPIPoll: 5 * time.Microsecond,
		Seed:        7,
		Faults: fabric.FaultPlan{
			Outages: []fabric.Outage{{Link: fabric.AnyLink(), Start: 0, End: outEnd}},
		},
	}
	bad := make(chan string, 4)
	// Collective segment creation: under the zero-latency ideal profile the
	// t=0 write+notify would otherwise race rank 1's registration within the
	// same virtual instant. An MPI barrier cannot provide the ordering here —
	// its messages would retransmit through the outage and defer the write
	// past the window — so the ranks synchronize on a host channel, which
	// costs no virtual time and leaves the tested scenario untouched.
	segReady := make(chan struct{})
	res := cluster.Run(cfg, func(env *cluster.Env) {
		seg, err := env.GASPI.SegmentCreate(0, n)
		if err != nil {
			t.Error(err)
			return
		}
		switch env.Rank {
		case 0:
			<-segReady
			for i := range seg.Bytes() {
				seg.Bytes()[i] = byte(i)
			}
			env.RT.Submit(func(tk *tasking.Task) {
				if err := env.TAGASPI.WriteNotify(tk, 0, 0, 1, 0, 0, n, 3, 42, 0); err != nil {
					t.Error(err)
				}
			}, tasking.WithDeps(tasking.In(seg, 0, n)))
		case 1:
			close(segReady)
			var got int64
			env.RT.Submit(func(tk *tasking.Task) {
				env.TAGASPI.NotifyIwait(tk, 0, 3, &got)
			}, tasking.WithDeps(tasking.Out(seg, 0, n), tasking.OutVal(&got)))
			env.RT.Submit(func(tk *tasking.Task) {
				if got != 42 {
					bad <- "notification value lost across the outage"
				}
				for i, b := range seg.Bytes() {
					if b != byte(i) {
						bad <- "payload corrupted across the outage"
						return
					}
				}
			}, tasking.WithDeps(tasking.In(seg, 0, n), tasking.InVal(&got)))
		}
	})
	close(bad)
	for msg := range bad {
		t.Error(msg)
	}
	if res.Elapsed < outEnd {
		t.Errorf("job finished at %v, inside the outage window ending %v", res.Elapsed, outEnd)
	}
	var retries, qerrs, faults float64
	for _, s := range res.Snapshots {
		for _, smp := range s.Samples {
			switch smp.Name {
			case "tagaspi_retries":
				retries += smp.Value
			case "gaspi_queue_errors":
				qerrs += smp.Value
			case "fabric_faults_injected":
				faults += smp.Value
			}
		}
	}
	if retries == 0 || qerrs == 0 || faults == 0 {
		t.Errorf("snapshots: tagaspi_retries=%v gaspi_queue_errors=%v fabric_faults_injected=%v, want all nonzero",
			retries, qerrs, faults)
	}
}
