package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/tasking"
)

func TestRunWiresEveryRank(t *testing.T) {
	var ranks atomic.Int32
	res := Run(Config{
		Nodes: 2, RanksPerNode: 3, CoresPerRank: 2,
		Profile:     fabric.ProfileIdeal(),
		WithTasking: true, WithTAMPI: true, WithTAGASPI: true,
		TAMPIPoll: 5 * time.Microsecond, TAGASPIPoll: 5 * time.Microsecond,
	}, func(env *Env) {
		ranks.Add(1)
		if env.MPI == nil || env.GASPI == nil || env.RT == nil ||
			env.TAMPI == nil || env.TAGASPI == nil {
			t.Error("missing environment component")
		}
		if env.Ranks() != 6 {
			t.Errorf("Ranks() = %d", env.Ranks())
		}
		env.RT.Submit(func(*tasking.Task) {})
	})
	if ranks.Load() != 6 {
		t.Fatalf("main ran on %d ranks, want 6", ranks.Load())
	}
	if len(res.MPILock) != 6 || len(res.Tasking) != 6 {
		t.Fatalf("per-rank stats incomplete: %d/%d", len(res.MPILock), len(res.Tasking))
	}
	var completed int64
	for _, s := range res.Tasking {
		completed += s.Completed
	}
	if completed != 6 {
		t.Fatalf("completed tasks = %d, want 6", completed)
	}
}

func TestRunWithoutTasking(t *testing.T) {
	res := Run(Config{
		Nodes: 2, RanksPerNode: 1,
		Profile: fabric.ProfileInfiniBand(),
	}, func(env *Env) {
		if env.RT != nil || env.TAMPI != nil || env.TAGASPI != nil {
			t.Error("tasking components must be nil when disabled")
		}
		if env.Rank == 0 {
			env.MPI.Send([]byte("x"), 1, 0)
		} else {
			env.MPI.Recv(make([]byte, 1), 0, 0)
		}
	})
	if res.Elapsed <= 0 {
		t.Fatal("no modelled time elapsed under a costed profile")
	}
	if res.Fabric.Messages == 0 {
		t.Fatal("no fabric traffic recorded")
	}
}

func TestCostOf(t *testing.T) {
	prof := fabric.ProfileOmniPath()
	env := &Env{Cfg: Config{Profile: prof}}
	d := env.CostOf(prof.CoreHz) // exactly one second of work
	if d != time.Second {
		t.Fatalf("CostOf(CoreHz) = %v, want 1s", d)
	}
	env = &Env{Cfg: Config{Profile: fabric.ProfileIdeal()}}
	if env.CostOf(1e9) != 0 {
		t.Fatal("ideal profile must cost zero")
	}
}

func TestTaskAwareRequiresTasking(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(Config{Nodes: 1, RanksPerNode: 1, WithTAMPI: true,
		Profile: fabric.ProfileIdeal()}, func(*Env) {})
}

func TestTotalMPITime(t *testing.T) {
	res := Run(Config{
		Nodes: 2, RanksPerNode: 1,
		Profile: fabric.ProfileInfiniBand(),
	}, func(env *Env) {
		if env.Rank == 0 {
			env.MPI.Send(make([]byte, 64), 1, 0)
		} else {
			env.MPI.Recv(make([]byte, 64), 0, 0)
		}
	})
	if res.TotalMPITime() <= 0 {
		t.Fatal("MPI lock time not accounted")
	}
}
