package cluster

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/tagaspi"
	"repro/internal/tasking"
)

// obsScenario is a small two-rank TAGASPI exchange exercising every
// instrumented layer: task lifecycle, one-sided writes with notifications,
// notification waits, polling passes and fabric traffic.
func obsScenario(env *Env) {
	const seg, slots = 1, 4
	if _, err := env.GASPI.SegmentCreate(seg, 256); err != nil {
		panic(err)
	}
	env.MPI.Barrier() // both segments exist before any write
	peer := tagaspi.Rank(1 - env.Rank)
	for i := 0; i < slots; i++ {
		i := i
		env.RT.Submit(func(t *tasking.Task) {
			t.Compute(200 * time.Nanosecond)
			if err := env.TAGASPI.WriteNotify(t, seg, i*8, peer, seg, i*8, 8,
				tagaspi.NotificationID(i), int64(i+1), i%2); err != nil {
				panic(err)
			}
		}, tasking.WithLabel("send"))
		env.RT.Submit(func(t *tasking.Task) {
			env.TAGASPI.NotifyIwait(t, seg, tagaspi.NotificationID(i), nil)
		}, tasking.WithLabel("recv"))
	}
	env.RT.TaskWait()
}

func obsRun(t *testing.T) (*obs.Collector, Result) {
	t.Helper()
	col := obs.NewCollector(2)
	res := Run(Config{
		Nodes: 2, RanksPerNode: 1, CoresPerRank: 1,
		Profile:     fabric.ProfileInfiniBand(),
		WithTasking: true, WithTAGASPI: true,
		TAGASPIPoll: 2 * time.Microsecond,
		Recorder:    col,
		Seed:        7,
	}, obsScenario)
	return col, res
}

// TestInstrumentedRunDeterministic runs the identical instrumented job
// twice and requires byte-identical serialized traces: all timestamps come
// from the shared virtual clock and serialization sorts events canonically,
// so host-scheduler interleaving must not leak into the output.
func TestInstrumentedRunDeterministic(t *testing.T) {
	colA, resA := obsRun(t)
	colB, resB := obsRun(t)
	if resA.Elapsed != resB.Elapsed {
		t.Fatalf("elapsed differs across identical runs: %v vs %v", resA.Elapsed, resB.Elapsed)
	}
	var bufA, bufB bytes.Buffer
	if err := colA.Tracer.Write(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := colB.Tracer.Write(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("serialized traces differ across identical runs")
	}
}

// TestInstrumentedRunCoverage checks the trace and metrics content the
// observability layer promises: task-lifecycle spans and GASPI spans from
// every rank, a valid trace document, and populated latency histograms.
func TestInstrumentedRunCoverage(t *testing.T) {
	col, res := obsRun(t)

	var buf bytes.Buffer
	if err := col.Tracer.Write(&buf); err != nil {
		t.Fatal(err)
	}
	tf, err := obs.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tf.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}

	// Per-rank coverage: task body spans and gaspi posts on both ranks.
	taskSpans := map[int]int{}
	gaspiEvents := map[int]int{}
	for _, e := range tf.TraceEvents {
		switch {
		case e.Cat == "task" && e.Ph == "X":
			taskSpans[e.Pid]++
		case e.Cat == "gaspi":
			gaspiEvents[e.Pid]++
		}
	}
	for r := 0; r < 2; r++ {
		if taskSpans[r] == 0 {
			t.Errorf("rank %d: no task spans", r)
		}
		if gaspiEvents[r] == 0 {
			t.Errorf("rank %d: no gaspi events", r)
		}
	}

	// Latency histograms filled by the run.
	for _, name := range []string{"gaspi.local_completion", "gaspi.notify_latency", "tasking.ready_to_run"} {
		if n := col.Metrics.Histogram(name).Snapshot().N; n == 0 {
			t.Errorf("histogram %s empty", name)
		}
	}

	// The unified snapshots cover fabric + both ranks' mpi, gaspi, tasking.
	comps := map[string]int{}
	for _, s := range res.Snapshots {
		comps[s.Component]++
	}
	if comps["fabric"] != 1 || comps["mpi"] != 2 || comps["gaspi"] != 2 || comps["tasking"] != 2 {
		t.Errorf("snapshot components = %v", comps)
	}
	if len(res.NIC) != 2 {
		t.Errorf("NIC snapshots = %d, want one per node", len(res.NIC))
	}
	var posts int64
	for _, s := range res.Snapshots {
		if s.Component != "gaspi" {
			continue
		}
		for _, smp := range s.Samples {
			if len(smp.Name) > 6 && smp.Name[len(smp.Name)-5:] == "posts" {
				posts += int64(smp.Value)
			}
		}
	}
	if posts == 0 {
		t.Error("gaspi queue snapshots show no posts")
	}
}
