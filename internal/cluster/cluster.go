// Package cluster assembles and runs a simulated multi-node job: the
// virtual clock, the fabric, one MPI and one GASPI process per rank, and —
// for hybrid configurations — a per-rank tasking runtime with the
// Task-Aware MPI and Task-Aware GASPI libraries, mirroring the software
// architecture of the paper's Figure 2.
//
// A job is described by a Config (geometry, machine profile, library
// selection, polling periods) and a rank main function; Run launches every
// rank concurrently, waits for all of them, tears the job down, and
// returns the modelled elapsed time along with per-rank statistics.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/gaspisim"
	"repro/internal/mpisim"
	"repro/internal/obs"
	"repro/internal/obs/critpath"
	"repro/internal/tagaspi"
	"repro/internal/tampi"
	"repro/internal/tasking"
	"repro/internal/vclock"
	"repro/internal/vsync"
)

// Config describes one simulated job.
type Config struct {
	Nodes        int            // compute nodes
	RanksPerNode int            // processes per node
	CoresPerRank int            // cores (worker slots) per process
	Profile      fabric.Profile // machine cost model
	Queues       int            // GASPI queues per process (default 4)

	// Shape selects the interconnect topology (fabric.Shape). The zero
	// value is fabric.ShapeFlat — the original single-hop model with
	// unchanged results; ring, mesh and fat-tree route every inter-node
	// message over shared links with per-link serialization capacity, so
	// congestion emerges from contention (DESIGN.md §13).
	Shape fabric.Shape

	// Library selection. The MPI and GASPI worlds always exist (they cost
	// nothing when unused); these control the task-aware layers and their
	// polling tasks.
	WithTasking bool // create the per-rank tasking runtime
	WithTAMPI   bool // requires WithTasking
	WithTAGASPI bool // requires WithTasking

	// Polling periods (§V-B / §VI); zero or negative dedicates the poller.
	TAMPIPoll   time.Duration
	TAGASPIPoll time.Duration

	// Per-task modelled overheads (Nanos6 creation and scheduling costs).
	TaskSubmitOverhead   time.Duration
	TaskDispatchOverhead time.Duration

	// RealTime runs on the wall clock instead of the virtual clock.
	RealTime bool

	// Faults, when enabled, installs a fault-injection plan on the fabric
	// (fabric.FaultPlan): latency jitter, transient delivery failures and
	// link outages, all derived deterministically from Seed. GASPI-class
	// failures surface through the queue error state and are absorbed by
	// TAGASPI's retry policy; MPI-class failures retransmit transparently.
	// The zero value injects nothing and leaves every path untouched.
	Faults fabric.FaultPlan

	// Recorder, when non-nil, instruments every layer of the job (fabric,
	// MPI, GASPI, tasking runtimes) with the observability subsystem of
	// package obs. A typical caller passes obs.NewCollector(ranks) and
	// writes its trace and metrics after Run returns. Nil (the default)
	// keeps every hot path on its uninstrumented single-branch fast path.
	Recorder obs.Recorder

	Seed int64
}

// DefaultTaskOverheads are applied by Run when a virtual-time hybrid job
// leaves the overhead fields zero: the sub-microsecond per-task costs of a
// tuned OmpSs-2 runtime, which drive the small-block tasking overheads the
// paper observes in Figs. 10 and 12.
const (
	DefaultSubmitOverhead   = 150 * time.Nanosecond
	DefaultDispatchOverhead = 250 * time.Nanosecond
)

// Env is the per-rank environment handed to the rank main.
type Env struct {
	Rank    fabric.Rank
	Cfg     Config
	Clk     vclock.Clock
	Fab     *fabric.Fabric
	MPI     *mpisim.Proc
	GASPI   *gaspisim.Proc
	RT      *tasking.Runtime // nil unless Cfg.WithTasking
	TAMPI   *tampi.Library   // nil unless Cfg.WithTAMPI
	TAGASPI *tagaspi.Library // nil unless Cfg.WithTAGASPI
}

// Ranks returns the total rank count of the job.
func (e *Env) Ranks() int { return e.Fab.Topology().Ranks() }

// CostOf converts element updates into modelled compute time using the
// profile's per-core rate.
func (e *Env) CostOf(elements float64) time.Duration {
	hz := e.Cfg.Profile.CoreHz
	if hz <= 0 || e.Cfg.Profile.Zero() {
		return 0
	}
	return time.Duration(elements / hz * float64(time.Second))
}

// Result aggregates a finished job.
type Result struct {
	Elapsed time.Duration         // modelled wall time of the whole job
	Fabric  fabric.Stats          // traffic totals
	MPILock []vsync.ResourceStats // per-rank library-lock statistics
	Tasking []tasking.Stats       // per-rank runtime statistics (hybrid only)

	// NIC is the per-node NIC port utilisation (injection/delivery
	// serialization), in node order.
	NIC []fabric.NICSnapshot
	// Links is the per-link utilisation of a shaped topology
	// (Config.Shape), in canonical link order; nil for flat jobs. Waited
	// is the emergent backpressure signal: total time messages queued at
	// the link's entry behind other traffic.
	Links []fabric.LinkStats
	// Snapshots is every component's statistics in the common obs shape:
	// the fabric first, then per-rank MPI, GASPI, (hybrid only) tasking
	// and (TAGASPI only) retry-policy snapshots.
	Snapshots []obs.Snapshot

	// Blame is the critical-path blame report of the run, attributing the
	// makespan to compute, fabric transit, notify wait, MPI lock wait,
	// retry backoff and scheduler idle (DESIGN.md §10). It is computed
	// only on instrumented runs — when Config.Recorder is an
	// *obs.Collector with a live Tracer — and is nil otherwise, or when
	// the trace could not be analysed.
	Blame *critpath.Report
}

// TotalMPITime sums Busy+Waited over all ranks: the paper's "total time
// inside MPI among all threads" metric (§VI-C).
func (r Result) TotalMPITime() time.Duration {
	var t time.Duration
	for _, s := range r.MPILock {
		t += s.Busy + s.Waited
	}
	return t
}

// Run executes main as every rank of the configured job and returns the
// job statistics. It blocks until all ranks return and the job is torn
// down. The caller must not be a goroutine registered with the job clock.
func Run(cfg Config, main func(*Env)) Result {
	if cfg.Nodes <= 0 || cfg.RanksPerNode <= 0 {
		panic(fmt.Sprintf("cluster: invalid geometry %d x %d", cfg.Nodes, cfg.RanksPerNode))
	}
	if cfg.CoresPerRank <= 0 {
		cfg.CoresPerRank = 1
	}
	if cfg.Queues <= 0 {
		cfg.Queues = 4
	}
	if (cfg.WithTAMPI || cfg.WithTAGASPI) && !cfg.WithTasking {
		panic("cluster: task-aware libraries require WithTasking")
	}
	if cfg.WithTasking && !cfg.Profile.Zero() {
		if cfg.TaskSubmitOverhead == 0 {
			cfg.TaskSubmitOverhead = DefaultSubmitOverhead
		}
		if cfg.TaskDispatchOverhead == 0 {
			cfg.TaskDispatchOverhead = DefaultDispatchOverhead
		}
	}
	if cfg.TAMPIPoll == 0 {
		cfg.TAMPIPoll = tampi.DefaultPollInterval
	}
	if cfg.TAGASPIPoll == 0 {
		cfg.TAGASPIPoll = tagaspi.DefaultPollInterval
	}

	var clk vclock.Clock
	if cfg.RealTime {
		clk = vclock.NewReal()
	} else {
		clk = vclock.NewVirtual()
	}
	topo := fabric.NewShapedTopology(cfg.Shape, cfg.Nodes, cfg.RanksPerNode)
	fab := fabric.New(clk, topo, cfg.Profile)
	if cfg.Faults.Enabled() {
		fab.SetFaultPlan(cfg.Faults, fabric.FaultPlaneSeed(cfg.Seed))
	}
	mw := mpisim.NewWorld(fab, cfg.Seed)
	gw := gaspisim.NewWorld(fab, cfg.Queues, fabric.GASPIWorldSeed(cfg.Seed))
	if cfg.Recorder != nil {
		fab.SetRecorder(cfg.Recorder)
		mw.SetRecorder(cfg.Recorder)
		gw.SetRecorder(cfg.Recorder)
	}

	n := topo.Ranks()
	envs := make([]*Env, n)
	// Rank environments are built before any main starts, in parallel
	// batches on a bounded set of host workers: at 10k-rank scale the
	// per-rank setup (tasking runtime, task-aware libraries) is pure host
	// work with no modelled time, and doing it inside 10k freshly spawned
	// rank goroutines serialized badly behind the scheduler. Setup touches
	// only rank-private state, so batch construction is race-free.
	forEachRank(n, func(r int) {
		env := &Env{
			Rank: fabric.Rank(r), Cfg: cfg, Clk: clk, Fab: fab,
			MPI: mw.Proc(fabric.Rank(r)), GASPI: gw.Proc(fabric.Rank(r)),
		}
		if cfg.WithTasking {
			env.RT = tasking.New(clk, tasking.Config{
				Cores:            cfg.CoresPerRank,
				SubmitOverhead:   cfg.TaskSubmitOverhead,
				DispatchOverhead: cfg.TaskDispatchOverhead,
			})
			if cfg.Recorder != nil {
				env.RT.SetRecorder(cfg.Recorder, r)
			}
			if cfg.WithTAMPI {
				env.TAMPI = tampi.New(env.MPI, env.RT, cfg.TAMPIPoll)
			}
			if cfg.WithTAGASPI {
				env.TAGASPI = tagaspi.New(env.GASPI, env.RT, cfg.TAGASPIPoll)
				if cfg.Recorder != nil {
					env.TAGASPI.SetRecorder(cfg.Recorder)
				}
			}
		}
		envs[r] = env
	})
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		env := envs[r]
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			main(env)
			if env.RT != nil {
				env.RT.TaskWait()
			}
			env.MPI.Barrier()
			if env.RT != nil {
				env.RT.Shutdown()
			}
		})
	}
	wg.Wait()
	res := Result{Elapsed: clk.Now(), Fabric: fab.Stats()}
	// Teardown mirrors setup: per-rank statistics land in preallocated
	// indexed slots, so the collection parallelises without perturbing the
	// deterministic rank order of the result.
	res.MPILock = make([]vsync.ResourceStats, n)
	if cfg.WithTasking {
		res.Tasking = make([]tasking.Stats, n)
	}
	mpiSnaps := make([]obs.Snapshot, n)
	gaspiSnaps := make([]obs.Snapshot, n)
	var taskSnaps, tagaspiSnaps []obs.Snapshot
	if cfg.WithTasking {
		taskSnaps = make([]obs.Snapshot, n)
	}
	if cfg.WithTAGASPI {
		tagaspiSnaps = make([]obs.Snapshot, n)
	}
	forEachRank(n, func(r int) {
		res.MPILock[r] = mw.Proc(fabric.Rank(r)).LockStats()
		mpiSnaps[r] = mw.Proc(fabric.Rank(r)).Snapshot()
		gaspiSnaps[r] = gw.Proc(fabric.Rank(r)).Snapshot()
		if envs[r] != nil && envs[r].RT != nil {
			res.Tasking[r] = envs[r].RT.Stats()
			taskSnaps[r] = envs[r].RT.Snapshot()
		}
		if envs[r] != nil && envs[r].TAGASPI != nil {
			tagaspiSnaps[r] = envs[r].TAGASPI.Snapshot()
		}
	})
	res.NIC = fab.NICSnapshots()
	res.Links = fab.LinkSnapshots()
	res.Snapshots = append(res.Snapshots, fab.Snapshot())
	res.Snapshots = append(res.Snapshots, mpiSnaps...)
	res.Snapshots = append(res.Snapshots, gaspiSnaps...)
	if cfg.WithTasking {
		for r := 0; r < n; r++ {
			if envs[r] != nil && envs[r].RT != nil {
				res.Snapshots = append(res.Snapshots, taskSnaps[r])
			}
		}
	}
	if cfg.WithTAGASPI {
		for r := 0; r < n; r++ {
			if envs[r] != nil && envs[r].TAGASPI != nil {
				res.Snapshots = append(res.Snapshots, tagaspiSnaps[r])
			}
		}
	}
	fab.Close()
	if col, ok := cfg.Recorder.(*obs.Collector); ok && col != nil && col.Tracer != nil {
		// All couriers and pollers have drained (fab.Close, RT.Shutdown), so
		// the event set is final. Analysis failures (an empty measurement
		// window, say) leave Blame nil rather than failing the run.
		if rep, err := critpath.Analyze(col.Tracer.Events()); err == nil {
			res.Blame = rep
		}
	}
	return res
}
