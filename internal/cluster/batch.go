package cluster

import (
	"runtime"
	"sync"
)

// forEachRank runs f(r) for every rank 0..n-1 on a bounded pool of host
// goroutines (at most GOMAXPROCS). It is used for the host-side setup and
// teardown phases of a job, which touch only rank-private state and no
// modelled time: bounding the fan-out keeps the host goroutine count flat
// when a 256-node sweep builds tens of thousands of rank environments.
// Small jobs skip the pool entirely — spawning workers for a handful of
// ranks costs more than it saves.
func forEachRank(n int, f func(r int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 16 {
		for r := 0; r < n; r++ {
			f(r)
		}
		return
	}
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				r := int(next)
				next++
				mu.Unlock()
				if r >= n {
					return
				}
				f(r)
			}
		}()
	}
	wg.Wait()
}
