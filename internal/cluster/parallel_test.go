package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/gaspisim"
	"repro/internal/obs"
)

// mixedTrafficMain exchanges both two-sided MPI messages and one-sided
// GASPI write+notify traffic between the two ranks of a job: the traffic
// mix of the paper's hybrid applications, exercising every simulator
// layer that could leak state across concurrently running jobs.
func mixedTrafficMain(msgs, size int) func(*Env) {
	return func(env *Env) {
		if _, err := env.GASPI.SegmentCreate(0, size); err != nil {
			panic(err)
		}
		env.MPI.Barrier()
		buf := make([]byte, size)
		switch env.Rank {
		case 0:
			for i := 0; i < msgs; i++ {
				env.MPI.Send(buf, 1, i)
				err := env.GASPI.WriteNotify(0, 0, 1, 0, 0, size,
					gaspisim.NotificationID(i%16), int64(i+1), i%4, nil)
				if err != nil {
					panic(err)
				}
			}
			for q := 0; q < 4; q++ {
				env.GASPI.Wait(q)
				env.GASPI.Drain(q)
			}
		case 1:
			for i := 0; i < msgs; i++ {
				env.MPI.Recv(buf, 0, i)
				env.GASPI.NotifyWaitSome(0, gaspisim.NotificationID(i%16), 1, gaspisim.Block)
				env.GASPI.NotifyReset(0, gaspisim.NotificationID(i%16))
			}
		}
	}
}

// jobConfig is one two-rank job with per-job distinct traffic volume.
func jobConfig(i int) (Config, func(*Env), int) {
	msgs := 8 + 4*i
	size := 256 << (i % 3)
	cfg := Config{
		Nodes: 2, RanksPerNode: 1, CoresPerRank: 1,
		Profile: fabric.ProfileInfiniBand(),
		Seed:    fabric.SeedOf("parallel_test", fmt.Sprint(i)),
	}
	return cfg, mixedTrafficMain(msgs, size), msgs
}

// TestConcurrentClustersIsolated runs six two-rank clusters with mixed
// MPI/GASPI traffic simultaneously from one process — the execution shape
// of the exp engine's host-parallel sweeps — and checks that every job
// reproduces exactly the statistics it yields when run alone: disjoint
// fabrics, clocks, worlds and RNG chains, with no cross-job interference.
// Run under -race (scripts/ci.sh), this is the isolation proof behind
// `figures -parallel`.
func TestConcurrentClustersIsolated(t *testing.T) {
	const jobs = 6

	// Reference: each configuration run by itself.
	solo := make([]Result, jobs)
	for i := 0; i < jobs; i++ {
		cfg, main, _ := jobConfig(i)
		solo[i] = Run(cfg, main)
	}

	// The same configurations, all in flight at once.
	conc := make([]Result, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg, main, _ := jobConfig(i)
			conc[i] = Run(cfg, main)
		}(i)
	}
	wg.Wait()

	seenElapsed := map[time.Duration]bool{}
	for i := 0; i < jobs; i++ {
		_, _, msgs := jobConfig(i)
		if conc[i].Elapsed != solo[i].Elapsed {
			t.Errorf("job %d: elapsed %v concurrent vs %v solo", i, conc[i].Elapsed, solo[i].Elapsed)
		}
		if conc[i].Fabric != solo[i].Fabric {
			t.Errorf("job %d: fabric stats %+v concurrent vs %+v solo", i, conc[i].Fabric, solo[i].Fabric)
		}
		// Disjointness: stats scale with this job's own traffic only.
		// Every MPI message and every write+notify crosses the fabric at
		// least once; a job observing another's traffic would inflate this.
		if conc[i].Fabric.Messages < int64(2*msgs) {
			t.Errorf("job %d: only %d fabric messages for %d sends+writes",
				i, conc[i].Fabric.Messages, msgs)
		}
		if i > 0 && conc[i].Fabric.Messages == conc[i-1].Fabric.Messages {
			t.Errorf("jobs %d and %d report identical message counts %d — stats not disjoint?",
				i-1, i, conc[i].Fabric.Messages)
		}
		seenElapsed[conc[i].Elapsed] = true
	}
	// Six different workloads must not collapse onto one clock.
	if len(seenElapsed) != jobs {
		t.Errorf("only %d distinct elapsed times across %d distinct jobs", len(seenElapsed), jobs)
	}
}

// TestInstrumentedJobIsolatedUnderConcurrency runs one instrumented job
// alone and again while three other jobs are in flight: the serialized
// trace must validate and be byte-identical in both settings — neither
// virtual timestamps nor event sets may leak between concurrent jobs.
func TestInstrumentedJobIsolatedUnderConcurrency(t *testing.T) {
	run := func(concurrent bool) []byte {
		col := obs.NewCollector(2)
		cfg, main, _ := jobConfig(2)
		cfg.Recorder = col
		var wg sync.WaitGroup
		if concurrent {
			for i := 3; i < 6; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					bg, bgMain, _ := jobConfig(i)
					Run(bg, bgMain)
				}(i)
			}
		}
		Run(cfg, main)
		wg.Wait()
		var buf bytes.Buffer
		if err := col.Tracer.Write(&buf); err != nil {
			t.Fatal(err)
		}
		tf, err := obs.ParseTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if err := tf.Validate(); err != nil {
			t.Fatalf("trace invalid (concurrent=%v): %v", concurrent, err)
		}
		return buf.Bytes()
	}
	solo := run(false)
	conc := run(true)
	if !bytes.Equal(solo, conc) {
		t.Fatal("instrumented trace differs when other jobs run concurrently")
	}
}
