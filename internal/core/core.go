// Package core holds the task-awareness machinery shared by the Task-Aware
// MPI and Task-Aware GASPI libraries (§IV-D and §V-B of the paper):
//
//   - Service: the transparent polling task. Each library spawns one via
//     the runtime's independent-task API (nanos6_spawn_function) and it
//     periodically checks pending communication operations, sleeping
//     between passes with wait_for_us so its core can run other tasks.
//     Each service has its own polling period — the flexibility §V-B adds
//     over the older global polling-services API — and the period can be
//     changed at run time (the paper's "future work" dynamic adaptation).
//
//   - Pending: a multi-producer staging queue for operation descriptors.
//     Communication tasks enqueue concurrently; the polling task drains the
//     queue into a private list it owns, so producer contention never slows
//     the poller — the §IV-D structure (lock-free MPSC queue + intrusive
//     list in the C++ implementation; a mutex-staged slice pair here, with
//     the same drain-to-private-list behaviour).
package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/tasking"
)

// Poller performs one checking pass over a library's pending operations,
// reporting how many completions it retired.
type Poller func() int

// Service is a transparent polling task bound to one task-aware library.
type Service struct {
	rt       *tasking.Runtime
	interval atomic.Int64 // nanoseconds between passes; 0 = dedicated
	passes   atomic.Int64
	retired  atomic.Int64

	// adaptive mode (the paper's §VIII future work): the period shrinks
	// while passes retire work and grows while they come back empty,
	// within [adaptMin, adaptMax].
	adaptive           atomic.Bool
	adaptMin, adaptMax int64
}

// minIdleTick bounds a zero-cost idle polling pass so a dedicated (0µs)
// poller cannot livelock real time when nothing is in flight.
const minIdleTick = 200 * time.Nanosecond

// StartService spawns the polling task. interval is the period between
// passes (§VI: 50–150µs are the paper's tuned values; 0 dedicates the
// core, polling back-to-back). The service stops when the runtime shuts
// down.
func StartService(rt *tasking.Runtime, name string, interval time.Duration, poll Poller) *Service {
	s := &Service{rt: rt}
	s.interval.Store(int64(interval))
	rt.Spawn(func(t *tasking.Task) {
		clk := rt.Clock()
		// Polling iterations are recorded on a per-service track; metric
		// names are built once, outside the hot loop. Idle passes only
		// bump a counter — a dedicated poller makes millions of them and
		// spans for each would swamp the trace.
		rec := rt.Recorder()
		rank := rt.Rank()
		track := obs.PollTrack(name)
		spanName := "poll:" + name
		passCtr := "poll." + name + ".passes"
		retiredCtr := "poll." + name + ".retired"
		for !rt.Stopping() {
			before := clk.Now()
			n := poll()
			s.passes.Add(1)
			s.retired.Add(int64(n))
			if rec != nil {
				rec.Count(passCtr, 1)
				if n > 0 {
					rec.Count(retiredCtr, int64(n))
					rec.Span(rank, track, obs.CatPoll, spanName, before, clk.Now(), int64(n))
				}
			}
			if s.adaptive.Load() {
				s.adapt(n)
			}
			iv := time.Duration(s.interval.Load())
			if iv > 0 {
				t.WaitFor(iv)
			} else if clk.Now() == before {
				// Dedicated polling with an idle pass of zero modelled
				// cost: yield briefly so virtual time can advance.
				t.WaitFor(minIdleTick)
			}
		}
	}, name)
	return s
}

// SetInterval changes the polling period for subsequent passes and leaves
// adaptive mode.
func (s *Service) SetInterval(d time.Duration) {
	s.adaptive.Store(false)
	s.interval.Store(int64(d))
}

// SetAdaptive enables dynamic polling-rate adaptation (the paper's §VIII
// future work): after a pass that retired work the period halves, after an
// empty pass it grows by a quarter, clamped to [min, max]. The service
// starts from its current period.
func (s *Service) SetAdaptive(min, max time.Duration) {
	if min <= 0 || max < min {
		panic("core: invalid adaptive polling bounds")
	}
	s.adaptMin, s.adaptMax = int64(min), int64(max)
	s.adaptive.Store(true)
}

// adapt applies one adaptive-rate step after a pass retiring n completions.
func (s *Service) adapt(n int) {
	iv := s.interval.Load()
	if iv <= 0 {
		iv = s.adaptMin
	}
	if n > 0 {
		iv /= 2
	} else {
		iv += iv / 4
	}
	if iv < s.adaptMin {
		iv = s.adaptMin
	}
	if iv > s.adaptMax {
		iv = s.adaptMax
	}
	s.interval.Store(iv)
}

// Interval returns the current polling period.
func (s *Service) Interval() time.Duration { return time.Duration(s.interval.Load()) }

// Passes returns the number of completed polling passes.
func (s *Service) Passes() int64 { return s.passes.Load() }

// Retired returns the total completions retired by the poller.
func (s *Service) Retired() int64 { return s.retired.Load() }

// Pending is the staging queue of §IV-D: many communication tasks push
// descriptors concurrently; the single polling task drains them into a
// private list it then owns without further synchronization.
type Pending[T any] struct {
	mu     sync.Mutex
	staged []T
	pool   [][]T // recycled staging backing arrays
}

// Push stages one descriptor. Safe for concurrent producers.
//
//tagalint:hotpath
func (q *Pending[T]) Push(v T) {
	q.mu.Lock()
	//lint:ignore hotalloc staged reuses pooled backing arrays recycled by Drain; growth stops once the high-water mark is reached
	q.staged = append(q.staged, v)
	q.mu.Unlock()
}

// Drain moves all staged descriptors into dst (appending) and returns the
// result. The returned slice is owned by the caller: the poller appends
// drained descriptors to its private working list.
//
//tagalint:hotpath
func (q *Pending[T]) Drain(dst []T) []T {
	q.mu.Lock()
	staged := q.staged
	if n := len(q.pool); n > 0 {
		q.staged = q.pool[n-1][:0]
		q.pool = q.pool[:n-1]
	} else {
		q.staged = nil
	}
	q.mu.Unlock()
	dst = append(dst, staged...)
	if cap(staged) > 0 {
		var zero T
		for i := range staged {
			staged[i] = zero // drop references for the collector
		}
		q.mu.Lock()
		//lint:ignore hotalloc the pool list grows to the number of in-flight staging arrays and then stabilises
		q.pool = append(q.pool, staged[:0])
		q.mu.Unlock()
	}
	return dst
}

// Len reports the number of currently staged descriptors.
func (q *Pending[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.staged)
}
