package core

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/tasking"
	"repro/internal/vclock"
)

func TestServicePollsPeriodically(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := tasking.New(clk, tasking.Config{Cores: 2})
	var wg sync.WaitGroup
	wg.Add(1)
	var svc *Service
	clk.Go(func() {
		defer wg.Done()
		svc = StartService(rt, "poll", 10*time.Microsecond, func() int { return 1 })
		rt.Submit(func(tk *tasking.Task) { tk.Compute(100 * time.Microsecond) })
		rt.TaskWait()
		rt.Shutdown()
	})
	wg.Wait()
	if p := svc.Passes(); p < 9 || p > 12 {
		t.Fatalf("passes = %d, want ~10 over 100µs at 10µs period", p)
	}
	if svc.Retired() != svc.Passes() {
		t.Fatalf("retired = %d, passes = %d", svc.Retired(), svc.Passes())
	}
}

func TestServiceDoesNotStarveWorkers(t *testing.T) {
	// A dedicated (0-interval) poller on a 1-core runtime must still let
	// application tasks run: WaitFor yields the core.
	clk := vclock.NewVirtual()
	rt := tasking.New(clk, tasking.Config{Cores: 1})
	var ran bool
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		StartService(rt, "dedicated", 0, func() int { return 0 })
		rt.Submit(func(*tasking.Task) { ran = true })
		rt.TaskWait()
		rt.Shutdown()
	})
	wg.Wait()
	if !ran {
		t.Fatal("application task starved by dedicated poller")
	}
}

func TestServiceSetInterval(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := tasking.New(clk, tasking.Config{Cores: 2})
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		svc := StartService(rt, "poll", 100*time.Microsecond, func() int { return 0 })
		if svc.Interval() != 100*time.Microsecond {
			t.Errorf("Interval = %v", svc.Interval())
		}
		svc.SetInterval(5 * time.Microsecond)
		rt.Submit(func(tk *tasking.Task) { tk.Compute(200 * time.Microsecond) })
		rt.TaskWait()
		rt.Shutdown()
		// After the first (100µs) sleep, passes come every 5µs: ≥ 20 total.
		if p := svc.Passes(); p < 20 {
			t.Errorf("passes = %d after tightening the interval", p)
		}
	})
	wg.Wait()
}

func TestServiceStopsOnShutdown(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := tasking.New(clk, tasking.Config{Cores: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	var svc *Service
	clk.Go(func() {
		defer wg.Done()
		svc = StartService(rt, "poll", time.Microsecond, func() int { return 0 })
		rt.Shutdown()
	})
	wg.Wait()
	p := svc.Passes()
	if p > 2 {
		t.Fatalf("poller kept running after Shutdown: %d passes", p)
	}
}

func TestPendingDrain(t *testing.T) {
	var q Pending[int]
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d", q.Len())
	}
	got := q.Drain(nil)
	if len(got) != 10 {
		t.Fatalf("drained %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken: %v", got)
		}
	}
	if q.Len() != 0 {
		t.Fatal("queue not emptied")
	}
	// Drain appends to the private list.
	q.Push(100)
	got = q.Drain(got)
	if len(got) != 11 || got[10] != 100 {
		t.Fatalf("append-drain got %v", got)
	}
}

func TestPendingConcurrentProducers(t *testing.T) {
	var q Pending[int]
	var wg sync.WaitGroup
	const producers, items = 8, 500
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < items; i++ {
				q.Push(i)
			}
		}()
	}
	var got []int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(got) < producers*items {
			got = q.Drain(got)
		}
	}()
	wg.Wait()
	<-done
	if len(got) != producers*items {
		t.Fatalf("drained %d, want %d", len(got), producers*items)
	}
}

// Property: drain returns exactly the pushed items, preserving per-call
// push order.
func TestQuickPendingPreservesOrder(t *testing.T) {
	f := func(vals []int) bool {
		var q Pending[int]
		for _, v := range vals {
			q.Push(v)
		}
		got := q.Drain(nil)
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServiceAdaptivePolling(t *testing.T) {
	// With work arriving every pass, the adaptive period must collapse to
	// the minimum; once the work dries up it must relax toward the maximum.
	clk := vclock.NewVirtual()
	rt := tasking.New(clk, tasking.Config{Cores: 2})
	var wg sync.WaitGroup
	wg.Add(1)
	var busyIv, idleIv time.Duration
	clk.Go(func() {
		defer wg.Done()
		busy := true
		svc := StartService(rt, "adaptive", 100*time.Microsecond, func() int {
			if busy {
				return 1
			}
			return 0
		})
		svc.SetAdaptive(5*time.Microsecond, 400*time.Microsecond)
		rt.Submit(func(tk *tasking.Task) { tk.Compute(2 * time.Millisecond) })
		rt.TaskWait()
		busyIv = svc.Interval()
		busy = false
		rt.Submit(func(tk *tasking.Task) { tk.Compute(5 * time.Millisecond) })
		rt.TaskWait()
		idleIv = svc.Interval()
		rt.Shutdown()
	})
	wg.Wait()
	if busyIv != 5*time.Microsecond {
		t.Fatalf("busy interval = %v, want the 5µs floor", busyIv)
	}
	if idleIv != 400*time.Microsecond {
		t.Fatalf("idle interval = %v, want the 400µs ceiling", idleIv)
	}
}

func TestServiceAdaptiveBoundsValidated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Service{}).SetAdaptive(0, time.Second)
}

func TestSetIntervalDisablesAdaptive(t *testing.T) {
	s := &Service{}
	s.SetAdaptive(time.Microsecond, time.Millisecond)
	if !s.adaptive.Load() {
		t.Fatal("adaptive not enabled")
	}
	s.SetInterval(50 * time.Microsecond)
	if s.adaptive.Load() {
		t.Fatal("SetInterval must leave adaptive mode")
	}
	if s.Interval() != 50*time.Microsecond {
		t.Fatalf("Interval = %v", s.Interval())
	}
}
