package memory

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestSegmentBasics(t *testing.T) {
	s := NewSegment(3, 128)
	if s.ID() != 3 {
		t.Fatalf("ID = %d, want 3", s.ID())
	}
	if s.Size() != 128 {
		t.Fatalf("Size = %d, want 128", s.Size())
	}
	if len(s.Bytes()) != 128 {
		t.Fatalf("len(Bytes) = %d, want 128", len(s.Bytes()))
	}
	for _, b := range s.Bytes() {
		if b != 0 {
			t.Fatal("segment not zeroed")
		}
	}
}

func TestSegmentSliceBounds(t *testing.T) {
	s := NewSegment(0, 16)
	cases := []struct {
		off, n int
		ok     bool
	}{
		{0, 16, true},
		{0, 0, true},
		{16, 0, true},
		{8, 8, true},
		{8, 9, false},
		{-1, 4, false},
		{0, -1, false},
		{17, 0, false},
	}
	for _, c := range cases {
		_, err := s.Slice(c.off, c.n)
		if (err == nil) != c.ok {
			t.Errorf("Slice(%d,%d): err=%v, want ok=%v", c.off, c.n, err, c.ok)
		}
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSegment(0, -1)
}

func TestCopyBetweenSegments(t *testing.T) {
	src := NewSegment(0, 32)
	dst := NewSegment(1, 32)
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i)
	}
	if err := Copy(dst, 8, src, 4, 16); err != nil {
		t.Fatal(err)
	}
	want := src.Bytes()[4:20]
	got := dst.Bytes()[8:24]
	if !bytes.Equal(got, want) {
		t.Fatalf("copy mismatch: got %v want %v", got, want)
	}
	// Out-of-range copies must fail on either side.
	if err := Copy(dst, 30, src, 0, 4); err == nil {
		t.Fatal("destination overflow not detected")
	}
	if err := Copy(dst, 0, src, 30, 4); err == nil {
		t.Fatal("source overflow not detected")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	s, err := r.Create(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(5, 64); err == nil {
		t.Fatal("duplicate Create must fail")
	}
	got, err := r.Lookup(5)
	if err != nil || got != s {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if _, err := r.Lookup(6); err == nil {
		t.Fatal("Lookup of missing id must fail")
	}
	if err := r.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(5); err == nil {
		t.Fatal("double Delete must fail")
	}
	if _, err := r.Lookup(5); err == nil {
		t.Fatal("Lookup after Delete must fail")
	}
}

func TestF64ViewRoundTrip(t *testing.T) {
	s := NewSegment(0, 80)
	v, err := F64View(s, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 8 {
		t.Fatalf("Len = %d, want 8", v.Len())
	}
	for i := 0; i < 8; i++ {
		v.Set(i, float64(i)*1.5)
	}
	for i := 0; i < 8; i++ {
		if got := v.At(i); got != float64(i)*1.5 {
			t.Fatalf("At(%d) = %v, want %v", i, got, float64(i)*1.5)
		}
	}
	// The view starts at byte 8: byte 0..7 must be untouched.
	for i := 0; i < 8; i++ {
		if s.Bytes()[i] != 0 {
			t.Fatal("view wrote outside its range")
		}
	}
}

func TestF64ViewOutOfRange(t *testing.T) {
	s := NewSegment(0, 64)
	if _, err := F64View(s, 0, 9); err == nil {
		t.Fatal("oversized view must fail")
	}
	if _, err := F64View(s, 60, 1); err == nil {
		t.Fatal("misaligned-end view must fail")
	}
}

func TestF64SpecialValues(t *testing.T) {
	v := F64Of(make([]byte, 4*F64Bytes))
	specials := []float64{math.Inf(1), math.Inf(-1), 0, math.MaxFloat64}
	for i, x := range specials {
		v.Set(i, x)
	}
	for i, x := range specials {
		if got := v.At(i); got != x {
			t.Fatalf("At(%d) = %v, want %v", i, got, x)
		}
	}
	v.Set(0, math.NaN())
	if !math.IsNaN(v.At(0)) {
		t.Fatal("NaN did not round-trip")
	}
}

func TestF64FillSubCopy(t *testing.T) {
	v := F64Of(make([]byte, 10*F64Bytes))
	v.Fill(3.25)
	for i := 0; i < 10; i++ {
		if v.At(i) != 3.25 {
			t.Fatalf("Fill: At(%d) = %v", i, v.At(i))
		}
	}
	sub := v.Sub(2, 3)
	sub.Fill(-1)
	for i := 0; i < 10; i++ {
		want := 3.25
		if i >= 2 && i < 5 {
			want = -1
		}
		if v.At(i) != want {
			t.Fatalf("Sub/Fill: At(%d) = %v, want %v", i, v.At(i), want)
		}
	}
	v.CopyIn(7, []float64{9, 8, 7})
	got := v.CopyOut(7, 3)
	for i, want := range []float64{9, 8, 7} {
		if got[i] != want {
			t.Fatalf("CopyOut[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestF64OfMisalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	F64Of(make([]byte, 7))
}

func TestI64RoundTrip(t *testing.T) {
	s := NewSegment(0, 32)
	v, err := I64View(s, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{0, -1, math.MaxInt64, math.MinInt64}
	for i, x := range vals {
		v.Set(i, x)
	}
	for i, x := range vals {
		if got := v.At(i); got != x {
			t.Fatalf("At(%d) = %d, want %d", i, got, x)
		}
	}
	if v.Len() != 4 {
		t.Fatalf("Len = %d, want 4", v.Len())
	}
}

func TestI64OfMisalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	I64Of(make([]byte, 12))
}

// Property: any float64 round-trips through an F64 view at any valid index.
func TestQuickF64RoundTrip(t *testing.T) {
	v := F64Of(make([]byte, 64*F64Bytes))
	f := func(x float64, idx uint8) bool {
		i := int(idx) % 64
		v.Set(i, x)
		got := v.At(i)
		if math.IsNaN(x) {
			return math.IsNaN(got)
		}
		return got == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Copy never touches bytes outside the destination range.
func TestQuickCopyIsolation(t *testing.T) {
	f := func(data []byte, off uint8) bool {
		if len(data) > 64 {
			data = data[:64]
		}
		src := NewSegment(0, 64)
		copy(src.Bytes(), data)
		dst := NewSegment(1, 128)
		for i := range dst.Bytes() {
			dst.Bytes()[i] = 0xAA
		}
		o := int(off) % 64
		n := len(data)
		if err := Copy(dst, o, src, 0, n); err != nil {
			return false
		}
		for i, b := range dst.Bytes() {
			if i >= o && i < o+n {
				if b != src.Bytes()[i-o] {
					return false
				}
			} else if b != 0xAA {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkF64SetAt(b *testing.B) {
	v := F64Of(make([]byte, 1024*F64Bytes))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j := i % 1024
		v.Set(j, float64(i))
		_ = v.At(j)
	}
}

func BenchmarkSegmentCopy4K(b *testing.B) {
	src := NewSegment(0, 4096)
	dst := NewSegment(1, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		if err := Copy(dst, 0, src, 0, 4096); err != nil {
			b.Fatal(err)
		}
	}
}
