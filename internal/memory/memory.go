// Package memory implements rank-local registered memory: the backing store
// for GASPI segments and MPI windows in the simulated cluster.
//
// A Segment is a contiguous, byte-addressed region owned by one rank and
// identified by a small integer, mirroring gaspi_segment_id_t. Remote ranks
// address a segment by (rank, segment id, offset); the fabric performs the
// actual copy between the two processes' segments, which in the simulator
// share one address space but are never aliased across ranks.
//
// Applications that compute on floating-point data keep it inside segments
// through the F64 view, which provides bounds-checked element access over
// the raw bytes without unsafe.
package memory

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// SegmentID identifies a segment within one rank's registry.
type SegmentID uint8

// Segment is a contiguous registered memory region.
type Segment struct {
	id  SegmentID
	buf []byte
}

// NewSegment allocates a zeroed segment of size bytes.
func NewSegment(id SegmentID, size int) *Segment {
	if size < 0 {
		panic(fmt.Sprintf("memory: negative segment size %d", size))
	}
	return &Segment{id: id, buf: make([]byte, size)}
}

// ID returns the segment's identifier.
func (s *Segment) ID() SegmentID { return s.id }

// Size returns the segment's size in bytes.
func (s *Segment) Size() int { return len(s.buf) }

// Bytes returns the full backing slice. Mutating it is allowed; it is the
// segment's memory.
func (s *Segment) Bytes() []byte { return s.buf }

// Slice returns the sub-slice [off, off+n) or an error if out of range.
func (s *Segment) Slice(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+n > len(s.buf) {
		return nil, fmt.Errorf("memory: range [%d,%d) outside segment %d of size %d",
			off, off+n, s.id, len(s.buf))
	}
	return s.buf[off : off+n], nil
}

// Copy transfers n bytes from src at srcOff into dst at dstOff.
func Copy(dst *Segment, dstOff int, src *Segment, srcOff, n int) error {
	db, err := dst.Slice(dstOff, n)
	if err != nil {
		return fmt.Errorf("memory: copy destination: %w", err)
	}
	sb, err := src.Slice(srcOff, n)
	if err != nil {
		return fmt.Errorf("memory: copy source: %w", err)
	}
	copy(db, sb)
	return nil
}

// Registry holds the segments registered by one rank.
type Registry struct {
	mu       sync.RWMutex
	segments map[SegmentID]*Segment
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{segments: make(map[SegmentID]*Segment)}
}

// Create allocates and registers a segment. It fails if id is taken.
func (r *Registry) Create(id SegmentID, size int) (*Segment, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.segments[id]; ok {
		return nil, fmt.Errorf("memory: segment %d already registered", id)
	}
	s := NewSegment(id, size)
	r.segments[id] = s
	return s, nil
}

// Lookup returns the segment with the given id.
func (r *Registry) Lookup(id SegmentID) (*Segment, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.segments[id]
	if !ok {
		return nil, fmt.Errorf("memory: segment %d not registered", id)
	}
	return s, nil
}

// Delete unregisters a segment.
func (r *Registry) Delete(id SegmentID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.segments[id]; !ok {
		return fmt.Errorf("memory: segment %d not registered", id)
	}
	delete(r.segments, id)
	return nil
}

// F64 is a bounds-checked float64 view over a byte region, in little-endian
// layout (8 bytes per element).
type F64 struct {
	b []byte
}

// F64Bytes is the byte size of one F64 element.
const F64Bytes = 8

// F64View wraps a segment sub-range [byteOff, byteOff+8*n) as n float64s.
func F64View(s *Segment, byteOff, n int) (F64, error) {
	b, err := s.Slice(byteOff, n*F64Bytes)
	if err != nil {
		return F64{}, err
	}
	return F64{b: b}, nil
}

// F64Of wraps an existing byte slice; len(b) must be a multiple of 8.
func F64Of(b []byte) F64 {
	if len(b)%F64Bytes != 0 {
		panic(fmt.Sprintf("memory: F64Of over %d bytes, not a multiple of 8", len(b)))
	}
	return F64{b: b}
}

// Len returns the number of elements.
func (v F64) Len() int { return len(v.b) / F64Bytes }

// At returns element i.
func (v F64) At(i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(v.b[i*F64Bytes:]))
}

// Set stores x into element i.
func (v F64) Set(i int, x float64) {
	binary.LittleEndian.PutUint64(v.b[i*F64Bytes:], math.Float64bits(x))
}

// Fill sets every element to x.
func (v F64) Fill(x float64) {
	bits := math.Float64bits(x)
	for i := 0; i < len(v.b); i += F64Bytes {
		binary.LittleEndian.PutUint64(v.b[i:], bits)
	}
}

// Sub returns the sub-view of n elements starting at element off.
func (v F64) Sub(off, n int) F64 {
	return F64{b: v.b[off*F64Bytes : (off+n)*F64Bytes]}
}

// CopyIn copies the Go slice src into the view starting at element off.
func (v F64) CopyIn(off int, src []float64) {
	for i, x := range src {
		v.Set(off+i, x)
	}
}

// CopyOut copies n elements starting at off into a new Go slice.
func (v F64) CopyOut(off, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v.At(off + i)
	}
	return out
}

// I64 is a bounds-checked int64 view over a byte region (little-endian).
type I64 struct {
	b []byte
}

// I64Bytes is the byte size of one I64 element.
const I64Bytes = 8

// I64View wraps a segment sub-range as n int64s.
func I64View(s *Segment, byteOff, n int) (I64, error) {
	b, err := s.Slice(byteOff, n*I64Bytes)
	if err != nil {
		return I64{}, err
	}
	return I64{b: b}, nil
}

// I64Of wraps an existing byte slice; len(b) must be a multiple of 8.
func I64Of(b []byte) I64 {
	if len(b)%I64Bytes != 0 {
		panic(fmt.Sprintf("memory: I64Of over %d bytes, not a multiple of 8", len(b)))
	}
	return I64{b: b}
}

// Len returns the number of elements.
func (v I64) Len() int { return len(v.b) / I64Bytes }

// At returns element i.
func (v I64) At(i int) int64 {
	return int64(binary.LittleEndian.Uint64(v.b[i*I64Bytes:]))
}

// Set stores x into element i.
func (v I64) Set(i int, x int64) {
	binary.LittleEndian.PutUint64(v.b[i*I64Bytes:], uint64(x))
}
