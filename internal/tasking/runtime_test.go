package tasking

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vclock"
)

// run executes fn as the "rank main" of a fresh virtual-clock runtime and
// waits for it to return.
func run(cores int, fn func(clk *vclock.VirtualClock, rt *Runtime)) {
	clk := vclock.NewVirtual()
	rt := New(clk, Config{Cores: cores})
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		fn(clk, rt)
	})
	wg.Wait()
}

func TestSubmitAndTaskWait(t *testing.T) {
	var ran atomic.Int32
	run(4, func(clk *vclock.VirtualClock, rt *Runtime) {
		for i := 0; i < 20; i++ {
			rt.Submit(func(*Task) { ran.Add(1) })
		}
		rt.TaskWait()
		if ran.Load() != 20 {
			t.Errorf("ran = %d, want 20", ran.Load())
		}
	})
}

func TestTaskWaitNoTasks(t *testing.T) {
	run(1, func(clk *vclock.VirtualClock, rt *Runtime) {
		rt.TaskWait() // must not block
	})
}

func TestDependencySerializationOrder(t *testing.T) {
	var mu sync.Mutex
	var order []int
	run(4, func(clk *vclock.VirtualClock, rt *Runtime) {
		buf := new(int)
		for i := 0; i < 10; i++ {
			i := i
			rt.Submit(func(tk *Task) {
				tk.Compute(time.Microsecond)
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			}, WithDeps(InOutVal(buf)))
		}
		rt.TaskWait()
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("inout chain ran out of order: %v", order)
		}
	}
}

func TestReadersRunConcurrently(t *testing.T) {
	// One writer, then 8 readers with 1µs bodies on 8 cores: the readers
	// must overlap (total well under 8µs of serial time).
	var end time.Duration
	run(8, func(clk *vclock.VirtualClock, rt *Runtime) {
		buf := new(int)
		rt.Submit(func(tk *Task) { tk.Compute(time.Microsecond) },
			WithDeps(Out(buf, 0, 100)))
		for i := 0; i < 8; i++ {
			rt.Submit(func(tk *Task) { tk.Compute(time.Microsecond) },
				WithDeps(In(buf, 0, 100)))
		}
		rt.TaskWait()
		end = clk.Now()
	})
	if end != 2*time.Microsecond {
		t.Fatalf("writer+8 parallel readers took %v, want 2µs", end)
	}
}

func TestDisjointRegionsParallel(t *testing.T) {
	var end time.Duration
	run(4, func(clk *vclock.VirtualClock, rt *Runtime) {
		buf := new(int)
		for i := 0; i < 4; i++ {
			lo := i * 10
			rt.Submit(func(tk *Task) { tk.Compute(time.Microsecond) },
				WithDeps(Out(buf, lo, lo+10)))
		}
		rt.TaskWait()
		end = clk.Now()
	})
	if end != time.Microsecond {
		t.Fatalf("4 disjoint writers took %v, want 1µs (parallel)", end)
	}
}

func TestCoreLimitSerializes(t *testing.T) {
	var end time.Duration
	run(2, func(clk *vclock.VirtualClock, rt *Runtime) {
		for i := 0; i < 6; i++ {
			rt.Submit(func(tk *Task) { tk.Compute(time.Microsecond) })
		}
		rt.TaskWait()
		end = clk.Now()
	})
	if end != 3*time.Microsecond {
		t.Fatalf("6 x 1µs tasks on 2 cores took %v, want 3µs", end)
	}
}

func TestExternalEventsDelayRelease(t *testing.T) {
	// A task binds an event; its successor must not run until the event is
	// fulfilled, even though the body finished long before.
	var successorAt time.Duration
	run(4, func(clk *vclock.VirtualClock, rt *Runtime) {
		buf := new(int)
		var counter *EventCounter
		rt.Submit(func(tk *Task) {
			c := tk.Events()
			c.Increase(1)
			counter = c
		}, WithDeps(OutVal(buf)), WithLabel("comm"))
		rt.Submit(func(tk *Task) {
			successorAt = clk.Now()
		}, WithDeps(InVal(buf)), WithLabel("consumer"))

		// Fulfil the event from a "courier" 50µs later.
		clk.Go(func() {
			clk.Sleep(50 * time.Microsecond)
			counter.Decrease(1)
		})
		rt.TaskWait()
	})
	if successorAt != 50*time.Microsecond {
		t.Fatalf("successor ran at %v, want 50µs (after event)", successorAt)
	}
}

func TestEventsMultiple(t *testing.T) {
	var successorRan atomic.Bool
	run(2, func(clk *vclock.VirtualClock, rt *Runtime) {
		buf := new(int)
		var counter *EventCounter
		rt.Submit(func(tk *Task) {
			counter = tk.Events()
			counter.Increase(3)
		}, WithDeps(OutVal(buf)))
		rt.Submit(func(*Task) { successorRan.Store(true) }, WithDeps(InVal(buf)))
		clk.Go(func() {
			clk.Sleep(time.Microsecond)
			counter.Decrease(1)
			clk.Sleep(time.Microsecond)
			counter.Decrease(1)
			if successorRan.Load() {
				t.Error("successor ran before all events fulfilled")
			}
			counter.Decrease(1)
		})
		rt.TaskWait()
	})
	if !successorRan.Load() {
		t.Fatal("successor never ran")
	}
}

func TestEventCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	clk := vclock.NewVirtual()
	rt := New(clk, Config{Cores: 1})
	tk := &Task{rt: rt}
	tk.comp = EventCounter{t: tk, n: 0}
	tk.comp.Decrease(1)
}

func TestOnReadyRunsBeforeBody(t *testing.T) {
	var seq []string
	var mu sync.Mutex
	log := func(s string) { mu.Lock(); seq = append(seq, s); mu.Unlock() }
	run(2, func(clk *vclock.VirtualClock, rt *Runtime) {
		buf := new(int)
		rt.Submit(func(*Task) { log("pred") }, WithDeps(OutVal(buf)))
		rt.Submit(func(*Task) { log("body") },
			WithDeps(InVal(buf)),
			WithOnReady(func(*Task) { log("onready") }))
		rt.TaskWait()
	})
	want := []string{"pred", "onready", "body"}
	if len(seq) != 3 {
		t.Fatalf("seq = %v", seq)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq = %v, want %v", seq, want)
		}
	}
}

func TestOnReadyEventsDelayExecution(t *testing.T) {
	// The onready callback registers an event (the §V-A remote-dependency
	// pattern); the body must not run until it is fulfilled.
	var bodyAt time.Duration
	run(2, func(clk *vclock.VirtualClock, rt *Runtime) {
		var counter *EventCounter
		rt.Submit(func(tk *Task) {
			bodyAt = clk.Now()
		}, WithOnReady(func(tk *Task) {
			counter = tk.Events()
			counter.Increase(1) // "waiting for the ack notification"
		}))
		clk.Go(func() {
			clk.Sleep(30 * time.Microsecond)
			counter.Decrease(1) // "ack arrived"
		})
		rt.TaskWait()
	})
	if bodyAt != 30*time.Microsecond {
		t.Fatalf("body ran at %v, want 30µs", bodyAt)
	}
}

func TestOnReadyEventAlreadyFulfilled(t *testing.T) {
	// If the callback registers no events the task runs immediately.
	var ran atomic.Bool
	run(1, func(clk *vclock.VirtualClock, rt *Runtime) {
		rt.Submit(func(*Task) { ran.Store(true) },
			WithOnReady(func(*Task) {}))
		rt.TaskWait()
	})
	if !ran.Load() {
		t.Fatal("task never ran")
	}
}

func TestWaitForYieldsCore(t *testing.T) {
	// On a single core, a task sleeping in WaitFor must let another task
	// run; total time is max not sum.
	var end time.Duration
	run(1, func(clk *vclock.VirtualClock, rt *Runtime) {
		rt.Submit(func(tk *Task) {
			slept := tk.WaitFor(10 * time.Microsecond)
			if slept < 10*time.Microsecond {
				t.Errorf("WaitFor slept %v, want >= 10µs", slept)
			}
		})
		rt.Submit(func(tk *Task) { tk.Compute(10 * time.Microsecond) })
		rt.TaskWait()
		end = clk.Now()
	})
	// The WaitFor task yields; the compute task uses the core in parallel
	// with the sleep: total 10µs (plus nothing), not 20µs.
	if end != 10*time.Microsecond {
		t.Fatalf("total %v, want 10µs (WaitFor must yield its core)", end)
	}
}

func TestYieldReleasesCore(t *testing.T) {
	var end time.Duration
	run(1, func(clk *vclock.VirtualClock, rt *Runtime) {
		rt.Submit(func(tk *Task) {
			tk.Yield(func() { clk.Sleep(5 * time.Microsecond) })
		})
		rt.Submit(func(tk *Task) { tk.Compute(5 * time.Microsecond) })
		rt.TaskWait()
		end = clk.Now()
	})
	if end != 5*time.Microsecond {
		t.Fatalf("total %v, want 5µs", end)
	}
}

func TestSpawnAndShutdown(t *testing.T) {
	var polls atomic.Int32
	run(2, func(clk *vclock.VirtualClock, rt *Runtime) {
		rt.Spawn(func(tk *Task) {
			for !rt.Stopping() {
				polls.Add(1)
				tk.WaitFor(10 * time.Microsecond)
			}
		}, "poller")
		rt.Submit(func(tk *Task) { tk.Compute(100 * time.Microsecond) })
		rt.TaskWait()
		rt.Shutdown()
	})
	if p := polls.Load(); p < 5 {
		t.Fatalf("poller ran %d times, want >= 5", p)
	}
}

func TestSpawnDoesNotBlockTaskWait(t *testing.T) {
	run(2, func(clk *vclock.VirtualClock, rt *Runtime) {
		rt.Spawn(func(tk *Task) {
			for !rt.Stopping() {
				tk.WaitFor(time.Microsecond)
			}
		}, "svc")
		rt.Submit(func(*Task) {})
		rt.TaskWait() // must return even though the service still runs
		rt.Shutdown()
	})
}

func TestSubmitAfterShutdownPanics(t *testing.T) {
	run(1, func(clk *vclock.VirtualClock, rt *Runtime) {
		rt.Shutdown()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		rt.Submit(func(*Task) {})
	})
}

func TestThrottle(t *testing.T) {
	run(1, func(clk *vclock.VirtualClock, rt *Runtime) {
		for i := 0; i < 10; i++ {
			rt.Submit(func(tk *Task) { tk.Compute(time.Microsecond) })
		}
		rt.Throttle(3)
		rt.mu.Lock()
		live := rt.live
		rt.mu.Unlock()
		if live > 3 {
			t.Errorf("Throttle returned with %d live tasks, want <= 3", live)
		}
		rt.TaskWait()
	})
}

func TestSubmitAndDispatchOverheads(t *testing.T) {
	clk := vclock.NewVirtual()
	rt := New(clk, Config{Cores: 1, SubmitOverhead: time.Microsecond, DispatchOverhead: 2 * time.Microsecond})
	var end time.Duration
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			rt.Submit(func(*Task) {})
		}
		rt.TaskWait()
		end = clk.Now()
	})
	wg.Wait()
	// 5 submissions at 1µs each (serial on the submitter) plus 5 dispatches
	// at 2µs each on one core; dispatch of task i overlaps submission of
	// i+1, so total = submit(1µs) + 5*dispatch(2µs) = 11µs.
	if end != 11*time.Microsecond {
		t.Fatalf("total %v, want 11µs", end)
	}
}

func TestStats(t *testing.T) {
	run(2, func(clk *vclock.VirtualClock, rt *Runtime) {
		rt.Spawn(func(tk *Task) {
			for !rt.Stopping() {
				tk.WaitFor(time.Microsecond)
			}
		}, "svc")
		for i := 0; i < 7; i++ {
			rt.Submit(func(*Task) {})
		}
		rt.TaskWait()
		st := rt.Stats()
		if st.Submitted != 7 || st.Spawned != 1 {
			t.Errorf("stats = %+v", st)
		}
		if st.Completed != 7 {
			t.Errorf("completed = %d, want 7", st.Completed)
		}
		rt.Shutdown()
	})
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(vclock.NewVirtual(), Config{Cores: 0})
}

// Property: for any random task graph over a shared array, tasks with
// conflicting accesses (not both reads) never overlap in virtual time, and
// conflicting tasks complete in submission order.
func TestQuickConflictingTasksNeverOverlap(t *testing.T) {
	const size = 32
	type span struct {
		lo, hi     int
		mode       AccessMode
		start, end time.Duration
	}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%20) + 2
		spans := make([]span, k)
		var mu sync.Mutex
		ok := true
		durs := make([]time.Duration, k)
		for i := range durs {
			durs[i] = time.Duration(1+rng.Intn(3)) * time.Microsecond
		}
		run(4, func(clk *vclock.VirtualClock, rt *Runtime) {
			base := new(int)
			for i := 0; i < k; i++ {
				i := i
				lo := rng.Intn(size)
				hi := lo + 1 + rng.Intn(size-lo)
				mode := AccessMode(rng.Intn(3))
				spans[i] = span{lo: lo, hi: hi, mode: mode}
				rt.Submit(func(tk *Task) {
					mu.Lock()
					spans[i].start = clk.Now()
					mu.Unlock()
					tk.Compute(durs[i])
					mu.Lock()
					spans[i].end = clk.Now()
					mu.Unlock()
				}, WithDeps(Dep{Mode: mode, Base: base, Lo: lo, Hi: hi}))
			}
			rt.TaskWait()
		})
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				a, b := spans[i], spans[j]
				overlapRange := a.lo < b.hi && b.lo < a.hi
				conflict := overlapRange && !(a.mode == AccessIn && b.mode == AccessIn)
				if !conflict {
					continue
				}
				// i was submitted first: it must fully precede j.
				if !(a.end <= b.start) {
					ok = false
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: every submitted task eventually completes for random graphs
// (no lost wakeups in the scheduler), and TaskWait returns only after all
// bodies ran.
func TestQuickAllTasksComplete(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%50) + 1
		var ran atomic.Int32
		var completedAfterWait int64
		run(3, func(clk *vclock.VirtualClock, rt *Runtime) {
			base := new(int)
			for i := 0; i < k; i++ {
				lo := rng.Intn(16)
				hi := lo + 1 + rng.Intn(16-lo+1)
				mode := AccessMode(rng.Intn(3))
				rt.Submit(func(tk *Task) { ran.Add(1) },
					WithDeps(Dep{Mode: mode, Base: base, Lo: lo, Hi: hi}))
			}
			rt.TaskWait()
			completedAfterWait = rt.Stats().Completed
		})
		return int(ran.Load()) == k && completedAfterWait == int64(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSubmitExecute(b *testing.B) {
	clk := vclock.NewVirtual()
	rt := New(clk, Config{Cores: 4})
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			rt.Submit(func(*Task) {})
		}
		rt.TaskWait()
	})
	wg.Wait()
}

func BenchmarkDependencyChain(b *testing.B) {
	clk := vclock.NewVirtual()
	rt := New(clk, Config{Cores: 4})
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		base := new(int)
		for i := 0; i < b.N; i++ {
			rt.Submit(func(*Task) {}, WithDeps(InOutVal(base)))
		}
		rt.TaskWait()
	})
	wg.Wait()
}

// TestShutdownIdempotent is the early-teardown regression test for the
// scheduler half of the substrate: Shutdown must be callable repeatedly —
// with live spawned services, with pooled workers parked idle, and again
// after the pool has already stopped — without panicking or hanging. A
// rank that exits early shuts its runtime down while siblings are still
// mid-job, and teardown paths run once per rank per Run plus once more on
// defensive cleanup.
func TestShutdownIdempotent(t *testing.T) {
	var polls atomic.Int32
	run(2, func(clk *vclock.VirtualClock, rt *Runtime) {
		rt.Spawn(func(tk *Task) {
			for !rt.Stopping() {
				polls.Add(1)
				tk.WaitFor(5 * time.Microsecond)
			}
		}, "poller")
		for i := 0; i < 8; i++ {
			rt.Submit(func(tk *Task) { tk.Compute(time.Microsecond) })
		}
		rt.TaskWait()
		rt.Shutdown()
		rt.Shutdown() // second call: pool already stopped, spawn drained
		rt.Shutdown()
	})
	if polls.Load() == 0 {
		t.Fatal("poller never ran")
	}
	// A fresh runtime that never ran a task must also shut down cleanly
	// (no worker was ever spawned, the pool has no parked idlers).
	run(1, func(clk *vclock.VirtualClock, rt *Runtime) {
		rt.Shutdown()
		rt.Shutdown()
	})
}
