package tasking

import "fmt"

// AccessMode is the access a task declares on a region, as in the OmpSs-2
// depend clause.
type AccessMode uint8

// Access modes.
const (
	AccessIn    AccessMode = iota // read: depends on the last writer
	AccessOut                     // write: depends on all prior accessors
	AccessInOut                   // read-write: same ordering as write
)

func (m AccessMode) String() string {
	switch m {
	case AccessIn:
		return "in"
	case AccessOut:
		return "out"
	case AccessInOut:
		return "inout"
	}
	return fmt.Sprintf("AccessMode(%d)", uint8(m))
}

// Dep is one region dependency: an access mode over the half-open range
// [Lo, Hi) of the object identified by Base. Base may be any comparable
// value; by convention it is a pointer (&buf[0], &flag) or a small key
// struct, so distinct buffers never collide.
type Dep struct {
	Mode   AccessMode
	Base   any
	Lo, Hi int
}

// In declares a read dependency over [lo, hi) of base.
func In(base any, lo, hi int) Dep { return Dep{Mode: AccessIn, Base: base, Lo: lo, Hi: hi} }

// Out declares a write dependency over [lo, hi) of base.
func Out(base any, lo, hi int) Dep { return Dep{Mode: AccessOut, Base: base, Lo: lo, Hi: hi} }

// InOut declares a read-write dependency over [lo, hi) of base.
func InOut(base any, lo, hi int) Dep { return Dep{Mode: AccessInOut, Base: base, Lo: lo, Hi: hi} }

// InVal declares a read dependency on the whole of base (range [0,1)):
// the idiom for scalar sentinels such as notification flags.
func InVal(base any) Dep { return Dep{Mode: AccessIn, Base: base, Lo: 0, Hi: 1} }

// OutVal declares a write dependency on the whole of base (range [0,1)).
func OutVal(base any) Dep { return Dep{Mode: AccessOut, Base: base, Lo: 0, Hi: 1} }

// InOutVal declares a read-write dependency on the whole of base.
func InOutVal(base any) Dep { return Dep{Mode: AccessInOut, Base: base, Lo: 0, Hi: 1} }

// interval is a maximal range of one object with a homogeneous accessor
// history: the last writer and the readers that accessed it since.
type interval struct {
	lo, hi  int
	writer  *Task
	readers []*Task
}

// objectDeps tracks the access history of one Base as a sorted list of
// non-overlapping intervals.
type objectDeps struct {
	ivs []interval
}

// depRegistry is the per-runtime dependency domain. All methods must be
// called with the runtime lock held.
type depRegistry struct {
	objs map[any]*objectDeps

	// scratch is the spare interval buffer of the slow path in register:
	// the rebuilt list is written into scratch and swapped with the
	// object's old backing array, so repeated range splits recycle two
	// arrays instead of growing a fresh one per call. Guarded by the
	// runtime lock like everything else here.
	scratch []interval
}

func newDepRegistry() *depRegistry {
	return &depRegistry{objs: make(map[any]*objectDeps)}
}

// register records t's access and links t behind every predecessor found.
// It returns the number of dependency edges added (t.preds increments).
func (r *depRegistry) register(t *Task, d Dep) int {
	if d.Lo >= d.Hi {
		panic(fmt.Sprintf("tasking: empty dependency range [%d,%d)", d.Lo, d.Hi))
	}
	od := r.objs[d.Base]
	if od == nil {
		od = &objectDeps{}
		r.objs[d.Base] = od
	}
	edges := 0
	addEdge := func(pred *Task) {
		if pred == nil || pred == t || pred.state == stateCompleted {
			return
		}
		pred.succs = append(pred.succs, t)
		edges++
	}

	lo, hi := d.Lo, d.Hi

	// Fast path: the range coincides with one existing interval, as in
	// repeated per-slot dependencies (the dominant pattern in applications
	// that re-register the same block/slot ranges every iteration). The
	// interval is updated in place with no slice surgery.
	if i := searchIvs(od.ivs, lo); i < len(od.ivs) && od.ivs[i].lo == lo && od.ivs[i].hi == hi {
		iv := &od.ivs[i]
		switch d.Mode {
		case AccessIn:
			addEdge(iv.writer)
			iv.readers = append(iv.readers, t)
		default:
			addEdge(iv.writer)
			for _, rd := range iv.readers {
				addEdge(rd)
			}
			iv.writer = t
			iv.readers = iv.readers[:0]
		}
		return edges
	}

	out := r.scratch[:0]
	i := 0
	// Keep intervals entirely before the new range.
	for ; i < len(od.ivs) && od.ivs[i].hi <= lo; i++ {
		out = append(out, od.ivs[i])
	}
	cursor := lo
	for ; i < len(od.ivs) && od.ivs[i].lo < hi; i++ {
		iv := od.ivs[i]
		if cursor < iv.lo {
			// Gap [cursor, iv.lo): first access to this sub-range.
			out = append(out, r.fresh(t, d.Mode, cursor, iv.lo))
			cursor = iv.lo
		}
		if iv.lo < cursor {
			// Leading part of iv untouched by the new range. Readers are
			// copied so pieces never alias (the in-place fast path appends
			// to reader slices).
			out = append(out, interval{lo: iv.lo, hi: cursor, writer: iv.writer,
				readers: copyReaders(iv.readers)})
		}
		ovHi := min(iv.hi, hi)
		// Overlapping part [cursor, ovHi): apply the access.
		switch d.Mode {
		case AccessIn:
			addEdge(iv.writer)
			nv := interval{lo: cursor, hi: ovHi, writer: iv.writer}
			nv.readers = append(append([]*Task(nil), iv.readers...), t)
			out = append(out, nv)
		case AccessOut, AccessInOut:
			addEdge(iv.writer)
			for _, rd := range iv.readers {
				addEdge(rd)
			}
			out = append(out, interval{lo: cursor, hi: ovHi, writer: t})
		}
		if iv.hi > hi {
			// Trailing part of iv beyond the new range (readers copied; see
			// the leading-part comment).
			out = append(out, interval{lo: hi, hi: iv.hi, writer: iv.writer,
				readers: copyReaders(iv.readers)})
		}
		cursor = ovHi
	}
	if cursor < hi {
		out = append(out, r.fresh(t, d.Mode, cursor, hi))
	}
	// Remaining intervals after the new range.
	out = append(out, od.ivs[i:]...)
	// Swap: the object's old array (task pointers zeroed) becomes the next
	// slow path's scratch.
	old := od.ivs
	clear(old)
	r.scratch = old[:0]
	od.ivs = out
	return edges
}

// fresh builds the interval for a first access to [lo, hi).
func (r *depRegistry) fresh(t *Task, m AccessMode, lo, hi int) interval {
	switch m {
	case AccessIn:
		return interval{lo: lo, hi: hi, readers: []*Task{t}}
	default:
		return interval{lo: lo, hi: hi, writer: t}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// copyReaders clones a reader list so interval pieces never share backing
// arrays.
func copyReaders(rs []*Task) []*Task {
	if len(rs) == 0 {
		return nil
	}
	return append(make([]*Task, 0, len(rs)), rs...)
}

// searchIvs returns the index of the first interval with hi > lo
// (intervals are sorted and non-overlapping).
func searchIvs(ivs []interval, lo int) int {
	n := len(ivs)
	i, j := 0, n
	for i < j {
		h := (i + j) / 2
		if ivs[h].hi <= lo {
			i = h + 1
		} else {
			j = h
		}
	}
	return i
}
