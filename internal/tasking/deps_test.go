package tasking

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// edgeSet extracts the distinct (pred, succ) pairs currently recorded.
func edgeSet(tasks []*Task) map[[2]*Task]bool {
	es := make(map[[2]*Task]bool)
	for _, t := range tasks {
		for _, s := range t.succs {
			es[[2]*Task{t, s}] = true
		}
	}
	return es
}

func TestRegistryReadersShareWritersSerialize(t *testing.T) {
	reg := newDepRegistry()
	base := new(int)
	w1 := &Task{label: "w1"}
	r1 := &Task{label: "r1"}
	r2 := &Task{label: "r2"}
	w2 := &Task{label: "w2"}

	if n := reg.register(w1, Out(base, 0, 10)); n != 0 {
		t.Fatalf("first writer got %d preds, want 0", n)
	}
	if n := reg.register(r1, In(base, 0, 10)); n != 1 {
		t.Fatalf("reader after writer got %d preds, want 1", n)
	}
	if n := reg.register(r2, In(base, 0, 10)); n != 1 {
		t.Fatalf("second reader got %d preds, want 1 (readers are concurrent)", n)
	}
	n := reg.register(w2, Out(base, 0, 10))
	if n != 3 {
		t.Fatalf("writer after writer+2 readers got %d preds, want 3", n)
	}
	es := edgeSet([]*Task{w1, r1, r2, w2})
	for _, want := range [][2]*Task{{w1, r1}, {w1, r2}, {w1, w2}, {r1, w2}, {r2, w2}} {
		if !es[want] {
			t.Fatalf("missing edge %s->%s", want[0].label, want[1].label)
		}
	}
	if es[[2]*Task{r1, r2}] || es[[2]*Task{r2, r1}] {
		t.Fatal("readers must not depend on each other")
	}
}

func TestRegistryDisjointRangesIndependent(t *testing.T) {
	reg := newDepRegistry()
	base := new(int)
	a := &Task{label: "a"}
	b := &Task{label: "b"}
	reg.register(a, Out(base, 0, 10))
	if n := reg.register(b, Out(base, 10, 20)); n != 0 {
		t.Fatalf("disjoint writer got %d preds, want 0", n)
	}
}

func TestRegistryPartialOverlapSplits(t *testing.T) {
	reg := newDepRegistry()
	base := new(int)
	a := &Task{label: "a"}
	b := &Task{label: "b"}
	c := &Task{label: "c"}
	reg.register(a, Out(base, 0, 100))
	if n := reg.register(b, Out(base, 50, 150)); n == 0 {
		t.Fatal("overlapping writer must depend on prior writer")
	}
	// c reads [0,50): only a wrote there — must depend on a alone.
	n := reg.register(c, In(base, 0, 50))
	if n != 1 {
		t.Fatalf("c got %d preds, want 1", n)
	}
	es := edgeSet([]*Task{a, b})
	if !es[[2]*Task{a, c}] {
		t.Fatal("missing a->c edge")
	}
	if es[[2]*Task{b, c}] {
		t.Fatal("c must not depend on b (disjoint ranges)")
	}
}

func TestRegistryDistinctBasesIndependent(t *testing.T) {
	reg := newDepRegistry()
	b1, b2 := new(int), new(int)
	a := &Task{label: "a"}
	b := &Task{label: "b"}
	reg.register(a, Out(b1, 0, 10))
	if n := reg.register(b, InOut(b2, 0, 10)); n != 0 {
		t.Fatalf("different base got %d preds, want 0", n)
	}
}

func TestRegistrySelfEdgesSkipped(t *testing.T) {
	reg := newDepRegistry()
	base := new(int)
	a := &Task{label: "a"}
	reg.register(a, Out(base, 0, 10))
	if n := reg.register(a, In(base, 0, 10)); n != 0 {
		t.Fatalf("self-dependency created %d edges, want 0", n)
	}
}

func TestRegistryCompletedPredsSkipped(t *testing.T) {
	reg := newDepRegistry()
	base := new(int)
	a := &Task{label: "a", state: stateCompleted}
	b := &Task{label: "b"}
	reg.register(a, Out(base, 0, 10))
	a.state = stateCompleted
	if n := reg.register(b, In(base, 0, 10)); n != 0 {
		t.Fatalf("completed predecessor created %d edges, want 0", n)
	}
}

func TestRegistryEmptyRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newDepRegistry().register(&Task{}, In(new(int), 5, 5))
}

// Property: the interval registry produces exactly the edges of a naive
// per-element dependency model, for random access sequences.
func TestQuickRegistryMatchesNaiveModel(t *testing.T) {
	const size = 64
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%24) + 2
		reg := newDepRegistry()
		base := new(int)

		// Naive model: per element, last writer and readers-since-write.
		var writer [size]*Task
		var readers [size][]*Task
		naive := make(map[[2]*Task]bool)

		tasks := make([]*Task, k)
		for i := 0; i < k; i++ {
			tk := &Task{label: string(rune('A' + i))}
			tasks[i] = tk
			lo := rng.Intn(size)
			hi := lo + 1 + rng.Intn(size-lo)
			mode := AccessMode(rng.Intn(3))
			reg.register(tk, Dep{Mode: mode, Base: base, Lo: lo, Hi: hi})
			for e := lo; e < hi; e++ {
				switch mode {
				case AccessIn:
					if writer[e] != nil && writer[e] != tk {
						naive[[2]*Task{writer[e], tk}] = true
					}
					readers[e] = append(readers[e], tk)
				default:
					if writer[e] != nil && writer[e] != tk {
						naive[[2]*Task{writer[e], tk}] = true
					}
					for _, r := range readers[e] {
						if r != tk {
							naive[[2]*Task{r, tk}] = true
						}
					}
					writer[e] = tk
					readers[e] = nil
				}
			}
		}
		got := edgeSet(tasks)
		if len(got) != len(naive) {
			return false
		}
		for e := range naive {
			if !got[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: pred multiplicity is consistent — the number of edges recorded
// in succs lists equals the sum of preds counters.
func TestQuickRegistryEdgeCountConsistency(t *testing.T) {
	const size = 32
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%16) + 2
		reg := newDepRegistry()
		base := new(int)
		tasks := make([]*Task, k)
		totalPreds := 0
		for i := 0; i < k; i++ {
			tk := &Task{}
			tasks[i] = tk
			lo := rng.Intn(size)
			hi := lo + 1 + rng.Intn(size-lo)
			mode := AccessMode(rng.Intn(3))
			totalPreds += reg.register(tk, Dep{Mode: mode, Base: base, Lo: lo, Hi: hi})
		}
		totalSuccs := 0
		for _, tk := range tasks {
			totalSuccs += len(tk.succs)
		}
		return totalSuccs == totalPreds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
