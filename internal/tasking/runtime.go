// Package tasking implements the task-based programming model of the paper:
// an OmpSs-2-style runtime with region data dependencies, the task external
// events API, the onready clause (§V-A), timed yields (wait_for_us, §V-B)
// and spawned service tasks (nanos6_spawn_function).
//
// Tasks declare in/out/inout dependencies over ranges of application
// objects; the runtime derives the execution order from those regions,
// giving the data-flow execution the paper's hybrid variants rely on.
// A task's completion — and therefore the release of its dependencies —
// can be delayed past the end of its body by external events, which is the
// hook the task-aware communication libraries (packages tampi and tagaspi)
// use to bind in-flight communication operations to tasks.
//
// Each simulated rank owns one Runtime whose worker pool has one slot per
// core. Running tasks are goroutines holding a core slot; blocking library
// calls yield the slot, as with the Nanos6 blocking API.
package tasking

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/vclock"
)

// Config parameterises a Runtime.
type Config struct {
	// Cores is the number of worker slots (cores of the rank).
	Cores int
	// SubmitOverhead is modelled time charged to the submitter per task
	// creation (dependency registration cost). Zero under the ideal
	// profile; nonzero values reproduce the tasking overheads the paper
	// observes with small block sizes (Figs. 10 and 12).
	SubmitOverhead time.Duration
	// DispatchOverhead is modelled time charged on a core before each
	// task body runs (scheduling cost).
	DispatchOverhead time.Duration
}

// Stats counts runtime activity.
type Stats struct {
	Submitted int64 // tasks submitted (excluding spawned services)
	Completed int64 // submitted tasks fully completed
	Spawned   int64 // service tasks spawned
}

// Runtime is a per-rank tasking runtime.
type Runtime struct {
	clk   vclock.Clock
	cfg   Config
	cores *coreSched
	pool  *workerPool

	rec   obs.Recorder // nil: uninstrumented
	rank  int          // rank identity for trace events
	lanes laneAlloc    // timeline rows for concurrently running bodies

	mu        sync.Mutex
	reg       *depRegistry
	live      int // incomplete regular tasks
	spawnLive int // incomplete spawned service tasks
	stopping  bool
	seq       int64           // task ids for trace correlation
	twWaiters []vclock.Parker // TaskWait: woken when live hits 0
	thWaiters []throttleWaiter
	sdWaiters []vclock.Parker // Shutdown: woken when spawnLive hits 0
	stats     Stats
}

type throttleWaiter struct {
	p   vclock.Parker
	max int
}

// New builds a runtime with the given core count and overheads.
func New(clk vclock.Clock, cfg Config) *Runtime {
	if cfg.Cores <= 0 {
		panic(fmt.Sprintf("tasking: invalid core count %d", cfg.Cores))
	}
	rt := &Runtime{
		clk:   clk,
		cfg:   cfg,
		cores: newCoreSched(clk, cfg.Cores),
		reg:   newDepRegistry(),
	}
	rt.pool = &workerPool{rt: rt}
	return rt
}

// Clock returns the runtime's time source.
func (rt *Runtime) Clock() vclock.Clock { return rt.clk }

// Cores returns the worker slot count.
func (rt *Runtime) Cores() int { return rt.cfg.Cores }

// SetRecorder installs the observability recorder and the runtime's rank
// identity for trace events. It must be called before the first Submit or
// Spawn; a nil recorder (the default) keeps the runtime uninstrumented.
func (rt *Runtime) SetRecorder(rec obs.Recorder, rank int) {
	rt.rec = rec
	rt.rank = rank
}

// Recorder returns the installed recorder (nil when uninstrumented). The
// task-aware libraries and their polling services inherit it from here.
func (rt *Runtime) Recorder() obs.Recorder { return rt.rec }

// Rank returns the rank identity set with SetRecorder (zero by default).
func (rt *Runtime) Rank() int { return rt.rank }

// Option customises one task.
type Option func(*Task)

// WithDeps attaches region dependencies.
func WithDeps(deps ...Dep) Option {
	return func(t *Task) { t.deps = append(t.deps, deps...) }
}

// WithLabel attaches a diagnostic label.
func WithLabel(label string) Option {
	return func(t *Task) { t.label = label }
}

// WithOnReady attaches an onready callback (§V-A): it runs exactly once,
// after the task's dependencies are satisfied and before its body, outside
// any task context. It may register events on the task (via Events()) that
// delay the body's execution until they are fulfilled.
func WithOnReady(cb func(*Task)) Option {
	return func(t *Task) { t.onready = cb }
}

// Submit creates a task and registers its dependencies in program order.
// It returns the task handle; the task runs asynchronously once its
// dependencies are satisfied and a core is free.
//
// Submit must not be called concurrently from multiple goroutines of the
// same runtime when tasks share regions: like OmpSs-2, the sequential
// submission order defines the data-flow semantics.
func (rt *Runtime) Submit(body Body, opts ...Option) *Task {
	if rt.cfg.SubmitOverhead > 0 {
		rt.clk.Sleep(rt.cfg.SubmitOverhead)
	}
	t := &Task{rt: rt, body: body}
	for _, o := range opts {
		o(t)
	}
	t.pre = EventCounter{t: t, pre: true}
	t.comp = EventCounter{t: t, n: 1} // the body-execution pseudo-event
	rt.mu.Lock()
	if rt.stopping {
		rt.mu.Unlock()
		panic("tasking: Submit after Shutdown")
	}
	rt.live++
	rt.stats.Submitted++
	rt.seq++
	t.id = rt.seq
	for _, d := range t.deps {
		t.preds += rt.reg.register(t, d)
	}
	satisfied := t.preds == 0
	rt.mu.Unlock()
	if rt.rec != nil {
		rt.rec.Instant(rt.rank, obs.TrackMain, obs.CatTask, "task:create", rt.clk.Now(), t.id)
	}
	if satisfied {
		rt.depsSatisfied(t)
	}
	return t
}

// Spawn starts an independent service task (nanos6_spawn_function): it has
// no dependencies, does not count towards TaskWait, and is expected to exit
// once Stopping() reports true. The task-aware libraries spawn their
// polling tasks this way.
func (rt *Runtime) Spawn(body Body, label string) *Task {
	t := &Task{rt: rt, body: body, label: label, spawned: true}
	t.pre = EventCounter{t: t, pre: true}
	t.comp = EventCounter{t: t, n: 1}
	rt.mu.Lock()
	if rt.stopping {
		rt.mu.Unlock()
		panic("tasking: Spawn after Shutdown")
	}
	rt.spawnLive++
	rt.stats.Spawned++
	rt.seq++
	t.id = rt.seq
	t.state = stateQueued
	rt.mu.Unlock()
	rt.dispatch(t)
	return t
}

// depsSatisfied advances a task whose dependencies are all released:
// through the onready callback if present, then to the ready queue.
func (rt *Runtime) depsSatisfied(t *Task) {
	if t.onready != nil {
		rt.mu.Lock()
		t.state = stateOnready
		t.pre.n = 1 // guard: the callback itself
		rt.mu.Unlock()
		t.onready(t)
		// Releasing the guard schedules the task once (and only once)
		// every event the callback registered has been fulfilled.
		t.pre.Decrease(1)
		return
	}
	rt.mu.Lock()
	t.state = stateQueued
	rt.mu.Unlock()
	rt.markReady(t)
}

// markReady records the task's readiness (for the ready-to-run latency and
// the timeline) and hands it to the worker pool. Callers must not hold
// rt.mu.
func (rt *Runtime) markReady(t *Task) {
	if rt.rec != nil {
		t.readyAt = rt.clk.Now()
		if t.relBy != 0 {
			rt.rec.Flow(rt.rank, obs.TrackMain, obs.CatTask, "flow:task", 'f',
				t.readyAt, obs.FlowID(obs.FlowKindTask, int64(rt.rank), t.relBy, t.id))
		}
		rt.rec.Instant(rt.rank, obs.TrackMain, obs.CatTask, "task:ready", t.readyAt, t.id)
	}
	rt.dispatch(t)
}

// recReleaseEdges starts one dependency-release flow edge from completed
// task t to every successor its completion made ready; markReady finishes
// each edge at the successor's ready timestamp. Edge ids hash (rank,
// predecessor id, successor id) — all deterministic — so reruns emit
// identical edges. Callers must not hold rt.mu (lockcross discipline).
func (rt *Runtime) recReleaseEdges(t *Task, ready []*Task) {
	if rt.rec == nil || len(ready) == 0 {
		return
	}
	now := rt.clk.Now()
	for _, s := range ready {
		rt.rec.Flow(rt.rank, obs.TrackMain, obs.CatTask, "flow:task", 's',
			now, obs.FlowID(obs.FlowKindTask, int64(rt.rank), t.id, s.id))
	}
}

// dispatch hands a ready task to the worker pool. The core-grant ticket is
// taken synchronously so that tasks receive cores in readiness order, not
// in goroutine-scheduling order.
func (rt *Runtime) dispatch(t *Task) {
	rt.pool.submit(t)
}

// exec runs one dispatched task on the calling pool worker: it claims the
// task's core grant, charges the dispatch overhead, runs the body and
// completes it — byte for byte the sequence the per-task goroutines of the
// unsharded runtime executed, so the modelled schedule is unchanged.
//
//tagalint:hotpath
func (rt *Runtime) exec(t *Task, ticket uint64) {
	rt.cores.acquire(ticket)
	if rt.cfg.DispatchOverhead > 0 {
		rt.clk.Sleep(rt.cfg.DispatchOverhead)
	}
	rt.mu.Lock()
	t.state = stateRunning
	rt.mu.Unlock()
	t.pooled = true
	var start time.Duration
	if rt.rec != nil {
		start = rt.clk.Now()
		t.lane = rt.lanes.acquire()
		if !t.spawned {
			rt.rec.Latency("tasking.ready_to_run", start-t.readyAt)
		}
	}
	if t.body != nil {
		t.body(t)
	}
	if rt.rec != nil {
		rt.rec.Span(rt.rank, obs.TaskTrack(t.lane), obs.CatTask, t.spanName(),
			start, rt.clk.Now(), t.id)
		rt.lanes.release(t.lane)
	}
	t.pooled = false
	rt.finishBody(t)
	rt.cores.release()
}

// finishBody marks the body done and releases the execution pseudo-event;
// if no external events remain the task completes immediately.
func (rt *Runtime) finishBody(t *Task) {
	rt.mu.Lock()
	t.state = stateFinished
	t.comp.n--
	var ready []*Task
	completed := t.comp.n == 0
	if completed {
		ready = rt.completeLocked(t)
	}
	rt.mu.Unlock()
	if completed && rt.rec != nil {
		rt.rec.Instant(rt.rank, obs.TrackMain, obs.CatTask, "task:complete", rt.clk.Now(), t.id)
	}
	rt.recReleaseEdges(t, ready)
	rt.wakeSatisfied(ready)
}

// completeLocked finalises a task: releases its dependencies and returns
// the successors that became ready. Callers hold rt.mu.
func (rt *Runtime) completeLocked(t *Task) (ready []*Task) {
	t.state = stateCompleted
	if !t.spawned {
		rt.stats.Completed++
	}
	if t.spawned {
		rt.spawnLive--
		if rt.spawnLive == 0 {
			for _, p := range rt.sdWaiters {
				p.Unpark()
			}
			rt.sdWaiters = nil
		}
	} else {
		rt.live--
		if rt.live == 0 {
			for _, p := range rt.twWaiters {
				p.Unpark()
			}
			rt.twWaiters = nil
		}
		if len(rt.thWaiters) > 0 {
			keep := rt.thWaiters[:0]
			for _, w := range rt.thWaiters {
				if rt.live <= w.max {
					w.p.Unpark()
				} else {
					keep = append(keep, w)
				}
			}
			rt.thWaiters = keep
		}
	}
	for _, s := range t.succs {
		s.preds--
		if s.preds == 0 && s.state == stateCreated {
			s.relBy = t.id // the release edge critpath follows (DESIGN.md §10)
			ready = append(ready, s)
		}
	}
	t.succs = nil
	return ready
}

// wakeSatisfied advances tasks collected by completeLocked.
func (rt *Runtime) wakeSatisfied(ready []*Task) {
	for _, s := range ready {
		rt.depsSatisfied(s)
	}
}

// laneAlloc hands out dense timeline-row indices for concurrently running
// task bodies: a body takes the lowest free lane for its whole run (held
// across yields), so the trace draws at most lanes-in-use rows per rank.
// It uses its own host mutex, never the runtime lock, and is touched only
// on instrumented runs.
type laneAlloc struct {
	mu   sync.Mutex
	free []int32
	next int32
}

func (la *laneAlloc) acquire() int32 {
	la.mu.Lock()
	defer la.mu.Unlock()
	if n := len(la.free); n > 0 {
		l := la.free[n-1]
		la.free = la.free[:n-1]
		return l
	}
	l := la.next
	la.next++
	return l
}

func (la *laneAlloc) release(l int32) {
	la.mu.Lock()
	// Keep the free list sorted descending so acquire reuses the lowest
	// lane first, keeping timelines compact.
	i := len(la.free)
	la.free = append(la.free, l)
	for i > 0 && la.free[i-1] < l {
		la.free[i] = la.free[i-1]
		i--
	}
	la.free[i] = l
	la.mu.Unlock()
}

// TaskWait blocks until every submitted task has completed (dependencies
// released), like #pragma oss taskwait. It must be called from a non-task
// goroutine (the rank's main), never from inside a task body.
func (rt *Runtime) TaskWait() {
	rt.mu.Lock()
	if rt.live == 0 {
		rt.mu.Unlock()
		return
	}
	p := rt.clk.Parker()
	p.SetName("taskwait")
	rt.twWaiters = append(rt.twWaiters, p)
	rt.mu.Unlock()
	p.Park()
}

// Throttle blocks until at most max tasks are incomplete. Rank mains call
// it between iterations to bound the live task window without introducing
// a barrier (the Nanos6 throttle).
func (rt *Runtime) Throttle(max int) {
	rt.mu.Lock()
	if rt.live <= max {
		rt.mu.Unlock()
		return
	}
	p := rt.clk.Parker()
	p.SetName("throttle")
	rt.thWaiters = append(rt.thWaiters, throttleWaiter{p: p, max: max})
	rt.mu.Unlock()
	p.Park()
}

// Stopping reports whether Shutdown has been requested. Spawned service
// tasks poll it and return when it turns true.
func (rt *Runtime) Stopping() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stopping
}

// Shutdown asks spawned service tasks to stop, waits for them to exit, and
// retires the worker pool. Regular tasks must already be complete
// (TaskWait). Shutdown is idempotent and safe to call from multiple
// goroutines — an early-exiting rank and the job teardown may both call it.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	rt.stopping = true
	if rt.spawnLive > 0 {
		p := rt.clk.Parker()
		p.SetName("shutdown")
		rt.sdWaiters = append(rt.sdWaiters, p)
		rt.mu.Unlock()
		p.Park()
	} else {
		rt.mu.Unlock()
	}
	rt.pool.stop()
}

// Stats returns a snapshot of the runtime counters.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stats
}

// Snapshot returns the runtime counters in the common observability shape
// (obs.Snapshotter).
func (rt *Runtime) Snapshot() obs.Snapshot {
	s := rt.Stats()
	return obs.Snapshot{
		Component: "tasking",
		Rank:      rt.rank,
		Samples: []obs.Sample{
			{Name: "tasks.submitted", Value: float64(s.Submitted)},
			{Name: "tasks.completed", Value: float64(s.Completed)},
			{Name: "tasks.spawned", Value: float64(s.Spawned)},
		},
	}
}

// Reset clears the runtime counters (obs.Snapshotter).
func (rt *Runtime) Reset() {
	rt.mu.Lock()
	rt.stats = Stats{}
	rt.mu.Unlock()
}

// workerPool runs task bodies on a bounded set of reusable goroutines.
// The per-task-goroutine runtime it replaces spawned one goroutine per
// dispatched task — at 10k-rank scale, millions of short-lived goroutines
// whose stacks dominated host time. The pool keeps at most Cores workers
// actively progressing bodies (matching the modelled core count), parks
// surplus workers on reusable external parkers, and spawns a compensating
// worker only when a body blocks in Yield/WaitFor while dispatched work is
// waiting — the same trick the Go runtime uses for blocking syscalls.
//
// Determinism: the core ticket is drawn and the task enqueued under one
// lock, so the queue is in ticket order and workers claim cores through
// the unchanged coreSched in exactly the order the per-task goroutines
// did. Which goroutine executes a body has no modelled-time meaning.
type workerPool struct {
	rt *Runtime

	mu       sync.Mutex
	q        []poolItem      // dispatched bodies, ticket order
	head     int             // index of the next item in q
	idle     []vclock.Parker // parked workers, one entry each
	seeking  int             // workers awake and heading for the queue
	handling int             // workers between claiming an item and finishing its body
	blocked  int             // handled bodies currently blocked in Yield/WaitFor
	total    int             // live worker goroutines
	stopped  bool
	wg       sync.WaitGroup
}

type poolItem struct {
	t      *Task
	ticket uint64
}

// submit enqueues a ready task for the workers. The ticket draw and the
// enqueue happen under the pool lock so the queue stays in ticket order —
// a worker never claims a later ticket while an earlier one still waits,
// which would stall the grant chain.
//
//tagalint:hotpath
func (wp *workerPool) submit(t *Task) {
	wp.mu.Lock()
	ticket := wp.rt.cores.ticket()
	//lint:ignore hotalloc the queue buffer is reset to [:0] when drained, so its capacity is reused across the run
	wp.q = append(wp.q, poolItem{t: t, ticket: ticket})
	wp.ensureLocked()
	wp.mu.Unlock()
}

// qlen is the number of undispatched items. Callers hold wp.mu.
func (wp *workerPool) qlen() int { return len(wp.q) - wp.head }

// popLocked removes the next item in ticket order. Callers hold wp.mu.
func (wp *workerPool) popLocked() poolItem {
	it := wp.q[wp.head]
	wp.q[wp.head] = poolItem{}
	wp.head++
	if wp.head == len(wp.q) {
		wp.q = wp.q[:0]
		wp.head = 0
	}
	return it
}

// ensureLocked keeps the pool live: whenever dispatched work is waiting,
// fewer than Cores bodies are actively progressing and no worker is
// already heading for the queue, it wakes an idle worker or spawns a new
// one. Callers hold wp.mu.
func (wp *workerPool) ensureLocked() {
	if wp.stopped || wp.qlen() == 0 || wp.seeking > 0 ||
		wp.handling-wp.blocked >= wp.rt.cfg.Cores {
		return
	}
	wp.seeking++
	if n := len(wp.idle); n > 0 {
		p := wp.idle[n-1]
		wp.idle[n-1] = nil
		wp.idle = wp.idle[:n-1]
		p.Unpark()
		return
	}
	wp.total++
	wp.wg.Add(1)
	wp.rt.clk.Go(wp.worker)
}

// worker is the pool goroutine loop: claim the next dispatched task, run
// it, park when the queue is empty, exit on stop. A worker created by
// ensureLocked starts in the seeking state.
//
//tagalint:hotpath
func (wp *workerPool) worker() {
	defer wp.wg.Done()
	var p vclock.Parker
	for {
		wp.mu.Lock()
		for wp.qlen() == 0 {
			wp.seeking--
			if wp.stopped {
				wp.total--
				wp.mu.Unlock()
				return
			}
			if p == nil {
				p = wp.rt.clk.Parker()
				// An idle worker legitimately waits for work; it must not
				// trip virtual-time deadlock detection.
				p.SetExternal(true)
				p.SetName("task-worker")
			}
			//lint:ignore hotalloc the idle list grows to the worker count (bounded by cores + peak blocked bodies), then reuses capacity
			wp.idle = append(wp.idle, p)
			wp.mu.Unlock()
			p.Park()
			// Whoever unparked us removed the idle entry and counted us as
			// seeking again.
			wp.mu.Lock()
		}
		it := wp.popLocked()
		wp.seeking--
		wp.handling++
		wp.ensureLocked()
		wp.mu.Unlock()
		wp.rt.exec(it.t, it.ticket)
		wp.mu.Lock()
		wp.handling--
		wp.seeking++
		wp.mu.Unlock()
	}
}

// block records that the calling worker's body is about to block in
// Yield/WaitFor (releasing its core but keeping its goroutine) and makes
// sure waiting work still progresses on another worker.
func (wp *workerPool) block() {
	wp.mu.Lock()
	wp.blocked++
	wp.ensureLocked()
	wp.mu.Unlock()
}

// unblock reverses block once the body has re-acquired a core.
func (wp *workerPool) unblock() {
	wp.mu.Lock()
	wp.blocked--
	wp.mu.Unlock()
}

// stop asks every worker to exit: parked workers are woken to see the
// flag, busy workers exit after their current body. It is idempotent and
// must only be called once no further dispatches can occur (Shutdown).
func (wp *workerPool) stop() {
	wp.mu.Lock()
	if wp.stopped {
		wp.mu.Unlock()
		return
	}
	wp.stopped = true
	idle := wp.idle
	wp.idle = nil
	wp.seeking += len(idle)
	wp.mu.Unlock()
	for _, p := range idle {
		p.Unpark()
	}
	wp.wg.Wait()
}

// coreSched grants core slots in readiness order: each ready task draws a
// ticket synchronously (under the event that made it ready) and cores are
// granted in strict ticket order, which makes scheduling deterministic in
// virtual time instead of following the host scheduler's interleaving.
type coreSched struct {
	clk       vclock.Clock
	mu        sync.Mutex
	free      int
	nextTkt   uint64
	nextGrant uint64
	waiters   map[uint64]vclock.Parker

	// parkers is a free list of core-wait parking slots. Granting removes
	// the waiter from the map before the Unpark, so each registration is
	// woken exactly once and a parker leaves acquire with no pending wake —
	// safe to hand to the next waiting task instead of allocating one per
	// dispatched task.
	parkers []vclock.Parker
}

func newCoreSched(clk vclock.Clock, n int) *coreSched {
	return &coreSched{clk: clk, free: n, waiters: make(map[uint64]vclock.Parker)}
}

// ticket reserves the caller's position in the grant order.
func (cs *coreSched) ticket() uint64 {
	cs.mu.Lock()
	t := cs.nextTkt
	cs.nextTkt++
	cs.mu.Unlock()
	return t
}

// acquire blocks until a core is free and every earlier ticket has been
// granted.
func (cs *coreSched) acquire(ticket uint64) {
	cs.mu.Lock()
	var p vclock.Parker
	for !(cs.free > 0 && ticket == cs.nextGrant) {
		if p == nil {
			if n := len(cs.parkers); n > 0 {
				p = cs.parkers[n-1]
				cs.parkers[n-1] = nil
				cs.parkers = cs.parkers[:n-1]
			} else {
				p = cs.clk.Parker()
				p.SetName("core-wait")
			}
		}
		cs.waiters[ticket] = p
		cs.mu.Unlock()
		p.Park()
		cs.mu.Lock()
	}
	if p != nil {
		cs.parkers = append(cs.parkers, p)
	}
	delete(cs.waiters, ticket)
	cs.free--
	cs.nextGrant++
	cs.grantLocked()
	cs.mu.Unlock()
}

// release returns a core and passes it to the next ticket in line.
func (cs *coreSched) release() {
	cs.mu.Lock()
	cs.free++
	cs.grantLocked()
	cs.mu.Unlock()
}

// grantLocked wakes the holder of the next grantable ticket, if it is
// already waiting. If it has not arrived yet it will see the free core on
// arrival; granting never skips ahead of it. The waiter entry is removed
// before the Unpark so a second grant attempt (two releases racing one
// slow waker) cannot Unpark the same registration twice, which is what
// keeps recycled parkers free of stale pending wakes.
func (cs *coreSched) grantLocked() {
	if cs.free <= 0 {
		return
	}
	if p, ok := cs.waiters[cs.nextGrant]; ok {
		delete(cs.waiters, cs.nextGrant)
		p.Unpark()
	}
}
