package tasking

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// state is the task lifecycle position (Figure 1 of the paper: ready →
// running → finished → completed, with creation and onready before ready).
type state uint8

const (
	stateCreated   state = iota // submitted, dependencies pending
	stateOnready                // dependencies satisfied, onready in flight
	stateQueued                 // ready, waiting for a core
	stateRunning                // body executing
	stateFinished               // body done, external events outstanding
	stateCompleted              // events fulfilled, dependencies released
)

func (s state) String() string {
	switch s {
	case stateCreated:
		return "created"
	case stateOnready:
		return "onready"
	case stateQueued:
		return "queued"
	case stateRunning:
		return "running"
	case stateFinished:
		return "finished"
	case stateCompleted:
		return "completed"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Body is a task body. The task handle gives access to the external events
// API, timed yields, and modelled compute.
type Body func(t *Task)

// Task is one unit of work with region dependencies.
type Task struct {
	rt      *Runtime
	label   string
	body    Body
	onready func(*Task)
	deps    []Dep
	spawned bool

	// Guarded by rt.mu.
	state state
	preds int
	succs []*Task
	relBy int64 // id of the predecessor whose completion made this task ready

	pre  EventCounter // gates execution (onready-registered events)
	comp EventCounter // gates completion (external events API)

	// Trace identity, used only on instrumented runs. id is assigned under
	// rt.mu at submission; readyAt is written by markReady before dispatch;
	// lane is written and read only by the body's goroutine.
	id      int64
	readyAt time.Duration
	lane    int32

	// pooled is true while the body runs on a pool worker; Yield/WaitFor
	// use it to tell the pool the worker is blocked so a replacement can
	// keep dispatched work moving. Written and read only by the body's
	// goroutine.
	pooled bool
}

// spanName is the label of the task's body span in the timeline.
func (t *Task) spanName() string {
	if t.label != "" {
		return t.label
	}
	return "task"
}

// Label returns the task's diagnostic label.
func (t *Task) Label() string { return t.label }

// Runtime returns the owning runtime.
func (t *Task) Runtime() *Runtime { return t.rt }

// Events returns the event counter appropriate to the calling context:
// during the onready callback it gates the task's *execution* (§V-A of the
// paper); from the body it gates the task's *completion and dependency
// release* (the task external events API, §II-C). Task-aware communication
// libraries bind their in-flight operations to this counter.
func (t *Task) Events() *EventCounter {
	t.rt.mu.Lock()
	defer t.rt.mu.Unlock()
	if t.state == stateOnready {
		return &t.pre
	}
	return &t.comp
}

// Compute occupies the caller's core for d of modelled time: the body's
// computational work. Under the ideal profile d is zero and this is free.
func (t *Task) Compute(d time.Duration) {
	t.rt.clk.Sleep(d)
}

// WaitFor blocks the task for approximately d, yielding its core so other
// tasks can run — the wait_for_us runtime API of §V-B, used by the
// task-aware libraries' polling tasks. It returns the time actually slept.
func (t *Task) WaitFor(d time.Duration) time.Duration {
	start := t.rt.clk.Now()
	if t.pooled {
		t.rt.pool.block()
	}
	t.rt.cores.release()
	t.rt.clk.Sleep(d)
	t.rt.cores.acquire(t.rt.cores.ticket())
	if t.pooled {
		t.rt.pool.unblock()
	}
	slept := t.rt.clk.Now() - start
	if rec := t.rt.rec; rec != nil {
		rec.Span(t.rt.rank, obs.TaskTrack(t.lane), obs.CatTask, "task:wait",
			start, start+slept, t.id)
	}
	return slept
}

// Yield releases the task's core, runs f (which may block on modelled
// time), and re-acquires a core before returning. It is how blocking
// library calls (e.g. blocking TAMPI receives) free the core while waiting,
// like the Nanos6 blocking API.
func (t *Task) Yield(f func()) {
	rec := t.rt.rec
	var start time.Duration
	if rec != nil {
		start = t.rt.clk.Now()
	}
	if t.pooled {
		t.rt.pool.block()
	}
	t.rt.cores.release()
	f()
	t.rt.cores.acquire(t.rt.cores.ticket())
	if t.pooled {
		t.rt.pool.unblock()
	}
	if rec != nil {
		rec.Span(t.rt.rank, obs.TaskTrack(t.lane), obs.CatTask, "task:yield",
			start, t.rt.clk.Now(), t.id)
	}
}

// EventCounter counts outstanding external events bound to one task.
// It is safe to Decrease from any goroutine (couriers, polling tasks).
type EventCounter struct {
	t   *Task
	pre bool
	n   int // guarded by t.rt.mu
}

// Increase registers n new outstanding events. It must be called before
// the event's fulfilment can possibly race the counter reaching zero, i.e.
// from the onready callback or the running body (as TAMPI_Iwait and the
// TAGASPI operations do).
func (c *EventCounter) Increase(n int) {
	if n < 0 {
		panic("tasking: negative event increase")
	}
	rt := c.t.rt
	rt.mu.Lock()
	c.n += n
	rt.mu.Unlock()
}

// Decrease fulfils n events. When the counter reaches zero the runtime
// advances the task: an execution-gating counter schedules it; the
// completion counter completes it and releases its dependencies.
func (c *EventCounter) Decrease(n int) {
	if n < 0 {
		panic("tasking: negative event decrease")
	}
	rt := c.t.rt
	rt.mu.Lock()
	c.n -= n
	if c.n < 0 {
		rt.mu.Unlock()
		panic(fmt.Sprintf("tasking: event counter of task %q went negative", c.t.label))
	}
	fire := c.n == 0
	var ready []*Task
	if fire {
		if c.pre {
			c.t.state = stateQueued
		} else if c.t.state == stateFinished {
			ready = rt.completeLocked(c.t)
		} else {
			// The body is still running; completion happens when it
			// finishes (finishBody re-checks the counter).
			fire = false
		}
	}
	rt.mu.Unlock()
	if !fire {
		return
	}
	if c.pre {
		rt.markReady(c.t)
		return
	}
	if rt.rec != nil {
		rt.rec.Instant(rt.rank, obs.TrackMain, obs.CatTask, "task:complete",
			rt.clk.Now(), c.t.id)
	}
	rt.recReleaseEdges(c.t, ready)
	rt.wakeSatisfied(ready)
}
