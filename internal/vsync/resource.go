package vsync

import (
	"sync"
	"time"

	"repro/internal/vclock"
)

// Resource models a serially-served resource with per-request service
// times: a lock whose critical sections cost modelled time, a NIC injection
// port draining at link bandwidth, a DMA engine, and so on.
//
// Requests are served in arrival order. Use blocks the caller until every
// earlier request has been served and then for the caller's own hold time,
// so the queueing delay under contention emerges naturally in virtual time.
// Mutual exclusion over data structures is NOT provided — Resource models
// time only; guard shared state with an ordinary mutex.
//
// Package mpisim uses a Resource to model the MPI_THREAD_MULTIPLE library
// lock (§VI-C of the paper: the lock shared by MPI_Isend/Irecv/Test* is the
// source of TAMPI's small-block collapse). Package fabric uses Resources
// for NIC serialization.
type Resource struct {
	clk    vclock.Clock
	mu     sync.Mutex
	freeAt time.Duration

	// statistics
	uses    int64
	busy    time.Duration
	waited  time.Duration
	maxWait time.Duration
}

// NewResource returns an idle resource bound to clk.
func NewResource(clk vclock.Clock) *Resource {
	return &Resource{clk: clk}
}

// Use occupies the resource for hold of modelled time, after waiting for
// all earlier requests. It returns the time spent queueing (excluding the
// caller's own service time). A non-positive hold with an idle resource
// returns immediately.
func (r *Resource) Use(hold time.Duration) (waited time.Duration) {
	if hold < 0 {
		hold = 0
	}
	now := r.clk.Now()
	r.mu.Lock()
	start := r.freeAt
	if start < now {
		start = now
	}
	r.freeAt = start + hold
	r.uses++
	r.busy += hold
	wait := start - now
	r.waited += wait
	if wait > r.maxWait {
		r.maxWait = wait
	}
	r.mu.Unlock()
	r.clk.Sleep(start + hold - now)
	return wait
}

// Reserve books the resource like Use but returns immediately with the
// modelled completion time instead of sleeping. Callers that pipeline work
// (e.g. a NIC injecting a message whose local completion the sender does
// not wait for) use Reserve and sleep elsewhere.
func (r *Resource) Reserve(hold time.Duration) (start, done time.Duration) {
	if hold < 0 {
		hold = 0
	}
	now := r.clk.Now()
	r.mu.Lock()
	start = r.freeAt
	if start < now {
		start = now
	}
	done = start + hold
	r.freeAt = done
	r.uses++
	r.busy += hold
	wait := start - now
	r.waited += wait
	if wait > r.maxWait {
		r.maxWait = wait
	}
	r.mu.Unlock()
	return start, done
}

// ResourceStats is a snapshot of a Resource's counters.
type ResourceStats struct {
	Uses    int64         // completed Use/Reserve calls
	Busy    time.Duration // total modelled service time
	Waited  time.Duration // total modelled queueing time
	MaxWait time.Duration // longest single queueing delay
}

// Stats returns a snapshot of the resource's counters.
func (r *Resource) Stats() ResourceStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ResourceStats{Uses: r.uses, Busy: r.busy, Waited: r.waited, MaxWait: r.maxWait}
}

// ResetStats clears the statistics counters without touching the booking
// state (freeAt), so a steady-state measurement window can exclude warm-up
// traffic.
func (r *Resource) ResetStats() {
	r.mu.Lock()
	r.uses, r.busy, r.waited, r.maxWait = 0, 0, 0, 0
	r.mu.Unlock()
}

// Queue is an unbounded FIFO with clock-aware blocking Pop/PopAll, for
// single-consumer use (the fabric's per-path courier goroutines).
// Push never blocks and may be called from any goroutine.
type Queue[T any] struct {
	clk    vclock.Clock
	mu     sync.Mutex
	items  []T
	closed bool
	waiter vclock.Parker // consumer parked in Pop/PopAll, if any

	// consumerP is the single consumer's reusable parking slot. A queue
	// wait is woken by exactly one Unpark per registration (Push/Close
	// claim the waiter field under the lock before unparking), so the
	// same parker can serve every wait of the consumer's lifetime
	// instead of allocating one per idle period.
	consumerP vclock.Parker
}

// NewQueue returns an open, empty queue bound to clk.
func NewQueue[T any](clk vclock.Clock) *Queue[T] {
	return &Queue[T]{clk: clk}
}

// Push appends v and wakes the consumer if it is parked.
// Push on a closed queue panics.
func (q *Queue[T]) Push(v T) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		panic("vsync: Push on closed Queue")
	}
	q.items = append(q.items, v)
	p := q.waiter
	q.waiter = nil
	q.mu.Unlock()
	if p != nil {
		p.Unpark()
	}
}

// Pop removes and returns the oldest element, parking until one is
// available. ok is false if the queue was closed and drained.
func (q *Queue[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	for {
		if len(q.items) > 0 {
			v = q.items[0]
			q.items = q.items[1:]
			q.mu.Unlock()
			return v, true
		}
		if q.closed {
			q.mu.Unlock()
			return v, false
		}
		q.parkConsumerLocked()
		q.mu.Lock()
	}
}

// PopAll removes and returns every queued element in arrival order,
// parking until at least one is available. ok is false if the queue was
// closed and drained. The returned slice is handed to the caller and buf
// (typically the slice returned by the previous PopAll, fully processed
// and cleared of references) becomes the queue's new push buffer, so a
// steady-state consumer drains the queue with one lock round trip per
// wakeup and zero allocations.
func (q *Queue[T]) PopAll(buf []T) (items []T, ok bool) {
	q.mu.Lock()
	for {
		if len(q.items) > 0 {
			items = q.items
			q.items = buf[:0]
			q.mu.Unlock()
			return items, true
		}
		if q.closed {
			q.mu.Unlock()
			return nil, false
		}
		q.parkConsumerLocked()
		q.mu.Lock()
	}
}

// PopAllUntil is PopAll with a wake deadline: it drains every queued
// element in arrival order, and when the queue is empty parks until the
// clock reaches deadline with timer sequence seq — exactly as if a timer
// stamped (deadline, seq) had been armed, so a caller holding a
// pre-drawn sequence (Clock.AllocSeq) keeps its place in the global
// same-deadline wake order across re-parks. On deadline expiry it
// returns an empty batch with ok=true; ok is false only when the queue
// was closed and drained. The fabric's shard couriers park at their
// frontier agenda event's (deadline, seq) so event dispatch interleaves
// with rank-task timers exactly like the per-domain couriers it replaced.
func (q *Queue[T]) PopAllUntil(buf []T, deadline time.Duration, seq uint64) (items []T, ok bool) {
	q.mu.Lock()
	for {
		if len(q.items) > 0 {
			items = q.items
			q.items = buf[:0]
			q.mu.Unlock()
			return items, true
		}
		if q.closed {
			q.mu.Unlock()
			return nil, false
		}
		if !q.parkConsumerUntilLocked(deadline, seq) {
			// Deadline reached. One locked re-check picks up a push that
			// raced the expiry and claimed the waiter slot; otherwise hand
			// the empty batch back so the caller can fire its event.
			q.mu.Lock()
			if len(q.items) > 0 {
				items = q.items
				q.items = buf[:0]
				q.mu.Unlock()
				return items, true
			}
			q.mu.Unlock()
			return nil, true
		}
		q.mu.Lock()
	}
}

// parkConsumerUntilLocked is parkConsumerLocked with a wake deadline
// stamped (deadline, seq). It is entered with q.mu held and returns with
// it released, reporting whether the wake was a Push/Close (true) rather
// than the deadline.
func (q *Queue[T]) parkConsumerUntilLocked(deadline time.Duration, seq uint64) bool {
	p := q.consumerParkerLocked()
	q.waiter = p
	q.mu.Unlock()
	woke := p.ParkUntil(deadline, seq)
	if !woke {
		q.mu.Lock()
		if q.waiter == p {
			q.waiter = nil
		}
		q.mu.Unlock()
	}
	return woke
}

// consumerParkerLocked returns the queue's reusable consumer parker,
// creating it on first use, and panics on a second concurrent consumer.
func (q *Queue[T]) consumerParkerLocked() vclock.Parker {
	if q.waiter != nil {
		q.mu.Unlock()
		panic("vsync: concurrent Pop on single-consumer Queue")
	}
	p := q.consumerP
	if p == nil {
		p = q.clk.Parker()
		// A queue consumer is a service loop (e.g. a fabric courier): it
		// legitimately idles when no work exists, so it must not trip
		// virtual-time deadlock detection.
		p.SetExternal(true)
		p.SetName("queue-consumer")
		q.consumerP = p
	}
	return p
}

// parkConsumerLocked registers the consumer's reusable parker and parks.
// It is entered with q.mu held and returns with it released.
func (q *Queue[T]) parkConsumerLocked() {
	p := q.consumerParkerLocked()
	q.waiter = p
	q.mu.Unlock()
	p.Park()
}

// Close marks the queue closed; a parked consumer is woken and Pop returns
// ok=false once drained. Close is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	p := q.waiter
	q.waiter = nil
	q.mu.Unlock()
	if p != nil {
		p.Unpark()
	}
}

// Len reports the number of queued elements.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
