// Package vsync provides synchronization primitives that block through a
// vclock.Clock rather than the Go runtime, so they work identically under
// real time and under the virtual-time discrete-event engine.
//
// All primitives wake waiters in FIFO order; fairness matters for the
// contention modelling (package mpisim models the MPI library lock as a
// served Resource, and queueing order determines the modelled wait times).
package vsync

import (
	"sync"
	"time"

	"repro/internal/vclock"
)

// Mutex is a FIFO, clock-aware mutual exclusion lock. The zero value is not
// usable; construct with NewMutex.
type Mutex struct {
	clk     vclock.Clock
	mu      sync.Mutex
	locked  bool
	waiters []vclock.Parker
}

// NewMutex returns an unlocked mutex bound to clk.
func NewMutex(clk vclock.Clock) *Mutex {
	return &Mutex{clk: clk}
}

// Lock acquires m, parking the caller on the clock if m is held.
func (m *Mutex) Lock() {
	m.mu.Lock()
	if !m.locked {
		m.locked = true
		m.mu.Unlock()
		return
	}
	p := m.clk.Parker()
	m.waiters = append(m.waiters, p)
	m.mu.Unlock()
	p.Park() // ownership is handed off by Unlock
}

// TryLock acquires m without blocking and reports whether it succeeded.
func (m *Mutex) TryLock() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.locked {
		return false
	}
	m.locked = true
	return true
}

// Unlock releases m, handing ownership to the earliest waiter if any.
func (m *Mutex) Unlock() {
	m.mu.Lock()
	if !m.locked {
		m.mu.Unlock()
		panic("vsync: Unlock of unlocked Mutex")
	}
	if len(m.waiters) == 0 {
		m.locked = false
		m.mu.Unlock()
		return
	}
	p := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.mu.Unlock()
	p.Unpark()
}

// Cond is a clock-aware condition variable. Like sync.Cond, the Locker L
// must be held when calling Wait, Signal and Broadcast; the waiter list is
// protected by L.
type Cond struct {
	L       sync.Locker
	clk     vclock.Clock
	waiters []vclock.Parker
}

// NewCond returns a condition variable bound to clk that uses l as its
// Locker.
func NewCond(clk vclock.Clock, l sync.Locker) *Cond {
	return &Cond{L: l, clk: clk}
}

// Wait atomically releases c.L, parks the caller, and re-acquires c.L
// before returning. As with sync.Cond, callers must re-check the condition.
func (c *Cond) Wait() {
	p := c.clk.Parker()
	c.waiters = append(c.waiters, p)
	c.L.Unlock()
	p.Park()
	c.L.Lock()
}

// WaitTimeout is Wait with a deadline. It reports whether the caller was
// woken by Signal/Broadcast (true) rather than by the timeout (false).
// Note that a timed-out waiter may still have consumed a Signal that raced
// with the timeout; callers must re-check the condition either way.
func (c *Cond) WaitTimeout(d time.Duration) bool {
	p := c.clk.Parker()
	c.waiters = append(c.waiters, p)
	c.L.Unlock()
	woke := p.ParkTimeout(d)
	c.L.Lock()
	if !woke {
		// Remove ourselves so a future Signal is not wasted on us.
		for i, w := range c.waiters {
			if w == p {
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				break
			}
		}
	}
	return woke
}

// Signal wakes the earliest waiter, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	p.Unpark()
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		p.Unpark()
	}
}

// Semaphore is a counted, FIFO, clock-aware semaphore. It backs the
// per-rank worker pool of the tasking runtime (one permit per core).
type Semaphore struct {
	clk     vclock.Clock
	mu      sync.Mutex
	avail   int
	waiters []vclock.Parker
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(clk vclock.Clock, n int) *Semaphore {
	return &Semaphore{clk: clk, avail: n}
}

// Acquire takes one permit, parking until one is available.
func (s *Semaphore) Acquire() {
	s.mu.Lock()
	if s.avail > 0 {
		s.avail--
		s.mu.Unlock()
		return
	}
	p := s.clk.Parker()
	s.waiters = append(s.waiters, p)
	s.mu.Unlock()
	p.Park() // permit handed off by Release
}

// TryAcquire takes a permit without blocking and reports success.
func (s *Semaphore) TryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.avail == 0 {
		return false
	}
	s.avail--
	return true
}

// Release returns one permit, handing it to the earliest waiter if any.
func (s *Semaphore) Release() {
	s.mu.Lock()
	if len(s.waiters) == 0 {
		s.avail++
		s.mu.Unlock()
		return
	}
	p := s.waiters[0]
	s.waiters = s.waiters[1:]
	s.mu.Unlock()
	p.Unpark()
}

// WaitGroup is a clock-aware analogue of sync.WaitGroup.
type WaitGroup struct {
	clk     vclock.Clock
	mu      sync.Mutex
	count   int
	waiters []vclock.Parker
}

// NewWaitGroup returns an empty WaitGroup bound to clk.
func NewWaitGroup(clk vclock.Clock) *WaitGroup {
	return &WaitGroup{clk: clk}
}

// Add adds delta to the counter. If the counter reaches zero, all waiters
// are released. It panics if the counter goes negative.
func (w *WaitGroup) Add(delta int) {
	w.mu.Lock()
	w.count += delta
	if w.count < 0 {
		w.mu.Unlock()
		panic("vsync: negative WaitGroup counter")
	}
	var wake []vclock.Parker
	if w.count == 0 {
		wake = w.waiters
		w.waiters = nil
	}
	w.mu.Unlock()
	for _, p := range wake {
		p.Unpark()
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait parks until the counter is zero.
func (w *WaitGroup) Wait() {
	w.mu.Lock()
	if w.count == 0 {
		w.mu.Unlock()
		return
	}
	p := w.clk.Parker()
	w.waiters = append(w.waiters, p)
	w.mu.Unlock()
	p.Park()
}
