package vsync

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vclock"
)

// clocks returns both clock implementations so every test runs against each.
func clocks() map[string]func() vclock.Clock {
	return map[string]func() vclock.Clock{
		"virtual": func() vclock.Clock { return vclock.NewVirtual() },
		"real":    func() vclock.Clock { return vclock.NewReal() },
	}
}

func join(c vclock.Clock, fns ...func()) {
	var wg sync.WaitGroup
	for _, fn := range fns {
		fn := fn
		wg.Add(1)
		c.Go(func() {
			defer wg.Done()
			fn()
		})
	}
	wg.Wait()
}

func TestMutexExcludes(t *testing.T) {
	for name, mk := range clocks() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			m := NewMutex(c)
			var inside atomic.Int32
			var violations atomic.Int32
			var count int
			worker := func() {
				for i := 0; i < 200; i++ {
					m.Lock()
					if inside.Add(1) != 1 {
						violations.Add(1)
					}
					count++
					inside.Add(-1)
					m.Unlock()
				}
			}
			join(c, worker, worker, worker, worker)
			if violations.Load() != 0 {
				t.Fatalf("%d mutual exclusion violations", violations.Load())
			}
			if count != 800 {
				t.Fatalf("count = %d, want 800", count)
			}
		})
	}
}

func TestMutexTryLock(t *testing.T) {
	c := vclock.NewReal()
	m := NewMutex(c)
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	m.Unlock()
}

func TestMutexUnlockUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMutex(vclock.NewReal()).Unlock()
}

func TestMutexFIFOHandoffVirtual(t *testing.T) {
	// Under virtual time, waiters must be granted the lock in arrival order.
	c := vclock.NewVirtual()
	m := NewMutex(c)
	var order []int
	var fns []func()
	fns = append(fns, func() {
		m.Lock()
		//lint:ignore lockcross holding the lock across the sleep is the test: it queues all five waiters so their grant order is observable
		c.Sleep(10 * time.Millisecond) // let all waiters queue in id order
		m.Unlock()
	})
	for i := 1; i <= 5; i++ {
		i := i
		fns = append(fns, func() {
			c.Sleep(time.Duration(i) * time.Millisecond)
			m.Lock()
			order = append(order, i)
			m.Unlock()
		})
	}
	join(c, fns...)
	for i, id := range order {
		if id != i+1 {
			t.Fatalf("grant order = %v, want 1..5", order)
		}
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	for name, mk := range clocks() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			m := NewMutex(c)
			cond := NewCond(c, m)
			ready := 0
			var woken atomic.Int32
			waiter := func() {
				m.Lock()
				for ready == 0 {
					cond.Wait()
				}
				ready--
				woken.Add(1)
				m.Unlock()
			}
			join(c,
				waiter, waiter, waiter,
				func() {
					for i := 0; i < 3; i++ {
						c.Sleep(time.Millisecond)
						m.Lock()
						ready++
						cond.Signal()
						m.Unlock()
					}
				},
			)
			if woken.Load() != 3 {
				t.Fatalf("woken = %d, want 3", woken.Load())
			}
		})
	}
}

func TestCondBroadcast(t *testing.T) {
	for name, mk := range clocks() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			m := NewMutex(c)
			cond := NewCond(c, m)
			open := false
			var through atomic.Int32
			waiter := func() {
				m.Lock()
				for !open {
					cond.Wait()
				}
				m.Unlock()
				through.Add(1)
			}
			join(c,
				waiter, waiter, waiter, waiter,
				func() {
					c.Sleep(time.Millisecond)
					m.Lock()
					open = true
					cond.Broadcast()
					m.Unlock()
				},
			)
			if through.Load() != 4 {
				t.Fatalf("through = %d, want 4", through.Load())
			}
		})
	}
}

func TestCondWaitTimeout(t *testing.T) {
	c := vclock.NewVirtual()
	m := NewMutex(c)
	cond := NewCond(c, m)
	var timedOut bool
	var at time.Duration
	join(c, func() {
		m.Lock()
		//lint:ignore condloop this test exercises the timeout path itself; no predicate exists to re-check
		timedOut = !cond.WaitTimeout(5 * time.Millisecond)
		at = c.Now()
		m.Unlock()
	})
	if !timedOut {
		t.Fatal("want timeout")
	}
	if at != 5*time.Millisecond {
		t.Fatalf("timed out at %v, want 5ms", at)
	}
	// After a timeout the waiter must no longer consume Signals.
	join(c, func() {
		m.Lock()
		cond.Signal() // must not panic or wake anything
		m.Unlock()
	})
}

func TestCondWaitTimeoutSignaled(t *testing.T) {
	c := vclock.NewVirtual()
	m := NewMutex(c)
	cond := NewCond(c, m)
	var woke bool
	join(c,
		func() {
			m.Lock()
			//lint:ignore condloop this test checks the wake-by-Signal return value; no predicate exists to re-check
			woke = cond.WaitTimeout(time.Hour)
			m.Unlock()
		},
		func() {
			c.Sleep(time.Millisecond)
			m.Lock()
			cond.Signal()
			m.Unlock()
		},
	)
	if !woke {
		t.Fatal("want signal, got timeout")
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	for name, mk := range clocks() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			s := NewSemaphore(c, 3)
			var inside, peak atomic.Int32
			worker := func() {
				for i := 0; i < 50; i++ {
					s.Acquire()
					n := inside.Add(1)
					for {
						p := peak.Load()
						if n <= p || peak.CompareAndSwap(p, n) {
							break
						}
					}
					inside.Add(-1)
					s.Release()
				}
			}
			join(c, worker, worker, worker, worker, worker, worker)
			if peak.Load() > 3 {
				t.Fatalf("peak concurrency %d exceeds semaphore limit 3", peak.Load())
			}
		})
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	c := vclock.NewReal()
	s := NewSemaphore(c, 1)
	if !s.TryAcquire() {
		t.Fatal("TryAcquire on free semaphore failed")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire on empty semaphore succeeded")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
}

func TestWaitGroup(t *testing.T) {
	for name, mk := range clocks() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			wg := NewWaitGroup(c)
			var done atomic.Int32
			wg.Add(3)
			join(c,
				func() { c.Sleep(time.Millisecond); done.Add(1); wg.Done() },
				func() { c.Sleep(2 * time.Millisecond); done.Add(1); wg.Done() },
				func() { done.Add(1); wg.Done() },
				func() {
					wg.Wait()
					if done.Load() != 3 {
						t.Errorf("Wait returned with %d done, want 3", done.Load())
					}
				},
			)
		})
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWaitGroup(vclock.NewReal()).Add(-1)
}

func TestResourceSerializes(t *testing.T) {
	// Three requests of 10ms each arriving together must finish at 10/20/30ms.
	c := vclock.NewVirtual()
	r := NewResource(c)
	var ends []time.Duration
	var mu sync.Mutex
	worker := func() {
		r.Use(10 * time.Millisecond)
		mu.Lock()
		ends = append(ends, c.Now())
		mu.Unlock()
	}
	join(c, worker, worker, worker)
	if c.Now() != 30*time.Millisecond {
		t.Fatalf("total time %v, want 30ms", c.Now())
	}
	want := map[time.Duration]bool{10 * time.Millisecond: true, 20 * time.Millisecond: true, 30 * time.Millisecond: true}
	for _, e := range ends {
		if !want[e] {
			t.Fatalf("unexpected completion time %v (ends=%v)", e, ends)
		}
		delete(want, e)
	}
}

func TestResourceIdleGapNoCarryover(t *testing.T) {
	// After the resource drains, a later request must not queue behind history.
	c := vclock.NewVirtual()
	r := NewResource(c)
	join(c, func() {
		r.Use(5 * time.Millisecond)
		c.Sleep(20 * time.Millisecond)
		w := r.Use(5 * time.Millisecond)
		if w != 0 {
			t.Errorf("waited %v on idle resource, want 0", w)
		}
	})
	if c.Now() != 30*time.Millisecond {
		t.Fatalf("total %v, want 30ms", c.Now())
	}
}

func TestResourceStats(t *testing.T) {
	c := vclock.NewVirtual()
	r := NewResource(c)
	worker := func() { r.Use(4 * time.Millisecond) }
	join(c, worker, worker)
	st := r.Stats()
	if st.Uses != 2 {
		t.Fatalf("Uses = %d, want 2", st.Uses)
	}
	if st.Busy != 8*time.Millisecond {
		t.Fatalf("Busy = %v, want 8ms", st.Busy)
	}
	if st.Waited != 4*time.Millisecond {
		t.Fatalf("Waited = %v, want 4ms (second request queues behind first)", st.Waited)
	}
	if st.MaxWait != 4*time.Millisecond {
		t.Fatalf("MaxWait = %v, want 4ms", st.MaxWait)
	}
}

func TestResourceReserve(t *testing.T) {
	c := vclock.NewVirtual()
	r := NewResource(c)
	join(c, func() {
		s1, d1 := r.Reserve(3 * time.Millisecond)
		s2, d2 := r.Reserve(5 * time.Millisecond)
		if s1 != 0 || d1 != 3*time.Millisecond {
			t.Errorf("first reserve [%v,%v], want [0,3ms]", s1, d1)
		}
		if s2 != 3*time.Millisecond || d2 != 8*time.Millisecond {
			t.Errorf("second reserve [%v,%v], want [3ms,8ms]", s2, d2)
		}
	})
	if c.Now() != 0 {
		t.Fatalf("Reserve must not sleep; Now = %v", c.Now())
	}
}

// Property: a Resource's total busy time equals the sum of holds, and the
// final completion time of back-to-back requests issued at t=0 equals that
// sum (perfect FIFO, no gaps).
func TestQuickResourceSumProperty(t *testing.T) {
	f := func(holds []uint8) bool {
		if len(holds) == 0 {
			return true
		}
		if len(holds) > 32 {
			holds = holds[:32]
		}
		c := vclock.NewVirtual()
		r := NewResource(c)
		var sum time.Duration
		fns := make([]func(), len(holds))
		for i, h := range holds {
			d := time.Duration(h) * time.Microsecond
			sum += d
			fns[i] = func() { r.Use(d) }
		}
		join(c, fns...)
		return c.Now() == sum && r.Stats().Busy == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFIFO(t *testing.T) {
	for name, mk := range clocks() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			q := NewQueue[int](c)
			const n = 500
			var got []int
			join(c,
				func() {
					for i := 0; i < n; i++ {
						q.Push(i)
					}
					q.Close()
				},
				func() {
					for {
						v, ok := q.Pop()
						if !ok {
							return
						}
						got = append(got, v)
					}
				},
			)
			if len(got) != n {
				t.Fatalf("received %d items, want %d", len(got), n)
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("got[%d] = %d, want %d", i, v, i)
				}
			}
		})
	}
}

func TestQueueMultiProducer(t *testing.T) {
	c := vclock.NewVirtual()
	q := NewQueue[int](c)
	var sum, want int
	for i := 1; i <= 100; i++ {
		want += i
	}
	prodWG := NewWaitGroup(c)
	prodWG.Add(4)
	producers := make([]func(), 4)
	for p := 0; p < 4; p++ {
		p := p
		producers[p] = func() {
			defer prodWG.Done()
			for i := p*25 + 1; i <= (p+1)*25; i++ {
				q.Push(i)
			}
		}
	}
	join(c, append(producers,
		func() {
			prodWG.Wait()
			q.Close()
		},
		func() {
			for {
				v, ok := q.Pop()
				if !ok {
					return
				}
				sum += v
			}
		})...)
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestQueueCloseWakesConsumer(t *testing.T) {
	c := vclock.NewVirtual()
	q := NewQueue[string](c)
	var ok bool = true
	join(c,
		func() { _, ok = q.Pop() },
		func() { c.Sleep(time.Millisecond); q.Close() },
	)
	if ok {
		t.Fatal("Pop on closed queue must report ok=false")
	}
}

func TestQueuePushAfterClosePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q := NewQueue[int](vclock.NewReal())
	q.Close()
	q.Push(1)
}

// Property: under random interleavings of producers, the consumer sees each
// producer's items in that producer's order (per-producer FIFO).
func TestQuickQueuePerProducerOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := vclock.NewVirtual()
		q := NewQueue[[2]int](c) // [producer, seq]
		const producers, items = 3, 50
		prodWG := NewWaitGroup(c)
		prodWG.Add(producers)
		fns := make([]func(), 0, producers+2)
		delays := make([][]time.Duration, producers)
		for p := 0; p < producers; p++ {
			delays[p] = make([]time.Duration, items)
			for i := range delays[p] {
				delays[p][i] = time.Duration(rng.Intn(20)) * time.Microsecond
			}
		}
		for p := 0; p < producers; p++ {
			p := p
			fns = append(fns, func() {
				defer prodWG.Done()
				for i := 0; i < items; i++ {
					c.Sleep(delays[p][i])
					q.Push([2]int{p, i})
				}
			})
		}
		fns = append(fns, func() {
			prodWG.Wait()
			q.Close()
		})
		lastSeq := [producers]int{-1, -1, -1}
		okOrder := true
		fns = append(fns, func() {
			for {
				v, ok := q.Pop()
				if !ok {
					return
				}
				if v[1] != lastSeq[v[0]]+1 {
					okOrder = false
				}
				lastSeq[v[0]] = v[1]
			}
		})
		join(c, fns...)
		return okOrder
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMutexUncontended(b *testing.B) {
	c := vclock.NewReal()
	m := NewMutex(c)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Lock()
		m.Unlock()
	}
}

func BenchmarkResourceUseVirtual(b *testing.B) {
	c := vclock.NewVirtual()
	r := NewResource(c)
	var wg sync.WaitGroup
	wg.Add(1)
	c.Go(func() {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			r.Use(time.Microsecond)
		}
	})
	wg.Wait()
}
