// Package cliflag holds the shared flag-validation helpers of the
// command-line front-ends (cmd/heat, cmd/miniamr, cmd/streaming). The
// simulators decompose their problem sizes by these values — a zero block
// size or step count reaches the decomposition as a divide or an empty
// sweep and fails far from the flag that caused it — so every front-end
// rejects bad values right after flag.Parse with a usage error instead.
package cliflag

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// CheckPositive returns an error naming every flag in vals whose value is
// not strictly positive, or nil if all are. Flags are reported in sorted
// name order so the message is deterministic.
func CheckPositive(vals map[string]int) error {
	return check(vals, 1, "> 0")
}

// CheckNonNegative is CheckPositive with a >= 0 requirement, for flags
// where zero is meaningful (e.g. -maxlevel 0 disables refinement).
func CheckNonNegative(vals map[string]int) error {
	return check(vals, 0, ">= 0")
}

func check(vals map[string]int, min int, want string) error {
	var bad []string
	for name, v := range vals {
		if v < min {
			bad = append(bad, fmt.Sprintf("-%s must be %s (got %d)", name, want, v))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("%s", strings.Join(bad, "; "))
}

// RequirePositive terminates the program with a usage error (exit status 2)
// unless every value in vals is strictly positive. Call after flag.Parse;
// keys are flag names without the leading dash.
func RequirePositive(vals map[string]int) {
	exitOnErr(CheckPositive(vals))
}

// RequireNonNegative terminates the program with a usage error (exit
// status 2) unless every value in vals is zero or positive.
func RequireNonNegative(vals map[string]int) {
	exitOnErr(CheckNonNegative(vals))
}

func exitOnErr(err error) {
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", os.Args[0], err)
	flag.Usage()
	os.Exit(2)
}
