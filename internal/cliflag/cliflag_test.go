package cliflag

import (
	"strings"
	"testing"
)

func TestCheckPositive(t *testing.T) {
	if err := CheckPositive(map[string]int{"rows": 1024, "steps": 1}); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	err := CheckPositive(map[string]int{"block": 0, "rows": 256, "steps": -4})
	if err == nil {
		t.Fatal("non-positive flags accepted")
	}
	msg := err.Error()
	for _, want := range []string{"-block must be > 0 (got 0)", "-steps must be > 0 (got -4)"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if strings.Contains(msg, "-rows") {
		t.Errorf("error %q names the valid flag -rows", msg)
	}
	// Deterministic order: sorted by flag name.
	if strings.Index(msg, "-block") > strings.Index(msg, "-steps") {
		t.Errorf("error %q not sorted by flag name", msg)
	}
}

func TestCheckNonNegative(t *testing.T) {
	if err := CheckNonNegative(map[string]int{"maxlevel": 0}); err != nil {
		t.Fatalf("zero rejected by CheckNonNegative: %v", err)
	}
	if err := CheckNonNegative(map[string]int{"maxlevel": -1}); err == nil {
		t.Fatal("negative accepted by CheckNonNegative")
	}
}
