package tampi_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/mpisim"
	"repro/internal/tasking"
)

func hybridConfig(ranks int) cluster.Config {
	return cluster.Config{
		Nodes: ranks, RanksPerNode: 1, CoresPerRank: 4,
		Profile:     fabric.ProfileIdeal(),
		WithTasking: true, WithTAMPI: true,
		TAMPIPoll: 5 * time.Microsecond,
	}
}

// The Figure-1 flow: a communication task binds a receive via Iwait and
// declares the buffer as an output dependency; the successor task that
// consumes the buffer must only run once the data has arrived.
func TestIwaitReleasesDepsAfterArrival(t *testing.T) {
	var got atomic.Int64
	cluster.Run(hybridConfig(2), func(env *cluster.Env) {
		switch env.Rank {
		case 0:
			env.RT.Submit(func(tk *tasking.Task) {
				tk.Compute(20 * time.Microsecond) // delay the send
				req := env.MPI.Isend([]byte("payload"), 1, 0)
				env.TAMPI.Iwait(tk, req)
			}, tasking.WithLabel("send"))
		case 1:
			buf := make([]byte, 7)
			env.RT.Submit(func(tk *tasking.Task) {
				req := env.MPI.Irecv(buf, 0, 0)
				env.TAMPI.Iwait(tk, req)
				// TAMPI semantics: we may NOT touch buf here; the recv may
				// not have completed. Only successors may.
			}, tasking.WithDeps(tasking.Out(&buf[0], 0, len(buf))), tasking.WithLabel("recv"))
			env.RT.Submit(func(tk *tasking.Task) {
				if string(buf) == "payload" {
					got.Store(1)
				}
			}, tasking.WithDeps(tasking.In(&buf[0], 0, len(buf))), tasking.WithLabel("consume"))
		}
	})
	if got.Load() != 1 {
		t.Fatal("consumer ran without the received payload")
	}
}

func TestIwaitallBindsMany(t *testing.T) {
	const n = 16
	var sum atomic.Int64
	cluster.Run(hybridConfig(2), func(env *cluster.Env) {
		switch env.Rank {
		case 0:
			env.RT.Submit(func(tk *tasking.Task) {
				for i := 0; i < n; i++ {
					req := env.MPI.Isend([]byte{byte(i)}, 1, i)
					env.TAMPI.Iwait(tk, req)
				}
			})
		case 1:
			bufs := make([][]byte, n)
			flag := new(int)
			env.RT.Submit(func(tk *tasking.Task) {
				var reqs []*mpisim.Request
				for i := 0; i < n; i++ {
					bufs[i] = make([]byte, 1)
					reqs = append(reqs, env.MPI.Irecv(bufs[i], 0, i))
				}
				env.TAMPI.Iwaitall(tk, reqs...)
			}, tasking.WithDeps(tasking.OutVal(flag)))
			env.RT.Submit(func(tk *tasking.Task) {
				for i := 0; i < n; i++ {
					sum.Add(int64(bufs[i][0]))
				}
			}, tasking.WithDeps(tasking.InVal(flag)))
		}
	})
	if want := int64(n * (n - 1) / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestBlockingWaitYieldsCore(t *testing.T) {
	// Blocking TAMPI mode on a single-core runtime: the waiting task must
	// not wedge the rank; another task performs the matching send later.
	var ok atomic.Bool
	cfg := hybridConfig(2)
	cfg.CoresPerRank = 1
	cluster.Run(cfg, func(env *cluster.Env) {
		switch env.Rank {
		case 0:
			env.RT.Submit(func(tk *tasking.Task) {
				tk.Compute(50 * time.Microsecond)
				req := env.MPI.Isend([]byte("x"), 1, 0)
				env.TAMPI.Iwait(tk, req)
			})
		case 1:
			env.RT.Submit(func(tk *tasking.Task) {
				buf := make([]byte, 1)
				req := env.MPI.Irecv(buf, 0, 0)
				env.TAMPI.Wait(tk, req) // blocking mode
				ok.Store(buf[0] == 'x')
			})
			// A second task must be able to run while the first blocks.
			env.RT.Submit(func(tk *tasking.Task) { tk.Compute(time.Microsecond) })
		}
	})
	if !ok.Load() {
		t.Fatal("blocking Wait did not deliver the payload")
	}
}

func TestPollIntervalAffectsLatency(t *testing.T) {
	// With a longer polling period, the receiver task's dependencies are
	// released later: the paper's motivation for per-service periods.
	latency := func(poll time.Duration) time.Duration {
		var release time.Duration
		cfg := cluster.Config{
			Nodes: 2, RanksPerNode: 1, CoresPerRank: 2,
			Profile:     fabric.ProfileOmniPath(),
			WithTasking: true, WithTAMPI: true,
			TAMPIPoll: poll,
		}
		cluster.Run(cfg, func(env *cluster.Env) {
			switch env.Rank {
			case 0:
				env.RT.Submit(func(tk *tasking.Task) {
					req := env.MPI.Isend(make([]byte, 64), 1, 0)
					env.TAMPI.Iwait(tk, req)
				})
			case 1:
				buf := make([]byte, 64)
				env.RT.Submit(func(tk *tasking.Task) {
					req := env.MPI.Irecv(buf, 0, 0)
					env.TAMPI.Iwait(tk, req)
				}, tasking.WithDeps(tasking.Out(&buf[0], 0, 64)))
				env.RT.Submit(func(tk *tasking.Task) {
					release = env.Clk.Now()
				}, tasking.WithDeps(tasking.In(&buf[0], 0, 64)))
			}
		})
		return release
	}
	fast := latency(20 * time.Microsecond)
	slow := latency(400 * time.Microsecond)
	if slow <= fast {
		t.Fatalf("coarser polling (%v) should release later than finer (%v)", slow, fast)
	}
}

func TestInFlightDrainsToZero(t *testing.T) {
	var inflight int
	cluster.Run(hybridConfig(2), func(env *cluster.Env) {
		switch env.Rank {
		case 0:
			env.RT.Submit(func(tk *tasking.Task) {
				env.TAMPI.Iwait(tk, env.MPI.Isend([]byte("z"), 1, 0))
			})
		case 1:
			env.RT.Submit(func(tk *tasking.Task) {
				env.TAMPI.Iwait(tk, env.MPI.Irecv(make([]byte, 1), 0, 0))
			})
		}
		env.RT.TaskWait()
		if env.Rank == 1 {
			inflight = env.TAMPI.InFlight()
		}
	})
	if inflight != 0 {
		t.Fatalf("in-flight = %d after TaskWait", inflight)
	}
}
