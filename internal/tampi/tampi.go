// Package tampi implements the Task-Aware MPI library (§II-C of the paper):
// it lets tasks issue non-blocking two-sided MPI operations and bind the
// requests to the task's completion through the external events API, so the
// task's dependencies are released only when both the body has finished and
// every bound request has completed.
//
// Iwait mirrors TAMPI_Iwait: non-blocking and asynchronous, returning
// immediately after binding the request. Wait mirrors the blocking TAMPI
// mode: the task yields its core until the request completes.
//
// A transparent polling task (package core) checks the in-flight requests
// with MPI_Testsome — through the same modelled library lock as the
// application's Isend/Irecv calls, which is exactly the contention the
// paper measures in §VI-C.
package tampi

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mpisim"
	"repro/internal/tasking"
)

// Library is the per-rank TAMPI instance.
type Library struct {
	p   *mpisim.Proc
	rt  *tasking.Runtime
	svc *core.Service

	mu       sync.Mutex
	requests []*mpisim.Request
	counters []*tasking.EventCounter
}

// DefaultPollInterval is the polling period used when none is configured
// (the paper tunes 50–150µs per application; §VI).
const DefaultPollInterval = 150 * time.Microsecond

// New initialises TAMPI for one rank and spawns its polling task.
// A non-positive interval dedicates the polling task (poll back-to-back).
func New(p *mpisim.Proc, rt *tasking.Runtime, interval time.Duration) *Library {
	l := &Library{p: p, rt: rt}
	l.svc = core.StartService(rt, "tampi-poll", interval, l.poll)
	return l
}

// Service exposes the polling service (for interval tuning and stats).
func (l *Library) Service() *core.Service { return l.svc }

// Proc returns the underlying MPI process.
func (l *Library) Proc() *mpisim.Proc { return l.p }

// Iwait binds req to the calling task: the task's completion (and the
// release of its dependencies) is delayed until the request finalises.
// It returns immediately — the TAMPI_Iwait semantics. The calling task
// must not assume the operation has finished; only successor tasks may
// consume or reuse the communication buffers.
func (l *Library) Iwait(t *tasking.Task, req *mpisim.Request) {
	c := t.Events()
	c.Increase(1)
	l.mu.Lock()
	l.requests = append(l.requests, req)
	l.counters = append(l.counters, c)
	l.mu.Unlock()
}

// Iwaitall binds every request to the calling task.
func (l *Library) Iwaitall(t *tasking.Task, reqs ...*mpisim.Request) {
	for _, r := range reqs {
		if r != nil {
			l.Iwait(t, r)
		}
	}
}

// Wait is the blocking TAMPI mode: the task yields its core until the
// request completes, then continues.
func (l *Library) Wait(t *tasking.Task, req *mpisim.Request) {
	t.Yield(func() { l.p.Wait(req) })
}

// poll is one pass of the transparent polling task: a single Testsome over
// the in-flight request set, retiring one task event per completion.
func (l *Library) poll() int {
	l.mu.Lock()
	reqs := append([]*mpisim.Request(nil), l.requests...)
	l.mu.Unlock()
	if len(reqs) == 0 {
		return 0
	}
	done := l.p.Testsome(reqs)
	if len(done) == 0 {
		return 0
	}
	retire := make([]*tasking.EventCounter, 0, len(done))
	l.mu.Lock()
	// Completed requests retain their identity; remove by pointer in case
	// the set shifted since the snapshot.
	for _, i := range done {
		target := reqs[i]
		for j, r := range l.requests {
			if r == target {
				retire = append(retire, l.counters[j])
				last := len(l.requests) - 1
				l.requests[j] = l.requests[last]
				l.counters[j] = l.counters[last]
				l.requests = l.requests[:last]
				l.counters = l.counters[:last]
				break
			}
		}
	}
	l.mu.Unlock()
	for _, c := range retire {
		c.Decrease(1)
	}
	return len(retire)
}

// InFlight reports the number of requests currently bound and pending.
func (l *Library) InFlight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.requests)
}
