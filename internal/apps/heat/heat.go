// Package heat implements the paper's first evaluation application
// (§VI-A): the iterative Gauss–Seidel method solving the heat equation on
// a 2-D grid, in the three variants the paper compares:
//
//   - MPI-only: one single-core rank per simulated core (48/node on the
//     Marenostrum4 geometry), each owning a strip of rows divided into
//     column blocks, using optimised non-blocking MPI with early-issued
//     receives.
//   - TAMPI: hybrid MPI+OmpSs-2 with both computation and communication
//     taskified; communication tasks bind their requests with TAMPI_Iwait.
//   - TAGASPI: the same taskification, with sender tasks writing boundary
//     rows directly into the neighbour's memory via tagaspi_write_notify
//     and receiver tasks waiting notifications with tagaspi_notify_iwait,
//     multiplexing operations over the GASPI queues.
//
// The matrix is distributed by consecutive row strips; ranks exchange
// boundary rows with their upper and lower neighbours. The in-place
// Gauss–Seidel sweep order (row-major) makes the parallel computation
// bitwise-identical to the serial reference, which the tests verify.
package heat

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/memory"
	"repro/internal/tasking"
)

// Params configures one Gauss–Seidel run.
type Params struct {
	Rows, Cols int // global interior grid size
	Timesteps  int
	BlockRows  int  // task block height (hybrid variants)
	BlockCols  int  // block width (all variants)
	Verify     bool // run the real arithmetic (tests); cost is modelled always
}

// Updates returns the figure-of-merit element count (updates per run).
func (p Params) Updates() float64 {
	return float64(p.Rows) * float64(p.Cols) * float64(p.Timesteps)
}

// boundaryTop is the fixed temperature of the global top boundary row.
const boundaryTop = 1.0

// grid is one rank's strip: rp interior rows plus two halo rows, stored in
// a GASPI segment so one-sided variants can write halos directly.
type grid struct {
	env    *cluster.Env
	p      Params
	ranks  int
	rank   int
	rp     int // interior rows owned by this rank
	seg    *memory.Segment
	v      memory.F64 // (rp+2) x Cols
	bi, bj int        // block grid dimensions (hybrid)
}

// segGrid is the segment id used for the strip.
const segGrid = 0

// newGrid allocates and initialises the strip for env's rank.
func newGrid(env *cluster.Env, p Params, hybrid bool) *grid {
	ranks := env.Ranks()
	if p.Rows%ranks != 0 {
		panic(fmt.Sprintf("heat: %d rows not divisible by %d ranks", p.Rows, ranks))
	}
	g := &grid{env: env, p: p, ranks: ranks, rank: int(env.Rank), rp: p.Rows / ranks}
	if hybrid {
		if g.rp%p.BlockRows != 0 || p.Cols%p.BlockCols != 0 {
			panic(fmt.Sprintf("heat: block %dx%d does not divide strip %dx%d",
				p.BlockRows, p.BlockCols, g.rp, p.Cols))
		}
		g.bi, g.bj = g.rp/p.BlockRows, p.Cols/p.BlockCols
	} else {
		if p.Cols%p.BlockCols != 0 {
			panic(fmt.Sprintf("heat: block width %d does not divide %d columns", p.BlockCols, p.Cols))
		}
		g.bi, g.bj = 1, p.Cols/p.BlockCols
	}
	seg, err := env.GASPI.SegmentCreate(segGrid, (g.rp+2)*p.Cols*memory.F64Bytes)
	if err != nil {
		panic(err)
	}
	g.seg = seg
	v, err := memory.F64View(seg, 0, (g.rp+2)*p.Cols)
	if err != nil {
		panic(err)
	}
	g.v = v
	if p.Verify {
		// Interior starts at zero (segment is zeroed); set the boundary.
		if g.rank == 0 {
			for c := 0; c < p.Cols; c++ {
				v.Set(g.idx(0, c), boundaryTop)
			}
		}
	}
	return g
}

// idx maps (strip row, col) to the flat index; row 0 is the top halo and
// row rp+1 the bottom halo.
func (g *grid) idx(r, c int) int { return r*g.p.Cols + c }

// rowOffsetBytes returns the byte offset of (row, col0) in the segment.
func (g *grid) rowOffsetBytes(r, col0 int) int {
	return g.idx(r, col0) * memory.F64Bytes
}

// sweep performs the in-place Gauss–Seidel update over strip rows
// [r0, r1] and columns [c0, c1] (inclusive bounds, interior coordinates
// 1..rp and 0..Cols-1; border columns are fixed and skipped).
func (g *grid) sweep(r0, r1, c0, c1 int) {
	if !g.p.Verify {
		return
	}
	v, C := g.v, g.p.Cols
	lo, hi := c0, c1
	if lo == 0 {
		lo = 1
	}
	if hi == C-1 {
		hi = C - 2
	}
	for r := r0; r <= r1; r++ {
		base := r * C
		for c := lo; c <= hi; c++ {
			i := base + c
			x := 0.25 * (v.At(i-C) + v.At(i+C) + v.At(i-1) + v.At(i+1))
			v.Set(i, x)
		}
	}
}

// blockCost returns the modelled compute time of a rows×cols block sweep.
func (g *grid) blockCost(rows, cols int) float64 {
	return float64(rows) * float64(cols)
}

// computeBlock models and (in verify mode) performs one block update.
// Block coordinates are in the hybrid block grid.
func (g *grid) computeBlock(t *tasking.Task, bi, bj int) {
	br, bc := g.p.BlockRows, g.p.BlockCols
	t.Compute(g.env.CostOf(g.blockCost(br, bc)))
	g.sweep(1+bi*br, (bi+1)*br, bj*bc, (bj+1)*bc-1)
}

// Result carries the values needed by verification and figures.
type Result struct {
	Params Params
	Ranks  int
}

// Serial computes the reference solution on a single grid, returning the
// full (Rows+2) x Cols matrix including boundary rows. The sweep order is
// identical to the distributed variants'.
func Serial(p Params) []float64 {
	C := p.Cols
	u := make([]float64, (p.Rows+2)*C)
	for c := 0; c < C; c++ {
		u[c] = boundaryTop
	}
	for t := 0; t < p.Timesteps; t++ {
		for r := 1; r <= p.Rows; r++ {
			for c := 1; c <= C-2; c++ {
				i := r*C + c
				u[i] = 0.25 * (u[i-C] + u[i+C] + u[i-1] + u[i+1])
			}
		}
	}
	return u
}

// Strip extracts this rank's interior rows as a copy (for verification).
func (g *grid) Strip() []float64 {
	out := make([]float64, g.rp*g.p.Cols)
	for r := 0; r < g.rp; r++ {
		for c := 0; c < g.p.Cols; c++ {
			out[r*g.p.Cols+c] = g.v.At(g.idx(r+1, c))
		}
	}
	return out
}
