package heat

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/obs/critpath"
)

// blameRun executes one instrumented 2-rank heat job and returns its
// critical-path blame report. Geometry and seed are pinned so the report
// is byte-stable across runs and machines (everything downstream of the
// virtual clock is deterministic).
func blameRun(t *testing.T, variant string) *critpath.Report {
	t.Helper()
	p := Params{Rows: 32, Cols: 64, Timesteps: 5, BlockRows: 8, BlockCols: 16}
	cfg := cluster.Config{
		Nodes: 2, RanksPerNode: 1, CoresPerRank: 2,
		Profile: fabric.ProfileOmniPath(),
		Seed:    7,
	}
	switch variant {
	case "mpi":
		cfg.CoresPerRank = 1
		p.BlockCols = 16
	case "tagaspi":
		cfg.WithTasking, cfg.WithTAGASPI = true, true
		cfg.TAGASPIPoll = 5 * time.Microsecond
	}
	cfg.Recorder = obs.NewCollector(cfg.Nodes * cfg.RanksPerNode)
	res := cluster.Run(cfg, func(env *cluster.Env) {
		switch variant {
		case "mpi":
			RunMPIOnly(env, p)
		case "tagaspi":
			RunTAGASPI(env, p)
		}
	})
	if res.Blame == nil {
		t.Fatalf("%s: instrumented run produced no blame report", variant)
	}
	return res.Blame
}

// TestBlameGolden pins the critical-path blame report of a 2-rank TAGASPI
// heat run against a golden file, like the PR 2 golden trace: any change to
// event recording, flow-edge pairing, the walk, or report serialization
// must show up as a reviewed diff.
//
// Regenerate with: OBS_UPDATE_GOLDEN=1 go test ./internal/apps/heat -run TestBlameGolden
func TestBlameGolden(t *testing.T) {
	rep := blameRun(t, "tagaspi")
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "blame.golden.txt")
	if os.Getenv("OBS_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with OBS_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("blame report drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), want)
	}
}

// TestBlameAttributionAndLockOrdering checks the run-level acceptance
// properties on both variants: every nanosecond of makespan is attributed
// (the walk ends only at t=0), and the MPI-Only critical path carries a
// strictly larger THREAD_MULTIPLE lock-wait share than TAGASPI's, which
// never takes that lock on its notified one-sided path.
func TestBlameAttributionAndLockOrdering(t *testing.T) {
	mpi := blameRun(t, "mpi")
	tg := blameRun(t, "tagaspi")
	for name, rep := range map[string]*critpath.Report{"mpi": mpi, "tagaspi": tg} {
		if rep.Attributed < rep.Makespan*95/100 {
			t.Errorf("%s: only %v of %v makespan attributed", name, rep.Attributed, rep.Makespan)
		}
	}
	if mpi.Share(critpath.ClassMPILockWait) <= tg.Share(critpath.ClassMPILockWait) {
		t.Errorf("MPI-Only lock-wait share %.4f not strictly above TAGASPI's %.4f",
			mpi.Share(critpath.ClassMPILockWait), tg.Share(critpath.ClassMPILockWait))
	}
}
