package heat

import (
	"repro/internal/cluster"
	"repro/internal/gaspisim"
	"repro/internal/memory"
	"repro/internal/mpisim"
	"repro/internal/tasking"
)

// rowBytes returns the raw bytes of the columns [bj*bc, (bj+1)*bc) of a
// strip row.
func (g *grid) rowBytes(row, bj int) []byte {
	bc := g.p.BlockCols
	off := g.rowOffsetBytes(row, bj*bc)
	b, err := g.seg.Slice(off, bc*memory.F64Bytes)
	if err != nil {
		panic(err)
	}
	return b
}

// throttleWindow bounds the live-task window of hybrid rank mains.
const throttleWindow = 4096

// must fails fast on simulator API errors: inside task bodies there is no
// caller to propagate to, and in this deterministic benchmark any error is
// a programming bug (bad offset, unknown segment, invalid queue).
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// RunMPIOnly executes the optimised MPI-only variant (§VI-A): non-blocking
// primitives with receives issued as early as possible and waits placed
// only where needed, overlapping computation and communication. The rank
// main is the only execution stream (one core per rank).
func RunMPIOnly(env *cluster.Env, p Params) *grid {
	g := newGrid(env, p, false)
	r, P := g.rank, g.ranks
	mpi := env.MPI
	BJ := g.bj
	up, down := r > 0, r < P-1
	T := p.Timesteps

	topReq := make([]*mpisim.Request, BJ)
	botReq := make([]*mpisim.Request, BJ)
	var sendReqs []*mpisim.Request

	// Early-issue the first iteration's top-halo receives.
	if up {
		for bj := 0; bj < BJ; bj++ {
			topReq[bj] = mpi.Irecv(g.rowBytes(0, bj), mpisim.Rank(r-1), 2*bj)
		}
	}
	for t := 0; t < T; t++ {
		// Bottom halo for iteration t carries the neighbour's first row of
		// t-1 (sent during its t-1 sweep); t=0 uses the initial condition.
		if down && t > 0 {
			for bj := 0; bj < BJ; bj++ {
				botReq[bj] = mpi.Irecv(g.rowBytes(g.rp+1, bj), mpisim.Rank(r+1), 2*bj+1)
			}
		}
		for bj := 0; bj < BJ; bj++ {
			if up {
				mpi.Wait(topReq[bj])
			}
			if down && t > 0 {
				mpi.Wait(botReq[bj])
			}
			bc := p.BlockCols
			env.Clk.Sleep(env.CostOf(g.blockCost(g.rp, bc)))
			g.sweep(1, g.rp, bj*bc, (bj+1)*bc-1)
			if up && t < T-1 {
				// First row of t feeds the upper neighbour's t+1 bottom halo.
				sendReqs = append(sendReqs, mpi.Isend(g.rowBytes(1, bj), mpisim.Rank(r-1), 2*bj+1))
			}
			if down {
				// Last row of t feeds the lower neighbour's t top halo.
				sendReqs = append(sendReqs, mpi.Isend(g.rowBytes(g.rp, bj), mpisim.Rank(r+1), 2*bj))
			}
		}
		// Re-issue next iteration's top receives as soon as possible.
		if up && t < T-1 {
			for bj := 0; bj < BJ; bj++ {
				topReq[bj] = mpi.Irecv(g.rowBytes(0, bj), mpisim.Rank(r-1), 2*bj)
			}
		}
		// The rows just sent are rewritten next sweep: wait local completion.
		mpi.Waitall(sendReqs)
		sendReqs = sendReqs[:0]
	}
	return g
}

// blockKeys hands out stable dependency bases for the hybrid variants.
type blockKeys struct {
	blocks, top, bot int
}

// RunTAMPI executes the hybrid MPI+OmpSs-2 variant: computation and
// communication fully taskified, with TAMPI_Iwait binding the non-blocking
// requests to the communication tasks (§VI-A).
func RunTAMPI(env *cluster.Env, p Params) *grid {
	g := newGrid(env, p, true)
	r, P := g.rank, g.ranks
	mpi, rt, ta := env.MPI, env.RT, env.TAMPI
	BI, BJ := g.bi, g.bj
	up, down := r > 0, r < P-1
	T := p.Timesteps
	keys := &blockKeys{}

	for t := 0; t < T; t++ {
		if up {
			for bj := 0; bj < BJ; bj++ {
				bj := bj
				rt.Submit(func(tk *tasking.Task) {
					req := mpi.Irecv(g.rowBytes(0, bj), mpisim.Rank(r-1), 2*bj)
					ta.Iwait(tk, req)
				}, tasking.WithDeps(tasking.Out(&keys.top, bj, bj+1)),
					tasking.WithLabel("recv top"))
			}
		}
		if down && t > 0 {
			for bj := 0; bj < BJ; bj++ {
				bj := bj
				rt.Submit(func(tk *tasking.Task) {
					req := mpi.Irecv(g.rowBytes(g.rp+1, bj), mpisim.Rank(r+1), 2*bj+1)
					ta.Iwait(tk, req)
				}, tasking.WithDeps(tasking.Out(&keys.bot, bj, bj+1)),
					tasking.WithLabel("recv bottom"))
			}
		}
		g.submitComputeTasks(keys, up, down)
		for bj := 0; bj < BJ; bj++ {
			bj := bj
			if up && t < T-1 {
				rt.Submit(func(tk *tasking.Task) {
					req := mpi.Isend(g.rowBytes(1, bj), mpisim.Rank(r-1), 2*bj+1)
					ta.Iwait(tk, req)
				}, tasking.WithDeps(tasking.In(&keys.blocks, bj, bj+1)),
					tasking.WithLabel("send top"))
			}
			if down {
				last := (BI-1)*BJ + bj
				rt.Submit(func(tk *tasking.Task) {
					req := mpi.Isend(g.rowBytes(g.rp, bj), mpisim.Rank(r+1), 2*bj)
					ta.Iwait(tk, req)
				}, tasking.WithDeps(tasking.In(&keys.blocks, last, last+1)),
					tasking.WithLabel("send bottom"))
			}
		}
		rt.Throttle(throttleWindow)
	}
	rt.TaskWait()
	return g
}

// RunTAGASPI executes the hybrid GASPI+OmpSs-2 variant: the same
// taskification as TAMPI, but sender tasks write boundary rows directly
// into the neighbour's segment with tagaspi_write_notify and receiver
// tasks wait the notifications with tagaspi_notify_iwait, spreading
// operations over the GASPI queues (§VI-A).
func RunTAGASPI(env *cluster.Env, p Params) *grid {
	g := newGrid(env, p, true)
	r, P := g.rank, g.ranks
	rt, tg := env.RT, env.TAGASPI
	BI, BJ := g.bi, g.bj
	up, down := r > 0, r < P-1
	T := p.Timesteps
	Q := env.GASPI.Queues()
	keys := &blockKeys{}
	rowLen := p.BlockCols * memory.F64Bytes

	// Notification ids: top-halo arrivals use [0, BJ); bottom-halo
	// arrivals use [BJ, 2BJ).
	for t := 0; t < T; t++ {
		if up {
			for bj := 0; bj < BJ; bj++ {
				bj := bj
				rt.Submit(func(tk *tasking.Task) {
					tg.NotifyIwait(tk, segGrid, gaspisim.NotificationID(bj), nil)
				}, tasking.WithDeps(tasking.Out(&keys.top, bj, bj+1)),
					tasking.WithLabel("wait top"))
			}
		}
		if down && t > 0 {
			for bj := 0; bj < BJ; bj++ {
				bj := bj
				rt.Submit(func(tk *tasking.Task) {
					tg.NotifyIwait(tk, segGrid, gaspisim.NotificationID(BJ+bj), nil)
				}, tasking.WithDeps(tasking.Out(&keys.bot, bj, bj+1)),
					tasking.WithLabel("wait bottom"))
			}
		}
		g.submitComputeTasks(keys, up, down)
		for bj := 0; bj < BJ; bj++ {
			bj := bj
			if up && t < T-1 {
				// My first row lands in the upper neighbour's bottom halo.
				rt.Submit(func(tk *tasking.Task) {
					must(tg.WriteNotify(tk, segGrid, g.rowOffsetBytes(1, bj*p.BlockCols),
						gaspisim.Rank(r-1), segGrid,
						g.rowOffsetBytes(g.rp+1, bj*p.BlockCols), rowLen,
						gaspisim.NotificationID(BJ+bj), int64(t+1), bj%Q))
				}, tasking.WithDeps(tasking.In(&keys.blocks, bj, bj+1)),
					tasking.WithLabel("write top"))
			}
			if down {
				last := (BI-1)*BJ + bj
				// My last row lands in the lower neighbour's top halo.
				rt.Submit(func(tk *tasking.Task) {
					must(tg.WriteNotify(tk, segGrid, g.rowOffsetBytes(g.rp, bj*p.BlockCols),
						gaspisim.Rank(r+1), segGrid,
						g.rowOffsetBytes(0, bj*p.BlockCols), rowLen,
						gaspisim.NotificationID(bj), int64(t+1), bj%Q))
				}, tasking.WithDeps(tasking.In(&keys.blocks, last, last+1)),
					tasking.WithLabel("write bottom"))
			}
		}
		rt.Throttle(throttleWindow)
	}
	rt.TaskWait()
	return g
}

// submitComputeTasks creates the block-update tasks of one timestep in
// wavefront dependency order (Gauss–Seidel: up and left must be new, down
// and right old).
func (g *grid) submitComputeTasks(keys *blockKeys, up, down bool) {
	BI, BJ := g.bi, g.bj
	rt := g.env.RT
	for bi := 0; bi < BI; bi++ {
		for bj := 0; bj < BJ; bj++ {
			bi, bj := bi, bj
			idx := bi*BJ + bj
			deps := []tasking.Dep{tasking.InOut(&keys.blocks, idx, idx+1)}
			if bi > 0 {
				deps = append(deps, tasking.In(&keys.blocks, idx-BJ, idx-BJ+1))
			} else if up {
				deps = append(deps, tasking.In(&keys.top, bj, bj+1))
			}
			if bi < BI-1 {
				deps = append(deps, tasking.In(&keys.blocks, idx+BJ, idx+BJ+1))
			} else if down {
				deps = append(deps, tasking.In(&keys.bot, bj, bj+1))
			}
			if bj > 0 {
				deps = append(deps, tasking.In(&keys.blocks, idx-1, idx))
			}
			if bj < BJ-1 {
				deps = append(deps, tasking.In(&keys.blocks, idx+1, idx+2))
			}
			rt.Submit(func(tk *tasking.Task) {
				g.computeBlock(tk, bi, bj)
			}, tasking.WithDeps(deps...), tasking.WithLabel("compute"))
		}
	}
}
