package heat

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
)

// gather runs one variant and collects each rank's interior strip.
func gather(cfg cluster.Config, p Params, variant func(*cluster.Env, Params) *grid) ([][]float64, cluster.Result) {
	ranks := cfg.Nodes * cfg.RanksPerNode
	strips := make([][]float64, ranks)
	var mu sync.Mutex
	res := cluster.Run(cfg, func(env *cluster.Env) {
		g := variant(env, p)
		if env.RT != nil {
			env.RT.TaskWait()
		}
		s := g.Strip()
		mu.Lock()
		strips[env.Rank] = s
		mu.Unlock()
	})
	return strips, res
}

// assemble concatenates strips into a full interior matrix.
func assemble(strips [][]float64) []float64 {
	var out []float64
	for _, s := range strips {
		out = append(out, s...)
	}
	return out
}

func mpiOnlyConfig(ranks int) cluster.Config {
	return cluster.Config{
		Nodes: ranks, RanksPerNode: 1, CoresPerRank: 1,
		Profile: fabric.ProfileIdeal(),
	}
}

func hybridCfg(ranks, cores int, tagaspi bool) cluster.Config {
	cfg := cluster.Config{
		Nodes: ranks, RanksPerNode: 1, CoresPerRank: cores,
		Profile:     fabric.ProfileIdeal(),
		WithTasking: true,
		TAMPIPoll:   5 * time.Microsecond,
		TAGASPIPoll: 5 * time.Microsecond,
	}
	if tagaspi {
		cfg.WithTAGASPI = true
	} else {
		cfg.WithTAMPI = true
	}
	return cfg
}

var verifyParams = Params{
	Rows: 32, Cols: 48, Timesteps: 7,
	BlockRows: 4, BlockCols: 12, Verify: true,
}

func checkAgainstSerial(t *testing.T, got []float64, p Params) {
	t.Helper()
	want := Serial(p)
	// Compare interiors: serial includes boundary rows 0 and Rows+1.
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			w := want[(r+1)*p.Cols+c]
			g := got[r*p.Cols+c]
			if w != g {
				t.Fatalf("mismatch at (%d,%d): got %v, want %v", r, c, g, w)
			}
		}
	}
}

func TestSerialReferenceConverges(t *testing.T) {
	p := verifyParams
	u := Serial(p)
	// Heat must have diffused into the first interior row by now.
	warm := 0
	for c := 1; c < p.Cols-1; c++ {
		if u[1*p.Cols+c] > 0 {
			warm++
		}
	}
	if warm == 0 {
		t.Fatal("no diffusion happened; kernel broken")
	}
	// The bottom boundary (0) must keep values bounded below the source.
	for i, v := range u {
		if v < 0 || v > boundaryTop {
			t.Fatalf("u[%d] = %v outside [0,1]", i, v)
		}
	}
}

func TestMPIOnlyMatchesSerial(t *testing.T) {
	for _, ranks := range []int{1, 2, 4} {
		strips, _ := gather(mpiOnlyConfig(ranks), verifyParams, RunMPIOnly)
		checkAgainstSerial(t, assemble(strips), verifyParams)
	}
}

func TestTAMPIMatchesSerial(t *testing.T) {
	for _, ranks := range []int{1, 2, 4} {
		strips, _ := gather(hybridCfg(ranks, 4, false), verifyParams, RunTAMPI)
		checkAgainstSerial(t, assemble(strips), verifyParams)
	}
}

func TestTAGASPIMatchesSerial(t *testing.T) {
	for _, ranks := range []int{1, 2, 4} {
		strips, _ := gather(hybridCfg(ranks, 4, true), verifyParams, RunTAGASPI)
		checkAgainstSerial(t, assemble(strips), verifyParams)
	}
}

func TestVariantsAgreeUnderContentionProfile(t *testing.T) {
	// Same numerics under a real cost profile (timing changes, values not).
	p := verifyParams
	cfg := hybridCfg(2, 4, true)
	cfg.Profile = fabric.ProfileInfiniBand()
	strips, res := gather(cfg, p, RunTAGASPI)
	checkAgainstSerial(t, assemble(strips), p)
	if res.Elapsed <= 0 {
		t.Fatal("no modelled time elapsed under a costed profile")
	}
}

func TestTAGASPIFasterWithSmallBlocksThanTAMPI(t *testing.T) {
	// The paper's headline behaviour (Fig. 10): with small blocks and a
	// costed profile, TAGASPI outperforms TAMPI because TAMPI's
	// communication tasks contend on the MPI library lock.
	p := Params{Rows: 128, Cols: 256, Timesteps: 6, BlockRows: 8, BlockCols: 16}
	prof := fabric.ProfileOmniPath()

	cfgM := hybridCfg(4, 8, false)
	cfgM.Profile = prof
	_, resM := gather(cfgM, p, RunTAMPI)

	cfgG := hybridCfg(4, 8, true)
	cfgG.Profile = prof
	_, resG := gather(cfgG, p, RunTAGASPI)

	if resG.Elapsed >= resM.Elapsed {
		t.Fatalf("TAGASPI (%v) not faster than TAMPI (%v) with fine-grained blocks",
			resG.Elapsed, resM.Elapsed)
	}
}

func TestUpdatesFigureOfMerit(t *testing.T) {
	p := Params{Rows: 100, Cols: 200, Timesteps: 3}
	if p.Updates() != 60000 {
		t.Fatalf("Updates = %v", p.Updates())
	}
}
