package heat

import (
	"testing"

	"repro/internal/fabric"
)

// Under injected faults the numerics must stay bit-exact: MPI-class drops
// retransmit transparently, and every GASPI-class failure is retried by
// TAGASPI while the task dependency system keeps the source halos frozen
// until the resubmission lands (DESIGN.md §9).
func TestTAGASPIMatchesSerialUnderFaults(t *testing.T) {
	p := verifyParams
	cfg := hybridCfg(2, 4, true)
	cfg.Seed = 3
	cfg.Faults = fabric.FaultPlan{
		MPI:   fabric.FaultRates{Drop: 0.3},
		GASPI: fabric.FaultRates{Drop: 0.3},
	}
	strips, res := gather(cfg, p, RunTAGASPI)
	checkAgainstSerial(t, assemble(strips), p)
	if res.Fabric.Faults == 0 {
		t.Fatal("Drop=0.3 injected no faults; the plan did not reach the fabric")
	}
}

// The MPI-only variant rides the fabric's transparent retransmission alone;
// it too must stay bit-exact, just slower.
func TestMPIOnlyMatchesSerialUnderFaults(t *testing.T) {
	p := verifyParams
	cfg := mpiOnlyConfig(2)
	cfg.Seed = 3
	cfg.Faults = fabric.FaultPlan{MPI: fabric.FaultRates{Drop: 0.3}}
	strips, res := gather(cfg, p, RunMPIOnly)
	checkAgainstSerial(t, assemble(strips), p)
	if res.Fabric.Faults == 0 {
		t.Fatal("Drop=0.3 injected no faults; the plan did not reach the fabric")
	}
}
