// Package miniamr implements the paper's second evaluation application
// (§VI-B): a proxy of the miniAMR adaptive-mesh-refinement mini-app. A 3-D
// domain of blocks tracks an object moving through it; blocks near the
// object refine (up to MaxLevel, with 2:1 level balance), others coarsen.
// Every stage the application runs halo-exchange + stencil steps; every
// RefineEvery stages it rebuilds the mesh, migrates block data to the new
// owners (load balancing), and — in the TAGASPI variant — runs the
// sequential agreement phase of §VI-B, where neighbouring ranks agree on
// the receive-buffer offset and notification id of every RMA message.
//
// Substitution note (see DESIGN.md): real miniAMR refines on simulated
// physics; this proxy refines on a deterministic object trajectory, so
// every rank derives the same mesh without extra communication. The
// communication, refinement and load-balancing *patterns* — which are what
// the paper measures — are preserved: per-face messages from separate
// tasks, pack/unpack through single send/receive buffers, block migration
// over two-sided MPI, and the offset/notification agreement phase.
package miniamr

import (
	"fmt"
	"sort"
)

// Params configures a miniAMR proxy run.
type Params struct {
	Grid        [3]int // level-0 blocks per dimension
	Cells       int    // cells per block edge (even)
	Vars        int    // computed variables (Fig. 12 sweeps 10..40)
	Steps       int    // total timesteps
	RefineEvery int    // steps between mesh rebuilds
	MaxLevel    int    // maximum refinement level
	Radius      float64
	Verify      bool // run the real arithmetic
}

// Leaf identifies one octree leaf by level and coordinates in level units.
type Leaf struct {
	L, X, Y, Z int
}

// extent returns the leaf's half-open coordinate box in level-0 units.
func (l Leaf) extent() (lo, hi [3]float64) {
	s := 1.0 / float64(int(1)<<l.L)
	lo = [3]float64{float64(l.X) * s, float64(l.Y) * s, float64(l.Z) * s}
	hi = [3]float64{lo[0] + s, lo[1] + s, lo[2] + s}
	return
}

// center returns the object position at the given epoch: a deterministic
// diagonal trajectory wrapping around the domain.
func (p Params) center(epoch int) [3]float64 {
	g := p.Grid
	t := float64(epoch) * 0.7
	return [3]float64{
		mod(0.5+t*1.0, float64(g[0])),
		mod(1.0+t*0.6, float64(g[1])),
		mod(1.5+t*0.8, float64(g[2])),
	}
}

func mod(x, m float64) float64 {
	for x >= m {
		x -= m
	}
	for x < 0 {
		x += m
	}
	return x
}

// desiredLevel returns the target refinement level of a box (in level-0
// units) at the given epoch: MaxLevel near the object, decaying with
// distance.
func (p Params) desiredLevel(lo, hi [3]float64, epoch int) int {
	c := p.center(epoch)
	d2 := 0.0
	for i := 0; i < 3; i++ {
		v := c[i]
		if v < lo[i] {
			d2 += (lo[i] - v) * (lo[i] - v)
		} else if v > hi[i] {
			d2 += (v - hi[i]) * (v - hi[i])
		}
	}
	r := p.Radius
	for lvl := p.MaxLevel; lvl > 0; lvl-- {
		reach := r * float64(p.MaxLevel-lvl+1)
		if d2 <= reach*reach {
			return lvl
		}
	}
	return 0
}

// Leaves computes the mesh of one epoch: top-down refinement by the
// desired level plus a 2:1 smoothing pass. Every rank computes the same
// set. The result is sorted canonically.
func (p Params) Leaves(epoch int) []Leaf {
	var leaves []Leaf
	var recur func(l Leaf)
	recur = func(l Leaf) {
		lo, hi := l.extent()
		if l.L < p.MaxLevel && p.desiredLevel(lo, hi, epoch) > l.L {
			for o := 0; o < 8; o++ {
				recur(Leaf{l.L + 1, l.X*2 + o&1, l.Y*2 + (o>>1)&1, l.Z*2 + (o>>2)&1})
			}
			return
		}
		leaves = append(leaves, l)
	}
	for x := 0; x < p.Grid[0]; x++ {
		for y := 0; y < p.Grid[1]; y++ {
			for z := 0; z < p.Grid[2]; z++ {
				recur(Leaf{0, x, y, z})
			}
		}
	}
	leaves = p.smooth(leaves)
	sortLeaves(leaves)
	return leaves
}

// smooth enforces the 2:1 balance: a leaf with a face neighbour more than
// one level finer is split; repeat to fixpoint.
func (p Params) smooth(leaves []Leaf) []Leaf {
	maxLevel := p.MaxLevel
	for {
		set := make(map[Leaf]bool, len(leaves))
		for _, l := range leaves {
			set[l] = true
		}
		// covered reports whether a region at the given leaf coords is
		// represented at a strictly finer level.
		finerAt := func(l Leaf) int {
			// Find the finest leaf inside l's region by probing one
			// descendant chain; since the tree is complete, any leaf in
			// the region bounds the level from below.
			max := l.L
			var probe func(c Leaf)
			probe = func(c Leaf) {
				if set[c] {
					if c.L > max {
						max = c.L
					}
					return
				}
				if c.L >= maxLevel {
					return
				}
				for o := 0; o < 8; o++ {
					probe(Leaf{c.L + 1, c.X*2 + o&1, c.Y*2 + (o>>1)&1, c.Z*2 + (o>>2)&1})
				}
			}
			probe(l)
			return max
		}
		var out []Leaf
		split := false
		for _, l := range leaves {
			mustSplit := false
			for f := 0; f < 6 && !mustSplit; f++ {
				n, ok := p.neighbourRegion(l, f)
				if !ok {
					continue
				}
				if finerAt(n)-l.L > 1 {
					mustSplit = true
				}
			}
			if mustSplit && l.L < maxLevel {
				split = true
				for o := 0; o < 8; o++ {
					out = append(out, Leaf{l.L + 1, l.X*2 + o&1, l.Y*2 + (o>>1)&1, l.Z*2 + (o>>2)&1})
				}
			} else {
				out = append(out, l)
			}
		}
		leaves = out
		if !split {
			return leaves
		}
	}
}

// faceDelta maps face index 0..5 to the axis offset (-x,+x,-y,+y,-z,+z).
var faceDelta = [6][3]int{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}}

// opposite returns the opposing face index.
func opposite(f int) int { return f ^ 1 }

// neighbourRegion returns the same-level coordinates adjacent to l across
// face f, and whether they are inside the domain.
func (p Params) neighbourRegion(l Leaf, f int) (Leaf, bool) {
	d := faceDelta[f]
	n := Leaf{l.L, l.X + d[0], l.Y + d[1], l.Z + d[2]}
	lim := [3]int{p.Grid[0] << l.L, p.Grid[1] << l.L, p.Grid[2] << l.L}
	if n.X < 0 || n.Y < 0 || n.Z < 0 || n.X >= lim[0] || n.Y >= lim[1] || n.Z >= lim[2] {
		return Leaf{}, false
	}
	return n, true
}

func sortLeaves(ls []Leaf) {
	sort.Slice(ls, func(i, j int) bool {
		a, b := ls[i], ls[j]
		if a.L != b.L {
			return a.L < b.L
		}
		if a.X != b.X {
			return a.X < b.X
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.Z < b.Z
	})
}

// Msg describes one halo-exchange message: the sender's leaf, the
// receiver's leaf and face (the face of dst being filled), and the element
// count. Sender and receiver derive identical message lists from the mesh.
type Msg struct {
	Src, Dst Leaf
	Face     int // face of Dst being filled
	Elems    int // per variable
}

// Epoch is the precomputed geometry of one mesh period.
type Epoch struct {
	Leaves []Leaf
	Owner  map[Leaf]int // partition: leaf -> rank
	Local  map[Leaf]int // leaf -> dense index in Leaves
	// ByRank[r] are the indices of leaves owned by rank r.
	ByRank [][]int
	// Inbound[r] lists messages whose Dst is owned by r, canonically
	// sorted; Outbound[r] those whose Src is owned by r.
	Inbound, Outbound [][]Msg
	// InIdx and OutIdx give each message's index within its receiver's
	// Inbound list and its sender's Outbound list.
	InIdx, OutIdx map[Msg]int
}

// buildEpoch computes leaves, partition and the message lists of an epoch.
func (p Params) buildEpoch(epoch, ranks int) *Epoch {
	e := &Epoch{Leaves: p.Leaves(epoch)}
	e.Owner = make(map[Leaf]int, len(e.Leaves))
	e.Local = make(map[Leaf]int, len(e.Leaves))
	e.ByRank = make([][]int, ranks)
	// Space-filling-curve-ish partition: contiguous chunks of the sorted
	// leaf order, sized as evenly as possible.
	n := len(e.Leaves)
	for i, l := range e.Leaves {
		r := i * ranks / n
		e.Owner[l] = r
		e.Local[l] = i
		e.ByRank[r] = append(e.ByRank[r], i)
	}
	e.Inbound = make([][]Msg, ranks)
	e.Outbound = make([][]Msg, ranks)
	set := make(map[Leaf]bool, n)
	for _, l := range e.Leaves {
		set[l] = true
	}
	half := p.Cells / 2
	for _, dst := range e.Leaves {
		for f := 0; f < 6; f++ {
			for _, src := range p.faceNeighbours(dst, f, set) {
				elems := p.Cells * p.Cells
				if src.L > dst.L {
					elems = half * half // a finer neighbour covers a quadrant
				}
				m := Msg{Src: src, Dst: dst, Face: f, Elems: elems}
				e.Inbound[e.Owner[dst]] = append(e.Inbound[e.Owner[dst]], m)
				e.Outbound[e.Owner[src]] = append(e.Outbound[e.Owner[src]], m)
			}
		}
	}
	e.InIdx = make(map[Msg]int)
	e.OutIdx = make(map[Msg]int)
	for r := 0; r < ranks; r++ {
		sortMsgs(e.Inbound[r])
		sortMsgs(e.Outbound[r])
		for i, m := range e.Inbound[r] {
			e.InIdx[m] = i
		}
		for i, m := range e.Outbound[r] {
			e.OutIdx[m] = i
		}
	}
	return e
}

// faceNeighbours returns the leaves adjacent to dst across face f: one at
// the same level, one coarser, or four finer (2:1 balance).
func (p Params) faceNeighbours(dst Leaf, f int, set map[Leaf]bool) []Leaf {
	n, ok := p.neighbourRegion(dst, f)
	if !ok {
		return nil
	}
	if set[n] {
		return []Leaf{n}
	}
	// Coarser neighbour: the parent region.
	parent := Leaf{n.L - 1, n.X / 2, n.Y / 2, n.Z / 2}
	if n.L > 0 && set[parent] {
		return []Leaf{parent}
	}
	// Finer neighbours: the four children of n touching the shared face.
	if n.L >= p.MaxLevel {
		return nil
	}
	back := opposite(f)
	var out []Leaf
	for o := 0; o < 8; o++ {
		c := Leaf{n.L + 1, n.X*2 + o&1, n.Y*2 + (o>>1)&1, n.Z*2 + (o>>2)&1}
		if childOnFace(o, back) && set[c] {
			out = append(out, c)
		}
	}
	sortLeaves(out)
	return out
}

// childOnFace reports whether child octant o touches face f of its parent.
func childOnFace(o, f int) bool {
	axis, side := f/2, f%2
	bit := (o >> axis) & 1
	return bit == side
}

func sortMsgs(ms []Msg) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.Dst != b.Dst {
			return leafLess(a.Dst, b.Dst)
		}
		if a.Face != b.Face {
			return a.Face < b.Face
		}
		return leafLess(a.Src, b.Src)
	})
}

func leafLess(a, b Leaf) bool {
	if a.L != b.L {
		return a.L < b.L
	}
	if a.X != b.X {
		return a.X < b.X
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.Z < b.Z
}

// Epochs precomputes the geometry of every mesh period of a run.
func (p Params) Epochs(ranks int) []*Epoch {
	if p.RefineEvery <= 0 {
		panic("miniamr: RefineEvery must be positive")
	}
	n := (p.Steps + p.RefineEvery - 1) / p.RefineEvery
	out := make([]*Epoch, n)
	for i := range out {
		out[i] = p.buildEpoch(i, ranks)
	}
	return out
}

// Validate sanity-checks the parameters.
func (p Params) Validate() error {
	if p.Cells%2 != 0 || p.Cells < 2 {
		return fmt.Errorf("miniamr: Cells must be even and >= 2, got %d", p.Cells)
	}
	if p.Vars <= 0 || p.MaxLevel < 0 {
		return fmt.Errorf("miniamr: invalid Vars/MaxLevel")
	}
	return nil
}
