package miniamr

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
)

var verifyParams = Params{
	Grid: [3]int{2, 2, 2}, Cells: 4, Vars: 3,
	Steps: 6, RefineEvery: 2, MaxLevel: 1, Radius: 0.6,
	Verify: true,
}

func TestLeavesCoverDomainExactly(t *testing.T) {
	p := verifyParams
	for epoch := 0; epoch < 4; epoch++ {
		leaves := p.Leaves(epoch)
		vol := 0.0
		seen := map[Leaf]bool{}
		for _, l := range leaves {
			if seen[l] {
				t.Fatalf("duplicate leaf %v", l)
			}
			seen[l] = true
			vol += 1.0 / float64(int(1)<<(3*l.L))
		}
		want := float64(p.Grid[0] * p.Grid[1] * p.Grid[2])
		if math.Abs(vol-want) > 1e-9 {
			t.Fatalf("epoch %d: leaf volume %v, want %v", epoch, vol, want)
		}
	}
}

func TestMeshRefinesNearObject(t *testing.T) {
	p := verifyParams
	base := p.Grid[0] * p.Grid[1] * p.Grid[2]
	for epoch := 0; epoch < 3; epoch++ {
		if n := len(p.Leaves(epoch)); n <= base {
			t.Fatalf("epoch %d: %d leaves, expected refinement beyond %d", epoch, n, base)
		}
	}
}

func TestTwoToOneBalance(t *testing.T) {
	p := verifyParams
	p.MaxLevel = 2
	for epoch := 0; epoch < 4; epoch++ {
		leaves := p.Leaves(epoch)
		set := map[Leaf]bool{}
		for _, l := range leaves {
			set[l] = true
		}
		for _, l := range leaves {
			for f := 0; f < 6; f++ {
				for _, nb := range p.faceNeighbours(l, f, set) {
					if d := nb.L - l.L; d < -1 || d > 1 {
						t.Fatalf("epoch %d: leaf %v has neighbour %v (Δlevel %d)", epoch, l, nb, d)
					}
				}
			}
		}
	}
}

func TestFaceCoverage(t *testing.T) {
	// Every non-boundary face must be covered by messages summing to a
	// full face worth of halo cells.
	p := verifyParams
	p.MaxLevel = 2
	for epoch := 0; epoch < 3; epoch++ {
		e := p.buildEpoch(epoch, 1)
		set := map[Leaf]bool{}
		for _, l := range e.Leaves {
			set[l] = true
		}
		cover := map[[2]any]int{}
		for _, m := range e.Inbound[0] {
			key := [2]any{m.Dst, m.Face}
			cover[key] += m.Elems // Elems is always in dst-face cells
		}
		full := p.Cells * p.Cells
		for _, l := range e.Leaves {
			for f := 0; f < 6; f++ {
				if len(p.faceNeighbours(l, f, set)) == 0 {
					continue
				}
				got := cover[[2]any{l, f}]
				if got != full {
					t.Fatalf("epoch %d: face (%v,%d) covered by %d cells, want %d",
						epoch, l, f, got, full)
				}
			}
		}
	}
}

func TestInboundOutboundConsistent(t *testing.T) {
	p := verifyParams
	for _, ranks := range []int{1, 3, 5} {
		e := p.buildEpoch(1, ranks)
		in, out := 0, 0
		for r := 0; r < ranks; r++ {
			in += len(e.Inbound[r])
			out += len(e.Outbound[r])
		}
		if in != out {
			t.Fatalf("ranks=%d: %d inbound vs %d outbound", ranks, in, out)
		}
	}
}

func TestSerialDeterministicAndBounded(t *testing.T) {
	a := Serial(verifyParams)
	b := Serial(verifyParams)
	if len(a) != len(b) {
		t.Fatal("nondeterministic leaf count")
	}
	for l, va := range a {
		vb, ok := b[l]
		if !ok {
			t.Fatalf("leaf %v missing in second run", l)
		}
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("nondeterministic value at %v[%d]", l, i)
			}
			if math.IsNaN(va[i]) || math.IsInf(va[i], 0) {
				t.Fatalf("non-finite value at %v[%d]", l, i)
			}
		}
	}
}

// gatherRun executes one distributed variant and merges all ranks' blocks.
func gatherRun(t *testing.T, p Params, ranks, cores int, variant string) (map[Leaf][]float64, cluster.Result, time.Duration) {
	t.Helper()
	cfg := cluster.Config{
		Nodes: ranks, RanksPerNode: 1, CoresPerRank: cores,
		Profile: fabric.ProfileIdeal(),
	}
	switch variant {
	case "tampi":
		cfg.WithTasking, cfg.WithTAMPI = true, true
	case "tagaspi":
		cfg.WithTasking, cfg.WithTAMPI, cfg.WithTAGASPI = true, true, true
	}
	cfg.TAMPIPoll = 5 * time.Microsecond
	cfg.TAGASPIPoll = 5 * time.Microsecond
	epochs := p.Epochs(ranks)
	merged := make(map[Leaf][]float64)
	var refine time.Duration
	var mu sync.Mutex
	res := cluster.Run(cfg, func(env *cluster.Env) {
		var out Output
		switch variant {
		case "mpi":
			out = RunMPIOnly(env, p, epochs)
		case "tampi":
			out = RunTAMPI(env, p, epochs)
		case "tagaspi":
			out = RunTAGASPI(env, p, epochs)
		}
		mu.Lock()
		for l, v := range out.Blocks {
			merged[l] = v
		}
		refine += out.RefineTime
		mu.Unlock()
	})
	return merged, res, refine
}

func checkAgainstSerial(t *testing.T, got map[Leaf][]float64, p Params) {
	t.Helper()
	want := Serial(p)
	if len(got) != len(want) {
		t.Fatalf("got %d leaves, want %d", len(got), len(want))
	}
	for l, wv := range want {
		gv, ok := got[l]
		if !ok {
			t.Fatalf("missing leaf %v", l)
		}
		for i := range wv {
			if gv[i] != wv[i] {
				t.Fatalf("leaf %v cell %d: got %v, want %v", l, i, gv[i], wv[i])
			}
		}
	}
}

func TestMPIOnlyMatchesSerial(t *testing.T) {
	for _, ranks := range []int{1, 2, 5} {
		got, _, _ := gatherRun(t, verifyParams, ranks, 1, "mpi")
		checkAgainstSerial(t, got, verifyParams)
	}
}

func TestTAMPIMatchesSerial(t *testing.T) {
	for _, ranks := range []int{1, 3} {
		got, _, _ := gatherRun(t, verifyParams, ranks, 4, "tampi")
		checkAgainstSerial(t, got, verifyParams)
	}
}

func TestTAGASPIMatchesSerial(t *testing.T) {
	for _, ranks := range []int{1, 3, 4} {
		got, _, _ := gatherRun(t, verifyParams, ranks, 4, "tagaspi")
		checkAgainstSerial(t, got, verifyParams)
	}
}

func TestDeepRefinementMatchesSerial(t *testing.T) {
	p := verifyParams
	p.MaxLevel = 2
	p.Cells = 4
	p.Steps = 4
	got, _, _ := gatherRun(t, p, 3, 4, "tagaspi")
	checkAgainstSerial(t, got, p)
}

func TestRefineTimeMeasured(t *testing.T) {
	p := verifyParams
	p.Verify = false
	cfg := cluster.Config{
		Nodes: 2, RanksPerNode: 1, CoresPerRank: 4,
		Profile:     fabric.ProfileOmniPath(),
		WithTasking: true, WithTAMPI: true, WithTAGASPI: true,
	}
	epochs := p.Epochs(2)
	var refine time.Duration
	var mu sync.Mutex
	res := cluster.Run(cfg, func(env *cluster.Env) {
		out := RunTAGASPI(env, p, epochs)
		mu.Lock()
		refine += out.RefineTime
		mu.Unlock()
	})
	if refine <= 0 {
		t.Fatal("refinement time not measured")
	}
	if refine >= 2*res.Elapsed {
		t.Fatalf("refine time %v implausibly large vs elapsed %v", refine, res.Elapsed)
	}
}

func TestWorkAccounting(t *testing.T) {
	p := verifyParams
	epochs := p.Epochs(1)
	w := Work(p, epochs)
	cells := float64(p.Cells * p.Cells * p.Cells * p.Vars)
	min := float64(p.Steps) * float64(p.Grid[0]*p.Grid[1]*p.Grid[2]) * cells
	if w < min {
		t.Fatalf("Work = %v below unrefined minimum %v", w, min)
	}
}

// Property: for random trajectories (varying radius/epoch), the mesh stays
// a valid 2:1-balanced cover.
func TestQuickMeshValidity(t *testing.T) {
	f := func(seed uint8) bool {
		p := verifyParams
		p.MaxLevel = 2
		p.Radius = 0.3 + float64(seed%16)*0.1
		epoch := int(seed) % 8
		leaves := p.Leaves(epoch)
		vol := 0.0
		set := map[Leaf]bool{}
		for _, l := range leaves {
			if set[l] {
				return false
			}
			set[l] = true
			vol += 1.0 / float64(int(1)<<(3*l.L))
		}
		if math.Abs(vol-float64(p.Grid[0]*p.Grid[1]*p.Grid[2])) > 1e-9 {
			return false
		}
		for _, l := range leaves {
			for f := 0; f < 6; f++ {
				for _, nb := range p.faceNeighbours(l, f, set) {
					if d := nb.L - l.L; d < -1 || d > 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	p := verifyParams
	p.Cells = 3
	if err := p.Validate(); err == nil {
		t.Fatal("odd cells must fail")
	}
	p = verifyParams
	p.Vars = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero vars must fail")
	}
	if err := verifyParams.Validate(); err != nil {
		t.Fatal(err)
	}
}
