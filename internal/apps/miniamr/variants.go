package miniamr

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/gaspisim"
	"repro/internal/memory"
	"repro/internal/mpisim"
	"repro/internal/tasking"
)

// Segment ids of the single receive and send buffers (§VI-B: "they have
// only one memory buffer for sending and another for receiving").
const (
	segRecv = 0
	segSend = 1
)

// must fails fast on simulator API errors: inside task bodies there is no
// caller to propagate to, and in this deterministic benchmark any error is
// a programming bug (bad offset, unknown segment, invalid queue).
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// mustSlice returns the bytes [off, off+n) of seg, failing fast on bounds
// errors.
func mustSlice(seg *memory.Segment, off, n int) []byte {
	b, err := seg.Slice(off, n)
	must(err)
	return b
}

// migration tags live above the halo-exchange tag space.
const (
	tagMigrate = 1 << 20
	tagAgree   = 1 << 21
)

// Output is one rank's result.
type Output struct {
	RefineTime time.Duration      // time in refinement/migration/agreement
	Blocks     map[Leaf][]float64 // final owned interiors (verify mode)
}

// Work returns the figure-of-merit update count of a run: cells × variables
// summed over every step's mesh.
func Work(p Params, epochs []*Epoch) float64 {
	cells := float64(p.Cells * p.Cells * p.Cells * p.Vars)
	total := 0.0
	for s := 0; s < p.Steps; s++ {
		e := epochs[s/p.RefineEvery]
		total += float64(len(e.Leaves)) * cells
	}
	return total
}

// app is one rank's run state.
type app struct {
	env    *cluster.Env
	p      Params
	me     int
	ranks  int
	epochs []*Epoch
	blocks map[Leaf]*block
	refine time.Duration

	recvSeg, sendSeg *memory.Segment
}

// plan is the per-epoch communication plan of one rank.
type plan struct {
	e         *Epoch
	owned     []Leaf
	inLocal   []Msg
	inRemote  []Msg
	inOff     []int // byte offsets in the receive buffer
	outRemote []Msg
	outOff    []int // byte offsets in the send buffer
	noNbr     map[Leaf][]int
	peersIn   map[int][]int // sender rank -> indices into inRemote
	peersOut  map[int][]int // receiver rank -> indices into outRemote

	// TAGASPI agreement results (§VI-B): for each outRemote message, the
	// receiver-assigned buffer offset and notification id; for each
	// inRemote message, the sender-assigned ack notification id.
	remOff, remNotif []int
	ackID            []int
}

func newApp(env *cluster.Env, p Params, epochs []*Epoch) *app {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	a := &app{env: env, p: p, me: int(env.Rank), ranks: env.Ranks(), epochs: epochs}
	maxIn, maxOut := memory.F64Bytes, memory.F64Bytes // non-zero minimum
	for _, e := range epochs {
		in, out := 0, 0
		for _, m := range e.Inbound[a.me] {
			if e.Owner[m.Src] != a.me {
				in += m.Elems * p.Vars * memory.F64Bytes
			}
		}
		for _, m := range e.Outbound[a.me] {
			if e.Owner[m.Dst] != a.me {
				out += m.Elems * p.Vars * memory.F64Bytes
			}
		}
		if in > maxIn {
			maxIn = in
		}
		if out > maxOut {
			maxOut = out
		}
	}
	var err error
	if a.recvSeg, err = env.GASPI.SegmentCreate(segRecv, maxIn); err != nil {
		panic(err)
	}
	if a.sendSeg, err = env.GASPI.SegmentCreate(segSend, maxOut); err != nil {
		panic(err)
	}
	return a
}

func (a *app) plan(e *Epoch) *plan {
	pl := &plan{e: e, noNbr: a.p.boundaryFaces(e),
		peersIn: make(map[int][]int), peersOut: make(map[int][]int)}
	for _, i := range e.ByRank[a.me] {
		pl.owned = append(pl.owned, e.Leaves[i])
	}
	off := 0
	for _, m := range e.Inbound[a.me] {
		src := e.Owner[m.Src]
		if src == a.me {
			pl.inLocal = append(pl.inLocal, m)
			continue
		}
		k := len(pl.inRemote)
		pl.inRemote = append(pl.inRemote, m)
		pl.inOff = append(pl.inOff, off)
		pl.peersIn[src] = append(pl.peersIn[src], k)
		off += m.Elems * a.p.Vars * memory.F64Bytes
	}
	off = 0
	for _, m := range e.Outbound[a.me] {
		dst := e.Owner[m.Dst]
		if dst == a.me {
			continue // handled through inLocal
		}
		k := len(pl.outRemote)
		pl.outRemote = append(pl.outRemote, m)
		pl.outOff = append(pl.outOff, off)
		pl.peersOut[dst] = append(pl.peersOut[dst], k)
		off += m.Elems * a.p.Vars * memory.F64Bytes
	}
	pl.remOff = make([]int, len(pl.outRemote))
	pl.remNotif = make([]int, len(pl.outRemote))
	pl.ackID = make([]int, len(pl.inRemote))
	return pl
}

// initialBlocks creates and initialises the epoch-0 blocks of this rank.
func (a *app) initialBlocks(pl *plan) {
	a.blocks = make(map[Leaf]*block, len(pl.owned))
	for _, l := range pl.owned {
		b := a.p.newBlock(l)
		a.p.initBlock(b)
		a.blocks[l] = b
	}
}

// seqRefineCost is the modelled partly-sequential refinement work per
// epoch (the paper's "refinement has several sequential sections").
func (a *app) seqRefineCost(e *Epoch) time.Duration {
	return a.env.CostOf(4 * float64(len(e.Leaves)) * float64(a.p.Cells*a.p.Cells*a.p.Cells))
}

// migrate redistributes block data from the previous epoch's owners to the
// new ones and remaps levels. Hybrid variants move data with TAMPI tasks
// (the §VI-B interoperability: the TAGASPI variant uses TAMPI here);
// MPI-only uses plain non-blocking MPI.
func (a *app) migrate(oldE, newE *Epoch, pl *plan) {
	p := a.p
	trs := transition(oldE, newE)
	elems := p.InteriorElems()
	nbytes := elems * memory.F64Bytes

	// Per-(from,to) tag sequence, identical on both sides.
	type pair struct{ f, t int }
	seq := make(map[pair]int)
	tagOf := make(map[Transfer]int, len(trs))
	for _, tr := range trs {
		k := pair{tr.From, tr.To}
		tagOf[tr] = tagMigrate + seq[k]
		seq[k]++
	}

	inbound := make(map[Leaf][]byte)
	var reqs []*mpisim.Request
	mpi := a.env.MPI
	for _, tr := range trs {
		tr := tr
		switch {
		case tr.To == a.me:
			buf := make([]byte, nbytes)
			inbound[tr.Src] = buf
			if a.env.RT != nil {
				a.env.RT.Submit(func(tk *tasking.Task) {
					a.env.TAMPI.Iwait(tk, mpi.Irecv(buf, mpisim.Rank(tr.From), tagOf[tr]))
				}, tasking.WithLabel("lb-recv"))
			} else {
				reqs = append(reqs, mpi.Irecv(buf, mpisim.Rank(tr.From), tagOf[tr]))
			}
		case tr.From == a.me:
			buf := make([]byte, nbytes)
			vals := make([]float64, elems)
			p.interior(a.blocks[tr.Src], vals)
			memory.F64Of(buf).CopyIn(0, vals)
			if a.env.RT != nil {
				a.env.RT.Submit(func(tk *tasking.Task) {
					a.env.TAMPI.Iwait(tk, mpi.Isend(buf, mpisim.Rank(tr.To), tagOf[tr]))
				}, tasking.WithLabel("lb-send"))
			} else {
				reqs = append(reqs, mpi.Isend(buf, mpisim.Rank(tr.To), tagOf[tr]))
			}
		}
	}
	if a.env.RT != nil {
		a.env.RT.TaskWait()
	} else {
		mpi.Waitall(reqs)
	}

	// Remap into the new mesh from local and received sources.
	oldSet := make(map[Leaf]bool, len(oldE.Leaves))
	for _, l := range oldE.Leaves {
		oldSet[l] = true
	}
	next := make(map[Leaf]*block, len(pl.owned))
	data := make([]float64, elems)
	for _, nl := range pl.owned {
		acc := make([]float64, elems)
		cnt := make([]int32, elems)
		for _, ol := range sourcesOf(nl, oldSet) {
			if b, ok := a.blocks[ol]; ok {
				p.interior(b, data)
				p.remapInto(nl, ol, data, acc, cnt)
			} else if buf, ok := inbound[ol]; ok {
				p.remapInto(nl, ol, memory.F64Of(buf).CopyOut(0, elems), acc, cnt)
			} else {
				panic(fmt.Sprintf("miniamr: rank %d missing source %v for %v", a.me, ol, nl))
			}
		}
		b := p.newBlock(nl)
		vals := make([]float64, elems)
		finishRemap(acc, cnt, vals)
		p.setInterior(b, vals)
		next[nl] = b
	}
	a.blocks = next
	// Modelled remap cost: proportional to the rebuilt local cells.
	a.env.Clk.Sleep(a.env.CostOf(float64(len(pl.owned)) * float64(elems)))
}

// agree runs the sequential agreement phase of the TAGASPI variant
// (§VI-B): each pair of neighbouring ranks exchanges, per RMA message, the
// receiver-assigned buffer offset and notification id, and the
// sender-assigned ack notification id.
func (a *app) agree(pl *plan) {
	peerSet := make(map[int]bool)
	for r := range pl.peersIn {
		peerSet[r] = true
	}
	for r := range pl.peersOut {
		peerSet[r] = true
	}
	peers := make([]int, 0, len(peerSet))
	for r := range peerSet {
		peers = append(peers, r)
	}
	sort.Ints(peers)
	mpi := a.env.MPI
	// Post every exchange non-blocking, then wait: the agreement phase is
	// sequential (not taskified) but its round-trips overlap.
	recvBufs := make(map[int][]byte, len(peers))
	var reqs []*mpisim.Request
	for _, pr := range peers {
		// Payload to pr: (offset, data notif id) for every message pr→me,
		// then my ack id for every message me→pr.
		ins, outs := pl.peersIn[pr], pl.peersOut[pr]
		sendVals := make([]int64, 0, 2*len(ins)+len(outs))
		for _, k := range ins {
			sendVals = append(sendVals, int64(pl.inOff[k]), int64(k))
		}
		for _, k := range outs {
			sendVals = append(sendVals, int64(k))
		}
		sendBuf := make([]byte, len(sendVals)*8)
		sv := memory.I64Of(sendBuf)
		for i, v := range sendVals {
			sv.Set(i, v)
		}
		recvBuf := make([]byte, (2*len(outs)+len(ins))*8)
		recvBufs[pr] = recvBuf
		reqs = append(reqs,
			mpi.Isend(sendBuf, mpisim.Rank(pr), tagAgree),
			mpi.Irecv(recvBuf, mpisim.Rank(pr), tagAgree))
	}
	mpi.Waitall(reqs)
	for _, pr := range peers {
		ins, outs := pl.peersIn[pr], pl.peersOut[pr]
		rv := memory.I64Of(recvBufs[pr])
		i := 0
		for _, k := range outs {
			pl.remOff[k] = int(rv.At(i))
			pl.remNotif[k] = int(rv.At(i + 1))
			i += 2
		}
		for _, k := range ins {
			pl.ackID[k] = int(rv.At(i))
			i++
		}
	}
}

// runSteps executes the steps of one epoch with the given per-step driver.
func (a *app) stepsOf(ei int) (s0, s1 int) {
	s0 = ei * a.p.RefineEvery
	s1 = s0 + a.p.RefineEvery
	if s1 > a.p.Steps {
		s1 = a.p.Steps
	}
	return
}

// output gathers the final state.
func (a *app) output() Output {
	out := Output{RefineTime: a.refine}
	if a.p.Verify {
		out.Blocks = make(map[Leaf][]float64, len(a.blocks))
		for l, b := range a.blocks {
			data := make([]float64, a.p.InteriorElems())
			a.p.interior(b, data)
			out.Blocks[l] = data
		}
	}
	return out
}

// RunMPIOnly executes the MPI-only variant: one core per rank, sequential
// phases, non-blocking point-to-point halo exchange.
func RunMPIOnly(env *cluster.Env, p Params, epochs []*Epoch) Output {
	a := newApp(env, p, epochs)
	mpi := env.MPI
	tmp := make([]float64, 0)
	for ei, e := range epochs {
		pl := a.plan(e)
		t0 := env.Clk.Now()
		if ei == 0 {
			a.initialBlocks(pl)
		} else {
			a.migrate(epochs[ei-1], e, pl)
			env.Clk.Sleep(a.seqRefineCost(e))
		}
		a.refine += env.Clk.Now() - t0
		s0, s1 := a.stepsOf(ei)
		recvReqs := make([]*mpisim.Request, len(pl.inRemote))
		for s := s0; s < s1; s++ {
			for k, m := range pl.inRemote {
				buf := mustSlice(a.recvSeg, pl.inOff[k], m.Elems*p.Vars*memory.F64Bytes)
				recvReqs[k] = mpi.Irecv(buf, mpisim.Rank(e.Owner[m.Src]), e.InIdx[m])
			}
			var sendReqs []*mpisim.Request
			for k, m := range pl.outRemote {
				buf := mustSlice(a.sendSeg, pl.outOff[k], m.Elems*p.Vars*memory.F64Bytes)
				vals := grow(&tmp, m.Elems*p.Vars)
				a.p.packMsg(a.blocks[m.Src], m, vals)
				memory.F64Of(buf).CopyIn(0, vals)
				env.Clk.Sleep(env.CostOf(float64(m.Elems*p.Vars) / 2))
				sendReqs = append(sendReqs, mpi.Isend(buf, mpisim.Rank(e.Owner[m.Dst]), e.InIdx[m]))
			}
			for _, m := range pl.inLocal {
				vals := grow(&tmp, m.Elems*p.Vars)
				a.p.packMsg(a.blocks[m.Src], m, vals)
				a.p.unpackMsg(a.blocks[m.Dst], m, vals)
				env.Clk.Sleep(env.CostOf(float64(m.Elems * p.Vars)))
			}
			for k, m := range pl.inRemote {
				mpi.Wait(recvReqs[k])
				buf := mustSlice(a.recvSeg, pl.inOff[k], m.Elems*p.Vars*memory.F64Bytes)
				vals := memory.F64Of(buf).CopyOut(0, m.Elems*p.Vars)
				a.p.unpackMsg(a.blocks[m.Dst], m, vals)
				env.Clk.Sleep(env.CostOf(float64(m.Elems*p.Vars) / 2))
			}
			for _, l := range pl.owned {
				for _, f := range pl.noNbr[l] {
					a.p.fillBoundary(a.blocks[l], f)
				}
				env.Clk.Sleep(env.CostOf(float64(p.InteriorElems())))
				a.p.step(a.blocks[l])
			}
			mpi.Waitall(sendReqs)
		}
	}
	return a.output()
}

// grow resizes a scratch slice.
func grow(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// depKeys are per-epoch dependency bases for the hybrid variants.
type depKeys struct{ block, face, rslot, sslot int }

// RunTAMPI executes the hybrid MPI+OmpSs-2 variant.
func RunTAMPI(env *cluster.Env, p Params, epochs []*Epoch) Output {
	return runHybrid(env, p, epochs, false)
}

// RunTAGASPI executes the hybrid GASPI+OmpSs-2 variant, with TAMPI inside
// the load-balancing stage (library interoperability, §VI-B).
func RunTAGASPI(env *cluster.Env, p Params, epochs []*Epoch) Output {
	return runHybrid(env, p, epochs, true)
}

func runHybrid(env *cluster.Env, p Params, epochs []*Epoch, oneSided bool) Output {
	a := newApp(env, p, epochs)
	rt := env.RT
	for ei, e := range epochs {
		pl := a.plan(e)
		if ei > 0 {
			rt.TaskWait() // the refinement stage is not fully taskified
		}
		t0 := env.Clk.Now()
		if ei == 0 {
			a.initialBlocks(pl)
		} else {
			a.migrate(epochs[ei-1], e, pl)
			env.Clk.Sleep(a.seqRefineCost(e))
		}
		if oneSided {
			a.agree(pl)
			a.seedAcks(pl)
		}
		a.refine += env.Clk.Now() - t0
		s0, s1 := a.stepsOf(ei)
		keys := &depKeys{} // shared across the epoch's steps: the data flow
		for s := s0; s < s1; s++ {
			lastOfEpoch := s == s1-1
			if oneSided {
				a.tagaspiStep(pl, keys, s, lastOfEpoch)
			} else {
				a.tampiStep(pl, keys)
			}
			rt.Throttle(4096)
		}
	}
	rt.TaskWait()
	return a.output()
}

// seedAcks fires one ack per inbound message so senders may issue the
// epoch's first writes (§IV-B: the receiver permits any sender before this
// latter writes to its receiving buffer).
func (a *app) seedAcks(pl *plan) {
	if len(pl.inRemote) == 0 {
		return
	}
	tg := a.env.TAGASPI
	e := pl.e
	Q := a.env.GASPI.Queues()
	msgs := append([]Msg(nil), pl.inRemote...)
	acks := append([]int(nil), pl.ackID...)
	a.env.RT.Submit(func(tk *tasking.Task) {
		for k, m := range msgs {
			must(tg.Notify(tk, gaspisim.Rank(e.Owner[m.Src]), segSend,
				gaspisim.NotificationID(acks[k]), 1, k%Q))
		}
	}, tasking.WithLabel("seed acks"))
}

// tampiStep submits one step's tasks for the TAMPI variant.
func (a *app) tampiStep(pl *plan, keys *depKeys) {
	p, env, rt, e := a.p, a.env, a.env.RT, pl.e
	mpi, ta := env.MPI, env.TAMPI
	for k, m := range pl.outRemote {
		k, m := k, m
		src := a.blocks[m.Src]
		bidx := e.Local[m.Src]
		rt.Submit(func(tk *tasking.Task) {
			nv := m.Elems * p.Vars
			vals := make([]float64, nv)
			tk.Compute(env.CostOf(float64(nv) / 2))
			p.packMsg(src, m, vals)
			buf := mustSlice(a.sendSeg, pl.outOff[k], nv*memory.F64Bytes)
			memory.F64Of(buf).CopyIn(0, vals)
			ta.Iwait(tk, mpi.Isend(buf, mpisim.Rank(e.Owner[m.Dst]), e.InIdx[m]))
		}, tasking.WithDeps(
			tasking.In(&keys.block, bidx, bidx+1),
			tasking.InOut(&keys.sslot, k, k+1)),
			tasking.WithLabel("pack+send"))
	}
	for k, m := range pl.inRemote {
		k, m := k, m
		nv := m.Elems * p.Vars
		rt.Submit(func(tk *tasking.Task) {
			buf := mustSlice(a.recvSeg, pl.inOff[k], nv*memory.F64Bytes)
			ta.Iwait(tk, mpi.Irecv(buf, mpisim.Rank(e.Owner[m.Src]), e.InIdx[m]))
		}, tasking.WithDeps(tasking.Out(&keys.rslot, k, k+1)),
			tasking.WithLabel("recv"))
		a.submitUnpack(pl, keys, k, m, false, false)
	}
	a.submitLocalAndCompute(pl, keys)
}

// tagaspiStep submits one step's tasks for the TAGASPI variant.
func (a *app) tagaspiStep(pl *plan, keys *depKeys, s int, lastOfEpoch bool) {
	p, env, rt, e := a.p, a.env, a.env.RT, pl.e
	tg := env.TAGASPI
	Q := env.GASPI.Queues()
	for k, m := range pl.outRemote {
		k, m := k, m
		src := a.blocks[m.Src]
		bidx := e.Local[m.Src]
		opts := []tasking.Option{
			tasking.WithDeps(
				tasking.In(&keys.block, bidx, bidx+1),
				tasking.InOut(&keys.sslot, k, k+1)),
			tasking.WithLabel("pack+write"),
		}
		// Wait for the consumer's ack before writing; on the epoch's first
		// step the seed pre-armed every slot, so the wait is immediate.
		opts = append(opts, tasking.WithOnReady(func(tk *tasking.Task) {
			tg.NotifyIwait(tk, segSend, gaspisim.NotificationID(k), nil)
		}))
		rt.Submit(func(tk *tasking.Task) {
			nv := m.Elems * p.Vars
			vals := make([]float64, nv)
			tk.Compute(env.CostOf(float64(nv) / 2))
			p.packMsg(src, m, vals)
			buf := mustSlice(a.sendSeg, pl.outOff[k], nv*memory.F64Bytes)
			memory.F64Of(buf).CopyIn(0, vals)
			must(tg.WriteNotify(tk, segSend, pl.outOff[k],
				gaspisim.Rank(e.Owner[m.Dst]), segRecv, pl.remOff[k],
				nv*memory.F64Bytes,
				gaspisim.NotificationID(pl.remNotif[k]), int64(s+1), k%Q))
		}, opts...)
	}
	for k, m := range pl.inRemote {
		k, m := k, m
		rt.Submit(func(tk *tasking.Task) {
			tg.NotifyIwait(tk, segRecv, gaspisim.NotificationID(k), nil)
		}, tasking.WithDeps(tasking.Out(&keys.rslot, k, k+1)),
			tasking.WithLabel("wait data"))
		a.submitUnpack(pl, keys, k, m, true, lastOfEpoch)
	}
	a.submitLocalAndCompute(pl, keys)
}

// submitUnpack creates the unpack task of inbound message k. For the
// one-sided variant it fires the ack notification right after unpacking,
// except on the epoch's last step (the ack would have no matching write
// and would leak into the next epoch).
func (a *app) submitUnpack(pl *plan, keys *depKeys, k int, m Msg, oneSided, lastOfEpoch bool) {
	p, env, rt, e := a.p, a.env, a.env.RT, pl.e
	dst := a.blocks[m.Dst]
	fidx := e.Local[m.Dst]*6 + m.Face
	Q := env.GASPI.Queues()
	rt.Submit(func(tk *tasking.Task) {
		nv := m.Elems * p.Vars
		tk.Compute(env.CostOf(float64(nv) / 2))
		buf := mustSlice(a.recvSeg, pl.inOff[k], nv*memory.F64Bytes)
		p.unpackMsg(dst, m, memory.F64Of(buf).CopyOut(0, nv))
		if oneSided && !lastOfEpoch {
			must(env.TAGASPI.Notify(tk, gaspisim.Rank(e.Owner[m.Src]), segSend,
				gaspisim.NotificationID(pl.ackID[k]), 1, k%Q))
		}
	}, tasking.WithDeps(
		tasking.In(&keys.rslot, k, k+1),
		tasking.Out(&keys.face, fidx, fidx+1)),
		tasking.WithLabel("unpack"))
}

// submitLocalAndCompute creates the intra-rank halo copies and the stencil
// tasks of one step.
func (a *app) submitLocalAndCompute(pl *plan, keys *depKeys) {
	p, env, rt, e := a.p, a.env, a.env.RT, pl.e
	for _, m := range pl.inLocal {
		m := m
		src, dst := a.blocks[m.Src], a.blocks[m.Dst]
		sidx, fidx := e.Local[m.Src], e.Local[m.Dst]*6+m.Face
		rt.Submit(func(tk *tasking.Task) {
			nv := m.Elems * p.Vars
			tk.Compute(env.CostOf(float64(nv)))
			vals := make([]float64, nv)
			p.packMsg(src, m, vals)
			p.unpackMsg(dst, m, vals)
		}, tasking.WithDeps(
			tasking.In(&keys.block, sidx, sidx+1),
			tasking.Out(&keys.face, fidx, fidx+1)),
			tasking.WithLabel("local halo"))
	}
	for _, l := range pl.owned {
		l := l
		b := a.blocks[l]
		bidx := e.Local[l]
		faces := pl.noNbr[l]
		deps := []tasking.Dep{
			tasking.InOut(&keys.block, bidx, bidx+1),
			tasking.In(&keys.face, bidx*6, bidx*6+6),
		}
		rt.Submit(func(tk *tasking.Task) {
			for _, f := range faces {
				p.fillBoundary(b, f)
			}
			tk.Compute(env.CostOf(float64(p.InteriorElems())))
			p.step(b)
		}, tasking.WithDeps(deps...), tasking.WithLabel("stencil"))
	}
}
