package miniamr

// Serial runs the reference single-process simulation: identical mesh
// sequence, kernels, resampling and remapping as the distributed variants,
// with halo exchange done by direct pack/unpack. It returns each final
// leaf's interior values.
func Serial(p Params) map[Leaf][]float64 {
	epochs := p.Epochs(1)
	var blocks map[Leaf]*block
	for s := 0; s < p.Steps; s++ {
		ei := s / p.RefineEvery
		e := epochs[ei]
		if s%p.RefineEvery == 0 {
			if s == 0 {
				blocks = make(map[Leaf]*block, len(e.Leaves))
				for _, l := range e.Leaves {
					b := p.newBlock(l)
					p.initBlock(b)
					blocks[l] = b
				}
			} else {
				blocks = p.remapAll(blocks, e)
			}
		}
		p.serialStep(e, blocks)
	}
	out := make(map[Leaf][]float64, len(blocks))
	for l, b := range blocks {
		data := make([]float64, p.InteriorElems())
		p.interior(b, data)
		out[l] = data
	}
	return out
}

// serialStep performs one halo exchange + stencil step on all blocks.
func (p Params) serialStep(e *Epoch, blocks map[Leaf]*block) {
	tmp := make([]float64, p.Cells*p.Cells*p.Vars)
	for _, m := range e.Inbound[0] {
		buf := tmp[:m.Elems*p.Vars]
		p.packMsg(blocks[m.Src], m, buf)
		p.unpackMsg(blocks[m.Dst], m, buf)
	}
	p.fillAllBoundaries(e, blocks)
	for _, b := range blocks {
		p.step(b)
	}
}

// fillAllBoundaries applies the zero-flux condition on neighbour-less faces.
func (p Params) fillAllBoundaries(e *Epoch, blocks map[Leaf]*block) {
	set := make(map[Leaf]bool, len(e.Leaves))
	for _, l := range e.Leaves {
		set[l] = true
	}
	for l, b := range blocks {
		for f := 0; f < 6; f++ {
			if len(p.faceNeighbours(l, f, set)) == 0 {
				p.fillBoundary(b, f)
			}
		}
	}
}

// boundaryFaces returns, for each leaf of the epoch, the faces with no
// neighbour (needing the zero-flux fill).
func (p Params) boundaryFaces(e *Epoch) map[Leaf][]int {
	set := make(map[Leaf]bool, len(e.Leaves))
	for _, l := range e.Leaves {
		set[l] = true
	}
	out := make(map[Leaf][]int)
	for _, l := range e.Leaves {
		for f := 0; f < 6; f++ {
			if len(p.faceNeighbours(l, f, set)) == 0 {
				out[l] = append(out[l], f)
			}
		}
	}
	return out
}

// remapAll rebuilds the block set for a new epoch from the old blocks
// (all local: the serial path and the local part of the distributed one).
func (p Params) remapAll(old map[Leaf]*block, e *Epoch) map[Leaf]*block {
	next := make(map[Leaf]*block, len(e.Leaves))
	oldSet := make(map[Leaf]bool, len(old))
	for l := range old {
		oldSet[l] = true
	}
	n := p.InteriorElems()
	data := make([]float64, n)
	for _, nl := range e.Leaves {
		acc := make([]float64, n)
		cnt := make([]int32, n)
		for _, ol := range sourcesOf(nl, oldSet) {
			p.interior(old[ol], data)
			p.remapInto(nl, ol, data, acc, cnt)
		}
		b := p.newBlock(nl)
		vals := make([]float64, n)
		finishRemap(acc, cnt, vals)
		p.setInterior(b, vals)
		next[nl] = b
	}
	return next
}
