package miniamr

import (
	"fmt"
	"sort"
)

// block holds one leaf's cell data: Vars variables of (Cells+2)^3 values
// (interior 1..Cells plus one halo layer), double-buffered for the
// Jacobi-style stencil.
type block struct {
	leaf     Leaf
	cur, nxt []float64
}

// dims bundles the indexing helpers of one parameter set.
func (p Params) stride() (s1, s2, svar int) {
	e := p.Cells + 2
	return e * e, e, e * e * e
}

// cellIdx maps (variable, x, y, z) with x,y,z in 0..Cells+1 to the flat
// index.
func (p Params) cellIdx(v, x, y, z int) int {
	e := p.Cells + 2
	return ((v*e+x)*e+y)*e + z
}

func (p Params) newBlock(l Leaf) *block {
	n := p.Vars * (p.Cells + 2) * (p.Cells + 2) * (p.Cells + 2)
	return &block{leaf: l, cur: make([]float64, n), nxt: make([]float64, n)}
}

// initBlock fills a block with the deterministic initial condition: a
// smooth function of the global cell position and the variable index.
func (p Params) initBlock(b *block) {
	n := p.Cells
	scale := 1.0 / float64(int(1)<<b.leaf.L)
	for v := 0; v < p.Vars; v++ {
		for x := 1; x <= n; x++ {
			gx := (float64(b.leaf.X) + (float64(x)-0.5)/float64(n)) * scale
			for y := 1; y <= n; y++ {
				gy := (float64(b.leaf.Y) + (float64(y)-0.5)/float64(n)) * scale
				for z := 1; z <= n; z++ {
					gz := (float64(b.leaf.Z) + (float64(z)-0.5)/float64(n)) * scale
					b.cur[p.cellIdx(v, x, y, z)] =
						float64(v+1) + gx*0.5 + gy*0.25 + gz*0.125
				}
			}
		}
	}
}

// fillBoundary copies the adjacent interior layer into the halo of faces
// with no neighbour (zero-flux boundary).
func (p Params) fillBoundary(b *block, f int) {
	n := p.Cells
	axis, side := f/2, f%2
	halo, inner := 0, 1
	if side == 1 {
		halo, inner = n+1, n
	}
	ws, as, cs := p.faceStrides(axis)
	_, _, svar := p.stride()
	for v := 0; v < p.Vars; v++ {
		hb, ib := v*svar+halo*ws, v*svar+inner*ws
		for a := 1; a <= n; a++ {
			hi, ii := hb+a*as+cs, ib+a*as+cs
			for c := 1; c <= n; c++ {
				b.cur[hi] = b.cur[ii]
				hi += cs
				ii += cs
			}
		}
	}
}

// faceCell indexes a cell on the plane normal to axis at coordinate w,
// with (a, c) running over the two tangential axes in ascending order.
func (p Params) faceCell(v, axis, w, a, c int) int {
	switch axis {
	case 0:
		return p.cellIdx(v, w, a, c)
	case 1:
		return p.cellIdx(v, a, w, c)
	default:
		return p.cellIdx(v, a, c, w)
	}
}

// faceStrides returns the flat-index strides of the w (normal) and (a, c)
// (tangential) coordinates of a face plane normal to axis, so hot loops can
// index by increment instead of a faceCell call per cell:
// faceCell(v, axis, w, a, c) == v*svar + w*ws + a*as + c*cs.
func (p Params) faceStrides(axis int) (ws, as, cs int) {
	s1, s2, _ := p.stride()
	switch axis {
	case 0:
		return s1, s2, 1
	case 1:
		return s2, s1, 1
	default:
		return 1, s1, s2
	}
}

// step performs the 7-point Jacobi-style stencil over the interior and
// swaps the buffers.
func (p Params) step(b *block) {
	n := p.Cells
	s1, s2, _ := p.stride()
	for v := 0; v < p.Vars; v++ {
		for x := 1; x <= n; x++ {
			for y := 1; y <= n; y++ {
				i := p.cellIdx(v, x, y, 1)
				for z := 1; z <= n; z++ {
					b.nxt[i] = (b.cur[i] + b.cur[i-s1] + b.cur[i+s1] +
						b.cur[i-s2] + b.cur[i+s2] + b.cur[i-1] + b.cur[i+1]) / 7
					i++
				}
			}
		}
	}
	b.cur, b.nxt = b.nxt, b.cur
}

// tangential returns the two tangential axes of a face axis, ascending.
func tangential(axis int) (int, int) {
	switch axis {
	case 0:
		return 1, 2
	case 1:
		return 0, 2
	default:
		return 0, 1
	}
}

// coords returns the leaf coordinates indexed by axis.
func (l Leaf) coords() [3]int { return [3]int{l.X, l.Y, l.Z} }

// packMsg extracts from src the values destined for dst's halo face, in
// (variable, a, b) order, exactly as unpackMsg consumes them. The sender
// resamples: averaging towards a coarser receiver, raw towards an equal
// one, and injection values (replicated coarse cells) towards a finer one.
func (p Params) packMsg(src *block, m Msg, out []float64) {
	n := p.Cells
	axis := m.Face / 2
	t1, t2 := tangential(axis)
	// The source layer faces the opposite direction of the dst face.
	layer := n
	if m.Face%2 == 1 {
		layer = 1
	}
	ws, as, cs := p.faceStrides(axis)
	_, _, svar := p.stride()
	k := 0
	switch {
	case m.Src.L == m.Dst.L:
		for v := 0; v < p.Vars; v++ {
			base := v*svar + layer*ws
			for a := 1; a <= n; a++ {
				i := base + a*as + cs
				for c := 1; c <= n; c++ {
					out[k] = src.cur[i]
					k++
					i += cs
				}
			}
		}
	case m.Src.L > m.Dst.L:
		// Finer source covering a quadrant of dst's face: average 2x2.
		h := n / 2
		for v := 0; v < p.Vars; v++ {
			base := v*svar + layer*ws
			for a := 1; a <= h; a++ {
				r0, r1 := base+(2*a-1)*as, base+2*a*as
				for c := 1; c <= h; c++ {
					c0, c1 := (2*c-1)*cs, 2*c*cs
					sum := src.cur[r0+c0] + src.cur[r0+c1] +
						src.cur[r1+c0] + src.cur[r1+c1]
					out[k] = sum / 4
					k++
				}
			}
		}
	default:
		// Coarser source: dst's full face by injection from the quadrant
		// of src's face that dst occupies.
		sc, dc := m.Src.coords(), m.Dst.coords()
		q1 := dc[t1] - 2*sc[t1] // 0 or 1
		q2 := dc[t2] - 2*sc[t2]
		h := n / 2
		for v := 0; v < p.Vars; v++ {
			base := v*svar + layer*ws
			for a := 1; a <= n; a++ {
				row := base + (q1*h+(a+1)/2)*as
				for c := 1; c <= n; c++ {
					out[k] = src.cur[row+(q2*h+(c+1)/2)*cs]
					k++
				}
			}
		}
	}
	if k != m.Elems*p.Vars {
		panic(fmt.Sprintf("miniamr: packed %d values, expected %d", k, m.Elems*p.Vars))
	}
}

// unpackMsg places packed values into dst's halo face (full face or the
// quadrant covered by a finer source).
func (p Params) unpackMsg(dst *block, m Msg, in []float64) {
	n := p.Cells
	axis := m.Face / 2
	t1, t2 := tangential(axis)
	halo := 0
	if m.Face%2 == 1 {
		halo = n + 1
	}
	ws, as, cs := p.faceStrides(axis)
	_, _, svar := p.stride()
	k := 0
	if m.Src.L > m.Dst.L {
		// Quadrant fill: offsets from the fine source's position.
		sc, dc := m.Src.coords(), m.Dst.coords()
		q1 := sc[t1] - 2*dc[t1]
		q2 := sc[t2] - 2*dc[t2]
		h := n / 2
		for v := 0; v < p.Vars; v++ {
			base := v*svar + halo*ws
			for a := 1; a <= h; a++ {
				i := base + (q1*h+a)*as + (q2*h+1)*cs
				for c := 1; c <= h; c++ {
					dst.cur[i] = in[k]
					k++
					i += cs
				}
			}
		}
		return
	}
	for v := 0; v < p.Vars; v++ {
		base := v*svar + halo*ws
		for a := 1; a <= n; a++ {
			i := base + a*as + cs
			for c := 1; c <= n; c++ {
				dst.cur[i] = in[k]
				k++
				i += cs
			}
		}
	}
}

// interior packs a block's interior (Vars x Cells^3) for migration.
func (p Params) interior(b *block, out []float64) {
	n := p.Cells
	k := 0
	for v := 0; v < p.Vars; v++ {
		for x := 1; x <= n; x++ {
			for y := 1; y <= n; y++ {
				i := p.cellIdx(v, x, y, 1)
				for z := 1; z <= n; z++ {
					out[k] = b.cur[i]
					k++
					i++
				}
			}
		}
	}
}

// InteriorElems is the migration payload size per block, in elements.
func (p Params) InteriorElems() int { return p.Vars * p.Cells * p.Cells * p.Cells }

// remapInto accumulates old-leaf interior data (as packed by interior)
// into a new block being assembled: same level copies, coarser-to-finer
// injects, finer-to-coarser averages. acc/cnt have interior layout.
func (p Params) remapInto(nl Leaf, ol Leaf, data []float64, acc []float64, cnt []int32) {
	n := p.Cells
	dl := nl.L - ol.L
	at := func(v, x, y, z int) float64 { // old interior accessor (1-based)
		return data[((v*n+(x-1))*n+(y-1))*n+(z-1)]
	}
	idx := func(v, x, y, z int) int { // new interior index (1-based)
		return ((v*n+(x-1))*n+(y-1))*n + (z - 1)
	}
	switch {
	case dl == 0:
		if nl != ol {
			return
		}
		for i := range acc {
			acc[i] += data[i]
			cnt[i]++
		}
	case dl > 0:
		// New block is finer: it occupies a sub-box of the old block.
		scale := 1 << dl
		if ol.X != nl.X/scale || ol.Y != nl.Y/scale || ol.Z != nl.Z/scale {
			return
		}
		// Offset of the new block inside the old one, in old-cell units.
		offX := (nl.X % scale) * n / scale
		offY := (nl.Y % scale) * n / scale
		offZ := (nl.Z % scale) * n / scale
		for v := 0; v < p.Vars; v++ {
			for x := 1; x <= n; x++ {
				ox := offX + (x-1)/scale + 1
				for y := 1; y <= n; y++ {
					oy := offY + (y-1)/scale + 1
					for z := 1; z <= n; z++ {
						oz := offZ + (z-1)/scale + 1
						i := idx(v, x, y, z)
						acc[i] += at(v, ox, oy, oz)
						cnt[i]++
					}
				}
			}
		}
	default:
		// New block is coarser: the old block fills a sub-box of it.
		scale := 1 << (-dl)
		if nl.X != ol.X/scale || nl.Y != ol.Y/scale || nl.Z != ol.Z/scale {
			return
		}
		offX := (ol.X % scale) * n / scale
		offY := (ol.Y % scale) * n / scale
		offZ := (ol.Z % scale) * n / scale
		for v := 0; v < p.Vars; v++ {
			for x := 1; x <= n; x++ {
				nx := offX + (x-1)/scale + 1
				for y := 1; y <= n; y++ {
					ny := offY + (y-1)/scale + 1
					for z := 1; z <= n; z++ {
						nz := offZ + (z-1)/scale + 1
						i := idx(v, nx, ny, nz)
						acc[i] += at(v, x, y, z)
						cnt[i]++
					}
				}
			}
		}
	}
}

// finishRemap turns accumulated sums into cell values.
func finishRemap(acc []float64, cnt []int32, out []float64) {
	for i := range acc {
		if cnt[i] > 0 {
			out[i] = acc[i] / float64(cnt[i])
		}
	}
}

// setInterior writes packed interior values into a block.
func (p Params) setInterior(b *block, in []float64) {
	n := p.Cells
	k := 0
	for v := 0; v < p.Vars; v++ {
		for x := 1; x <= n; x++ {
			for y := 1; y <= n; y++ {
				i := p.cellIdx(v, x, y, 1)
				for z := 1; z <= n; z++ {
					b.cur[i] = in[k]
					k++
					i++
				}
			}
		}
	}
}

// Transfer is one block migration: old leaf Src moving (or contributing)
// from rank From to the owner of new leaves on rank To.
type Transfer struct {
	Src      Leaf
	From, To int
}

// transition computes the migrations between two epochs: for every new
// leaf, the old leaves intersecting it must be available at the new owner.
// Duplicate (src, from, to) triples are sent once. The result is sorted
// canonically so both sides derive identical tag assignments.
func transition(old, next *Epoch) []Transfer {
	seen := make(map[Transfer]bool)
	var out []Transfer
	oldSet := make(map[Leaf]bool, len(old.Leaves))
	for _, l := range old.Leaves {
		oldSet[l] = true
	}
	for _, nl := range next.Leaves {
		to := next.Owner[nl]
		for _, ol := range sourcesOf(nl, oldSet) {
			tr := Transfer{Src: ol, From: old.Owner[ol], To: to}
			if tr.From == tr.To || seen[tr] {
				continue
			}
			seen[tr] = true
			out = append(out, tr)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return leafLess(a.Src, b.Src)
	})
	return out
}

// sourcesOf returns the old leaves whose regions intersect nl: itself, an
// ancestor, or all descendants present in the old mesh.
func sourcesOf(nl Leaf, oldSet map[Leaf]bool) []Leaf {
	if oldSet[nl] {
		return []Leaf{nl}
	}
	// Ancestor?
	a := nl
	for a.L > 0 {
		a = Leaf{a.L - 1, a.X / 2, a.Y / 2, a.Z / 2}
		if oldSet[a] {
			return []Leaf{a}
		}
	}
	// Descendants.
	var out []Leaf
	var recur func(l Leaf)
	recur = func(l Leaf) {
		if oldSet[l] {
			out = append(out, l)
			return
		}
		if l.L > nl.L+12 { // safety bound; meshes are shallow
			return
		}
		for o := 0; o < 8; o++ {
			recur(Leaf{l.L + 1, l.X*2 + o&1, l.Y*2 + (o>>1)&1, l.Z*2 + (o>>2)&1})
		}
	}
	for o := 0; o < 8; o++ {
		recur(Leaf{nl.L + 1, nl.X*2 + o&1, nl.Y*2 + (o>>1)&1, nl.Z*2 + (o>>2)&1})
	}
	sortLeaves(out)
	return out
}
