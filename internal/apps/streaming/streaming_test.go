package streaming

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
)

func idealCfg(nodes, rpn, cores int, tampi, tagaspi bool) cluster.Config {
	cfg := cluster.Config{
		Nodes: nodes, RanksPerNode: rpn, CoresPerRank: cores,
		Profile:     fabric.ProfileIdeal(),
		WithTasking: tampi || tagaspi,
		WithTAMPI:   tampi, WithTAGASPI: tagaspi,
		TAMPIPoll: 5 * time.Microsecond, TAGASPIPoll: 5 * time.Microsecond,
	}
	return cfg
}

var verifyParams = Params{Chunks: 6, ChunkElems: 96, BlockSize: 16, Verify: true}

// runAndSum runs a variant and returns the checksum accumulated by the
// last pipeline stage.
func runAndSum(cfg cluster.Config, p Params, variant string) float64 {
	var mu sync.Mutex
	total := 0.0
	cluster.Run(cfg, func(env *cluster.Env) {
		var get func() float64
		switch variant {
		case "mpi":
			s := RunMPIOnly(env, p)
			get = func() float64 { return s }
		case "tampi":
			get = RunTAMPI(env, p)
		case "tagaspi":
			get = RunTAGASPI(env, p)
		}
		if env.RT != nil {
			env.RT.TaskWait()
		}
		mu.Lock()
		total += get()
		mu.Unlock()
	})
	return total
}

func TestExpectedChecksumSane(t *testing.T) {
	p := Params{Chunks: 2, ChunkElems: 4, BlockSize: 2, Verify: true}
	// nodes=2: stage 0 generates, stage 1 applies f1 and sums.
	want := 0.0
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			want += stageFn(1, gen(c, i))
		}
	}
	if got := ExpectedChecksum(p, 2); got != want {
		t.Fatalf("ExpectedChecksum = %v, want %v", got, want)
	}
}

func TestMPIOnlyChecksum(t *testing.T) {
	for _, geo := range [][2]int{{2, 1}, {3, 2}, {4, 2}} {
		nodes, rpn := geo[0], geo[1]
		got := runAndSum(idealCfg(nodes, rpn, 1, false, false), verifyParams, "mpi")
		want := ExpectedChecksum(verifyParams, nodes)
		if got != want {
			t.Fatalf("nodes=%d rpn=%d: checksum %v, want %v", nodes, rpn, got, want)
		}
	}
}

func TestTAMPIChecksum(t *testing.T) {
	for _, geo := range [][2]int{{2, 1}, {3, 2}} {
		nodes, rpn := geo[0], geo[1]
		got := runAndSum(idealCfg(nodes, rpn, 4, true, false), verifyParams, "tampi")
		want := ExpectedChecksum(verifyParams, nodes)
		if got != want {
			t.Fatalf("nodes=%d rpn=%d: checksum %v, want %v", nodes, rpn, got, want)
		}
	}
}

func TestTAGASPIChecksum(t *testing.T) {
	for _, geo := range [][2]int{{2, 1}, {3, 2}, {4, 1}} {
		nodes, rpn := geo[0], geo[1]
		got := runAndSum(idealCfg(nodes, rpn, 4, false, true), verifyParams, "tagaspi")
		want := ExpectedChecksum(verifyParams, nodes)
		if got != want {
			t.Fatalf("nodes=%d rpn=%d: checksum %v, want %v", nodes, rpn, got, want)
		}
	}
}

func TestTAGASPIChecksumUnderCostedProfile(t *testing.T) {
	p := verifyParams
	cfg := idealCfg(3, 1, 4, false, true)
	cfg.Profile = fabric.ProfileInfiniBand()
	got := runAndSum(cfg, p, "tagaspi")
	if want := ExpectedChecksum(p, 3); got != want {
		t.Fatalf("checksum %v, want %v", got, want)
	}
}

// The §VI-C mechanism: with small blocks TAMPI collapses on the MPI
// library lock while TAGASPI keeps its throughput, so TAGASPI wins.
func TestTAGASPIBeatsTAMPISmallBlocks(t *testing.T) {
	p := Params{Chunks: 10, ChunkElems: 4096, BlockSize: 64}
	prof := fabric.ProfileInfiniBand()
	cfgM := idealCfg(4, 1, 8, true, false)
	cfgM.Profile = prof
	cfgG := idealCfg(4, 1, 8, false, true)
	cfgG.Profile = prof

	var elM, elG time.Duration
	resM := cluster.Run(cfgM, func(env *cluster.Env) { RunTAMPI(env, p) })
	elM = resM.Elapsed
	resG := cluster.Run(cfgG, func(env *cluster.Env) { RunTAGASPI(env, p) })
	elG = resG.Elapsed
	if elG >= elM {
		t.Fatalf("TAGASPI (%v) not faster than TAMPI (%v) with 64-element blocks", elG, elM)
	}
}

// The paper's in-text §VI-C observation: the total time inside MPI grows
// disproportionately when the block size shrinks (the THREAD_MULTIPLE
// lock), far beyond the mere increase in message count.
func TestMPITimeBlowupWithSmallBlocks(t *testing.T) {
	run := func(block int) (time.Duration, int64) {
		p := Params{Chunks: 8, ChunkElems: 8192, BlockSize: block}
		cfg := idealCfg(3, 1, 8, true, false)
		cfg.Profile = fabric.ProfileOmniPath()
		res := cluster.Run(cfg, func(env *cluster.Env) { RunTAMPI(env, p) })
		return res.TotalMPITime(), res.Fabric.Messages
	}
	tBig, mBig := run(2048)
	tSmall, mSmall := run(128)
	msgRatio := float64(mSmall) / float64(mBig)
	timeRatio := float64(tSmall) / float64(tBig)
	if timeRatio <= msgRatio {
		t.Fatalf("MPI time ratio %.1f not superlinear vs message ratio %.1f",
			timeRatio, msgRatio)
	}
}
