// Package streaming implements the paper's communication-intensive
// Streaming benchmark (§VI-C), inspired by the Pipelined Stencil of Belli
// and Hoefler: large data chunks flow through a pipeline of compute nodes;
// each node applies its own element-wise function to every chunk and
// forwards it to the next node. Blocks of a chunk are independent, so a
// node processes them concurrently; the block size sets the granularity of
// computation, communication, and (in the hybrid variants) tasks.
//
// Each process receives from the corresponding rank of the previous node
// and sends to the one of the next node, with receive and send buffers
// sized for one full chunk. The communication follows the iterative
// producer-consumer pattern of §IV-B, so the TAGASPI variant uses ack
// notifications waited through the onready clause (§V-A) on writer tasks.
package streaming

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/gaspisim"
	"repro/internal/memory"
	"repro/internal/mpisim"
	"repro/internal/tasking"
)

// Params configures one Streaming run.
type Params struct {
	Chunks     int  // chunks pushed through the pipeline
	ChunkElems int  // elements per chunk per node (split across its ranks)
	BlockSize  int  // elements per block (granularity)
	Verify     bool // run the real arithmetic and return checksums
}

// Elements returns the figure-of-merit element count of a run.
func (p Params) Elements() float64 {
	return float64(p.Chunks) * float64(p.ChunkElems)
}

// gen is the source value of element i of chunk c (stage 0 output).
func gen(c, i int) float64 { return float64((c*31 + i) % 97) }

// stageFn applies node k's function: a distinct exact linear map.
func stageFn(k int, x float64) float64 { return x*float64(k+2) + float64(k) }

// ExpectedChecksum computes the analytic checksum the last node must
// accumulate: the sum over all chunks and elements after every stage's
// function has been applied.
func ExpectedChecksum(p Params, nodes int) float64 {
	var sum float64
	for c := 0; c < p.Chunks; c++ {
		for i := 0; i < p.ChunkElems; i++ {
			x := gen(c, i)
			for k := 1; k < nodes; k++ {
				x = stageFn(k, x)
			}
			sum += x
		}
	}
	return sum
}

// pipe holds one rank's pipeline state.
type pipe struct {
	env     *cluster.Env
	p       Params
	node    int // pipeline stage
	nodes   int
	rpn     int
	share   int // elements of each chunk this rank handles
	nb      int // blocks per chunk
	prev    int // source rank (-1 for stage 0)
	next    int // destination rank (-1 for the last stage)
	recvSeg *memory.Segment
	sendSeg *memory.Segment
	recv    memory.F64
	send    memory.F64
	sum     float64 // last stage: checksum accumulator
}

const (
	segRecv = 0
	segSend = 1
)

// Notification id spaces for the TAGASPI variant.
func dataNotif(j int) gaspisim.NotificationID { return gaspisim.NotificationID(j) }
func ackNotif(j, nb int) gaspisim.NotificationID {
	return gaspisim.NotificationID(nb + j)
}

func newPipe(env *cluster.Env, p Params) *pipe {
	topo := env.Fab.Topology()
	rpn := topo.RanksPerNode()
	pi := &pipe{
		env: env, p: p,
		node:  topo.NodeOf(env.Rank),
		nodes: topo.Nodes(),
		rpn:   rpn,
	}
	if p.ChunkElems%rpn != 0 {
		panic(fmt.Sprintf("streaming: chunk of %d elements not divisible by %d ranks/node",
			p.ChunkElems, rpn))
	}
	pi.share = p.ChunkElems / rpn
	if pi.share%p.BlockSize != 0 {
		panic(fmt.Sprintf("streaming: share %d not divisible by block size %d",
			pi.share, p.BlockSize))
	}
	pi.nb = pi.share / p.BlockSize
	pi.prev, pi.next = -1, -1
	if pi.node > 0 {
		pi.prev = int(env.Rank) - rpn
	}
	if pi.node < pi.nodes-1 {
		pi.next = int(env.Rank) + rpn
	}
	bytes := pi.share * memory.F64Bytes
	var err error
	if pi.recvSeg, err = env.GASPI.SegmentCreate(segRecv, bytes); err != nil {
		panic(err)
	}
	if pi.sendSeg, err = env.GASPI.SegmentCreate(segSend, bytes); err != nil {
		panic(err)
	}
	if pi.recv, err = memory.F64View(pi.recvSeg, 0, pi.share); err != nil {
		panic(err)
	}
	if pi.send, err = memory.F64View(pi.sendSeg, 0, pi.share); err != nil {
		panic(err)
	}
	return pi
}

// must fails fast on simulator API errors: inside task bodies there is no
// caller to propagate to, and in this deterministic benchmark any error is
// a programming bug (bad offset, unknown segment, invalid queue).
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// elemBase is the global element index of this rank's block j start within
// a chunk: ranks of a node split the chunk contiguously.
func (pi *pipe) elemBase(j int) int {
	rankInNode := int(pi.env.Rank) % pi.rpn
	return rankInNode*pi.share + j*pi.p.BlockSize
}

// computeBlock models the per-block compute cost and, in verify mode,
// produces block j of the outgoing chunk c into send from recv (or from
// the generator on stage 0), accumulating the checksum on the last stage.
func (pi *pipe) computeBlock(c, j int) {
	b := pi.p.BlockSize
	if !pi.p.Verify {
		return
	}
	off := j * b
	switch {
	case pi.node == 0:
		for i := 0; i < b; i++ {
			pi.send.Set(off+i, gen(c, pi.elemBase(j)+i))
		}
	case pi.next < 0:
		for i := 0; i < b; i++ {
			pi.sum += stageFn(pi.node, pi.recv.At(off+i))
		}
	default:
		for i := 0; i < b; i++ {
			pi.send.Set(off+i, stageFn(pi.node, pi.recv.At(off+i)))
		}
	}
}

// blockBytes returns the raw bytes of block j of a buffer view.
func (pi *pipe) blockBytes(seg *memory.Segment, j int) []byte {
	b, err := seg.Slice(j*pi.p.BlockSize*memory.F64Bytes, pi.p.BlockSize*memory.F64Bytes)
	if err != nil {
		panic(err)
	}
	return b
}

// cost is the modelled compute time of one block.
func (pi *pipe) cost() float64 { return float64(pi.p.BlockSize) }

// RunMPIOnly executes the optimised MPI-only variant: non-blocking
// receives posted a chunk ahead, sends waited before buffer reuse.
func RunMPIOnly(env *cluster.Env, p Params) float64 {
	pi := newPipe(env, p)
	mpi := env.MPI
	recvReq := make([]*mpisim.Request, pi.nb)
	sendReq := make([]*mpisim.Request, pi.nb)
	for c := 0; c < p.Chunks; c++ {
		if pi.prev >= 0 {
			for j := 0; j < pi.nb; j++ {
				recvReq[j] = mpi.Irecv(pi.blockBytes(pi.recvSeg, j), mpisim.Rank(pi.prev), j)
			}
		}
		for j := 0; j < pi.nb; j++ {
			if pi.prev >= 0 {
				mpi.Wait(recvReq[j])
			}
			if pi.next >= 0 && c > 0 {
				// The send buffer block is about to be rewritten: its
				// previous-chunk send must have completed locally.
				mpi.Wait(sendReq[j])
			}
			env.Clk.Sleep(env.CostOf(pi.cost()))
			pi.computeBlock(c, j)
			if pi.next >= 0 {
				sendReq[j] = mpi.Isend(pi.blockBytes(pi.sendSeg, j), mpisim.Rank(pi.next), j)
			}
		}
	}
	if pi.next >= 0 {
		mpi.Waitall(sendReq)
	}
	return pi.sum
}

// RunTAMPI executes the hybrid variant with taskified computation and
// communication over TAMPI_Iwait.
func RunTAMPI(env *cluster.Env, p Params) func() float64 {
	pi := newPipe(env, p)
	mpi, rt, ta := env.MPI, env.RT, env.TAMPI
	type keys struct{ recv, send int }
	k := &keys{}
	for c := 0; c < p.Chunks; c++ {
		for j := 0; j < pi.nb; j++ {
			j := j
			if pi.prev >= 0 {
				rt.Submit(func(tk *tasking.Task) {
					req := mpi.Irecv(pi.blockBytes(pi.recvSeg, j), mpisim.Rank(pi.prev), j)
					ta.Iwait(tk, req)
				}, tasking.WithDeps(tasking.Out(&k.recv, j, j+1)),
					tasking.WithLabel("recv"))
			}
			c := c
			deps := []tasking.Dep{tasking.Out(&k.send, j, j+1)}
			if pi.prev >= 0 {
				deps = append(deps, tasking.In(&k.recv, j, j+1))
			}
			rt.Submit(func(tk *tasking.Task) {
				tk.Compute(env.CostOf(pi.cost()))
				pi.computeBlock(c, j)
			}, tasking.WithDeps(deps...), tasking.WithLabel("compute"))
			if pi.next >= 0 {
				rt.Submit(func(tk *tasking.Task) {
					req := mpi.Isend(pi.blockBytes(pi.sendSeg, j), mpisim.Rank(pi.next), j)
					ta.Iwait(tk, req)
				}, tasking.WithDeps(tasking.In(&k.send, j, j+1)),
					tasking.WithLabel("send"))
			}
		}
		rt.Throttle(4096)
	}
	return func() float64 { return pi.sum }
}

// RunTAGASPI executes the hybrid one-sided variant: writer tasks push
// blocks into the next rank's receive buffer with write+notify, gated on
// the consumer's ack notification through the onready clause; consumer
// tasks send the ack right after processing (§IV-B, §V-A).
func RunTAGASPI(env *cluster.Env, p Params) func() float64 {
	pi := newPipe(env, p)
	rt, tg := env.RT, env.TAGASPI
	Q := env.GASPI.Queues()
	type keys struct{ recv, send int }
	k := &keys{}

	// Seed the producer's acks: our receive blocks start out consumable.
	if pi.prev >= 0 {
		rt.Submit(func(tk *tasking.Task) {
			for j := 0; j < pi.nb; j++ {
				must(tg.Notify(tk, gaspisim.Rank(pi.prev), segSend, ackNotif(j, pi.nb),
					1, j%Q))
			}
		}, tasking.WithLabel("seed acks"))
	}

	for c := 0; c < p.Chunks; c++ {
		for j := 0; j < pi.nb; j++ {
			j, c := j, c
			if pi.prev >= 0 {
				// wait data: the chunk block landing in our receive buffer.
				rt.Submit(func(tk *tasking.Task) {
					tg.NotifyIwait(tk, segRecv, dataNotif(j), nil)
				}, tasking.WithDeps(tasking.Out(&k.recv, j, j+1)),
					tasking.WithLabel("wait data"))
			}
			deps := []tasking.Dep{tasking.Out(&k.send, j, j+1)}
			if pi.prev >= 0 {
				deps = append(deps, tasking.In(&k.recv, j, j+1))
			}
			rt.Submit(func(tk *tasking.Task) {
				tk.Compute(env.CostOf(pi.cost()))
				pi.computeBlock(c, j)
				if pi.prev >= 0 {
					// Ack right after consuming: the previous rank may now
					// overwrite our receive block (§IV-B optimal placement).
					must(tg.Notify(tk, gaspisim.Rank(pi.prev), segSend, ackNotif(j, pi.nb),
						1, j%Q))
				}
			}, tasking.WithDeps(deps...), tasking.WithLabel("compute"))
			if pi.next >= 0 {
				rt.Submit(func(tk *tasking.Task) {
					must(tg.WriteNotify(tk, segSend, j*p.BlockSize*memory.F64Bytes,
						gaspisim.Rank(pi.next), segRecv, j*p.BlockSize*memory.F64Bytes,
						p.BlockSize*memory.F64Bytes, dataNotif(j), int64(c+1), j%Q))
				}, tasking.WithDeps(tasking.In(&k.send, j, j+1)),
					tasking.WithOnReady(func(tk *tasking.Task) {
						// ack_iwait: wait until the consumer freed the slot.
						tg.NotifyIwait(tk, segSend, ackNotif(j, pi.nb), nil)
					}),
					tasking.WithLabel("write data"))
			}
		}
		rt.Throttle(4096)
	}
	return func() float64 { return pi.sum }
}
