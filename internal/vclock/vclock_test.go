package vclock

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// join runs fns on registered goroutines of c and returns when all finish.
// The caller is not registered; it blocks on a real WaitGroup while virtual
// time advances inside the spawned goroutines.
func join(c Clock, fns ...func()) {
	var wg sync.WaitGroup
	for _, fn := range fns {
		fn := fn
		wg.Add(1)
		c.Go(func() {
			defer wg.Done()
			fn()
		})
	}
	wg.Wait()
}

func TestVirtualSleepAdvancesNow(t *testing.T) {
	c := NewVirtual()
	var end time.Duration
	join(c, func() {
		c.Sleep(5 * time.Millisecond)
		c.Sleep(7 * time.Millisecond)
		end = c.Now()
	})
	if end != 12*time.Millisecond {
		t.Fatalf("Now() = %v, want 12ms", end)
	}
}

func TestVirtualSleepZeroAndNegative(t *testing.T) {
	c := NewVirtual()
	join(c, func() {
		c.Sleep(0)
		c.Sleep(-time.Second)
	})
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestVirtualConcurrentSleepersOverlap(t *testing.T) {
	// Two sleepers in parallel: total virtual time is the max, not the sum.
	c := NewVirtual()
	join(c,
		func() { c.Sleep(10 * time.Millisecond) },
		func() { c.Sleep(25 * time.Millisecond) },
		func() { c.Sleep(5 * time.Millisecond) },
	)
	if got := c.Now(); got != 25*time.Millisecond {
		t.Fatalf("Now() = %v, want 25ms", got)
	}
}

func TestVirtualTimerOrdering(t *testing.T) {
	c := NewVirtual()
	var mu sync.Mutex
	var order []int
	sleeper := func(id int, d time.Duration) func() {
		return func() {
			c.Sleep(d)
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		}
	}
	join(c,
		sleeper(3, 30*time.Millisecond),
		sleeper(1, 10*time.Millisecond),
		sleeper(2, 20*time.Millisecond),
	)
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestParkerUnparkBeforePark(t *testing.T) {
	c := NewVirtual()
	p := c.Parker()
	p.Unpark()
	join(c, func() {
		p.Park() // must not block: Unpark was already delivered
	})
}

func TestParkerHandoff(t *testing.T) {
	c := NewVirtual()
	p := c.Parker()
	var woke atomic.Bool
	join(c,
		func() {
			p.Park()
			woke.Store(true)
		},
		func() {
			c.Sleep(time.Millisecond)
			p.Unpark()
		},
	)
	if !woke.Load() {
		t.Fatal("parked goroutine did not wake")
	}
}

func TestParkTimeoutExpires(t *testing.T) {
	c := NewVirtual()
	var woke bool
	var at time.Duration
	join(c, func() {
		p := c.Parker()
		woke = p.ParkTimeout(3 * time.Millisecond)
		at = c.Now()
	})
	if woke {
		t.Fatal("ParkTimeout reported Unpark, want timeout")
	}
	if at != 3*time.Millisecond {
		t.Fatalf("woke at %v, want 3ms", at)
	}
}

func TestParkTimeoutUnparked(t *testing.T) {
	c := NewVirtual()
	p := c.Parker()
	var woke bool
	var at time.Duration
	join(c,
		func() {
			woke = p.ParkTimeout(time.Hour)
			at = c.Now()
		},
		func() {
			c.Sleep(2 * time.Millisecond)
			p.Unpark()
		},
	)
	if !woke {
		t.Fatal("ParkTimeout reported timeout, want Unpark")
	}
	if at != 2*time.Millisecond {
		t.Fatalf("woke at %v, want 2ms", at)
	}
}

func TestParkTimeoutNonPositive(t *testing.T) {
	c := NewVirtual()
	p := c.Parker()
	join(c, func() {
		if p.ParkTimeout(0) {
			t.Error("ParkTimeout(0) with no pending Unpark should report false")
		}
		p.Unpark()
		if !p.ParkTimeout(0) {
			t.Error("ParkTimeout(0) after Unpark should consume it and report true")
		}
	})
}

func TestDeadlockPanics(t *testing.T) {
	c := NewVirtual()
	done := make(chan any, 1)
	c.Go(func() {
		defer func() { done <- recover() }()
		p := c.Parker()
		p.SetName("lonely")
		p.Park() // nobody will ever unpark: deadlock
	})
	r := <-done
	if r == nil {
		t.Fatal("expected deadlock panic, got none")
	}
}

func TestUnparkFromUnregisteredGoroutine(t *testing.T) {
	// Unpark must be callable from outside the simulation (e.g. a driver).
	c := NewVirtual()
	p := c.Parker()
	p.SetExternal(true) // exempt from deadlock detection: the driver wakes it
	released := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	c.Go(func() {
		defer wg.Done()
		close(released)
		p.Park()
	})
	<-released
	// Give the simulated goroutine a moment to actually park.
	time.Sleep(time.Millisecond)
	p.Unpark()
	wg.Wait()
}

func TestVirtualManyGoroutines(t *testing.T) {
	c := NewVirtual()
	const n = 1000
	var total atomic.Int64
	fns := make([]func(), n)
	for i := 0; i < n; i++ {
		i := i
		fns[i] = func() {
			c.Sleep(time.Duration(i%17+1) * time.Millisecond)
			total.Add(1)
		}
	}
	join(c, fns...)
	if total.Load() != n {
		t.Fatalf("completed %d goroutines, want %d", total.Load(), n)
	}
	if got, want := c.Now(), 17*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestVirtualNestedGo(t *testing.T) {
	c := NewVirtual()
	var sum atomic.Int64
	join(c, func() {
		var wg sync.WaitGroup
		for i := 0; i < 10; i++ {
			wg.Add(1)
			c.Go(func() {
				defer wg.Done()
				c.Sleep(time.Millisecond)
				sum.Add(1)
			})
		}
		// Blocking on a non-clock-aware primitive requires leaving the
		// simulation first, or virtual time would stall.
		c.Unregister()
		wg.Wait()
		c.Register()
	})
	if sum.Load() != 10 {
		t.Fatalf("sum = %d, want 10", sum.Load())
	}
}

// Property: for any set of sleep durations run concurrently, the final
// virtual time equals the maximum duration, and sequential sleeps sum.
func TestQuickSleepMaxProperty(t *testing.T) {
	f := func(ds []uint16) bool {
		if len(ds) == 0 {
			return true
		}
		if len(ds) > 64 {
			ds = ds[:64]
		}
		c := NewVirtual()
		var want time.Duration
		fns := make([]func(), len(ds))
		for i, d := range ds {
			d := time.Duration(d) * time.Microsecond
			if d > want {
				want = d
			}
			fns[i] = func() { c.Sleep(d) }
		}
		join(c, fns...)
		return c.Now() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: N sequential sleeps advance the clock by their exact sum.
func TestQuickSleepSumProperty(t *testing.T) {
	f := func(ds []uint16) bool {
		if len(ds) > 128 {
			ds = ds[:128]
		}
		c := NewVirtual()
		var want time.Duration
		join(c, func() {
			for _, d := range ds {
				dd := time.Duration(d) * time.Microsecond
				want += dd
				c.Sleep(dd)
			}
		})
		return c.Now() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: timers fire in deadline order regardless of creation order.
func TestQuickTimerOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%32) + 2
		c := NewVirtual()
		type rec struct {
			d    time.Duration
			woke time.Duration
		}
		recs := make([]rec, k)
		fns := make([]func(), k)
		for i := 0; i < k; i++ {
			i := i
			recs[i].d = time.Duration(rng.Intn(1000)) * time.Microsecond
			fns[i] = func() {
				c.Sleep(recs[i].d)
				recs[i].woke = c.Now()
			}
		}
		join(c, fns...)
		for _, r := range recs {
			if r.woke != r.d {
				return false
			}
		}
		ds := make([]time.Duration, k)
		for i, r := range recs {
			ds[i] = r.d
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return c.Now() == ds[k-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRealClockBasics(t *testing.T) {
	c := NewReal()
	t0 := c.Now()
	c.Sleep(2 * time.Millisecond)
	if d := c.Now() - t0; d < 2*time.Millisecond {
		t.Fatalf("slept only %v", d)
	}
	p := c.Parker()
	p.Unpark()
	p.Park() // must not block
	if p.ParkTimeout(time.Millisecond) {
		t.Fatal("ParkTimeout should time out with no Unpark")
	}
	go func() {
		time.Sleep(time.Millisecond)
		p.Unpark()
	}()
	if !p.ParkTimeout(time.Second) {
		t.Fatal("ParkTimeout should see the Unpark")
	}
	var ran atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	c.Go(func() { defer wg.Done(); ran.Store(true) })
	wg.Wait()
	if !ran.Load() {
		t.Fatal("Go did not run fn")
	}
}

func TestRealParkTimeoutZeroConsumesPending(t *testing.T) {
	c := NewReal()
	p := c.Parker()
	if p.ParkTimeout(0) {
		t.Fatal("no pending unpark: want false")
	}
	p.Unpark()
	if !p.ParkTimeout(0) {
		t.Fatal("pending unpark: want true")
	}
}

func BenchmarkVirtualSleep(b *testing.B) {
	c := NewVirtual()
	var wg sync.WaitGroup
	wg.Add(1)
	c.Go(func() {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			c.Sleep(time.Microsecond)
		}
	})
	wg.Wait()
}

func BenchmarkVirtualPingPong(b *testing.B) {
	c := NewVirtual()
	p1, p2 := c.Parker(), c.Parker()
	var wg sync.WaitGroup
	wg.Add(2)
	c.Go(func() {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			p2.Unpark()
			p1.Park()
		}
	})
	c.Go(func() {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			p2.Park()
			p1.Unpark()
		}
	})
	wg.Wait()
}
