// Package vclock provides the time substrate for the simulated cluster.
//
// Every component of the stack (fabric, MPI/GASPI models, tasking runtime,
// task-aware libraries, applications) measures and spends time exclusively
// through a Clock. Two implementations exist:
//
//   - RealClock: delegates to the wall clock. Used by the runnable examples,
//     where the library behaves as an ordinary concurrent Go library.
//   - VirtualClock: a conservative discrete-event engine. Goroutines taking
//     part in a simulation register with the clock; whenever every registered
//     goroutine is parked, the clock jumps to the earliest pending timer.
//     This lets thousands of simulated cores run on a single host while
//     "time" is the modelled time, which is what the figure reproductions
//     report.
//
// The only blocking primitive is the Parker, a one-shot parking slot in the
// style of the Go runtime's gopark/goready. Higher-level primitives (mutex,
// condition variable, semaphore, served resource) are built on Parkers in
// package vsync.
//
// # Sharding
//
// The parker/timer table is sharded (clockShards fixed power-of-two shards;
// each parker is pinned to one shard for its lifetime), so the park/unpark
// hot path of thousands of concurrently-sleeping goroutines contends on a
// shard mutex and two process-wide atomics (the active count and the timer
// sequence) instead of one global mutex. The virtual-time advance step
// merges the shard frontiers deterministically: each shard publishes its
// earliest (deadline, seq) pair, the advancer scans shards in fixed index
// order, and the globally smallest (deadline, seq) fires — exactly the
// order a single heap would produce, because seq is drawn from one
// process-wide counter. See ARCHITECTURE.md "Sharded host substrate".
package vclock

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts time for the simulation stack.
//
// For a VirtualClock, Sleep and Parker.Park must only be called from
// goroutines registered with the clock (spawned via Go, or wrapped in
// Register/Unregister); calling them from an unregistered goroutine would
// stall virtual time.
type Clock interface {
	// Now reports the time elapsed since the clock started.
	Now() time.Duration
	// Sleep suspends the caller for d of this clock's time.
	// Non-positive durations return immediately.
	Sleep(d time.Duration)
	// AllocSeq reserves and returns the next timer sequence number without
	// arming a timer. Event-driven service loops (the fabric's sharded
	// couriers) stamp each scheduled event with a sequence at creation
	// time and later park at the event's (deadline, seq) via
	// Parker.ParkUntil, so the event wakes interleave with ordinary
	// same-deadline timers exactly as if a dedicated goroutine had armed a
	// Sleep at the moment the event was scheduled — the property the
	// simulator's determinism rests on.
	AllocSeq() uint64
	// Go spawns fn on a new goroutine registered with the clock.
	Go(fn func())
	// Parker allocates a new parking slot bound to this clock.
	Parker() Parker
	// Register adds the calling goroutine to the clock's active set.
	// It must be paired with Unregister. Go-spawned goroutines are
	// registered automatically.
	Register()
	// Unregister removes the calling goroutine from the active set.
	Unregister()
}

// Parker is a one-shot parking slot. At most one goroutine may be parked on
// a Parker at a time. Unpark may be called before Park, in which case the
// next Park returns immediately (binary-semaphore semantics). Unpark may be
// called from any goroutine, registered or not.
type Parker interface {
	// Park blocks the caller until Unpark is (or already was) called.
	Park()
	// ParkTimeout blocks until Unpark or until d elapses.
	// It reports whether the wake was an Unpark (true) or timeout (false).
	ParkTimeout(d time.Duration) bool
	// ParkUntil blocks until Unpark or until the clock reaches deadline,
	// using the caller-supplied timer sequence (from Clock.AllocSeq) to
	// order the wake among same-deadline timers. Re-parking with the same
	// (deadline, seq) after an Unpark wake keeps the pending event's place
	// in the global wake order. It reports whether the wake was an Unpark.
	ParkUntil(deadline time.Duration, seq uint64) bool
	// Unpark wakes the parked goroutine, or primes the slot if none is
	// parked yet.
	Unpark()
	// SetName attaches a diagnostic label reported on simulated deadlock.
	// It is a no-op for real-clock parkers.
	SetName(name string)
	// SetExternal marks the parker as woken by an agent outside the
	// simulation (e.g. the test driver). External parkers are exempt from
	// virtual-time deadlock detection: if only external parkers remain,
	// the clock freezes and waits for the Unpark instead of panicking.
	// It is a no-op for real-clock parkers.
	SetExternal(external bool)
}

// ---------------------------------------------------------------------------
// VirtualClock
// ---------------------------------------------------------------------------

// clockShards is the fixed shard count of the parker/timer table. A power
// of two so shard selection is a mask. 16 balances park-path concurrency
// (a 256-node sweep parks thousands of goroutines concurrently) against
// the advance step's frontier scan, which reads one cache line per shard
// per fired event.
const clockShards = 16

// noDeadline is the published frontier of a shard with no pending timers.
const noDeadline = math.MaxInt64

// clockShard is one slice of the parker/timer table. The mutex protects
// the heap, the parked set and the parker state (pending/waiting/woke) of
// every parker pinned to the shard.
type clockShard struct {
	mu     sync.Mutex
	timers timerHeap
	parked map[*vparker]struct{} // parked without a timer, for diagnostics

	// topDL/topSeq publish the shard's frontier — the (deadline, seq) of
	// timers[0], or (noDeadline, 0) when empty — for the advance step's
	// lock-free merge scan. Written under mu whenever the heap top
	// changes; the quiescence argument in advanceLocked explains why the
	// lock-free reads are exact, not approximate.
	topDL  atomic.Int64
	topSeq atomic.Uint64

	_ [24]byte // pad to a cache-line multiple against false sharing
}

// refreshTopLocked republishes the shard frontier after a heap mutation.
// Called with s.mu held.
func (s *clockShard) refreshTopLocked() {
	if len(s.timers) == 0 {
		s.topDL.Store(noDeadline)
		s.topSeq.Store(0)
		return
	}
	s.topDL.Store(int64(s.timers[0].deadline))
	s.topSeq.Store(s.timers[0].seq)
}

// VirtualClock is a discrete-event virtual time source.
//
// The clock maintains an "active" count of registered goroutines that are
// currently runnable. Parking (Sleep, Parker.Park) decrements the count;
// when it reaches zero the clock advances to the earliest pending timer and
// fires it, waking its owner. If the count reaches zero with no pending
// timers while goroutines remain parked, the simulation has deadlocked and
// the clock panics with a diagnostic listing the parked goroutines.
type VirtualClock struct {
	now    atomic.Int64  // current virtual time, ns; written only under adv
	active atomic.Int64  // registered and runnable goroutines
	seq    atomic.Uint64 // process-wide timer sequence, breaks deadline ties

	// adv serializes the advance step. Lock order: adv, then shard
	// mutexes in index order; nothing acquires adv while holding a shard
	// mutex.
	adv sync.Mutex

	shardCtr atomic.Uint32 // round-robin parker placement
	shards   [clockShards]clockShard

	// sleepers recycles the parker (and its embedded timer) of Sleep
	// calls. Sleep is the hottest allocation site of the whole simulator
	// (every modelled delay of every courier, resource and rank main
	// passes through it), so this pool removes the dominant per-event
	// garbage. Timers are removed from the shard heap eagerly on wake,
	// so a recycled parker's timer is never still heap-linked.
	sleepers sync.Pool
}

// NewVirtual returns a virtual clock positioned at time zero with no
// registered goroutines.
func NewVirtual() *VirtualClock {
	c := &VirtualClock{}
	for i := range c.shards {
		c.shards[i].parked = make(map[*vparker]struct{})
		c.shards[i].topDL.Store(noDeadline)
	}
	return c
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Duration {
	return time.Duration(c.now.Load())
}

// Register implements Clock.
func (c *VirtualClock) Register() {
	c.active.Add(1)
}

// Unregister implements Clock.
func (c *VirtualClock) Unregister() {
	if c.active.Add(-1) == 0 {
		c.advance()
	}
}

// Go implements Clock.
func (c *VirtualClock) Go(fn func()) {
	c.Register()
	go func() {
		defer c.Unregister()
		fn()
	}()
}

// Sleep implements Clock. Sleeping parkers and their timers are recycled
// through a pool: a Sleep can only be woken by its own timer expiry, so
// after the park returns nothing in the clock references either object.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	var p *vparker
	if v := c.sleepers.Get(); v != nil {
		p = v.(*vparker)
	} else {
		p = c.newParker()
	}
	t := p.timerFor(d)
	p.park(t)
	c.sleepers.Put(p)
}

// AllocSeq implements Clock.
func (c *VirtualClock) AllocSeq() uint64 { return c.seq.Add(1) }

// Parker implements Clock.
func (c *VirtualClock) Parker() Parker { return c.newParker() }

func (c *VirtualClock) newParker() *vparker {
	shard := c.shardCtr.Add(1) & (clockShards - 1)
	p := &vparker{c: c, shard: &c.shards[shard], ch: make(chan struct{}, 1)}
	p.t = &timer{p: p}
	return p
}

// timer wakes a parker at a deadline.
type timer struct {
	deadline time.Duration
	seq      uint64
	p        *vparker
	index    int
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) push(t *timer) {
	t.index = len(*h)
	*h = append(*h, t)
	h.up(t.index)
}

func (h *timerHeap) pop() *timer {
	old := *h
	n := len(old)
	t := old[0]
	old.Swap(0, n-1)
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	t.index = -1
	return t
}

// remove deletes t (present at t.index) from the heap. Timers are removed
// eagerly when their parker is woken by an Unpark instead of the timer, so
// parkers can reuse one timer struct across parks.
func (h *timerHeap) remove(t *timer) {
	i := t.index
	n := len(*h) - 1
	h.Swap(i, n)
	*h = (*h)[:n]
	if i < n {
		h.down(i)
		h.up(i)
	}
	t.index = -1
}

func (h timerHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.Less(i, parent) {
			break
		}
		h.Swap(i, parent)
		i = parent
	}
}

func (h timerHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.Less(l, smallest) {
			smallest = l
		}
		if r < n && h.Less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.Swap(i, smallest)
		i = smallest
	}
}

// vparker implements Parker against a VirtualClock. Each parker is pinned
// to one shard at creation; all of its mutable state is protected by that
// shard's mutex.
type vparker struct {
	c        *VirtualClock
	shard    *clockShard
	ch       chan struct{}
	t        *timer // reusable timer (Sleep, ParkTimeout); never heap-linked between parks
	pending  bool   // Unpark arrived while not parked
	waiting  bool   // a goroutine is parked here
	waking   bool   // an Unpark claimed this park's wake (two-phase wake)
	woke     bool   // last wake was an Unpark (vs timeout)
	external bool
	name     string
}

// SetName implements Parker.
func (p *vparker) SetName(name string) { p.name = name }

// SetExternal implements Parker.
func (p *vparker) SetExternal(external bool) { p.external = external }

// timerFor arms the parker's reusable timer for a wake d from now.
//
//tagalint:hotpath
func (p *vparker) timerFor(d time.Duration) *timer {
	t := p.t
	t.deadline = p.c.Now() + d
	t.seq = p.c.seq.Add(1)
	return t
}

func (p *vparker) Park() { p.park(nil) }

// ParkUntil arms the reusable timer with an explicit (deadline, seq)
// identity and parks. The deadline may already be due — the park then
// wakes once every earlier same-instant timer has fired and every
// currently-runnable goroutine has parked, which is how event loops wait
// out a wake cascade without losing their place in the timer order.
//
//tagalint:hotpath
func (p *vparker) ParkUntil(deadline time.Duration, seq uint64) bool {
	t := p.t
	t.deadline = deadline
	t.seq = seq
	return p.park(t)
}

func (p *vparker) ParkTimeout(d time.Duration) bool {
	if d <= 0 {
		// A non-positive timeout still honours a pending Unpark.
		s := p.shard
		s.mu.Lock()
		if p.pending {
			p.pending = false
			s.mu.Unlock()
			return true
		}
		s.mu.Unlock()
		return false
	}
	return p.park(p.timerFor(d))
}

// park blocks until an Unpark or t's expiry wakes it. If t is non-nil it is
// armed before parking and removed from the heap on a non-timer wake.
// Reports whether the wake was an Unpark.
//
//tagalint:hotpath
func (p *vparker) park(t *timer) bool {
	c := p.c
	s := p.shard
	s.mu.Lock()
	if p.pending {
		p.pending = false
		s.mu.Unlock()
		return true
	}
	if p.waiting {
		s.mu.Unlock()
		panic("vclock: concurrent Park on the same Parker")
	}
	if t != nil {
		s.timers.push(t)
		s.refreshTopLocked()
	} else {
		s.parked[p] = struct{}{}
	}
	p.waiting = true
	p.woke = false
	s.mu.Unlock()
	// The timer (or parked-set entry) is published before the decrement,
	// so whichever goroutine observes active==0 sees this shard's full
	// frontier when it scans.
	if c.active.Add(-1) == 0 {
		c.advance()
	}
	s.mu.Lock()
	for p.waiting {
		s.mu.Unlock()
		<-p.ch
		s.mu.Lock()
	}
	if t != nil && t.index >= 0 {
		// Woken by an Unpark before the timer fired: remove it eagerly
		// so the struct can be rearmed by the next park.
		s.timers.remove(t)
		s.refreshTopLocked()
	}
	delete(s.parked, p)
	woke := p.woke
	s.mu.Unlock()
	return woke
}

// Unpark wakes the parked goroutine in two phases: phase one claims the
// wake (waking) and publishes the active-count increment while the parker
// still observes waiting==true, so the wakee cannot run — and re-park,
// re-decrementing active — before the increment lands; phase two flips
// waiting and releases the wakee. A second Unpark racing the window sees
// waking and degrades to pending, preserving binary-semaphore semantics.
func (p *vparker) Unpark() {
	c := p.c
	s := p.shard
	s.mu.Lock()
	if !p.waiting || p.waking {
		p.pending = true
		s.mu.Unlock()
		return
	}
	p.waking = true
	first := c.active.Add(1) == 1
	s.mu.Unlock()
	if first {
		// This wake transitions the clock out of quiescence, so an
		// advance step may be mid-merge right now. Serialize with it
		// before releasing the woken goroutine: otherwise the wakee
		// could push an earlier timer into a frontier the advancer has
		// already scanned past. (The advancer re-checks active before
		// every fire, so it stops; this handshake just makes the wakee
		// wait for that stop.)
		c.adv.Lock()
		c.adv.Unlock() // empty critical section on purpose: the lock is a barrier
	}
	s.mu.Lock()
	p.waking = false
	p.waiting = false
	p.woke = true
	s.mu.Unlock()
	select {
	case p.ch <- struct{}{}:
	default:
	}
}

// advance runs the virtual-time advance step, serialized by c.adv, and
// panics outside the locks if the simulation deadlocked.
func (c *VirtualClock) advance() {
	c.adv.Lock()
	report := c.advanceLocked()
	c.adv.Unlock()
	if report != "" {
		panic(report)
	}
}

// advanceLocked merges the shard frontiers and fires timers while the
// clock is quiescent (active == 0). Determinism: seq comes from one
// process-wide counter, so ordering by (deadline, seq) across shards is a
// total order identical to the single-heap order; the fixed index-order
// scan makes the merge itself deterministic.
//
// While active == 0 no registered goroutine is runnable, so no timer can
// be pushed or removed concurrently with the scan — every frontier read
// below is exact. The only concurrent mutator is an Unpark from outside
// the simulation; it increments active before its wakee can run, and the
// re-check before each fire plus the !waiting guard keep such races from
// corrupting virtual time. If no timers remain and non-external parkers
// are parked, the simulation is deadlocked: the report is returned
// non-empty and the caller must release the lock and panic with it.
func (c *VirtualClock) advanceLocked() (deadlock string) {
	for c.active.Load() == 0 {
		best := -1
		bestDL := int64(noDeadline)
		var bestSeq uint64
		for i := range c.shards {
			dl := c.shards[i].topDL.Load()
			if dl == noDeadline {
				continue
			}
			sq := c.shards[i].topSeq.Load()
			if best == -1 || dl < bestDL || (dl == bestDL && sq < bestSeq) {
				best, bestDL, bestSeq = i, dl, sq
			}
		}
		if best == -1 {
			if c.internalParked() > 0 {
				return c.deadlockReport()
			}
			return "" // clean termination, or frozen awaiting external wakes
		}
		s := &c.shards[best]
		s.mu.Lock()
		t := s.timers.pop()
		s.refreshTopLocked()
		p := t.p
		if !p.waiting || p.waking {
			// A racing external Unpark already woke (or claimed the
			// wake of) the owner; the timer is moot and must not
			// advance time.
			s.mu.Unlock()
			continue
		}
		if int64(t.deadline) > c.now.Load() {
			c.now.Store(int64(t.deadline))
		}
		p.waiting = false
		p.woke = false
		c.active.Add(1)
		select {
		case p.ch <- struct{}{}:
		default:
		}
		s.mu.Unlock()
	}
	return ""
}

// internalParked counts non-external parkers across all shards. Called
// with adv held during quiescence, so the per-shard reads are stable.
func (c *VirtualClock) internalParked() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for p := range s.parked {
			if !p.external {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

func (c *VirtualClock) deadlockReport() string {
	var names []string
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for p := range s.parked {
			total++
			n := p.name
			if n == "" {
				n = "<unnamed>"
			}
			names = append(names, n)
		}
		s.mu.Unlock()
	}
	sort.Strings(names)
	return fmt.Sprintf("vclock: deadlock at t=%v: %d goroutine(s) parked with no pending timers: %v",
		c.Now(), total, names)
}

// ---------------------------------------------------------------------------
// RealClock
// ---------------------------------------------------------------------------

// RealClock implements Clock against the wall clock. Register/Unregister are
// no-ops; Go is a plain goroutine spawn.
type RealClock struct {
	start time.Time
	seq   atomic.Uint64
}

// NewReal returns a wall-clock-backed Clock whose Now starts at zero.
func NewReal() *RealClock {
	return &RealClock{start: time.Now()}
}

// Now implements Clock.
func (c *RealClock) Now() time.Duration { return time.Since(c.start) }

// Sleep implements Clock.
func (c *RealClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// AllocSeq implements Clock. Wall-clock wakes are ordered by the OS, so
// the sequence is only a token for the ParkUntil API.
func (c *RealClock) AllocSeq() uint64 { return c.seq.Add(1) }

// Go implements Clock.
func (c *RealClock) Go(fn func()) { go fn() }

// Register implements Clock.
func (c *RealClock) Register() {}

// Unregister implements Clock.
func (c *RealClock) Unregister() {}

// Parker implements Clock.
func (c *RealClock) Parker() Parker {
	return &rparker{ch: make(chan struct{}, 1), clk: c}
}

// rparker implements Parker with a buffered channel.
type rparker struct {
	ch  chan struct{}
	clk *RealClock
}

func (p *rparker) Park() { <-p.ch }

// ParkUntil implements Parker; under real time the sequence is ignored and
// the deadline is a plain timeout.
func (p *rparker) ParkUntil(deadline time.Duration, seq uint64) bool {
	_ = seq
	return p.ParkTimeout(deadline - p.clk.Now())
}

func (p *rparker) ParkTimeout(d time.Duration) bool {
	if d <= 0 {
		select {
		case <-p.ch:
			return true
		default:
			return false
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-p.ch:
		return true
	case <-t.C:
		return false
	}
}

func (p *rparker) Unpark() {
	select {
	case p.ch <- struct{}{}:
	default:
	}
}

// SetName implements Parker (no-op under real time).
func (p *rparker) SetName(string) {}

// SetExternal implements Parker (no-op under real time).
func (p *rparker) SetExternal(bool) {}
