// Package vclock provides the time substrate for the simulated cluster.
//
// Every component of the stack (fabric, MPI/GASPI models, tasking runtime,
// task-aware libraries, applications) measures and spends time exclusively
// through a Clock. Two implementations exist:
//
//   - RealClock: delegates to the wall clock. Used by the runnable examples,
//     where the library behaves as an ordinary concurrent Go library.
//   - VirtualClock: a conservative discrete-event engine. Goroutines taking
//     part in a simulation register with the clock; whenever every registered
//     goroutine is parked, the clock jumps to the earliest pending timer.
//     This lets thousands of simulated cores run on a single host while
//     "time" is the modelled time, which is what the figure reproductions
//     report.
//
// The only blocking primitive is the Parker, a one-shot parking slot in the
// style of the Go runtime's gopark/goready. Higher-level primitives (mutex,
// condition variable, semaphore, served resource) are built on Parkers in
// package vsync.
package vclock

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for the simulation stack.
//
// For a VirtualClock, Sleep and Parker.Park must only be called from
// goroutines registered with the clock (spawned via Go, or wrapped in
// Register/Unregister); calling them from an unregistered goroutine would
// stall virtual time.
type Clock interface {
	// Now reports the time elapsed since the clock started.
	Now() time.Duration
	// Sleep suspends the caller for d of this clock's time.
	// Non-positive durations return immediately.
	Sleep(d time.Duration)
	// Go spawns fn on a new goroutine registered with the clock.
	Go(fn func())
	// Parker allocates a new parking slot bound to this clock.
	Parker() Parker
	// Register adds the calling goroutine to the clock's active set.
	// It must be paired with Unregister. Go-spawned goroutines are
	// registered automatically.
	Register()
	// Unregister removes the calling goroutine from the active set.
	Unregister()
}

// Parker is a one-shot parking slot. At most one goroutine may be parked on
// a Parker at a time. Unpark may be called before Park, in which case the
// next Park returns immediately (binary-semaphore semantics). Unpark may be
// called from any goroutine, registered or not.
type Parker interface {
	// Park blocks the caller until Unpark is (or already was) called.
	Park()
	// ParkTimeout blocks until Unpark or until d elapses.
	// It reports whether the wake was an Unpark (true) or timeout (false).
	ParkTimeout(d time.Duration) bool
	// Unpark wakes the parked goroutine, or primes the slot if none is
	// parked yet.
	Unpark()
	// SetName attaches a diagnostic label reported on simulated deadlock.
	// It is a no-op for real-clock parkers.
	SetName(name string)
	// SetExternal marks the parker as woken by an agent outside the
	// simulation (e.g. the test driver). External parkers are exempt from
	// virtual-time deadlock detection: if only external parkers remain,
	// the clock freezes and waits for the Unpark instead of panicking.
	// It is a no-op for real-clock parkers.
	SetExternal(external bool)
}

// ---------------------------------------------------------------------------
// VirtualClock
// ---------------------------------------------------------------------------

// VirtualClock is a discrete-event virtual time source.
//
// The clock maintains an "active" count of registered goroutines that are
// currently runnable. Parking (Sleep, Parker.Park) decrements the count;
// when it reaches zero the clock advances to the earliest pending timer and
// fires it, waking its owner. If the count reaches zero with no pending
// timers while goroutines remain parked, the simulation has deadlocked and
// the clock panics with a diagnostic listing the parked goroutines.
type VirtualClock struct {
	mu     sync.Mutex
	now    time.Duration
	active int
	seq    uint64
	timers timerHeap
	parked map[*vparker]struct{} // parked without a timer, for diagnostics

	// sleepers recycles the parker (and its embedded timer) of Sleep
	// calls. A sleeping parker is only ever woken by its own timer —
	// no Unpark can reach it — so once park returns, the timer has been
	// popped from the heap and both objects are free for reuse. Sleep is
	// the hottest allocation site of the whole simulator (every modelled
	// delay of every courier, resource and rank main passes through it),
	// so this pool removes the dominant per-event garbage.
	sleepers sync.Pool
}

// NewVirtual returns a virtual clock positioned at time zero with no
// registered goroutines.
func NewVirtual() *VirtualClock {
	return &VirtualClock{parked: make(map[*vparker]struct{})}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Register implements Clock.
func (c *VirtualClock) Register() {
	c.mu.Lock()
	c.active++
	c.mu.Unlock()
}

// Unregister implements Clock.
func (c *VirtualClock) Unregister() {
	c.mu.Lock()
	c.active--
	report := c.advanceLocked()
	c.mu.Unlock()
	if report != "" {
		panic(report)
	}
}

// Go implements Clock.
func (c *VirtualClock) Go(fn func()) {
	c.Register()
	go func() {
		defer c.Unregister()
		fn()
	}()
}

// Sleep implements Clock. Sleeping parkers and their timers are recycled
// through a pool: a Sleep can only be woken by its own timer expiry, so
// after the park returns nothing in the clock references either object.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	var p *vparker
	if v := c.sleepers.Get(); v != nil {
		p = v.(*vparker)
	} else {
		p = c.newParker()
		p.sleepT = &timer{p: p}
	}
	t := p.sleepT
	c.mu.Lock()
	t.deadline = c.now + d
	t.seq = c.seq
	t.stopped = false
	c.seq++
	c.mu.Unlock()
	p.park(t)
	c.sleepers.Put(p)
}

// Parker implements Clock.
func (c *VirtualClock) Parker() Parker { return c.newParker() }

func (c *VirtualClock) newParker() *vparker {
	return &vparker{c: c, ch: make(chan struct{}, 1)}
}

// timer wakes a parker at a deadline.
type timer struct {
	deadline time.Duration
	seq      uint64
	p        *vparker
	stopped  bool
	index    int
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) push(t *timer) {
	t.index = len(*h)
	*h = append(*h, t)
	h.up(t.index)
}

func (h *timerHeap) pop() *timer {
	old := *h
	n := len(old)
	t := old[0]
	old.Swap(0, n-1)
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	t.index = -1
	return t
}

func (h timerHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.Less(i, parent) {
			break
		}
		h.Swap(i, parent)
		i = parent
	}
}

func (h timerHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.Less(l, smallest) {
			smallest = l
		}
		if r < n && h.Less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.Swap(i, smallest)
		i = smallest
	}
}

// vparker implements Parker against a VirtualClock.
type vparker struct {
	c        *VirtualClock
	ch       chan struct{}
	sleepT   *timer // reusable timer of pooled Sleep parkers (see Sleep)
	pending  bool   // Unpark arrived while not parked
	waiting  bool   // a goroutine is parked here
	woke     bool   // last wake was an Unpark (vs timeout)
	external bool
	name     string
}

// SetName implements Parker.
func (p *vparker) SetName(name string) { p.name = name }

// SetExternal implements Parker.
func (p *vparker) SetExternal(external bool) { p.external = external }

func (p *vparker) Park() { p.park(nil) }

func (p *vparker) ParkTimeout(d time.Duration) bool {
	if d <= 0 {
		// A non-positive timeout still honours a pending Unpark.
		c := p.c
		c.mu.Lock()
		if p.pending {
			p.pending = false
			c.mu.Unlock()
			return true
		}
		c.mu.Unlock()
		return false
	}
	c := p.c
	c.mu.Lock()
	t := &timer{deadline: c.now + d, seq: c.seq, p: p}
	c.seq++
	c.mu.Unlock()
	return p.park(t)
}

// park blocks until unparkLocked wakes it. If t is non-nil it is armed
// before parking and disarmed on wake. Reports whether the wake was an
// Unpark.
func (p *vparker) park(t *timer) bool {
	c := p.c
	c.mu.Lock()
	if p.pending {
		p.pending = false
		c.mu.Unlock()
		return true
	}
	if p.waiting {
		c.mu.Unlock()
		panic("vclock: concurrent Park on the same Parker")
	}
	if t != nil {
		c.timers.push(t)
	} else {
		c.parked[p] = struct{}{}
	}
	p.waiting = true
	p.woke = false
	c.active--
	if report := c.advanceLocked(); report != "" {
		c.mu.Unlock()
		panic(report)
	}
	for p.waiting {
		c.mu.Unlock()
		<-p.ch
		c.mu.Lock()
	}
	if t != nil && t.index >= 0 {
		t.stopped = true // lazily discarded by advanceLocked
	}
	delete(c.parked, p)
	woke := p.woke
	c.mu.Unlock()
	return woke
}

func (p *vparker) Unpark() {
	c := p.c
	c.mu.Lock()
	c.unparkLocked(p, true)
	c.mu.Unlock()
}

// unparkLocked wakes p. wokeByUnpark distinguishes Unpark from timer expiry.
func (c *VirtualClock) unparkLocked(p *vparker, wokeByUnpark bool) {
	if !p.waiting {
		if wokeByUnpark {
			p.pending = true
		}
		return
	}
	p.waiting = false
	p.woke = wokeByUnpark
	c.active++
	select {
	case p.ch <- struct{}{}:
	default:
	}
}

// advanceLocked is called whenever the active count may have reached zero.
// It advances virtual time to the earliest timer and fires it. If no timers
// remain and goroutines are still parked, the simulation is deadlocked: the
// report is returned non-empty and the caller must release the clock lock
// and panic with it (panicking here would hold the lock across recovery).
func (c *VirtualClock) advanceLocked() (deadlock string) {
	for c.active == 0 {
		// Discard stopped timers.
		for len(c.timers) > 0 && c.timers[0].stopped {
			c.timers.pop()
		}
		if len(c.timers) == 0 {
			internal := 0
			for p := range c.parked {
				if !p.external {
					internal++
				}
			}
			if internal > 0 {
				return c.deadlockReportLocked()
			}
			return "" // clean termination, or frozen awaiting external wakes
		}
		t := c.timers.pop()
		if t.deadline > c.now {
			c.now = t.deadline
		}
		c.unparkLocked(t.p, false)
	}
	return ""
}

func (c *VirtualClock) deadlockReportLocked() string {
	names := make([]string, 0, len(c.parked))
	for p := range c.parked {
		n := p.name
		if n == "" {
			n = "<unnamed>"
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return fmt.Sprintf("vclock: deadlock at t=%v: %d goroutine(s) parked with no pending timers: %v",
		c.now, len(names), names)
}

// ---------------------------------------------------------------------------
// RealClock
// ---------------------------------------------------------------------------

// RealClock implements Clock against the wall clock. Register/Unregister are
// no-ops; Go is a plain goroutine spawn.
type RealClock struct {
	start time.Time
}

// NewReal returns a wall-clock-backed Clock whose Now starts at zero.
func NewReal() *RealClock {
	return &RealClock{start: time.Now()}
}

// Now implements Clock.
func (c *RealClock) Now() time.Duration { return time.Since(c.start) }

// Sleep implements Clock.
func (c *RealClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Go implements Clock.
func (c *RealClock) Go(fn func()) { go fn() }

// Register implements Clock.
func (c *RealClock) Register() {}

// Unregister implements Clock.
func (c *RealClock) Unregister() {}

// Parker implements Clock.
func (c *RealClock) Parker() Parker {
	return &rparker{ch: make(chan struct{}, 1)}
}

// rparker implements Parker with a buffered channel.
type rparker struct {
	ch chan struct{}
}

func (p *rparker) Park() { <-p.ch }

func (p *rparker) ParkTimeout(d time.Duration) bool {
	if d <= 0 {
		select {
		case <-p.ch:
			return true
		default:
			return false
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-p.ch:
		return true
	case <-t.C:
		return false
	}
}

func (p *rparker) Unpark() {
	select {
	case p.ch <- struct{}{}:
	default:
	}
}

// SetName implements Parker (no-op under real time).
func (p *rparker) SetName(string) {}

// SetExternal implements Parker (no-op under real time).
func (p *rparker) SetExternal(bool) {}
