package gaspisim

import (
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/vclock"
)

// TestInvalidQueueIndexPanics pins GASPI_ERR_INV_QUEUE semantics on every
// queue-index entry point: an out-of-range queue id must fail immediately
// with a message naming the error, the offending id and the valid range —
// not a bare slice index panic from deep inside the simulator.
func TestInvalidQueueIndexPanics(t *testing.T) {
	clk := vclock.NewVirtual()
	fab := fabric.New(clk, fabric.NewTopology(2, 1), testProfile())
	w := NewWorld(fab, 2, 1)
	p := w.Proc(0)

	entryPoints := map[string]func(q int){
		"QueueStats":  func(q int) { p.QueueStats(q) },
		"RequestWait": func(q int) { p.RequestWait(q, 1, Test) },
		"Wait":        func(q int) { p.Wait(q) },
		"Drain":       func(q int) { p.Drain(q) },
		"QueueState":  func(q int) { p.QueueState(q) },
		"QueueRepair": func(q int) { p.QueueRepair(q) },
	}
	mustPanicInvQueue := func(t *testing.T, name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: expected GASPI_ERR_INV_QUEUE panic, got none", name)
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "GASPI_ERR_INV_QUEUE") {
				t.Fatalf("%s: panic = %v, want a GASPI_ERR_INV_QUEUE message", name, r)
			}
		}()
		fn()
	}
	for name, fn := range entryPoints {
		for _, q := range []int{-1, 2, 1 << 20} {
			mustPanicInvQueue(t, name, func() { fn(q) })
		}
	}

	// In-range ids on the non-blocking entry points keep working.
	p.QueueStats(1)
	p.RequestWait(1, 1, Test)
	p.QueueState(1)
}
