package gaspisim

import (
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/vclock"
)

// withFaultyWorld is withWorld with a fault plan installed on the fabric
// and an optional recorder on the world.
func withFaultyWorld(ranks, queues int, plan fabric.FaultPlan, rec obs.Recorder, fn func(p *Proc)) {
	clk := vclock.NewVirtual()
	fab := fabric.New(clk, fabric.NewTopology(ranks, 1), testProfile())
	if plan.Enabled() {
		fab.SetFaultPlan(plan, 99)
	}
	w := NewWorld(fab, queues, 1)
	if rec != nil {
		fab.SetRecorder(rec)
		w.SetRecorder(rec)
	}
	var wg sync.WaitGroup
	for r := 0; r < w.Size(); r++ {
		p := w.Proc(Rank(r))
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			fn(p)
		})
	}
	wg.Wait()
}

// A failed operation must surface as OK=false completions through a
// blocking RequestWait (no hang), move the queue into the error state,
// fast-fail subsequent posts, and accept posts again after QueueRepair.
func TestFailedOperationEntersQueueErrorState(t *testing.T) {
	plan := fabric.FaultPlan{GASPI: fabric.FaultRates{Drop: 1}}
	reg := obs.NewRegistry()
	col := &obs.Collector{Metrics: reg}
	withFaultyWorld(2, 2, plan, col, func(p *Proc) {
		mustCreate(p, 0, 64)
		if p.Rank() != 0 {
			p.clk.Sleep(time.Millisecond) // keep rank 1 alive through the exchange
			return
		}
		must(p.WriteNotify(0, 0, 1, 0, 0, 64, 0, 1, 0, "op1"))
		comp := p.RequestWait(0, 4, Block)
		if len(comp) != 2 {
			t.Errorf("RequestWait returned %d completions, want 2 (write+notify)", len(comp))
		}
		for _, c := range comp {
			if c.OK || c.Tag != "op1" {
				t.Errorf("completion %+v, want OK=false Tag=op1", c)
			}
		}
		if st := p.QueueState(0); st != QueueError {
			t.Errorf("QueueState = %d, want QueueError", st)
		}
		if st := p.QueueState(1); st != QueueHealthy {
			t.Errorf("untouched queue errored: QueueState(1) = %d", st)
		}

		// Fast-fail on the errored queue: no fabric traffic, immediate
		// failed completions.
		before := p.fab.Stats().Messages
		must(p.Notify(1, 0, 3, 1, 0, "op2"))
		if got := p.fab.Stats().Messages; got != before {
			t.Errorf("post to errored queue reached the fabric (%d -> %d messages)", before, got)
		}
		comp = p.RequestWait(0, 4, Block)
		if len(comp) != 1 || comp[0].OK || comp[0].Tag != "op2" {
			t.Errorf("fast-fail completions = %+v, want one OK=false op2", comp)
		}

		// Wait must not hang across failures either.
		p.Wait(0)

		p.QueueRepair(0)
		if st := p.QueueState(0); st != QueueHealthy {
			t.Errorf("QueueState after repair = %d, want QueueHealthy", st)
		}
	})
	if n := reg.Counter("gaspi_queue_errors").Value(); n != 2 {
		t.Fatalf("gaspi_queue_errors = %d, want 2", n)
	}
}

// After an outage ends, a repaired queue must deliver a resubmitted
// operation intact.
func TestQueueRepairRestoresServiceAfterOutage(t *testing.T) {
	outEnd := 100 * time.Microsecond
	plan := fabric.FaultPlan{Outages: []fabric.Outage{
		{Link: fabric.Link{SrcNode: -1, DstNode: -1}, Start: 0, End: outEnd},
	}}
	var got NotificationID
	var gotOK bool
	withFaultyWorld(2, 1, plan, nil, func(p *Proc) {
		seg := mustCreate(p, 0, 8)
		switch p.Rank() {
		case 0:
			copy(seg.Bytes(), "payload!")
			must(p.WriteNotify(0, 0, 1, 0, 0, 8, 5, 7, 0, "w"))
			comp := p.RequestWait(0, 4, Block)
			if len(comp) != 2 || comp[0].OK {
				t.Errorf("during outage: completions %+v, want 2 failed", comp)
			}
			p.clk.Sleep(outEnd) // wait out the outage
			p.QueueRepair(0)
			must(p.WriteNotify(0, 0, 1, 0, 0, 8, 5, 7, 0, "w2"))
			comp = p.RequestWait(0, 4, Block)
			if len(comp) != 2 || !comp[0].OK || !comp[1].OK {
				t.Errorf("after repair: completions %+v, want 2 OK", comp)
			}
		case 1:
			got, gotOK = p.NotifyWaitSome(0, 0, 16, Block)
			if string(seg.Bytes()) != "payload!" {
				t.Errorf("data after recovery = %q, want %q", seg.Bytes(), "payload!")
			}
		}
	})
	if !gotOK || got != 5 {
		t.Fatalf("notification after recovery = (%d, %v), want (5, true)", got, gotOK)
	}
}

// Regression test for the NotifyWaitSome wait-recording fix: a timed wait
// that expires must advance the virtual clock by exactly the timeout (no
// busy-looping) and must record the wait on a metrics-only collector —
// previously only a full tracer saw timed waits, via a separate path.
func TestNotifyWaitSomeTimeoutRecordsWait(t *testing.T) {
	reg := obs.NewRegistry()
	col := &obs.Collector{Metrics: reg} // metrics enabled, tracer off
	const timeout = 50 * time.Microsecond
	withFaultyWorld(1, 1, fabric.FaultPlan{}, col, func(p *Proc) {
		mustCreate(p, 0, 8)
		start := p.clk.Now()
		id, ok := p.NotifyWaitSome(0, 0, 4, timeout)
		if ok || id != 0 {
			t.Errorf("NotifyWaitSome = (%d, %v), want (0, false) on timeout", id, ok)
		}
		if waited := p.clk.Now() - start; waited != timeout {
			t.Errorf("timed wait advanced the clock by %v, want exactly %v", waited, timeout)
		}
	})
	h := reg.Histogram("gaspi.notify_wait").Snapshot()
	if h.N != 1 || h.Sum != timeout {
		t.Fatalf("gaspi.notify_wait histogram n=%d sum=%v, want one %v sample", h.N, h.Sum, timeout)
	}
}

// The uninstrumented path must behave identically (nil recorder: same
// result, same modelled time, no recording machinery touched).
func TestNotifyWaitSomeTimeoutUninstrumented(t *testing.T) {
	const timeout = 50 * time.Microsecond
	withFaultyWorld(1, 1, fabric.FaultPlan{}, nil, func(p *Proc) {
		mustCreate(p, 0, 8)
		start := p.clk.Now()
		if _, ok := p.NotifyWaitSome(0, 0, 4, timeout); ok {
			t.Error("NotifyWaitSome found a notification in an empty segment")
		}
		if waited := p.clk.Now() - start; waited != timeout {
			t.Errorf("timed wait advanced the clock by %v, want exactly %v", waited, timeout)
		}
	})
}
