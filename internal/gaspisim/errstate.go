// GASPI error-state machine (DESIGN.md §9): queue health, failed-request
// completion and queue repair — the simulator's rendering of the spec's
// timeout-based error handling, under which a failed operation moves its
// queue into an error state, waits return GASPI_TIMEOUT-style results
// instead of hanging, and the application (or TAGASPI's retry policy)
// inspects queue health and purges the queue to recover.

package gaspisim

import "repro/internal/obs"

// QueueHealth is the health state of a communication queue — the
// simulator's condensation of the spec's gaspi_state_vec, which an
// application checks after a timed-out wait to find failed connections.
type QueueHealth uint8

// Queue health states.
const (
	// QueueHealthy accepts posts.
	QueueHealthy QueueHealth = iota
	// QueueError refuses posts until QueueRepair: an operation posted to
	// the queue failed, and the spec voids the queue until it is purged.
	QueueError
)

// QueueState returns the health of one queue (the gaspi_state_vec check).
// An out-of-range queue id panics with GASPI_ERR_INV_QUEUE semantics.
func (p *Proc) QueueState(queueID int) QueueHealth {
	q := p.queueAt(queueID)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.errored {
		return QueueError
	}
	return QueueHealthy
}

// QueueRepair returns an errored queue to service, modelling
// gaspi_queue_purge plus connection re-establishment: it charges a fixed
// repair cost (10x the per-operation post overhead) and clears the error
// state. Completed-request records — including the failed ones — are
// preserved for RequestWait, so no completion accounting is lost. An
// out-of-range queue id panics with GASPI_ERR_INV_QUEUE semantics.
func (p *Proc) QueueRepair(queueID int) {
	q := p.queueAt(queueID)
	p.clk.Sleep(10 * p.prof.RDMAOpOverhead)
	q.mu.Lock()
	q.errored = false
	q.mu.Unlock()
}

// completeLocalErr records nreq failed low-level requests with the given
// tag, moves the queue into the error state and wakes every waiter, so a
// blocked RequestWait or Wait observes the failure instead of hanging on
// requests that will never complete. posted distinguishes operations that
// reached the fabric (outstanding was incremented by post) from posts
// fast-failed on an already-errored queue.
func (q *queue) completeLocalErr(tag any, nreq int, posted bool) {
	q.mu.Lock()
	for i := 0; i < nreq; i++ {
		q.completed = append(q.completed, CompletedRequest{Tag: tag, OK: false})
	}
	if posted {
		q.outstanding -= nreq
	}
	q.errored = true
	q.errors++
	ws := q.waiters
	q.waiters = nil
	q.mu.Unlock()
	for _, w := range ws {
		w.Unpark()
	}
	q.p.recQueueError(q.idx)
}

// recQueueError records one failed operation on a queue: the
// gaspi_queue_errors counter plus a timeline instant on the queue's track.
func (p *Proc) recQueueError(queueID int) {
	if p.rec == nil {
		return
	}
	p.rec.Count("gaspi_queue_errors", 1)
	p.rec.Instant(int(p.rank), obs.QueueTrack(queueID), obs.CatGaspi,
		"gaspi:queue_error", p.clk.Now(), int64(queueID))
}
