package gaspisim

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/fabric"
	"repro/internal/memory"
	"repro/internal/vclock"
)

// must fails fast on simulator API errors in rank goroutines, which run
// outside the test goroutine and have no *testing.T to report to.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// mustCreate is SegmentCreate with the error turned into a panic.
func mustCreate(p *Proc, id SegmentID, size int) *memory.Segment {
	seg, err := p.SegmentCreate(id, size)
	must(err)
	return seg
}

func testProfile() fabric.Profile {
	return fabric.Profile{
		Name:               "test",
		InterNodeLatency:   time.Microsecond,
		IntraNodeLatency:   100 * time.Nanosecond,
		InterNodeBandwidth: 1e9,
		IntraNodeBandwidth: 2e9,
		EagerThreshold:     1024,
		RDMAEmulFactor:     1,
	}
}

// withWorld runs fn concurrently as every rank and waits for all.
func withWorld(ranks, queues int, fn func(p *Proc)) {
	clk := vclock.NewVirtual()
	fab := fabric.New(clk, fabric.NewTopology(ranks, 1), testProfile())
	w := NewWorld(fab, queues, 1)
	var wg sync.WaitGroup
	for r := 0; r < w.Size(); r++ {
		p := w.Proc(Rank(r))
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			fn(p)
		})
	}
	wg.Wait()
}

func TestWriteNotifyDeliversDataThenNotification(t *testing.T) {
	withWorld(2, 2, func(p *Proc) {
		seg, err := p.SegmentCreate(0, 256)
		if err != nil {
			t.Fatal(err)
		}
		switch p.Rank() {
		case 0:
			copy(seg.Bytes()[16:], "one-sided payload")
			if err := p.WriteNotify(0, 16, 1, 0, 32, 17, 10, 1, 0, "tag"); err != nil {
				t.Error(err)
			}
			p.Wait(0)
		case 1:
			id, ok := p.NotifyWaitSome(0, 10, 1, Block)
			if !ok || id != 10 {
				t.Errorf("NotifyWaitSome = %d, %v", id, ok)
			}
			// The GASPI guarantee: when the notification is visible the
			// data is already in the segment.
			if string(seg.Bytes()[32:49]) != "one-sided payload" {
				t.Errorf("segment = %q", seg.Bytes()[32:49])
			}
			v, set := p.NotifyReset(0, 10)
			if !set || v != 1 {
				t.Errorf("NotifyReset = %d, %v", v, set)
			}
			if _, set := p.NotifyReset(0, 10); set {
				t.Error("NotifyReset must clear the slot")
			}
		}
	})
}

func TestWriteWithoutNotify(t *testing.T) {
	withWorld(2, 1, func(p *Proc) {
		seg := mustCreate(p, 0, 64)
		switch p.Rank() {
		case 0:
			copy(seg.Bytes(), "silent write")
			if err := p.Write(0, 0, 1, 0, 0, 12, 0, nil); err != nil {
				t.Error(err)
			}
			p.Wait(0)
			// Signal completion out of band for the test.
			must(p.Notify(1, 0, 0, 1, 0, nil))
			p.Wait(0)
		case 1:
			p.NotifyWaitSome(0, 0, 1, Block)
			if string(seg.Bytes()[:12]) != "silent write" {
				t.Errorf("segment = %q", seg.Bytes()[:12])
			}
		}
	})
}

func TestReadPullsRemoteData(t *testing.T) {
	withWorld(2, 1, func(p *Proc) {
		seg := mustCreate(p, 0, 128)
		switch p.Rank() {
		case 0:
			// Wait for rank 1 to populate, then read it.
			p.NotifyWaitSome(0, 5, 1, Block)
			if err := p.Read(0, 0, 1, 0, 64, 9, 0, "read-tag"); err != nil {
				t.Error(err)
			}
			reqs := p.RequestWait(0, 8, Block)
			if len(reqs) != 1 || reqs[0].Tag != "read-tag" || !reqs[0].OK {
				t.Errorf("RequestWait = %+v", reqs)
			}
			if string(seg.Bytes()[:9]) != "pull me 9"[:9] {
				t.Errorf("read data = %q", seg.Bytes()[:9])
			}
		case 1:
			copy(seg.Bytes()[64:], "pull me 9")
			must(p.Notify(0, 0, 5, 1, 0, nil))
			p.Wait(0)
		}
	})
}

func TestWriteNotifyYieldsTwoLowLevelRequests(t *testing.T) {
	// §IV-D: a write+notify expands into two tagged low-level requests.
	withWorld(2, 1, func(p *Proc) {
		mustCreate(p, 0, 64)
		switch p.Rank() {
		case 0:
			must(p.WriteNotify(0, 0, 1, 0, 0, 8, 0, 1, 0, "wn"))
			var got []CompletedRequest
			for len(got) < 2 {
				got = append(got, p.RequestWait(0, 4, Block)...)
			}
			if len(got) != 2 {
				t.Fatalf("got %d completed requests, want 2", len(got))
			}
			for _, r := range got {
				if r.Tag != "wn" || !r.OK {
					t.Errorf("completed = %+v", r)
				}
			}
		case 1:
			p.NotifyWaitSome(0, 0, 1, Block)
		}
	})
}

func TestPlainWriteYieldsOneRequest(t *testing.T) {
	withWorld(2, 1, func(p *Proc) {
		mustCreate(p, 0, 64)
		switch p.Rank() {
		case 0:
			must(p.Write(0, 0, 1, 0, 0, 8, 0, "w"))
			got := p.RequestWait(0, 4, Block)
			if len(got) != 1 || got[0].Tag != "w" {
				t.Fatalf("got %+v, want one request tagged w", got)
			}
			// Nothing else must surface.
			if extra := p.RequestWait(0, 4, Test); len(extra) != 0 {
				t.Fatalf("unexpected extra completions %+v", extra)
			}
		case 1:
			p.clk.Sleep(time.Millisecond)
		}
	})
}

func TestSameQueueSameTargetOrdering(t *testing.T) {
	// Writes to increasing offsets on one queue must apply in order: the
	// last write wins on an overlapping cell.
	const n = 64
	withWorld(2, 1, func(p *Proc) {
		seg := mustCreate(p, 0, 8)
		switch p.Rank() {
		case 0:
			src := mustCreate(p, 1, n)
			for i := 0; i < n; i++ {
				src.Bytes()[i] = byte(i + 1)
				must(p.Write(1, i, 1, 0, 0, 1, 0, nil))
			}
			must(p.Notify(1, 0, 0, 1, 0, nil))
			p.Wait(0)
		case 1:
			p.NotifyWaitSome(0, 0, 1, Block)
			if seg.Bytes()[0] != byte(n) {
				t.Errorf("cell = %d, want %d (last write must win)", seg.Bytes()[0], n)
			}
		}
	})
}

func TestNotificationAfterDataSameQueue(t *testing.T) {
	// A notify posted after a write on the same queue must not arrive
	// before the write's data.
	withWorld(2, 1, func(p *Proc) {
		seg := mustCreate(p, 0, 1024)
		switch p.Rank() {
		case 0:
			copy(seg.Bytes(), bytes.Repeat([]byte{0xAB}, 1024))
			must(p.Write(0, 0, 1, 0, 0, 1024, 0, nil))
			must(p.Notify(1, 0, 3, 7, 0, nil))
			p.Wait(0)
		case 1:
			p.NotifyWaitSome(0, 3, 1, Block)
			for i, b := range seg.Bytes() {
				if b != 0xAB {
					t.Fatalf("byte %d = %x before notification", i, b)
				}
			}
		}
	})
}

func TestQueuesAreIndependentResources(t *testing.T) {
	// Posting on distinct queues must not serialize on one resource.
	prof := testProfile()
	prof.RDMAOpOverhead = 10 * time.Microsecond
	clk := vclock.NewVirtual()
	fab := fabric.New(clk, fabric.NewTopology(2, 1), prof)
	w := NewWorld(fab, 4, 1)
	var wg sync.WaitGroup
	var oneQ, fourQ time.Duration
	runPosts := func(p *Proc, queues int) time.Duration {
		t0 := p.clk.Now()
		var inner sync.WaitGroup
		for c := 0; c < 4; c++ {
			c := c
			inner.Add(1)
			p.clk.Go(func() {
				defer inner.Done()
				for i := 0; i < 4; i++ {
					must(p.Notify(1, 0, NotificationID(c*4+i), 1, c%queues, nil))
				}
			})
		}
		p.clk.Unregister()
		inner.Wait()
		p.clk.Register()
		for q := 0; q < queues; q++ {
			p.Wait(q)
		}
		return p.clk.Now() - t0
	}
	wg.Add(2)
	clk.Go(func() {
		defer wg.Done()
		p := w.Proc(0)
		mustCreate(p, 0, 64)
		oneQ = runPosts(p, 1)
		fourQ = runPosts(p, 4)
	})
	clk.Go(func() {
		defer wg.Done()
		p := w.Proc(1)
		mustCreate(p, 0, 64)
		clk.Sleep(time.Second)
	})
	wg.Wait()
	if fourQ >= oneQ {
		t.Fatalf("4 queues (%v) not faster than 1 queue (%v): queue resources not independent", fourQ, oneQ)
	}
}

func TestNotifyWaitSomeTimeout(t *testing.T) {
	withWorld(1, 1, func(p *Proc) {
		mustCreate(p, 0, 64)
		t0 := p.clk.Now()
		_, ok := p.NotifyWaitSome(0, 0, 8, 50*time.Microsecond)
		if ok {
			t.Error("no notification was sent; want timeout")
		}
		if d := p.clk.Now() - t0; d != 50*time.Microsecond {
			t.Errorf("timeout took %v, want 50µs", d)
		}
	})
}

func TestNotifyWaitSomeRange(t *testing.T) {
	withWorld(2, 1, func(p *Proc) {
		mustCreate(p, 0, 64)
		switch p.Rank() {
		case 0:
			must(p.Notify(1, 0, 12, 99, 0, nil))
			p.Wait(0)
		case 1:
			// Waiting on [10, 20): id 12 must wake it.
			id, ok := p.NotifyWaitSome(0, 10, 10, Block)
			if !ok || id != 12 {
				t.Errorf("got id %d ok %v", id, ok)
			}
			v, _ := p.NotifyReset(0, 12)
			if v != 99 {
				t.Errorf("value = %d", v)
			}
			// Out-of-range slots must not be set.
			if _, ok := p.NotifyWaitSome(0, 0, 10, Test); ok {
				t.Error("unexpected notification below the range")
			}
		}
	})
}

func TestRequestWaitTestIsNonBlocking(t *testing.T) {
	withWorld(1, 1, func(p *Proc) {
		mustCreate(p, 0, 64)
		t0 := p.clk.Now()
		if got := p.RequestWait(0, 8, Test); len(got) != 0 {
			t.Errorf("got %+v from idle queue", got)
		}
		if d := p.clk.Now() - t0; d > time.Microsecond {
			t.Errorf("Test poll took %v", d)
		}
	})
}

func TestSubmitValidation(t *testing.T) {
	withWorld(2, 1, func(p *Proc) {
		mustCreate(p, 0, 64)
		if p.Rank() != 0 {
			return
		}
		if err := p.Write(0, 0, 1, 0, 0, 8, 5, nil); err == nil {
			t.Error("out-of-range queue must fail")
		}
		if err := p.Write(3, 0, 1, 0, 0, 8, 0, nil); err == nil {
			t.Error("unknown local segment must fail")
		}
		if err := p.Write(0, 60, 1, 0, 0, 8, 0, nil); err == nil {
			t.Error("out-of-range local slice must fail")
		}
		if err := p.Write(0, 0, 5, 0, 0, 8, 0, nil); err == nil {
			t.Error("invalid remote rank must fail")
		}
	})
}

func TestSegmentCreateDuplicate(t *testing.T) {
	withWorld(1, 1, func(p *Proc) {
		if _, err := p.SegmentCreate(0, 64); err != nil {
			t.Fatal(err)
		}
		if _, err := p.SegmentCreate(0, 64); err == nil {
			t.Fatal("duplicate segment id must fail")
		}
	})
}

// Property: for random sequences of write_notify operations spread over
// queues, every notification eventually arrives with its exact payload
// written (value = checksum of the data).
func TestQuickWriteNotifyIntegrity(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%24) + 1
		type op struct {
			off   int
			size  int
			queue int
			data  []byte
		}
		ops := make([]op, k)
		off := 0
		for i := range ops {
			sz := 1 + rng.Intn(128)
			ops[i] = op{off: off, size: sz, queue: rng.Intn(3), data: make([]byte, sz)}
			rng.Read(ops[i].data)
			off += sz
		}
		total := off
		good := true
		var mu sync.Mutex
		withWorld(2, 3, func(p *Proc) {
			seg := mustCreate(p, 0, total)
			switch p.Rank() {
			case 0:
				src := mustCreate(p, 1, total)
				for i, o := range ops {
					copy(src.Bytes()[o.off:], o.data)
					must(p.WriteNotify(1, o.off, 1, 0, o.off, o.size,
						NotificationID(i), int64(o.size), o.queue, i))
				}
				for q := 0; q < 3; q++ {
					p.Wait(q)
				}
			case 1:
				for i := 0; i < k; i++ {
					id, ok := p.NotifyWaitSome(0, 0, k, Block)
					if !ok {
						mu.Lock()
						good = false
						mu.Unlock()
						return
					}
					v, _ := p.NotifyReset(0, id)
					o := ops[id]
					if v != int64(o.size) || !bytes.Equal(seg.Bytes()[o.off:o.off+o.size], o.data) {
						mu.Lock()
						good = false
						mu.Unlock()
						return
					}
					_ = i
				}
			}
		})
		return good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteNotify(b *testing.B) {
	clk := vclock.NewVirtual()
	fab := fabric.New(clk, fabric.NewTopology(2, 1), testProfile())
	w := NewWorld(fab, 2, 1)
	var wg sync.WaitGroup
	wg.Add(2)
	clk.Go(func() {
		p := w.Proc(0)
		defer wg.Done()
		mustCreate(p, 0, 4096)
		for i := 0; i < b.N; i++ {
			must(p.WriteNotify(0, 0, 1, 0, 0, 1024, 0, 1, 0, nil))
			for got := 0; got < 2; {
				got += len(p.RequestWait(0, 4, Block))
			}
		}
	})
	clk.Go(func() {
		p := w.Proc(1)
		defer wg.Done()
		mustCreate(p, 0, 4096)
		for i := 0; i < b.N; i++ {
			p.NotifyWaitSome(0, 0, 1, Block)
			p.NotifyReset(0, 0)
		}
	})
	wg.Wait()
}
