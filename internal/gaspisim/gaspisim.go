// Package gaspisim implements the GASPI one-sided interface of §II-B of the
// paper over the simulated fabric: memory segments, communication queues,
// write/read/write_notify operations and remote notifications, plus the
// fine-grained local-completion extension the paper adds to GASPI in §IV-C
// (gaspi_operation_submit with a per-operation tag and gaspi_request_wait
// returning the tags of completed low-level requests).
//
// Modelled properties the paper relies on:
//
//   - Operations posted to the same queue towards the same target arrive in
//     posting order; the notification of a write_notify arrives just after
//     its data is written in the remote memory.
//   - Queues multiplex communications: each queue has its own post
//     resource, so concurrent posters contend per queue, not globally —
//     the contrast with the MPI_THREAD_MULTIPLE lock of package mpisim.
//   - A write+notify expands to two low-level requests (one for the write,
//     one for the notify), both tagged with the submitter's tag, exactly
//     the accounting TAGASPI's event counters expect (§IV-D).
package gaspisim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/vclock"
	"repro/internal/vsync"
)

// Rank aliases the fabric rank type (gaspi_rank_t).
type Rank = fabric.Rank

// SegmentID aliases the memory segment identifier (gaspi_segment_id_t).
type SegmentID = memory.SegmentID

// NotificationID identifies one notification slot within a segment
// (gaspi_notification_id_t).
type NotificationID int

// Timeout sentinels for RequestWait and NotifyWaitSome.
const (
	// Test polls without blocking (GASPI_TEST).
	Test time.Duration = 0
	// Block waits indefinitely (GASPI_BLOCK).
	Block time.Duration = -1
)

// OpType enumerates the §IV-C submittable operation types.
type OpType uint8

// Operation types.
const (
	OpWrite OpType = iota
	OpWriteNotify
	OpNotify
	OpRead
)

// Operation is the descriptor accepted by Submit — the
// gaspi_operation_submit extension: any one-sided operation plus a caller
// tag identifying the low-level requests it creates.
type Operation struct {
	Type      OpType
	Tag       any // opaque; returned by RequestWait on local completion
	LocalSeg  SegmentID
	LocalOff  int
	Remote    Rank
	RemoteSeg SegmentID
	RemoteOff int
	Size      int
	NotifyID  NotificationID
	NotifyVal int64
	Queue     int
}

// CompletedRequest reports one locally-completed low-level request, as
// returned by the gaspi_request_wait extension. OK is false when the
// request failed and its queue entered the error state (errstate.go).
type CompletedRequest struct {
	Tag any
	OK  bool
}

// World owns the GASPI processes of one simulated job.
type World struct {
	fab   *fabric.Fabric
	procs []*Proc
}

// NewWorld creates one Proc per fabric rank with the given queue count —
// the collective effect of gaspi_proc_init across the job.
func NewWorld(fab *fabric.Fabric, queues int, seed int64) *World {
	if queues <= 0 {
		panic(fmt.Sprintf("gaspisim: invalid queue count %d", queues))
	}
	w := &World{fab: fab}
	n := fab.Topology().Ranks()
	w.procs = make([]*Proc, n)
	for r := 0; r < n; r++ {
		p := &Proc{
			world:       w,
			rank:        Rank(r),
			fab:         fab,
			clk:         fab.Clock(),
			prof:        fab.Profile(),
			reg:         memory.NewRegistry(),
			jit:         fabric.NewJitterer(fabric.GASPIJitterSeed(seed, r), fab.Profile().MPIJitter/4),
			segs:        make(map[SegmentID]*segState),
			notifyName:  fmt.Sprintf("gaspi-notify@%d", r),
			reqwaitName: fmt.Sprintf("gaspi-reqwait@%d", r),
			waitName:    fmt.Sprintf("gaspi-wait@%d", r),
		}
		p.queues = make([]*queue, queues)
		for q := range p.queues {
			p.queues[q] = &queue{p: p, idx: q, res: vsync.NewResource(fab.Clock())}
		}
		w.procs[r] = p
		fab.Register(Rank(r), fabric.ClassGASPI, p.deliver)
	}
	return w
}

// Proc returns the process of the given rank.
func (w *World) Proc(r Rank) *Proc { return w.procs[r] }

// SetRecorder installs the observability recorder on every process. It must
// be called before any traffic; a nil recorder (the default) keeps the
// world uninstrumented.
func (w *World) SetRecorder(rec obs.Recorder) {
	for _, p := range w.procs {
		p.rec = rec
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.procs) }

// Proc is one GASPI process.
type Proc struct {
	world *World
	rank  Rank
	fab   *fabric.Fabric
	clk   vclock.Clock
	prof  fabric.Profile
	jit   *fabric.Jitterer
	reg   *memory.Registry
	rec   obs.Recorder // nil: uninstrumented

	queues []*queue

	// Diagnostic parker labels, built once per process instead of one
	// Sprintf per blocking wait.
	notifyName, reqwaitName, waitName string

	mu      sync.Mutex
	segs    map[SegmentID]*segState
	segWait map[SegmentID]chan struct{} // closed by SegmentCreate; see waitSegment
}

// segState holds a segment's notification space. flows carries the causal
// flow id of each fulfilled-but-not-yet-observed notification (instrumented
// runs only): the first observer — a NotifyWaitSome wake or a NotifyReset —
// consumes it and finishes the notification's flow edge.
type segState struct {
	notifs  map[NotificationID]int64
	flows   map[NotificationID]int64
	waiters []*notifWaiter
}

type notifWaiter struct {
	begin, num NotificationID
	p          vclock.Parker
	fired      bool
}

// queue is one communication queue: a post resource plus the completed
// low-level request list of the §IV-C extension and the error state of
// the spec's timeout-based fault handling (errstate.go).
type queue struct {
	p           *Proc
	idx         int
	res         *vsync.Resource
	mu          sync.Mutex
	completed   []CompletedRequest
	outstanding int
	waiters     []vclock.Parker // RequestWait / Wait blockers
	errored     bool            // QueueError: posts fast-fail until QueueRepair
	errors      int64           // failed operations observed, for Snapshot
}

// Rank returns the process rank (gaspi_proc_rank).
func (p *Proc) Rank() Rank { return p.rank }

// Clock returns the process's time source (shared by every rank of the
// job). Task-aware layers use it to schedule retry back-off in modelled
// time.
func (p *Proc) Clock() vclock.Clock { return p.clk }

// Size returns the world size (gaspi_proc_num).
func (p *Proc) Size() int { return len(p.world.procs) }

// Queues returns the number of communication queues (gaspi_queue_num).
func (p *Proc) Queues() int { return len(p.queues) }

// QueueStats returns the post-resource statistics of queue q. An
// out-of-range queue id panics with GASPI_ERR_INV_QUEUE semantics.
func (p *Proc) QueueStats(q int) vsync.ResourceStats { return p.queueAt(q).res.Stats() }

// SegmentCreate allocates and registers a zeroed segment
// (gaspi_segment_create).
func (p *Proc) SegmentCreate(id SegmentID, size int) (*memory.Segment, error) {
	seg, err := p.reg.Create(id, size)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.segs[id] = &segState{notifs: make(map[NotificationID]int64)}
	if ch, ok := p.segWait[id]; ok {
		delete(p.segWait, id)
		close(ch) // release deliveries racing this registration (waitSegment)
	}
	p.mu.Unlock()
	return seg, nil
}

// waitSegment blocks the calling delivery until this rank has registered
// segment id. A delivery and a registration sharing one virtual instant —
// a zero-cost profile runs its whole setup at t=0 — have no modelled-time
// order, and real GASPI's gaspi_segment_create is collective, so an app
// whose target rank creates the segment "now" is correct even if that
// rank's goroutine has not reached the call yet in host time. The wait
// costs no modelled time: the blocked courier holds the virtual clock
// still, so the registration due at this instant still happens at it. A
// registration that never comes — the app creates the segment at a LATER
// virtual instant than the write targeting it — is an application bug;
// the host timeout turns it into a diagnosable panic instead of a hang.
func (p *Proc) waitSegment(id SegmentID) {
	p.mu.Lock()
	if _, ok := p.segs[id]; ok {
		p.mu.Unlock()
		return
	}
	ch, ok := p.segWait[id]
	if !ok {
		if p.segWait == nil {
			p.segWait = make(map[SegmentID]chan struct{})
		}
		ch = make(chan struct{})
		p.segWait[id] = ch
	}
	p.mu.Unlock()
	select {
	case <-ch:
	//lint:ignore detlint host-side stall watchdog: correct runs never reach this arm, it only converts an app-level ordering bug into a panic
	case <-time.After(10 * time.Second):
		panic(fmt.Sprintf("gaspisim: delivery to rank %d stalled: segment %d is not registered and no registration arrived at the current virtual instant (segment created after the write targeting it?)", p.rank, id))
	}
}

// Segment returns a registered segment (gaspi_segment_ptr).
func (p *Proc) Segment(id SegmentID) (*memory.Segment, error) {
	return p.reg.Lookup(id)
}

// protocol message payload. Pooled: once a consumer passes it to putGMsg
// nothing may touch it again.
//
//tagalint:pooled
type gMsg struct {
	kind      OpType
	src       Rank
	seg       SegmentID
	off       int
	data      []byte
	size      int
	notify    bool
	notifyID  NotificationID
	notifyVal int64
	postTs    time.Duration // virtual post time; stamped only when recording

	// read protocol
	replySeg SegmentID
	replyOff int
	replyQ   *queue
	replyTag any
}

// gMsgPool recycles protocol message payloads. A message is released
// exactly once, by the rank that retired it in deliver (its OnInjected
// hook, if any, ran strictly earlier, on the injection courier), and
// keeps its data array, so steady-state traffic allocates neither payload
// structs nor fresh snapshot buffers.
var gMsgPool = sync.Pool{New: func() any { return new(gMsg) }}

// newGMsg returns a pooled message with every field zero and an empty
// (capacity-retaining) data buffer.
//
//tagalint:hotpath
func newGMsg() *gMsg { return gMsgPool.Get().(*gMsg) }

// putGMsg zeroes m, keeps its data array for the next snapshot, and
// returns it to the pool.
//
//tagalint:pooled release
//tagalint:hotpath
func putGMsg(m *gMsg) {
	data := m.data
	*m = gMsg{}
	if data != nil {
		m.data = data[:0]
	}
	gMsgPool.Put(m)
}

// queueAt returns the queue with the given id, failing a bad index the
// way the spec fails a bad queue argument (GASPI_ERR_INV_QUEUE) — with an
// explicit diagnostic instead of a bare slice-bounds panic.
func (p *Proc) queueAt(queueID int) *queue {
	if queueID < 0 || queueID >= len(p.queues) {
		panic(fmt.Sprintf("gaspisim: GASPI_ERR_INV_QUEUE: queue %d out of range on rank %d (process has %d queues)",
			queueID, p.rank, len(p.queues)))
	}
	return p.queues[queueID]
}

// Submit posts one operation to its queue — gaspi_operation_submit of
// §IV-C. It returns once the operation is handed to the NIC queue; local
// completion is observed through RequestWait with the operation's Tag.
func (p *Proc) Submit(op Operation) error {
	if op.Queue < 0 || op.Queue >= len(p.queues) {
		return fmt.Errorf("gaspisim: queue %d out of range", op.Queue)
	}
	q := p.queues[op.Queue]
	if op.Remote < 0 || int(op.Remote) >= p.Size() {
		return fmt.Errorf("gaspisim: invalid remote rank %d", op.Remote)
	}

	// A queue in the error state refuses posts until repaired
	// (gaspi_queue_purge): fail the operation locally, without touching
	// the fabric, so the caller's completion accounting observes the same
	// nreq failed low-level requests through RequestWait as it would for
	// a fabric-level failure.
	q.mu.Lock()
	errored := q.errored
	q.mu.Unlock()
	if errored {
		nreq := 1
		if op.Type == OpWriteNotify {
			nreq = 2
		}
		q.completeLocalErr(op.Tag, nreq, false)
		return nil
	}

	switch op.Type {
	case OpWrite, OpWriteNotify:
		src, err := p.reg.Lookup(op.LocalSeg)
		if err != nil {
			return err
		}
		buf, err := src.Slice(op.LocalOff, op.Size)
		if err != nil {
			return err
		}
		nreq := 1
		if op.Type == OpWriteNotify {
			nreq = 2 // write + notify, as GPI-2 chains two ibverbs requests
		}
		m := newGMsg()
		m.kind, m.src, m.seg, m.off = op.Type, p.rank, op.RemoteSeg, op.RemoteOff
		m.size, m.notify = op.Size, op.Type == OpWriteNotify
		m.notifyID, m.notifyVal = op.NotifyID, op.NotifyVal
		q.post(op, func() {
			if p.rec != nil {
				m.postTs = p.clk.Now()
			}
			fm := fabric.NewMessage()
			fm.Src, fm.Dst, fm.Class, fm.Lane = p.rank, op.Remote, fabric.ClassGASPI, op.Queue
			fm.Size, fm.Payload = op.Size, m
			fm.OnInjected = func() {
				m.data = append(m.data[:0], buf...)
				q.completeLocal(op.Tag, nreq)
				p.recComplete(op.Queue, op.Size, m.postTs)
			}
			fm.OnFailed = func() { q.completeLocalErr(op.Tag, nreq, true) }
			p.fab.Send(fm)
		}, nreq)
		return nil

	case OpNotify:
		m := newGMsg()
		m.kind, m.src, m.seg = OpNotify, p.rank, op.RemoteSeg
		m.notify, m.notifyID, m.notifyVal = true, op.NotifyID, op.NotifyVal
		q.post(op, func() {
			if p.rec != nil {
				m.postTs = p.clk.Now()
			}
			fm := fabric.NewMessage()
			fm.Src, fm.Dst, fm.Class, fm.Lane = p.rank, op.Remote, fabric.ClassGASPI, op.Queue
			fm.Control, fm.Payload = true, m
			fm.OnInjected = func() {
				q.completeLocal(op.Tag, 1)
				p.recComplete(op.Queue, 0, m.postTs)
			}
			fm.OnFailed = func() { q.completeLocalErr(op.Tag, 1, true) }
			p.fab.Send(fm)
		}, 1)
		return nil

	case OpRead:
		if _, err := p.reg.Lookup(op.LocalSeg); err != nil {
			return err
		}
		m := newGMsg()
		m.kind, m.src, m.seg, m.off = OpRead, p.rank, op.RemoteSeg, op.RemoteOff
		m.size, m.replySeg, m.replyOff = op.Size, op.LocalSeg, op.LocalOff
		m.replyQ, m.replyTag = q, op.Tag
		q.post(op, func() {
			if p.rec != nil {
				m.postTs = p.clk.Now()
			}
			fm := fabric.NewMessage()
			fm.Src, fm.Dst, fm.Class, fm.Lane = p.rank, op.Remote, fabric.ClassGASPI, op.Queue
			fm.Control, fm.Payload = true, m
			// The response direction carries no hook: like hardware
			// read completion, it is retransmitted transparently.
			fm.OnFailed = func() { q.completeLocalErr(op.Tag, 1, true) }
			p.fab.Send(fm)
		}, 1)
		return nil
	}
	return fmt.Errorf("gaspisim: unknown operation type %d", op.Type)
}

// post charges the queue's post resource and runs send, tracking the
// outstanding low-level request count.
func (q *queue) post(op Operation, send func(), nreq int) {
	q.mu.Lock()
	q.outstanding += nreq
	q.mu.Unlock()
	rec := q.p.rec
	var start time.Duration
	if rec != nil {
		start = q.p.clk.Now()
	}
	waited := q.res.Use(q.p.jit.Apply(q.p.prof.RDMAOpOverhead))
	if rec != nil {
		rec.Latency("gaspi.post_wait", waited)
		rec.Span(int(q.p.rank), obs.QueueTrack(op.Queue), obs.CatGaspi,
			opSpanName(op.Type), start, q.p.clk.Now(), int64(op.Size))
	}
	send()
}

// opSpanName is the timeline label of a posted operation.
func opSpanName(t OpType) string {
	switch t {
	case OpWrite:
		return "gaspi:write"
	case OpWriteNotify:
		return "gaspi:write_notify"
	case OpNotify:
		return "gaspi:notify"
	case OpRead:
		return "gaspi:read"
	}
	return "gaspi:op"
}

// recComplete records a local completion: a timeline instant on the queue's
// track and the post-to-completion latency. postTs comes from the posting
// rank, which is valid across goroutines because all ranks share one
// virtual clock.
func (p *Proc) recComplete(queueID, size int, postTs time.Duration) {
	if p.rec == nil {
		return
	}
	now := p.clk.Now()
	p.rec.Instant(int(p.rank), obs.QueueTrack(queueID), obs.CatGaspi,
		"gaspi:complete", now, int64(size))
	p.rec.Latency("gaspi.local_completion", now-postTs)
}

// completeLocal records nreq completed low-level requests with the given
// tag and wakes waiters.
func (q *queue) completeLocal(tag any, nreq int) {
	q.mu.Lock()
	for i := 0; i < nreq; i++ {
		q.completed = append(q.completed, CompletedRequest{Tag: tag, OK: true})
	}
	q.outstanding -= nreq
	ws := q.waiters
	q.waiters = nil
	q.mu.Unlock()
	for _, w := range ws {
		w.Unpark()
	}
}

// WriteNotify posts a write+notify (gaspi_write_notify, §II-B): size bytes
// from the local segment to the remote one, followed by a notification
// that arrives just after the data.
func (p *Proc) WriteNotify(localSeg SegmentID, localOff int, remote Rank,
	remoteSeg SegmentID, remoteOff, size int,
	id NotificationID, value int64, queueID int, tag any) error {
	return p.Submit(Operation{
		Type: OpWriteNotify, Tag: tag,
		LocalSeg: localSeg, LocalOff: localOff,
		Remote: remote, RemoteSeg: remoteSeg, RemoteOff: remoteOff, Size: size,
		NotifyID: id, NotifyVal: value, Queue: queueID,
	})
}

// Write posts a plain one-sided write (gaspi_write).
func (p *Proc) Write(localSeg SegmentID, localOff int, remote Rank,
	remoteSeg SegmentID, remoteOff, size, queueID int, tag any) error {
	return p.Submit(Operation{
		Type: OpWrite, Tag: tag,
		LocalSeg: localSeg, LocalOff: localOff,
		Remote: remote, RemoteSeg: remoteSeg, RemoteOff: remoteOff, Size: size,
		Queue: queueID,
	})
}

// Notify posts a pure notification to the remote segment's space
// (gaspi_notify).
func (p *Proc) Notify(remote Rank, remoteSeg SegmentID,
	id NotificationID, value int64, queueID int, tag any) error {
	return p.Submit(Operation{
		Type: OpNotify, Tag: tag,
		Remote: remote, RemoteSeg: remoteSeg,
		NotifyID: id, NotifyVal: value, Queue: queueID,
	})
}

// Read posts a one-sided read (gaspi_read): size bytes from the remote
// segment into the local one. Local completion (the tag surfacing in
// RequestWait) means the data has arrived.
func (p *Proc) Read(localSeg SegmentID, localOff int, remote Rank,
	remoteSeg SegmentID, remoteOff, size, queueID int, tag any) error {
	return p.Submit(Operation{
		Type: OpRead, Tag: tag,
		LocalSeg: localSeg, LocalOff: localOff,
		Remote: remote, RemoteSeg: remoteSeg, RemoteOff: remoteOff, Size: size,
		Queue: queueID,
	})
}

// deliver is the fabric handler for GASPI traffic. Each payload is
// retired to the pool after its last field read (its OnInjected hook ran
// strictly earlier, on the injection courier).
//
//tagalint:hotpath
func (p *Proc) deliver(fm *fabric.Message) {
	m := fm.Payload.(*gMsg)
	switch m.kind {
	case OpWrite, OpWriteNotify:
		p.waitSegment(m.seg)
		seg, err := p.reg.Lookup(m.seg)
		if err != nil {
			panic(fmt.Sprintf("gaspisim: write to rank %d: %v", p.rank, err))
		}
		dst, err := seg.Slice(m.off, len(m.data))
		if err != nil {
			panic(fmt.Sprintf("gaspisim: write outside segment: %v", err))
		}
		copy(dst, m.data)
		if m.notify {
			nflow := p.notifyFlowOf(fm, m)
			p.setNotification(m.seg, m.notifyID, m.notifyVal, nflow)
			p.recNotify(m.notifyID, m.postTs, nflow)
		}
		putGMsg(m)

	case OpNotify:
		p.waitSegment(m.seg)
		nflow := p.notifyFlowOf(fm, m)
		p.setNotification(m.seg, m.notifyID, m.notifyVal, nflow)
		p.recNotify(m.notifyID, m.postTs, nflow)
		putGMsg(m)

	case OpRead:
		p.waitSegment(m.seg)
		seg, err := p.reg.Lookup(m.seg)
		if err != nil {
			panic(fmt.Sprintf("gaspisim: read at rank %d: %v", p.rank, err))
		}
		src, err := seg.Slice(m.off, m.size)
		if err != nil {
			panic(fmt.Sprintf("gaspisim: read outside segment: %v", err))
		}
		resp := newGMsg()
		resp.kind, resp.src = opReadResp, p.rank
		resp.seg, resp.off, resp.postTs = m.replySeg, m.replyOff, m.postTs
		resp.data = append(resp.data[:0], src...)
		resp.replyQ, resp.replyTag = m.replyQ, m.replyTag
		reqSrc, size := m.src, m.size
		putGMsg(m)
		out := fabric.NewMessage()
		out.Src, out.Dst, out.Class, out.Lane = p.rank, reqSrc, fabric.ClassGASPI, 0
		out.Size, out.Payload = size, resp
		p.fab.Send(out)

	case opReadResp:
		seg, err := p.reg.Lookup(m.seg)
		if err != nil {
			panic(fmt.Sprintf("gaspisim: read response at rank %d: %v", p.rank, err))
		}
		dst, err := seg.Slice(m.off, len(m.data))
		if err != nil {
			panic(fmt.Sprintf("gaspisim: read response outside segment: %v", err))
		}
		n := copy(dst, m.data)
		replyQ, replyTag, postTs := m.replyQ, m.replyTag, m.postTs
		putGMsg(m)
		replyQ.completeLocal(replyTag, 1)
		p.recComplete(replyQ.idx, n, postTs)
	}
}

// recNotify records a fulfilled remote notification: an instant on the
// notification track plus the post-to-fulfilment latency (the figure the
// paper's §IV-D polling-frequency discussion turns on). When the
// notification carries a causal flow id, fulfilment starts the
// notification's flow edge; the waiter that observes it finishes it.
func (p *Proc) recNotify(id NotificationID, postTs time.Duration, flow int64) {
	if p.rec == nil {
		return
	}
	now := p.clk.Now()
	p.rec.Instant(int(p.rank), obs.TrackNotify, obs.CatNotify,
		"notify:fulfill", now, int64(id))
	if flow != 0 {
		p.rec.Flow(int(p.rank), obs.TrackNotify, obs.CatNotify, "flow:notify", 's', now, flow)
	}
	p.rec.Latency("gaspi.notify_latency", now-postTs)
}

// notifyFlowOf derives a notification's causal-flow id from the carrying
// message's fabric flow id, continuing the message's edge chain into the
// waiter that eventually observes the notification. Zero (no edge) when
// uninstrumented.
//
//tagalint:hotpath
func (p *Proc) notifyFlowOf(fm *fabric.Message, m *gMsg) int64 {
	if p.rec == nil || fm.Flow == 0 {
		return 0
	}
	return obs.FlowID(obs.FlowKindNotify, fm.Flow, int64(m.seg), int64(m.notifyID))
}

// takeNotifyFlow removes and returns the stashed flow id of a fulfilled
// notification, zero if none: only the first observer finishes the edge.
func (p *Proc) takeNotifyFlow(seg SegmentID, id NotificationID) int64 {
	if p.rec == nil {
		return 0
	}
	p.mu.Lock()
	st, ok := p.segs[seg]
	if !ok || st.flows == nil {
		p.mu.Unlock()
		return 0
	}
	f := st.flows[id]
	if f != 0 {
		delete(st.flows, id)
	}
	p.mu.Unlock()
	return f
}

// opReadResp is the internal read-response kind (not user-submittable).
const opReadResp OpType = 0xFF

// setNotification stores a notification value (stashing its causal flow id
// when nonzero) and wakes matching waiters.
func (p *Proc) setNotification(seg SegmentID, id NotificationID, val int64, flow int64) {
	p.mu.Lock()
	st, ok := p.segs[seg]
	if !ok {
		p.mu.Unlock()
		panic(fmt.Sprintf("gaspisim: notification for unknown segment %d on rank %d", seg, p.rank))
	}
	st.notifs[id] = val
	if flow != 0 {
		if st.flows == nil {
			st.flows = make(map[NotificationID]int64)
		}
		st.flows[id] = flow
	}
	var wake []*notifWaiter
	keep := st.waiters[:0]
	for _, w := range st.waiters {
		if id >= w.begin && id < w.begin+w.num {
			w.fired = true
			wake = append(wake, w)
		} else {
			keep = append(keep, w)
		}
	}
	st.waiters = keep
	p.mu.Unlock()
	for _, w := range wake {
		w.p.Unpark()
	}
}

// NotifyReset atomically reads and clears a notification slot, returning
// its value and whether it was set (gaspi_notify_reset). Resetting a slot
// whose flow edge is still unobserved finishes the edge at the reset time —
// this is the observation point of TAGASPI's polling service.
func (p *Proc) NotifyReset(seg SegmentID, id NotificationID) (int64, bool) {
	p.mu.Lock()
	st, ok := p.segs[seg]
	if !ok {
		p.mu.Unlock()
		return 0, false
	}
	v, set := st.notifs[id]
	var flow int64
	if set {
		delete(st.notifs, id)
		if st.flows != nil {
			flow = st.flows[id]
			if flow != 0 {
				delete(st.flows, id)
			}
		}
	}
	p.mu.Unlock()
	if flow != 0 && p.rec != nil {
		p.rec.Flow(int(p.rank), obs.TrackNotify, obs.CatNotify, "flow:notify",
			'f', p.clk.Now(), flow)
	}
	return v, set
}

// NotifyTest reports whether a notification slot is set, without
// resetting — gaspi_notify_waitsome with GASPI_TEST, minus the reset.
func (p *Proc) NotifyTest(seg SegmentID, id NotificationID) (int64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.segs[seg]
	if !ok {
		return 0, false
	}
	v, set := st.notifs[id]
	return v, set
}

// NotifyWaitSome blocks until some notification in [begin, begin+num) is
// set, returning its id (gaspi_notify_waitsome). With timeout Test it polls
// once; with Block it waits indefinitely; otherwise it waits at most the
// timeout and returns ok=false on expiry — the GASPI_TIMEOUT result the
// spec's error-handling idiom is built on. Every blocking or timed wait —
// including one that times out — records its span and a
// "gaspi.notify_wait" latency sample through a single nil-checked recorder
// path, so metrics-only collectors observe the wait too.
func (p *Proc) NotifyWaitSome(seg SegmentID, begin NotificationID, num int,
	timeout time.Duration) (NotificationID, bool) {
	if timeout == Test {
		return p.notifyWaitSome(seg, begin, num, timeout)
	}
	var start time.Duration
	if p.rec != nil {
		start = p.clk.Now()
	}
	id, ok := p.notifyWaitSome(seg, begin, num, timeout)
	if p.rec != nil {
		now := p.clk.Now()
		if ok {
			if flow := p.takeNotifyFlow(seg, id); flow != 0 {
				p.rec.Flow(int(p.rank), obs.TrackNotify, obs.CatNotify, "flow:notify",
					'f', now, flow)
			}
		}
		p.rec.Span(int(p.rank), obs.TrackNotify, obs.CatNotify, "notify:wait",
			start, now, int64(id))
		p.rec.Latency("gaspi.notify_wait", now-start)
	}
	return id, ok
}

// notifyWaitSome is NotifyWaitSome without the trace span.
func (p *Proc) notifyWaitSome(seg SegmentID, begin NotificationID, num int,
	timeout time.Duration) (NotificationID, bool) {
	deadline := time.Duration(-1)
	if timeout > 0 {
		deadline = p.clk.Now() + timeout
	}
	for {
		p.mu.Lock()
		st, ok := p.segs[seg]
		if !ok {
			p.mu.Unlock()
			panic(fmt.Sprintf("gaspisim: NotifyWaitSome on unknown segment %d", seg))
		}
		for id := begin; id < begin+NotificationID(num); id++ {
			if _, set := st.notifs[id]; set {
				p.mu.Unlock()
				return id, true
			}
		}
		if timeout == Test {
			p.mu.Unlock()
			return 0, false
		}
		w := &notifWaiter{begin: begin, num: NotificationID(num), p: p.clk.Parker()}
		w.p.SetName(p.notifyName)
		st.waiters = append(st.waiters, w)
		p.mu.Unlock()
		if deadline < 0 {
			w.p.Park()
			continue
		}
		left := deadline - p.clk.Now()
		if left <= 0 || !w.p.ParkTimeout(left) {
			// Timed out: withdraw the waiter (it may have fired anyway;
			// the loop re-checks the slots either way).
			p.mu.Lock()
			for i, x := range st.waiters {
				if x == w {
					st.waiters = append(st.waiters[:i], st.waiters[i+1:]...)
					break
				}
			}
			timedOut := !w.fired
			p.mu.Unlock()
			if timedOut {
				// One final re-check to avoid a lost-wake race.
				if id, ok := p.NotifyWaitSome(seg, begin, num, Test); ok {
					return id, true
				}
				return 0, false
			}
		}
	}
}

// RequestWait returns up to max locally-completed low-level requests of a
// queue — the gaspi_request_wait extension of §IV-C. With timeout Test it
// returns immediately (possibly empty); with Block it waits for at least
// one; a positive timeout bounds the wait. The caller is charged a fixed
// polling cost. An out-of-range queue id panics with GASPI_ERR_INV_QUEUE
// semantics.
func (p *Proc) RequestWait(queueID, max int, timeout time.Duration) []CompletedRequest {
	q := p.queueAt(queueID)
	p.clk.Sleep(p.prof.RDMAOpOverhead / 2) // CPU cost of draining the CQ
	for {
		q.mu.Lock()
		if len(q.completed) > 0 {
			n := len(q.completed)
			if n > max {
				n = max
			}
			out := append([]CompletedRequest(nil), q.completed[:n]...)
			q.completed = q.completed[n:]
			q.mu.Unlock()
			return out
		}
		if timeout == Test {
			q.mu.Unlock()
			return nil
		}
		pk := p.clk.Parker()
		pk.SetName(p.reqwaitName)
		q.waiters = append(q.waiters, pk)
		q.mu.Unlock()
		if timeout == Block {
			pk.Park()
			continue
		}
		if !pk.ParkTimeout(timeout) {
			q.mu.Lock()
			for i, x := range q.waiters {
				if x == pk {
					q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
					break
				}
			}
			q.mu.Unlock()
			timeout = Test // final pass drains anything that raced in
		}
	}
}

// Wait blocks until all operations posted to the queue have locally
// completed — the standard coarse-grained gaspi_wait, which TAGASPI
// obsoletes but the non-task-aware baselines use. An out-of-range queue
// id panics with GASPI_ERR_INV_QUEUE semantics.
func (p *Proc) Wait(queueID int) {
	q := p.queueAt(queueID)
	for {
		q.mu.Lock()
		if q.outstanding == 0 {
			q.mu.Unlock()
			return
		}
		pk := p.clk.Parker()
		pk.SetName(p.waitName)
		q.waiters = append(q.waiters, pk)
		q.mu.Unlock()
		pk.Park()
	}
}

// Drain discards completed low-level requests accumulated on a queue; no
// gaspi_* counterpart (callers that use Wait instead of RequestWait must
// drain or the list grows unboundedly). An out-of-range queue id panics
// with GASPI_ERR_INV_QUEUE semantics.
func (p *Proc) Drain(queueID int) {
	q := p.queueAt(queueID)
	q.mu.Lock()
	q.completed = nil
	q.mu.Unlock()
}

// Snapshot returns the per-queue post-resource statistics plus the failed
// operation total ("gaspi_queue_errors") in the common observability shape
// (obs.Snapshotter).
func (p *Proc) Snapshot() obs.Snapshot {
	s := obs.Snapshot{Component: "gaspi", Rank: int(p.rank)}
	var errs int64
	for i, q := range p.queues {
		st := q.res.Stats()
		q.mu.Lock()
		errs += q.errors
		q.mu.Unlock()
		pre := fmt.Sprintf("queue%d.", i)
		s.Samples = append(s.Samples,
			obs.Sample{Name: pre + "posts", Value: float64(st.Uses)},
			obs.Sample{Name: pre + "busy", Value: st.Busy.Seconds(), Unit: "s"},
			obs.Sample{Name: pre + "waited", Value: st.Waited.Seconds(), Unit: "s"},
		)
	}
	s.Samples = append(s.Samples, obs.Sample{Name: "gaspi_queue_errors", Value: float64(errs)})
	return s
}

// Reset clears the queue statistics, including the failed-operation
// counts; queue health is operational state and is left untouched
// (obs.Snapshotter).
func (p *Proc) Reset() {
	for _, q := range p.queues {
		q.res.ResetStats()
		q.mu.Lock()
		q.errors = 0
		q.mu.Unlock()
	}
}
