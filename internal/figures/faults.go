package figures

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/fabric"
)

// AblationFaultInjection sweeps the injected fault (drop) rate under the
// Gauss–Seidel workload for the MPI-only and TAGASPI variants. Both message
// classes fault at the same rate, but the failure semantics differ: MPI
// drops retransmit transparently inside the fabric (a pure latency cost),
// while GASPI drops surface through the queue error state and are absorbed
// by TAGASPI's repair-and-retry policy (DESIGN.md §9). The figure shows how
// much throughput each recovery path preserves as links degrade; the
// numerics stay bit-exact at every rate (see the heat package fault tests).
func AblationFaultInjection(o Opts) Figure {
	nodes := 4
	steps := 6
	rates := []float64{0, 0.02, 0.05, 0.1, 0.2}
	if o.Preset == Quick {
		nodes = 2
		rates = []float64{0, 0.05, 0.2}
	}
	prof := fabric.ProfileOmniPath()
	series := []string{gsNames[gsMPIOnly], gsNames[gsTAGASPI]}
	sw := &exp.Sweep{
		Fig: Figure{
			ID: "faults", Title: "Gauss-Seidel throughput vs injected fault rate",
			XLabel: "drop rate", X: rates,
			YLabel: "GUpdates/s",
			Notes: []string{
				"fault plane: per-message drop probability on every inter-node link, both classes",
				"MPI drops retransmit transparently; GASPI drops error the queue and ride TAGASPI's retry policy",
				"expected shape: MPI-only degrades mildly (retransmits cost only latency); TAGASPI falls faster at high rates (queue repair + backoff) but always completes with bit-exact results",
			},
		},
		Series: series,
	}
	for _, v := range []gsVariant{gsMPIOnly, gsTAGASPI} {
		for _, r := range rates {
			p := gsParams(nodes, 64, 64, steps)
			if v == gsMPIOnly {
				p.BlockRows, p.BlockCols = 0, 256
			}
			pt := gsPoint(v, nodes, p, prof, r)
			// The rate must be part of the ID: point seeds derive from it,
			// and ids must be unique within the sweep.
			pt.ID = fmt.Sprintf("%s/f%g", pt.ID, r)
			pt.Cfg.Faults = fabric.FaultPlan{
				MPI:   fabric.FaultRates{Drop: r},
				GASPI: fabric.FaultRates{Drop: r},
			}
			sw.Points = append(sw.Points, pt)
		}
	}
	return runSweep(o, sw)
}
