package figures

import (
	"fmt"
	"time"

	"repro/internal/apps/streaming"
	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/fabric"
)

// stVariant identifies a Streaming implementation.
type stVariant int

const (
	stMPIOnly stVariant = iota
	stTAMPI
	stTAGASPI
)

var stNames = []string{"MPI-Only", "TAMPI", "TAGASPI"}

// streamPoll is the polling period for the Streaming figures. The paper
// tunes 50us on the full-size input; our inputs are ~16x smaller, so the
// pipeline's time constants shrink accordingly and the tuned period scales
// with them.
const streamPoll = 1 * time.Microsecond

// stConfig builds the cluster geometry of one Streaming variant.
func stConfig(v stVariant, nodes, hybridRPN int, prof fabric.Profile, poll time.Duration) cluster.Config {
	cfg := cluster.Config{
		Nodes:   nodes,
		Profile: prof,
	}
	switch v {
	case stMPIOnly:
		cfg.RanksPerNode, cfg.CoresPerRank = coresPerNode, 1
	default:
		cfg.RanksPerNode = hybridRPN
		cfg.CoresPerRank = coresPerNode / hybridRPN
		cfg.WithTasking = true
		cfg.TAMPIPoll, cfg.TAGASPIPoll = poll, poll
		if v == stTAMPI {
			cfg.WithTAMPI = true
		} else {
			cfg.WithTAGASPI = true
		}
	}
	return cfg
}

// stPoint is one Streaming run, yielding the variant's throughput in
// GElements/s of modelled time. The NIC utilisation notes of Fig. 13 read
// the per-node port statistics from the result's retained job stats.
func stPoint(id string, v stVariant, nodes, hybridRPN int, p streaming.Params,
	prof fabric.Profile, poll time.Duration, x float64) exp.Point {
	return exp.Point{
		ID:  id,
		X:   x,
		Cfg: stConfig(v, nodes, hybridRPN, prof, poll),
		Main: func(env *cluster.Env) {
			switch v {
			case stMPIOnly:
				streaming.RunMPIOnly(env, p)
			case stTAMPI:
				streaming.RunTAMPI(env, p)
			case stTAGASPI:
				streaming.RunTAGASPI(env, p)
			}
		},
		Values: func(job cluster.Result) map[string]float64 {
			return map[string]float64{stNames[v]: p.Elements() / job.Elapsed.Seconds() / 1e9}
		},
	}
}

// nicPeakTx reduces a result's per-node NIC statistics to the highest
// injection-port busy fraction and the summed injection queueing time — the
// serialization behind Fig. 13's block-size sensitivity.
func nicPeakTx(res cluster.Result) (frac float64, wait time.Duration) {
	if res.Elapsed <= 0 {
		return 0, 0
	}
	for _, nic := range res.NIC {
		if f := nic.Tx.Busy.Seconds() / res.Elapsed.Seconds(); f > frac {
			frac = f
		}
		wait += nic.Tx.Waited
	}
	return frac, wait
}

// stPointID names a Fig. 13 / ablation streaming point.
func stPointID(v stVariant, bs int) string {
	return fmt.Sprintf("%s/bs%d", stNames[v], bs)
}

// streamingFigure builds one Fig. 13 panel.
func streamingFigure(o Opts, id, title string, prof fabric.Profile, nodes, hybridRPN int,
	blocks []int, chunkElems, chunks int, notes []string) Figure {
	sw := &exp.Sweep{
		Fig: Figure{
			ID: id, Title: title,
			XLabel: "blocksize", X: toF(blocks),
			YLabel: "GElements/s",
			Notes:  notes,
		},
		Series: stNames,
	}
	for v := stMPIOnly; v <= stTAGASPI; v++ {
		for _, bs := range blocks {
			p := streaming.Params{Chunks: chunks, ChunkElems: chunkElems, BlockSize: bs}
			sw.Points = append(sw.Points,
				stPoint(stPointID(v, bs), v, nodes, hybridRPN, p, prof, streamPoll, float64(bs)))
		}
	}
	lastBS := blocks[len(blocks)-1]
	sw.Post = func(f *Figure, _ map[string][]float64, rs []exp.Result) {
		for v := stMPIOnly; v <= stTAGASPI; v++ {
			for _, r := range rs {
				if r.ID != stPointID(v, lastBS) {
					continue
				}
				frac, wait := nicPeakTx(r.Job)
				f.Notes = append(f.Notes, fmt.Sprintf(
					"nic (block %d, %s): peak tx port busy %.1f%%, total tx queueing %v",
					lastBS, stNames[v], 100*frac, wait))
			}
		}
	}
	return runSweep(o, sw)
}

// Fig13aStreamingOmniPath reproduces the upper panel of Figure 13:
// Streaming on the Omni-Path machine, where the PSM2-optimised two-sided
// path keeps MPI-only ahead and emulated ibverbs penalises RDMA.
func Fig13aStreamingOmniPath(o Opts) Figure {
	nodes, chunks := 8, 8
	blocks := []int{256, 512, 1024, 2048, 4096, 8192}
	chunkElems := 128 << 10
	if o.Preset == Quick {
		nodes, chunks = 3, 8
		blocks = []int{256, 2048}
		chunkElems = 16 << 10
	}
	return streamingFigure(o, "13a",
		"Streaming throughput vs block size (Marenostrum4 / Omni-Path)",
		fabric.ProfileOmniPath(), nodes, 2, blocks, chunkElems, chunks,
		[]string{
			"paper: 64 nodes, 250 chunks x 768K elements; here reduced geometry",
			"paper result: MPI-only best overall (PSM2-optimised fabric); TAGASPI nearly matches it from 2K blocks; TAMPI collapses below 8K",
		})
}

// Fig13bStreamingInfiniBand reproduces the lower panel of Figure 13:
// Streaming on the InfiniBand machine, where native ibverbs lets TAGASPI
// outperform both two-sided variants.
func Fig13bStreamingInfiniBand(o Opts) Figure {
	nodes, chunks := 6, 8
	blocks := []int{256, 512, 1024, 2048, 4096, 8192}
	chunkElems := 128 << 10
	if o.Preset == Quick {
		nodes, chunks = 3, 8
		blocks = []int{256, 2048}
		chunkElems = 16 << 10
	}
	return streamingFigure(o, "13b",
		"Streaming throughput vs block size (CTE-AMD / InfiniBand)",
		fabric.ProfileInfiniBand(), nodes, 1, blocks, chunkElems, chunks,
		[]string{
			"paper: 16 nodes, 250 chunks x 1024K elements; here reduced geometry",
			"paper result: TAGASPI wins clearly (1.53x over MPI-only, 2.14x over TAMPI at 4K blocks); MPI-only shows high variance",
		})
}
