// Package figures regenerates every figure of the paper's evaluation
// (§VI): the Gauss–Seidel strong scaling and block-size sweep (Figs. 9,
// 10), the miniAMR strong scaling and variables sweep (Figs. 11, 12), the
// Streaming block-size sweeps on both machine profiles (Fig. 13), and the
// in-text observations (the MPI-time blowup of §VI-C, the polling-period
// tuning of §VI, the RMA-notification round-trip of §III, and the onready
// ablation of §V-A).
//
// Figures run in virtual time on scaled-down inputs (documented per figure
// and in EXPERIMENTS.md): node counts and matrices are reduced by a
// constant factor relative to the paper, preserving the per-rank work,
// blocks-per-core and bytes-per-update ratios that determine each figure's
// shape. The Quick preset shrinks them further for tests and benchmarks.
package figures

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Preset selects the experiment scale.
type Preset int

// Presets.
const (
	// Quick is a fast sanity scale for tests and benchmarks.
	Quick Preset = iota
	// Full is the default reproduction scale (minutes of host time).
	Full
)

// Series is one line of a figure.
type Series struct {
	Name string
	Y    []float64 // aligned with the figure's X values
}

// Figure is one reproduced figure as a table.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	X      []float64
	YLabel string
	Series []Series
	Notes  []string
}

// Render prints the figure as an aligned text table.
func (f Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	rows := [][]string{cols}
	for i, x := range f.X {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.4g", s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(cols))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var b strings.Builder
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[c]))
		}
		fmt.Fprintln(w, "  "+b.String())
		if ri == 0 {
			fmt.Fprintln(w, "  "+strings.Repeat("-", len(b.String())))
		}
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	for len(s) < w {
		s = " " + s
	}
	return s
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// Generator produces one figure at a preset.
type Generator func(Preset) Figure

// All maps figure ids to their generators.
func All() map[string]Generator {
	return map[string]Generator{
		"9":       Fig09GaussSeidelScaling,
		"10":      Fig10GaussSeidelBlocksize,
		"11":      Fig11MiniAMRScaling,
		"12":      Fig12MiniAMRVariables,
		"13a":     Fig13aStreamingOmniPath,
		"13b":     Fig13bStreamingInfiniBand,
		"lock":    AblationMPILockBlowup,
		"poll":    AblationPollingPeriod,
		"rma":     AblationRMANotification,
		"onready": AblationOnready,
	}
}

// IDs returns the figure ids in render order.
func IDs() []string {
	ids := make([]string, 0)
	for id := range All() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	// Keep the paper's order first.
	order := []string{"9", "10", "11", "12", "13a", "13b", "lock", "poll", "rma", "onready"}
	return order[:len(ids)]
}

// geoScale is the rank-count reduction factor relative to the paper:
// Marenostrum4's 48 cores/node are modelled as 8 simulated cores/node so
// the discrete-event runs stay tractable; all per-core ratios preserved.
const (
	coresPerNode  = 8 // paper: 48 (MN4), 64 (CTE-AMD)
	hybridRanks   = 2 // ranks/node for hybrid Gauss-Seidel (paper: 1/socket)
	amrHybridRank = 2 // ranks/node for hybrid miniAMR (paper: 4)
)

func doubling(max int) []int {
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	return out
}

func toF(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
