// Package figures regenerates every figure of the paper's evaluation
// (§VI): the Gauss–Seidel strong scaling and block-size sweep (Figs. 9,
// 10), the miniAMR strong scaling and variables sweep (Figs. 11, 12), the
// Streaming block-size sweeps on both machine profiles (Fig. 13), and the
// in-text observations (the MPI-time blowup of §VI-C, the polling-period
// tuning of §VI, the RMA-notification round-trip of §III, and the onready
// ablation of §V-A).
//
// Every figure is expressed as an exp.Sweep — a declarative set of
// independent simulation points — and executed by the exp engine, which
// runs points host-parallel on a bounded worker pool and reduces them to
// series with the shared speedup/efficiency math. Modelled results are
// identical at any worker count (seeds derive from point ids, each point
// is one isolated discrete-event simulation); only host wall-clock
// changes.
//
// Figures run in virtual time on scaled-down inputs (documented per figure
// and in EXPERIMENTS.md): node counts and matrices are reduced by a
// constant factor relative to the paper, preserving the per-rank work,
// blocks-per-core and bytes-per-update ratios that determine each figure's
// shape. The Quick preset shrinks them further for tests and benchmarks.
package figures

import (
	"sort"

	"repro/internal/exp"
)

// Preset selects the experiment scale.
type Preset int

// Presets.
const (
	// Quick is a fast sanity scale for tests and benchmarks.
	Quick Preset = iota
	// Full is the default reproduction scale (minutes of host time).
	Full
	// Scale is the paper-scale strong-scaling preset: the Fig. 9 sweep runs
	// out to the paper's 256 nodes (2048 simulated MPI-only ranks per
	// point) and Fig. 10 at its 128-node evaluation scale. Only the
	// Gauss–Seidel figures (9, 10) honour it — `figures -scale` selects
	// exactly those — and the sweep exists to exercise the sharded host
	// substrate (ARCHITECTURE.md "Sharded host substrate"): bounded worker
	// pools, sharded couriers and parker shards keep the host goroutine
	// count flat while rank counts reach the thousands.
	Scale
)

// Figure and Series are the exp engine's assembled-figure types; aliased
// so figure consumers need not import the engine.
type (
	Figure = exp.Figure
	Series = exp.Series
)

// Opts configures one generator run: the experiment scale, the host-side
// execution bound, and an optional sink collecting machine-readable rows.
// The zero value is the Quick preset executed on GOMAXPROCS workers.
type Opts struct {
	Preset Preset
	// Exec bounds the host-parallel experiment points (Workers: 1 is
	// fully sequential; a shared Pool spans several generators).
	Exec exp.Options
	// Sink, when non-nil, receives every executed point as structured
	// rows for BENCH_*.json output.
	Sink *exp.Sink
}

// runSweep executes a sweep under the generator options: results feed the
// sink (if any), then assemble into the figure.
func runSweep(o Opts, sw *exp.Sweep) Figure {
	rs := sw.Execute(o.Exec)
	if o.Sink != nil {
		o.Sink.Add(sw, rs)
	}
	return sw.Build(rs)
}

// Generator produces one figure under the given options.
type Generator func(Opts) Figure

// All maps figure ids to their generators.
func All() map[string]Generator {
	return map[string]Generator{
		"9":       Fig09GaussSeidelScaling,
		"10":      Fig10GaussSeidelBlocksize,
		"11":      Fig11MiniAMRScaling,
		"12":      Fig12MiniAMRVariables,
		"13a":     Fig13aStreamingOmniPath,
		"13b":     Fig13bStreamingInfiniBand,
		"lock":    AblationMPILockBlowup,
		"poll":    AblationPollingPeriod,
		"rma":     AblationRMANotification,
		"onready": AblationOnready,
		"faults":  AblationFaultInjection,
		"blame":   AblationCritPathBlame,
		"coll":    FigCollectives,
		"hotspot": FigHotspot,
	}
}

// IDs returns the figure ids in render order.
func IDs() []string {
	ids := make([]string, 0)
	for id := range All() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	// Keep the paper's order first.
	// New figures append at the end so the committed BENCH_figures.json
	// row prefix of earlier figures stays stable across additions.
	order := []string{"9", "10", "11", "12", "13a", "13b", "coll", "lock", "poll", "rma", "onready", "faults", "blame", "hotspot"}
	return order[:len(ids)]
}

// geoScale is the rank-count reduction factor relative to the paper:
// Marenostrum4's 48 cores/node are modelled as 8 simulated cores/node so
// the discrete-event runs stay tractable; all per-core ratios preserved.
const (
	coresPerNode  = 8 // paper: 48 (MN4), 64 (CTE-AMD)
	hybridRanks   = 2 // ranks/node for hybrid Gauss-Seidel (paper: 1/socket)
	amrHybridRank = 2 // ranks/node for hybrid miniAMR (paper: 4)
)

func doubling(max int) []int {
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	return out
}

func toF(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
