package figures

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/fabric"
	"repro/internal/gaspisim"
	"repro/internal/mpisim"
	"repro/internal/tasking"
)

// hsVariant identifies an incast implementation.
type hsVariant int

const (
	hsMPIOnly hsVariant = iota
	hsTAMPI
	hsTAGASPI
)

var hsNames = []string{"MPI-Only", "TAMPI", "TAGASPI"}

// hsSegIncast is the segment id of the TAGASPI incast buffers.
const hsSegIncast = 0

// hsPollPeriod matches the hybrid polling period of the Gauss–Seidel
// figures at this reduced scale.
const hsPollPeriod = 5 * time.Microsecond

// hsConfig builds the cluster geometry of one incast variant on one
// topology shape: one rank per node (the incast stresses the network,
// not the node), hybrid variants get a small core pool for their
// communication tasks.
func hsConfig(v hsVariant, shape fabric.Shape, nodes int) cluster.Config {
	cfg := cluster.Config{
		Nodes: nodes, RanksPerNode: 1, CoresPerRank: 1,
		Profile: fabric.ProfileOmniPath(),
		Shape:   shape,
	}
	if v != hsMPIOnly {
		cfg.CoresPerRank = 2
		cfg.WithTasking = true
		cfg.TAMPIPoll = hsPollPeriod
		cfg.TAGASPIPoll = hsPollPeriod
		if v == hsTAMPI {
			cfg.WithTAMPI = true
		} else {
			cfg.WithTAGASPI = true
		}
	}
	return cfg
}

// hsMPIOnlyMain runs the two-sided incast: every rank but 0 pushes msgs
// messages of size bytes at rank 0 with non-blocking sends; rank 0 sinks
// them all with pre-posted receives.
func hsMPIOnlyMain(env *cluster.Env, msgs, size int) {
	r, P := int(env.Rank), env.Ranks()
	mpi := env.MPI
	if r == 0 {
		buf := make([]byte, (P-1)*msgs*size)
		reqs := make([]*mpisim.Request, 0, (P-1)*msgs)
		for k := 0; k < msgs; k++ {
			for s := 1; s < P; s++ {
				off := ((s-1)*msgs + k) * size
				reqs = append(reqs, mpi.Irecv(buf[off:off+size], mpisim.Rank(s), k))
			}
		}
		mpi.Waitall(reqs)
		return
	}
	buf := make([]byte, size)
	reqs := make([]*mpisim.Request, 0, msgs)
	for k := 0; k < msgs; k++ {
		reqs = append(reqs, mpi.Isend(buf, 0, k))
	}
	mpi.Waitall(reqs)
}

// hsTAMPIMain runs the taskified two-sided incast: every transfer is one
// task binding its request with TAMPI_Iwait, so communication overlaps
// across the core pool.
func hsTAMPIMain(env *cluster.Env, msgs, size int) {
	r, P := int(env.Rank), env.Ranks()
	mpi, rt, ta := env.MPI, env.RT, env.TAMPI
	if r == 0 {
		buf := make([]byte, (P-1)*msgs*size)
		for k := 0; k < msgs; k++ {
			for s := 1; s < P; s++ {
				k, s := k, s
				rt.Submit(func(tk *tasking.Task) {
					off := ((s-1)*msgs + k) * size
					ta.Iwait(tk, mpi.Irecv(buf[off:off+size], mpisim.Rank(s), k))
				}, tasking.WithLabel("recv incast"))
			}
		}
	} else {
		buf := make([]byte, size)
		for k := 0; k < msgs; k++ {
			k := k
			rt.Submit(func(tk *tasking.Task) {
				ta.Iwait(tk, mpi.Isend(buf, 0, k))
			}, tasking.WithLabel("send incast"))
		}
	}
	rt.TaskWait()
}

// hsTAGASPIMain runs the one-sided incast: senders write their payloads
// directly into rank 0's segment with tagaspi_write_notify, spread over
// the GASPI queues; rank 0 consumes the notifications with
// tagaspi_notify_iwait tasks and never touches a two-sided matching path.
func hsTAGASPIMain(env *cluster.Env, msgs, size int) {
	r, P := int(env.Rank), env.Ranks()
	rt, tg := env.RT, env.TAGASPI
	Q := env.GASPI.Queues()
	segSize := size
	if r == 0 {
		segSize = (P - 1) * msgs * size
	}
	if _, err := env.GASPI.SegmentCreate(hsSegIncast, segSize); err != nil {
		panic(err)
	}
	// Remote writes may only start once every segment exists.
	env.MPI.Barrier()
	if r == 0 {
		for k := 0; k < msgs; k++ {
			for s := 1; s < P; s++ {
				id := gaspisim.NotificationID((s-1)*msgs + k)
				rt.Submit(func(tk *tasking.Task) {
					tg.NotifyIwait(tk, hsSegIncast, id, nil)
				}, tasking.WithLabel("wait incast"))
			}
		}
	} else {
		for k := 0; k < msgs; k++ {
			k := k
			rt.Submit(func(tk *tasking.Task) {
				off := ((r-1)*msgs + k) * size
				must(tg.WriteNotify(tk, hsSegIncast, 0, gaspisim.Rank(0), hsSegIncast,
					off, size, gaspisim.NotificationID((r-1)*msgs+k), 1, k%Q))
			}, tasking.WithLabel("write incast"))
		}
	}
	rt.TaskWait()
}

// hsPoint is one incast run, yielding the delivered throughput into the
// hot node in GB/s of modelled time.
func hsPoint(v hsVariant, shape fabric.Shape, nodes, msgs, size int) exp.Point {
	name := shape.String() + " " + hsNames[v]
	return exp.Point{
		ID:  fmt.Sprintf("hotspot/%s/%s/n%d", shape, hsNames[v], nodes),
		X:   float64(nodes),
		Cfg: hsConfig(v, shape, nodes),
		Main: func(env *cluster.Env) {
			switch v {
			case hsMPIOnly:
				hsMPIOnlyMain(env, msgs, size)
			case hsTAMPI:
				hsTAMPIMain(env, msgs, size)
			case hsTAGASPI:
				hsTAGASPIMain(env, msgs, size)
			}
		},
		Values: func(job cluster.Result) map[string]float64 {
			payload := float64((nodes-1)*msgs*size)
			return map[string]float64{name: payload / job.Elapsed.Seconds() / 1e9}
		},
	}
}

// FigHotspot measures all-to-one incast throughput under emergent
// topology congestion (DESIGN.md §13): every node pushes a fixed payload
// at node 0 over a 2D mesh and a fat-tree, where the links converging on
// the hot node serialize the traffic and backpressure queues it per hop —
// the regime the HPX+LCI communication-needs study identifies as the one
// where messaging layers actually separate. The flat model cannot show
// this figure at all: every pair has private capacity, so incast
// throughput would scale with the sender count.
func FigHotspot(o Opts) Figure {
	nodes := []int{4, 8, 16}
	msgs, size := 8, 32<<10
	if o.Preset == Quick {
		nodes = []int{4, 8}
		msgs = 4
	}
	shapes := []fabric.Shape{fabric.ShapeMesh2D, fabric.ShapeFatTree}
	var series []string
	for _, sh := range shapes {
		for v := hsMPIOnly; v <= hsTAGASPI; v++ {
			series = append(series, sh.String()+" "+hsNames[v])
		}
	}
	sw := &exp.Sweep{
		Fig: Figure{
			ID: "hotspot", Title: "All-to-one incast throughput under topology congestion",
			XLabel: "nodes", X: toF(nodes),
			YLabel: "GB/s into the hot node",
			Notes: []string{
				"shaped topologies (mesh, fat-tree) route every message over shared per-link capacity; the links into node 0 are the hotspot",
				"critpath attributes the queueing as link_contend; per-link waits land in the fabric snapshot (link.*.waited)",
			},
		},
		Series: series,
	}
	for _, sh := range shapes {
		for v := hsMPIOnly; v <= hsTAGASPI; v++ {
			for _, n := range nodes {
				sw.Points = append(sw.Points, hsPoint(v, sh, n, msgs, size))
			}
		}
	}
	return runSweep(o, sw)
}
