package figures

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps/heat"
	"repro/internal/cluster"
	"repro/internal/fabric"
)

// raceEnabled is set by race_on_test.go when the race detector is
// compiled in; wall-clock budget gates skip under -race.
var raceEnabled bool

// HostNsPerMessageBudget is the committed per-message host-time budget of
// the scale-preset Gauss–Seidel point: total host wall time of the job
// divided by fabric messages must stay below it. The committed
// BENCH_host.json "9-scale" series measures ~46µs/message on the
// single-core reference host (TAGASPI at 256 nodes: 512 hybrid ranks,
// ~86k messages, sharded couriers, pooled workers); the budget carries
// ~4x headroom for slower CI hosts while still catching a structural
// regression — an unsharded courier table or goroutine-per-task
// execution multiplies host time at this rank count.
const HostNsPerMessageBudget = 200_000

// scaleGatePoint is the gated simulation: the Fig. 9 Scale-preset TAGASPI
// point at the paper's 256 nodes (512 hybrid ranks, 3 timesteps).
func scaleGatePoint() (cluster.Config, heat.Params) {
	p := gsParams(256, 64, 64, 3)
	return gsConfig(gsTAGASPI, 256, fabric.ProfileOmniPath()), p
}

// TestPerMessageHostBudget is the host-time regression gate of
// scripts/ci.sh, the wall-clock analogue of fabric.CourierAllocBudget: it
// runs one scale-preset point and fails if host time per fabric message
// exceeds the committed budget.
func TestPerMessageHostBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("host wall-clock is inflated by race-detector instrumentation")
	}
	if testing.Short() {
		t.Skip("scale point is too large for -short")
	}
	cfg, p := scaleGatePoint()
	var peak atomic.Int64
	stop := make(chan struct{})
	go func() {
		//lint:ignore detlint host-side goroutine sampler: this gate measures the host, not the model
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if g := int64(runtime.NumGoroutine()); g > peak.Load() {
					peak.Store(g)
				}
			}
		}
	}()
	//lint:ignore detlint host wall-clock measurement is the point of this gate
	start := time.Now()
	res := cluster.Run(cfg, func(env *cluster.Env) { heat.RunTAGASPI(env, p) })
	//lint:ignore detlint host wall-clock measurement is the point of this gate
	host := time.Since(start)
	close(stop)
	msgs := res.Fabric.Messages
	if msgs == 0 {
		t.Fatal("scale point sent no messages")
	}
	per := float64(host.Nanoseconds()) / float64(msgs)
	t.Logf("scale point: host %v, %d messages, %.0f ns/message (budget %d), peak goroutines %d",
		host.Round(time.Millisecond), msgs, per, HostNsPerMessageBudget, peak.Load())
	// The goroutine bound is the cheap half of the gate: linear in ranks
	// (main + bounded worker pool each) plus the fixed courier-shard pool.
	// The pre-shard substrate peaked at ~17k goroutines on this point; the
	// sharded one stays around ~3.1k (512 ranks x main + Cores workers +
	// a blocked poller and its replacement).
	ranks := cfg.Nodes * cfg.RanksPerNode
	if gBudget := int64(ranks*(3+cfg.CoresPerRank) + 256); peak.Load() > gBudget {
		t.Fatalf("peak goroutine count %d exceeds budget %d: host substrate no longer bounded",
			peak.Load(), gBudget)
	}
	if per > HostNsPerMessageBudget {
		t.Fatalf("host time per message %.0f ns exceeds budget %d ns — "+
			"did a sharded hot path (couriers, worker pool, parker shards) regress?",
			per, HostNsPerMessageBudget)
	}
}
