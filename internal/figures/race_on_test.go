//go:build race

package figures

// The race detector slows the host by an order of magnitude, so
// host-wall-clock budget gates skip themselves when it is compiled in.
func init() { raceEnabled = true }
