package figures

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/exp"
)

// fastIDs are the generators cheap enough to run repeatedly in unit
// tests; the full set is exercised by the root benchmarks and the CI
// determinism gate.
var fastIDs = []string{"rma", "onready", "lock"}

// The engine contract at the figure level: a host-parallel run must
// produce exactly the figure a sequential run produces — modelled results
// cannot depend on worker count or point execution order.
func TestParallelFiguresMatchSequential(t *testing.T) {
	gens := All()
	for _, id := range fastIDs {
		seq := gens[id](Opts{Preset: Quick, Exec: exp.Options{Workers: 1}})
		par := gens[id](Opts{Preset: Quick, Exec: exp.Options{Workers: 8}})
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("figure %s differs between -seq and -parallel:\n%+v\n%+v", id, seq, par)
		}
	}
}

// Two parallel runs of the same figures must serialize to byte-identical
// JSON (host times excluded): seeds derive from point ids, never from
// sweep iteration order.
func TestParallelJSONByteIdentical(t *testing.T) {
	render := func() []byte {
		sink := &exp.Sink{}
		gens := All()
		for _, id := range fastIDs {
			gens[id](Opts{Preset: Quick, Exec: exp.Options{Workers: 8}, Sink: sink})
		}
		var buf bytes.Buffer
		if err := exp.WriteJSON(&buf, sink.Rows()); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("JSON differs across two parallel runs:\n%s\n--\n%s", a, b)
	}
}

// The sink must see one row per (point, series) sample with the figure id
// attached — the BENCH_figures.json contract.
func TestSinkRowsCoverEveryPoint(t *testing.T) {
	sink := &exp.Sink{}
	f := All()["rma"](Opts{Preset: Quick, Sink: sink})
	rows := sink.Rows()
	// Quick rma: 2 sizes x 2 series.
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, row := range rows {
		if row.Fig != "rma" {
			t.Fatalf("row mislabelled: %+v", row)
		}
		if row.Seed <= 0 || row.ModelledMS <= 0 {
			t.Fatalf("row lacks seed or modelled time: %+v", row)
		}
	}
	// The rendered figure and the rows must agree on the raw values.
	for _, s := range f.Series {
		for i, y := range s.Y {
			found := false
			for _, row := range rows {
				if row.Series == s.Name && row.X == f.X[i] && row.Y == y {
					found = true
				}
			}
			if !found {
				t.Fatalf("series %q x=%v y=%v missing from rows", s.Name, f.X[i], y)
			}
		}
	}
}
