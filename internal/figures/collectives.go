package figures

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/collectives"
	"repro/internal/exp"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/obs/critpath"
)

// Collective-figure geometry: one rank per node, a vector small enough
// that per-step latency (not bandwidth) dominates — the regime where the
// task-aware backend's no-parking property shows up as a lower
// worker-blocked share rather than a bandwidth win.
const (
	collVecLen = 1024 // divisible by every swept node count
	collIters  = 4    // allreduce rounds per point (amortises warmup)
)

// collVariant is one collectives backend under measurement.
type collVariant struct {
	name string
	ta   bool
}

var collVariants = []collVariant{
	{name: "MPI blocking"},
	{name: "GASPI blocking"},
	{name: "TAGASPI task-aware", ta: true},
}

// collBlockedSeries names the companion series carrying the critpath
// worker-blocked share (notify_wait + mpi_lock_wait) of a variant.
func collBlockedSeries(v collVariant) string { return v.name + " blocked %" }

// FigCollectives measures ring-allreduce latency against node count for
// the three collectives backends (internal/collectives), with a companion
// series per backend giving the critical-path share spent blocked in
// notify_wait/mpi_lock_wait. The blocking backends park their rank main
// in gaspi_notify_waitsome or MPI_Wait at every ring step; the task-aware
// backend's steps are tasks gated on tagaspi_notify_iwait external
// events, so its blocked share collapses to the teardown barrier — the
// collectives rendering of the paper's §IV no-parking claim.
func FigCollectives(o Opts) Figure {
	nodesSweep := []int{2, 4, 8}
	switch o.Preset {
	case Full:
		nodesSweep = []int{2, 4, 8, 16}
	case Scale:
		nodesSweep = []int{4, 16, 64}
	}
	xs := toF(nodesSweep)
	series := make([]string, 0, 2*len(collVariants))
	for _, v := range collVariants {
		series = append(series, v.name)
	}
	for _, v := range collVariants {
		series = append(series, collBlockedSeries(v))
	}
	sw := &exp.Sweep{
		Fig: Figure{
			ID: "coll", Title: "Ring allreduce latency: blocking vs task-aware collectives",
			XLabel: "nodes (1 rank/node)", X: xs,
			YLabel: "latency (us per allreduce)",
			Notes: []string{
				fmt.Sprintf("%d-element f64 allreduce, %d rounds per point, OmniPath profile; all backends run the identical ring schedule (bit-identical results)", collVecLen, collIters),
				"blocked % series: critical-path share in notify_wait+mpi_lock_wait — the task-aware backend must stay below both blocking backends at the largest node count (no worker parks inside a collective)",
			},
		},
		Series: series,
	}
	for _, v := range collVariants {
		v := v
		for _, nodes := range nodesSweep {
			nodes := nodes
			cfg := cluster.Config{
				Nodes: nodes, RanksPerNode: 1, CoresPerRank: 1,
				Profile: fabric.ProfileOmniPath(),
			}
			if v.ta {
				cfg.CoresPerRank = 2
				cfg.WithTasking = true
				cfg.WithTAGASPI = true
				cfg.TAGASPIPoll = 5 * time.Microsecond
			}
			cfg.Recorder = obs.NewCollector(nodes)
			sw.Points = append(sw.Points, exp.Point{
				ID:  fmt.Sprintf("coll/%s/n%d", v.name, nodes),
				X:   float64(nodes),
				Cfg: cfg,
				Main: func(env *cluster.Env) {
					opts := []collectives.Option{
						collectives.WithRecorder(env.Cfg.Recorder),
						collectives.WithElemCost(env.CostOf(1)),
					}
					var c *collectives.Comm
					var err error
					switch {
					case v.ta:
						c, err = collectives.NewTAGASPI(env.TAGASPI, env.RT, collVecLen, opts...)
					case v.name == "GASPI blocking":
						c, err = collectives.NewGASPI(env.GASPI, collVecLen, opts...)
					default:
						c = collectives.NewMPI(env.MPI, collVecLen, opts...)
					}
					if err != nil {
						panic(err)
					}
					in := make([]float64, collVecLen)
					for i := range in {
						in[i] = float64(int(env.Rank)+1) * float64(i%7+1)
					}
					out := make([]float64, collVecLen)
					for it := 0; it < collIters; it++ {
						c.Allreduce(in, out, collectives.Sum)
					}
					c.Drain()
				},
				Values: func(job cluster.Result) map[string]float64 {
					blocked := 0.0
					if job.Blame != nil {
						blocked = 100 * (job.Blame.Share(critpath.ClassNotifyWait) +
							job.Blame.Share(critpath.ClassMPILockWait))
					}
					return map[string]float64{
						v.name:               job.Elapsed.Seconds() * 1e6 / collIters,
						collBlockedSeries(v): blocked,
					}
				},
			})
		}
	}
	if o.Preset == Scale {
		sw.Fig.ID = "coll-scale"
	}
	return runSweep(o, sw)
}
