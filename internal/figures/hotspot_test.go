package figures

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
)

// TestHotspotLinkContention runs one mesh incast point end to end and
// checks the figure's premise: the links converging on the hot node carry
// the traffic of several senders, so the job's per-link snapshots must
// show nonzero contention wait — the emergent backpressure the flat model
// cannot produce.
func TestHotspotLinkContention(t *testing.T) {
	cfg := hsConfig(hsMPIOnly, fabric.ShapeMesh2D, 4)
	cfg.Seed = fabric.SeedOf("hotspot-test/mesh/n4")
	res := cluster.Run(cfg, func(env *cluster.Env) { hsMPIOnlyMain(env, 4, 32<<10) })
	if len(res.Links) == 0 {
		t.Fatal("shaped run returned no per-link statistics")
	}
	var waited time.Duration
	var msgs int64
	for _, l := range res.Links {
		waited += l.Res.Waited
		msgs += l.Msgs
	}
	if msgs == 0 {
		t.Fatal("no link carried any message")
	}
	if waited == 0 {
		t.Fatal("incast produced zero link-contention wait; the hotspot figure would be meaningless")
	}
}

// TestHotspotDeterministic reruns one shaped incast point per variant and
// requires identical modelled results: elapsed time, message count and
// every per-link statistic. This is the in-process half of the ci.sh
// hotspot determinism gate (which additionally diffs two full JSON
// regenerations).
func TestHotspotDeterministic(t *testing.T) {
	for v := hsMPIOnly; v <= hsTAGASPI; v++ {
		run := func() cluster.Result {
			cfg := hsConfig(v, fabric.ShapeFatTree, 8)
			cfg.Seed = fabric.SeedOf("hotspot-test/fattree/n8")
			return cluster.Run(cfg, func(env *cluster.Env) {
				switch v {
				case hsMPIOnly:
					hsMPIOnlyMain(env, 2, 16<<10)
				case hsTAMPI:
					hsTAMPIMain(env, 2, 16<<10)
				case hsTAGASPI:
					hsTAGASPIMain(env, 2, 16<<10)
				}
			})
		}
		a, b := run(), run()
		if a.Elapsed != b.Elapsed || a.Fabric.Messages != b.Fabric.Messages {
			t.Fatalf("%s: reruns diverged: elapsed %v/%v, messages %d/%d",
				hsNames[v], a.Elapsed, b.Elapsed, a.Fabric.Messages, b.Fabric.Messages)
		}
		if len(a.Links) != len(b.Links) {
			t.Fatalf("%s: rerun link counts differ: %d vs %d", hsNames[v], len(a.Links), len(b.Links))
		}
		for i := range a.Links {
			if a.Links[i] != b.Links[i] {
				t.Fatalf("%s: link %d stats diverged: %+v vs %+v",
					hsNames[v], i, a.Links[i], b.Links[i])
			}
		}
	}
}

// TestMultiHopHostBudget is the multi-hop companion of
// TestPerMessageHostBudget: a 16-node mesh incast pushes every message
// through up to six per-link courier stages, and host time per message
// must stay inside the same committed budget — the per-hop pipeline may
// not multiply host cost per message.
func TestMultiHopHostBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("host wall-clock is inflated by race-detector instrumentation")
	}
	if testing.Short() {
		t.Skip("budget point is too noisy for -short")
	}
	cfg := hsConfig(hsMPIOnly, fabric.ShapeMesh2D, 16)
	cfg.Seed = fabric.SeedOf("hotspot-budget/mesh/n16")
	var peak atomic.Int64
	stop := make(chan struct{})
	go func() {
		//lint:ignore detlint host-side goroutine sampler: this gate measures the host, not the model
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if g := int64(runtime.NumGoroutine()); g > peak.Load() {
					peak.Store(g)
				}
			}
		}
	}()
	//lint:ignore detlint host wall-clock measurement is the point of this gate
	start := time.Now()
	res := cluster.Run(cfg, func(env *cluster.Env) { hsMPIOnlyMain(env, 64, 32<<10) })
	//lint:ignore detlint host wall-clock measurement is the point of this gate
	host := time.Since(start)
	close(stop)
	msgs := res.Fabric.Messages
	if msgs == 0 {
		t.Fatal("multi-hop budget point sent no messages")
	}
	per := float64(host.Nanoseconds()) / float64(msgs)
	t.Logf("multi-hop point: host %v, %d messages, %.0f ns/message (budget %d), peak goroutines %d",
		host.Round(time.Millisecond), msgs, per, HostNsPerMessageBudget, peak.Load())
	if per > HostNsPerMessageBudget {
		t.Fatalf("multi-hop host time per message %.0f ns exceeds budget %d ns — "+
			"did the per-hop courier pipeline regress?", per, HostNsPerMessageBudget)
	}
}
