package figures

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/exp"
)

// TestCommittedBaselineByteIdentical is the byte-identity proof of the
// sharded-substrate refactor and the regression gate for every future
// host-side change: regenerating every figure at the Quick preset must
// reproduce the committed BENCH_figures.json rows exactly, modulo
// host_ms (the only host-dependent field). Host-execution refactors —
// courier sharding, worker pooling, parker-table sharding, batched rank
// setup — must never move a modelled number.
func TestCommittedBaselineByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every figure (seconds of host time)")
	}
	raw, err := os.ReadFile("../../BENCH_figures.json")
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	var committed struct {
		Schema string    `json:"schema"`
		Rows   []exp.Row `json:"rows"`
	}
	if err := json.Unmarshal(raw, &committed); err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	if committed.Schema != "bench_figures/v1" {
		t.Fatalf("committed baseline schema %q", committed.Schema)
	}

	sink := &exp.Sink{} // IncludeHost false: host_ms stays zero
	gens := All()
	for _, id := range IDs() {
		gens[id](Opts{Preset: Quick, Exec: exp.Options{Workers: 2}, Sink: sink})
	}
	got := sink.Rows()
	if len(got) != len(committed.Rows) {
		t.Fatalf("regenerated %d rows, committed baseline has %d — regenerate BENCH_figures.json if figures were added", len(got), len(committed.Rows))
	}
	for i, g := range got {
		want := committed.Rows[i]
		want.HostMS = 0
		if g != want {
			t.Errorf("row %d drifted:\n  regenerated %+v\n  committed   %+v", i, g, want)
		}
	}
}
