package figures

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/apps/heat"
	"repro/internal/apps/streaming"
	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/fabric"
	"repro/internal/gaspisim"
	"repro/internal/obs"
	"repro/internal/obs/critpath"
	"repro/internal/tasking"
)

// must fails fast on simulator API errors: the ablation drivers run fixed,
// deterministic configurations, so any error is a programming bug.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// AblationMPILockBlowup reproduces the in-text §VI-C observation: shrinking
// the Streaming block size multiplies the total time spent inside MPI (the
// THREAD_MULTIPLE lock) far beyond the increase in message count — the
// paper measures a 27x blowup from 8192- to 2048-element blocks.
func AblationMPILockBlowup(o Opts) Figure {
	nodes, chunks, chunk := 4, 16, 64<<10
	blocks := []int{256, 512, 1024, 2048, 4096}
	if o.Preset == Quick {
		nodes, chunks, chunk = 3, 6, 16<<10
		blocks = []int{512, 2048}
	}
	sw := &exp.Sweep{
		Fig: Figure{
			ID: "lock", Title: "TAMPI Streaming: total time inside MPI vs block size",
			XLabel: "blocksize", X: toF(blocks),
			YLabel: "MPI seconds (modelled, all ranks) / messages",
			Notes: []string{
				"paper (§VI-C): MPI time grows 27x from block 8192 to 2048 while messages grow 4x: the THREAD_MULTIPLE lock",
			},
		},
		Series: []string{"MPI time (s)", "messages"},
	}
	for _, bs := range blocks {
		p := streaming.Params{Chunks: chunks, ChunkElems: chunk, BlockSize: bs}
		sw.Points = append(sw.Points, exp.Point{
			ID: stPointID(stTAMPI, bs),
			X:  float64(bs),
			Cfg: cluster.Config{
				Nodes: nodes, RanksPerNode: 1, CoresPerRank: coresPerNode,
				Profile:     fabric.ProfileOmniPath(),
				WithTasking: true, WithTAMPI: true,
				TAMPIPoll: 50 * time.Microsecond,
			},
			Main: func(env *cluster.Env) { streaming.RunTAMPI(env, p) },
			Values: func(job cluster.Result) map[string]float64 {
				return map[string]float64{
					"MPI time (s)": job.TotalMPITime().Seconds(),
					"messages":     float64(job.Fabric.Messages),
				}
			},
		})
	}
	return runSweep(o, sw)
}

// AblationCritPathBlame runs the three Gauss–Seidel variants instrumented
// and reduces each run's critical-path blame report (cluster.Result.Blame,
// DESIGN.md §10) to per-class makespan shares. It verifies the paper's
// causal claim from the repo's own telemetry: the MPI-based variants spend
// critical-path time serializing on the THREAD_MULTIPLE lock (application
// calls for TAMPI, the progress engine even for single-threaded MPI-Only
// ranks), while TAGASPI's notified one-sided path never touches that lock.
func AblationCritPathBlame(o Opts) Figure {
	nodes, steps := 4, 8
	if o.Preset == Quick {
		nodes, steps = 2, 4
	}
	p := gsParams(nodes, 32, 32, steps)
	classes := []critpath.Class{
		critpath.ClassCompute, critpath.ClassFabric, critpath.ClassLinkContend,
		critpath.ClassNotifyWait, critpath.ClassMPILockWait, critpath.ClassRetry,
		critpath.ClassIdle,
	}
	series := make([]string, len(classes))
	for i, c := range classes {
		series[i] = c.String()
	}
	sw := &exp.Sweep{
		Fig: Figure{
			ID: "blame", Title: "Gauss-Seidel critical-path blame by variant",
			XLabel: "variant (0=MPI-Only, 1=TAMPI, 2=TAGASPI)", X: []float64{0, 1, 2},
			YLabel: "% of makespan on the critical path",
			Notes: []string{
				"paper (§VI-C): MPI variants serialize on the THREAD_MULTIPLE lock; TAGASPI's one-sided notify path does not — its mpi_lock_wait share must be strictly below MPI-Only's",
			},
		},
		Series: series,
	}
	for _, v := range []gsVariant{gsMPIOnly, gsTAMPI, gsTAGASPI} {
		v := v
		cfg := gsConfig(v, nodes, fabric.ProfileOmniPath())
		cfg.Recorder = obs.NewCollector(cfg.Nodes * cfg.RanksPerNode)
		sw.Points = append(sw.Points, exp.Point{
			ID:  fmt.Sprintf("blame/%s", gsNames[v]),
			X:   float64(v),
			Cfg: cfg,
			Main: func(env *cluster.Env) {
				switch v {
				case gsMPIOnly:
					heat.RunMPIOnly(env, p)
				case gsTAMPI:
					heat.RunTAMPI(env, p)
				case gsTAGASPI:
					heat.RunTAGASPI(env, p)
				}
			},
			Values: func(job cluster.Result) map[string]float64 {
				vals := make(map[string]float64, len(classes))
				for _, c := range classes {
					share := 0.0
					if job.Blame != nil {
						share = 100 * job.Blame.Share(c)
					}
					vals[c.String()] = share
				}
				return vals
			},
		})
	}
	return runSweep(o, sw)
}

// AblationPollingPeriod reproduces the §VI polling-frequency tuning: the
// task-aware libraries' throughput as a function of the polling-task
// period, for a communication-bound workload (Streaming / TAGASPI) and a
// compute-bound one (Gauss–Seidel), whose lower communication intensity
// tolerates coarser polling.
func AblationPollingPeriod(o Opts) Figure {
	nodes, chunks, chunk, bs := 4, 16, 32<<10, 512
	periods := []int{10, 50, 150, 500, 1500}
	if o.Preset == Quick {
		nodes, chunks, chunk = 3, 6, 8<<10
		periods = []int{50, 500}
	}
	sw := &exp.Sweep{
		Fig: Figure{
			ID: "poll", Title: "TAGASPI Streaming throughput vs polling period",
			XLabel: "period (us)", X: toF(periods),
			YLabel: "GElements/s",
			Notes: []string{
				"paper (§VI): optimal polling period is workload-dependent: 150us for Gauss-Seidel and miniAMR, 50us for Streaming (CTE-AMD TAMPI even needs a dedicated core)",
			},
		},
		Series: []string{"TAGASPI", "Gauss-Seidel"},
	}
	for _, us := range periods {
		p := streaming.Params{Chunks: chunks, ChunkElems: chunk, BlockSize: bs}
		sw.Points = append(sw.Points, stPoint(
			fmt.Sprintf("stream/p%dus", us), stTAGASPI, nodes, 1, p,
			fabric.ProfileInfiniBand(), time.Duration(us)*time.Microsecond, float64(us)))
	}
	for _, us := range periods {
		p := gsParams(4, 32, 32, 6)
		sw.Points = append(sw.Points, exp.Point{
			ID: fmt.Sprintf("gauss/p%dus", us),
			X:  float64(us),
			Cfg: cluster.Config{
				Nodes: 4, RanksPerNode: hybridRanks, CoresPerRank: coresPerNode / hybridRanks,
				Profile:     fabric.ProfileInfiniBand(),
				WithTasking: true, WithTAGASPI: true,
				TAGASPIPoll: time.Duration(us) * time.Microsecond,
			},
			Main: func(env *cluster.Env) { heat.RunTAGASPI(env, p) },
			Values: func(job cluster.Result) map[string]float64 {
				return map[string]float64{"Gauss-Seidel": p.Updates() / job.Elapsed.Seconds() / 1e9}
			},
		})
	}
	return runSweep(o, sw)
}

// AblationRMANotification reproduces the §III analysis: notifying remote
// completion with MPI RMA (put + flush + two-sided message) costs an extra
// round-trip versus GASPI's write+notify, and the gap dominates for small
// messages.
func AblationRMANotification(o Opts) Figure {
	sizes := []int{64, 512, 4096, 32768, 262144}
	iters := 50
	if o.Preset == Quick {
		sizes = []int{64, 4096}
		iters = 10
	}
	sw := &exp.Sweep{
		Fig: Figure{
			ID: "rma", Title: "Notified one-sided transfer latency: MPI put+flush+send vs GASPI write_notify",
			XLabel: "bytes", X: toF(sizes),
			YLabel: "us per notified transfer (modelled)",
			Notes: []string{
				"paper (§III, after Belli et al.): the flush needs a remote ack round-trip and the notification is an extra two-sided message",
			},
		},
		Series: []string{"MPI put+flush+send", "GASPI write_notify"},
	}
	for _, sz := range sizes {
		sw.Points = append(sw.Points, rmaNotifyPoint(sz, iters))
	}
	return runSweep(o, sw)
}

// rmaNotifyPoint measures both §III notification idioms on a 2-rank job.
func rmaNotifyPoint(size, iters int) exp.Point {
	var mu sync.Mutex
	var mpiAvg, gaspiAvg time.Duration
	return exp.Point{
		ID: fmt.Sprintf("rma/%dB", size),
		X:  float64(size),
		Cfg: cluster.Config{
			Nodes: 2, RanksPerNode: 1, CoresPerRank: 1,
			Profile: fabric.ProfileInfiniBand(),
		},
		Main: func(env *cluster.Env) {
			seg, err := env.GASPI.SegmentCreate(0, size)
			must(err)
			winSeg, err := env.GASPI.SegmentCreate(1, size)
			if err != nil {
				panic(err)
			}
			win := env.MPI.WinCreate(winSeg)
			env.MPI.Barrier()
			clk := env.Clk
			switch env.Rank {
			case 0:
				buf := make([]byte, size)
				// MPI idiom: Put + Win_flush + empty Send (§III listing).
				t0 := clk.Now()
				for i := 0; i < iters; i++ {
					env.MPI.Put(win, buf, 1, 0)
					env.MPI.Flush(win, 1)
					env.MPI.Send(nil, 1, 0)
					env.MPI.Recv(nil, 1, 1) // receiver-consumed ack to serialize
				}
				m := (clk.Now() - t0) / time.Duration(iters)
				// GASPI idiom: write_notify; completion observed via the
				// receiver's notification-based ack.
				t1 := clk.Now()
				for i := 0; i < iters; i++ {
					must(env.GASPI.WriteNotify(0, 0, 1, 0, 0, size, 0, 1, 0, nil))
					env.GASPI.Wait(0)
					env.GASPI.Drain(0)
					env.GASPI.NotifyWaitSome(0, 1, 1, gaspisim.Block)
					env.GASPI.NotifyReset(0, 1)
				}
				g := (clk.Now() - t1) / time.Duration(iters)
				mu.Lock()
				mpiAvg, gaspiAvg = m, g
				mu.Unlock()
			case 1:
				for i := 0; i < iters; i++ {
					env.MPI.Recv(nil, 0, 0) // data-arrived notification
					env.MPI.Send(nil, 0, 1)
				}
				for i := 0; i < iters; i++ {
					env.GASPI.NotifyWaitSome(0, 0, 1, gaspisim.Block)
					env.GASPI.NotifyReset(0, 0)
					must(env.GASPI.Notify(0, 0, 1, 1, 0, nil)) // ack back
					env.GASPI.Wait(0)
					env.GASPI.Drain(0)
				}
				_ = seg
			}
		},
		Values: func(cluster.Result) map[string]float64 {
			mu.Lock()
			defer mu.Unlock()
			return map[string]float64{
				"MPI put+flush+send": mpiAvg.Seconds() * 1e6,
				"GASPI write_notify": gaspiAvg.Seconds() * 1e6,
			}
		},
	}
}

// AblationOnready reproduces the §V-A comparison: waiting the consumer ack
// with an extra predecessor task (Figure 5) versus the onready clause on
// the writer task (Figure 8), in an iterative producer-consumer loop.
func AblationOnready(o Opts) Figure {
	iterations := []int{64, 256, 1024}
	if o.Preset == Quick {
		iterations = []int{32, 64}
	}
	sw := &exp.Sweep{
		Fig: Figure{
			ID: "onready", Title: "Producer-consumer: extra ack-wait task vs onready clause",
			XLabel: "iterations", X: toF(iterations),
			YLabel: "us total (modelled)",
			Notes: []string{
				"paper (§V-A): the onready clause removes one task per write, improving performance and programmability",
			},
		},
		Series: []string{"extra wait-ack task", "onready"},
	}
	for _, iters := range iterations {
		sw.Points = append(sw.Points,
			producerConsumerPoint(iters, false),
			producerConsumerPoint(iters, true))
	}
	return runSweep(o, sw)
}

// producerConsumerPoint runs the Figure 5 / Figure 8 loops over several
// concurrent chunk slots ("real applications will work with multiple
// chunks in parallel", §IV-B), yielding the modelled completion time in
// microseconds under the matching series.
func producerConsumerPoint(iters int, useOnready bool) exp.Point {
	const (
		N     = 2048 // bytes per chunk slot
		slots = 16
	)
	name := "extra wait-ack task"
	if useOnready {
		name = "onready"
	}
	return exp.Point{
		ID: fmt.Sprintf("%s/i%d", map[bool]string{false: "ackwait", true: "onready"}[useOnready], iters),
		X:  float64(iters),
		Cfg: cluster.Config{
			Nodes: 2, RanksPerNode: 1, CoresPerRank: 2,
			Profile:     fabric.ProfileInfiniBand(),
			WithTasking: true, WithTAGASPI: true,
			TAGASPIPoll: 5 * time.Microsecond,
		},
		Main: func(env *cluster.Env) {
			seg, err := env.GASPI.SegmentCreate(0, slots*N)
			must(err)
			tg, rt := env.TAGASPI, env.RT
			dataID := func(j int) gaspisim.NotificationID { return gaspisim.NotificationID(j) }
			ackID := func(j int) gaspisim.NotificationID { return gaspisim.NotificationID(slots + j) }
			switch env.Rank {
			case 0:
				acks := make([]int64, slots)
				for i := 0; i < iters; i++ {
					for j := 0; j < slots; j++ {
						i, j := i, j
						lo, hi := j*N, (j+1)*N
						if useOnready {
							rt.Submit(func(tk *tasking.Task) {
								must(tg.WriteNotify(tk, 0, lo, 1, 0, lo, N, dataID(j), int64(i+1), j%4))
							}, tasking.WithDeps(tasking.In(seg, lo, hi)),
								tasking.WithOnReady(func(tk *tasking.Task) {
									tg.NotifyIwait(tk, 0, ackID(j), nil)
								}))
						} else {
							rt.Submit(func(tk *tasking.Task) {
								tg.NotifyIwait(tk, 0, ackID(j), &acks[j])
							}, tasking.WithDeps(tasking.OutVal(&acks[j])))
							rt.Submit(func(tk *tasking.Task) {
								must(tg.WriteNotify(tk, 0, lo, 1, 0, lo, N, dataID(j), int64(i+1), j%4))
							}, tasking.WithDeps(tasking.In(seg, lo, hi), tasking.InVal(&acks[j])))
						}
						rt.Submit(func(tk *tasking.Task) {
							tk.Compute(env.CostOf(6 * N))
						}, tasking.WithDeps(tasking.InOut(seg, lo, hi)))
					}
					rt.Throttle(2048)
				}
			case 1:
				rt.Submit(func(tk *tasking.Task) {
					for j := 0; j < slots; j++ {
						must(tg.Notify(tk, 0, 0, ackID(j), 1, j%4))
					}
				})
				got := make([]int64, slots)
				for i := 0; i < iters; i++ {
					last := i == iters-1
					for j := 0; j < slots; j++ {
						j := j
						lo, hi := j*N, (j+1)*N
						rt.Submit(func(tk *tasking.Task) {
							tg.NotifyIwait(tk, 0, dataID(j), &got[j])
						}, tasking.WithDeps(tasking.Out(seg, lo, hi), tasking.OutVal(&got[j])))
						rt.Submit(func(tk *tasking.Task) {
							tk.Compute(env.CostOf(6 * N))
							if !last {
								must(tg.Notify(tk, 0, 0, ackID(j), 1, j%4))
							}
						}, tasking.WithDeps(tasking.InOut(seg, lo, hi), tasking.InVal(&got[j])))
					}
					rt.Throttle(2048)
				}
			}
		},
		Values: func(job cluster.Result) map[string]float64 {
			return map[string]float64{name: job.Elapsed.Seconds() * 1e6}
		},
	}
}
