package figures

import (
	"sync"
	"time"

	"repro/internal/apps/heat"
	"repro/internal/apps/streaming"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/gaspisim"
	"repro/internal/tasking"
)

// must fails fast on simulator API errors: the ablation drivers run fixed,
// deterministic configurations, so any error is a programming bug.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// AblationMPILockBlowup reproduces the in-text §VI-C observation: shrinking
// the Streaming block size multiplies the total time spent inside MPI (the
// THREAD_MULTIPLE lock) far beyond the increase in message count — the
// paper measures a 27x blowup from 8192- to 2048-element blocks.
func AblationMPILockBlowup(pr Preset) Figure {
	nodes, chunks, chunk := 4, 16, 64<<10
	blocks := []int{256, 512, 1024, 2048, 4096}
	if pr == Quick {
		nodes, chunks, chunk = 3, 6, 16<<10
		blocks = []int{512, 2048}
	}
	fig := Figure{
		ID: "lock", Title: "TAMPI Streaming: total time inside MPI vs block size",
		XLabel: "blocksize", X: toF(blocks),
		YLabel: "MPI seconds (modelled, all ranks) / messages",
		Notes: []string{
			"paper (§VI-C): MPI time grows 27x from block 8192 to 2048 while messages grow 4x: the THREAD_MULTIPLE lock",
		},
	}
	var mpiTime, msgs []float64
	for _, bs := range blocks {
		p := streaming.Params{Chunks: chunks, ChunkElems: chunk, BlockSize: bs}
		cfg := cluster.Config{
			Nodes: nodes, RanksPerNode: 1, CoresPerRank: coresPerNode,
			Profile:     fabric.ProfileOmniPath(),
			WithTasking: true, WithTAMPI: true,
			TAMPIPoll: 50 * time.Microsecond,
		}
		res := cluster.Run(cfg, func(env *cluster.Env) { streaming.RunTAMPI(env, p) })
		mpiTime = append(mpiTime, res.TotalMPITime().Seconds())
		msgs = append(msgs, float64(res.Fabric.Messages))
	}
	fig.Series = append(fig.Series,
		Series{Name: "MPI time (s)", Y: mpiTime},
		Series{Name: "messages", Y: msgs})
	return fig
}

// AblationPollingPeriod reproduces the §VI polling-frequency tuning: the
// task-aware libraries' throughput as a function of the polling-task
// period, for a communication-bound workload (Streaming / TAGASPI).
func AblationPollingPeriod(pr Preset) Figure {
	nodes, chunks, chunk, bs := 4, 16, 32<<10, 512
	periods := []int{10, 50, 150, 500, 1500}
	if pr == Quick {
		nodes, chunks, chunk = 3, 6, 8<<10
		periods = []int{50, 500}
	}
	fig := Figure{
		ID: "poll", Title: "TAGASPI Streaming throughput vs polling period",
		XLabel: "period (us)", X: toF(periods),
		YLabel: "GElements/s",
		Notes: []string{
			"paper (§VI): optimal polling period is workload-dependent: 150us for Gauss-Seidel and miniAMR, 50us for Streaming (CTE-AMD TAMPI even needs a dedicated core)",
		},
	}
	var ys []float64
	for _, us := range periods {
		p := streaming.Params{Chunks: chunks, ChunkElems: chunk, BlockSize: bs}
		gps, _ := stRun(stTAGASPI, nodes, 1, p, fabric.ProfileInfiniBand(),
			time.Duration(us)*time.Microsecond)
		ys = append(ys, gps)
	}
	fig.Series = append(fig.Series, Series{Name: "TAGASPI", Y: ys})

	// Gauss-Seidel at the same periods: its lower communication intensity
	// tolerates coarser polling.
	var gs []float64
	for _, us := range periods {
		p := gsParams(4, 32, 32, 6)
		cfg := cluster.Config{
			Nodes: 4, RanksPerNode: hybridRanks, CoresPerRank: coresPerNode / hybridRanks,
			Profile:     fabric.ProfileInfiniBand(),
			WithTasking: true, WithTAGASPI: true,
			TAGASPIPoll: time.Duration(us) * time.Microsecond,
		}
		res := cluster.Run(cfg, func(env *cluster.Env) { heat.RunTAGASPI(env, p) })
		gs = append(gs, p.Updates()/res.Elapsed.Seconds()/1e9)
	}
	fig.Series = append(fig.Series, Series{Name: "Gauss-Seidel", Y: gs})
	return fig
}

// AblationRMANotification reproduces the §III analysis: notifying remote
// completion with MPI RMA (put + flush + two-sided message) costs an extra
// round-trip versus GASPI's write+notify, and the gap dominates for small
// messages.
func AblationRMANotification(pr Preset) Figure {
	sizes := []int{64, 512, 4096, 32768, 262144}
	iters := 50
	if pr == Quick {
		sizes = []int{64, 4096}
		iters = 10
	}
	fig := Figure{
		ID: "rma", Title: "Notified one-sided transfer latency: MPI put+flush+send vs GASPI write_notify",
		XLabel: "bytes", X: toF(sizes),
		YLabel: "us per notified transfer (modelled)",
		Notes: []string{
			"paper (§III, after Belli et al.): the flush needs a remote ack round-trip and the notification is an extra two-sided message",
		},
	}
	var mpiLat, gaspiLat []float64
	for _, sz := range sizes {
		m, g := rmaNotifyLatency(sz, iters)
		mpiLat = append(mpiLat, m.Seconds()*1e6)
		gaspiLat = append(gaspiLat, g.Seconds()*1e6)
	}
	fig.Series = append(fig.Series,
		Series{Name: "MPI put+flush+send", Y: mpiLat},
		Series{Name: "GASPI write_notify", Y: gaspiLat})
	return fig
}

// rmaNotifyLatency measures both §III notification idioms on a 2-rank job.
func rmaNotifyLatency(size, iters int) (mpiAvg, gaspiAvg time.Duration) {
	var mu sync.Mutex
	cfg := cluster.Config{
		Nodes: 2, RanksPerNode: 1, CoresPerRank: 1,
		Profile: fabric.ProfileInfiniBand(), Seed: 4,
	}
	cluster.Run(cfg, func(env *cluster.Env) {
		seg, err := env.GASPI.SegmentCreate(0, size)
		must(err)
		winSeg, err := env.GASPI.SegmentCreate(1, size)
		if err != nil {
			panic(err)
		}
		win := env.MPI.WinCreate(winSeg)
		env.MPI.Barrier()
		clk := env.Clk
		switch env.Rank {
		case 0:
			buf := make([]byte, size)
			// MPI idiom: Put + Win_flush + empty Send (§III listing).
			t0 := clk.Now()
			for i := 0; i < iters; i++ {
				env.MPI.Put(win, buf, 1, 0)
				env.MPI.Flush(win, 1)
				env.MPI.Send(nil, 1, 0)
				env.MPI.Recv(nil, 1, 1) // receiver-consumed ack to serialize
			}
			m := (clk.Now() - t0) / time.Duration(iters)
			// GASPI idiom: write_notify; completion observed via the
			// receiver's notification-based ack.
			t1 := clk.Now()
			for i := 0; i < iters; i++ {
				must(env.GASPI.WriteNotify(0, 0, 1, 0, 0, size, 0, 1, 0, nil))
				env.GASPI.Wait(0)
				env.GASPI.Drain(0)
				env.GASPI.NotifyWaitSome(0, 1, 1, gaspisim.Block)
				env.GASPI.NotifyReset(0, 1)
			}
			g := (clk.Now() - t1) / time.Duration(iters)
			mu.Lock()
			mpiAvg, gaspiAvg = m, g
			mu.Unlock()
		case 1:
			for i := 0; i < iters; i++ {
				env.MPI.Recv(nil, 0, 0) // data-arrived notification
				env.MPI.Send(nil, 0, 1)
			}
			for i := 0; i < iters; i++ {
				env.GASPI.NotifyWaitSome(0, 0, 1, gaspisim.Block)
				env.GASPI.NotifyReset(0, 0)
				must(env.GASPI.Notify(0, 0, 1, 1, 0, nil)) // ack back
				env.GASPI.Wait(0)
				env.GASPI.Drain(0)
			}
			_ = seg
		}
	})
	return
}

// AblationOnready reproduces the §V-A comparison: waiting the consumer ack
// with an extra predecessor task (Figure 5) versus the onready clause on
// the writer task (Figure 8), in an iterative producer-consumer loop.
func AblationOnready(pr Preset) Figure {
	iterations := []int{64, 256, 1024}
	if pr == Quick {
		iterations = []int{32, 64}
	}
	fig := Figure{
		ID: "onready", Title: "Producer-consumer: extra ack-wait task vs onready clause",
		XLabel: "iterations", X: toF(iterations),
		YLabel: "us total (modelled)",
		Notes: []string{
			"paper (§V-A): the onready clause removes one task per write, improving performance and programmability",
		},
	}
	var extra, onready []float64
	for _, iters := range iterations {
		extra = append(extra, producerConsumer(iters, false).Seconds()*1e6)
		onready = append(onready, producerConsumer(iters, true).Seconds()*1e6)
	}
	fig.Series = append(fig.Series,
		Series{Name: "extra wait-ack task", Y: extra},
		Series{Name: "onready", Y: onready})
	return fig
}

// producerConsumer runs the Figure 5 / Figure 8 loops over several
// concurrent chunk slots ("real applications will work with multiple
// chunks in parallel", §IV-B) and returns the modelled completion time.
func producerConsumer(iters int, useOnready bool) time.Duration {
	const (
		N     = 2048 // bytes per chunk slot
		slots = 16
	)
	cfg := cluster.Config{
		Nodes: 2, RanksPerNode: 1, CoresPerRank: 2,
		Profile:     fabric.ProfileInfiniBand(),
		WithTasking: true, WithTAGASPI: true,
		TAGASPIPoll: 5 * time.Microsecond,
		Seed:        5,
	}
	res := cluster.Run(cfg, func(env *cluster.Env) {
		seg, err := env.GASPI.SegmentCreate(0, slots*N)
		must(err)
		tg, rt := env.TAGASPI, env.RT
		dataID := func(j int) gaspisim.NotificationID { return gaspisim.NotificationID(j) }
		ackID := func(j int) gaspisim.NotificationID { return gaspisim.NotificationID(slots + j) }
		switch env.Rank {
		case 0:
			acks := make([]int64, slots)
			for i := 0; i < iters; i++ {
				for j := 0; j < slots; j++ {
					i, j := i, j
					lo, hi := j*N, (j+1)*N
					if useOnready {
						rt.Submit(func(tk *tasking.Task) {
							must(tg.WriteNotify(tk, 0, lo, 1, 0, lo, N, dataID(j), int64(i+1), j%4))
						}, tasking.WithDeps(tasking.In(seg, lo, hi)),
							tasking.WithOnReady(func(tk *tasking.Task) {
								tg.NotifyIwait(tk, 0, ackID(j), nil)
							}))
					} else {
						rt.Submit(func(tk *tasking.Task) {
							tg.NotifyIwait(tk, 0, ackID(j), &acks[j])
						}, tasking.WithDeps(tasking.OutVal(&acks[j])))
						rt.Submit(func(tk *tasking.Task) {
							must(tg.WriteNotify(tk, 0, lo, 1, 0, lo, N, dataID(j), int64(i+1), j%4))
						}, tasking.WithDeps(tasking.In(seg, lo, hi), tasking.InVal(&acks[j])))
					}
					rt.Submit(func(tk *tasking.Task) {
						tk.Compute(env.CostOf(6 * N))
					}, tasking.WithDeps(tasking.InOut(seg, lo, hi)))
				}
				rt.Throttle(2048)
			}
		case 1:
			rt.Submit(func(tk *tasking.Task) {
				for j := 0; j < slots; j++ {
					must(tg.Notify(tk, 0, 0, ackID(j), 1, j%4))
				}
			})
			got := make([]int64, slots)
			for i := 0; i < iters; i++ {
				last := i == iters-1
				for j := 0; j < slots; j++ {
					j := j
					lo, hi := j*N, (j+1)*N
					rt.Submit(func(tk *tasking.Task) {
						tg.NotifyIwait(tk, 0, dataID(j), &got[j])
					}, tasking.WithDeps(tasking.Out(seg, lo, hi), tasking.OutVal(&got[j])))
					rt.Submit(func(tk *tasking.Task) {
						tk.Compute(env.CostOf(6 * N))
						if !last {
							must(tg.Notify(tk, 0, 0, ackID(j), 1, j%4))
						}
					}, tasking.WithDeps(tasking.InOut(seg, lo, hi), tasking.InVal(&got[j])))
				}
				rt.Throttle(2048)
			}
		}
	})
	return res.Elapsed
}
