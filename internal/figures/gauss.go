package figures

import (
	"fmt"
	"time"

	"repro/internal/apps/heat"
	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/fabric"
)

// gsVariant identifies a Gauss–Seidel implementation.
type gsVariant int

const (
	gsMPIOnly gsVariant = iota
	gsTAMPI
	gsTAGASPI
)

var gsNames = []string{"MPI-Only", "TAMPI", "TAGASPI"}

// gsConfig builds the cluster geometry of one Gauss–Seidel variant.
func gsConfig(v gsVariant, nodes int, prof fabric.Profile) cluster.Config {
	cfg := cluster.Config{
		Nodes:   nodes,
		Profile: prof,
	}
	switch v {
	case gsMPIOnly:
		cfg.RanksPerNode, cfg.CoresPerRank = coresPerNode, 1
	default:
		cfg.RanksPerNode = hybridRanks
		cfg.CoresPerRank = coresPerNode / hybridRanks
		cfg.WithTasking = true
		// The paper tunes 150us on the full-size input; with the ~16x
		// reduced inputs the tuned period scales down accordingly.
		cfg.TAMPIPoll = 5 * time.Microsecond
		cfg.TAGASPIPoll = 5 * time.Microsecond
		if v == gsTAMPI {
			cfg.WithTAMPI = true
		} else {
			cfg.WithTAGASPI = true
		}
	}
	return cfg
}

// gsPoint is one Gauss–Seidel run, yielding the variant's throughput in
// GUpdates/s of modelled time.
func gsPoint(v gsVariant, nodes int, p heat.Params, prof fabric.Profile, x float64) exp.Point {
	return exp.Point{
		ID:  fmt.Sprintf("%s/n%d/b%dx%d", gsNames[v], nodes, p.BlockRows, p.BlockCols),
		X:   x,
		Cfg: gsConfig(v, nodes, prof),
		Main: func(env *cluster.Env) {
			switch v {
			case gsMPIOnly:
				heat.RunMPIOnly(env, p)
			case gsTAMPI:
				heat.RunTAMPI(env, p)
			case gsTAGASPI:
				heat.RunTAGASPI(env, p)
			}
		},
		Values: func(job cluster.Result) map[string]float64 {
			return map[string]float64{gsNames[v]: p.Updates() / job.Elapsed.Seconds() / 1e9}
		},
	}
}

// gsParams builds the scaled input. The matrix is sized so every node
// count in the sweep divides it; hybrid blocks are square (paper: 512²),
// MPI-only blocks are column strips (paper: 1024 columns).
func gsParams(maxNodes, blockRows, blockCols, steps int) heat.Params {
	return heat.Params{
		Rows:      64 * maxNodes * hybridRanks, // rp >= 64 rows at max scale
		Cols:      2048,
		Timesteps: steps,
		BlockRows: blockRows,
		BlockCols: blockCols,
	}
}

// Fig09GaussSeidelScaling reproduces Figure 9: strong scaling of the three
// variants with their optimal block sizes; speedup (vs MPI-only on one
// node) and parallel efficiency (vs each variant on one node).
func Fig09GaussSeidelScaling(o Opts) Figure {
	maxNodes := 16
	steps := 10
	switch o.Preset {
	case Quick:
		maxNodes, steps = 4, 6
	case Scale:
		// Paper scale: 256 nodes (2048 MPI-only ranks, 512 hybrid ranks at
		// the top point). Fewer timesteps keep the whole sweep in minutes
		// of host time; the steady-state throughput shape is established
		// after the first step's warm-up.
		maxNodes, steps = 256, 3
	}
	nodes := doubling(maxNodes)
	prof := fabric.ProfileOmniPath()
	// "Optimal" blocks at this scale (paper: 512² hybrid, 1024-col strips).
	p := gsParams(maxNodes, 64, 64, steps)
	pm := p
	pm.BlockCols = 256

	sw := &exp.Sweep{
		Fig: Figure{
			ID: "9", Title: "Gauss-Seidel strong scaling (speedup and efficiency)",
			XLabel: "nodes", X: toF(nodes),
			YLabel: "speedup vs MPI-only@1 / efficiency",
			Notes: []string{
				"paper: 256Kx128K, 1000 steps, 1-256 nodes on Marenostrum4; here 16x-reduced geometry in virtual time",
				"paper result: TAGASPI 1.15x over MPI-only and 1.06x over TAMPI at the largest scale",
			},
		},
		Series: gsNames,
	}
	for _, n := range nodes {
		for v := gsMPIOnly; v <= gsTAGASPI; v++ {
			pp := pm
			if v != gsMPIOnly {
				pp = p
			}
			sw.Points = append(sw.Points, gsPoint(v, n, pp, prof, float64(n)))
		}
	}
	if o.Preset == Scale {
		// Scale rows carry their own fig id so the BENCH_host.json scale
		// series never collides with the curated Quick baseline rows.
		sw.Fig.ID = "9-scale"
	}
	sw.Post = func(f *Figure, raw map[string][]float64, _ []exp.Result) {
		base := raw[gsNames[gsMPIOnly]][0]
		f.Series = nil
		for v := gsMPIOnly; v <= gsTAGASPI; v++ {
			thr := raw[gsNames[v]]
			f.Series = append(f.Series,
				Series{Name: gsNames[v] + " speedup", Y: exp.Speedup(thr, base)},
				Series{Name: gsNames[v] + " eff", Y: exp.Efficiency(thr, f.X)})
		}
	}
	return runSweep(o, sw)
}

// Fig10GaussSeidelBlocksize reproduces Figure 10: throughput while varying
// the block size at a fixed large scale, stressing communication.
func Fig10GaussSeidelBlocksize(o Opts) Figure {
	nodes := 8
	steps := 6
	// The paper sweeps 64..2048 on the full-size input; the equivalent
	// range at this scale (matching the compute-per-block to overhead
	// ratios) is 16..128.
	blocks := []int{16, 32, 64, 128}
	switch o.Preset {
	case Quick:
		nodes, steps = 4, 6
		blocks = []int{16, 32}
	case Scale:
		// The paper evaluates Fig. 10 at 128 nodes.
		nodes, steps = 128, 3
	}
	prof := fabric.ProfileOmniPath()
	sw := &exp.Sweep{
		Fig: Figure{
			ID: "10", Title: "Gauss-Seidel throughput vs block size",
			XLabel: "blocksize", X: toF(blocks),
			YLabel: "GUpdates/s",
			Notes: []string{
				"paper: 128Kx128K, 500 steps, 128 nodes, blocks 64-2048; here reduced geometry",
				"paper result: TAGASPI wins everywhere; at the smallest block it keeps ~60% of peak vs 41% (MPI-only) and 30% (TAMPI)",
			},
		},
		Series: gsNames,
	}
	if o.Preset == Scale {
		sw.Fig.ID = "10-scale"
	}
	for v := gsMPIOnly; v <= gsTAGASPI; v++ {
		for _, bs := range blocks {
			p := gsParams(2*nodes, bs, bs, steps) // rp=128: room for 128-blocks
			if v == gsMPIOnly {
				// The paper's x-axis is the MPI-only columns-per-block.
				p.BlockRows = 0
				p.BlockCols = bs
			}
			sw.Points = append(sw.Points, gsPoint(v, nodes, p, prof, float64(bs)))
		}
	}
	return runSweep(o, sw)
}
