package figures

import (
	"time"

	"repro/internal/apps/heat"
	"repro/internal/cluster"
	"repro/internal/fabric"
)

// gsVariant identifies a Gauss–Seidel implementation.
type gsVariant int

const (
	gsMPIOnly gsVariant = iota
	gsTAMPI
	gsTAGASPI
)

var gsNames = []string{"MPI-Only", "TAMPI", "TAGASPI"}

// gsRun executes one Gauss–Seidel configuration and returns its throughput
// in GUpdates/s of modelled time.
func gsRun(v gsVariant, nodes int, p heat.Params, prof fabric.Profile) float64 {
	cfg := cluster.Config{
		Nodes:   nodes,
		Profile: prof,
		Seed:    1,
	}
	switch v {
	case gsMPIOnly:
		cfg.RanksPerNode, cfg.CoresPerRank = coresPerNode, 1
	default:
		cfg.RanksPerNode = hybridRanks
		cfg.CoresPerRank = coresPerNode / hybridRanks
		cfg.WithTasking = true
		// The paper tunes 150us on the full-size input; with the ~16x
		// reduced inputs the tuned period scales down accordingly.
		cfg.TAMPIPoll = 5 * time.Microsecond
		cfg.TAGASPIPoll = 5 * time.Microsecond
		if v == gsTAMPI {
			cfg.WithTAMPI = true
		} else {
			cfg.WithTAGASPI = true
		}
	}
	res := cluster.Run(cfg, func(env *cluster.Env) {
		switch v {
		case gsMPIOnly:
			heat.RunMPIOnly(env, p)
		case gsTAMPI:
			heat.RunTAMPI(env, p)
		case gsTAGASPI:
			heat.RunTAGASPI(env, p)
		}
	})
	return p.Updates() / res.Elapsed.Seconds() / 1e9
}

// gsParams builds the scaled input. The matrix is sized so every node
// count in the sweep divides it; hybrid blocks are square (paper: 512²),
// MPI-only blocks are column strips (paper: 1024 columns).
func gsParams(maxNodes, blockRows, blockCols, steps int) heat.Params {
	return heat.Params{
		Rows:      64 * maxNodes * hybridRanks, // rp >= 64 rows at max scale
		Cols:      2048,
		Timesteps: steps,
		BlockRows: blockRows,
		BlockCols: blockCols,
	}
}

// Fig09GaussSeidelScaling reproduces Figure 9: strong scaling of the three
// variants with their optimal block sizes; speedup (vs MPI-only on one
// node) and parallel efficiency (vs each variant on one node).
func Fig09GaussSeidelScaling(pr Preset) Figure {
	maxNodes := 16
	steps := 10
	if pr == Quick {
		maxNodes, steps = 4, 6
	}
	nodes := doubling(maxNodes)
	prof := fabric.ProfileOmniPath()
	// "Optimal" blocks at this scale (paper: 512² hybrid, 1024-col strips).
	p := gsParams(maxNodes, 64, 64, steps)
	pm := p
	pm.BlockCols = 256

	thr := make([][]float64, 3)
	for _, n := range nodes {
		for v := gsMPIOnly; v <= gsTAGASPI; v++ {
			pp := pm
			if v != gsMPIOnly {
				pp = p
			}
			thr[v] = append(thr[v], gsRun(v, n, pp, prof))
		}
	}
	fig := Figure{
		ID: "9", Title: "Gauss-Seidel strong scaling (speedup and efficiency)",
		XLabel: "nodes", X: toF(nodes),
		YLabel: "speedup vs MPI-only@1 / efficiency",
		Notes: []string{
			"paper: 256Kx128K, 1000 steps, 1-256 nodes on Marenostrum4; here 16x-reduced geometry in virtual time",
			"paper result: TAGASPI 1.15x over MPI-only and 1.06x over TAMPI at the largest scale",
		},
	}
	base := thr[gsMPIOnly][0]
	for v := gsMPIOnly; v <= gsTAGASPI; v++ {
		sp := make([]float64, len(nodes))
		eff := make([]float64, len(nodes))
		for i := range nodes {
			sp[i] = thr[v][i] / base
			eff[i] = thr[v][i] / (thr[v][0] * float64(nodes[i]))
		}
		fig.Series = append(fig.Series, Series{Name: gsNames[v] + " speedup", Y: sp})
		fig.Series = append(fig.Series, Series{Name: gsNames[v] + " eff", Y: eff})
	}
	return fig
}

// Fig10GaussSeidelBlocksize reproduces Figure 10: throughput while varying
// the block size at a fixed large scale, stressing communication.
func Fig10GaussSeidelBlocksize(pr Preset) Figure {
	nodes := 8
	steps := 6
	// The paper sweeps 64..2048 on the full-size input; the equivalent
	// range at this scale (matching the compute-per-block to overhead
	// ratios) is 16..128.
	blocks := []int{16, 32, 64, 128}
	if pr == Quick {
		nodes, steps = 4, 6
		blocks = []int{16, 32}
	}
	prof := fabric.ProfileOmniPath()
	fig := Figure{
		ID: "10", Title: "Gauss-Seidel throughput vs block size",
		XLabel: "blocksize", X: toF(blocks),
		YLabel: "GUpdates/s",
		Notes: []string{
			"paper: 128Kx128K, 500 steps, 128 nodes, blocks 64-2048; here reduced geometry",
			"paper result: TAGASPI wins everywhere; at the smallest block it keeps ~60% of peak vs 41% (MPI-only) and 30% (TAMPI)",
		},
	}
	for v := gsMPIOnly; v <= gsTAGASPI; v++ {
		var ys []float64
		for _, bs := range blocks {
			p := gsParams(2*nodes, bs, bs, steps) // rp=128: room for 128-blocks
			if v == gsMPIOnly {
				// The paper's x-axis is the MPI-only columns-per-block.
				p.BlockRows = 0
				p.BlockCols = bs
			}
			ys = append(ys, gsRun(v, nodes, p, prof))
		}
		fig.Series = append(fig.Series, Series{Name: gsNames[v], Y: ys})
	}
	return fig
}
