package figures

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/apps/miniamr"
	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/fabric"
)

// amrVariant identifies a miniAMR implementation.
type amrVariant int

const (
	amrMPIOnly amrVariant = iota
	amrTAMPI
	amrTAGASPI
)

var amrNames = []string{"MPI-Only", "TAMPI", "TAGASPI"}

// amrSeries is the series declaration shared by both miniAMR figures:
// total and no-refinement (NR) throughput per variant.
var amrSeries = []string{
	"MPI-Only", "MPI-Only (NR)",
	"TAMPI", "TAMPI (NR)",
	"TAGASPI", "TAGASPI (NR)",
}

// amrConfig builds the cluster geometry of one miniAMR variant.
func amrConfig(v amrVariant, nodes int) cluster.Config {
	cfg := cluster.Config{
		Nodes:   nodes,
		Profile: fabric.ProfileOmniPath(),
	}
	switch v {
	case amrMPIOnly:
		cfg.RanksPerNode, cfg.CoresPerRank = coresPerNode, 1
	default:
		cfg.RanksPerNode = amrHybridRank
		cfg.CoresPerRank = coresPerNode / amrHybridRank
		cfg.WithTasking, cfg.WithTAMPI = true, true
		// Scaled from the paper's 150us optimum (16x smaller input).
		cfg.TAMPIPoll = 5 * time.Microsecond
		cfg.TAGASPIPoll = 5 * time.Microsecond
		if v == amrTAGASPI {
			cfg.WithTAGASPI = true
		}
	}
	return cfg
}

// amrPoint is one miniAMR run, yielding the variant's total and
// no-refinement (NR) throughput in GUpdates/s of modelled time. The NR
// number subtracts the slowest rank's refinement time, captured by the
// rank mains into point-local state.
func amrPoint(v amrVariant, nodes int, p miniamr.Params, x float64) exp.Point {
	cfg := amrConfig(v, nodes)
	ranks := cfg.Nodes * cfg.RanksPerNode
	epochs := p.Epochs(ranks)
	var mu sync.Mutex
	var maxRefine time.Duration
	return exp.Point{
		ID:  fmt.Sprintf("%s/n%d/v%d", amrNames[v], nodes, p.Vars),
		X:   x,
		Cfg: cfg,
		Main: func(env *cluster.Env) {
			var out miniamr.Output
			switch v {
			case amrMPIOnly:
				out = miniamr.RunMPIOnly(env, p, epochs)
			case amrTAMPI:
				out = miniamr.RunTAMPI(env, p, epochs)
			case amrTAGASPI:
				out = miniamr.RunTAGASPI(env, p, epochs)
			}
			mu.Lock()
			if out.RefineTime > maxRefine {
				maxRefine = out.RefineTime
			}
			mu.Unlock()
		},
		Values: func(job cluster.Result) map[string]float64 {
			mu.Lock()
			refine := maxRefine
			mu.Unlock()
			work := miniamr.Work(p, epochs)
			nrTime := job.Elapsed - refine
			if nrTime <= 0 {
				nrTime = job.Elapsed
			}
			return map[string]float64{
				amrNames[v]:           work / job.Elapsed.Seconds() / 1e9,
				amrNames[v] + " (NR)": work / nrTime.Seconds() / 1e9,
			}
		},
	}
}

// amrParams is the scaled miniAMR input (paper: the §VI-B input with 20
// variables and one face per message).
func amrParams(vars, steps int) miniamr.Params {
	return miniamr.Params{
		Grid:        [3]int{4, 4, 4},
		Cells:       4,
		Vars:        vars,
		Steps:       steps,
		RefineEvery: 5,
		MaxLevel:    2,
		Radius:      0.45,
	}
}

// Fig11MiniAMRScaling reproduces Figure 11: miniAMR strong scaling with 20
// variables; speedup and efficiency for total time and assuming negligible
// refinement (NR).
func Fig11MiniAMRScaling(o Opts) Figure {
	maxNodes := 16
	steps := 20
	if o.Preset == Quick {
		maxNodes, steps = 2, 10
	}
	nodes := doubling(maxNodes)
	p := amrParams(20, steps)
	sw := &exp.Sweep{
		Fig: Figure{
			ID: "11", Title: "miniAMR strong scaling (speedup, total and NR)",
			XLabel: "nodes", X: toF(nodes),
			YLabel: "speedup vs MPI-only@1",
			Notes: []string{
				"paper: 1-256 nodes, 20 variables, one face per message, Marenostrum4",
				"paper result: TAGASPI 1.41x over both at the largest scale; NR efficiencies 0.84/0.73/0.58",
			},
		},
		Series: amrSeries,
	}
	for v := amrMPIOnly; v <= amrTAGASPI; v++ {
		for _, n := range nodes {
			sw.Points = append(sw.Points, amrPoint(v, n, p, float64(n)))
		}
	}
	sw.Post = func(f *Figure, raw map[string][]float64, _ []exp.Result) {
		base := raw[amrNames[amrMPIOnly]][0]
		f.Series = nil
		for v := amrMPIOnly; v <= amrTAGASPI; v++ {
			f.Series = append(f.Series,
				Series{Name: amrNames[v], Y: exp.Speedup(raw[amrNames[v]], base)},
				Series{Name: amrNames[v] + " (NR)", Y: exp.Speedup(raw[amrNames[v]+" (NR)"], base)})
		}
	}
	return runSweep(o, sw)
}

// Fig12MiniAMRVariables reproduces Figure 12: throughput at a fixed large
// scale while varying the computed variables.
func Fig12MiniAMRVariables(o Opts) Figure {
	nodes := 8
	steps := 20
	vars := []int{10, 20, 30, 40}
	if o.Preset == Quick {
		nodes, steps = 2, 10
		vars = []int{10, 20}
	}
	sw := &exp.Sweep{
		Fig: Figure{
			ID: "12", Title: "miniAMR throughput vs computed variables",
			XLabel: "variables", X: toF(vars),
			YLabel: "GUpdates/s (total and NR)",
			Notes: []string{
				"paper: 128 nodes, 10-40 variables",
				"paper result: TAGASPI best everywhere; at 20 variables 1.46x over MPI-only and 1.40x over TAMPI (NR)",
			},
		},
		Series: amrSeries,
	}
	for v := amrMPIOnly; v <= amrTAGASPI; v++ {
		for _, nv := range vars {
			sw.Points = append(sw.Points, amrPoint(v, nodes, amrParams(nv, steps), float64(nv)))
		}
	}
	return runSweep(o, sw)
}
