package figures

import (
	"sync"
	"time"

	"repro/internal/apps/miniamr"
	"repro/internal/cluster"
	"repro/internal/fabric"
)

// amrVariant identifies a miniAMR implementation.
type amrVariant int

const (
	amrMPIOnly amrVariant = iota
	amrTAMPI
	amrTAGASPI
)

var amrNames = []string{"MPI-Only", "TAMPI", "TAGASPI"}

// amrRun executes one miniAMR configuration, returning total and
// no-refinement (NR) throughput in GUpdates/s of modelled time.
func amrRun(v amrVariant, nodes int, p miniamr.Params) (total, nr float64) {
	cfg := cluster.Config{
		Nodes:   nodes,
		Profile: fabric.ProfileOmniPath(),
		Seed:    2,
	}
	switch v {
	case amrMPIOnly:
		cfg.RanksPerNode, cfg.CoresPerRank = coresPerNode, 1
	default:
		cfg.RanksPerNode = amrHybridRank
		cfg.CoresPerRank = coresPerNode / amrHybridRank
		cfg.WithTasking, cfg.WithTAMPI = true, true
		// Scaled from the paper's 150us optimum (16x smaller input).
		cfg.TAMPIPoll = 5 * time.Microsecond
		cfg.TAGASPIPoll = 5 * time.Microsecond
		if v == amrTAGASPI {
			cfg.WithTAGASPI = true
		}
	}
	ranks := cfg.Nodes * cfg.RanksPerNode
	epochs := p.Epochs(ranks)
	var mu sync.Mutex
	var maxRefine time.Duration
	res := cluster.Run(cfg, func(env *cluster.Env) {
		var out miniamr.Output
		switch v {
		case amrMPIOnly:
			out = miniamr.RunMPIOnly(env, p, epochs)
		case amrTAMPI:
			out = miniamr.RunTAMPI(env, p, epochs)
		case amrTAGASPI:
			out = miniamr.RunTAGASPI(env, p, epochs)
		}
		mu.Lock()
		if out.RefineTime > maxRefine {
			maxRefine = out.RefineTime
		}
		mu.Unlock()
	})
	work := miniamr.Work(p, epochs)
	total = work / res.Elapsed.Seconds() / 1e9
	nrTime := res.Elapsed - maxRefine
	if nrTime <= 0 {
		nrTime = res.Elapsed
	}
	nr = work / nrTime.Seconds() / 1e9
	return
}

// amrParams is the scaled miniAMR input (paper: the §VI-B input with 20
// variables and one face per message).
func amrParams(vars, steps int) miniamr.Params {
	return miniamr.Params{
		Grid:        [3]int{4, 4, 4},
		Cells:       4,
		Vars:        vars,
		Steps:       steps,
		RefineEvery: 5,
		MaxLevel:    2,
		Radius:      0.45,
	}
}

// Fig11MiniAMRScaling reproduces Figure 11: miniAMR strong scaling with 20
// variables; speedup and efficiency for total time and assuming negligible
// refinement (NR).
func Fig11MiniAMRScaling(pr Preset) Figure {
	maxNodes := 16
	steps := 20
	if pr == Quick {
		maxNodes, steps = 2, 10
	}
	nodes := doubling(maxNodes)
	p := amrParams(20, steps)
	fig := Figure{
		ID: "11", Title: "miniAMR strong scaling (speedup, total and NR)",
		XLabel: "nodes", X: toF(nodes),
		YLabel: "speedup vs MPI-only@1",
		Notes: []string{
			"paper: 1-256 nodes, 20 variables, one face per message, Marenostrum4",
			"paper result: TAGASPI 1.41x over both at the largest scale; NR efficiencies 0.84/0.73/0.58",
		},
	}
	var baseTotal float64
	for v := amrMPIOnly; v <= amrTAGASPI; v++ {
		var tot, nr []float64
		for _, n := range nodes {
			t, r := amrRun(v, n, p)
			tot = append(tot, t)
			nr = append(nr, r)
		}
		if v == amrMPIOnly {
			baseTotal = tot[0]
		}
		sp := make([]float64, len(tot))
		spNR := make([]float64, len(nr))
		for i := range tot {
			sp[i] = tot[i] / baseTotal
			spNR[i] = nr[i] / baseTotal
		}
		fig.Series = append(fig.Series, Series{Name: amrNames[v], Y: sp})
		fig.Series = append(fig.Series, Series{Name: amrNames[v] + " (NR)", Y: spNR})
	}
	return fig
}

// Fig12MiniAMRVariables reproduces Figure 12: throughput at a fixed large
// scale while varying the computed variables.
func Fig12MiniAMRVariables(pr Preset) Figure {
	nodes := 8
	steps := 20
	vars := []int{10, 20, 30, 40}
	if pr == Quick {
		nodes, steps = 2, 10
		vars = []int{10, 20}
	}
	fig := Figure{
		ID: "12", Title: "miniAMR throughput vs computed variables",
		XLabel: "variables", X: toF(vars),
		YLabel: "GUpdates/s (total and NR)",
		Notes: []string{
			"paper: 128 nodes, 10-40 variables",
			"paper result: TAGASPI best everywhere; at 20 variables 1.46x over MPI-only and 1.40x over TAMPI (NR)",
		},
	}
	for v := amrMPIOnly; v <= amrTAGASPI; v++ {
		var tot, nr []float64
		for _, nv := range vars {
			t, r := amrRun(v, nodes, amrParams(nv, steps))
			tot = append(tot, t)
			nr = append(nr, r)
		}
		fig.Series = append(fig.Series, Series{Name: amrNames[v], Y: tot})
		fig.Series = append(fig.Series, Series{Name: amrNames[v] + " (NR)", Y: nr})
	}
	return fig
}
