package figures

import (
	"strings"
	"testing"
)

func TestAllGeneratorsRegistered(t *testing.T) {
	gens := All()
	ids := IDs()
	if len(ids) != len(gens) {
		t.Fatalf("IDs lists %d figures, All has %d", len(ids), len(gens))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if gens[id] == nil {
			t.Fatalf("figure %q has no generator", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestRenderFormatsTable(t *testing.T) {
	f := Figure{
		ID: "x", Title: "test figure", XLabel: "n", YLabel: "y",
		X:      []float64{1, 2},
		Series: []Series{{Name: "a", Y: []float64{0.5, 1.5}}, {Name: "b", Y: []float64{2}}},
		Notes:  []string{"a note"},
	}
	var sb strings.Builder
	f.Render(&sb)
	out := sb.String()
	for _, want := range []string{"test figure", "a note", "n", "a", "b", "0.5", "1.5", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

// Every generator must produce a well-formed figure at the Quick preset:
// non-empty X, every series aligned, finite values.
func TestQuickPresetFiguresWellFormed(t *testing.T) {
	// Restrict to the fast generators; the app-level ones are covered by
	// the root integration tests and benchmarks.
	for _, id := range []string{"rma", "onready"} {
		f := All()[id](Quick)
		if len(f.X) == 0 || len(f.Series) == 0 {
			t.Fatalf("figure %s empty", id)
		}
		for _, s := range f.Series {
			if len(s.Y) != len(f.X) {
				t.Fatalf("figure %s series %s misaligned: %d vs %d",
					id, s.Name, len(s.Y), len(f.X))
			}
			for _, y := range s.Y {
				if y <= 0 || y != y {
					t.Fatalf("figure %s series %s has non-positive value %v", id, s.Name, y)
				}
			}
		}
	}
}

func TestDoublingAndToF(t *testing.T) {
	ns := doubling(16)
	want := []int{1, 2, 4, 8, 16}
	if len(ns) != len(want) {
		t.Fatalf("doubling(16) = %v", ns)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("doubling(16) = %v", ns)
		}
	}
	fs := toF(ns)
	if fs[3] != 8 {
		t.Fatalf("toF broken: %v", fs)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(8) != "8" {
		t.Fatal("integers must render without decimals")
	}
	if trimFloat(0.5) != "0.5" {
		t.Fatal("fractions must keep their digits")
	}
}
