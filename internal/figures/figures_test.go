package figures

import (
	"testing"
)

func TestAllGeneratorsRegistered(t *testing.T) {
	gens := All()
	ids := IDs()
	if len(ids) != len(gens) {
		t.Fatalf("IDs lists %d figures, All has %d", len(ids), len(gens))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if gens[id] == nil {
			t.Fatalf("figure %q has no generator", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

// Every generator must produce a well-formed figure at the Quick preset:
// non-empty X, every series aligned, finite values.
func TestQuickPresetFiguresWellFormed(t *testing.T) {
	// Restrict to the fast generators; the app-level ones are covered by
	// the root integration tests and benchmarks.
	for _, id := range []string{"rma", "onready"} {
		f := All()[id](Opts{Preset: Quick})
		if len(f.X) == 0 || len(f.Series) == 0 {
			t.Fatalf("figure %s empty", id)
		}
		for _, s := range f.Series {
			if len(s.Y) != len(f.X) {
				t.Fatalf("figure %s series %s misaligned: %d vs %d",
					id, s.Name, len(s.Y), len(f.X))
			}
			for _, y := range s.Y {
				if y <= 0 || y != y {
					t.Fatalf("figure %s series %s has non-positive value %v", id, s.Name, y)
				}
			}
		}
	}
}

func TestDoublingAndToF(t *testing.T) {
	ns := doubling(16)
	want := []int{1, 2, 4, 8, 16}
	if len(ns) != len(want) {
		t.Fatalf("doubling(16) = %v", ns)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("doubling(16) = %v", ns)
		}
	}
	fs := toF(ns)
	if fs[3] != 8 {
		t.Fatalf("toF broken: %v", fs)
	}
}
