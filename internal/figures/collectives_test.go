package figures

import "testing"

// TestFigCollectivesBlockedShare pins the collectives figure's acceptance
// property: the task-aware backend's critical-path worker-blocked share
// (notify_wait + mpi_lock_wait) is strictly below both blocking backends
// at the largest swept node count — its ring steps are event-gated tasks,
// so nothing parks in a collective wait — while every latency sample
// stays positive and aligned.
func TestFigCollectivesBlockedShare(t *testing.T) {
	f := FigCollectives(Opts{Preset: Quick})
	get := func(name string) []float64 {
		t.Helper()
		for _, s := range f.Series {
			if s.Name == name {
				if len(s.Y) != len(f.X) {
					t.Fatalf("series %q misaligned: %d samples for %d x", name, len(s.Y), len(f.X))
				}
				return s.Y
			}
		}
		t.Fatalf("series %q missing", name)
		return nil
	}
	for _, v := range collVariants {
		for i, y := range get(v.name) {
			if y <= 0 || y != y {
				t.Errorf("%s latency at n=%g is %v", v.name, f.X[i], y)
			}
		}
	}
	last := len(f.X) - 1
	ta := get(collBlockedSeries(collVariants[2]))[last]
	mpi := get(collBlockedSeries(collVariants[0]))[last]
	gaspi := get(collBlockedSeries(collVariants[1]))[last]
	if !(ta < mpi && ta < gaspi) {
		t.Fatalf("task-aware blocked share %.2f%% not below blocking backends (mpi %.2f%%, gaspi %.2f%%) at n=%g",
			ta, mpi, gaspi, f.X[last])
	}
}
