package figures

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// Regression test for the sharded-courier determinism fix: the onready
// ablation at 32 producers has same-instant timer ties (poll-task timers
// against courier agenda events) that only resolve identically when agenda
// events keep the wake sequence drawn at schedule time across re-parks
// (Clock.AllocSeq + Parker.ParkUntil). The seed below is one whose tie
// pattern exposed the divergence; concurrent uninstrumented runs supply the
// scheduler noise that surfaced it under -race.
func TestOnreadyTraceStability(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism stress skipped in -short")
	}
	run := func() []byte {
		pt := producerConsumerPoint(32, true)
		cfg := pt.Cfg
		cfg.Seed = 4831456744167465630
		col := obs.NewCollector(2)
		cfg.Recorder = col
		cluster.Run(cfg, pt.Main)
		var buf bytes.Buffer
		if err := col.Tracer.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := run()
	for i := 0; i < 8; i++ {
		done := make(chan struct{})
		for g := 0; g < 3; g++ {
			go func() {
				defer func() { done <- struct{}{} }()
				pt := producerConsumerPoint(32, false)
				cfg := pt.Cfg
				cfg.Seed = 999
				cluster.Run(cfg, pt.Main)
			}()
		}
		b := run()
		for g := 0; g < 3; g++ {
			<-done
		}
		if !bytes.Equal(ref, b) {
			t.Fatalf("trace diverged at iteration %d: courier agenda events are not holding their (deadline, seq) place in the wake order", i)
		}
	}
}
