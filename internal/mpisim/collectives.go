package mpisim

import (
	"encoding/binary"
	"math"
)

// Collectives are implemented over point-to-point messages with reserved
// negative tags, as real MPI libraries do internally. Every rank must call
// each collective in the same order (the MPI ordering requirement); a
// per-process epoch counter keeps successive collectives' internal tags
// distinct so rounds of adjacent collectives cannot mismatch.

// colTag builds an internal tag for an epoch and round. Application tags
// are >= 0 and AnyTag is -1, so internal tags start at -2.
func colTag(epoch, round int) int {
	return -(2 + (epoch%(1<<20))*64 + round)
}

func (p *Proc) nextEpoch() int {
	p.mu.Lock()
	e := p.barrierTag
	p.barrierTag++
	p.mu.Unlock()
	return e
}

// Barrier blocks until every rank has entered it (dissemination barrier,
// ceil(log2 n) rounds of control messages).
func (p *Proc) Barrier() {
	n := p.Size()
	if n == 1 {
		return
	}
	epoch := p.nextEpoch()
	me := int(p.rank)
	for k, dist := 0, 1; dist < n; k, dist = k+1, dist*2 {
		to := Rank((me + dist) % n)
		from := Rank((me - dist + n) % n)
		tag := colTag(epoch, k)
		sr := p.isend(nil, to, tag)
		p.recvInternal(nil, from, tag)
		sr.park()
	}
}

// recvInternal is a blocking internal receive (reserved tags allowed).
func (p *Proc) recvInternal(buf []byte, src Rank, tag int) Status {
	r := p.irecv(buf, src, tag)
	r.park()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Bcast distributes root's buf to every rank's buf (binomial tree).
func (p *Proc) Bcast(buf []byte, root Rank) {
	p.bcastInternal(buf, root, colTag(p.nextEpoch(), 0))
}

// lowestSetAbove returns the lowest set bit of vr, or the tree size bound
// for virtual rank 0.
func lowestSetAbove(vr, n int) int {
	if vr == 0 {
		b := 1
		for b < n {
			b <<= 1
		}
		return b
	}
	return vr & -vr
}

// ReduceOp combines two float64 values.
type ReduceOp func(a, b float64) float64

// Reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 { return math.Max(a, b) }
	OpMin ReduceOp = func(a, b float64) float64 { return math.Min(a, b) }
)

// Allreduce combines vals element-wise across all ranks with op and returns
// the reduced vector on every rank (reduce-to-0 + broadcast).
func (p *Proc) Allreduce(vals []float64, op ReduceOp) []float64 {
	n := p.Size()
	out := append([]float64(nil), vals...)
	if n == 1 {
		return out
	}
	epoch := p.nextEpoch()
	buf := make([]byte, 8*len(vals))
	me := int(p.rank)
	// Binomial-tree reduction to rank 0.
	for mask, round := 1, 0; mask < n; mask, round = mask<<1, round+1 {
		tag := colTag(epoch, round)
		if me&mask != 0 {
			packF64(buf, out)
			sr := p.isend(buf, Rank(me&^mask), tag)
			sr.park()
			break
		}
		if peer := me | mask; peer < n {
			rb := make([]byte, len(buf))
			p.recvInternal(rb, Rank(peer), tag)
			other := unpackF64(rb, len(vals))
			for i := range out {
				out[i] = op(out[i], other[i])
			}
		}
	}
	// Broadcast the result from rank 0.
	packF64(buf, out)
	p.bcastInternal(buf, 0, colTag(epoch, 32))
	return unpackF64(buf, len(vals))
}

// AllgatherInt64 gathers one int64 per rank, returning the vector indexed
// by rank on every process.
func (p *Proc) AllgatherInt64(v int64) []int64 {
	n := p.Size()
	vals := make([]float64, n)
	vals[p.rank] = math.Float64frombits(uint64(v))
	// Sum works as a gather: only the owner contributes a non-zero slot —
	// but float bit-patterns don't add safely, so use a select op.
	res := p.Allreduce(vals, func(a, b float64) float64 {
		if math.Float64bits(a) != 0 {
			return a
		}
		return b
	})
	out := make([]int64, n)
	for i, f := range res {
		out[i] = int64(math.Float64bits(f))
	}
	return out
}

// bcastInternal is the binomial broadcast used by Bcast and Allreduce.
func (p *Proc) bcastInternal(buf []byte, root Rank, tag int) {
	n := p.Size()
	if n == 1 {
		return
	}
	vr := (int(p.rank) - int(root) + n) % n
	if vr != 0 {
		mask := 1
		for mask < n {
			if vr&mask != 0 {
				parent := Rank(((vr - mask) + int(root) + n) % n)
				p.recvInternal(buf, parent, tag)
				break
			}
			mask <<= 1
		}
	}
	for mask := lowestSetAbove(vr, n) >> 1; mask > 0; mask >>= 1 {
		child := vr | mask
		if child != vr && child < n {
			dst := Rank((child + int(root)) % n)
			sr := p.isend(buf, dst, tag)
			sr.park()
		}
	}
}

func packF64(dst []byte, vals []float64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
}

func unpackF64(src []byte, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
	return out
}
