package mpisim

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Collectives are implemented over point-to-point messages with reserved
// negative tags, as real MPI libraries do internally (MPI_Barrier,
// MPI_Bcast, MPI_Allreduce). Every rank must call each collective in the
// same order (the MPI ordering requirement); a per-process epoch counter
// keeps successive collectives' internal tags distinct so rounds of
// adjacent collectives cannot mismatch.
//
// The epoch counter is the single reserved-tag allocator of the process:
// both the built-in collectives below and the internal/collectives layer
// draw from it through CollectiveEpoch, so two collective implementations
// coexisting on one Proc can never mint colliding in-flight tags — and
// neither can ever collide with application point-to-point traffic, whose
// tags are validated non-negative (validTag) while every collective tag is
// <= -2.

// CollectiveRounds is the number of reserved point-to-point tags one
// collective epoch spans. A collective needing more rounds (a long ring
// schedule) must reserve further epochs through CollectiveEpoch.
const CollectiveRounds = 64

// CollectiveTag builds the reserved internal tag of (epoch, round), the
// namespace real MPI libraries hide behind MPI_COMM_WORLD's internal
// context id. Application tags are >= 0 and AnyTag is -1, so collective
// tags start at -2. The round must lie in [0, CollectiveRounds): silently
// folding an out-of-range round into the next epoch's tag space would
// alias two distinct collectives, so it panics instead.
func CollectiveTag(epoch, round int) int {
	if round < 0 || round >= CollectiveRounds {
		panic(fmt.Sprintf("mpisim: collective round %d outside [0,%d) — reserve another epoch via CollectiveEpoch", round, CollectiveRounds))
	}
	return -(2 + (epoch%(1<<20))*CollectiveRounds + round)
}

// CollectiveEpoch reserves the next collective epoch of this process and
// returns it. Because every rank issues the same collective sequence (the
// MPI ordering requirement), identical call sites draw identical epochs on
// every rank without any wire traffic — the same trick MPI implementations
// use for context-id agreement on MPI_COMM_WORLD.
func (p *Proc) CollectiveEpoch() int {
	p.mu.Lock()
	e := p.colEpoch
	p.colEpoch++
	p.mu.Unlock()
	return e
}

// colTag and nextEpoch are the short internal spellings of the exported
// allocator, kept for the built-in collectives below.
func colTag(epoch, round int) int { return CollectiveTag(epoch, round) }

func (p *Proc) nextEpoch() int { return p.CollectiveEpoch() }

// CollectiveIsend starts a non-blocking send on a reserved collective tag
// (one obtained from CollectiveTag). It is the send primitive of the
// internal/collectives layer; the public Isend rejects negative tags, so
// collective traffic cannot be forged from application code by accident.
func (p *Proc) CollectiveIsend(buf []byte, dst Rank, tag int) *Request {
	validColTag(tag)
	return p.isend(buf, dst, tag)
}

// CollectiveRecv blocks until a message with the reserved collective tag
// arrives from src, recording the blocked interval as an "mpi:wait" span
// like Recv does, so collective waits are visible to the critical-path
// analysis.
func (p *Proc) CollectiveRecv(buf []byte, src Rank, tag int) Status {
	validColTag(tag)
	r := p.irecv(buf, src, tag)
	p.parkSpan(r)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// validColTag panics unless tag is a reserved collective tag (<= -2).
func validColTag(tag int) {
	if tag > -2 {
		panic(fmt.Sprintf("mpisim: collective tag must be <= -2 (from CollectiveTag), got %d", tag))
	}
}

// Barrier blocks until every rank has entered it (dissemination barrier,
// ceil(log2 n) rounds of control messages).
func (p *Proc) Barrier() {
	n := p.Size()
	if n == 1 {
		return
	}
	epoch := p.nextEpoch()
	me := int(p.rank)
	for k, dist := 0, 1; dist < n; k, dist = k+1, dist*2 {
		to := Rank((me + dist) % n)
		from := Rank((me - dist + n) % n)
		tag := colTag(epoch, k)
		sr := p.isend(nil, to, tag)
		p.recvInternal(nil, from, tag)
		sr.park()
	}
}

// recvInternal is a blocking internal receive (reserved tags allowed).
func (p *Proc) recvInternal(buf []byte, src Rank, tag int) Status {
	r := p.irecv(buf, src, tag)
	r.park()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Bcast distributes root's buf to every rank's buf (binomial tree).
func (p *Proc) Bcast(buf []byte, root Rank) {
	p.bcastInternal(buf, root, colTag(p.nextEpoch(), 0))
}

// lowestSetAbove returns the lowest set bit of vr, or the tree size bound
// for virtual rank 0.
func lowestSetAbove(vr, n int) int {
	if vr == 0 {
		b := 1
		for b < n {
			b <<= 1
		}
		return b
	}
	return vr & -vr
}

// ReduceOp combines two float64 values.
type ReduceOp func(a, b float64) float64

// Reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 { return math.Max(a, b) }
	OpMin ReduceOp = func(a, b float64) float64 { return math.Min(a, b) }
)

// Allreduce combines vals element-wise across all ranks with op and returns
// the reduced vector on every rank (reduce-to-0 + broadcast).
func (p *Proc) Allreduce(vals []float64, op ReduceOp) []float64 {
	n := p.Size()
	out := append([]float64(nil), vals...)
	if n == 1 {
		return out
	}
	epoch := p.nextEpoch()
	buf := make([]byte, 8*len(vals))
	me := int(p.rank)
	// Binomial-tree reduction to rank 0.
	for mask, round := 1, 0; mask < n; mask, round = mask<<1, round+1 {
		tag := colTag(epoch, round)
		if me&mask != 0 {
			packF64(buf, out)
			sr := p.isend(buf, Rank(me&^mask), tag)
			sr.park()
			break
		}
		if peer := me | mask; peer < n {
			rb := make([]byte, len(buf))
			p.recvInternal(rb, Rank(peer), tag)
			other := unpackF64(rb, len(vals))
			for i := range out {
				out[i] = op(out[i], other[i])
			}
		}
	}
	// Broadcast the result from rank 0.
	packF64(buf, out)
	p.bcastInternal(buf, 0, colTag(epoch, 32))
	return unpackF64(buf, len(vals))
}

// AllgatherInt64 gathers one int64 per rank, returning the vector indexed
// by rank on every process.
func (p *Proc) AllgatherInt64(v int64) []int64 {
	n := p.Size()
	vals := make([]float64, n)
	vals[p.rank] = math.Float64frombits(uint64(v))
	// Sum works as a gather: only the owner contributes a non-zero slot —
	// but float bit-patterns don't add safely, so use a select op.
	res := p.Allreduce(vals, func(a, b float64) float64 {
		if math.Float64bits(a) != 0 {
			return a
		}
		return b
	})
	out := make([]int64, n)
	for i, f := range res {
		out[i] = int64(math.Float64bits(f))
	}
	return out
}

// bcastInternal is the binomial broadcast used by Bcast and Allreduce.
func (p *Proc) bcastInternal(buf []byte, root Rank, tag int) {
	n := p.Size()
	if n == 1 {
		return
	}
	vr := (int(p.rank) - int(root) + n) % n
	if vr != 0 {
		mask := 1
		for mask < n {
			if vr&mask != 0 {
				parent := Rank(((vr - mask) + int(root) + n) % n)
				p.recvInternal(buf, parent, tag)
				break
			}
			mask <<= 1
		}
	}
	for mask := lowestSetAbove(vr, n) >> 1; mask > 0; mask >>= 1 {
		child := vr | mask
		if child != vr && child < n {
			dst := Rank((child + int(root)) % n)
			sr := p.isend(buf, dst, tag)
			sr.park()
		}
	}
}

func packF64(dst []byte, vals []float64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
}

func unpackF64(src []byte, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
	return out
}
