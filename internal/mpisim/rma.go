package mpisim

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/memory"
)

// Win is an MPI RMA window exposing one registered segment (§II-A of the
// paper). Windows must be created collectively: every rank calls WinCreate
// in the same order, so ids match across ranks.
//
// The synchronization modes modelled are the two the paper discusses:
//
//   - Fence (active): Fence() flushes all outstanding accesses and runs a
//     barrier — the "parallelism barrier" cost of §III.
//   - Passive global shared lock: LockAll/UnlockAll plus per-target Flush,
//     where Flush costs an ack round-trip behind all prior puts, as in the
//     Belli et al. analysis the paper cites.
type Win struct {
	p   *Proc
	id  int
	seg *memory.Segment
}

// WinCreate registers seg as this rank's window memory and returns the
// window handle. Collective: every rank must call it in the same order.
func (p *Proc) WinCreate(seg *memory.Segment) *Win {
	p.mu.Lock()
	id := p.nextWin
	p.nextWin++
	w := &Win{p: p, id: id, seg: seg}
	p.wins[id] = w
	p.mu.Unlock()
	return w
}

// Put writes data into dst's window at byte offset dstOff. It returns
// immediately; remote completion is only guaranteed after Flush(dst) (or a
// fence). The local buffer is snapshotted at injection, per MPI rules that
// it must not change before synchronization.
func (p *Proc) Put(w *Win, data []byte, dst Rank, dstOff int) {
	p.charge(p.prof.MPIOpOverhead)
	m := &inMsg{kind: kindPut, src: p.rank, win: w.id, off: dstOff, size: len(data)}
	src := data
	p.fab.Send(&fabric.Message{
		Src: p.rank, Dst: dst, Class: fabric.ClassMPI, Size: len(data),
		Payload:    m,
		OnInjected: func() { m.data = append([]byte(nil), src...) },
	})
}

// Get reads len(buf) bytes from dst's window at dstOff into buf. The
// returned request completes when the data has arrived locally.
func (p *Proc) Get(w *Win, buf []byte, dst Rank, dstOff int) *Request {
	p.charge(p.prof.MPIOpOverhead)
	req := &Request{p: p}
	m := &inMsg{kind: kindGetReq, src: p.rank, win: w.id, off: dstOff,
		size: len(buf), recvBuf: buf, rmaDone: req}
	p.fab.Send(&fabric.Message{
		Src: p.rank, Dst: dst, Class: fabric.ClassMPI, Control: true, Payload: m,
	})
	return req
}

// Flush blocks until all RMA operations this process issued towards dst on
// this window have completed at the target. It costs a full round-trip
// queued behind those operations (the §III extra round-trip).
func (p *Proc) Flush(w *Win, dst Rank) {
	p.charge(p.prof.MPIOpOverhead)
	req := &Request{p: p}
	m := &inMsg{kind: kindFlushReq, src: p.rank, win: w.id, rmaDone: req}
	p.fab.Send(&fabric.Message{
		Src: p.rank, Dst: dst, Class: fabric.ClassMPI, Control: true, Payload: m,
	})
	req.park()
}

// Fence completes all outstanding accesses on the window and synchronizes
// all ranks (the active-target fence sub-mode).
func (p *Proc) Fence(w *Win) {
	for r := 0; r < p.Size(); r++ {
		if Rank(r) != p.rank {
			p.Flush(w, Rank(r))
		}
	}
	p.Barrier()
}

// LockAll opens a passive global-shared-lock epoch. In the modelled
// passive mode all windows are permanently exposed, so this is free; it
// exists for API fidelity.
func (p *Proc) LockAll(w *Win) {}

// UnlockAll closes the passive epoch, flushing every target this process
// might have touched. Callers that know their targets should prefer Flush.
func (p *Proc) UnlockAll(w *Win) {
	for r := 0; r < p.Size(); r++ {
		if Rank(r) != p.rank {
			p.Flush(w, Rank(r))
		}
	}
}

// deliverRMA handles RMA protocol messages on the target side.
func (p *Proc) deliverRMA(m *inMsg) {
	switch m.kind {
	case kindPut:
		w := p.winByID(m.win)
		dst, err := w.seg.Slice(m.off, len(m.data))
		if err != nil {
			panic(fmt.Sprintf("mpisim: Put outside window: %v", err))
		}
		copy(dst, m.data)

	case kindGetReq:
		w := p.winByID(m.win)
		src, err := w.seg.Slice(m.off, m.size)
		if err != nil {
			panic(fmt.Sprintf("mpisim: Get outside window: %v", err))
		}
		resp := &inMsg{kind: kindGetResp, src: p.rank,
			data: append([]byte(nil), src...), recvBuf: m.recvBuf, rmaDone: m.rmaDone}
		p.fab.Send(&fabric.Message{
			Src: p.rank, Dst: m.src, Class: fabric.ClassMPI, Size: m.size, Payload: resp,
		})

	case kindGetResp:
		copy(m.recvBuf, m.data)
		m.rmaDone.complete(Status{Source: m.src, Count: len(m.data)})

	case kindFlushReq:
		// All prior puts from m.src arrived before this request (per-pair
		// FIFO), so the ack certifies their remote completion.
		ack := &inMsg{kind: kindFlushAck, src: p.rank, rmaDone: m.rmaDone}
		p.fab.Send(&fabric.Message{
			Src: p.rank, Dst: m.src, Class: fabric.ClassMPI, Control: true, Payload: ack,
		})

	case kindFlushAck:
		m.rmaDone.complete(Status{Source: m.src})
	}
}

func (p *Proc) winByID(id int) *Win {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.wins[id]
	if !ok {
		panic(fmt.Sprintf("mpisim: rank %d has no window %d", p.rank, id))
	}
	return w
}
