package mpisim

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/memory"
)

// Win is an MPI RMA window exposing one registered segment (§II-A of the
// paper). Windows must be created collectively: every rank calls WinCreate
// in the same order, so ids match across ranks.
//
// The synchronization modes modelled are the two the paper discusses:
//
//   - Fence (active): Fence() flushes all outstanding accesses and runs a
//     barrier — the "parallelism barrier" cost of §III.
//   - Passive global shared lock: LockAll/UnlockAll plus per-target Flush,
//     where Flush costs an ack round-trip behind all prior puts, as in the
//     Belli et al. analysis the paper cites.
type Win struct {
	p   *Proc
	id  int
	seg *memory.Segment
}

// WinCreate registers seg as this rank's window memory and returns the
// window handle. Collective: every rank must call it in the same order.
func (p *Proc) WinCreate(seg *memory.Segment) *Win {
	p.mu.Lock()
	id := p.nextWin
	p.nextWin++
	w := &Win{p: p, id: id, seg: seg}
	p.wins[id] = w
	p.mu.Unlock()
	return w
}

// Put writes data into dst's window at byte offset dstOff. It returns
// immediately; remote completion is only guaranteed after Flush(dst) (or a
// fence). The local buffer is snapshotted at injection, per MPI rules that
// it must not change before synchronization.
func (p *Proc) Put(w *Win, data []byte, dst Rank, dstOff int) {
	p.charge(p.prof.MPIOpOverhead)
	m := newInMsg()
	m.kind, m.src, m.win, m.off, m.size = kindPut, p.rank, w.id, dstOff, len(data)
	src := data
	fm := fabric.NewMessage()
	fm.Src, fm.Dst, fm.Class, fm.Size = p.rank, dst, fabric.ClassMPI, len(data)
	fm.Payload = m
	fm.OnInjected = func() { m.data = append(m.data[:0], src...) }
	p.fab.Send(fm)
}

// Get reads len(buf) bytes from dst's window at dstOff into buf. The
// returned request completes when the data has arrived locally.
func (p *Proc) Get(w *Win, buf []byte, dst Rank, dstOff int) *Request {
	p.charge(p.prof.MPIOpOverhead)
	req := &Request{p: p}
	m := newInMsg()
	m.kind, m.src, m.win, m.off = kindGetReq, p.rank, w.id, dstOff
	m.size, m.recvBuf, m.rmaDone = len(buf), buf, req
	fm := fabric.NewMessage()
	fm.Src, fm.Dst, fm.Class, fm.Control = p.rank, dst, fabric.ClassMPI, true
	fm.Payload = m
	p.fab.Send(fm)
	return req
}

// Flush blocks until all RMA operations this process issued towards dst on
// this window have completed at the target. It costs a full round-trip
// queued behind those operations (the §III extra round-trip).
func (p *Proc) Flush(w *Win, dst Rank) {
	p.charge(p.prof.MPIOpOverhead)
	req := &Request{p: p}
	m := newInMsg()
	m.kind, m.src, m.win, m.rmaDone = kindFlushReq, p.rank, w.id, req
	fm := fabric.NewMessage()
	fm.Src, fm.Dst, fm.Class, fm.Control = p.rank, dst, fabric.ClassMPI, true
	fm.Payload = m
	p.fab.Send(fm)
	req.park()
}

// Fence completes all outstanding accesses on the window and synchronizes
// all ranks (the active-target fence sub-mode).
func (p *Proc) Fence(w *Win) {
	for r := 0; r < p.Size(); r++ {
		if Rank(r) != p.rank {
			p.Flush(w, Rank(r))
		}
	}
	p.Barrier()
}

// LockAll opens a passive global-shared-lock epoch. In the modelled
// passive mode all windows are permanently exposed, so this is free; it
// exists for API fidelity.
func (p *Proc) LockAll(w *Win) {}

// UnlockAll closes the passive epoch, flushing every target this process
// might have touched. Callers that know their targets should prefer Flush.
func (p *Proc) UnlockAll(w *Win) {
	for r := 0; r < p.Size(); r++ {
		if Rank(r) != p.rank {
			p.Flush(w, Rank(r))
		}
	}
}

// deliverRMA handles RMA protocol messages on the target side, retiring
// each to the payload pool after its last field read.
func (p *Proc) deliverRMA(m *inMsg) {
	switch m.kind {
	case kindPut:
		w := p.winByID(m.win)
		dst, err := w.seg.Slice(m.off, len(m.data))
		if err != nil {
			panic(fmt.Sprintf("mpisim: Put outside window: %v", err))
		}
		copy(dst, m.data)
		putInMsg(m)

	case kindGetReq:
		w := p.winByID(m.win)
		src, err := w.seg.Slice(m.off, m.size)
		if err != nil {
			panic(fmt.Sprintf("mpisim: Get outside window: %v", err))
		}
		resp := newInMsg()
		resp.kind, resp.src = kindGetResp, p.rank
		resp.data = append(resp.data[:0], src...)
		resp.recvBuf, resp.rmaDone = m.recvBuf, m.rmaDone
		reqSrc, size := m.src, m.size
		putInMsg(m)
		fm := fabric.NewMessage()
		fm.Src, fm.Dst, fm.Class, fm.Size = p.rank, reqSrc, fabric.ClassMPI, size
		fm.Payload = resp
		p.fab.Send(fm)

	case kindGetResp:
		n := copy(m.recvBuf, m.data)
		src, done := m.src, m.rmaDone
		putInMsg(m)
		done.complete(Status{Source: src, Count: n})

	case kindFlushReq:
		// All prior puts from m.src arrived before this request (per-pair
		// FIFO), so the ack certifies their remote completion.
		ack := newInMsg()
		ack.kind, ack.src, ack.rmaDone = kindFlushAck, p.rank, m.rmaDone
		reqSrc := m.src
		putInMsg(m)
		fm := fabric.NewMessage()
		fm.Src, fm.Dst, fm.Class, fm.Control = p.rank, reqSrc, fabric.ClassMPI, true
		fm.Payload = ack
		p.fab.Send(fm)

	case kindFlushAck:
		src, done := m.src, m.rmaDone
		putInMsg(m)
		done.complete(Status{Source: src})
	}
}

func (p *Proc) winByID(id int) *Win {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.wins[id]
	if !ok {
		panic(fmt.Sprintf("mpisim: rank %d has no window %d", p.rank, id))
	}
	return w
}
