// Package mpisim implements the two-sided MPI subset the paper's baselines
// use (blocking and non-blocking point-to-point, Test/Testsome/Wait,
// collectives) plus the MPI one-sided interface of §II-A (windows, put/get,
// fence and passive synchronization with flush), over the simulated fabric.
//
// The model captures the properties the paper's analysis rests on:
//
//   - Tag matching with posted-receive and unexpected-message queues, with
//     MPI's non-overtaking guarantee per (source, destination) pair.
//   - The eager/rendezvous protocol split at Profile.EagerThreshold; a
//     rendezvous send costs an extra RTS/CTS control round-trip.
//   - One process-wide library lock (MPI_THREAD_MULTIPLE) whose service
//     time is charged for every Isend/Irecv/Test/Testsome call. Under
//     concurrent calls from many tasks the queueing delay on this lock
//     grows sharply — the §VI-C observation (27× MPI-time blowup) that
//     explains TAMPI's small-block collapse.
//   - MPI_Win_flush requiring a remote ack round-trip, the §III argument
//     for why the put+flush+send notification idiom underperforms.
package mpisim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/vclock"
	"repro/internal/vsync"
)

// Rank aliases the fabric rank type.
type Rank = fabric.Rank

// Wildcards for Irecv matching.
const (
	AnySource Rank = -1
	AnyTag    int  = -1
)

// Status describes a completed receive.
type Status struct {
	Source Rank
	Tag    int
	Count  int // bytes received
}

// World owns the MPI processes of one simulated job.
type World struct {
	fab   *fabric.Fabric
	procs []*Proc
}

// NewWorld creates one Proc per fabric rank and registers their delivery
// handlers.
func NewWorld(fab *fabric.Fabric, seed int64) *World {
	w := &World{fab: fab}
	n := fab.Topology().Ranks()
	w.procs = make([]*Proc, n)
	for r := 0; r < n; r++ {
		p := &Proc{
			world:    w,
			rank:     Rank(r),
			fab:      fab,
			clk:      fab.Clock(),
			prof:     fab.Profile(),
			libLock:  vsync.NewResource(fab.Clock()),
			jit:      fabric.NewJitterer(fabric.MPIJitterSeed(seed, r), fab.Profile().MPIJitter),
			wins:     make(map[int]*Win),
			waitName: fmt.Sprintf("mpi-wait@%d", r),
		}
		w.procs[r] = p
		fab.Register(Rank(r), fabric.ClassMPI, p.deliver)
	}
	return w
}

// Proc returns the process of the given rank.
func (w *World) Proc(r Rank) *Proc { return w.procs[r] }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.procs) }

// SetRecorder installs the observability recorder on every process. It must
// be called before any traffic; a nil recorder (the default) keeps the
// world uninstrumented.
func (w *World) SetRecorder(rec obs.Recorder) {
	for _, p := range w.procs {
		p.rec = rec
	}
}

// Proc is one MPI process: its matching engine, library lock and windows.
type Proc struct {
	world *World
	rank  Rank
	fab   *fabric.Fabric
	clk   vclock.Clock
	prof  fabric.Profile

	// libLock models the MPI_THREAD_MULTIPLE lock: every library call is
	// served through it, so its queueing statistics measure "time inside
	// MPI" including lock waits.
	libLock *vsync.Resource
	rec     obs.Recorder // nil: uninstrumented

	// waitName is the diagnostic parker label of Wait callers, built once
	// (a per-park Sprintf shows up in the hot path of wait-heavy runs).
	waitName string

	mu         sync.Mutex // protects the matching state and jitter RNG
	jit        *fabric.Jitterer
	posted     []*postedRecv
	unexpected []*inMsg
	nextWin    int
	wins       map[int]*Win
	colEpoch   int // collective-epoch allocator (CollectiveEpoch)

	// Progress-engine bookkeeping (§VI-C, DESIGN.md §10): couriers note
	// each delivery here instead of taking libLock themselves, and the
	// application's next library call charges MPIMatchCost per delivery
	// that happened strictly before its own virtual instant. The strict
	// inequality is what keeps runs deterministic: a delivery at the same
	// instant as an application call is excluded regardless of which
	// goroutine the host scheduler ran first, and any strictly earlier
	// delivery has finished its note before the clock could advance (the
	// courier is not parked mid-deliver). progOld counts deliveries before
	// progTs; progN counts deliveries at exactly progTs. Guarded by mu.
	progOld int64
	progN   int64
	progTs  time.Duration
}

// Rank returns the process rank.
func (p *Proc) Rank() Rank { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return len(p.world.procs) }

// Clock returns the process's virtual clock, for layers built on top of
// the Proc (internal/collectives) that stamp their own trace spans.
func (p *Proc) Clock() vclock.Clock { return p.clk }

// LockStats reports the library-lock resource statistics: Busy+Waited is
// the modelled total time inside MPI (the §VI-C metric).
func (p *Proc) LockStats() vsync.ResourceStats { return p.libLock.Stats() }

// Snapshot returns the library-lock statistics in the common observability
// shape (obs.Snapshotter).
func (p *Proc) Snapshot() obs.Snapshot {
	st := p.libLock.Stats()
	return obs.Snapshot{
		Component: "mpi",
		Rank:      int(p.rank),
		Samples: []obs.Sample{
			{Name: "lock.uses", Value: float64(st.Uses)},
			{Name: "lock.busy", Value: st.Busy.Seconds(), Unit: "s"},
			{Name: "lock.waited", Value: st.Waited.Seconds(), Unit: "s"},
			{Name: "lock.max_wait", Value: st.MaxWait.Seconds(), Unit: "s"},
		},
	}
}

// Reset clears the library-lock statistics (obs.Snapshotter).
func (p *Proc) Reset() { p.libLock.ResetStats() }

// Request is a non-blocking operation handle.
type Request struct {
	p       *Proc
	rdv     []byte // rendezvous source buffer (set before the RTS is sent)
	mu      sync.Mutex
	done    bool
	status  Status
	waiters []vclock.Parker
}

func (r *Request) complete(st Status) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		panic("mpisim: request completed twice")
	}
	r.done = true
	r.status = st
	ws := r.waiters
	r.waiters = nil
	r.mu.Unlock()
	if rec := r.p.rec; rec != nil {
		rec.Instant(int(r.p.rank), obs.TrackMPI, obs.CatMPI, "mpi:complete",
			r.p.clk.Now(), int64(st.Count))
	}
	for _, w := range ws {
		w.Unpark()
	}
}

// Done reports completion without charging library time (internal use; the
// public polling APIs are Test/Testsome, which pay for the lock).
func (r *Request) Done() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// park blocks the caller until the request completes.
func (r *Request) park() {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	p := r.p.clk.Parker()
	p.SetName(r.p.waitName)
	r.waiters = append(r.waiters, p)
	r.mu.Unlock()
	p.Park()
}

// postedRecv is a receive waiting for a matching message.
type postedRecv struct {
	buf []byte
	src Rank
	tag int
	req *Request
}

func (pr *postedRecv) matches(src Rank, tag int) bool {
	if pr.src != AnySource && pr.src != src {
		return false
	}
	if pr.tag == AnyTag {
		// Wildcards live in the application context: reserved collective
		// tags (<= -2, from CollectiveTag) are never eligible, mirroring
		// MPI's communicator context separation — an AnyTag receive posted
		// across a collective must not swallow one of its rounds.
		return tag >= 0
	}
	return pr.tag == tag
}

// msgKind discriminates protocol messages.
type msgKind uint8

const (
	kindEager msgKind = iota
	kindRTS
	kindCTS
	kindRData
	kindPut
	kindGetReq
	kindGetResp
	kindFlushReq
	kindFlushAck
)

// inMsg is a protocol message payload. Pooled: once a consumer passes it
// to putInMsg nothing may touch it again.
//
//tagalint:pooled
type inMsg struct {
	kind msgKind
	src  Rank
	tag  int
	data []byte
	size int

	sendReq *Request // rendezvous: the sender-side request (RTS/CTS/RData)
	recvReq *Request // rendezvous: the receiver-side request (CTS/RData)
	recvBuf []byte   // rendezvous: bound destination buffer

	win     int // RMA: window id
	off     int // RMA: window offset
	rmaDone *Request
}

// inMsgPool recycles protocol message payloads (MPI Continuations makes
// the same argument for completion objects: reuse beats per-op
// allocation). A message is released exactly once, by the consumer that
// retired it — consume/deliver/deliverRMA after its last field read — and
// keeps its data array, so steady-state traffic allocates neither payload
// structs nor fresh snapshot buffers.
var inMsgPool = sync.Pool{New: func() any { return new(inMsg) }}

// newInMsg returns a pooled message with every field zero and an empty
// (capacity-retaining) data buffer.
//
//tagalint:hotpath
func newInMsg() *inMsg { return inMsgPool.Get().(*inMsg) }

// putInMsg zeroes m, keeps its data array for the next snapshot, and
// returns it to the pool.
//
//tagalint:pooled release
//tagalint:hotpath
func putInMsg(m *inMsg) {
	data := m.data
	*m = inMsg{}
	if data != nil {
		m.data = data[:0]
	}
	inMsgPool.Put(m)
}

// charge serves one library call through the THREAD_MULTIPLE lock. The
// queueing delay it returns from the lock resource is the per-call share of
// the §VI-C "time inside MPI" blowup; instrumented runs feed it straight
// into the mpi.lock_wait histogram, and every nonzero wait additionally
// records an "mpi:lock_wait" span plus a lock-acquire flow edge (wait start
// → acquire) so the critical-path analysis can blame lock serialization
// (DESIGN.md §10). The edge id hashes (rank, wait start, wait length) —
// all virtual quantities, so ids are deterministic across reruns.
//
//tagalint:hotpath
func (p *Proc) charge(base time.Duration) {
	now := p.clk.Now()
	p.mu.Lock()
	d := p.jit.Apply(base)
	k := p.progOld
	if p.progTs < now {
		k += p.progN
		p.progN = 0
	}
	p.progOld = 0
	p.mu.Unlock()
	p.useLock(now, time.Duration(k)*p.prof.MPIMatchCost, d)
}

// progressNote records that the progress engine has an incoming message to
// match: the courier delivering it must not take the THREAD_MULTIPLE lock
// itself (the grant order between a courier and an application call landing
// on the same virtual instant would depend on host scheduling), so it only
// counts the delivery and the application's next library call serves the
// matching work through the lock (§VI-C) — deliveries strictly before the
// call's instant are charged, same-instant ones deferred to the call after.
//
//tagalint:hotpath
func (p *Proc) progressNote() {
	now := p.clk.Now()
	p.mu.Lock()
	if now != p.progTs {
		p.progOld += p.progN
		p.progN = 0
		p.progTs = now
	}
	p.progN++
	p.mu.Unlock()
}

// useLock occupies the library lock for prog+d of modelled time, where prog
// is the progress engine's pending matching work serialized ahead of the
// caller's own call, and records the effective queueing delay (queueing +
// prog): the mpi.lock_wait histogram always, and — on a nonzero wait — an
// "mpi:lock_wait" span plus a lock-acquire flow edge (wait start → acquire)
// so the critical-path analysis can blame lock serialization (DESIGN.md
// §10). The edge id hashes (rank, wait start, wait length) — all virtual
// quantities, so ids are deterministic across reruns.
//
//tagalint:hotpath
func (p *Proc) useLock(start, prog, d time.Duration) {
	waited := p.libLock.Use(prog + d)
	if p.rec != nil {
		waited += prog
		p.rec.Latency("mpi.lock_wait", waited)
		if waited > 0 {
			acq := start + waited
			p.rec.Span(int(p.rank), obs.TrackMPI, obs.CatMPI, "mpi:lock_wait",
				start, acq, int64(waited))
			id := obs.FlowID(obs.FlowKindLock, int64(p.rank), int64(start), int64(waited))
			p.rec.Flow(int(p.rank), obs.TrackMPI, obs.CatMPI, "flow:lock", 's', start, id)
			p.rec.Flow(int(p.rank), obs.TrackMPI, obs.CatMPI, "flow:lock", 'f', acq, id)
		}
	}
}

// validTag panics on reserved tags (negative values are internal).
func validTag(tag int) {
	if tag < 0 {
		panic(fmt.Sprintf("mpisim: application tags must be >= 0, got %d", tag))
	}
}

// Isend starts a non-blocking send of buf to dst with the given tag.
// The returned request completes when the buffer may be reused (eager:
// local injection; rendezvous: data injection after the CTS).
func (p *Proc) Isend(buf []byte, dst Rank, tag int) *Request {
	validTag(tag)
	return p.isend(buf, dst, tag)
}

func (p *Proc) isend(buf []byte, dst Rank, tag int) *Request {
	var start time.Duration
	if p.rec != nil {
		start = p.clk.Now()
	}
	p.charge(p.prof.MPIOpOverhead + p.prof.MPIMatchCost)
	if p.rec != nil {
		p.rec.Span(int(p.rank), obs.TrackMPI, obs.CatMPI, "mpi:isend",
			start, p.clk.Now(), int64(len(buf)))
	}
	req := &Request{p: p}
	if len(buf) <= p.prof.EagerThreshold {
		m := newInMsg()
		m.kind, m.src, m.tag, m.size = kindEager, p.rank, tag, len(buf)
		fm := fabric.NewMessage()
		fm.Src, fm.Dst, fm.Class, fm.Size = p.rank, dst, fabric.ClassMPI, len(buf)
		fm.Payload = m
		fm.OnInjected = func() {
			m.data = append(m.data[:0], buf...)
			req.complete(Status{Source: p.rank, Tag: tag, Count: len(buf)})
		}
		p.fab.Send(fm)
		return req
	}
	// Rendezvous: request-to-send control message; data flows after CTS.
	req.rdv = buf
	m := newInMsg()
	m.kind, m.src, m.tag, m.size, m.sendReq = kindRTS, p.rank, tag, len(buf), req
	fm := fabric.NewMessage()
	fm.Src, fm.Dst, fm.Class, fm.Control = p.rank, dst, fabric.ClassMPI, true
	fm.Payload = m
	p.fab.Send(fm)
	return req
}

// Irecv starts a non-blocking receive into buf from src (or AnySource) with
// the given tag (or AnyTag). It completes when the data is in buf.
func (p *Proc) Irecv(buf []byte, src Rank, tag int) *Request {
	if tag != AnyTag {
		validTag(tag)
	}
	return p.irecv(buf, src, tag)
}

func (p *Proc) irecv(buf []byte, src Rank, tag int) *Request {
	var start time.Duration
	if p.rec != nil {
		start = p.clk.Now()
	}
	p.charge(p.prof.MPIOpOverhead + p.prof.MPIMatchCost)
	if p.rec != nil {
		p.rec.Span(int(p.rank), obs.TrackMPI, obs.CatMPI, "mpi:irecv",
			start, p.clk.Now(), int64(len(buf)))
	}
	req := &Request{p: p}
	pr := &postedRecv{buf: buf, src: src, tag: tag, req: req}
	p.mu.Lock()
	// Search the unexpected queue in arrival order.
	for i, m := range p.unexpected {
		if (m.kind == kindEager || m.kind == kindRTS) && pr.matches(m.src, m.tag) {
			p.unexpected = append(p.unexpected[:i], p.unexpected[i+1:]...)
			p.mu.Unlock()
			p.consume(m, pr)
			return req
		}
	}
	p.posted = append(p.posted, pr)
	p.mu.Unlock()
	return req
}

// consume completes the match of message m with posted receive pr and
// retires m to the payload pool.
//
//tagalint:hotpath
func (p *Proc) consume(m *inMsg, pr *postedRecv) {
	switch m.kind {
	case kindEager:
		n := copy(pr.buf, m.data)
		src, tag := m.src, m.tag
		putInMsg(m)
		pr.req.complete(Status{Source: src, Tag: tag, Count: n})
	case kindRTS:
		// Grant the sender a clear-to-send, binding our buffer.
		cts := newInMsg()
		cts.kind, cts.src, cts.tag = kindCTS, p.rank, m.tag
		cts.sendReq, cts.recvReq, cts.recvBuf = m.sendReq, pr.req, pr.buf
		dst := m.src
		putInMsg(m)
		fm := fabric.NewMessage()
		fm.Src, fm.Dst, fm.Class, fm.Control = p.rank, dst, fabric.ClassMPI, true
		fm.Payload = cts
		p.fab.Send(fm)
	default:
		panic(fmt.Sprintf("mpisim: consume of kind %d", m.kind))
	}
}

// deliver is the fabric handler: it runs on courier goroutines in arrival
// order per source.
//
//tagalint:hotpath
func (p *Proc) deliver(fm *fabric.Message) {
	p.progressNote()
	m := fm.Payload.(*inMsg)
	switch m.kind {
	case kindEager, kindRTS:
		p.mu.Lock()
		for i, pr := range p.posted {
			if pr.matches(m.src, m.tag) {
				p.posted = append(p.posted[:i], p.posted[i+1:]...)
				p.mu.Unlock()
				p.consume(m, pr)
				return
			}
		}
		//lint:ignore hotalloc the unexpected queue grows only when receives lag sends; matched traffic never reaches this append
		p.unexpected = append(p.unexpected, m)
		p.mu.Unlock()

	case kindCTS:
		// We are the original sender: push the data.
		src := m.src // the receiver granting the CTS
		buf := m.sendReq.rdv
		tag, sreq := m.tag, m.sendReq
		dm := newInMsg()
		dm.kind, dm.src, dm.tag, dm.size = kindRData, p.rank, tag, len(buf)
		dm.sendReq, dm.recvReq, dm.recvBuf = sreq, m.recvReq, m.recvBuf
		putInMsg(m)
		fm := fabric.NewMessage()
		fm.Src, fm.Dst, fm.Class, fm.Size = p.rank, src, fabric.ClassMPI, len(buf)
		fm.Payload = dm
		//lint:ignore hotalloc one closure per rendezvous is the protocol's cost, amortised over an EagerThreshold-sized transfer
		fm.OnInjected = func() {
			dm.data = append(dm.data[:0], buf...)
			sreq.complete(Status{Source: p.rank, Tag: tag, Count: len(buf)})
		}
		p.fab.Send(fm)

	case kindRData:
		n := copy(m.recvBuf, m.data)
		src, tag, rreq := m.src, m.tag, m.recvReq
		putInMsg(m)
		rreq.complete(Status{Source: src, Tag: tag, Count: n})

	case kindPut, kindGetReq, kindGetResp, kindFlushReq, kindFlushAck:
		p.deliverRMA(m)

	default:
		panic(fmt.Sprintf("mpisim: deliver of kind %d", m.kind))
	}
}

// Test polls a request, charging one library call. It reports completion
// and, when complete, the receive status.
func (p *Proc) Test(r *Request) (bool, Status) {
	p.charge(p.prof.MPIOpOverhead)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done, r.status
}

// Testsome polls a set of requests under a single library call, returning
// the indices of the completed ones (nil requests are skipped). This is the
// call TAMPI's polling service uses.
func (p *Proc) Testsome(reqs []*Request) []int {
	p.charge(p.prof.MPIOpOverhead)
	var idx []int
	for i, r := range reqs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		if r.done {
			idx = append(idx, i)
		}
		r.mu.Unlock()
	}
	return idx
}

// Wait blocks until the request completes and returns its status. The
// blocked interval is recorded as an "mpi:wait" span so completion waits
// are visible to the critical-path analysis.
func (p *Proc) Wait(r *Request) Status {
	p.charge(p.prof.MPIOpOverhead)
	var start time.Duration
	if p.rec != nil {
		start = p.clk.Now()
	}
	r.park()
	if p.rec != nil {
		p.rec.Span(int(p.rank), obs.TrackMPI, obs.CatMPI, "mpi:wait",
			start, p.clk.Now(), 1)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Waitall blocks until every request completes. The blocked interval is
// recorded as one "mpi:wait" span (arg: request count).
func (p *Proc) Waitall(reqs []*Request) {
	p.charge(p.prof.MPIOpOverhead)
	var start time.Duration
	if p.rec != nil {
		start = p.clk.Now()
	}
	for _, r := range reqs {
		if r != nil {
			r.park()
		}
	}
	if p.rec != nil {
		p.rec.Span(int(p.rank), obs.TrackMPI, obs.CatMPI, "mpi:wait",
			start, p.clk.Now(), int64(len(reqs)))
	}
}

// Send is the blocking send.
func (p *Proc) Send(buf []byte, dst Rank, tag int) {
	r := p.Isend(buf, dst, tag)
	p.parkSpan(r)
}

// Recv is the blocking receive.
func (p *Proc) Recv(buf []byte, src Rank, tag int) Status {
	r := p.Irecv(buf, src, tag)
	p.parkSpan(r)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// parkSpan parks on r and records the blocked interval as an "mpi:wait"
// span, like Wait does.
func (p *Proc) parkSpan(r *Request) {
	var start time.Duration
	if p.rec != nil {
		start = p.clk.Now()
	}
	r.park()
	if p.rec != nil {
		p.rec.Span(int(p.rank), obs.TrackMPI, obs.CatMPI, "mpi:wait",
			start, p.clk.Now(), 1)
	}
}
