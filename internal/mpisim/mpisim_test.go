package mpisim

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/fabric"
	"repro/internal/memory"
	"repro/internal/vclock"
)

// testProfile: 1µs latency, 1 byte/ns bandwidth, small deterministic costs.
func testProfile() fabric.Profile {
	return fabric.Profile{
		Name:               "test",
		InterNodeLatency:   time.Microsecond,
		IntraNodeLatency:   100 * time.Nanosecond,
		InterNodeBandwidth: 1e9,
		IntraNodeBandwidth: 2e9,
		InjectOverhead:     0,
		MPIOpOverhead:      0,
		MPIMatchCost:       0,
		EagerThreshold:     1024,
		RDMAEmulFactor:     1,
	}
}

// withWorld runs fn concurrently as every rank of a fresh world and waits
// for all ranks to return.
func withWorld(nodes, rpn int, prof fabric.Profile, fn func(p *Proc)) *fabric.Fabric {
	clk := vclock.NewVirtual()
	fab := fabric.New(clk, fabric.NewTopology(nodes, rpn), prof)
	w := NewWorld(fab, 1)
	var wg sync.WaitGroup
	for r := 0; r < w.Size(); r++ {
		p := w.Proc(Rank(r))
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			fn(p)
		})
	}
	wg.Wait()
	return fab
}

func TestEagerPingPong(t *testing.T) {
	withWorld(2, 1, testProfile(), func(p *Proc) {
		msg := []byte("hello mpi")
		switch p.Rank() {
		case 0:
			p.Send(msg, 1, 7)
			buf := make([]byte, 16)
			st := p.Recv(buf, 1, 8)
			if string(buf[:st.Count]) != "world" {
				t.Errorf("rank 0 got %q", buf[:st.Count])
			}
			if st.Source != 1 || st.Tag != 8 {
				t.Errorf("status = %+v", st)
			}
		case 1:
			buf := make([]byte, 16)
			st := p.Recv(buf, 0, 7)
			if string(buf[:st.Count]) != "hello mpi" {
				t.Errorf("rank 1 got %q", buf[:st.Count])
			}
			p.Send([]byte("world"), 0, 8)
		}
	})
}

func TestRendezvousLargeMessage(t *testing.T) {
	payload := make([]byte, 10000) // above the 1024 eager threshold
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	withWorld(2, 1, testProfile(), func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(payload, 1, 0)
		case 1:
			buf := make([]byte, len(payload))
			st := p.Recv(buf, 0, 0)
			if st.Count != len(payload) || !bytes.Equal(buf, payload) {
				t.Error("rendezvous payload corrupted")
			}
		}
	})
}

func TestRendezvousCostsExtraRoundTrip(t *testing.T) {
	// With zero software overheads, an eager message of size S arrives at
	// ~S/bw*2+lat; a rendezvous one pays an extra RTS/CTS round-trip first.
	prof := testProfile()
	var eagerT, rdvT time.Duration
	withWorld(2, 1, prof, func(p *Proc) {
		small := make([]byte, 1000) // eager
		large := make([]byte, 2000) // rendezvous (threshold 1024)
		clk := p.clk
		switch p.Rank() {
		case 0:
			p.Send(small, 1, 0)
			p.Send(large, 1, 1)
		case 1:
			t0 := clk.Now()
			p.Recv(make([]byte, 1000), 0, 0)
			eagerT = clk.Now() - t0
			t1 := clk.Now()
			p.Recv(make([]byte, 2000), 0, 1)
			rdvT = clk.Now() - t1
		}
	})
	// Eager 1000B: inject 1µs + flight 1µs + rx 1µs = 3µs.
	if eagerT != 3*time.Microsecond {
		t.Fatalf("eager took %v, want 3µs", eagerT)
	}
	// Rendezvous adds RTS (1µs flight) + CTS (1µs flight) before the data.
	if rdvT <= eagerT {
		t.Fatalf("rendezvous (%v) must cost more than eager (%v)", rdvT, eagerT)
	}
}

func TestNonOvertakingSameTag(t *testing.T) {
	const n = 50
	withWorld(2, 1, testProfile(), func(p *Proc) {
		switch p.Rank() {
		case 0:
			for i := 0; i < n; i++ {
				p.Send([]byte{byte(i)}, 1, 5)
			}
		case 1:
			for i := 0; i < n; i++ {
				var b [1]byte
				p.Recv(b[:], 0, 5)
				if int(b[0]) != i {
					t.Errorf("message %d overtaken by %d", i, b[0])
				}
			}
		}
	})
}

func TestWildcardAnySourceAnyTag(t *testing.T) {
	withWorld(3, 1, testProfile(), func(p *Proc) {
		switch p.Rank() {
		case 0:
			seen := map[Rank]bool{}
			for i := 0; i < 2; i++ {
				var b [8]byte
				st := p.Recv(b[:], AnySource, AnyTag)
				seen[st.Source] = true
				if st.Tag != 10+int(st.Source) {
					t.Errorf("tag %d from %d", st.Tag, st.Source)
				}
			}
			if !seen[1] || !seen[2] {
				t.Errorf("sources seen: %v", seen)
			}
		default:
			p.Send([]byte("x"), 0, 10+int(p.Rank()))
		}
	})
}

func TestUnexpectedMessageQueue(t *testing.T) {
	// The send arrives before the receive is posted; matching must happen
	// from the unexpected queue.
	withWorld(2, 1, testProfile(), func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send([]byte("early"), 1, 3)
		case 1:
			p.clk.Sleep(100 * time.Microsecond) // let the message land first
			buf := make([]byte, 8)
			st := p.Recv(buf, 0, 3)
			if string(buf[:st.Count]) != "early" {
				t.Errorf("got %q", buf[:st.Count])
			}
		}
	})
}

func TestTestAndTestsome(t *testing.T) {
	withWorld(2, 1, testProfile(), func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.clk.Sleep(10 * time.Microsecond)
			p.Send([]byte("a"), 1, 0)
			p.Send([]byte("b"), 1, 1)
		case 1:
			r0 := p.Irecv(make([]byte, 1), 0, 0)
			r1 := p.Irecv(make([]byte, 1), 0, 1)
			if done, _ := p.Test(r0); done {
				t.Error("Test reported done before any send")
			}
			for {
				idx := p.Testsome([]*Request{r0, r1})
				if len(idx) == 2 {
					break
				}
				p.clk.Sleep(time.Microsecond)
			}
		}
	})
}

func TestWaitallAndNilRequests(t *testing.T) {
	withWorld(2, 1, testProfile(), func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send([]byte("a"), 1, 0)
			p.Send([]byte("b"), 1, 1)
		case 1:
			rs := []*Request{
				p.Irecv(make([]byte, 1), 0, 0),
				nil,
				p.Irecv(make([]byte, 1), 0, 1),
			}
			p.Waitall(rs)
			if !rs[0].Done() || !rs[2].Done() {
				t.Error("Waitall returned with incomplete requests")
			}
		}
	})
}

func TestNegativeUserTagPanics(t *testing.T) {
	clk := vclock.NewVirtual()
	fab := fabric.New(clk, fabric.NewTopology(2, 1), testProfile())
	w := NewWorld(fab, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Proc(0).Isend(nil, 1, -5) // validTag fires before any clock use
}

func TestBarrierSynchronizes(t *testing.T) {
	var mu sync.Mutex
	var minExit, maxEnter time.Duration
	minExit = time.Hour
	withWorld(4, 1, testProfile(), func(p *Proc) {
		// Stagger the entries; no rank may exit before the last entry.
		d := time.Duration(p.Rank()) * 10 * time.Microsecond
		p.clk.Sleep(d)
		enter := p.clk.Now()
		p.Barrier()
		exit := p.clk.Now()
		mu.Lock()
		if enter > maxEnter {
			maxEnter = enter
		}
		if exit < minExit {
			minExit = exit
		}
		mu.Unlock()
	})
	if minExit < maxEnter {
		t.Fatalf("a rank exited the barrier (%v) before the last entered (%v)", minExit, maxEnter)
	}
}

func TestBarrierRepeated(t *testing.T) {
	withWorld(3, 1, testProfile(), func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Barrier()
		}
	})
}

func TestBcastValues(t *testing.T) {
	for _, root := range []Rank{0, 2} {
		withWorld(5, 1, testProfile(), func(p *Proc) {
			buf := make([]byte, 32)
			if p.Rank() == root {
				for i := range buf {
					buf[i] = byte(i + int(root))
				}
			}
			p.Bcast(buf, root)
			for i := range buf {
				if buf[i] != byte(i+int(root)) {
					t.Errorf("rank %d: bcast[%d] = %d", p.Rank(), i, buf[i])
					return
				}
			}
		})
	}
}

func TestAllreduceSumMax(t *testing.T) {
	const n = 6
	withWorld(n, 1, testProfile(), func(p *Proc) {
		me := float64(p.Rank())
		sum := p.Allreduce([]float64{me, 2 * me}, OpSum)
		wantA := float64(n*(n-1)) / 2
		if sum[0] != wantA || sum[1] != 2*wantA {
			t.Errorf("rank %d: sum = %v", p.Rank(), sum)
		}
		max := p.Allreduce([]float64{me}, OpMax)
		if max[0] != float64(n-1) {
			t.Errorf("rank %d: max = %v", p.Rank(), max)
		}
	})
}

func TestAllgatherInt64(t *testing.T) {
	const n = 5
	withWorld(n, 1, testProfile(), func(p *Proc) {
		got := p.AllgatherInt64(int64(p.Rank())*100 - 3)
		for r := 0; r < n; r++ {
			if got[r] != int64(r)*100-3 {
				t.Errorf("rank %d: got[%d] = %d", p.Rank(), r, got[r])
				return
			}
		}
	})
}

func TestRMAPutFlushGet(t *testing.T) {
	withWorld(2, 1, testProfile(), func(p *Proc) {
		seg := memory.NewSegment(0, 256)
		w := p.WinCreate(seg)
		p.Barrier()
		switch p.Rank() {
		case 0:
			data := []byte("rma payload")
			p.Put(w, data, 1, 64)
			p.Flush(w, 1)
			// After the flush, the data is remotely visible: notify via a
			// two-sided message (the §III idiom).
			p.Send(nil, 1, 9)
			// Read it back with a Get.
			back := make([]byte, len(data))
			req := p.Get(w, back, 1, 64)
			p.Wait(req)
			if !bytes.Equal(back, data) {
				t.Errorf("Get returned %q", back)
			}
		case 1:
			p.Recv(nil, 0, 9)
			if string(seg.Bytes()[64:75]) != "rma payload" {
				t.Errorf("window contents %q", seg.Bytes()[64:75])
			}
		}
		p.Barrier()
	})
}

func TestRMAFenceCompletesPuts(t *testing.T) {
	withWorld(3, 1, testProfile(), func(p *Proc) {
		seg := memory.NewSegment(0, 64)
		w := p.WinCreate(seg)
		p.Barrier()
		// Everyone puts its rank into slot rank of everyone else.
		for r := Rank(0); r < 3; r++ {
			if r != p.Rank() {
				p.Put(w, []byte{byte(p.Rank()) + 1}, r, int(p.Rank()))
			}
		}
		p.Fence(w)
		for r := 0; r < 3; r++ {
			if r == int(p.Rank()) {
				continue
			}
			if seg.Bytes()[r] != byte(r)+1 {
				t.Errorf("rank %d slot %d = %d", p.Rank(), r, seg.Bytes()[r])
			}
		}
	})
}

func TestFlushCostsRoundTrip(t *testing.T) {
	// A flush with no data must still cost at least 2x the one-way latency.
	var flushTime time.Duration
	withWorld(2, 1, testProfile(), func(p *Proc) {
		seg := memory.NewSegment(0, 64)
		w := p.WinCreate(seg)
		p.Barrier()
		if p.Rank() == 0 {
			t0 := p.clk.Now()
			p.Flush(w, 1)
			flushTime = p.clk.Now() - t0
		} else {
			p.clk.Sleep(100 * time.Microsecond)
		}
		p.Barrier()
	})
	if flushTime < 2*time.Microsecond {
		t.Fatalf("flush took %v, want >= 2µs (round-trip)", flushTime)
	}
}

func TestLockContentionGrowsWithThreads(t *testing.T) {
	// Charge-heavy profile: many concurrent Isend/Test calls from one rank
	// must queue on the library lock, so Waited grows superlinearly vs the
	// single-caller case. This is the §VI-C mechanism.
	prof := testProfile()
	prof.MPIOpOverhead = time.Microsecond
	measure := func(callers int) time.Duration {
		var waited time.Duration
		withWorld(2, 1, prof, func(p *Proc) {
			if p.Rank() != 0 {
				// Sink: absorb all messages.
				for i := 0; i < callers*20; i++ {
					p.Recv(make([]byte, 8), 0, AnyTag)
				}
				return
			}
			var wg sync.WaitGroup
			for c := 0; c < callers; c++ {
				wg.Add(1)
				p.clk.Go(func() {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						r := p.Isend(make([]byte, 8), 1, 0)
						for done, _ := p.Test(r); !done; done, _ = p.Test(r) {
							p.clk.Sleep(time.Microsecond)
						}
					}
				})
			}
			p.clk.Unregister()
			wg.Wait()
			p.clk.Register()
			waited = p.LockStats().Waited
		})
		return waited
	}
	w1 := measure(1)
	w8 := measure(8)
	if w8 < 8*w1+time.Microsecond {
		t.Fatalf("lock wait with 8 callers (%v) not much larger than with 1 (%v)", w8, w1)
	}
}

// Property: a random all-to-all exchange delivers every payload intact to
// the right receiver under the right tag.
func TestQuickRandomExchange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 4
		// plan[i][j]: payload i sends to j.
		var plan [n][n][]byte
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sz := 1 + rng.Intn(3000) // mixes eager and rendezvous
				b := make([]byte, sz)
				rng.Read(b)
				plan[i][j] = b
			}
		}
		okc := make(chan bool, n*n)
		withWorld(n, 1, testProfile(), func(p *Proc) {
			me := int(p.Rank())
			var reqs []*Request
			bufs := make([][]byte, n)
			for j := 0; j < n; j++ {
				reqs = append(reqs, p.Isend(plan[me][j], Rank(j), me*n+j))
			}
			for i := 0; i < n; i++ {
				bufs[i] = make([]byte, len(plan[i][me]))
				reqs = append(reqs, p.Irecv(bufs[i], Rank(i), i*n+me))
			}
			p.Waitall(reqs)
			for i := 0; i < n; i++ {
				okc <- bytes.Equal(bufs[i], plan[i][me])
			}
		})
		close(okc)
		for ok := range okc {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPingPong1K(b *testing.B) {
	clk := vclock.NewVirtual()
	fab := fabric.New(clk, fabric.NewTopology(2, 1), testProfile())
	w := NewWorld(fab, 1)
	var wg sync.WaitGroup
	wg.Add(2)
	clk.Go(func() {
		defer wg.Done()
		p := w.Proc(0)
		buf := make([]byte, 1024)
		for i := 0; i < b.N; i++ {
			p.Send(buf, 1, 0)
			p.Recv(buf, 1, 1)
		}
	})
	clk.Go(func() {
		defer wg.Done()
		p := w.Proc(1)
		buf := make([]byte, 1024)
		for i := 0; i < b.N; i++ {
			p.Recv(buf, 0, 0)
			p.Send(buf, 0, 1)
		}
	})
	wg.Wait()
}
