package mpisim

import (
	"testing"
)

// TestCollectiveTagNamespace pins the reserved-tag contract: every
// (epoch, round) tag is <= -2 (below AnyTag and every application tag)
// and unique across a deep epoch/round grid, so collective traffic can
// never match an application receive or another collective's round.
func TestCollectiveTagNamespace(t *testing.T) {
	seen := make(map[int]struct{})
	for epoch := 0; epoch < 256; epoch++ {
		for round := 0; round < CollectiveRounds; round++ {
			tag := CollectiveTag(epoch, round)
			if tag > -2 {
				t.Fatalf("CollectiveTag(%d,%d) = %d, must be <= -2", epoch, round, tag)
			}
			if tag == AnyTag {
				t.Fatalf("CollectiveTag(%d,%d) collides with AnyTag", epoch, round)
			}
			if _, dup := seen[tag]; dup {
				t.Fatalf("CollectiveTag(%d,%d) = %d already minted", epoch, round, tag)
			}
			seen[tag] = struct{}{}
		}
	}
}

// TestCollectiveTagRoundBounds requires a panic when a round index leaves
// the epoch's budget — silent aliasing into the next epoch's tag space
// was the overlap bug this allocator replaces.
func TestCollectiveTagRoundBounds(t *testing.T) {
	for _, round := range []int{-1, CollectiveRounds, CollectiveRounds + 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CollectiveTag(0,%d): no panic", round)
				}
			}()
			CollectiveTag(0, round)
		}()
	}
}

// TestCollectiveIsendRejectsAppTags requires the collective entry points
// to reject tags outside the reserved space, so a caller cannot
// accidentally route collective rounds over application tags.
func TestCollectiveIsendRejectsAppTags(t *testing.T) {
	withWorld(1, 2, testProfile(), func(p *Proc) {
		if p.Rank() != 0 {
			return
		}
		for _, tag := range []int{0, 7, AnyTag} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("CollectiveIsend(tag=%d): no panic", tag)
					}
				}()
				p.CollectiveIsend([]byte{1}, 1, tag)
			}()
		}
	})
}

// TestCollectiveEpochSharedCounter verifies that built-in collectives and
// external CollectiveEpoch callers draw from one per-process counter:
// epochs reserved around a Barrier/Allreduce never repeat, which is what
// keeps layered collective tags (internal/collectives) disjoint from the
// built-ins' in-flight traffic.
func TestCollectiveEpochSharedCounter(t *testing.T) {
	withWorld(1, 2, testProfile(), func(p *Proc) {
		before := p.CollectiveEpoch()
		p.Barrier()
		p.Allreduce([]float64{float64(p.Rank() + 1)}, OpSum)
		after := p.CollectiveEpoch()
		// One epoch for Barrier, one for Allreduce's reduce phase
		// (its bcast phase reuses round slots of the same epoch).
		if after-before != 3 {
			t.Errorf("epoch counter advanced %d across Barrier+Allreduce, want 3", after-before)
		}
	})
}

// TestAppTrafficImmuneToCollectives interleaves application
// point-to-point traffic — including a wildcard receive posted before the
// collectives start — with built-in collective rounds. The wildcard must
// match only the application send: reserved collective tags (<= -2) are
// outside the AnyTag context (communicator context separation), so no
// collective round may ever surface in an application receive.
func TestAppTrafficImmuneToCollectives(t *testing.T) {
	withWorld(1, 4, testProfile(), func(p *Proc) {
		// Post the wildcard receive first so any mis-tagged collective
		// round would be free to match it.
		var appReq *Request
		buf := make([]byte, 4)
		if p.Rank() == 1 {
			appReq = p.Irecv(buf, 0, AnyTag)
		}
		p.Barrier()
		sum := p.Allreduce([]float64{float64(p.Rank())}, OpSum)
		bc := []byte{byte(p.Rank())}
		p.Bcast(bc, 2)
		p.Barrier()
		if p.Rank() == 0 {
			p.Send([]byte("app!"), 1, 9)
		}
		if p.Rank() == 1 {
			st := p.Wait(appReq)
			if st.Tag != 9 || string(buf) != "app!" {
				t.Errorf("wildcard receive matched tag %d payload %q, want tag 9 %q — collective traffic leaked into the app tag space", st.Tag, buf, "app!")
			}
		}
		if sum[0] != 6 {
			t.Errorf("allreduce sum = %g, want 6", sum[0])
		}
	})
}
