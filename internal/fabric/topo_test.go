package fabric

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/vclock"
)

func TestShapeString(t *testing.T) {
	want := map[Shape]string{
		ShapeFlat:    "flat",
		ShapeRing:    "ring",
		ShapeMesh2D:  "mesh",
		ShapeFatTree: "fattree",
		Shape(99):    "shape(99)",
	}
	for s, name := range want {
		if got := s.String(); got != name {
			t.Errorf("Shape(%d).String() = %q, want %q", s, got, name)
		}
	}
}

// TestShapedRoutesWellFormed checks every route of every shape at several
// node counts: the route starts at the source node, each link continues
// where the previous one ended, the route ends at the destination node,
// and every link endpoint is a valid vertex id.
func TestShapedRoutesWellFormed(t *testing.T) {
	for _, shape := range []Shape{ShapeRing, ShapeMesh2D, ShapeFatTree} {
		for _, nodes := range []int{2, 3, 4, 7, 8, 12, 16} {
			topo := NewShapedTopology(shape, nodes, 2)
			verts := topo.Vertices()
			if verts < nodes {
				t.Fatalf("%v/%d: Vertices() = %d < nodes", shape, nodes, verts)
			}
			for i := 0; i < topo.LinkCount(); i++ {
				from, to := topo.LinkEndpoints(i)
				if from < 0 || from >= verts || to < 0 || to >= verts || from == to {
					t.Fatalf("%v/%d: link %d endpoints (%d, %d) invalid for %d vertices",
						shape, nodes, i, from, to, verts)
				}
			}
			for src := 0; src < nodes; src++ {
				for dst := 0; dst < nodes; dst++ {
					r := topo.routeOf(src, dst)
					if src == dst {
						if r != nil {
							t.Fatalf("%v/%d: same-node route %d->%d not nil", shape, nodes, src, dst)
						}
						continue
					}
					if len(r) == 0 {
						t.Fatalf("%v/%d: empty route %d->%d", shape, nodes, src, dst)
					}
					at := src
					for h, li := range r {
						from, to := topo.LinkEndpoints(int(li))
						if from != at {
							t.Fatalf("%v/%d: route %d->%d hop %d starts at %d, expected %d",
								shape, nodes, src, dst, h, from, at)
						}
						at = to
					}
					if at != dst {
						t.Fatalf("%v/%d: route %d->%d ends at vertex %d", shape, nodes, src, dst, at)
					}
				}
			}
		}
	}
}

// TestFlatTopologyHasNoLinks pins the backward-compat contract: the flat
// shape carries no link table and no routes, so the fabric hot path stays
// the original single-hop model.
func TestFlatTopologyHasNoLinks(t *testing.T) {
	topo := NewShapedTopology(ShapeFlat, 8, 2)
	if topo.Shape() != ShapeFlat || topo.LinkCount() != 0 {
		t.Fatalf("flat topology: shape=%v links=%d, want flat/0", topo.Shape(), topo.LinkCount())
	}
	if r := topo.routeOf(0, 5); r != nil {
		t.Fatalf("flat routeOf(0,5) = %v, want nil", r)
	}
	if v := topo.Vertices(); v != 8 {
		t.Fatalf("flat Vertices() = %d, want 8", v)
	}
	// The legacy constructor (zero verts field) must report node count too.
	if v := NewTopology(4, 1).Vertices(); v != 4 {
		t.Fatalf("legacy Vertices() = %d, want 4", v)
	}
}

func TestRingRouteDirection(t *testing.T) {
	topo := NewRingTopology(5, 1)
	hops := func(src, dst int) int { return len(topo.routeOf(src, dst)) }
	if got := hops(0, 2); got != 2 {
		t.Errorf("ring 5: 0->2 takes %d hops, want 2 (clockwise)", got)
	}
	if got := hops(0, 3); got != 2 {
		t.Errorf("ring 5: 0->3 takes %d hops, want 2 (counter-clockwise)", got)
	}
	// Distance tie on an even ring goes clockwise: 0->2 on a 4-ring must
	// cross 0->1 then 1->2.
	topo = NewRingTopology(4, 1)
	r := topo.routeOf(0, 2)
	if len(r) != 2 {
		t.Fatalf("ring 4: 0->2 takes %d hops, want 2", len(r))
	}
	if from, to := topo.LinkEndpoints(int(r[0])); from != 0 || to != 1 {
		t.Errorf("ring 4 tie: first hop is %d->%d, want clockwise 0->1", from, to)
	}
}

func TestMeshDims(t *testing.T) {
	for _, tc := range []struct{ n, rows, cols int }{
		{2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {8, 2, 4}, {12, 3, 4}, {16, 4, 4}, {7, 1, 7},
	} {
		if r, c := meshDims(tc.n); r != tc.rows || c != tc.cols {
			t.Errorf("meshDims(%d) = %dx%d, want %dx%d", tc.n, r, c, tc.rows, tc.cols)
		}
	}
}

func TestFatTreeRouteLengths(t *testing.T) {
	topo := NewFatTreeTopology(8, 1) // 2 leaves, 1 spine
	if got := len(topo.routeOf(0, 1)); got != 2 {
		t.Errorf("fat-tree same-leaf route 0->1 takes %d hops, want 2", got)
	}
	if got := len(topo.routeOf(0, 5)); got != 4 {
		t.Errorf("fat-tree inter-leaf route 0->5 takes %d hops, want 4", got)
	}
	// 8 nodes + 2 leaves + 1 spine.
	if got := topo.Vertices(); got != 11 {
		t.Errorf("fat-tree Vertices() = %d, want 11", got)
	}
}

// runShapedTraffic drives a fixed incast workload (every other node sends
// to node 0) on a fresh fabric over the given topology and returns the
// per-link snapshots and the modelled finish time.
func runShapedTraffic(t *testing.T, topo Topology) ([]LinkStats, time.Duration) {
	t.Helper()
	clk := vclock.NewVirtual()
	f := New(clk, topo, ProfileOmniPath())
	const perSender = 20
	nodes := topo.Nodes()
	total := (nodes - 1) * perSender
	done := make(chan struct{}, total)
	f.Register(0, ClassMPI, func(m *Message) { done <- struct{}{} })
	var wg sync.WaitGroup
	for s := 1; s < nodes; s++ {
		s := s
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				m := NewMessage()
				m.Src, m.Dst, m.Class, m.Size = Rank(s), 0, ClassMPI, 64<<10
				f.Send(m)
			}
		})
	}
	wg.Wait()
	for i := 0; i < total; i++ {
		<-done
	}
	links := f.LinkSnapshots()
	end := clk.Now()
	f.Close()
	return links, end
}

// TestLinkStatsDeterministic reruns an identical contended incast and
// requires byte-identical per-link statistics and finish time: routes are
// pure functions of the topology and link service is arrival-ordered in
// virtual time, so host scheduling must not leak into the model.
func TestLinkStatsDeterministic(t *testing.T) {
	for _, shape := range []Shape{ShapeRing, ShapeMesh2D, ShapeFatTree} {
		a, endA := runShapedTraffic(t, NewShapedTopology(shape, 8, 1))
		b, endB := runShapedTraffic(t, NewShapedTopology(shape, 8, 1))
		if endA != endB {
			t.Errorf("%v: reruns finished at %v vs %v", shape, endA, endB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: per-link statistics diverged across identical reruns", shape)
		}
		if len(a) == 0 {
			t.Fatalf("%v: no link snapshots", shape)
		}
	}
}

// TestLinkContentionObserved checks the tentpole property: an incast on a
// shaped topology serializes on the shared links into the hot node, and
// the contention is visible as nonzero Waited in the link snapshots. The
// flat model cannot show this — every pair has private capacity.
func TestLinkContentionObserved(t *testing.T) {
	links, _ := runShapedTraffic(t, NewMeshTopology(4, 1))
	var waited time.Duration
	var used int
	for _, l := range links {
		waited += l.Res.Waited
		if l.Msgs > 0 {
			used = used + 1
		}
	}
	if waited == 0 {
		t.Fatal("mesh incast produced zero link-contention wait; backpressure not modelled")
	}
	if used == 0 {
		t.Fatal("no link carried any message")
	}
	// Flat snapshot stays nil: no links exist.
	flat, _ := runShapedTraffic(t, NewTopology(4, 1))
	if flat != nil {
		t.Fatalf("flat LinkSnapshots() = %v, want nil", flat)
	}
}

// TestMultiHopFIFO sends a numbered stream across a multi-hop route and
// requires in-order delivery: per-domain injections are serialized, link
// service is arrival-ordered and per-message hop costs are identical, so
// the route must preserve the domain FIFO.
func TestMultiHopFIFO(t *testing.T) {
	const n = 100
	clk := vclock.NewVirtual()
	f := New(clk, NewRingTopology(6, 1), ProfileOmniPath())
	var mu sync.Mutex
	var order []int
	done := make(chan struct{})
	f.Register(3, ClassMPI, func(m *Message) {
		mu.Lock()
		order = append(order, m.Payload.(int))
		if len(order) == n {
			close(done)
		}
		mu.Unlock()
	})
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			f.Send(&Message{Src: 0, Dst: 3, Class: ClassMPI, Size: 4 << 10, Payload: i})
		}
	})
	wg.Wait()
	<-done
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d: multi-hop routing broke the domain FIFO", i, v)
		}
	}
	f.Close()
}
