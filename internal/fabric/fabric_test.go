package fabric

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vclock"
)

// testProfile charges easily-checked round numbers: 1µs latency inter-node,
// no intra latency terms, 1 GB/s bandwidth (1 byte/ns), 0 overheads.
func testProfile() Profile {
	return Profile{
		Name:               "test",
		InterNodeLatency:   time.Microsecond,
		IntraNodeLatency:   100 * time.Nanosecond,
		InterNodeBandwidth: 1e9,
		IntraNodeBandwidth: 2e9,
		EagerThreshold:     16 << 10,
		RDMAEmulFactor:     1,
	}
}

func TestTopology(t *testing.T) {
	topo := NewTopology(4, 12)
	if topo.Ranks() != 48 {
		t.Fatalf("Ranks = %d, want 48", topo.Ranks())
	}
	if topo.NodeOf(0) != 0 || topo.NodeOf(11) != 0 || topo.NodeOf(12) != 1 || topo.NodeOf(47) != 3 {
		t.Fatal("NodeOf misassigns ranks")
	}
	if !topo.SameNode(0, 11) || topo.SameNode(11, 12) {
		t.Fatal("SameNode wrong")
	}
}

func TestTopologyInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTopology(0, 4)
}

func TestPointToPointLatencyBandwidth(t *testing.T) {
	clk := vclock.NewVirtual()
	f := New(clk, NewTopology(2, 1), testProfile())
	got := make(chan time.Duration, 1)
	f.Register(1, ClassMPI, func(m *Message) { got <- clk.Now() })
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		// 1000 bytes at 1 byte/ns: inject 1000ns, flight 1000ns, rx 1000ns.
		f.Send(&Message{Src: 0, Dst: 1, Class: ClassMPI, Size: 1000})
		clk.Sleep(time.Hour) // keep the clock alive until delivery
	})
	wg.Wait()
	at := <-got
	if want := 3 * time.Microsecond; at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestControlMessageSkipsBandwidth(t *testing.T) {
	clk := vclock.NewVirtual()
	f := New(clk, NewTopology(2, 1), testProfile())
	got := make(chan time.Duration, 1)
	f.Register(1, ClassMPI, func(m *Message) { got <- clk.Now() })
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		f.Send(&Message{Src: 0, Dst: 1, Class: ClassMPI, Size: 1 << 20, Control: true})
		clk.Sleep(time.Hour)
	})
	wg.Wait()
	if at := <-got; at != time.Microsecond {
		t.Fatalf("control message delivered at %v, want 1µs (latency only)", at)
	}
}

func TestIntraNodeUsesIntraParams(t *testing.T) {
	clk := vclock.NewVirtual()
	f := New(clk, NewTopology(1, 2), testProfile())
	got := make(chan time.Duration, 1)
	f.Register(1, ClassMPI, func(m *Message) { got <- clk.Now() })
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		// 2000 bytes at 2 byte/ns intra: inject 1000ns + 100ns latency;
		// no rx stage intra-node.
		f.Send(&Message{Src: 0, Dst: 1, Class: ClassMPI, Size: 2000})
		clk.Sleep(time.Hour)
	})
	wg.Wait()
	if at, want := <-got, 1100*time.Nanosecond; at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestRDMAEmulationPenalty(t *testing.T) {
	prof := testProfile()
	prof.RDMAEmulated = true
	prof.RDMAEmulFactor = 2
	clk := vclock.NewVirtual()
	f := New(clk, NewTopology(2, 1), prof)
	gaspiAt := make(chan time.Duration, 1)
	mpiAt := make(chan time.Duration, 1)
	f.Register(1, ClassGASPI, func(m *Message) { gaspiAt <- clk.Now() })
	f.Register(1, ClassMPI, func(m *Message) { mpiAt <- clk.Now() })
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		f.Send(&Message{Src: 0, Dst: 1, Class: ClassGASPI, Size: 1000})
		clk.Sleep(time.Hour)
	})
	wg.Wait()
	// Emulated RDMA: inject 2000ns (bw halved), flight 2000ns, rx 2000ns.
	if at, want := <-gaspiAt, 6*time.Microsecond; at != want {
		t.Fatalf("emulated RDMA delivered at %v, want %v", at, want)
	}
}

func TestLaneOrderingUnderConcurrency(t *testing.T) {
	// Messages on one lane must arrive in posting order even when many
	// senders on other lanes compete for the NIC.
	clk := vclock.NewVirtual()
	f := New(clk, NewTopology(2, 1), testProfile())
	var mu sync.Mutex
	var seq []int
	f.Register(1, ClassGASPI, func(m *Message) {
		mu.Lock()
		seq = append(seq, m.Payload.(int))
		mu.Unlock()
	})
	f.Register(1, ClassMPI, func(m *Message) {})
	var wg sync.WaitGroup
	wg.Add(2)
	clk.Go(func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			f.Send(&Message{Src: 0, Dst: 1, Class: ClassGASPI, Lane: 0, Size: 64, Payload: i})
		}
		clk.Sleep(time.Second)
	})
	clk.Go(func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			f.Send(&Message{Src: 0, Dst: 1, Class: ClassMPI, Size: 512})
		}
	})
	wg.Wait()
	if len(seq) != 100 {
		t.Fatalf("delivered %d, want 100", len(seq))
	}
	for i, v := range seq {
		if v != i {
			t.Fatalf("lane order violated at %d: %v", i, seq[:i+1])
		}
	}
}

func TestOnInjectedBeforeDelivery(t *testing.T) {
	clk := vclock.NewVirtual()
	f := New(clk, NewTopology(2, 1), testProfile())
	var injectedAt, deliveredAt time.Duration
	done := make(chan struct{})
	f.Register(1, ClassGASPI, func(m *Message) {
		deliveredAt = clk.Now()
		close(done)
	})
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		f.Send(&Message{
			Src: 0, Dst: 1, Class: ClassGASPI, Size: 1000,
			OnInjected: func() { injectedAt = clk.Now() },
		})
		clk.Sleep(time.Hour)
	})
	wg.Wait()
	<-done
	if injectedAt != time.Microsecond {
		t.Fatalf("local completion at %v, want 1µs (injection time)", injectedAt)
	}
	if deliveredAt <= injectedAt {
		t.Fatalf("delivery (%v) must follow local completion (%v)", deliveredAt, injectedAt)
	}
}

func TestNICSerializesInjection(t *testing.T) {
	// Two messages from the same source to two destinations share the TX
	// port: total time reflects serialization of the injection stage.
	clk := vclock.NewVirtual()
	f := New(clk, NewTopology(3, 1), testProfile())
	var mu sync.Mutex
	arrivals := map[Rank]time.Duration{}
	for r := Rank(1); r <= 2; r++ {
		r := r
		f.Register(r, ClassMPI, func(m *Message) {
			mu.Lock()
			arrivals[r] = clk.Now()
			mu.Unlock()
		})
	}
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		f.Send(&Message{Src: 0, Dst: 1, Class: ClassMPI, Size: 1000})
		f.Send(&Message{Src: 0, Dst: 2, Class: ClassMPI, Size: 1000})
		clk.Sleep(time.Hour)
	})
	wg.Wait()
	// First: inject [0,1µs], flight 1µs, rx 1µs → 3µs.
	// Second: inject [1µs,2µs] (serialized), flight → 3µs, rx → 4µs.
	a1, a2 := arrivals[1], arrivals[2]
	if a1 > a2 {
		a1, a2 = a2, a1
	}
	if a1 != 3*time.Microsecond || a2 != 4*time.Microsecond {
		t.Fatalf("arrivals %v/%v, want 3µs/4µs", a1, a2)
	}
}

func TestPipelinedFlightOverlapsNextInjection(t *testing.T) {
	// On one lane, message i+1 injects while message i is in flight:
	// n messages of T inject time take n*T + flight + rx, not n*(T+flight+rx).
	clk := vclock.NewVirtual()
	f := New(clk, NewTopology(2, 1), testProfile())
	const n = 10
	var last time.Duration
	done := make(chan struct{})
	count := 0
	f.Register(1, ClassMPI, func(m *Message) {
		count++
		last = clk.Now()
		if count == n {
			close(done)
		}
	})
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			f.Send(&Message{Src: 0, Dst: 1, Class: ClassMPI, Size: 1000})
		}
		clk.Sleep(time.Hour)
	})
	wg.Wait()
	<-done
	// Injections occupy [0,10µs]; last message: flight to 11µs, rx 12µs.
	if want := 12 * time.Microsecond; last != want {
		t.Fatalf("last delivery at %v, want %v (pipelined)", last, want)
	}
}

func TestStatsAndClose(t *testing.T) {
	clk := vclock.NewVirtual()
	f := New(clk, NewTopology(2, 1), testProfile())
	delivered := 0
	f.Register(1, ClassMPI, func(m *Message) { delivered++ })
	f.Register(1, ClassGASPI, func(m *Message) { delivered++ })
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		f.Send(&Message{Src: 0, Dst: 1, Class: ClassMPI, Size: 100})
		f.Send(&Message{Src: 0, Dst: 1, Class: ClassGASPI, Size: 200})
		clk.Sleep(time.Second)
	})
	wg.Wait()
	st := f.Stats()
	if st.Messages != 2 || st.Bytes != 300 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ByClass[ClassMPI] != 1 || st.ByClass[ClassGASPI] != 1 {
		t.Fatalf("per-class stats = %+v", st.ByClass)
	}
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2", delivered)
	}
	tx, _ := f.NICStats(0)
	if tx.Uses != 2 {
		t.Fatalf("tx uses = %d, want 2", tx.Uses)
	}
	f.Close()
	f.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("Send after Close must panic")
		}
	}()
	f.Send(&Message{Src: 0, Dst: 1, Class: ClassMPI})
}

func TestSendInvalidRankPanics(t *testing.T) {
	clk := vclock.NewVirtual()
	f := New(clk, NewTopology(2, 1), testProfile())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Send(&Message{Src: 0, Dst: 5, Class: ClassMPI})
}

// Property: per-lane FIFO holds for any assignment of messages to lanes.
func TestQuickPerLaneFIFO(t *testing.T) {
	f := func(lanes []uint8) bool {
		if len(lanes) == 0 {
			return true
		}
		if len(lanes) > 200 {
			lanes = lanes[:200]
		}
		clk := vclock.NewVirtual()
		fb := New(clk, NewTopology(2, 1), testProfile())
		var mu sync.Mutex
		lastSeq := map[int]int{}
		ok := true
		fb.Register(1, ClassGASPI, func(m *Message) {
			mu.Lock()
			defer mu.Unlock()
			pair := m.Payload.([2]int)
			if pair[1] <= lastSeq[pair[0]] {
				ok = false
			}
			lastSeq[pair[0]] = pair[1]
		})
		var wg sync.WaitGroup
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			seqs := map[int]int{}
			for _, l := range lanes {
				lane := int(l % 4)
				seqs[lane]++
				fb.Send(&Message{
					Src: 0, Dst: 1, Class: ClassGASPI, Lane: lane,
					Size: 64, Payload: [2]int{lane, seqs[lane]},
				})
			}
			clk.Sleep(time.Second)
		})
		wg.Wait()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestJitterer(t *testing.T) {
	j := NewJitterer(42, 0.5)
	base := time.Microsecond
	for i := 0; i < 1000; i++ {
		d := j.Apply(base)
		if d < base/2 || d > base*3/2 {
			t.Fatalf("jittered %v outside [0.5µs, 1.5µs]", d)
		}
	}
	// Zero magnitude: identity.
	j0 := NewJitterer(42, 0)
	if j0.Apply(base) != base {
		t.Fatal("zero jitter must be identity")
	}
	// Determinism: same seed, same sequence.
	a, b := NewJitterer(7, 0.3), NewJitterer(7, 0.3)
	for i := 0; i < 100; i++ {
		if a.Apply(base) != b.Apply(base) {
			t.Fatal("jitter not deterministic for equal seeds")
		}
	}
}

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{ProfileOmniPath(), ProfileInfiniBand()} {
		if p.Zero() {
			t.Fatalf("%s reports Zero", p.Name)
		}
		if p.InterNodeBandwidth <= 0 || p.CoreHz <= 0 || p.EagerThreshold <= 0 {
			t.Fatalf("%s has invalid parameters", p.Name)
		}
	}
	if !ProfileIdeal().Zero() {
		t.Fatal("ideal profile must report Zero")
	}
	op, ib := ProfileOmniPath(), ProfileInfiniBand()
	if !op.RDMAEmulated || ib.RDMAEmulated {
		t.Fatal("RDMA emulation flags must differ between machines (Fig. 13)")
	}
	if ib.MPIJitter <= op.MPIJitter {
		t.Fatal("CTE-AMD must model a noisier MPI stack than Marenostrum4")
	}
}

func BenchmarkFabricThroughput(b *testing.B) {
	clk := vclock.NewVirtual()
	f := New(clk, NewTopology(2, 1), testProfile())
	var wg sync.WaitGroup
	delivered := make(chan struct{}, 1)
	n := 0
	f.Register(1, ClassMPI, func(m *Message) {
		n++
		if n == b.N {
			delivered <- struct{}{}
		}
	})
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			f.Send(&Message{Src: 0, Dst: 1, Class: ClassMPI, Size: 256})
		}
		clk.Sleep(time.Hour)
	})
	wg.Wait()
	<-delivered
}

func TestSeedOfStableDistinctPositive(t *testing.T) {
	a := SeedOf("9", "TAGASPI/n4")
	if a != SeedOf("9", "TAGASPI/n4") {
		t.Fatal("SeedOf not stable")
	}
	if a <= 0 {
		t.Fatalf("SeedOf must be positive, got %d", a)
	}
	// Joining with '/' must keep part boundaries significant.
	if SeedOf("a", "b/c") == SeedOf("a/b", "c") {
		t.Fatal("SeedOf ignores part boundaries")
	}
	seen := map[int64]string{}
	for _, id := range []string{"", "a", "b", "aa", "ab", "ba", "TAGASPI/n1", "TAGASPI/n2"} {
		s := SeedOf("fig", id)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SeedOf collision: %q and %q -> %d", prev, id, s)
		}
		seen[s] = id
	}
	// Jitterer chains built from derived seeds must themselves diverge.
	j1 := NewJitterer(SeedOf("fig", "p1"), 0.5)
	j2 := NewJitterer(SeedOf("fig", "p2"), 0.5)
	d := 1000 * time.Microsecond
	same := true
	for i := 0; i < 8; i++ {
		if j1.Apply(d) != j2.Apply(d) {
			same = false
		}
	}
	if same {
		t.Fatal("distinct point ids produced identical jitter chains")
	}
}
