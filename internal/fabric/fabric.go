// Package fabric simulates the cluster interconnect: the wire, the NICs,
// and their occupancy. It carries the messages of both communication models
// (two-sided MPI in package mpisim, one-sided GASPI in package gaspisim)
// between simulated ranks, charging modelled time for injection, flight and
// reception, and preserving the ordering guarantees the protocols rely on:
//
//   - MPI: messages between a (source, destination) pair are non-overtaking.
//   - GASPI: operations posted to the same queue towards the same target
//     arrive in posting order (GASPI spec §"queues").
//
// Both guarantees are provided by delivering each ordering domain — a
// (source, destination, class, lane) tuple — through a dedicated courier
// goroutine, created lazily on first use.
//
// The two Profiles mirror the paper's evaluation systems: Marenostrum4
// (Intel Omni-Path, where the PSM2-optimised two-sided path is fast and
// ibverbs is emulated, penalising RDMA) and CTE-AMD (Mellanox InfiniBand,
// where RDMA is native and the two-sided stack is slower and noisier).
// Figure 13's crossover between the two machines follows from exactly this
// difference.
package fabric

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/vclock"
	"repro/internal/vsync"
)

// Rank identifies a simulated process.
type Rank int

// Class separates the protocol stacks multiplexed over one fabric.
type Class uint8

// Protocol classes.
const (
	ClassMPI   Class = iota // two-sided traffic (and MPI RMA)
	ClassGASPI              // one-sided GASPI traffic
)

// Topology maps ranks onto nodes.
type Topology struct {
	nodes        int
	ranksPerNode int
}

// NewTopology builds a block topology: rank r lives on node r/ranksPerNode.
func NewTopology(nodes, ranksPerNode int) Topology {
	if nodes <= 0 || ranksPerNode <= 0 {
		panic(fmt.Sprintf("fabric: invalid topology %d nodes x %d ranks", nodes, ranksPerNode))
	}
	return Topology{nodes: nodes, ranksPerNode: ranksPerNode}
}

// Nodes returns the node count.
func (t Topology) Nodes() int { return t.nodes }

// Ranks returns the total rank count.
func (t Topology) Ranks() int { return t.nodes * t.ranksPerNode }

// RanksPerNode returns the ranks placed on each node.
func (t Topology) RanksPerNode() int { return t.ranksPerNode }

// NodeOf returns the node hosting rank r.
func (t Topology) NodeOf(r Rank) int { return int(r) / t.ranksPerNode }

// SameNode reports whether two ranks share a node.
func (t Topology) SameNode(a, b Rank) bool { return t.NodeOf(a) == t.NodeOf(b) }

// Profile is the cost model of one machine: wire, NIC and software-stack
// parameters. Durations are modelled time; bandwidths are bytes/second.
type Profile struct {
	Name string

	// Wire and NIC.
	InterNodeLatency   time.Duration // one-way wire latency between nodes
	IntraNodeLatency   time.Duration // shared-memory "latency" within a node
	InterNodeBandwidth float64       // NIC link bandwidth
	IntraNodeBandwidth float64       // memcpy bandwidth between same-node ranks
	InjectOverhead     time.Duration // fixed per-message NIC injection cost

	// Two-sided (MPI) software stack.
	MPIOpOverhead  time.Duration // service time under the MPI library lock per call
	MPIMatchCost   time.Duration // extra service time per message matched/queued
	EagerThreshold int           // bytes; larger messages use rendezvous
	MPIJitter      float64       // relative jitter on MPI software costs (0..1)

	// One-sided (GASPI over ibverbs) software stack.
	RDMAOpOverhead time.Duration // per-operation post cost, charged per queue
	RDMAEmulated   bool          // ibverbs emulated over the native API
	RDMAEmulFactor float64       // cost multiplier on RDMA wire costs when emulated

	// Compute.
	CoreHz float64 // modelled scalar "element updates per second" per core
}

// ProfileOmniPath models Marenostrum4: Intel Omni-Path with Intel MPI over
// PSM2 (fast, contended two-sided path) and emulated ibverbs (RDMA penalty).
func ProfileOmniPath() Profile {
	return Profile{
		Name:               "marenostrum4-omnipath",
		InterNodeLatency:   1500 * time.Nanosecond,
		IntraNodeLatency:   300 * time.Nanosecond,
		InterNodeBandwidth: 12.0e9,
		IntraNodeBandwidth: 24.0e9,
		InjectOverhead:     250 * time.Nanosecond,
		MPIOpOverhead:      320 * time.Nanosecond,
		MPIMatchCost:       120 * time.Nanosecond,
		EagerThreshold:     16 << 10,
		MPIJitter:          0.08,
		RDMAOpOverhead:     260 * time.Nanosecond,
		RDMAEmulated:       true,
		RDMAEmulFactor:     1.1,
		CoreHz:             1.05e9,
	}
}

// ProfileInfiniBand models CTE-AMD: Mellanox InfiniBand HDR100 with native
// ibverbs (fast RDMA) and OpenMPI (slower, noisier two-sided path).
func ProfileInfiniBand() Profile {
	return Profile{
		Name:               "cte-amd-infiniband",
		InterNodeLatency:   1300 * time.Nanosecond,
		IntraNodeLatency:   250 * time.Nanosecond,
		InterNodeBandwidth: 11.0e9,
		IntraNodeBandwidth: 28.0e9,
		InjectOverhead:     280 * time.Nanosecond,
		MPIOpOverhead:      900 * time.Nanosecond,
		MPIMatchCost:       350 * time.Nanosecond,
		EagerThreshold:     16 << 10,
		MPIJitter:          0.35,
		RDMAOpOverhead:     180 * time.Nanosecond,
		RDMAEmulated:       false,
		RDMAEmulFactor:     1,
		CoreHz:             1.25e9,
	}
}

// ProfileIdeal zeroes all modelled costs. It is the profile for real-clock
// runs (examples), where the library behaves as a plain concurrent library
// and modelled delays would otherwise turn into real sleeps.
func ProfileIdeal() Profile {
	return Profile{
		Name:               "ideal",
		InterNodeBandwidth: 1e18, // effectively infinite: no modelled wire time
		IntraNodeBandwidth: 1e18,
		EagerThreshold:     16 << 10,
		RDMAEmulFactor:     1,
		CoreHz:             1e9,
	}
}

// Zero reports whether the profile charges no modelled time (ideal mode).
func (p Profile) Zero() bool {
	return p.InterNodeLatency == 0 && p.IntraNodeLatency == 0 &&
		p.InjectOverhead == 0 && p.MPIOpOverhead == 0 && p.RDMAOpOverhead == 0
}

// Message is one fabric transfer. Protocol layers fill the routing fields
// and hooks; the fabric owns the timing — and, once the message is passed
// to Send, the struct itself: after the destination handler returns (or
// OnFailed runs for a surfaced fault) the fabric zeroes the Message and
// recycles it through an internal pool. Neither handlers nor hooks may
// retain the *Message past their return; anything with a longer life
// belongs in Payload. Allocate with NewMessage to draw from the pool.
//
//tagalint:pooled
type Message struct {
	Src, Dst Rank
	Class    Class
	Lane     int  // ordering lane within (Src,Dst,Class): the GASPI queue id
	Size     int  // payload bytes, for bandwidth costs
	Control  bool // control messages skip bandwidth terms (acks, RTS/CTS)
	Payload  any  // protocol-layer descriptor

	// OnInjected, if non-nil, runs on the courier once the source NIC has
	// finished injecting the message: the moment of *local completion*
	// (the source buffer may be reused). Protocol layers snapshot the
	// payload bytes here.
	OnInjected func()

	// OnFailed, if non-nil, runs on the courier when the fault plane
	// (SetFaultPlan) fails the message's injection: the protocol layer
	// surfaces the error, as GASPI does through queue error states.
	// OnInjected does not run for a failed message and nothing is
	// delivered. Messages without the hook are instead retransmitted
	// transparently after the plan's RetransmitDelay, modelling a
	// reliable transport that hides faults by paying time (the MPI
	// contract).
	OnFailed func()

	// Flow is the causal-flow edge id stamped by Send when a recorder is
	// installed (zero otherwise): the trace binds the send-side 's' flow
	// event to the delivery-side 'f' event through it, and protocol layers
	// may carry it further (gaspisim hands it to the notification it
	// fulfils). Ids derive from the message's ordering domain and a
	// per-domain sequence number, so they are deterministic across reruns.
	Flow int64

	// enqueued is the Send timestamp, stamped only when a recorder is
	// installed; the injection courier turns it into the queue-residency
	// latency sample.
	enqueued time.Duration
}

// msgPool recycles Message structs across every fabric in the process.
// A message is released exactly once, by the courier that consumed it
// (deliver after the handler returns, inject after a surfaced fault), so
// no live reference can outlast the Put.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// NewMessage returns a zeroed Message drawn from the fabric's message
// pool. Messages built with a plain composite literal still work — Send
// does not care where the struct came from — but they feed the pool on
// release, so steady-state traffic allocates no Message structs at all
// only when senders use NewMessage.
//
//tagalint:hotpath
func NewMessage() *Message { return msgPool.Get().(*Message) }

// releaseMessage zeroes m (dropping payload and hook references) and
// returns it to the pool.
//
//tagalint:pooled release
//tagalint:hotpath
func releaseMessage(m *Message) {
	*m = Message{}
	msgPool.Put(m)
}

// Handler consumes delivered messages on the destination rank.
// It runs on a courier goroutine and must not block on modelled time other
// than briefly (it may wake parkers, post replies, take short mutexes).
// The *Message argument is recycled when the handler returns and must not
// be retained.
type Handler func(*Message)

type pathKey struct {
	src, dst Rank
	class    Class
	lane     int
}

type path struct {
	in    *vsync.Queue[*Message] // awaiting injection
	out   *vsync.Queue[flight]   // in flight towards the destination
	fault *pathFaults            // nil: the fault plane cannot touch this path

	// Flow-id assignment for causal tracing: ids are flowBase (an FNV-1a
	// hash of the ordering-domain key, spreading domains across the id
	// space) plus a per-domain sequence number. Sends on one domain are
	// serialized by the virtual clock (see DESIGN.md §10), so the sequence
	// assignment — and with it every flow id — is deterministic across
	// reruns; the atomic is for race-detector soundness, not ordering.
	flowBase uint64
	flowSeq  atomic.Uint64
}

// flight is a message past local completion with its computed arrival time
// and reception cost.
type flight struct {
	m       *Message
	arrival time.Duration
	rx      time.Duration
}

// Stats aggregates fabric traffic counters.
type Stats struct {
	Messages int64
	Bytes    int64
	ByClass  [2]int64
	// Faults counts fault-plane injection failures (each transparent
	// retransmission attempt and each surfaced failure is one fault).
	Faults int64
}

// Fabric connects the ranks of one simulated cluster.
type Fabric struct {
	clk  vclock.Clock
	topo Topology
	prof Profile

	nicTx  []*vsync.Resource // per-NODE inter-node injection port
	nicRx  []*vsync.Resource // per-NODE inter-node reception port
	shm    []*vsync.Resource // per-rank intra-node copy engine
	rec    obs.Recorder      // nil: uninstrumented
	mu     sync.Mutex
	paths  map[pathKey]*path
	hands  map[Class][]Handler // per class, indexed by rank
	closed bool
	wg     sync.WaitGroup

	// Fault plane (SetFaultPlan); plan and seed are set before traffic.
	plan      FaultPlan
	planOn    bool
	faultSeed int64

	msgs    atomic.Int64
	bytes   atomic.Int64
	byClass [2]atomic.Int64
	faults  atomic.Int64
}

// New builds a fabric for the given topology and cost profile.
func New(clk vclock.Clock, topo Topology, prof Profile) *Fabric {
	n := topo.Ranks()
	f := &Fabric{
		clk:   clk,
		topo:  topo,
		prof:  prof,
		paths: make(map[pathKey]*path),
		hands: make(map[Class][]Handler),
	}
	f.nicTx = make([]*vsync.Resource, topo.Nodes())
	f.nicRx = make([]*vsync.Resource, topo.Nodes())
	for i := range f.nicTx {
		f.nicTx[i] = vsync.NewResource(clk)
		f.nicRx[i] = vsync.NewResource(clk)
	}
	f.shm = make([]*vsync.Resource, n)
	for i := range f.shm {
		f.shm[i] = vsync.NewResource(clk)
	}
	return f
}

// Topology returns the fabric's topology.
func (f *Fabric) Topology() Topology { return f.topo }

// Profile returns the fabric's cost profile.
func (f *Fabric) Profile() Profile { return f.prof }

// Clock returns the fabric's time source.
func (f *Fabric) Clock() vclock.Clock { return f.clk }

// SetRecorder installs the observability recorder. It must be called
// before any traffic flows; a nil recorder (the default) keeps the fabric
// uninstrumented.
func (f *Fabric) SetRecorder(rec obs.Recorder) { f.rec = rec }

// Register installs the delivery handler for one rank and class.
// It must be called before any message of that class reaches the rank.
func (f *Fabric) Register(r Rank, class Class, h Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	hs := f.hands[class]
	if hs == nil {
		hs = make([]Handler, f.topo.Ranks())
		f.hands[class] = hs
	}
	hs[r] = h
}

// Send submits a message. It never blocks: ordering-domain couriers pick the
// message up and charge the modelled transfer time. Posting-side software
// costs (the MPI library lock, the GASPI queue post) are charged by the
// protocol layers before calling Send. Send takes ownership of m: the
// fabric recycles the struct after delivery, so the caller must not touch
// it again.
//
//tagalint:pooled transfer
//tagalint:hotpath
func (f *Fabric) Send(m *Message) {
	if m.Src < 0 || int(m.Src) >= f.topo.Ranks() || m.Dst < 0 || int(m.Dst) >= f.topo.Ranks() {
		panic(fmt.Sprintf("fabric: message between invalid ranks %d -> %d", m.Src, m.Dst))
	}
	f.msgs.Add(1)
	f.bytes.Add(int64(m.Size))
	f.byClass[m.Class].Add(1)
	if f.rec != nil {
		m.enqueued = f.clk.Now()
	}
	key := pathKey{src: m.Src, dst: m.Dst, class: m.Class, lane: m.Lane}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		panic("fabric: Send after Close")
	}
	p, ok := f.paths[key]
	if !ok {
		p = f.addPath(key)
	}
	f.mu.Unlock()
	if f.rec != nil {
		m.Flow = p.nextFlowID()
		f.rec.Flow(int(m.Src), obs.TrackFabricTx, obs.CatFabric, "flow:msg", 's', m.enqueued, m.Flow)
	}
	p.in.Push(m)
}

// nextFlowID assigns the next causal-flow edge id of one ordering domain.
// Ids are positive and never zero (zero marks an unstamped message).
//
//tagalint:hotpath
func (p *path) nextFlowID() int64 {
	id := int64((p.flowBase + p.flowSeq.Add(1)) &^ (1 << 63))
	if id == 0 {
		id = 1
	}
	return id
}

// addPath creates the ordering domain's path and starts its courier pair.
// It runs with f.mu held, once per (src, dst, class, lane) tuple over the
// fabric's lifetime: path setup is the cold side of Send and may allocate.
func (f *Fabric) addPath(key pathKey) *path {
	p := &path{
		in:       vsync.NewQueue[*Message](f.clk),
		out:      vsync.NewQueue[flight](f.clk),
		fault:    f.faultsFor(key),
		flowBase: flowBaseOf(key),
	}
	f.paths[key] = p
	f.wg.Add(2)
	f.clk.Go(func() {
		defer f.wg.Done()
		f.inject(p)
	})
	f.clk.Go(func() {
		defer f.wg.Done()
		f.deliver(p)
	})
	return p
}

// flowBaseOf hashes an ordering-domain key into the 64-bit flow-id space
// (FNV-1a over the key fields), so the per-domain id sequences of different
// domains start far apart and practically never collide. The base depends
// only on the key — not on path-creation order — keeping flow ids
// deterministic across reruns.
func flowBaseOf(key pathKey) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [4]uint64{uint64(key.src), uint64(key.dst), uint64(key.class), uint64(key.lane)} {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}

// inject is the first courier stage of one ordering domain: it charges the
// source-side injection cost, fires local completion, and hands the message
// to the delivery stage. Pipelining the two stages lets a path overlap the
// flight of message i with the injection of message i+1, as NICs do.
//
// The courier drains its queue in batches — one lock round trip and at
// most one park per wakeup instead of one per message — but processes the
// batch strictly in arrival order, so the non-overtaking guarantee and the
// fault plane's per-domain decision stream are exactly those of one-at-a-
// time delivery.
//
//tagalint:hotpath
func (f *Fabric) inject(p *path) {
	defer p.out.Close()
	var batch []*Message
	for {
		var ok bool
		batch, ok = p.in.PopAll(batch)
		if !ok {
			return
		}
		for _, m := range batch {
			f.injectOne(p, m)
		}
		clear(batch) // drop message refs before the array becomes the push buffer
	}
}

// injectOne charges injection for one message and hands it to the delivery
// stage (or surfaces its fault-plane failure).
//
//tagalint:hotpath
func (f *Fabric) injectOne(p *path, m *Message) {
	var popTs time.Duration
	if f.rec != nil {
		popTs = f.clk.Now()
		f.rec.Latency("fabric.queue_residency", popTs-m.enqueued)
	}
	intra := f.topo.SameNode(m.Src, m.Dst)
	var lat time.Duration
	var bw float64
	if intra {
		lat, bw = f.prof.IntraNodeLatency, f.prof.IntraNodeBandwidth
	} else {
		lat, bw = f.prof.InterNodeLatency, f.prof.InterNodeBandwidth
	}
	if m.Class == ClassGASPI && f.prof.RDMAEmulated {
		lat = time.Duration(float64(lat) * f.prof.RDMAEmulFactor)
		bw /= f.prof.RDMAEmulFactor
	}
	var wire time.Duration
	if !m.Control && m.Size > 0 {
		wire = time.Duration(float64(m.Size) / bw * float64(time.Second))
	}

	// Injection: occupy the source-side port (NIC or intra-node
	// copy engine) for the overhead plus the serialization time.
	inject := f.prof.InjectOverhead + wire
	if m.Control {
		// Header-only packets (acks, notifications, RTS/CTS) occupy
		// the port for a fraction of a full-message injection.
		inject = f.prof.InjectOverhead / 4
	}
	if p.fault != nil {
		var surfaced bool
		lat, surfaced = f.faultInject(p.fault, m, inject, lat)
		if surfaced {
			// Failure handed to the protocol layer; nothing flies and
			// the consumed message goes back to the pool.
			releaseMessage(m)
			return
		}
	}
	f.chargeInject(m, intra, inject)
	if m.OnInjected != nil {
		m.OnInjected() // local completion: source buffer reusable
	}
	if f.rec != nil {
		f.rec.Span(int(m.Src), obs.TrackFabricTx, obs.CatFabric, "fabric:inject",
			popTs, f.clk.Now(), int64(m.Size))
	}
	rx := wire
	if intra {
		rx = 0 // intra-node copies are charged once, at injection
	}
	p.out.Push(flight{m: m, arrival: f.clk.Now() + lat, rx: rx})
}

// chargeInject occupies the message's source-side port (NIC injection port
// inter-node, copy engine intra-node) for d of modelled time.
//
//tagalint:hotpath
func (f *Fabric) chargeInject(m *Message, intra bool, d time.Duration) {
	if intra {
		f.shm[m.Src].Use(d)
	} else {
		f.nicTx[f.topo.NodeOf(m.Src)].Use(d)
	}
}

// faultInject runs the fault-plane decisions for one message on a faulted
// path (always inter-node). Each failed attempt charges the full injection
// cost — the port did the work before the loss was detected. A failure of
// a message with an OnFailed hook is surfaced (hook runs, message
// consumed, surfaced=true); without the hook the courier backs off
// RetransmitDelay and retries until an attempt succeeds. On success the
// returned latency includes the spike of a jitter hit and the caller
// proceeds with the normal injection.
//
//tagalint:hotpath
func (f *Fabric) faultInject(pf *pathFaults, m *Message, inject, lat time.Duration) (newLat time.Duration, surfaced bool) {
	for attempt := 0; ; attempt++ {
		dropped := pf.outageAt(f.clk.Now())
		if !dropped && pf.drop > 0 {
			dropped = pf.roll(saltDrop) < pf.drop
		}
		if !dropped {
			if pf.jitter > 0 && pf.roll(saltJitter) < pf.jitter {
				lat += pf.spike
			}
			return lat, false
		}
		f.faults.Add(1)
		f.nicTx[f.topo.NodeOf(m.Src)].Use(inject)
		if f.rec != nil {
			f.rec.Count("fabric_faults_injected", 1)
			f.rec.Instant(int(m.Src), obs.TrackFabricTx, obs.CatFabric,
				"fabric:fault", f.clk.Now(), int64(m.Size))
		}
		if m.OnFailed != nil {
			m.OnFailed()
			return lat, true
		}
		if attempt >= maxTransparentRetries {
			panic("fabric: transparent retransmission did not converge (Drop rate 1 on a class with no OnFailed hook?)")
		}
		f.clk.Sleep(pf.retrans)
	}
}

// deliver is the second courier stage: it waits out the flight delay,
// charges the destination port, and invokes the rank's handler in order.
// Like inject it drains its queue in batches, preserving arrival order.
// The path's (destination, class) never changes and Register precedes
// traffic, so the handler is looked up once and cached for the courier's
// lifetime instead of taking the fabric lock per message.
//
//tagalint:hotpath
func (f *Fabric) deliver(p *path) {
	var batch []flight
	var h Handler
	for {
		var ok bool
		batch, ok = p.out.PopAll(batch)
		if !ok {
			return
		}
		for _, fl := range batch {
			m := fl.m
			if d := fl.arrival - f.clk.Now(); d > 0 {
				f.clk.Sleep(d)
			}
			if fl.rx > 0 {
				_, done := f.nicRx[f.topo.NodeOf(m.Dst)].Reserve(fl.rx)
				if d := done - f.clk.Now(); d > 0 {
					f.clk.Sleep(d)
				}
			}

			if h == nil {
				f.mu.Lock()
				hs := f.hands[m.Class]
				f.mu.Unlock()
				if hs != nil {
					h = hs[m.Dst]
				}
				if h == nil {
					panic(fmt.Sprintf("fabric: no handler for class %d on rank %d", m.Class, m.Dst))
				}
			}
			if f.rec != nil {
				if m.Flow != 0 {
					f.rec.Flow(int(m.Dst), obs.TrackFabricRx, obs.CatFabric, "flow:msg",
						'f', f.clk.Now(), m.Flow)
				}
				f.rec.Instant(int(m.Dst), obs.TrackFabricRx, obs.CatFabric, "fabric:deliver",
					f.clk.Now(), int64(m.Size))
			}
			h(m)
			releaseMessage(m)
		}
		clear(batch) // drop message refs before the array becomes the push buffer
	}
}

// Close shuts the fabric down: all couriers drain their queues and exit.
// Messages sent after Close panic.
func (f *Fabric) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	ps := make([]*path, 0, len(f.paths))
	for _, p := range f.paths {
		ps = append(ps, p)
	}
	f.mu.Unlock()
	for _, p := range ps {
		p.in.Close()
	}
	f.wg.Wait()
}

// Stats returns a snapshot of traffic counters.
func (f *Fabric) Stats() Stats {
	return Stats{
		Messages: f.msgs.Load(),
		Bytes:    f.bytes.Load(),
		ByClass:  [2]int64{f.byClass[0].Load(), f.byClass[1].Load()},
		Faults:   f.faults.Load(),
	}
}

// NICStats returns the (tx, rx) resource statistics of one rank's node NIC
// (NICs are per node: all ranks of a node share its injection and
// reception ports).
func (f *Fabric) NICStats(r Rank) (tx, rx vsync.ResourceStats) {
	n := f.topo.NodeOf(r)
	return f.nicTx[n].Stats(), f.nicRx[n].Stats()
}

// NICSnapshot is the (tx, rx) port statistics of one node's NIC.
type NICSnapshot struct {
	Node   int
	Tx, Rx vsync.ResourceStats
}

// NICSnapshots returns the NIC port statistics of every node.
func (f *Fabric) NICSnapshots() []NICSnapshot {
	out := make([]NICSnapshot, f.topo.Nodes())
	for n := range out {
		out[n] = NICSnapshot{Node: n, Tx: f.nicTx[n].Stats(), Rx: f.nicRx[n].Stats()}
	}
	return out
}

// Snapshot returns the fabric's statistics — traffic totals plus the
// per-node NIC port occupancy — in the unified observability shape.
func (f *Fabric) Snapshot() obs.Snapshot {
	s := f.Stats()
	samples := []obs.Sample{
		{Name: "messages", Value: float64(s.Messages)},
		{Name: "bytes", Value: float64(s.Bytes), Unit: "B"},
		{Name: "mpi.messages", Value: float64(s.ByClass[ClassMPI])},
		{Name: "gaspi.messages", Value: float64(s.ByClass[ClassGASPI])},
		{Name: "fabric_faults_injected", Value: float64(s.Faults)},
	}
	for _, nic := range f.NICSnapshots() {
		p := fmt.Sprintf("node%d.", nic.Node)
		samples = append(samples,
			obs.Sample{Name: p + "nic.tx.uses", Value: float64(nic.Tx.Uses)},
			obs.Sample{Name: p + "nic.tx.busy", Value: nic.Tx.Busy.Seconds(), Unit: "s"},
			obs.Sample{Name: p + "nic.tx.waited", Value: nic.Tx.Waited.Seconds(), Unit: "s"},
			obs.Sample{Name: p + "nic.rx.uses", Value: float64(nic.Rx.Uses)},
			obs.Sample{Name: p + "nic.rx.busy", Value: nic.Rx.Busy.Seconds(), Unit: "s"},
			obs.Sample{Name: p + "nic.rx.waited", Value: nic.Rx.Waited.Seconds(), Unit: "s"},
		)
	}
	return obs.Snapshot{Component: "fabric", Rank: -1, Samples: samples}
}

// Reset clears the fabric's statistics counters (traffic totals, NIC and
// intra-node port statistics), opening a steady-state measurement window.
// In-flight traffic and port booking state are untouched.
func (f *Fabric) Reset() {
	f.msgs.Store(0)
	f.bytes.Store(0)
	f.byClass[0].Store(0)
	f.byClass[1].Store(0)
	f.faults.Store(0)
	for i := range f.nicTx {
		f.nicTx[i].ResetStats()
		f.nicRx[i].ResetStats()
	}
	for i := range f.shm {
		f.shm[i].ResetStats()
	}
}

// SeedOf derives a deterministic, platform-independent seed from a
// sequence of identifier strings (FNV-1a over each part's bytes followed
// by its length, so part boundaries are significant). Experiment
// harnesses use it to seed every Jitterer chain from a stable point
// identity instead of sweep iteration order, so a run's modelled times do
// not depend on how many points preceded it or on host-side execution
// order. The result is always positive, so a zero Config seed can keep
// meaning "derive one for me".
func SeedOf(parts ...string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		for j := 0; j < len(p); j++ {
			h ^= uint64(p[j])
			h *= prime64
		}
		for n := len(p); ; n >>= 8 {
			h ^= uint64(n & 0xff)
			h *= prime64
			if n < 0x100 {
				break
			}
		}
	}
	seed := int64(h &^ (1 << 63))
	if seed == 0 {
		seed = 1
	}
	return seed
}

// Jitterer produces deterministic multiplicative jitter for software-cost
// modelling. Each protocol-layer process owns one (no locking).
type Jitterer struct {
	rng *rand.Rand
	rel float64
}

// NewJitterer returns a jitterer with relative magnitude rel (0 disables),
// seeded deterministically.
func NewJitterer(seed int64, rel float64) *Jitterer {
	return &Jitterer{rng: rand.New(rand.NewSource(seed)), rel: rel}
}

// Apply returns d scaled by a uniform factor in [1-rel, 1+rel].
func (j *Jitterer) Apply(d time.Duration) time.Duration {
	if j.rel <= 0 || d <= 0 {
		return d
	}
	return time.Duration(float64(d) * (1 + j.rel*(2*j.rng.Float64()-1)))
}
