// Package fabric simulates the cluster interconnect: the wire, the NICs,
// and their occupancy. It carries the messages of both communication models
// (two-sided MPI in package mpisim, one-sided GASPI in package gaspisim)
// between simulated ranks, charging modelled time for injection, flight and
// reception, and preserving the ordering guarantees the protocols rely on:
//
//   - MPI: messages between a (source, destination) pair are non-overtaking.
//   - GASPI: operations posted to the same queue towards the same target
//     arrive in posting order (GASPI spec §"queues").
//
// Both guarantees are provided per ordering domain — a (source,
// destination, class, lane) tuple. Domains hash onto a bounded pool of
// courier shards; each shard's single courier goroutine drains the input
// queues of many domains and advances their injection/delivery state
// machines through a per-shard agenda (a (time, seq) min-heap of pending
// events), so the host goroutine count scales with the shard count, not
// with the O(ranks²) domain count, while each domain's messages still
// inject and deliver strictly in arrival order. See ARCHITECTURE.md
// "Sharded host substrate".
//
// The two Profiles mirror the paper's evaluation systems: Marenostrum4
// (Intel Omni-Path, where the PSM2-optimised two-sided path is fast and
// ibverbs is emulated, penalising RDMA) and CTE-AMD (Mellanox InfiniBand,
// where RDMA is native and the two-sided stack is slower and noisier).
// Figure 13's crossover between the two machines follows from exactly this
// difference.
package fabric

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/vclock"
	"repro/internal/vsync"
)

// Rank identifies a simulated process.
type Rank int

// Class separates the protocol stacks multiplexed over one fabric.
type Class uint8

// Protocol classes.
const (
	ClassMPI   Class = iota // two-sided traffic (and MPI RMA)
	ClassGASPI              // one-sided GASPI traffic
)

// Topology maps ranks onto nodes and, for shaped topologies (topo.go),
// nodes onto a link graph with deterministic multi-hop routes.
type Topology struct {
	nodes        int
	ranksPerNode int

	// Shaped-topology state (nil/zero for flat): the shape tag, the
	// vertex count including switches, the canonical directed-link table
	// and the precomputed per-(src,dst) node routes as link indices.
	shape  Shape
	verts  int
	links  []topoLink
	routes [][]uint16
}

// NewTopology builds a flat block topology: rank r lives on node
// r/ranksPerNode and every inter-node pair is a single hop.
func NewTopology(nodes, ranksPerNode int) Topology {
	if nodes <= 0 || ranksPerNode <= 0 {
		panic(fmt.Sprintf("fabric: invalid topology %d nodes x %d ranks", nodes, ranksPerNode))
	}
	return Topology{nodes: nodes, ranksPerNode: ranksPerNode, verts: nodes}
}

// Nodes returns the node count.
func (t Topology) Nodes() int { return t.nodes }

// Ranks returns the total rank count.
func (t Topology) Ranks() int { return t.nodes * t.ranksPerNode }

// RanksPerNode returns the ranks placed on each node.
func (t Topology) RanksPerNode() int { return t.ranksPerNode }

// NodeOf returns the node hosting rank r.
func (t Topology) NodeOf(r Rank) int { return int(r) / t.ranksPerNode }

// SameNode reports whether two ranks share a node.
func (t Topology) SameNode(a, b Rank) bool { return t.NodeOf(a) == t.NodeOf(b) }

// Profile is the cost model of one machine: wire, NIC and software-stack
// parameters. Durations are modelled time; bandwidths are bytes/second.
type Profile struct {
	Name string

	// Wire and NIC.
	InterNodeLatency   time.Duration // one-way wire latency between nodes
	IntraNodeLatency   time.Duration // shared-memory "latency" within a node
	InterNodeBandwidth float64       // NIC link bandwidth
	IntraNodeBandwidth float64       // memcpy bandwidth between same-node ranks
	InjectOverhead     time.Duration // fixed per-message NIC injection cost

	// Two-sided (MPI) software stack.
	MPIOpOverhead  time.Duration // service time under the MPI library lock per call
	MPIMatchCost   time.Duration // extra service time per message matched/queued
	EagerThreshold int           // bytes; larger messages use rendezvous
	MPIJitter      float64       // relative jitter on MPI software costs (0..1)

	// One-sided (GASPI over ibverbs) software stack.
	RDMAOpOverhead time.Duration // per-operation post cost, charged per queue
	RDMAEmulated   bool          // ibverbs emulated over the native API
	RDMAEmulFactor float64       // cost multiplier on RDMA wire costs when emulated

	// Compute.
	CoreHz float64 // modelled scalar "element updates per second" per core
}

// ProfileOmniPath models Marenostrum4: Intel Omni-Path with Intel MPI over
// PSM2 (fast, contended two-sided path) and emulated ibverbs (RDMA penalty).
func ProfileOmniPath() Profile {
	return Profile{
		Name:               "marenostrum4-omnipath",
		InterNodeLatency:   1500 * time.Nanosecond,
		IntraNodeLatency:   300 * time.Nanosecond,
		InterNodeBandwidth: 12.0e9,
		IntraNodeBandwidth: 24.0e9,
		InjectOverhead:     250 * time.Nanosecond,
		MPIOpOverhead:      320 * time.Nanosecond,
		MPIMatchCost:       120 * time.Nanosecond,
		EagerThreshold:     16 << 10,
		MPIJitter:          0.08,
		RDMAOpOverhead:     260 * time.Nanosecond,
		RDMAEmulated:       true,
		RDMAEmulFactor:     1.1,
		CoreHz:             1.05e9,
	}
}

// ProfileInfiniBand models CTE-AMD: Mellanox InfiniBand HDR100 with native
// ibverbs (fast RDMA) and OpenMPI (slower, noisier two-sided path).
func ProfileInfiniBand() Profile {
	return Profile{
		Name:               "cte-amd-infiniband",
		InterNodeLatency:   1300 * time.Nanosecond,
		IntraNodeLatency:   250 * time.Nanosecond,
		InterNodeBandwidth: 11.0e9,
		IntraNodeBandwidth: 28.0e9,
		InjectOverhead:     280 * time.Nanosecond,
		MPIOpOverhead:      900 * time.Nanosecond,
		MPIMatchCost:       350 * time.Nanosecond,
		EagerThreshold:     16 << 10,
		MPIJitter:          0.35,
		RDMAOpOverhead:     180 * time.Nanosecond,
		RDMAEmulated:       false,
		RDMAEmulFactor:     1,
		CoreHz:             1.25e9,
	}
}

// ProfileIdeal zeroes all modelled costs. It is the profile for real-clock
// runs (examples), where the library behaves as a plain concurrent library
// and modelled delays would otherwise turn into real sleeps.
func ProfileIdeal() Profile {
	return Profile{
		Name:               "ideal",
		InterNodeBandwidth: 1e18, // effectively infinite: no modelled wire time
		IntraNodeBandwidth: 1e18,
		EagerThreshold:     16 << 10,
		RDMAEmulFactor:     1,
		CoreHz:             1e9,
	}
}

// Zero reports whether the profile charges no modelled time (ideal mode).
func (p Profile) Zero() bool {
	return p.InterNodeLatency == 0 && p.IntraNodeLatency == 0 &&
		p.InjectOverhead == 0 && p.MPIOpOverhead == 0 && p.RDMAOpOverhead == 0
}

// Message is one fabric transfer. Protocol layers fill the routing fields
// and hooks; the fabric owns the timing — and, once the message is passed
// to Send, the struct itself: after the destination handler returns (or
// OnFailed runs for a surfaced fault) the fabric zeroes the Message and
// recycles it through an internal pool. Neither handlers nor hooks may
// retain the *Message past their return; anything with a longer life
// belongs in Payload. Allocate with NewMessage to draw from the pool.
//
//tagalint:pooled
type Message struct {
	Src, Dst Rank
	Class    Class
	Lane     int  // ordering lane within (Src,Dst,Class): the GASPI queue id
	Size     int  // payload bytes, for bandwidth costs
	Control  bool // control messages skip bandwidth terms (acks, RTS/CTS)
	Payload  any  // protocol-layer descriptor

	// OnInjected, if non-nil, runs on the courier once the source NIC has
	// finished injecting the message: the moment of *local completion*
	// (the source buffer may be reused). Protocol layers snapshot the
	// payload bytes here.
	OnInjected func()

	// OnFailed, if non-nil, runs on the courier when the fault plane
	// (SetFaultPlan) fails the message's injection: the protocol layer
	// surfaces the error, as GASPI does through queue error states.
	// OnInjected does not run for a failed message and nothing is
	// delivered. Messages without the hook are instead retransmitted
	// transparently after the plan's RetransmitDelay, modelling a
	// reliable transport that hides faults by paying time (the MPI
	// contract).
	OnFailed func()

	// Flow is the causal-flow edge id stamped by Send when a recorder is
	// installed (zero otherwise): the trace binds the send-side 's' flow
	// event to the delivery-side 'f' event through it, and protocol layers
	// may carry it further (gaspisim hands it to the notification it
	// fulfils). Ids derive from the message's ordering domain and a
	// per-domain sequence number, so they are deterministic across reruns.
	Flow int64

	// enqueued is the Send timestamp, stamped only when a recorder is
	// installed; the injection courier turns it into the queue-residency
	// latency sample.
	enqueued time.Duration

	// Multi-hop flight state (shaped topologies only; see hopStep). The
	// fields ride on the message because several messages of one domain
	// pipeline through the route concurrently — per-domain state would
	// serialize the route. All are courier-owned and zeroed on release.
	hop      int           // next link index within the domain's route
	hopSer   time.Duration // per-link serialization occupancy
	hopLat   time.Duration // per-link propagation latency
	hopRx    time.Duration // destination reception cost after the last hop
	hopSpike time.Duration // fault-plane jitter spike, applied at the last hop
	linkWait time.Duration // accumulated link-contention wait along the route
}

// msgPool recycles Message structs across every fabric in the process.
// A message is released exactly once, by the courier that consumed it
// (deliver after the handler returns, inject after a surfaced fault), so
// no live reference can outlast the Put.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// NewMessage returns a zeroed Message drawn from the fabric's message
// pool. Messages built with a plain composite literal still work — Send
// does not care where the struct came from — but they feed the pool on
// release, so steady-state traffic allocates no Message structs at all
// only when senders use NewMessage.
//
//tagalint:hotpath
func NewMessage() *Message { return msgPool.Get().(*Message) }

// releaseMessage zeroes m (dropping payload and hook references) and
// returns it to the pool.
//
//tagalint:pooled release
//tagalint:hotpath
func releaseMessage(m *Message) {
	*m = Message{}
	msgPool.Put(m)
}

// Handler consumes delivered messages on the destination rank.
// It runs on a courier goroutine and must not block on modelled time other
// than briefly (it may wake parkers, post replies, take short mutexes).
// The *Message argument is recycled when the handler returns and must not
// be retained.
type Handler func(*Message)

type pathKey struct {
	src, dst Rank
	class    Class
	lane     int
}

// dom is the state of one ordering domain. All fields except the flow
// sequence are owned by the domain's shard courier (single goroutine);
// creation happens under f.mu before any traffic reaches the shard.
type dom struct {
	key   pathKey
	shard *courierShard
	fault *pathFaults // nil: the fault plane cannot touch this domain

	// route is the domain's multi-hop link route (topo.routeOf), nil for
	// flat topologies and intra-node traffic. It never changes after
	// addDom: routing is deterministic, so per-link statistics are a pure
	// function of the workload.
	route []uint16

	// Flow-id assignment for causal tracing: ids are flowBase (an FNV-1a
	// hash of the ordering-domain key, spreading domains across the id
	// space) plus a per-domain sequence number. Sends on one domain are
	// serialized by the virtual clock (see DESIGN.md §10), so the sequence
	// assignment — and with it every flow id — is deterministic across
	// reruns; the atomic is for race-detector soundness, not ordering.
	flowBase uint64
	flowSeq  atomic.Uint64

	// Injection state machine: pend holds messages awaiting injection in
	// arrival order; cur is the head-of-line message whose injection is in
	// progress, with its precomputed costs. injBusy gates the chain so at
	// most one injection per domain is in flight — the FIFO guarantee.
	pend    msgFIFO
	injBusy bool
	cur     *Message
	popTs   time.Duration // injection start (the old courier's PopAll time)
	lat     time.Duration // one-way latency, including any jitter spike
	rx      time.Duration // destination reception cost (0 intra-node)
	inject  time.Duration // source-side port occupancy
	spike   time.Duration // jitter spike of the current routed injection
	intra   bool
	attempt int

	// Delivery state machine, pipelined behind injection exactly like the
	// old courier pair: flights queue behind the one in-flight delivery.
	flights flightFIFO
	delBusy bool
	curFl   flight
	delFree time.Duration // completion time of the last delivery
	h       Handler       // destination handler, cached on first delivery
}

// flight is a message past local completion with its computed arrival time
// and reception cost.
type flight struct {
	m       *Message
	arrival time.Duration
	rx      time.Duration
}

// msgFIFO is an allocation-reusing FIFO of messages: pops advance a head
// index instead of reslicing, and the buffer is reset (capacity kept) when
// it empties, so a steady-state domain queues with no per-message garbage.
type msgFIFO struct {
	buf  []*Message
	head int
}

//tagalint:hotpath
func (q *msgFIFO) push(m *Message) {
	//lint:ignore hotalloc the buffer resets to [:0] on empty and reuses capacity; growth stops at the domain's backlog high-water mark (the dynamic CourierAllocBudget gate holds at 0/message)
	q.buf = append(q.buf, m)
}

//tagalint:hotpath
func (q *msgFIFO) pop() *Message {
	m := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return m
}

func (q *msgFIFO) len() int { return len(q.buf) - q.head }

// flightFIFO is msgFIFO for flights.
type flightFIFO struct {
	buf  []flight
	head int
}

//tagalint:hotpath
func (q *flightFIFO) push(fl flight) {
	//lint:ignore hotalloc same amortisation as msgFIFO.push: capacity is kept across the [:0] reset, so steady state appends in place
	q.buf = append(q.buf, fl)
}

//tagalint:hotpath
func (q *flightFIFO) pop() flight {
	fl := q.buf[q.head]
	q.buf[q.head] = flight{}
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return fl
}

func (q *flightFIFO) len() int { return len(q.buf) - q.head }

// Agenda event kinds: what a shard courier does when a scheduled instant
// arrives.
const (
	evInjDone  = iota // source port charged: local completion, hand to delivery
	evInjFault        // fault-plane drop charged: surface or schedule retry
	evInjRetry        // retransmit backoff elapsed: next injection attempt
	evDelStart        // flight arrived and the domain's delivery turn came
	evDelDone         // destination port charged: invoke the handler
	evHop             // routed message reached the entry of its next link
)

// agEvent is one pending state-machine step of a domain, scheduled on its
// shard's agenda. evHop events additionally carry the in-route message:
// hops are per-message state, because several messages of one domain
// pipeline through the route concurrently; m is nil for every other kind.
type agEvent struct {
	when time.Duration
	seq  uint64 // creation order within the shard, breaks same-instant ties
	kind uint8
	d    *dom
	m    *Message
}

// agendaHeap is a (when, seq) min-heap of pending events. Same-instant
// events fire in creation order, a deterministic choice among orders the
// old courier-per-domain model left to the host scheduler.
type agendaHeap []agEvent

func (h agendaHeap) less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

//tagalint:hotpath
func (h *agendaHeap) push(ev agEvent) {
	//lint:ignore hotalloc pops zero the vacated slot and shrink in place, so the heap's backing array stabilises at the shard's in-flight high-water mark
	*h = append(*h, ev)
	a := *h
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

//tagalint:hotpath
func (h *agendaHeap) pop() agEvent {
	a := *h
	n := len(a)
	ev := a[0]
	a[0] = a[n-1]
	a[n-1] = agEvent{}
	*h = a[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && a.less(l, smallest) {
			smallest = l
		}
		if r < n && a.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		a[i], a[smallest] = a[smallest], a[i]
		i = smallest
	}
	return ev
}

// inEntry is one queued Send: the message plus its resolved domain.
type inEntry struct {
	m *Message
	d *dom
}

// courierShard is one slice of the bounded courier pool: an input queue
// fed by Send and an agenda of scheduled domain events, drained by a
// single courier goroutine. Everything except the queue is owned by that
// goroutine.
type courierShard struct {
	in      *vsync.Queue[inEntry]
	clk     vclock.Clock
	agenda  agendaHeap
	started bool // courier goroutine spawned (guarded by f.mu)
}

// schedule books a future domain step on the shard agenda. The event's
// wake sequence is drawn from the clock's process-wide counter at this
// very call — the instant the goroutine-per-domain couriers armed their
// sleep timers — so same-deadline ties against rank-task timers resolve
// in the exact order the old model produced.
//
//tagalint:hotpath
func (s *courierShard) schedule(when time.Duration, kind uint8, d *dom, m *Message) {
	s.agenda.push(agEvent{when: when, seq: s.clk.AllocSeq(), kind: kind, d: d, m: m})
}

// Stats aggregates fabric traffic counters.
type Stats struct {
	Messages int64
	Bytes    int64
	ByClass  [2]int64
	// Faults counts fault-plane injection failures (each transparent
	// retransmission attempt and each surfaced failure is one fault).
	Faults int64
}

// Fabric connects the ranks of one simulated cluster.
type Fabric struct {
	clk  vclock.Clock
	topo Topology
	prof Profile

	nicTx  []*vsync.Resource // per-NODE inter-node injection port
	nicRx  []*vsync.Resource // per-NODE inter-node reception port
	shm    []*vsync.Resource // per-rank intra-node copy engine
	links  []*linkState      // per directed link of a shaped topology (nil: flat)
	rec    obs.Recorder      // nil: uninstrumented
	mu     sync.Mutex
	doms   map[pathKey]*dom
	shards []*courierShard
	hands  map[Class][]Handler // per class, indexed by rank
	wg     sync.WaitGroup

	// Teardown (Close): closing opens the drain window — new Sends from
	// delivery handlers are still accepted so in-flight protocol chains
	// (rendezvous CTS/DATA, read responses) can complete; closed marks the
	// fabric fully drained and torn down, after which Send panics.
	// inflight counts messages accepted by Send and not yet retired
	// (handler returned or failure surfaced); Close waits for it to reach
	// zero before closing the shard queues.
	closing   bool
	closed    bool
	inflight  atomic.Int64
	closeWait vclock.Parker

	// Fault plane (SetFaultPlan); plan and seed are set before traffic.
	plan      FaultPlan
	planOn    bool
	faultSeed int64

	msgs    atomic.Int64
	bytes   atomic.Int64
	byClass [2]atomic.Int64
	faults  atomic.Int64
}

// courierShardsFor is the size of the courier pool: enough shards to
// spread the domains of a large cluster across host cores, never more
// than the hard bound. Power of two, so domain placement is a mask of the
// domain-key hash.
func courierShardsFor(topo Topology) int {
	n := 1
	for n < topo.Ranks() && n < maxCourierShards {
		n <<= 1
	}
	return n
}

// maxCourierShards bounds the courier pool. The pool exists to decouple
// goroutine count from the O(ranks²) domain count; past a few dozen
// couriers the host cores are saturated and more shards only add idle
// goroutines.
const maxCourierShards = 64

// New builds a fabric for the given topology and cost profile.
func New(clk vclock.Clock, topo Topology, prof Profile) *Fabric {
	n := topo.Ranks()
	f := &Fabric{
		clk:   clk,
		topo:  topo,
		prof:  prof,
		doms:  make(map[pathKey]*dom),
		hands: make(map[Class][]Handler),
	}
	f.shards = make([]*courierShard, courierShardsFor(topo))
	for i := range f.shards {
		f.shards[i] = &courierShard{in: vsync.NewQueue[inEntry](clk), clk: clk}
	}
	f.nicTx = make([]*vsync.Resource, topo.Nodes())
	f.nicRx = make([]*vsync.Resource, topo.Nodes())
	for i := range f.nicTx {
		f.nicTx[i] = vsync.NewResource(clk)
		f.nicRx[i] = vsync.NewResource(clk)
	}
	f.shm = make([]*vsync.Resource, n)
	for i := range f.shm {
		f.shm[i] = vsync.NewResource(clk)
	}
	if ln := len(topo.links); ln > 0 {
		f.links = make([]*linkState, ln)
		for i, l := range topo.links {
			f.links[i] = &linkState{from: l.from, to: l.to, res: vsync.NewResource(clk)}
		}
	}
	return f
}

// linkState is the runtime state of one directed link of a shaped
// topology: its serialization capacity (an arrival-order serially-served
// resource, exactly like a NIC port) plus traffic counters. Counters are
// atomics because the domains crossing one link may live on different
// courier shards.
type linkState struct {
	from, to int
	res      *vsync.Resource
	msgs     atomic.Int64
	bytes    atomic.Int64
}

// Topology returns the fabric's topology.
func (f *Fabric) Topology() Topology { return f.topo }

// Profile returns the fabric's cost profile.
func (f *Fabric) Profile() Profile { return f.prof }

// Clock returns the fabric's time source.
func (f *Fabric) Clock() vclock.Clock { return f.clk }

// SetRecorder installs the observability recorder. It must be called
// before any traffic flows; a nil recorder (the default) keeps the fabric
// uninstrumented.
func (f *Fabric) SetRecorder(rec obs.Recorder) { f.rec = rec }

// Register installs the delivery handler for one rank and class.
// It must be called before any message of that class reaches the rank.
func (f *Fabric) Register(r Rank, class Class, h Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	hs := f.hands[class]
	if hs == nil {
		hs = make([]Handler, f.topo.Ranks())
		f.hands[class] = hs
	}
	hs[r] = h
}

// Send submits a message. It never blocks: the domain's shard courier
// picks the message up and charges the modelled transfer time. Posting-side
// software costs (the MPI library lock, the GASPI queue post) are charged
// by the protocol layers before calling Send. Send takes ownership of m:
// the fabric recycles the struct after delivery, so the caller must not
// touch it again.
//
//tagalint:pooled transfer
//tagalint:hotpath
func (f *Fabric) Send(m *Message) {
	if m.Src < 0 || int(m.Src) >= f.topo.Ranks() || m.Dst < 0 || int(m.Dst) >= f.topo.Ranks() {
		panic(fmt.Sprintf("fabric: message between invalid ranks %d -> %d", m.Src, m.Dst))
	}
	f.msgs.Add(1)
	f.bytes.Add(int64(m.Size))
	f.byClass[m.Class].Add(1)
	if f.rec != nil {
		m.enqueued = f.clk.Now()
	}
	key := pathKey{src: m.Src, dst: m.Dst, class: m.Class, lane: m.Lane}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		panic("fabric: Send after Close")
	}
	d, ok := f.doms[key]
	if !ok {
		d = f.addDom(key)
	}
	// The accept is recorded while f.mu is held, so Close — which flips
	// closing under the same lock before waiting — either sees this
	// message in flight or happened entirely before it.
	f.inflight.Add(1)
	f.mu.Unlock()
	if f.rec != nil {
		m.Flow = d.nextFlowID()
		f.rec.Flow(int(m.Src), obs.TrackFabricTx, obs.CatFabric, "flow:msg", 's', m.enqueued, m.Flow)
	}
	d.shard.in.Push(inEntry{m: m, d: d})
}

// nextFlowID assigns the next causal-flow edge id of one ordering domain.
// Ids are positive and never zero (zero marks an unstamped message).
//
//tagalint:hotpath
func (d *dom) nextFlowID() int64 {
	id := int64((d.flowBase + d.flowSeq.Add(1)) &^ (1 << 63))
	if id == 0 {
		id = 1
	}
	return id
}

// addDom creates an ordering domain and, if its shard's courier is not yet
// running, spawns it. It runs with f.mu held, once per (src, dst, class,
// lane) tuple over the fabric's lifetime: domain setup is the cold side of
// Send and may allocate.
func (f *Fabric) addDom(key pathKey) *dom {
	shard := f.shards[flowBaseOf(key)&uint64(len(f.shards)-1)]
	d := &dom{
		key:      key,
		shard:    shard,
		route:    f.topo.routeOf(f.topo.NodeOf(key.src), f.topo.NodeOf(key.dst)),
		flowBase: flowBaseOf(key),
	}
	d.fault = f.faultsFor(key, d.route)
	f.doms[key] = d
	if !shard.started {
		shard.started = true
		f.wg.Add(1)
		f.clk.Go(func() {
			defer f.wg.Done()
			f.courier(shard)
		})
	}
	return d
}

// retire marks one accepted message fully processed (delivered or its
// failure surfaced) and wakes a Close waiting for the fabric to drain.
//
//tagalint:hotpath
func (f *Fabric) retire() {
	if f.inflight.Add(-1) != 0 {
		return
	}
	f.mu.Lock()
	p := f.closeWait
	f.closeWait = nil
	f.mu.Unlock()
	if p != nil {
		p.Unpark()
	}
}

// flowBaseOf hashes an ordering-domain key into the 64-bit flow-id space
// (FNV-1a over the key fields), so the per-domain id sequences of different
// domains start far apart and practically never collide. The base depends
// only on the key — not on path-creation order — keeping flow ids
// deterministic across reruns.
func flowBaseOf(key pathKey) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [4]uint64{uint64(key.src), uint64(key.dst), uint64(key.class), uint64(key.lane)} {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}

// courier is one shard's service loop: it drains the shard's input queue,
// starts the injection chain of idle domains, and fires the agenda events
// of all the shard's domains in (time, seq) order. Between events it
// parks on the input queue at the frontier agenda event's exact
// (deadline, seq) — the timer the old couriers would have been sleeping
// on — so new traffic wakes it immediately while the event keeps its
// place in the global same-deadline wake order across re-parks.
//
// Timing equivalence with the old courier-pair-per-domain model: every
// Resource booking and every hook runs at exactly the virtual instant the
// blocking couriers would have executed it — the agenda replaces sleeping
// with scheduling, not the cost arithmetic — and every agenda event's
// wake sequence is drawn at the code point where the old model armed the
// corresponding timer (ARCHITECTURE.md gives the step-by-step argument).
//
//tagalint:hotpath
func (f *Fabric) courier(s *courierShard) {
	var buf []inEntry
	for {
		var items []inEntry
		var ok bool
		if len(s.agenda) == 0 {
			items, ok = s.in.PopAll(buf)
		} else {
			ev := s.agenda[0]
			items, ok = s.in.PopAllUntil(buf, ev.when, ev.seq)
		}
		if !ok {
			f.drainAgenda(s)
			return
		}
		if len(items) > 0 {
			// Push wake: fresh injections are booked mid-cascade, exactly
			// when the old per-domain inject couriers booked theirs. A push
			// cannot land between our timer's expiry and the queue's locked
			// re-check — a timer wake means every other registered goroutine
			// was parked — so absorbing here never reorders past a due event.
			buf = f.absorb(items)
			continue
		}
		// Timer wake at the agenda frontier: the advance loop fired our
		// (deadline, seq) as the globally-earliest timer, the same
		// one-step-per-quiescence-window serialization the old couriers got
		// from their Sleep calls. Fire exactly one event, then re-park.
		f.fire(s.agenda.pop())
	}
}

// absorb pushes one drained batch of Sends into their domains and starts
// the injection chain of every idle domain at the current instant. It
// returns the spent batch for reuse as the queue's push buffer.
//
//tagalint:hotpath
func (f *Fabric) absorb(items []inEntry) []inEntry {
	now := f.clk.Now()
	for i, e := range items {
		e.d.pend.push(e.m)
		if !e.d.injBusy {
			e.d.injBusy = true
			f.startInject(e.d, now)
		}
		items[i] = inEntry{} // drop refs before the array becomes the push buffer
	}
	return items
}

// drainAgenda fires whatever the agenda still holds after the input queue
// closed. Close waits for every accepted message to retire before closing
// the queues, so the agenda is normally empty here; any residue is driven
// to completion on a private parker that only ever wakes by deadline.
func (f *Fabric) drainAgenda(s *courierShard) {
	var p vclock.Parker
	for len(s.agenda) > 0 {
		ev := s.agenda[0]
		if ev.when > f.clk.Now() {
			if p == nil {
				p = f.clk.Parker()
				p.SetName("fabric-drain")
				p.SetExternal(true)
			}
			p.ParkUntil(ev.when, ev.seq)
			continue
		}
		f.fire(s.agenda.pop())
	}
}

// at runs a domain step at virtual instant when: scheduled on the shard
// agenda when the instant lies in the future, dispatched inline when it is
// already due — the zero-delay steps the old couriers ran without arming a
// timer (their sleeps were guarded `if d > 0`), so no wake sequence is
// drawn for them and the surrounding cascade keeps its old shape.
//
//tagalint:hotpath
func (f *Fabric) at(d *dom, when time.Duration, kind uint8) {
	if when > f.clk.Now() {
		d.shard.schedule(when, kind, d, nil)
		return
	}
	f.fire(agEvent{when: when, kind: kind, d: d})
}

// atHop is at for the per-message hop events of a routed domain: the
// message rides on the event because several messages pipeline through
// the route concurrently.
//
//tagalint:hotpath
func (f *Fabric) atHop(d *dom, m *Message, when time.Duration) {
	if when > f.clk.Now() {
		d.shard.schedule(when, evHop, d, m)
		return
	}
	f.fire(agEvent{when: when, kind: evHop, d: d, m: m})
}

// fire dispatches one agenda event at its scheduled instant.
//
//tagalint:hotpath
func (f *Fabric) fire(ev agEvent) {
	d := ev.d
	switch ev.kind {
	case evInjDone:
		f.injDone(d, ev.when)
	case evInjFault:
		f.injFault(d, ev.when)
	case evInjRetry:
		d.attempt++
		f.injectAttempt(d, ev.when)
	case evDelStart:
		done := ev.when
		if d.curFl.rx > 0 {
			_, done = f.nicRx[f.topo.NodeOf(d.curFl.m.Dst)].Reserve(d.curFl.rx)
		}
		f.at(d, done, evDelDone)
	case evDelDone:
		f.delDone(d, ev.when)
	case evHop:
		f.hopStep(d, ev.m, ev.when)
	}
}

// startInject begins the injection of the domain's next pending message at
// virtual instant now: it computes the message's wire costs and runs the
// first injection attempt. It is the event-driven form of the old inject
// courier's per-message loop head, so now plays the role the courier's
// PopAll wake-up time played — the send instant for an idle domain, the
// previous injection's completion for a backlogged one.
//
//tagalint:hotpath
func (f *Fabric) startInject(d *dom, now time.Duration) {
	m := d.pend.pop()
	d.cur = m
	d.popTs = now
	if f.rec != nil {
		f.rec.Latency("fabric.queue_residency", now-m.enqueued)
	}
	intra := f.topo.SameNode(m.Src, m.Dst)
	var lat time.Duration
	var bw float64
	if intra {
		lat, bw = f.prof.IntraNodeLatency, f.prof.IntraNodeBandwidth
	} else {
		lat, bw = f.prof.InterNodeLatency, f.prof.InterNodeBandwidth
	}
	if m.Class == ClassGASPI && f.prof.RDMAEmulated {
		lat = time.Duration(float64(lat) * f.prof.RDMAEmulFactor)
		bw /= f.prof.RDMAEmulFactor
	}
	var wire time.Duration
	if !m.Control && m.Size > 0 {
		wire = time.Duration(float64(m.Size) / bw * float64(time.Second))
	}

	// Injection: occupy the source-side port (NIC or intra-node
	// copy engine) for the overhead plus the serialization time.
	inject := f.prof.InjectOverhead + wire
	if m.Control {
		// Header-only packets (acks, notifications, RTS/CTS) occupy
		// the port for a fraction of a full-message injection.
		inject = f.prof.InjectOverhead / 4
	}
	d.intra = intra
	d.lat = lat
	d.inject = inject
	d.rx = wire
	if intra {
		d.rx = 0 // intra-node copies are charged once, at injection
	}
	d.spike = 0
	if d.route != nil {
		// Routed domains traverse their link route hop by hop after local
		// completion: each link serializes the message (full wire time for
		// data, a header slot for control packets) and adds one hop of
		// propagation latency, so a multi-hop path is strictly slower than
		// the flat single hop and shared links contend.
		m.hopLat = lat
		m.hopSer = wire
		if m.Control {
			m.hopSer = f.prof.InjectOverhead / 4
		}
		m.hopRx = d.rx
	}
	d.attempt = 0
	f.injectAttempt(d, now)
}

// injectAttempt runs one injection attempt at virtual instant now: the
// fault-plane decisions (rolled at the attempt instant, before the port is
// charged, exactly like the old courier loop), then the source-side port
// booking. The completion event carries the injection forward.
//
//tagalint:hotpath
func (f *Fabric) injectAttempt(d *dom, now time.Duration) {
	m := d.cur
	if pf := d.fault; pf != nil {
		dropped := pf.outageAt(now)
		if !dropped && pf.drop > 0 {
			dropped = pf.roll(saltDrop) < pf.drop
		}
		if dropped {
			// Each failed attempt charges the full injection cost — the
			// port did the work before the loss was detected.
			f.faults.Add(1)
			_, done := f.nicTx[f.topo.NodeOf(m.Src)].Reserve(d.inject)
			f.at(d, done, evInjFault)
			return
		}
		if pf.jitter > 0 && pf.roll(saltJitter) < pf.jitter {
			if d.route != nil {
				// Routed flights apply the spike once, at the last hop —
				// adding it to the per-hop latency would multiply it by the
				// route length.
				d.spike += pf.spike
			} else {
				d.lat += pf.spike
			}
		}
	}
	var done time.Duration
	if d.intra {
		_, done = f.shm[m.Src].Reserve(d.inject)
	} else {
		_, done = f.nicTx[f.topo.NodeOf(m.Src)].Reserve(d.inject)
	}
	f.at(d, done, evInjDone)
}

// injFault runs when a failed attempt's port charge completes. A failure
// of a message with an OnFailed hook is surfaced (hook runs, message
// consumed); without the hook the domain backs off RetransmitDelay and
// retries until an attempt succeeds, modelling a reliable transport that
// hides faults by paying time (the MPI contract).
//
//tagalint:hotpath
func (f *Fabric) injFault(d *dom, now time.Duration) {
	m := d.cur
	pf := d.fault
	if f.rec != nil {
		f.rec.Count("fabric_faults_injected", 1)
		f.rec.Instant(int(m.Src), obs.TrackFabricTx, obs.CatFabric,
			"fabric:fault", now, int64(m.Size))
	}
	if m.OnFailed != nil {
		// Failure handed to the protocol layer; nothing flies and the
		// consumed message goes back to the pool.
		m.OnFailed()
		d.cur = nil
		releaseMessage(m)
		f.retire()
		f.injNext(d, now)
		return
	}
	if d.attempt >= maxTransparentRetries {
		panic("fabric: transparent retransmission did not converge (Drop rate 1 on a class with no OnFailed hook?)")
	}
	f.at(d, now+pf.retrans, evInjRetry)
}

// injDone runs at an injection's local-completion instant: the source
// buffer is reusable, the flight towards the destination starts, and the
// domain's next pending message (if any) begins injecting — the pipelining
// the old courier pair provided by running inject and deliver on separate
// goroutines.
//
//tagalint:hotpath
func (f *Fabric) injDone(d *dom, now time.Duration) {
	m := d.cur
	d.cur = nil
	if m.OnInjected != nil {
		m.OnInjected() // local completion: source buffer reusable
	}
	if f.rec != nil {
		f.rec.Span(int(m.Src), obs.TrackFabricTx, obs.CatFabric, "fabric:inject",
			d.popTs, now, int64(m.Size))
	}
	if d.route != nil {
		// Routed flight: the message leaves the NIC and enters the first
		// link of its route now; hopStep carries it to arrival.
		m.hop = 0
		m.hopSpike = d.spike
		m.linkWait = 0
		f.hopStep(d, m, now)
	} else {
		f.arrive(d, flight{m: m, arrival: now + d.lat, rx: d.rx})
	}
	f.injNext(d, now)
}

// hopStep advances a routed message by one link: it books the link's
// serialization capacity in arrival order (waiting behind whatever other
// domains' traffic holds the link — this is where backpressure and
// hotspots emerge), charges one hop of propagation latency, and either
// schedules the next hop or hands the flight to the domain's delivery
// stage. Per-domain FIFO holds: injections of one domain are serialized,
// link service is arrival-ordered and every hop adds identical per-message
// costs, so hop completions of one domain never reorder.
//
//tagalint:hotpath
func (f *Fabric) hopStep(d *dom, m *Message, now time.Duration) {
	l := f.links[d.route[m.hop]]
	start, done := l.res.Reserve(m.hopSer)
	if wait := start - now; wait > 0 {
		m.linkWait += wait
		if f.rec != nil {
			f.rec.Latency("fabric.link_wait", wait)
		}
	}
	l.msgs.Add(1)
	l.bytes.Add(int64(m.Size))
	arrival := done + m.hopLat
	m.hop++
	if m.hop < len(d.route) {
		f.atHop(d, m, arrival)
		return
	}
	f.arrive(d, flight{m: m, arrival: arrival + m.hopSpike, rx: m.hopRx})
}

// arrive hands a completed flight to the domain's delivery stage: starts
// the delivery if the stage is idle, queues it behind the in-progress one
// otherwise. Flights of one domain arrive in injection order (flat: one
// in-flight computation; routed: hopStep's FIFO argument), so the queue
// preserves the non-overtaking guarantee.
//
//tagalint:hotpath
func (f *Fabric) arrive(d *dom, fl flight) {
	if d.delBusy {
		d.flights.push(fl)
		return
	}
	d.delBusy = true
	d.curFl = fl
	start := fl.arrival
	if d.delFree > start {
		start = d.delFree
	}
	f.at(d, start, evDelStart)
}

// injNext starts the domain's next pending injection, or idles the chain.
//
//tagalint:hotpath
func (f *Fabric) injNext(d *dom, now time.Duration) {
	if d.pend.len() > 0 {
		f.startInject(d, now)
	} else {
		d.injBusy = false
	}
}

// delDone runs at a delivery's completion instant: the destination port
// charge is over and the rank's handler consumes the message. The domain's
// (destination, class) never changes and Register precedes traffic, so the
// handler is looked up once and cached on the domain instead of taking the
// fabric lock per message.
//
//tagalint:hotpath
func (f *Fabric) delDone(d *dom, now time.Duration) {
	m := d.curFl.m
	d.curFl = flight{}
	if d.h == nil {
		f.mu.Lock()
		hs := f.hands[m.Class]
		f.mu.Unlock()
		if hs != nil {
			d.h = hs[m.Dst]
		}
		if d.h == nil {
			panic(fmt.Sprintf("fabric: no handler for class %d on rank %d", m.Class, m.Dst))
		}
	}
	if f.rec != nil {
		if m.Flow != 0 {
			if m.linkWait > 0 {
				// Split the edge for blame attribution: the flow:msg edge
				// ends where uncontended transit would have delivered, and a
				// flow:link edge (critpath class link_contend) covers the
				// accumulated link-contention tail [now-linkWait, now]. The
				// contention actually accrued mid-route; pinning it to the
				// tail keeps the attributed magnitude exact without
				// per-hop trace events. Flat runs never take this branch,
				// so their traces stay byte-identical.
				ts := now - m.linkWait
				f.rec.Flow(int(m.Dst), obs.TrackFabricRx, obs.CatFabric, "flow:msg",
					'f', ts, m.Flow)
				id := d.nextFlowID()
				f.rec.Flow(int(m.Dst), obs.TrackFabricRx, obs.CatFabric, "flow:link",
					's', ts, id)
				f.rec.Flow(int(m.Dst), obs.TrackFabricRx, obs.CatFabric, "flow:link",
					'f', now, id)
			} else {
				f.rec.Flow(int(m.Dst), obs.TrackFabricRx, obs.CatFabric, "flow:msg",
					'f', now, m.Flow)
			}
		}
		f.rec.Instant(int(m.Dst), obs.TrackFabricRx, obs.CatFabric, "fabric:deliver",
			now, int64(m.Size))
	}
	d.h(m)
	releaseMessage(m)
	f.retire()
	d.delFree = now
	if d.flights.len() > 0 {
		fl := d.flights.pop()
		d.curFl = fl
		start := fl.arrival
		if now > start {
			start = now
		}
		f.at(d, start, evDelStart)
	} else {
		d.delBusy = false
	}
}

// Close shuts the fabric down. It first waits for every accepted message
// to retire — deliveries still in flight complete, and their handlers may
// keep sending (a rendezvous reply, a read response) without panicking,
// which is what used to strand couriers when ranks exited early — then
// closes the shard queues and joins the couriers. Close is idempotent and
// callable from unregistered goroutines under both clocks; messages sent
// after it returns panic.
func (f *Fabric) Close() {
	f.mu.Lock()
	if f.closing {
		// Idempotent re-entry: the first Close tears the fabric down;
		// nothing here can proceed until it finished if it already
		// returned (closed is monotonic), and concurrent re-entry during
		// the drain window simply returns — the fabric is quiescing.
		f.mu.Unlock()
		return
	}
	f.closing = true
	var p vclock.Parker
	if f.inflight.Load() > 0 {
		p = f.clk.Parker()
		p.SetName("fabric-close")
		p.SetExternal(true)
		f.closeWait = p
	}
	f.mu.Unlock()
	if p != nil {
		// The drain-window park must be registered with the clock even
		// though Close usually runs on a host goroutine: Park decrements
		// the clock's active count, and an unbalanced decrement makes
		// quiescence (active == 0) fire while a courier is still runnable
		// — the courier's own park then drops the count below zero and
		// virtual time freezes with the burst still in flight.
		f.clk.Register()
		p.Park()
		f.clk.Unregister()
	}
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	for _, s := range f.shards {
		s.in.Close()
	}
	f.wg.Wait()
}

// Stats returns a snapshot of traffic counters.
func (f *Fabric) Stats() Stats {
	return Stats{
		Messages: f.msgs.Load(),
		Bytes:    f.bytes.Load(),
		ByClass:  [2]int64{f.byClass[0].Load(), f.byClass[1].Load()},
		Faults:   f.faults.Load(),
	}
}

// NICStats returns the (tx, rx) resource statistics of one rank's node NIC
// (NICs are per node: all ranks of a node share its injection and
// reception ports).
func (f *Fabric) NICStats(r Rank) (tx, rx vsync.ResourceStats) {
	n := f.topo.NodeOf(r)
	return f.nicTx[n].Stats(), f.nicRx[n].Stats()
}

// NICSnapshot is the (tx, rx) port statistics of one node's NIC.
type NICSnapshot struct {
	Node   int
	Tx, Rx vsync.ResourceStats
}

// NICSnapshots returns the NIC port statistics of every node.
func (f *Fabric) NICSnapshots() []NICSnapshot {
	out := make([]NICSnapshot, f.topo.Nodes())
	for n := range out {
		out[n] = NICSnapshot{Node: n, Tx: f.nicTx[n].Stats(), Rx: f.nicRx[n].Stats()}
	}
	return out
}

// LinkStats is the traffic and occupancy statistics of one directed link
// of a shaped topology: its endpoints (vertex ids, see
// Topology.Vertices), the messages and bytes that crossed it, and its
// serialization-resource statistics — Waited is the total time messages
// queued at the link's entry, the emergent backpressure signal.
type LinkStats struct {
	From, To int
	Msgs     int64
	Bytes    int64
	Res      vsync.ResourceStats
}

// LinkSnapshots returns the per-link statistics of a shaped topology in
// canonical link order, or nil for a flat topology.
func (f *Fabric) LinkSnapshots() []LinkStats {
	if f.links == nil {
		return nil
	}
	out := make([]LinkStats, len(f.links))
	for i, l := range f.links {
		out[i] = LinkStats{
			From: l.from, To: l.to,
			Msgs: l.msgs.Load(), Bytes: l.bytes.Load(),
			Res: l.res.Stats(),
		}
	}
	return out
}

// Snapshot returns the fabric's statistics — traffic totals plus the
// per-node NIC port occupancy and, for shaped topologies, per-link
// occupancy — in the unified observability shape.
func (f *Fabric) Snapshot() obs.Snapshot {
	s := f.Stats()
	samples := []obs.Sample{
		{Name: "messages", Value: float64(s.Messages)},
		{Name: "bytes", Value: float64(s.Bytes), Unit: "B"},
		{Name: "mpi.messages", Value: float64(s.ByClass[ClassMPI])},
		{Name: "gaspi.messages", Value: float64(s.ByClass[ClassGASPI])},
		{Name: "fabric_faults_injected", Value: float64(s.Faults)},
	}
	for _, nic := range f.NICSnapshots() {
		p := fmt.Sprintf("node%d.", nic.Node)
		samples = append(samples,
			obs.Sample{Name: p + "nic.tx.uses", Value: float64(nic.Tx.Uses)},
			obs.Sample{Name: p + "nic.tx.busy", Value: nic.Tx.Busy.Seconds(), Unit: "s"},
			obs.Sample{Name: p + "nic.tx.waited", Value: nic.Tx.Waited.Seconds(), Unit: "s"},
			obs.Sample{Name: p + "nic.rx.uses", Value: float64(nic.Rx.Uses)},
			obs.Sample{Name: p + "nic.rx.busy", Value: nic.Rx.Busy.Seconds(), Unit: "s"},
			obs.Sample{Name: p + "nic.rx.waited", Value: nic.Rx.Waited.Seconds(), Unit: "s"},
		)
	}
	for _, ls := range f.LinkSnapshots() {
		p := fmt.Sprintf("link.%d-%d.", ls.From, ls.To)
		samples = append(samples,
			obs.Sample{Name: p + "msgs", Value: float64(ls.Msgs)},
			obs.Sample{Name: p + "bytes", Value: float64(ls.Bytes), Unit: "B"},
			obs.Sample{Name: p + "busy", Value: ls.Res.Busy.Seconds(), Unit: "s"},
			obs.Sample{Name: p + "waited", Value: ls.Res.Waited.Seconds(), Unit: "s"},
		)
	}
	return obs.Snapshot{Component: "fabric", Rank: -1, Samples: samples}
}

// Reset clears the fabric's statistics counters (traffic totals, NIC,
// intra-node port and per-link statistics), opening a steady-state
// measurement window.
// In-flight traffic and port booking state are untouched.
func (f *Fabric) Reset() {
	f.msgs.Store(0)
	f.bytes.Store(0)
	f.byClass[0].Store(0)
	f.byClass[1].Store(0)
	f.faults.Store(0)
	for i := range f.nicTx {
		f.nicTx[i].ResetStats()
		f.nicRx[i].ResetStats()
	}
	for i := range f.shm {
		f.shm[i].ResetStats()
	}
	for _, l := range f.links {
		l.msgs.Store(0)
		l.bytes.Store(0)
		l.res.ResetStats()
	}
}

// SeedOf derives a deterministic, platform-independent seed from a
// sequence of identifier strings (FNV-1a over each part's bytes followed
// by its length, so part boundaries are significant). Experiment
// harnesses use it to seed every Jitterer chain from a stable point
// identity instead of sweep iteration order, so a run's modelled times do
// not depend on how many points preceded it or on host-side execution
// order. The result is always positive, so a zero Config seed can keep
// meaning "derive one for me".
func SeedOf(parts ...string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		for j := 0; j < len(p); j++ {
			h ^= uint64(p[j])
			h *= prime64
		}
		for n := len(p); ; n >>= 8 {
			h ^= uint64(n & 0xff)
			h *= prime64
			if n < 0x100 {
				break
			}
		}
	}
	seed := int64(h &^ (1 << 63))
	if seed == 0 {
		seed = 1
	}
	return seed
}

// Jitterer produces deterministic multiplicative jitter for software-cost
// modelling. Each protocol-layer process owns one (no locking).
type Jitterer struct {
	rng *rand.Rand
	rel float64
}

// NewJitterer returns a jitterer with relative magnitude rel (0 disables),
// seeded deterministically.
func NewJitterer(seed int64, rel float64) *Jitterer {
	return &Jitterer{rng: rand.New(rand.NewSource(seed)), rel: rel}
}

// Apply returns d scaled by a uniform factor in [1-rel, 1+rel].
func (j *Jitterer) Apply(d time.Duration) time.Duration {
	if j.rel <= 0 || d <= 0 {
		return d
	}
	return time.Duration(float64(d) * (1 + j.rel*(2*j.rng.Float64()-1)))
}
