package fabric

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/vclock"
)

// raceEnabled is set by race_on_test.go when the race detector is
// compiled in; its instrumentation allocates, so allocation-count gates
// skip under -race.
var raceEnabled bool

// allocsPerMessage measures host heap allocations per message for a full
// Send -> inject -> deliver round trip, including every courier-side
// allocation (AllocsPerRun counts global mallocs, so courier goroutines
// are included). With instrumented=true the fabric records into a live
// Collector — spans, instants and the flow-stamped causal edges — and the
// tracer is Reset between measurement rounds so its pre-grown shard
// buffers are reused instead of growing, which is exactly the steady state
// the hotalloc budget polices.
func allocsPerMessage(t *testing.T, batch int, instrumented bool) float64 {
	return allocsPerMessageOn(t, NewTopology(2, 1), 1, batch, instrumented)
}

// allocsPerMessageOn is allocsPerMessage on an arbitrary topology and
// destination rank, so the multi-hop routed path (per-link Reserve,
// courier hop events) is measured by the same harness as the flat one.
func allocsPerMessageOn(t *testing.T, topo Topology, dst Rank, batch int, instrumented bool) float64 {
	t.Helper()
	clk := vclock.NewVirtual()
	f := New(clk, topo, ProfileOmniPath())
	var col *obs.Collector
	if instrumented {
		col = &obs.Collector{Tracer: obs.NewTracer(topo.Ranks())}
		f.SetRecorder(col)
	}
	delivered := make(chan struct{}, 4*batch)
	f.Register(dst, ClassMPI, func(m *Message) { delivered <- struct{}{} })

	send := func() {
		if col != nil {
			col.Tracer.Reset()
		}
		for i := 0; i < batch; i++ {
			m := NewMessage()
			m.Src, m.Dst, m.Class, m.Size = 0, dst, ClassMPI, 256
			f.Send(m)
		}
		for i := 0; i < batch; i++ {
			<-delivered
		}
	}
	send() // warm up the path (courier spawn, queue and shard growth)

	per := testing.AllocsPerRun(16, send) / float64(batch)
	f.Close()
	return per
}

// CourierAllocBudget is the committed per-message allocation budget of the
// uninstrumented courier send path (Send through delivery). Before the
// allocation diet this path measured ~10.5 allocs/message (a fresh Message
// per Send, a fresh parker and timer per modelled sleep, per-Pop lock
// round trips); with pooled messages, pooled sleep timers and batched
// queue draining it measures 0.00. The budget is 1.0 rather than 0: a GC
// cycle during the measurement may empty the pools and charge a handful
// of refills to the run. Raising this number is a performance regression
// and needs justification.
const CourierAllocBudget = 1.0

// TestCourierAllocBudget is the allocation-regression gate of scripts/ci.sh:
// the per-message allocation count of the courier hot path must not exceed
// the committed budget.
func TestCourierAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	per := allocsPerMessage(t, 64, false)
	t.Logf("courier path: %.2f allocs/message (budget %.1f)", per, CourierAllocBudget)
	if per > CourierAllocBudget {
		t.Fatalf("courier send path allocates %.2f/message, budget is %.1f", per, CourierAllocBudget)
	}
}

// TestCourierAllocBudgetInstrumented holds the same budget with causal
// tracing on: flow-id stamping (Message.Flow, the per-path sequence) and
// the 's'/'f' edge recording must not add a single steady-state allocation
// per message on top of the recording layer's pre-grown shard buffers.
func TestCourierAllocBudgetInstrumented(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	per := allocsPerMessage(t, 64, true)
	t.Logf("instrumented courier path: %.2f allocs/message (budget %.1f)", per, CourierAllocBudget)
	if per > CourierAllocBudget {
		t.Fatalf("flow-stamped send path allocates %.2f/message, budget is %.1f", per, CourierAllocBudget)
	}
}

// TestCourierAllocBudgetMultiHop holds the same budget on the routed
// multi-hop path: a 6-node ring where 0 -> 3 crosses three links, so
// every message takes three per-link Reserve calls and two courier hop
// events on top of the flat path. Hop state lives in the pooled Message
// and hop events reuse the courier's agenda storage, so steady-state
// allocations must not grow with route length.
func TestCourierAllocBudgetMultiHop(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	topo := NewRingTopology(6, 1)
	if r := topo.routeOf(0, 3); len(r) != 3 {
		t.Fatalf("ring route 0->3 has %d hops, want 3", len(r))
	}
	per := allocsPerMessageOn(t, topo, 3, 64, false)
	t.Logf("multi-hop courier path: %.2f allocs/message (budget %.1f)", per, CourierAllocBudget)
	if per > CourierAllocBudget {
		t.Fatalf("multi-hop send path allocates %.2f/message, budget is %.1f", per, CourierAllocBudget)
	}
	per = allocsPerMessageOn(t, topo, 3, 64, true)
	t.Logf("instrumented multi-hop path: %.2f allocs/message (budget %.1f)", per, CourierAllocBudget)
	if per > CourierAllocBudget {
		t.Fatalf("instrumented multi-hop path allocates %.2f/message, budget is %.1f", per, CourierAllocBudget)
	}
}
