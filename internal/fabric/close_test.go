package fabric

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vclock"
)

// TestCloseDrainsEarlyExit is the early-teardown regression test: a rank
// that fires a burst of messages and exits immediately must not strand a
// courier or panic the teardown. Close opens a drain window in which
// in-flight deliveries complete and their handlers may keep sending (the
// rendezvous-reply pattern of the protocol layers); only after the last
// accepted message retires do the couriers join. Close is idempotent,
// including concurrently and after the fabric is fully closed.
func TestCloseDrainsEarlyExit(t *testing.T) {
	const msgs = 64
	clk := vclock.NewVirtual()
	f := New(clk, NewTopology(2, 1), testProfile())
	var replies atomic.Int64
	// Rank 1 answers every delivery with a reply sent from the courier's
	// own delivery callback — exactly what used to strand the teardown
	// when the sender had already exited.
	f.Register(1, ClassMPI, func(m *Message) {
		f.Send(&Message{Src: 1, Dst: 0, Class: ClassMPI, Size: 8})
	})
	f.Register(0, ClassMPI, func(m *Message) { replies.Add(1) })
	sent := make(chan struct{})
	clk.Go(func() {
		for i := 0; i < msgs; i++ {
			f.Send(&Message{Src: 0, Dst: 1, Class: ClassMPI, Size: 256})
		}
		close(sent)
		// Early exit: no wait for delivery, no final sleep. The burst is
		// still in flight when the last registered goroutine is gone.
	})
	<-sent

	// Concurrent idempotent Close: every call returns, exactly one tears
	// the fabric down, none panics.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Close()
		}()
	}
	wg.Wait()
	f.Close() // after full teardown: still a no-op

	if got := replies.Load(); got != msgs {
		t.Fatalf("drain window delivered %d handler replies, want %d", got, msgs)
	}
	if got := f.Stats().Messages; got != 2*msgs {
		t.Fatalf("fabric counted %d messages, want %d", got, 2*msgs)
	}

	// The fabric is closed: a late Send must fail loudly, not strand.
	defer func() {
		if recover() == nil {
			t.Fatal("Send after Close did not panic")
		}
	}()
	f.Send(&Message{Src: 0, Dst: 1, Class: ClassMPI, Size: 1})
}

// TestCloseNoTraffic closes a fabric that never carried a message — the
// couriers were never spawned — twice, from an unregistered goroutine.
func TestCloseNoTraffic(t *testing.T) {
	clk := vclock.NewVirtual()
	f := New(clk, NewTopology(2, 2), testProfile())
	f.Close()
	f.Close()
	if got := f.Stats().Messages; got != 0 {
		t.Fatalf("idle fabric counted %d messages", got)
	}
}

// TestCloseZeroCostInline covers the zero-delay path: under an ideal
// profile deliveries cascade inline inside Send, so nothing is in flight
// by the time Close runs — it must still be safe while a sender is mid-
// burst on another goroutine's virtual instant.
func TestCloseZeroCostInline(t *testing.T) {
	clk := vclock.NewVirtual()
	f := New(clk, NewTopology(2, 1), ProfileIdeal())
	var got atomic.Int64
	f.Register(1, ClassGASPI, func(m *Message) { got.Add(1) })
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		for i := 0; i < 32; i++ {
			f.Send(&Message{Src: 0, Dst: 1, Class: ClassGASPI, Size: 64})
		}
	})
	wg.Wait()
	f.Close()
	if got.Load() != 32 {
		t.Fatalf("delivered %d, want 32", got.Load())
	}
	// Give the watchdog a moment's worth of confidence: repeated Close
	// after inline delivery stays a no-op.
	done := make(chan struct{})
	go func() { f.Close(); close(done) }()
	select {
	case <-done:
	//lint:ignore detlint host-side hang watchdog: a correct Close returns immediately
	case <-time.After(5 * time.Second):
		t.Fatal("repeated Close hung")
	}
}
