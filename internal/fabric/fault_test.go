package fabric

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vclock"
)

// faultRun executes body on a fresh 2-node fabric with the given plan and
// seed, returning the fabric and the modelled finish time.
func faultRun(t *testing.T, plan FaultPlan, seed int64,
	register func(*Fabric, vclock.Clock), body func(*Fabric, vclock.Clock)) (*Fabric, time.Duration) {
	t.Helper()
	clk := vclock.NewVirtual()
	f := New(clk, NewTopology(2, 1), testProfile())
	if plan.Enabled() {
		f.SetFaultPlan(plan, seed)
	}
	register(f, clk)
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		body(f, clk)
	})
	wg.Wait()
	return f, clk.Now()
}

func TestFaultPlanZeroValueDisabled(t *testing.T) {
	var fp FaultPlan
	if fp.Enabled() {
		t.Fatal("zero FaultPlan must be disabled")
	}
	fp.MPI.Drop = 0.5
	if !fp.Enabled() {
		t.Fatal("Drop > 0 must enable the plan")
	}
	fp = FaultPlan{Outages: []Outage{{Link: Link{-1, -1}, Start: 0, End: time.Microsecond}}}
	if !fp.Enabled() {
		t.Fatal("an outage must enable the plan")
	}
	// Jitter without a spike cannot fault.
	fp = FaultPlan{GASPI: FaultRates{Jitter: 1}}
	if fp.Enabled() {
		t.Fatal("jitter without a spike duration must not enable the plan")
	}
}

func TestFaultSurfacesViaOnFailed(t *testing.T) {
	plan := FaultPlan{GASPI: FaultRates{Drop: 1}}
	var failed, injected, delivered atomic.Int64
	f, _ := faultRun(t, plan, 7,
		func(f *Fabric, clk vclock.Clock) {
			f.Register(1, ClassGASPI, func(m *Message) { delivered.Add(1) })
		},
		func(f *Fabric, clk vclock.Clock) {
			f.Send(&Message{Src: 0, Dst: 1, Class: ClassGASPI, Size: 100,
				OnInjected: func() { injected.Add(1) },
				OnFailed:   func() { failed.Add(1) },
			})
			clk.Sleep(time.Millisecond)
		})
	if failed.Load() != 1 || injected.Load() != 0 || delivered.Load() != 0 {
		t.Fatalf("failed=%d injected=%d delivered=%d, want 1/0/0",
			failed.Load(), injected.Load(), delivered.Load())
	}
	if got := f.Stats().Faults; got != 1 {
		t.Fatalf("Stats.Faults = %d, want 1", got)
	}
}

func TestTransparentRetransmitDeliversInOrder(t *testing.T) {
	const n = 200
	plan := FaultPlan{MPI: FaultRates{Drop: 0.3}, RetransmitDelay: time.Microsecond}
	var mu sync.Mutex
	var order []int
	var last time.Duration
	send := func(f *Fabric, clk vclock.Clock) {
		for i := 0; i < n; i++ {
			f.Send(&Message{Src: 0, Dst: 1, Class: ClassMPI, Size: 64, Payload: i})
		}
		clk.Sleep(time.Second)
	}
	reg := func(f *Fabric, clk vclock.Clock) {
		f.Register(1, ClassMPI, func(m *Message) {
			mu.Lock()
			order = append(order, m.Payload.(int))
			last = clk.Now()
			mu.Unlock()
		})
	}
	f, _ := faultRun(t, plan, 11, reg, send)
	if len(order) != n {
		t.Fatalf("delivered %d/%d messages", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d: transparent retransmission broke FIFO", i, v)
		}
	}
	if f.Stats().Faults == 0 {
		t.Fatal("Drop=0.3 over 200 messages injected no fault")
	}
	faultyLast := last
	order, last = nil, 0
	faultRun(t, FaultPlan{}, 11, reg, send)
	if faultyLast <= last {
		t.Fatalf("faulty run finished delivery at %v, not later than clean run (%v)", faultyLast, last)
	}
}

func TestFaultDeterminism(t *testing.T) {
	plan := FaultPlan{
		MPI:   FaultRates{Drop: 0.25, Jitter: 0.2, Spike: 10 * time.Microsecond},
		GASPI: FaultRates{Drop: 0.25},
	}
	run := func(seed int64) (int64, time.Duration) {
		var fails atomic.Int64
		f, end := faultRun(t, plan, seed,
			func(f *Fabric, clk vclock.Clock) {
				f.Register(1, ClassMPI, func(m *Message) {})
				f.Register(1, ClassGASPI, func(m *Message) {})
			},
			func(f *Fabric, clk vclock.Clock) {
				for i := 0; i < 100; i++ {
					f.Send(&Message{Src: 0, Dst: 1, Class: ClassMPI, Size: 128})
					f.Send(&Message{Src: 0, Dst: 1, Class: ClassGASPI, Size: 128,
						OnFailed: func() { fails.Add(1) }})
				}
				clk.Sleep(time.Second)
			})
		return f.Stats().Faults ^ fails.Load()<<32, end
	}
	fa, ea := run(42)
	fb, eb := run(42)
	if fa != fb || ea != eb {
		t.Fatalf("same seed diverged: faults %d vs %d, elapsed %v vs %v", fa, fb, ea, eb)
	}
	fc, _ := run(43)
	if fa == fc {
		t.Log("note: different seeds produced identical fault patterns (possible but unlikely)")
	}
}

func TestOutageDelaysDeliveryUntilRecovery(t *testing.T) {
	out := Outage{Link: Link{-1, -1}, Start: 0, End: 200 * time.Microsecond}
	plan := FaultPlan{Outages: []Outage{out}, RetransmitDelay: 5 * time.Microsecond}
	got := make(chan time.Duration, 1)
	_, _ = faultRun(t, plan, 3,
		func(f *Fabric, clk vclock.Clock) {
			f.Register(1, ClassMPI, func(m *Message) { got <- clk.Now() })
		},
		func(f *Fabric, clk vclock.Clock) {
			f.Send(&Message{Src: 0, Dst: 1, Class: ClassMPI, Size: 100})
			clk.Sleep(time.Second)
		})
	at := <-got
	if at < out.End {
		t.Fatalf("delivered at %v, inside the outage window ending %v", at, out.End)
	}
	if at > out.End+time.Millisecond {
		t.Fatalf("delivered at %v, long after recovery at %v", at, out.End)
	}
}

func TestJitterSpikeDelaysFlight(t *testing.T) {
	plan := FaultPlan{GASPI: FaultRates{Jitter: 1, Spike: 50 * time.Microsecond}}
	reg := func(got chan time.Duration) func(*Fabric, vclock.Clock) {
		return func(f *Fabric, clk vclock.Clock) {
			f.Register(1, ClassGASPI, func(m *Message) { got <- clk.Now() })
		}
	}
	body := func(f *Fabric, clk vclock.Clock) {
		f.Send(&Message{Src: 0, Dst: 1, Class: ClassGASPI, Size: 100})
		clk.Sleep(time.Second)
	}
	spiked := make(chan time.Duration, 1)
	clean := make(chan time.Duration, 1)
	faultRun(t, plan, 5, reg(spiked), body)
	faultRun(t, FaultPlan{}, 5, reg(clean), body)
	if d := <-spiked - <-clean; d != plan.GASPI.Spike {
		t.Fatalf("jitter hit delayed delivery by %v, want exactly %v", d, plan.GASPI.Spike)
	}
}

func TestIntraNodeTrafficNeverFaults(t *testing.T) {
	clk := vclock.NewVirtual()
	f := New(clk, NewTopology(1, 2), testProfile())
	f.SetFaultPlan(FaultPlan{
		GASPI:   FaultRates{Drop: 1},
		Outages: []Outage{{Link: Link{-1, -1}, Start: 0, End: time.Hour}},
	}, 1)
	var delivered atomic.Int64
	f.Register(1, ClassGASPI, func(m *Message) { delivered.Add(1) })
	var wg sync.WaitGroup
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		f.Send(&Message{Src: 0, Dst: 1, Class: ClassGASPI, Size: 64,
			OnFailed: func() { t.Error("intra-node message failed") }})
		clk.Sleep(time.Millisecond)
	})
	wg.Wait()
	if delivered.Load() != 1 || f.Stats().Faults != 0 {
		t.Fatalf("delivered=%d faults=%d, want 1 and 0", delivered.Load(), f.Stats().Faults)
	}
}

func TestFaultPlanValidation(t *testing.T) {
	for name, plan := range map[string]FaultPlan{
		"mpi-total-drop": {MPI: FaultRates{Drop: 1}},
		"rate-above-one": {GASPI: FaultRates{Drop: 1.5}},
		"empty-outage":   {Outages: []Outage{{Link: Link{-1, -1}, Start: time.Second, End: time.Second}}},
		// Regression: a negative Spike used to slip through validation and
		// subtract flight latency, handing the courier agenda an event
		// before the current instant.
		"negative-mpi-spike":   {MPI: FaultRates{Jitter: 0.5, Spike: -time.Microsecond}},
		"negative-gaspi-spike": {GASPI: FaultRates{Jitter: 1, Spike: -time.Nanosecond}},
		// Regression: out-of-range Link selectors used to silently match
		// nothing, turning the restriction or outage into a no-op.
		"oob-links-selector":  {MPI: FaultRates{Drop: 0.1}, Links: []Link{{SrcNode: 5, DstNode: AnyNode}}},
		"oob-outage-selector": {Outages: []Outage{{Link: Link{SrcNode: 0, DstNode: 9}, Start: 0, End: time.Second}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: SetFaultPlan accepted an invalid plan", name)
				}
			}()
			clk := vclock.NewVirtual()
			New(clk, NewTopology(2, 1), testProfile()).SetFaultPlan(plan, 1)
		}()
	}
}

// TestSelectorRangeFollowsTopology pins the vertex-id space selectors are
// validated against: switch vertices of a shaped topology are legal
// selector targets, ids past the last switch are not.
func TestSelectorRangeFollowsTopology(t *testing.T) {
	clk := vclock.NewVirtual()
	// 8-node fat-tree: 11 vertices (8 nodes, 2 leaves, 1 spine).
	f := New(clk, NewFatTreeTopology(8, 1), testProfile())
	// Leaf 0 (vertex 8) to the spine (vertex 10) is a real link.
	f.SetFaultPlan(FaultPlan{
		Outages: []Outage{{Link: Link{SrcNode: 8, DstNode: 10}, Start: 0, End: time.Microsecond}},
	}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("selector naming vertex 11 on an 11-vertex topology must panic")
		}
	}()
	f.SetFaultPlan(FaultPlan{
		Outages: []Outage{{Link: Link{SrcNode: 11, DstNode: AnyNode}, Start: 0, End: time.Microsecond}},
	}, 1)
}

// TestAnyLinkWildcard pins the Link selector semantics the godoc warns
// about: AnyLink matches every pair, the zero value only 0->0.
func TestAnyLinkWildcard(t *testing.T) {
	any := AnyLink()
	for _, pair := range [][2]int{{0, 0}, {0, 1}, {3, 7}, {12, 4}} {
		if !any.matches(pair[0], pair[1]) {
			t.Errorf("AnyLink().matches(%d, %d) = false, want true", pair[0], pair[1])
		}
	}
	var zero Link
	if !zero.matches(0, 0) {
		t.Error("Link{}.matches(0, 0) = false, want true")
	}
	if zero.matches(0, 1) || zero.matches(1, 0) {
		t.Error("zero-value Link matched a non-0->0 pair; it must select only 0->0")
	}
}

// TestInnerLinkOutageSeversCrossingRoutes drives two MPI streams over a
// 4-node ring with the inner link 1->2 down until 200µs: the route
// 0->1->2 crosses the dead link, so its delivery converges by transparent
// retransmission only after recovery; the route 3->2 does not cross it
// and delivers immediately. This is the shaped-topology contract of the
// fault plane — selectors apply to the individual links of a route.
func TestInnerLinkOutageSeversCrossingRoutes(t *testing.T) {
	out := Outage{Link: Link{SrcNode: 1, DstNode: 2}, Start: 0, End: 200 * time.Microsecond}
	clk := vclock.NewVirtual()
	f := New(clk, NewRingTopology(4, 1), testProfile())
	f.SetFaultPlan(FaultPlan{Outages: []Outage{out}, RetransmitDelay: 5 * time.Microsecond}, 3)
	crossed := make(chan time.Duration, 1)
	clean := make(chan time.Duration, 1)
	f.Register(2, ClassMPI, func(m *Message) {
		if m.Payload.(int) == 0 {
			crossed <- clk.Now()
		} else {
			clean <- clk.Now()
		}
	})
	var wg sync.WaitGroup
	wg.Add(2)
	clk.Go(func() {
		defer wg.Done()
		f.Send(&Message{Src: 0, Dst: 2, Class: ClassMPI, Size: 100, Payload: 0})
		clk.Sleep(time.Second)
	})
	clk.Go(func() {
		defer wg.Done()
		f.Send(&Message{Src: 3, Dst: 2, Class: ClassMPI, Size: 100, Payload: 1})
		clk.Sleep(time.Second)
	})
	wg.Wait()
	crossedAt, cleanAt := <-crossed, <-clean
	if crossedAt < out.End {
		t.Fatalf("route crossing the dead link delivered at %v, inside the outage ending %v",
			crossedAt, out.End)
	}
	if crossedAt > out.End+time.Millisecond {
		t.Fatalf("crossing route delivered at %v, long after recovery at %v", crossedAt, out.End)
	}
	if cleanAt >= out.End {
		t.Fatalf("route avoiding the dead link delivered at %v, blocked by an outage it never crosses",
			cleanAt)
	}
	if f.Stats().Faults == 0 {
		t.Fatal("no fault recorded while the crossing route retransmitted through the outage")
	}
}
