// Topology shapes of the simulated interconnect (DESIGN.md §13).
//
// The flat shape is the original fabric model: every inter-node pair is
// one hop with private capacity, so congestion cannot emerge between
// pairs. A shaped topology (ring, 2D mesh, fat-tree) expands each
// (source node, destination node) pair into a deterministic multi-hop
// route of directed links; each link is a serially-served resource
// (vsync.Resource) with its own serialization capacity, so messages
// queue per hop and backpressure and hotspots emerge from contention
// instead of being parameterized.
//
// Routes are a pure function of the topology — no adaptive or
// randomized routing — so two runs of the same workload traverse the
// same links in the same order and the per-link statistics are
// byte-identical across reruns, the property the repository's
// determinism gates rest on.
package fabric

import "fmt"

// Shape selects the interconnect topology of a fabric. The zero value is
// ShapeFlat: the original single-hop model with unchanged defaults.
type Shape uint8

// Topology shapes.
const (
	// ShapeFlat is the original model: every inter-node pair is one hop
	// with private capacity and no shared links.
	ShapeFlat Shape = iota
	// ShapeRing connects node i to nodes i±1 (mod N) with directed links;
	// routes take the shorter direction (ties go clockwise).
	ShapeRing
	// ShapeMesh2D arranges the nodes in a rows×cols grid (rows is the
	// largest divisor of N not exceeding √N) with 4-neighbour directed
	// links and no wraparound; routes use X-then-Y dimension order.
	ShapeMesh2D
	// ShapeFatTree builds a two-level switched tree: groups of up to
	// four nodes share a leaf switch, every leaf connects to every spine
	// switch, and inter-leaf routes pick their spine by destination
	// (deterministic ECMP). Switches are extra route vertices with ids
	// above the node ids — see Topology.Vertices.
	ShapeFatTree
)

// String returns the canonical shape name used in figure ids and reports.
func (s Shape) String() string {
	switch s {
	case ShapeFlat:
		return "flat"
	case ShapeRing:
		return "ring"
	case ShapeMesh2D:
		return "mesh"
	case ShapeFatTree:
		return "fattree"
	}
	return fmt.Sprintf("shape(%d)", uint8(s))
}

// topoLink is one directed link between two route vertices.
type topoLink struct {
	from, to int
}

// fatTreeLeafArity is the number of nodes sharing one leaf switch of a
// fat-tree topology.
const fatTreeLeafArity = 4

// NewShapedTopology builds the topology of the given shape. ShapeFlat
// delegates to NewTopology; the other shapes add their link tables and
// precomputed routes.
func NewShapedTopology(shape Shape, nodes, ranksPerNode int) Topology {
	switch shape {
	case ShapeFlat:
		return NewTopology(nodes, ranksPerNode)
	case ShapeRing:
		return NewRingTopology(nodes, ranksPerNode)
	case ShapeMesh2D:
		return NewMeshTopology(nodes, ranksPerNode)
	case ShapeFatTree:
		return NewFatTreeTopology(nodes, ranksPerNode)
	}
	panic(fmt.Sprintf("fabric: unknown topology shape %d", uint8(shape)))
}

// Shape returns the topology's shape.
func (t Topology) Shape() Shape { return t.shape }

// Vertices returns the number of route vertices: the nodes plus, for
// shapes with switches (fat-tree), the switch vertices. Link selectors
// (Link, Outage) address vertices by these ids: nodes are 0..Nodes()-1,
// fat-tree leaf switches follow at Nodes()..Nodes()+leaves-1 and spine
// switches after the leaves.
func (t Topology) Vertices() int {
	if t.verts == 0 {
		return t.nodes // flat Topology zero/legacy value
	}
	return t.verts
}

// LinkCount returns the number of directed links of a shaped topology
// (0 for flat).
func (t Topology) LinkCount() int { return len(t.links) }

// LinkEndpoints returns the (from, to) vertex ids of directed link i, in
// the canonical link order used by Fabric.LinkSnapshots.
func (t Topology) LinkEndpoints(i int) (from, to int) {
	l := t.links[i]
	return l.from, l.to
}

// routeOf returns the link-index route from node src to node dst, or nil
// when the topology is flat or the nodes coincide. The returned slice is
// shared and must not be mutated.
func (t Topology) routeOf(src, dst int) []uint16 {
	if t.routes == nil || src == dst {
		return nil
	}
	return t.routes[src*t.nodes+dst]
}

// topoBuilder accumulates the link table and route set of one shaped
// topology. Links are registered in a canonical enumeration order before
// any route references them, so link indices — and with them every
// per-link statistic — are independent of route-construction order.
type topoBuilder struct {
	t   *Topology
	idx map[topoLink]uint16
}

func newTopoBuilder(t *Topology) *topoBuilder {
	return &topoBuilder{t: t, idx: make(map[topoLink]uint16)}
}

// link registers (or finds) the directed link from->to and returns its
// index.
func (b *topoBuilder) link(from, to int) uint16 {
	key := topoLink{from: from, to: to}
	if i, ok := b.idx[key]; ok {
		return i
	}
	i := uint16(len(b.t.links))
	b.t.links = append(b.t.links, key)
	b.idx[key] = i
	return i
}

// route stores the src->dst node route.
func (b *topoBuilder) route(src, dst int, r []uint16) {
	b.t.routes[src*b.t.nodes+dst] = r
}

// NewRingTopology builds a ring of nodes: directed links i->(i+1) mod N
// and i->(i-1) mod N, with routes taking the shorter direction around the
// ring (distance ties go clockwise, towards increasing node ids).
func NewRingTopology(nodes, ranksPerNode int) Topology {
	t := NewTopology(nodes, ranksPerNode)
	t.shape = ShapeRing
	t.verts = nodes
	if nodes < 2 {
		return t
	}
	t.routes = make([][]uint16, nodes*nodes)
	b := newTopoBuilder(&t)
	for i := 0; i < nodes; i++ {
		b.link(i, (i+1)%nodes)
	}
	for i := 0; i < nodes; i++ {
		b.link(i, (i-1+nodes)%nodes)
	}
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			if src == dst {
				continue
			}
			cw := (dst - src + nodes) % nodes
			var r []uint16
			if cw <= nodes-cw {
				for v := src; v != dst; v = (v + 1) % nodes {
					r = append(r, b.link(v, (v+1)%nodes))
				}
			} else {
				for v := src; v != dst; v = (v - 1 + nodes) % nodes {
					r = append(r, b.link(v, (v-1+nodes)%nodes))
				}
			}
			b.route(src, dst, r)
		}
	}
	return t
}

// meshDims factors N into rows×cols with rows the largest divisor of N
// not exceeding √N (so rows <= cols; a prime N degenerates to a 1×N
// chain).
func meshDims(n int) (rows, cols int) {
	rows = 1
	for r := 2; r*r <= n; r++ {
		if n%r == 0 {
			rows = r
		}
	}
	return rows, n / rows
}

// NewMeshTopology builds a 2D mesh: the nodes form a rows×cols grid
// (meshDims) with directed links between 4-neighbours and no wraparound.
// Routes use X-then-Y dimension order (columns first, then rows), the
// deterministic deadlock-free order of classic mesh routers.
func NewMeshTopology(nodes, ranksPerNode int) Topology {
	t := NewTopology(nodes, ranksPerNode)
	t.shape = ShapeMesh2D
	t.verts = nodes
	if nodes < 2 {
		return t
	}
	rows, cols := meshDims(nodes)
	t.routes = make([][]uint16, nodes*nodes)
	b := newTopoBuilder(&t)
	for n := 0; n < nodes; n++ {
		row, col := n/cols, n%cols
		if col+1 < cols {
			b.link(n, n+1)
		}
		if col > 0 {
			b.link(n, n-1)
		}
		if row+1 < rows {
			b.link(n, n+cols)
		}
		if row > 0 {
			b.link(n, n-cols)
		}
	}
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			if src == dst {
				continue
			}
			var r []uint16
			v := src
			for v%cols != dst%cols {
				next := v + 1
				if dst%cols < v%cols {
					next = v - 1
				}
				r = append(r, b.link(v, next))
				v = next
			}
			for v/cols != dst/cols {
				next := v + cols
				if dst/cols < v/cols {
					next = v - cols
				}
				r = append(r, b.link(v, next))
				v = next
			}
			b.route(src, dst, r)
		}
	}
	return t
}

// NewFatTreeTopology builds a two-level fat-tree: every group of up to
// fatTreeLeafArity nodes shares a leaf switch, every leaf connects to
// every spine switch, and an inter-leaf route climbs src -> leaf ->
// spine -> leaf -> dst, picking the spine as dst mod spines
// (deterministic destination-based ECMP). Leaf switches occupy vertex
// ids Nodes()..Nodes()+leaves-1 and spines follow the leaves.
func NewFatTreeTopology(nodes, ranksPerNode int) Topology {
	t := NewTopology(nodes, ranksPerNode)
	t.shape = ShapeFatTree
	if nodes < 2 {
		t.verts = nodes
		return t
	}
	leaves := (nodes + fatTreeLeafArity - 1) / fatTreeLeafArity
	spines := (leaves + 1) / 2
	if spines < 1 {
		spines = 1
	}
	leafBase, spineBase := nodes, nodes+leaves
	t.verts = nodes + leaves + spines
	t.routes = make([][]uint16, nodes*nodes)
	b := newTopoBuilder(&t)
	leafOf := func(n int) int { return leafBase + n/fatTreeLeafArity }
	for n := 0; n < nodes; n++ {
		b.link(n, leafOf(n))
	}
	for n := 0; n < nodes; n++ {
		b.link(leafOf(n), n)
	}
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			b.link(leafBase+l, spineBase+s)
		}
	}
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			b.link(spineBase+s, leafBase+l)
		}
	}
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			if src == dst {
				continue
			}
			up, down := leafOf(src), leafOf(dst)
			if up == down {
				b.route(src, dst, []uint16{b.link(src, up), b.link(down, dst)})
				continue
			}
			sp := spineBase + dst%spines
			b.route(src, dst, []uint16{
				b.link(src, up), b.link(up, sp), b.link(sp, down), b.link(down, dst),
			})
		}
	}
	return t
}
