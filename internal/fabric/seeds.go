package fabric

// Seed derivation map (audited; DESIGN.md §8). Every deterministic random
// stream in a simulation derives from the single cluster Config.Seed, and
// each consumer salts it into its own region of seed space so no two
// streams ever share a generator state:
//
//   - MPI-model rank jitter:    seed + rank*7919          (MPIJitterSeed)
//   - GASPI world base:         seed + 0x9e3779b9         (GASPIWorldSeed)
//   - GASPI-model rank jitter:  worldSeed + rank*104729   (GASPIJitterSeed)
//   - fault plane:              seed ^ SeedOf("fault-plane") (FaultPlaneSeed)
//
// The jitter streams feed math/rand generators (Jitterer); the fault plane
// feeds counter-mode splitmix64 streams further salted per ordering domain
// (fault.go), so even a base-seed collision with a jitter stream would
// produce unrelated sequences. The two jitter strides are distinct primes
// and the GASPI chain is offset by the golden-ratio constant, so the MPI
// and GASPI rank progressions stay disjoint for every rank count the
// harness can realistically build; TestSeedDerivationsDistinct pins
// pairwise distinctness across all four derivations to 16384 ranks.
//
// These helpers are the only place the formulas live: cluster wires them
// into the worlds, and changing any constant is a reproducibility break
// (committed BENCH_*.json baselines would shift).

// MPIJitterSeed returns the software-jitter seed of MPI-model rank r under
// the given world seed.
func MPIJitterSeed(worldSeed int64, r int) int64 { return worldSeed + int64(r)*7919 }

// GASPIWorldSeed returns the GASPI world's base seed for a cluster seed:
// offset by the 32-bit golden-ratio constant so the GASPI jitter chain
// occupies a different region of seed space than the MPI chain.
func GASPIWorldSeed(clusterSeed int64) int64 { return clusterSeed + 0x9e3779b9 }

// GASPIJitterSeed returns the software-jitter seed of GASPI-model rank r
// under the given world seed (as returned by GASPIWorldSeed).
func GASPIJitterSeed(worldSeed int64, r int) int64 { return worldSeed + int64(r)*104729 }

// FaultPlaneSeed returns the fault plane's base seed for a cluster seed.
// XOR with a fixed FNV hash (rather than an additive offset) keeps it off
// the arithmetic progressions the jitter chains walk.
func FaultPlaneSeed(clusterSeed int64) int64 { return clusterSeed ^ SeedOf("fault-plane") }
