// Fault-injection plane of the simulated interconnect (DESIGN.md §9).
//
// A FaultPlan turns the perfectly reliable wire into a degradable one:
// per-class transient delivery failures and latency spikes plus hard link
// outage windows. Every decision is drawn from a deterministic per-path
// hash stream seeded from the plan seed and the path identity, never from
// host randomness or iteration order, so two runs of the same workload
// under the same plan inject exactly the same faults at the same modelled
// times — the property the repository's determinism gates rest on.
//
// Failure semantics split by protocol contract:
//
//   - Messages carrying an OnFailed hook (GASPI data/notify posts) surface
//     the failure to their protocol layer: the hook runs instead of
//     OnInjected and the message is consumed, mirroring how GASPI exposes
//     communication errors through queue error states and timed-out waits.
//   - Messages without the hook (all MPI traffic, internal read responses)
//     are retransmitted transparently after RetransmitDelay, modelling a
//     reliable transport that hides faults by paying time — the MPI
//     contract, under which the library may never show a lost message.
package fabric

import (
	"fmt"
	"time"
)

// FaultRates sets the transient-fault probabilities of one protocol class
// on the faulted links. The zero value never faults.
type FaultRates struct {
	// Drop is the per-injection probability that delivering the message
	// fails. Must be in [0, 1]; a transparently-retransmitted class (MPI)
	// additionally requires Drop < 1 or retransmission cannot converge.
	Drop float64
	// Jitter is the per-injection probability that a successfully
	// injected message suffers a latency spike of Spike.
	Jitter float64
	// Spike is the extra one-way flight latency of a jitter hit.
	Spike time.Duration
}

// zero reports whether the rates can never produce a fault.
func (r FaultRates) zero() bool {
	return r.Drop <= 0 && (r.Jitter <= 0 || r.Spike <= 0)
}

// AnyNode is the wildcard vertex id for Link selectors: a field set to
// AnyNode matches every vertex of the topology.
const AnyNode = -1

// Link selects directed links by their endpoint vertices; a negative
// field (AnyNode) matches any vertex. On a flat topology the endpoints
// are node ids and a link is an inter-node pair; on a shaped topology
// (ring, mesh, fat-tree) they are route-vertex ids — nodes first, then
// switches, see Topology.Vertices — and the selector matches the
// individual links of a route, so a selector on an inner link applies to
// every route crossing it.
//
// CAUTION: the zero value Link{} selects only the 0->0 link, not every
// link. Wildcard intent must be explicit: use AnyLink (or set the fields
// to AnyNode). SetFaultPlan rejects selectors naming vertices outside the
// topology, so a typo'd id fails loudly instead of silently matching
// nothing.
type Link struct {
	SrcNode, DstNode int
}

// AnyLink returns the wildcard link selector: it matches every link of
// the topology. Use it instead of the zero value Link{}, which selects
// only the 0->0 link.
func AnyLink() Link { return Link{SrcNode: AnyNode, DstNode: AnyNode} }

// matches reports whether the link selects the (src, dst) node pair.
func (l Link) matches(src, dst int) bool {
	return (l.SrcNode < 0 || l.SrcNode == src) && (l.DstNode < 0 || l.DstNode == dst)
}

// Outage is a hard link-failure window: every injection attempted on a
// matching link during [Start, End) fails regardless of class rates, and
// delivery resumes at End (link recovery).
type Outage struct {
	Link       Link
	Start, End time.Duration // modelled time since clock start
}

// FaultPlan describes the fault-injection plane of one job. The zero value
// disables it entirely: with an empty plan the fabric hot path is the same
// single nil check it was without the plane, and modelled results are
// byte-identical to a fabric without fault support. Intra-node
// (shared-memory) traffic never faults.
type FaultPlan struct {
	MPI   FaultRates // transient faults on ClassMPI messages
	GASPI FaultRates // transient faults on ClassGASPI messages

	// Links restricts transient faults to the selected inter-node links;
	// empty means every inter-node link.
	Links []Link

	// Outages are hard link-failure windows, applied to every class.
	Outages []Outage

	// RetransmitDelay is the back-off before a transparently
	// retransmitted message is re-injected. Zero selects
	// DefaultRetransmitDelay.
	RetransmitDelay time.Duration
}

// DefaultRetransmitDelay is the transparent-retransmission back-off used
// when a plan leaves RetransmitDelay zero: the order of a hardware/
// transport-level retry timeout, large against injection overheads and
// small against outage windows.
const DefaultRetransmitDelay = 5 * time.Microsecond

// maxTransparentRetries bounds transparent retransmission of one message;
// exceeding it is a configuration error (a Drop rate of 1 on a class with
// no failure hook), reported by panic rather than a silent livelock.
const maxTransparentRetries = 1 << 20

// Enabled reports whether the plan can inject any fault.
func (fp FaultPlan) Enabled() bool {
	return !fp.MPI.zero() || !fp.GASPI.zero() || len(fp.Outages) > 0
}

// validate panics on plans that cannot be simulated faithfully.
func (fp FaultPlan) validate() {
	check := func(class string, r FaultRates) {
		if r.Drop < 0 || r.Drop > 1 || r.Jitter < 0 || r.Jitter > 1 {
			panic(fmt.Sprintf("fabric: %s fault rates out of [0,1]: %+v", class, r))
		}
		if r.Spike < 0 {
			// A negative spike would subtract flight latency and can hand
			// the courier agenda an event before the current instant,
			// violating its time ordering.
			panic(fmt.Sprintf("fabric: %s Spike must be >= 0: %v", class, r.Spike))
		}
	}
	check("MPI", fp.MPI)
	check("GASPI", fp.GASPI)
	if fp.MPI.Drop >= 1 {
		panic("fabric: MPI.Drop must be < 1: MPI messages are retransmitted transparently and a total loss rate never converges")
	}
	for _, o := range fp.Outages {
		if o.End <= o.Start || o.Start < 0 {
			panic(fmt.Sprintf("fabric: invalid outage window [%v, %v)", o.Start, o.End))
		}
	}
}

// SetFaultPlan installs the fault-injection plane. Like SetRecorder it
// must be called before any traffic flows; derive the seed from the run's
// identity (SeedOf), not from iteration order, so the injected faults are
// a pure function of (plan, seed, workload).
func (f *Fabric) SetFaultPlan(plan FaultPlan, seed int64) {
	plan.validate()
	f.validateSelectors(plan)
	if plan.RetransmitDelay <= 0 {
		plan.RetransmitDelay = DefaultRetransmitDelay
	}
	f.mu.Lock()
	f.plan = plan
	f.planOn = plan.Enabled()
	f.faultSeed = seed
	f.mu.Unlock()
}

// validateSelectors panics on Link selectors naming vertices outside the
// fabric's topology. An out-of-range id (SrcNode: 99 on a 4-node
// topology) used to silently match nothing, turning the fault
// restriction or outage into a no-op; failing at plan installation makes
// the typo loud.
func (f *Fabric) validateSelectors(plan FaultPlan) {
	verts := f.topo.Vertices()
	check := func(what string, l Link) {
		if l.SrcNode >= verts || l.DstNode >= verts {
			panic(fmt.Sprintf(
				"fabric: %s %+v names a vertex outside the topology (%d vertices); use AnyLink or AnyNode for wildcards",
				what, l, verts))
		}
	}
	for _, l := range plan.Links {
		check("fault-plan link selector", l)
	}
	for _, o := range plan.Outages {
		check("outage link selector", o.Link)
	}
}

// pathFaults is the fault state of one ordering domain, owned by the
// path's injection courier: a single goroutine draws from the decision
// stream, so no locking and a host-schedule-independent sequence.
type pathFaults struct {
	drop, jitter float64
	spike        time.Duration
	outages      []Outage // windows covering this link, all classes
	retrans      time.Duration
	seed         uint64
	seq          uint64
}

// faultsFor computes the fault state of a newly created path, or nil when
// the plan cannot fault it (intra-node, unselected link, zero class
// rates and no covering outage). Called under f.mu from Send.
//
// On a flat topology a selector matches the (source node, destination
// node) pair — the only link the path crosses. On a shaped topology it
// matches the individual links of the path's route: an outage on an
// inner link severs every route crossing it, and the decision is still
// made at injection time (the source keeps retrying — or surfacing
// failures — until the route heals), so the fault plane stays entirely
// in the injection state machine.
func (f *Fabric) faultsFor(key pathKey, route []uint16) *pathFaults {
	if !f.planOn || f.topo.SameNode(key.src, key.dst) {
		return nil
	}
	srcN, dstN := f.topo.NodeOf(key.src), f.topo.NodeOf(key.dst)
	rates := f.plan.MPI
	if key.class == ClassGASPI {
		rates = f.plan.GASPI
	}
	matches := func(l Link) bool {
		if route == nil {
			return l.matches(srcN, dstN)
		}
		for _, li := range route {
			if tl := f.topo.links[li]; l.matches(tl.from, tl.to) {
				return true
			}
		}
		return false
	}
	covered := len(f.plan.Links) == 0
	for _, l := range f.plan.Links {
		if matches(l) {
			covered = true
			break
		}
	}
	var outs []Outage
	for _, o := range f.plan.Outages {
		if matches(o.Link) {
			outs = append(outs, o)
		}
	}
	if (rates.zero() || !covered) && len(outs) == 0 {
		return nil
	}
	pf := &pathFaults{
		outages: outs,
		retrans: f.plan.RetransmitDelay,
		seed:    pathSeed(f.faultSeed, key),
	}
	if covered {
		pf.drop, pf.jitter, pf.spike = rates.Drop, rates.Jitter, rates.Spike
	}
	return pf
}

// pathSeed folds the plan seed and the path identity into the stream seed.
func pathSeed(seed int64, key pathKey) uint64 {
	h := mix64(uint64(seed))
	h = mix64(h ^ uint64(key.src)<<1 ^ uint64(key.dst)<<21)
	h = mix64(h ^ uint64(key.class)<<41 ^ uint64(key.lane)<<45)
	return h
}

// mix64 is the splitmix64 finalizer: a bijective avalanche mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Decision-stream salts separating the drop and jitter draws.
const (
	saltDrop   uint64 = 0xd1b54a32d192ed03
	saltJitter uint64 = 0x8bb84b93962eacc9
)

// roll draws the next uniform [0,1) variate of the path's decision stream.
func (pf *pathFaults) roll(salt uint64) float64 {
	pf.seq++
	return float64(mix64(pf.seed^salt^pf.seq*0x9e3779b97f4a7c15)>>11) / (1 << 53)
}

// outageAt reports whether an outage window covers the instant now.
func (pf *pathFaults) outageAt(now time.Duration) bool {
	for _, o := range pf.outages {
		if now >= o.Start && now < o.End {
			return true
		}
	}
	return false
}
