package fabric

import "testing"

// TestSeedDerivationsDistinct is the seed-collision audit as a regression
// test: under one cluster seed, the MPI jitter seeds, GASPI jitter seeds
// and the fault-plane seed must be pairwise distinct for every rank count
// the harness can realistically build. A collision would hand two streams
// the same math/rand state and silently correlate their jitter.
func TestSeedDerivationsDistinct(t *testing.T) {
	const ranks = 16384
	for _, base := range []int64{0, 1, 2, 3, 42, SeedOf("exp", "fig9", "tagaspi/n4")} {
		seen := make(map[int64]string, 2*ranks+1)
		record := func(seed int64, who string) {
			if prev, dup := seen[seed]; dup {
				t.Fatalf("base %d: seed %d shared by %s and %s", base, seed, prev, who)
			}
			seen[seed] = who
		}
		record(FaultPlaneSeed(base), "fault-plane")
		gw := GASPIWorldSeed(base)
		for r := 0; r < ranks; r++ {
			record(MPIJitterSeed(base, r), "mpi jitter")
			record(GASPIJitterSeed(gw, r), "gaspi jitter")
		}
	}
}

// TestSeedDerivationFormulas pins the exact constants: these values are
// baked into every committed BENCH_*.json baseline, so a change here is a
// reproducibility break, not a refactor.
func TestSeedDerivationFormulas(t *testing.T) {
	if got := MPIJitterSeed(10, 3); got != 10+3*7919 {
		t.Errorf("MPIJitterSeed(10, 3) = %d", got)
	}
	if got := GASPIWorldSeed(10); got != 10+0x9e3779b9 {
		t.Errorf("GASPIWorldSeed(10) = %d", got)
	}
	if got := GASPIJitterSeed(GASPIWorldSeed(10), 3); got != 10+0x9e3779b9+3*104729 {
		t.Errorf("GASPIJitterSeed(GASPIWorldSeed(10), 3) = %d", got)
	}
	if got := FaultPlaneSeed(10); got != 10^SeedOf("fault-plane") {
		t.Errorf("FaultPlaneSeed(10) = %d", got)
	}
}
