// Package dataflow is a forward dataflow engine over the cfg package's
// graphs: the fixpoint half of the flow-sensitive tagalint analyzers. A
// client supplies a join-semilattice of abstract states and a monotone
// transfer function over CFG nodes; the engine computes, for every
// reachable block, the join of the states flowing in over all paths from
// the entry.
//
// The engine iterates in reverse post-order until no block's input state
// changes, so the result is deterministic for a given graph and the pass
// count is bounded by the lattice height. A safety valve aborts runs whose
// transfer function is not monotone (states would oscillate forever).
package dataflow

import (
	"fmt"
	"go/ast"

	"repro/internal/analysis/cfg"
)

// Lattice describes the abstract-state domain S: a bottom element, a
// commutative/associative/idempotent join, equality, and cloning (the
// engine never mutates a state it has stored; transfer functions receive a
// clone they may mutate freely).
type Lattice[S any] interface {
	Bottom() S
	Clone(S) S
	Join(a, b S) S
	Equal(a, b S) bool
}

// Result carries the fixpoint: the input state of every reachable block
// (indexed by Block.Index; unreachable blocks keep the zero value with
// Reached false) plus iteration accounting for termination tests.
type Result[S any] struct {
	In      []S
	Reached []bool
	// Passes counts block-transfer applications until the fixpoint; it is
	// bounded by blocks × (lattice height + 1) for a monotone transfer.
	Passes int
}

// maxPassFactor bounds the fixpoint at maxPassFactor passes per block —
// far above any monotone client's need (the poollife lattice has height
// ≤ 2 per tracked variable) — so a non-monotone transfer fails loudly
// instead of hanging the lint.
const maxPassFactor = 1024

// Forward computes the forward fixpoint of transfer over g, seeding the
// entry block with entry. transfer is applied to every node of a block in
// order and must return the (possibly mutated) state it was handed.
func Forward[S any](g *cfg.Graph, lat Lattice[S], entry S, transfer func(ast.Node, S) S) (*Result[S], error) {
	n := len(g.Blocks)
	res := &Result[S]{In: make([]S, n), Reached: make([]bool, n)}
	if n == 0 {
		return res, nil
	}
	for i := range res.In {
		res.In[i] = lat.Bottom()
	}
	res.In[0] = lat.Clone(entry)
	res.Reached[0] = true

	order := postorder(g)
	// Reverse post-order: process definers before users where possible.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}

	dirty := make([]bool, n)
	dirty[0] = true
	maxPasses := maxPassFactor * n
	for changed := true; changed; {
		changed = false
		for _, blk := range order {
			if !dirty[blk.Index] {
				continue
			}
			dirty[blk.Index] = false
			res.Passes++
			if res.Passes > maxPasses {
				return nil, fmt.Errorf("dataflow: no fixpoint after %d passes over %d blocks (non-monotone transfer?)", res.Passes, n)
			}
			out := lat.Clone(res.In[blk.Index])
			for _, node := range blk.Nodes {
				out = transfer(node, out)
			}
			for _, succ := range blk.Succs {
				joined := lat.Join(lat.Clone(res.In[succ.Index]), out)
				if !res.Reached[succ.Index] || !lat.Equal(joined, res.In[succ.Index]) {
					res.In[succ.Index] = joined
					res.Reached[succ.Index] = true
					dirty[succ.Index] = true
					changed = true
				}
			}
		}
	}
	return res, nil
}

// postorder returns the blocks reachable from the entry in depth-first
// post-order.
func postorder(g *cfg.Graph) []*cfg.Block {
	seen := make([]bool, len(g.Blocks))
	var order []*cfg.Block
	var visit func(b *cfg.Block)
	visit = func(b *cfg.Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			visit(s)
		}
		order = append(order, b)
	}
	visit(g.Blocks[0])
	return order
}
