package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"maps"
	"testing"

	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// setLattice is a may-analysis over sets of assigned variable names — the
// same shape as poollife's released-set lattice.
type setLattice struct{}

func (setLattice) Bottom() map[string]bool { return nil }

func (setLattice) Clone(s map[string]bool) map[string]bool {
	if s == nil {
		return map[string]bool{}
	}
	return maps.Clone(s)
}

func (setLattice) Join(a, b map[string]bool) map[string]bool {
	if a == nil {
		a = map[string]bool{}
	}
	for k := range b {
		a[k] = true
	}
	return a
}

func (setLattice) Equal(a, b map[string]bool) bool { return maps.Equal(a, b) }

// assigned records every variable name appearing on the left of := or =
// within n.
func assigned(n ast.Node, s map[string]bool) map[string]bool {
	ast.Inspect(n, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					s[id.Name] = true
				}
			}
		}
		return true
	})
	return s
}

func build(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return cfg.New(fn.Body)
}

func TestBranchJoinIsUnion(t *testing.T) {
	g := build(t, `
if c {
	x := 1
	_ = x
} else {
	y := 2
	_ = y
}
z := 3
_ = z
`)
	res, err := dataflow.Forward[map[string]bool](g, setLattice{}, nil, assigned)
	if err != nil {
		t.Fatal(err)
	}
	// The join block (the one holding "z := 3") must see both branches'
	// assignments.
	var join map[string]bool
	for _, b := range g.Blocks {
		if b.Kind == "if.join" {
			join = res.In[b.Index]
		}
	}
	for _, want := range []string{"x", "y"} {
		if !join[want] {
			t.Errorf("join state missing %q: %v", want, join)
		}
	}
	if join["z"] {
		t.Errorf("join input must precede z := 3: %v", join)
	}
}

func TestLoopFixpointTerminates(t *testing.T) {
	g := build(t, `
x := 0
for i := 0; i < 10; i++ {
	if c {
		a := 1
		_ = a
	}
	b := 2
	_ = b
}
done := true
_ = done
`)
	res, err := dataflow.Forward[map[string]bool](g, setLattice{}, nil, assigned)
	if err != nil {
		t.Fatal(err)
	}
	// A finite lattice over a loop converges in a small number of passes:
	// well under the engine's non-monotonicity safety valve.
	if res.Passes > 4*len(g.Blocks) {
		t.Errorf("fixpoint took %d passes for %d blocks", res.Passes, len(g.Blocks))
	}
	// Loop-carried facts reach the loop head via the back edge.
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			for _, want := range []string{"x", "i", "b"} {
				if !res.In[b.Index][want] {
					t.Errorf("loop head missing loop-carried %q: %v", want, res.In[b.Index])
				}
			}
		}
	}
}

func TestUnreachableBlocksNotVisited(t *testing.T) {
	g := build(t, `
return
x := 1
_ = x
`)
	res, err := dataflow.Forward[map[string]bool](g, setLattice{}, nil, assigned)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range g.Blocks {
		if b.Kind == "unreachable" && res.Reached[b.Index] {
			t.Errorf("unreachable block b%d marked reached", b.Index)
		}
	}
}

// oscillating is a deliberately non-monotone "lattice": Join claims states
// are fresh every time by toggling membership, so the engine must hit its
// safety valve instead of spinning forever.
type oscillating struct{}

func (oscillating) Bottom() map[string]bool                 { return nil }
func (oscillating) Clone(s map[string]bool) map[string]bool { return setLattice{}.Clone(s) }
func (oscillating) Join(a, b map[string]bool) map[string]bool {
	a = setLattice{}.Clone(a)
	if a["flip"] {
		delete(a, "flip")
	} else {
		a["flip"] = true
	}
	return a
}
func (oscillating) Equal(a, b map[string]bool) bool { return maps.Equal(a, b) }

func TestNonMonotoneTransferFailsLoudly(t *testing.T) {
	g := build(t, `
for {
	x := 1
	_ = x
}
`)
	_, err := dataflow.Forward[map[string]bool](g, oscillating{}, nil, assigned)
	if err == nil {
		t.Fatal("want convergence error for oscillating lattice, got nil")
	}
}
