// Package poolmark resolves the //tagalint:pooled source markers that
// drive the poollife analyzer. The markers declare, next to the code that
// owns the pool, which types are pool-recycled and which functions consume
// them:
//
//	//tagalint:pooled
//	type Message struct { ... }        // instances are pool-recycled
//
//	//tagalint:pooled release
//	func releaseMessage(m *Message)    // calling this releases m
//
//	//tagalint:pooled transfer
//	func (f *Fabric) Send(m *Message)  // ownership moves to the callee
//
// release and transfer have the same dataflow effect — the caller must not
// touch the argument afterwards — and differ only in diagnostic wording:
// release returns the object to its pool, transfer hands it to another
// owner (the fabric owns a Message after Send; whether it pools it is the
// fabric's business).
//
// Because pooled types are used across packages (every protocol layer
// builds fabric.Messages), markers must be visible when analyzing a
// package other than the declaring one. The unit-at-a-time framework has
// no cross-package fact store, so poolmark re-reads the declaring
// package's source instead: a type or function object in a module-local
// package is resolved by parsing that package's directory (comments and
// declarations only, no type checking) and scanning its doc comments. One
// Cache memoizes the scan per directory.
package poolmark

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"sync"
)

// Kind distinguishes how a marked function consumes its pooled arguments.
type Kind int

const (
	// Release: the function returns its pooled arguments to their pool.
	Release Kind = iota
	// Transfer: ownership of the pooled arguments moves to the callee
	// (or through it, e.g. to the fabric); the caller must treat them as
	// gone either way.
	Transfer
)

func (k Kind) String() string {
	if k == Transfer {
		return "transfer"
	}
	return "release"
}

// marker is the directive prefix. A bare marker on a type declares it
// pooled; "release"/"transfer" arguments on a func declare it a consumer.
const marker = "//tagalint:pooled"

// Info holds the markers of one package directory.
type Info struct {
	// Types maps marked type names to true.
	Types map[string]bool
	// Funcs maps "Name" (functions) and "Recv.Name" (methods, pointer
	// receivers stripped) to the consumer kind.
	Funcs map[string]Kind
}

// Cache memoizes directory scans. The zero value is not usable; use
// NewCache. A Cache is safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	byDir map[string]*Info
}

// NewCache returns an empty marker cache.
func NewCache() *Cache {
	return &Cache{byDir: map[string]*Info{}}
}

// FromFiles scans already-parsed files for markers (used for the package
// under analysis, whose syntax the pass already holds).
func FromFiles(files []*ast.File) *Info {
	info := &Info{Types: map[string]bool{}, Funcs: map[string]Kind{}}
	for _, f := range files {
		scanFile(f, info)
	}
	return info
}

func scanFile(f *ast.File, info *Info) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasMarker(d.Doc, "") || hasMarker(ts.Doc, "") || hasMarker(ts.Comment, "") {
					info.Types[ts.Name.Name] = true
				}
			}
		case *ast.FuncDecl:
			kind, ok := funcMarker(d.Doc)
			if !ok {
				continue
			}
			info.Funcs[funcKey(d)] = kind
		}
	}
}

// funcKey renders a FuncDecl's lookup key: "Name" or "Recv.Name".
func funcKey(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name + "." + d.Name.Name
		default:
			return d.Name.Name
		}
	}
}

// hasMarker reports whether cg contains the marker with the given
// argument ("" for the bare type marker).
func hasMarker(cg *ast.CommentGroup, arg string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, marker)
		if !ok {
			continue
		}
		if strings.TrimSpace(rest) == arg {
			return true
		}
	}
	return false
}

func funcMarker(cg *ast.CommentGroup) (Kind, bool) {
	switch {
	case hasMarker(cg, "release"):
		return Release, true
	case hasMarker(cg, "transfer"):
		return Transfer, true
	}
	return 0, false
}

// Dir loads (or returns the cached) markers of one package directory.
// Scan failures yield an empty Info: an unreadable dependency simply
// contributes no pooled types, it does not fail the analysis.
func (c *Cache) Dir(dir string) *Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	if info, ok := c.byDir[dir]; ok {
		return info
	}
	info := &Info{Types: map[string]bool{}, Funcs: map[string]Kind{}}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
	if err == nil {
		// Deterministic order is irrelevant: markers only add entries.
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				scanFile(f, info)
			}
		}
	}
	c.byDir[dir] = info
	return info
}

// dirOf maps a module-local import path to its directory under root, or
// "" for std and external packages. External test packages ("foo_test")
// share their directory with "foo".
func dirOf(root, modpath, pkgpath string) string {
	pkgpath = strings.TrimSuffix(pkgpath, "_test")
	if pkgpath == modpath {
		return root
	}
	rel, ok := strings.CutPrefix(pkgpath, modpath+"/")
	if !ok {
		return ""
	}
	return filepath.Join(root, filepath.FromSlash(rel))
}

// Resolver answers poollife's two questions — is this type pooled, is this
// callee a consumer — against a module root, caching directory scans.
type Resolver struct {
	cache   *Cache
	root    string
	modpath string
}

// NewResolver returns a Resolver rooted at the module directory root with
// module path modpath, sharing cache (which must not be nil).
func NewResolver(cache *Cache, root, modpath string) *Resolver {
	return &Resolver{cache: cache, root: root, modpath: modpath}
}

func (r *Resolver) infoFor(pkg *types.Package) *Info {
	if pkg == nil {
		return nil
	}
	dir := dirOf(r.root, r.modpath, pkg.Path())
	if dir == "" {
		return nil
	}
	return r.cache.Dir(dir)
}

// IsPooled reports whether t (or its pointee) is a named type marked
// //tagalint:pooled in its declaring, module-local package.
func (r *Resolver) IsPooled(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	info := r.infoFor(obj.Pkg())
	return info != nil && info.Types[obj.Name()]
}

// ConsumerKind reports whether fn is marked as a pooled-object consumer
// and, if so, whether it releases or transfers.
func (r *Resolver) ConsumerKind(fn *types.Func) (Kind, bool) {
	if fn == nil {
		return 0, false
	}
	info := r.infoFor(fn.Pkg())
	if info == nil {
		return 0, false
	}
	key := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			key = named.Obj().Name() + "." + fn.Name()
		}
	}
	k, ok := info.Funcs[key]
	return k, ok
}
