package analysis

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output, the interchange shape CI systems ingest for code
// scanning. Only the fields tagalint populates are modelled; the names and
// nesting follow the OASIS sarif-schema-2.1.0 definitions so the output
// validates against the standard schema.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool               sarifTool                `json:"tool"`
	Results            []sarifResult            `json:"results"`
	OriginalURIBaseIDs map[string]sarifArtifact `json:"originalUriBaseIds,omitempty"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version,omitempty"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	ShortDescription sarifMessage  `json:"shortDescription"`
	FullDescription  *sarifMessage `json:"fullDescription,omitempty"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// srcRootID is the uriBaseId findings are reported relative to.
const srcRootID = "SRCROOT"

// SARIF renders findings as a SARIF 2.1.0 log. Every analyzer becomes a
// reporting rule of the single tagalint run (its Doc's first line as the
// short description, the remainder as the full one); finding paths are
// emitted relative to root under the SRCROOT uriBaseId so the log stays
// portable across checkouts. version stamps the driver.
func SARIF(findings []Finding, analyzers []*Analyzer, root, version string) ([]byte, error) {
	rules := make([]sarifRule, len(analyzers))
	index := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		short, full, _ := strings.Cut(a.Doc, "\n\n")
		rules[i] = sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: short},
		}
		if full = strings.TrimSpace(full); full != "" {
			rules[i].FullDescription = &sarifMessage{Text: full}
		}
		index[a.Name] = i
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		base := ""
		if root != "" {
			if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				uri, base = filepath.ToSlash(rel), srcRootID
			}
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: index[f.Analyzer],
			Level:     "warning",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifact{URI: uri, URIBaseID: base},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:    "tagalint",
				Version: version,
				Rules:   rules,
			}},
			Results: results,
			OriginalURIBaseIDs: map[string]sarifArtifact{
				srcRootID: {URI: "file://" + filepath.ToSlash(root) + "/"},
			},
		}},
	}
	return json.MarshalIndent(&log, "", "  ")
}
