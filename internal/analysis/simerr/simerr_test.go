package simerr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/simerr"
)

func TestSimerr(t *testing.T) {
	analysistest.Run(t, "testdata/src/simerrtest", simerr.Analyzer)
}
