// Package simerr defines the tagalint analyzer that forbids discarding
// error results from the simulator's communication and memory layers.
// Those errors encode segment-bounds violations, unknown segment ids and
// invalid queues; dropping one turns a deterministic failure into silent
// data corruption of a modelled buffer — the misuse class the TAMPI and
// MPI Continuations papers both identify as the dominant user bug.
package simerr

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/simcall"
)

// Analyzer flags ignored error results from gaspisim, mpisim, memory,
// fabric, tagaspi and tampi calls.
var Analyzer = &analysis.Analyzer{
	Name: "simerr",
	Doc: "report discarded error results from simulator APIs (gaspisim, " +
		"mpisim, memory, fabric, tagaspi, tampi), including x, _ := forms",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				checkDropped(pass, call)
			}
		case *ast.AssignStmt:
			checkAssign(pass, st)
		case *ast.GoStmt:
			checkDropped(pass, st.Call)
		case *ast.DeferStmt:
			checkDropped(pass, st.Call)
		}
		return true
	})
	return nil
}

// checkDropped handles a call whose results are discarded entirely.
func checkDropped(pass *analysis.Pass, call *ast.CallExpr) {
	fn := watched(pass, call)
	if fn == nil {
		return
	}
	if len(errIndexes(fn)) == 0 {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s is discarded; handle it or fail fast",
		funcLabel(fn))
}

// checkAssign handles `x, _ := f()`, `_ = f()` and `x, _ = f()` forms
// where the blank identifier lands on an error result.
func checkAssign(pass *analysis.Pass, st *ast.AssignStmt) {
	// Only the single-call tuple form `a, b := f()` and the one-to-one
	// form can place a blank on an error result.
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn := watched(pass, call)
		if fn == nil {
			return
		}
		for _, i := range errIndexes(fn) {
			if i < len(st.Lhs) && isBlank(st.Lhs[i]) {
				pass.Reportf(st.Lhs[i].Pos(),
					"error result of %s is assigned to the blank identifier; handle it or fail fast",
					funcLabel(fn))
			}
		}
		return
	}
	for i, rhs := range st.Rhs {
		if i >= len(st.Lhs) || !isBlank(st.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := watched(pass, call)
		if fn == nil {
			continue
		}
		if idx := errIndexes(fn); len(idx) == 1 && singleResult(fn) {
			pass.Reportf(st.Lhs[i].Pos(),
				"error result of %s is assigned to the blank identifier; handle it or fail fast",
				funcLabel(fn))
		}
	}
}

// watched resolves the callee and returns it only when it belongs to a
// package whose errors are load-bearing.
func watched(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	fn := simcall.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !simcall.IsSimErrPackage(fn.Pkg().Path()) {
		return nil
	}
	return fn
}

// errIndexes returns the result indexes of type error.
func errIndexes(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var idx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			idx = append(idx, i)
		}
	}
	return idx
}

func singleResult(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Results().Len() == 1
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func funcLabel(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fn.Pkg().Name() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}
