// Fixture for the simerr analyzer.
package simerrtest

import (
	"strconv"

	"repro/internal/gaspisim"
	"repro/internal/memory"
	"repro/internal/tagaspi"
	"repro/internal/tasking"
)

func droppedExprStmt(p *gaspisim.Proc) {
	p.SegmentCreate(0, 64) // want "error result of gaspisim.Proc.SegmentCreate is discarded"
}

func blankTuple(p *gaspisim.Proc) *memory.Segment {
	seg, _ := p.SegmentCreate(0, 64) // want "error result of gaspisim.Proc.SegmentCreate is assigned to the blank identifier"
	return seg
}

func blankTupleAssign(seg *memory.Segment) {
	var v memory.F64
	v, _ = memory.F64View(seg, 0, 8) // want "error result of memory.F64View is assigned to the blank identifier"
	v.Fill(0)
}

func blankSingle(p *gaspisim.Proc, op gaspisim.Operation) {
	_ = p.Submit(op) // want "error result of gaspisim.Proc.Submit is assigned to the blank identifier"
}

func taskAwareDropped(l *tagaspi.Library, t *tasking.Task) {
	l.Notify(t, 1, 0, 0, 1, 0) // want "error result of tagaspi.Library.Notify is discarded"
}

func handled(p *gaspisim.Proc) (*memory.Segment, error) {
	seg, err := p.SegmentCreate(0, 64) // ok
	if err != nil {
		return nil, err
	}
	return seg, nil
}

func handledLater(seg *memory.Segment) memory.F64 {
	v, err := memory.F64View(seg, 0, 8) // ok: error bound to a name
	_ = err
	return v
}

func nonSimPackagesAreFine() int {
	n, _ := strconv.Atoi("42") // ok: not a simulator API
	return n
}

func errorlessResultsAreFine(seg *memory.Segment) int {
	return seg.Size() // ok: no error in the signature
}

func suppressed(p *gaspisim.Proc) {
	//lint:ignore simerr fixture demonstrating the justified-suppression directive
	p.SegmentCreate(1, 64)
}
