// Fixture for the doccomment analyzer: package name gaspisim puts it under
// the spec-surface documentation contract.
package gaspisim

// Documented is fine.
type Documented struct{}

type Bare struct{} // want "exported type Bare has no doc comment"

type unexported struct{}

// Grouped declarations: a group doc covers every name.
const (
	GroupedA = 1
	GroupedB = 2
)

const BareConst = 3 // want "exported const BareConst has no doc comment"

var BareVar int // want "exported var BareVar has no doc comment"

// DocumentedVar is fine.
var DocumentedVar int

// DocumentedFunc is fine (models gaspi_nothing).
func DocumentedFunc() {}

func BareFunc() {} // want "exported function BareFunc has no doc comment"

func unexportedFunc() {}

// DocumentedMethod is fine.
func (Documented) DocumentedMethod() {}

func (d *Documented) BareMethod() {} // want "exported method Documented.BareMethod has no doc comment"

// Methods on unexported receivers are not package API.
func (unexported) ExportedOnUnexported() {}
