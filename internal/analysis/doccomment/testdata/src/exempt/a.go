// Fixture: a package outside the doccomment contract — no diagnostics
// expected despite bare exported declarations.
package exempt

type Bare struct{}

func BareFunc() {}

const BareConst = 1
