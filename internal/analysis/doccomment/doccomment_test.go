package doccomment_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/doccomment"
)

func TestDoccomment(t *testing.T) {
	analysistest.Run(t, "testdata/src/doccommenttest", doccomment.Analyzer)
}

// Packages outside the documentation contract are exempt even with bare
// exported declarations.
func TestDoccommentExemptPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/exempt", doccomment.Analyzer)
}
