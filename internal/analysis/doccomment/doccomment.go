// Package doccomment defines the tagalint analyzer that enforces the
// documentation contract of the communication packages: every exported
// identifier in internal/fabric, internal/gaspisim, internal/tagaspi,
// internal/mpisim and internal/collectives must carry a doc comment,
// because those packages are the simulator's rendering of real
// specifications (GASPI / GPI-2, MPI and the paper's §IV extensions) and
// each exported name is expected to state its spec counterpart (the
// gaspi_* routine or MPI_* call it models) where one exists.
//
// Other packages are exempt: the analyzer targets the spec surface, not
// general style.
package doccomment

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags exported package-level declarations without doc comments
// in the spec-modelling packages.
var Analyzer = &analysis.Analyzer{
	Name: "doccomment",
	Doc: "require doc comments on every exported identifier of the " +
		"spec-modelling packages (fabric, gaspisim, tagaspi, mpisim, collectives)",
	Run: run,
}

// covered lists the packages under the documentation contract, by package
// name (testdata fixtures reuse these names under other import paths).
var covered = map[string]bool{
	"fabric":      true,
	"gaspisim":    true,
	"tagaspi":     true,
	"mpisim":      true,
	"collectives": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !covered[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(pass, d)
			case *ast.GenDecl:
				checkGen(pass, d)
			}
		}
	}
	return nil
}

// checkFunc requires a doc comment on exported functions and on exported
// methods of exported receiver types (methods on unexported types are not
// part of the package API).
func checkFunc(pass *analysis.Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind := "function"
	if d.Recv != nil {
		recv := receiverTypeName(d.Recv)
		if recv == "" || !token.IsExported(recv) {
			return
		}
		kind = "method " + recv + "."
	} else {
		kind += " "
	}
	report(pass, d.Name.Pos(), kind+d.Name.Name)
}

// checkGen requires a doc comment on every exported name of a package-level
// const/var/type declaration; a doc comment on the grouped declaration or
// on the individual spec covers all names it declares (trailing same-line
// comments do not count — doc comments precede declarations).
func checkGen(pass *analysis.Pass, d *ast.GenDecl) {
	if d.Tok == token.IMPORT || d.Doc != nil {
		return
	}
	kind := map[token.Token]string{token.CONST: "const", token.VAR: "var", token.TYPE: "type"}[d.Tok]
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil {
				report(pass, s.Name.Pos(), kind+" "+s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(pass, name.Pos(), kind+" "+name.Name)
				}
			}
		}
	}
}

func report(pass *analysis.Pass, pos token.Pos, what string) {
	pass.Reportf(pos,
		"exported %s has no doc comment; document it, stating its gaspi_*/spec counterpart where one exists",
		what)
}

// receiverTypeName extracts the receiver's base type name ("" if anonymous
// or not an identifier-based type).
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := ast.Unparen(t).(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// isTestFile reports whether file sits in a _test.go source file.
func isTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go")
}
