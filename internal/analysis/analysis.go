// Package analysis is a self-contained static-analysis framework modelled
// on golang.org/x/tools/go/analysis, built only on the standard library's
// go/ast, go/parser and go/types packages so the repository carries no
// external dependencies. It exists to host tagalint, the lint suite that
// enforces the simulator's concurrency and completion invariants (the
// properties §II and §IV of the paper rely on but the compiler cannot see).
//
// The API mirrors x/tools deliberately — Analyzer, Pass, Diagnostic — so
// the analyzers can be ported to the upstream framework by changing only
// import paths if the module ever grows a golang.org/x/tools dependency.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis: its name, documentation, and logic.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then detail.
	Doc string

	// Run applies the analyzer to a package, reporting diagnostics
	// through pass.Report / pass.Reportf.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzer run over one package: the parsed and
// type-checked syntax plus a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic. Populated by the driver.
	Report func(Diagnostic)
}

// Reportf records a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding tied to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Inspect walks every file of the pass in depth-first order, calling f for
// each node; f returning false prunes the subtree (same contract as
// ast.Inspect).
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
