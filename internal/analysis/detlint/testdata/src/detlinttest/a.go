// Package detlinttest exercises detlint: wall-clock reads and global-rand
// calls are findings; vclock-driven time, duration arithmetic and seeded
// generators are not.
package detlinttest

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now() // want `time\.Now reads the host clock in a simulator package`
	time.Sleep(time.Millisecond)      // want `time\.Sleep reads the host clock`
	return time.Since(start)          // want `time\.Since reads the host clock`
}

func timers() {
	<-time.After(time.Second) // want `time\.After reads the host clock`
	t := time.NewTimer(time.Second) // want `time\.NewTimer reads the host clock`
	t.Stop()
}

func globalRand() int {
	rand.Seed(42) // want `rand\.Seed uses the global generator`
	return rand.Intn(10) // want `rand\.Intn uses the global generator`
}

func seededRandIsFine(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func durationArithmeticIsFine(d time.Duration) time.Duration {
	return d + 3*time.Millisecond
}
