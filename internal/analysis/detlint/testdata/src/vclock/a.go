// Package vclock stands in for the exempt clock package: its whole job is
// to implement the clock abstraction over the host clock, so detlint must
// stay silent here.
package vclock

import "time"

func hostNow() time.Time { return time.Now() }
