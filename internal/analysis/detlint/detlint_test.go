package detlint_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detlint"
)

func TestDetlint(t *testing.T) {
	analysistest.Run(t, "testdata/src/detlinttest", detlint.Analyzer)
}

// TestDetlintExemptPackages checks the allowlist: a package whose path
// ends in vclock may read the host clock without findings.
func TestDetlintExemptPackages(t *testing.T) {
	analysistest.Run(t, "testdata/src/vclock", detlint.Analyzer)
}
