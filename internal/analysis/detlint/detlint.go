// Package detlint defines the tagalint analyzer that keeps simulator code
// deterministic by construction. The repository's correctness gates —
// byte-identical traces (PR 2), parallel==sequential figure regeneration
// (PR 3), the seeded fault plane (PR 4) and result caching keyed on
// (figure, preset, seed) — all assume that modelled behaviour is a pure
// function of configuration and seeds. One stray wall-clock read or
// global-generator rand call in a simulator package breaks every one of
// them, usually long after the commit that introduced it.
//
// detlint therefore bans, in simulator packages:
//
//   - wall-clock and host-timer calls: time.Now, Sleep, Since, Until,
//     After, AfterFunc, Tick, NewTicker, NewTimer. Simulator code takes
//     time from a vclock.Clock; host-side timing belongs in the exempt
//     packages.
//   - the global math/rand (and math/rand/v2) generator: rand.Int,
//     rand.Intn, rand.Shuffle, rand.Seed, ... Randomness must flow from
//     an explicitly seeded rand.New(rand.NewSource(seed)) — see
//     fabric.SeedOf for deriving stable seeds from point identities.
//
// Exempt are the packages that exist to touch host time: internal/vclock
// (implements the clock abstraction over the host clock), internal/exp
// (measures host-side run time) and everything under cmd/ (front-ends
// report host times next to modelled times).
package detlint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer reports nondeterminism sources in simulator packages.
var Analyzer = &analysis.Analyzer{
	Name: "detlint",
	Doc: "report wall-clock and unseeded math/rand calls in simulator packages\n\n" +
		"Modelled results must be a pure function of configuration and seeds; " +
		"time comes from vclock.Clock and randomness from explicitly seeded " +
		"generators. internal/vclock, internal/exp and cmd/ are exempt.",
	Run: run,
}

// bannedTime is the wall-clock surface of package time. Pure value
// constructors and arithmetic (time.Duration, time.Second, ...) stay
// allowed; everything that reads or schedules against the host clock is
// not.
var bannedTime = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || exempt(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTime[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the host clock in a simulator package; take time from a vclock.Clock (or move host timing into internal/exp or cmd/)",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				// Constructors (New, NewSource, NewPCG, NewZipf, ...) build
				// explicitly seeded generators and are the fix, not the bug.
				if !strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(sel.Pos(),
						"%s.%s uses the global generator in a simulator package; use an explicitly seeded rand.New(rand.NewSource(seed)) (derive seeds with fabric.SeedOf)",
						fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// exempt reports whether the package at path is allowed to touch host time
// and global randomness: internal/vclock, internal/exp, and every package
// under a cmd/ directory. External test packages share their primary
// package's status.
func exempt(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	segs := strings.Split(path, "/")
	for _, s := range segs {
		if s == "cmd" {
			return true
		}
	}
	switch segs[len(segs)-1] {
	case "vclock", "exp":
		return true
	}
	return false
}
