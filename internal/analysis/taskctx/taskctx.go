// Package taskctx defines the tagalint analyzer that enforces task-context
// discipline on the task-aware communication libraries. Two rules:
//
//  1. A tagaspi/tampi operation must be issued on behalf of a real task —
//     passing a nil *tasking.Task dereferences nil inside Events() at
//     modelled runtime, long after the submission site has gone.
//  2. An onready callback (tasking.WithOnReady, §V-A of the paper) runs on
//     the runtime's dependency-release path before the task owns a core;
//     it may only register asynchronous events (NotifyIwait and friends).
//     Blocking there — a channel op, Task.WaitFor/Yield, or any simulator
//     wait — stalls dependency release for the whole rank.
package taskctx

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/simcall"
)

// Analyzer flags nil *tasking.Task arguments to task-aware operations and
// blocking calls inside onready callbacks.
var Analyzer = &analysis.Analyzer{
	Name: "taskctx",
	Doc: "report nil *tasking.Task arguments to tagaspi/tampi operations " +
		"and blocking waits issued from onready callbacks",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		checkNilTask(pass, call)
		if fl := onreadyCallback(pass, call); fl != nil {
			checkOnready(pass, fl)
		}
		return true
	})
	return nil
}

// checkNilTask flags a literal nil passed where a tagaspi/tampi operation
// expects the issuing task.
func checkNilTask(pass *analysis.Pass, call *ast.CallExpr) {
	fn := simcall.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch pkgBase(fn.Pkg().Path()) {
	case "tagaspi", "tampi":
	default:
		return
	}
	i := simcall.TaskParam(fn)
	if i < 0 || i >= len(call.Args) {
		return
	}
	if isNil(pass.TypesInfo, call.Args[i]) {
		pass.Reportf(call.Args[i].Pos(),
			"nil *tasking.Task passed to %s: task-aware operations must be issued from a task context",
			fn.Pkg().Name()+"."+fn.Name())
	}
}

// onreadyCallback returns the function literal registered through
// tasking.WithOnReady, if call is such a registration.
func onreadyCallback(pass *analysis.Pass, call *ast.CallExpr) *ast.FuncLit {
	fn := simcall.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if fn.Name() != "WithOnReady" || pkgBase(fn.Pkg().Path()) != "tasking" {
		return nil
	}
	if len(call.Args) != 1 {
		return nil
	}
	fl, _ := ast.Unparen(call.Args[0]).(*ast.FuncLit)
	return fl
}

// checkOnready scans an onready body for blocking operations. Nested
// function literals are skipped: they are values, not code the callback
// necessarily runs.
func checkOnready(pass *analysis.Pass, fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			report(pass, n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(pass, n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					return true // non-blocking: has a default case
				}
			}
			report(pass, n.Pos(), "select")
		case *ast.CallExpr:
			fn := simcall.Callee(pass.TypesInfo, n)
			if simcall.IsBlocking(fn) {
				report(pass, n.Pos(), simcall.BlockDescription(fn))
			}
		}
		return true
	})
}

func report(pass *analysis.Pass, pos token.Pos, what string) {
	pass.Reportf(pos,
		"%s in an onready callback: onready runs before the task has a core and may only register asynchronous events",
		what)
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
