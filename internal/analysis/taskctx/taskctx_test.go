package taskctx_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/taskctx"
)

func TestTaskctx(t *testing.T) {
	analysistest.Run(t, "testdata/src/taskctxtest", taskctx.Analyzer)
}
