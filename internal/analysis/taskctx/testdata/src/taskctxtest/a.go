// Fixture for the taskctx analyzer.
package taskctxtest

import (
	"repro/internal/mpisim"
	"repro/internal/tagaspi"
	"repro/internal/tampi"
	"repro/internal/tasking"
)

func nilTaskToTagaspi(l *tagaspi.Library) {
	_ = l.Notify(nil, 1, 0, 0, 1, 0) // want "nil .tasking.Task passed to tagaspi.Notify"
}

func nilTaskToTampi(l *tampi.Library, req *mpisim.Request) {
	l.Iwait(nil, req) // want "nil .tasking.Task passed to tampi.Iwait"
}

func realTaskIsFine(l *tagaspi.Library, t *tasking.Task) {
	_ = l.Notify(t, 1, 0, 0, 1, 0) // ok
}

func asyncOnreadyIsFine(rt *tasking.Runtime, tg *tagaspi.Library) {
	rt.Submit(func(t *tasking.Task) {}, tasking.WithOnReady(func(t *tasking.Task) {
		tg.NotifyIwait(t, 0, 0, nil) // ok: registers an event, never blocks
	}))
}

func blockingWaitInOnready(rt *tasking.Runtime, mpi *mpisim.Proc, req *mpisim.Request) {
	rt.Submit(func(t *tasking.Task) {}, tasking.WithOnReady(func(t *tasking.Task) {
		mpi.Wait(req) // want "mpisim.Proc.Wait in an onready callback"
	}))
}

func taskWaitInOnready(rt *tasking.Runtime) {
	rt.Submit(func(t *tasking.Task) {}, tasking.WithOnReady(func(t *tasking.Task) {
		t.WaitFor(10) // want "tasking.Task.WaitFor in an onready callback"
	}))
}

func channelOpsInOnready(rt *tasking.Runtime, ch chan int) {
	rt.Submit(func(t *tasking.Task) {}, tasking.WithOnReady(func(t *tasking.Task) {
		<-ch // want "channel receive in an onready callback"
	}))
	rt.Submit(func(t *tasking.Task) {}, tasking.WithOnReady(func(t *tasking.Task) {
		ch <- 1 // want "channel send in an onready callback"
	}))
}

func blockingInBodyIsFine(rt *tasking.Runtime, mpi *mpisim.Proc, req *mpisim.Request) {
	rt.Submit(func(t *tasking.Task) {
		mpi.Wait(req) // ok: the body owns a core and may block
	})
}

func nestedLiteralIsNotTheCallback(rt *tasking.Runtime, ch chan int) {
	rt.Submit(func(t *tasking.Task) {}, tasking.WithOnReady(func(t *tasking.Task) {
		t.Runtime().Clock().Go(func() {
			<-ch // ok: runs on its own goroutine, not in onready
		})
	}))
}
