package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis/cfg"
)

// build parses a function body and returns its graph plus the fileset.
func build(t *testing.T, body string) (*cfg.Graph, *token.FileSet) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return cfg.New(fn.Body), fset
}

// wantDump asserts the graph's dump matches want (leading/trailing space
// trimmed per line).
func wantDump(t *testing.T, g *cfg.Graph, fset *token.FileSet, want string) {
	t.Helper()
	got := strings.TrimSpace(g.Dump(fset))
	want = strings.TrimSpace(want)
	var gl []string
	for _, l := range strings.Split(got, "\n") {
		gl = append(gl, strings.TrimSpace(l))
	}
	var wl []string
	for _, l := range strings.Split(want, "\n") {
		wl = append(wl, strings.TrimSpace(l))
	}
	if strings.Join(gl, "\n") != strings.Join(wl, "\n") {
		t.Errorf("graph mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestStraightLine(t *testing.T) {
	g, fset := build(t, "x := 1; y := x; _ = y")
	wantDump(t, g, fset, `
b0 entry: [x := 1; y := x; _ = y]
`)
}

func TestIfElseJoin(t *testing.T) {
	g, fset := build(t, `
x := 0
if x > 0 {
	x = 1
} else {
	x = 2
}
_ = x
`)
	wantDump(t, g, fset, `
b0 entry: [x := 0; x > 0] -> b1 b2
b1 if.then: [x = 1] -> b3
b2 if.else: [x = 2] -> b3
b3 if.join: [_ = x]
`)
}

func TestIfWithoutElse(t *testing.T) {
	g, fset := build(t, `
x := 0
if x > 0 {
	x = 1
}
_ = x
`)
	wantDump(t, g, fset, `
b0 entry: [x := 0; x > 0] -> b1 b2
b1 if.then: [x = 1] -> b2
b2 if.join: [_ = x]
`)
}

func TestForLoop(t *testing.T) {
	g, fset := build(t, `
s := 0
for i := 0; i < 10; i++ {
	s += i
}
_ = s
`)
	wantDump(t, g, fset, `
b0 entry: [s := 0; i := 0] -> b1
b1 for.head: [i < 10] -> b3 b2
b2 for.done: [_ = s]
b3 for.body: [s += i] -> b4
b4 for.post: [i++] -> b1
`)
}

func TestForBreakContinue(t *testing.T) {
	g, fset := build(t, `
for {
	if done() {
		break
	}
	if skip() {
		continue
	}
	work()
}
after()
`)
	// The break edge must reach the done block and the continue edge the
	// head; the body's fallthrough also loops back to the head.
	var head, done *cfg.Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "for.head":
			head = b
		case "for.done":
			done = b
		}
	}
	if head == nil || done == nil {
		t.Fatalf("missing head/done block:\n%s", g.Dump(fset))
	}
	intoDone, intoHead := 0, 0
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == done {
				intoDone++
			}
			if s == head && b != g.Blocks[0] {
				intoHead++
			}
		}
	}
	if intoDone != 1 {
		t.Errorf("want exactly 1 break edge into for.done, got %d", intoDone)
	}
	if intoHead < 2 {
		t.Errorf("want continue and loop-end edges into for.head, got %d", intoHead)
	}
}

func TestRangeLoop(t *testing.T) {
	g, fset := build(t, `
s := 0
for _, v := range xs {
	s += v
}
_ = s
`)
	wantDump(t, g, fset, `
b0 entry: [s := 0] -> b1
b1 range.head: [range xs] -> b3 b2
b2 range.done: [_ = s]
b3 range.body: [s += v] -> b1
`)
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g, fset := build(t, `
switch x {
case 1:
	a()
	fallthrough
case 2:
	b()
default:
	c()
}
d()
`)
	wantDump(t, g, fset, `
b0 entry: [x] -> b2 b3 b4
b1 switch.done: [d()]
b2 switch.case: [1; a()] -> b3
b3 switch.case: [2; b()] -> b1
b4 switch.case: [c()] -> b1
`)
}

func TestSwitchNoDefaultHasDoneEdge(t *testing.T) {
	g, fset := build(t, `
switch x {
case 1:
	a()
}
d()
`)
	wantDump(t, g, fset, `
b0 entry: [x] -> b2 b1
b1 switch.done: [d()]
b2 switch.case: [1; a()] -> b1
`)
}

func TestTypeSwitch(t *testing.T) {
	g, fset := build(t, `
switch v := x.(type) {
case int:
	a(v)
case string:
	b(v)
}
d()
`)
	wantDump(t, g, fset, `
b0 entry: [v := x.(type)] -> b2 b3 b1
b1 switch.done: [d()]
b2 switch.case: [int; a(v)] -> b1
b3 switch.case: [string; b(v)] -> b1
`)
}

func TestSelect(t *testing.T) {
	g, fset := build(t, `
select {
case v := <-ch:
	use(v)
case out <- 1:
	sent()
default:
	idle()
}
after()
`)
	wantDump(t, g, fset, `
b0 entry: -> b2 b3 b4
b1 select.done: [after()]
b2 select.comm: [v := <-ch; use(v)] -> b1
b3 select.comm: [out <- 1; sent()] -> b1
b4 select.default: [idle()] -> b1
`)
}

func TestReturnTerminates(t *testing.T) {
	g, fset := build(t, `
if bad() {
	return
}
ok()
`)
	wantDump(t, g, fset, `
b0 entry: [bad()] -> b1 b2
b1 if.then: [return]
b2 if.join: [ok()]
`)
}

func TestPanicTerminates(t *testing.T) {
	g, fset := build(t, `
if bad() {
	panic("no")
}
ok()
`)
	wantDump(t, g, fset, `
b0 entry: [bad()] -> b1 b2
b1 if.then: [panic("no")]
b2 if.join: [ok()]
`)
}

func TestUnreachableAfterReturn(t *testing.T) {
	g, fset := build(t, `
return
dead()
`)
	wantDump(t, g, fset, `
b0 entry: [return]
b1 unreachable: [dead()]
`)
}

func TestDeferIsAnOrdinaryNode(t *testing.T) {
	g, fset := build(t, `
m := get()
defer put(m)
use(m)
`)
	wantDump(t, g, fset, `
b0 entry: [m := get(); defer put(m); use(m)]
`)
}

func TestLabeledBreakContinue(t *testing.T) {
	g, fset := build(t, `
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if a() {
			break outer
		}
		if b() {
			continue outer
		}
	}
}
after()
`)
	// break outer must target the outer loop's done block; continue outer
	// its post block. Find them by kind.
	var outerDone, outerPost *cfg.Block
	for _, b := range g.Blocks {
		if b.Kind == "for.done" && outerDone == nil {
			outerDone = b // first for.done created is the outer loop's
		}
		if b.Kind == "for.post" && outerPost == nil {
			outerPost = b
		}
	}
	if outerDone == nil || outerPost == nil {
		t.Fatalf("missing outer done/post:\n%s", g.Dump(fset))
	}
	foundBreak, foundCont := false, false
	for _, b := range g.Blocks {
		if b.Kind != "if.then" {
			continue
		}
		for _, s := range b.Succs {
			if s == outerDone {
				foundBreak = true
			}
			if s == outerPost {
				foundCont = true
			}
		}
	}
	if !foundBreak {
		t.Errorf("break outer edge missing:\n%s", g.Dump(fset))
	}
	if !foundCont {
		t.Errorf("continue outer edge missing:\n%s", g.Dump(fset))
	}
}

func TestGoto(t *testing.T) {
	g, fset := build(t, `
	x := 0
retry:
	x++
	if x < 3 {
		goto retry
	}
	done()
`)
	wantDump(t, g, fset, `
b0 entry: [x := 0] -> b1
b1 label.retry: [x++; x < 3] -> b2 b3
b2 if.then: -> b1
b3 if.join: [done()]
`)
}
