// Package cfg builds intraprocedural control-flow graphs from function
// bodies, mirroring golang.org/x/tools/go/cfg on the standard library the
// way the parent analysis package mirrors x/tools/go/analysis. The flow-
// sensitive tagalint analyzers (poollife) consume these graphs through the
// dataflow package.
//
// A Graph partitions one function body into basic blocks. Each block holds
// a sequence of control-free nodes — plain statements plus the decomposed
// pieces of control statements (an if's init and cond, a switch's tag, a
// range statement standing for its per-iteration binding) — and edges to
// its possible successors. Function literals are opaque: a FuncLit is just
// an expression inside some node, and callers analyze its body as a
// separate graph.
//
// Terminators follow x/tools conventions: a return ends its block with no
// successors, as does a call to the panic builtin (the deferred-call path
// to recovery is not modelled). Blocks after a terminator are created
// unreachable; dataflow clients observe reachability as "entry state never
// arrived". defer is not control flow here — a DeferStmt is an ordinary
// node whose call-time semantics are the client's concern.
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Graph is the control-flow graph of one function body. Blocks[0] is the
// entry block; block order is creation order, so it is deterministic for a
// given AST.
type Graph struct {
	Blocks []*Block
}

// Block is one basic block: control-free nodes executed in order, then a
// transfer to one of Succs (none for return/panic blocks and the
// function's fallthrough exit).
type Block struct {
	Index int        // position in Graph.Blocks
	Kind  string     // diagnostic label: "entry", "if.then", "for.head", ...
	Nodes []ast.Node // statements and decomposed control expressions
	Succs []*Block
}

// builder carries the construction state: the graph, the current block,
// and the break/continue/goto resolution context.
type builder struct {
	g        *Graph
	cur      *Block
	breaks   []*Block          // innermost-last break targets
	conts    []*Block          // innermost-last continue targets
	labels   map[string]*label // named break/continue/goto targets
	curLabel string            // label wrapping the statement being built
}

type label struct {
	brk, cont *Block // for labeled loops and switches
	target    *Block // goto destination (created on demand)
	used      bool
}

// New builds the graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: map[string]*label{}}
	b.cur = b.block("entry")
	b.stmtList(body.List)
	return b.g
}

func (b *builder) block(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump adds an edge cur -> dst unless cur already terminated.
func (b *builder) jump(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
}

// terminate ends the current block with no successor; following statements
// open an unreachable block.
func (b *builder) terminate() {
	b.cur = nil
}

// add appends a control-free node to the current block, opening an
// unreachable block if the previous statement terminated.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.block("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// startSucc opens a new block as successor of the current one and makes it
// current.
func (b *builder) startSucc(kind string) *Block {
	blk := b.block(kind)
	b.jump(blk)
	b.cur = blk
	return blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		then := b.block("if.then")
		b.jump(then)
		b.cur = then
		b.stmtList(s.Body.List)
		afterThen := b.cur
		var afterElse *Block
		if s.Else != nil {
			els := b.block("if.else")
			head.Succs = append(head.Succs, els)
			b.cur = els
			b.stmt(s.Else)
			afterElse = b.cur
		}
		join := b.block("if.join")
		if afterThen != nil {
			afterThen.Succs = append(afterThen.Succs, join)
		}
		if s.Else != nil {
			if afterElse != nil {
				afterElse.Succs = append(afterElse.Succs, join)
			}
		} else {
			head.Succs = append(head.Succs, join)
		}
		b.cur = join

	case *ast.ForStmt:
		lbl := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.startSucc("for.head")
		if s.Cond != nil {
			b.add(s.Cond)
		}
		done := b.block("for.done")
		body := b.block("for.body")
		head.Succs = append(head.Succs, body)
		if s.Cond != nil {
			head.Succs = append(head.Succs, done)
		}
		post := head
		if s.Post != nil {
			post = b.block("for.post")
		}
		b.pushLoop(done, post, lbl)
		b.cur = body
		b.stmtList(s.Body.List)
		if s.Post != nil {
			b.jump(post)
			b.cur = post
			b.add(s.Post)
			b.jump(head)
		} else {
			b.jump(head)
		}
		b.popLoop()
		b.cur = done

	case *ast.RangeStmt:
		// The RangeStmt node stands for one per-iteration evaluation:
		// clients treat it as "evaluate X, then define Key and Value".
		lbl := b.takeLabel()
		head := b.startSucc("range.head")
		b.add(s)
		done := b.block("range.done")
		body := b.block("range.body")
		head.Succs = append(head.Succs, body, done)
		b.pushLoop(done, head, lbl)
		b.cur = body
		b.stmtList(s.Body.List)
		b.jump(head)
		b.popLoop()
		b.cur = done

	case *ast.SwitchStmt:
		lbl := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body.List, lbl)

	case *ast.TypeSwitchStmt:
		lbl := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body.List, lbl)

	case *ast.SelectStmt:
		lbl := b.takeLabel()
		head := b.cur
		done := b.block("select.done")
		b.pushLoop(done, nil, lbl)
		if len(s.Body.List) == 0 {
			// select{} blocks forever.
			b.terminate()
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			kind := "select.comm"
			if cc.Comm == nil {
				kind = "select.default"
			}
			blk := b.block(kind)
			if head != nil {
				head.Succs = append(head.Succs, blk)
			}
			b.cur = blk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jump(done)
		}
		b.popLoop()
		b.cur = done

	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// The inner statement registers its targets under the label.
			b.curLabel = s.Label.Name
			b.stmt(s.Stmt)
		default:
			// Plain label: a goto target.
			l := b.labelFor(s.Label.Name)
			if l.target == nil {
				l.target = b.block("label." + s.Label.Name)
			}
			b.jump(l.target)
			b.cur = l.target
			b.stmt(s.Stmt)
		}

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				b.jump(b.labelFor(s.Label.Name).brk)
			} else if n := len(b.breaks); n > 0 {
				b.jump(b.breaks[n-1])
			}
			b.terminate()
		case token.CONTINUE:
			if s.Label != nil {
				b.jump(b.labelFor(s.Label.Name).cont)
			} else {
				// Skip select break-only frames (nil continue target).
				for i := len(b.conts) - 1; i >= 0; i-- {
					if b.conts[i] != nil {
						b.jump(b.conts[i])
						break
					}
				}
			}
			b.terminate()
		case token.GOTO:
			l := b.labelFor(s.Label.Name)
			if l.target == nil {
				l.target = b.block("label." + s.Label.Name)
			}
			b.jump(l.target)
			b.terminate()
		case token.FALLTHROUGH:
			// Handled by switchBody via block ordering; the statement
			// itself carries no node.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate()

	case *ast.ExprStmt:
		b.add(s)
		if isPanic(s.X) {
			b.terminate()
		}

	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt:
		b.add(s)

	case *ast.EmptyStmt:
		// nothing

	default:
		// Unknown statement kinds flow through as opaque nodes.
		b.add(s)
	}
}

// switchBody builds the clause blocks of a switch or type switch. Every
// clause is a successor of the current block (the comparisons' evaluation
// order is not modelled); fallthrough is an edge to the following clause's
// block.
func (b *builder) switchBody(clauses []ast.Stmt, lbl string) {
	head := b.cur
	done := b.block("switch.done")
	b.pushLoop(done, nil, lbl)
	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.block("switch.case")
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		if head != nil {
			head.Succs = append(head.Succs, blocks[i])
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		falls := false
		for _, s := range cc.Body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
				continue
			}
			b.stmt(s)
		}
		if falls && i+1 < len(blocks) {
			b.jump(blocks[i+1])
			b.terminate()
		}
		b.jump(done)
	}
	if head != nil && !hasDefault {
		head.Succs = append(head.Succs, done)
	}
	b.popLoop()
	b.cur = done
}

func (b *builder) pushLoop(brk, cont *Block, lbl string) {
	b.breaks = append(b.breaks, brk)
	b.conts = append(b.conts, cont)
	if lbl != "" {
		l := b.labelFor(lbl)
		l.brk, l.cont = brk, cont
	}
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
}

func (b *builder) labelFor(name string) *label {
	l := b.labels[name]
	if l == nil {
		l = &label{}
		b.labels[name] = l
	}
	return l
}

// takeLabel consumes the label registered by an enclosing LabeledStmt, if
// any. The AST does not point from a statement to its label, so the
// LabeledStmt case stashes the name for the control statement it wraps.
func (b *builder) takeLabel() string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

// isPanic reports whether e is a call to the panic builtin.
func isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// Dump renders the graph in a compact textual form for tests and
// debugging:
//
//	b0 entry: [x := 0] -> b1
func (g *Graph) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", blk.Index, blk.Kind)
		if len(blk.Nodes) > 0 {
			sb.WriteString(" [")
			for i, n := range blk.Nodes {
				if i > 0 {
					sb.WriteString("; ")
				}
				sb.WriteString(nodeText(fset, n))
			}
			sb.WriteString("]")
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func nodeText(fset *token.FileSet, n ast.Node) string {
	if rs, ok := n.(*ast.RangeStmt); ok {
		return "range " + nodeText(fset, rs.X)
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
