// Fixture for the condloop analyzer.
package condlooptest

import (
	"sync"
	"time"

	"repro/internal/vsync"
)

type box struct {
	mu    sync.Mutex
	cond  *sync.Cond
	vcond *vsync.Cond
	ready bool
}

func (b *box) waitInLoop() {
	b.mu.Lock()
	for !b.ready {
		b.cond.Wait() // ok: predicate re-checked by the loop
	}
	b.mu.Unlock()
}

func (b *box) waitBare() {
	b.mu.Lock()
	b.cond.Wait() // want "Wait outside a for loop"
	b.mu.Unlock()
}

func (b *box) waitIfGuarded() {
	b.mu.Lock()
	if !b.ready {
		b.vcond.Wait() // want "Wait outside a for loop"
	}
	b.mu.Unlock()
}

func (b *box) vsyncWaitInLoop() {
	for !b.ready {
		b.vcond.Wait() // ok
	}
}

func (b *box) timeoutBare() bool {
	return b.vcond.WaitTimeout(time.Millisecond) // want "WaitTimeout outside a for loop"
}

func (b *box) timeoutInLoop(d time.Duration) {
	for !b.ready {
		if !b.vcond.WaitTimeout(d) { // ok
			return
		}
	}
}

func (b *box) loopInOuterFuncDoesNotCount() {
	for i := 0; i < 3; i++ {
		func() {
			b.cond.Wait() // want "Wait outside a for loop"
		}()
	}
}

func (b *box) unrelatedWaitIsFine(wg *sync.WaitGroup) {
	wg.Wait() // ok: not a condition variable
}
