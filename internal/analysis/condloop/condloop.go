// Package condloop defines the tagalint analyzer that requires every
// condition-variable wait to sit inside a predicate-rechecking loop.
// vsync.Cond mirrors sync.Cond: Wait can wake spuriously relative to the
// predicate (a Signal raced by another consumer, a WaitTimeout that
// consumed a Signal on its way out), so the only correct shape is
//
//	for !predicate() {
//	    c.Wait()
//	}
//
// An if-guarded Wait runs the protected code with the predicate false,
// which in this codebase means operating on a completion counter or a
// queue in a state it is not in — exactly the completion-API misuse the
// task-aware libraries exist to prevent.
package condloop

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/simcall"
)

// Analyzer flags Cond.Wait / Cond.WaitTimeout calls with no enclosing for
// loop in the same function.
var Analyzer = &analysis.Analyzer{
	Name: "condloop",
	Doc: "report sync.Cond / vsync.Cond Wait calls not wrapped in a " +
		"predicate-rechecking for loop",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok || !isCondWait(pass, call) {
				return true
			}
			if !inLoop(stack[:len(stack)-1]) {
				sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				pass.Reportf(call.Pos(),
					"%s outside a for loop: condition waits can wake with the predicate false and must re-check it in a loop",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// isCondWait reports whether call invokes (*sync.Cond).Wait or
// (*vsync.Cond).Wait/WaitTimeout.
func isCondWait(pass *analysis.Pass, call *ast.CallExpr) bool {
	if _, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); !ok {
		return false
	}
	return simcall.IsCondWait(simcall.Callee(pass.TypesInfo, call))
}

// inLoop reports whether the enclosing-node stack contains a for or range
// statement below the nearest function boundary.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}
