package condloop_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/condloop"
)

func TestCondloop(t *testing.T) {
	analysistest.Run(t, "testdata/src/condlooptest", condloop.Analyzer)
}
