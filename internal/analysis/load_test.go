package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestExpandPatternsErrorsOnNoMatch is the regression test for the
// silent-skip bug: a pattern that resolves to no packages (misspelled
// directory, directory without Go files) used to yield an empty result and
// a zero exit from cmd/tagalint, indistinguishable from a clean run. It
// must be an error.
func TestExpandPatternsErrorsOnNoMatch(t *testing.T) {
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "a.go"), []byte("package a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(tmp, "empty"), 0o755); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		pattern string
	}{
		{"missing directory", "./nonexistent"},
		{"missing directory recursive", "./nonexistent/..."},
		{"directory without Go files", "./empty"},
		{"recursive without Go files", "./empty/..."},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ExpandPatterns(tmp, []string{tc.pattern}); err == nil {
				t.Fatalf("ExpandPatterns(%q) = nil error, want no-match error", tc.pattern)
			}
		})
	}

	dirs, err := ExpandPatterns(tmp, []string{"."})
	if err != nil {
		t.Fatalf("ExpandPatterns(.) error: %v", err)
	}
	if len(dirs) != 1 || dirs[0] != tmp {
		t.Fatalf("ExpandPatterns(.) = %v, want [%s]", dirs, tmp)
	}
}
