// Package lockcross defines the tagalint analyzer that forbids blocking
// while holding a lock. The paper's central argument against hybrid
// two-sided MPI (§II) is that worker threads serialise on the MPI library
// lock whenever a thread blocks inside the library while holding it; the
// simulator reproduces that contention deliberately in mpisim, and must
// never recreate it accidentally anywhere else. A goroutine that parks on
// the virtual clock — a channel operation, a Cond.Wait, a Task.WaitFor or
// Yield, or any gaspisim/mpisim wait call — while holding a sync.Mutex or
// vsync.Mutex stalls every other worker that touches the lock for the
// whole modelled wait, and under the virtual clock it can deadlock the
// discrete-event engine outright.
package lockcross

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/simcall"
)

// Analyzer flags blocking operations performed while a mutex is held.
var Analyzer = &analysis.Analyzer{
	Name: "lockcross",
	Doc: "report blocking operations (channel ops, cond waits, task yields, " +
		"simulator waits) performed while holding a sync or vsync lock",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Every function body — declaration or literal, however deeply nested —
	// gets its own scan with an empty held set: a literal runs later, on
	// whatever goroutine calls it, so locks of the enclosing scope are not
	// assumed held (under-reporting, never over-reporting). The scans
	// themselves never descend into nested literals, so descending here
	// visits each body exactly once.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					newScan(pass).block(fn.Body)
				}
			case *ast.FuncLit:
				newScan(pass).block(fn.Body)
			}
			return true
		})
	}
	return nil
}

// heldLock records one acquisition that has not been released yet.
type heldLock struct {
	pos      ast.Node // the Lock call, for the report
	deferred bool     // released only by a deferred Unlock
}

// scan walks one function body in source order, tracking which lock
// expressions are held. Branches mutate the same held set — a deliberate
// approximation that keeps the walk linear; release-on-early-return
// patterns therefore clear the lock for the fall-through path too, which
// under-reports rather than over-reports.
type scan struct {
	pass *analysis.Pass
	held map[string]heldLock
	// order preserves acquisition order for stable messages.
	order []string
}

func newScan(pass *analysis.Pass) *scan {
	return &scan{pass: pass, held: map[string]heldLock{}}
}

func (s *scan) block(b *ast.BlockStmt) {
	for _, st := range b.List {
		s.stmt(st)
	}
}

func (s *scan) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && s.lockOp(call, false) {
			return
		}
		s.expr(st.X)
	case *ast.DeferStmt:
		if s.lockOp(st.Call, true) {
			return
		}
		// The deferred call's arguments are evaluated now; a nested
		// function literal runs later with no locks of ours held.
		for _, a := range st.Call.Args {
			s.expr(a)
		}
	case *ast.GoStmt:
		for _, a := range st.Call.Args {
			s.expr(a)
		}
	case *ast.SendStmt:
		s.expr(st.Value)
		s.blockingOp(st, "channel send")
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e)
		}
		for _, e := range st.Lhs {
			s.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.expr(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.expr(st.Cond)
		s.block(st.Body)
		if st.Else != nil {
			s.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Cond != nil {
			s.expr(st.Cond)
		}
		s.block(st.Body)
		if st.Post != nil {
			s.stmt(st.Post)
		}
	case *ast.RangeStmt:
		s.expr(st.X)
		if t := s.pass.TypesInfo.TypeOf(st.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				s.blockingOp(st, "range over channel")
			}
		}
		s.block(st.Body)
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			s.blockingOp(st, "select")
		}
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				for _, b := range cc.Body {
					s.stmt(b)
				}
			}
		}
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Tag != nil {
			s.expr(st.Tag)
		}
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, b := range cc.Body {
					s.stmt(b)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, b := range cc.Body {
					s.stmt(b)
				}
			}
		}
	case *ast.BlockStmt:
		s.block(st)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt)
	}
}

// expr scans an expression for blocking operations: channel receives and
// calls into known parking APIs. Function literals are separate scopes.
func (s *scan) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.blockingOp(n, "channel receive")
			}
		case *ast.CallExpr:
			fn := simcall.Callee(s.pass.TypesInfo, n)
			// Cond waits release their own lock while parked — holding
			// it at the call is the protocol, not a violation (condloop
			// checks their loop shape).
			if simcall.IsBlocking(fn) && !simcall.IsCondWait(fn) {
				s.blockingOp(n, simcall.BlockDescription(fn))
			}
		}
		return true
	})
}

// lockOp handles mu.Lock / mu.Unlock (and RLock/RUnlock) calls on tracked
// lock types, updating the held set. It reports blocking acquisitions
// performed while another lock is already held, and returns true when the
// call was a lock operation (so the caller skips the generic expr scan).
func (s *scan) lockOp(call *ast.CallExpr, deferred bool) bool {
	fn := simcall.Callee(s.pass.TypesInfo, call)
	if fn == nil || !isLockType(fn) {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		if deferred {
			return false // defer mu.Lock() is nonsense; leave to vet
		}
		// Acquiring a vsync.Mutex parks on contention; doing so while
		// already holding a lock is itself a lock-crossing block.
		if simcall.IsBlocking(fn) {
			s.blockingOp(call, simcall.BlockDescription(fn))
		}
		if _, dup := s.held[key]; !dup {
			s.order = append(s.order, key)
		}
		s.held[key] = heldLock{pos: call}
		return true
	case "Unlock", "RUnlock":
		if deferred {
			if h, ok := s.held[key]; ok {
				h.deferred = true
				s.held[key] = h
			}
			return true
		}
		delete(s.held, key)
		return true
	}
	return false
}

func isLockType(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg, name := named.Obj().Pkg(), named.Obj().Name()
	if pkg == nil {
		return false
	}
	switch pkg.Name() {
	case "sync":
		return name == "Mutex" || name == "RWMutex" || name == "Locker"
	case "vsync":
		return name == "Mutex"
	}
	return false
}

// blockingOp reports op if any lock is currently held.
func (s *scan) blockingOp(at ast.Node, what string) {
	for _, key := range s.order {
		h, ok := s.held[key]
		if !ok {
			continue
		}
		how := ""
		if h.deferred {
			how = " (released only by defer)"
		}
		s.pass.Reportf(at.Pos(), "%s while holding %s%s", what, key, how)
	}
}
