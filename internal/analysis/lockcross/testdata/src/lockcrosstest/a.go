// Fixture for the lockcross analyzer. Imports the real simulator packages
// so the analyzer is exercised against the true types.
package lockcrosstest

import (
	"sync"

	"repro/internal/mpisim"
	"repro/internal/vsync"
)

type server struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	vm  *vsync.Mutex
	ch  chan int
	val int
}

func (s *server) sendWhileLocked() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while holding s.mu"
	s.mu.Unlock()
}

func (s *server) recvUnderDefer() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive while holding s.mu .released only by defer."
}

func (s *server) cleanHandoff() {
	s.mu.Lock()
	v := s.val
	s.mu.Unlock()
	s.ch <- v // ok: lock released first
}

func (s *server) mpiWaitWhileLocked(p *mpisim.Proc, req *mpisim.Request) {
	s.mu.Lock()
	p.Wait(req) // want "mpisim.Proc.Wait while holding s.mu"
	s.mu.Unlock()
}

func (s *server) nestedVsyncLock() {
	s.mu.Lock()
	s.vm.Lock() // want "vsync.Mutex.Lock while holding s.mu"
	s.vm.Unlock()
	s.mu.Unlock()
}

func (s *server) selectWhileLocked() {
	s.mu.Lock()
	select { // want "select while holding s.mu"
	case v := <-s.ch:
		s.val = v
	case s.ch <- s.val:
	}
	s.mu.Unlock()
}

func (s *server) selectWithDefaultIsFine() {
	s.mu.Lock()
	select {
	case v := <-s.ch:
		s.val = v
	default:
	}
	s.mu.Unlock()
}

func (s *server) rlockAcrossBarrier(p *mpisim.Proc) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	p.Barrier() // want "mpisim.Proc.Barrier while holding s.rw .released only by defer."
}

func (s *server) funcLitIsSeparate() {
	s.mu.Lock()
	f := func() {
		s.ch <- 1 // ok: the literal runs later, without the lock
	}
	s.mu.Unlock()
	f()
}

func (s *server) rangeOverChannel() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want "range over channel while holding s.mu .released only by defer."
		s.val += v
	}
}

func (s *server) unlockedAfterBranch(p *mpisim.Proc) {
	s.mu.Lock()
	if s.val > 0 {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	p.Barrier() // ok: every path released the lock
}

func (s *server) blockInsideClosure(p *mpisim.Proc) func() {
	// Nested literals get their own scan: a lock taken inside the closure
	// is crossed inside the closure.
	return func() {
		s.mu.Lock()
		p.Barrier() // want "mpisim.Proc.Barrier while holding s.mu"
		s.mu.Unlock()
	}
}

func (s *server) blockInsideDoublyNestedClosure() func() {
	return func() {
		f := func() {
			s.mu.Lock()
			s.ch <- 1 // want "channel send while holding s.mu"
			s.mu.Unlock()
		}
		f()
	}
}

func (s *server) condWaitIsTheProtocol(c *sync.Cond) {
	c.L.Lock()
	for s.val == 0 {
		c.Wait() // ok: Wait releases c.L while parked; condloop owns the loop shape
	}
	c.L.Unlock()
}
