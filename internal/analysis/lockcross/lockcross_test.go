package lockcross_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockcross"
)

func TestLockcross(t *testing.T) {
	analysistest.Run(t, "testdata/src/lockcrosstest", lockcross.Analyzer)
}
