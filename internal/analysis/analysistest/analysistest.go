// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against // want "regexp" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the local framework.
//
// Testdata lives under <pkg>/testdata/src/<name>/ and may import the real
// repro/internal/... packages: the loader type-checks from source with the
// working directory inside the module, so fixtures exercise the analyzers
// against the actual simulator types rather than stubs.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRx matches one or more quoted regexps after a want marker. Patterns
// may be double-quoted (backslash-escapes apply) or backquoted (raw, the
// x/tools idiom — convenient when the pattern itself contains quotes):
//
//	code() // want "first" `second "quoted"`
var wantRx = regexp.MustCompile("//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")

var quoteRx = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// Run loads the package in dir (relative paths resolve against the test's
// working directory, e.g. "testdata/src/lockcross"), applies the analyzer,
// and reports unmatched expectations and unexpected diagnostics on t.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadDir(abs, "")
	if err != nil {
		t.Fatalf("analysistest: load %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("analysistest: type error in fixture: %v", terr)
		}
	}
	findings, err := analysis.Run(loader.Fset, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: run: %v", err)
	}

	wants := collectWants(t, loader.Fset, pkgs)
	for _, f := range findings {
		key := posKey(f.Pos.Filename, f.Pos.Line)
		exps := wants[key]
		matched := false
		for _, e := range exps {
			if !e.matched && e.rx.MatchString(f.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.rx)
			}
		}
	}
}

// collectWants scans fixture comments for want markers.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*analysis.Package) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRx.FindStringSubmatch(c.Text)
					if m == nil {
						if strings.Contains(c.Text, "want ") && strings.Contains(c.Text, `"`) {
							t.Errorf("%s: malformed want comment: %s", fset.Position(c.Pos()), c.Text)
						}
						continue
					}
					pos := fset.Position(c.Pos())
					for _, q := range quoteRx.FindAllStringSubmatch(m[1], -1) {
						pat := q[2] // backquoted: raw
						if q[2] == "" && strings.HasPrefix(q[0], `"`) {
							var err error
							pat, err = unquote(q[1])
							if err != nil {
								t.Fatalf("%s: bad want pattern %q: %v", pos, q[1], err)
							}
						}
						rx, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						key := posKey(pos.Filename, pos.Line)
						wants[key] = append(wants[key], &expectation{rx: rx})
					}
				}
			}
		}
	}
	return wants
}

func unquote(s string) (string, error) {
	// The capture group already stripped the quotes; undo escapes.
	r := strings.NewReplacer(`\"`, `"`, `\\`, `\\`)
	return r.Replace(s), nil
}

func posKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}
