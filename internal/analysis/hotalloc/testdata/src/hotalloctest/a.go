// Package hotalloctest exercises hotalloc: allocation sites inside
// //tagalint:hotpath functions are findings; value literals, preallocated
// appends, panic arguments and unmarked functions are not.
package hotalloctest

import "fmt"

type msg struct {
	src, dst int
	payload  []byte
}

type batch struct {
	buf []*msg
}

//tagalint:hotpath
func pointerLiteral() *msg {
	return &msg{src: 1} // want `&msg\{\.\.\.\} in hot path: pointer composite literals allocate`
}

//tagalint:hotpath
func valueLiteralIsFine(m *msg) {
	*m = msg{} // zeroing through a pointer does not allocate
}

//tagalint:hotpath
func sliceAndMapLiterals() {
	_ = []int{1, 2, 3}          // want `\[\]int literal in hot path`
	_ = map[string]int{"a": 1}  // want `map\[string\]int literal in hot path`
}

//tagalint:hotpath
func builtinAllocs() {
	_ = new(msg)          // want `new\(\.\.\.\) in hot path allocates`
	_ = make([]byte, 128) // want `make\(\.\.\.\) in hot path allocates`
}

//tagalint:hotpath
func closure(n int) func() int {
	return func() int { return n } // want `closure literal in hot path`
}

//tagalint:hotpath
func formatting(m *msg) {
	fmt.Printf("msg %d -> %d\n", m.src, m.dst) // want `fmt\.Printf in hot path allocates`
}

//tagalint:hotpath
func panicMayFormat(m *msg) {
	if m.src < 0 {
		panic(fmt.Sprintf("negative src %d", m.src)) // crashing path: exempt
	}
}

//tagalint:hotpath
func badAppend(b *batch, m *msg) {
	b.buf = append(b.buf, m) // want `append to b\.buf in hot path may grow the backing array`
}

//tagalint:hotpath
func resliceAppendIsFine(b *batch, m *msg) {
	keep := b.buf[:0]
	keep = append(keep, m)
	b.buf = append(b.buf[:0], m)
	_ = keep
}

//tagalint:hotpath
func paramAppendIsFine(dst []*msg, m *msg) []*msg {
	return append(dst, m)
}

//tagalint:hotpath
func makeAppendIsFine(n int) []int {
	out := make([]int, 0, n) // want `make\(\.\.\.\) in hot path allocates`
	for i := 0; i < n; i++ {
		out = append(out, i) // destination was made locally: capacity is owned
	}
	return out
}

func unmarkedIsIgnored() *msg {
	fmt.Println("cold path")
	return &msg{src: 2}
}
