// Package hotalloc defines the tagalint analyzer that statically guards
// the courier's zero-allocation budget (PR 5). ci.sh checks the budget
// dynamically (TestCourierAllocBudget counts allocs/message at run time),
// but a dynamic gate only fires on the paths the benchmark happens to
// drive; hotalloc flags allocation sites in any function annotated
//
//	//tagalint:hotpath
//
// so a regression is caught at lint time, on every path, before a
// benchmark run. The two gates are complementary and ci.sh keeps both.
//
// Flagged inside hotpath functions:
//
//   - pointer composite literals (&T{...}) and map/slice/chan composite
//     literals — always heap-allocating once they escape;
//   - new(T) and make(...) — prealloc belongs outside the hot path;
//   - function literals — a capturing closure allocates at creation;
//   - calls into package fmt — formatting boxes arguments and builds
//     strings;
//   - append whose destination is not visibly preallocated: growth is
//     exempt when the destination is a reslice (x[:0] batch-reuse), a
//     parameter (the caller owns capacity), or a local built by make.
//
// Arguments of panic calls are exempt: a function that is about to crash
// the simulation may format its last words. Justified allocations on cold
// sub-paths keep a reasoned //lint:ignore hotalloc directive.
package hotalloc

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer reports allocation sites inside //tagalint:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "report allocation sites in functions marked //tagalint:hotpath\n\n" +
		"Composite literals, new/make, closures, fmt calls and unpreallocated " +
		"appends allocate; on the courier hot path every one of them breaks " +
		"the committed zero-alloc budget ci.sh checks dynamically.",
	Run: run,
}

// marker is the hot-path annotation scanned from function doc comments.
const marker = "//tagalint:hotpath"

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasMarker(fd.Doc) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func hasMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == marker {
			return true
		}
	}
	return false
}

// checkFunc walks one hot function, reporting allocation sites.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	prealloc := preallocated(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"closure literal in hot path: creating a capturing closure allocates")
			return false // the closure body runs elsewhere; one finding per literal
		case *ast.UnaryExpr:
			if cl, ok := n.X.(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(),
					"&%s{...} in hot path: pointer composite literals allocate; draw from a pool instead",
					typeLabel(pass, cl))
				// Still walk the elements for nested allocations, but skip
				// re-reporting this literal.
				for _, elt := range cl.Elts {
					walkSub(pass, elt, prealloc)
				}
				return false
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.Types[n].Type.Underlying().(type) {
			case *types.Map, *types.Slice, *types.Chan:
				pass.Reportf(n.Pos(),
					"%s literal in hot path: map/slice/channel literals allocate",
					typeLabel(pass, n))
			}
		case *ast.CallExpr:
			return checkCall(pass, n, prealloc)
		}
		return true
	})
}

// walkSub re-enters the inspection for a subtree (used after a parent
// handled itself).
func walkSub(pass *analysis.Pass, e ast.Expr, prealloc map[*types.Var]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			return checkCall(pass, call, prealloc)
		}
		return true
	})
}

// checkCall classifies one call in a hot function. It returns false when
// the children were already handled (or must be skipped).
func checkCall(pass *analysis.Pass, call *ast.CallExpr, prealloc map[*types.Var]bool) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch builtinName(pass, fun) {
		case "panic":
			// A crashing path may format its last words; nothing below a
			// panic argument is hot.
			return false
		case "new":
			pass.Reportf(call.Pos(), "new(...) in hot path allocates; draw from a pool instead")
			return true
		case "make":
			pass.Reportf(call.Pos(), "make(...) in hot path allocates; preallocate outside the hot path")
			return true
		case "append":
			if len(call.Args) > 0 && !appendPreallocated(pass, call.Args[0], prealloc) {
				pass.Reportf(call.Pos(),
					"append to %s in hot path may grow the backing array; preallocate capacity (make with cap, caller-owned buffer, or a [:0] reslice)",
					exprLabel(call.Args[0]))
			}
			return true
		}
	case *ast.SelectorExpr:
		if obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok &&
			obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(),
				"fmt.%s in hot path allocates (argument boxing and formatting); build diagnostics off the hot path",
				obj.Name())
		}
	}
	return true
}

// builtinName returns id's name when it resolves to a builtin, else "".
func builtinName(pass *analysis.Pass, id *ast.Ident) string {
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// appendPreallocated reports whether dst visibly owns its capacity: a
// reslice expression (the x[:0] batch-reuse idiom), a parameter (the
// caller provides the buffer and keeps the grown result), or a local the
// function built with make.
func appendPreallocated(pass *analysis.Pass, dst ast.Expr, prealloc map[*types.Var]bool) bool {
	switch d := ast.Unparen(dst).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[d].(*types.Var)
		if !ok {
			return false
		}
		return prealloc[v]
	}
	return false
}

// preallocated collects the variables of fd that visibly own capacity:
// parameters, and locals assigned from make(...) or a reslice anywhere in
// the body (flow-insensitively — hotalloc is a per-site budget check, not
// a may-analysis).
func preallocated(pass *analysis.Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	set := map[*types.Var]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					set[v] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if !isCapacityOwning(pass, as.Rhs[i]) {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if v, ok := obj.(*types.Var); ok {
				set[v] = true
			}
		}
		return true
	})
	return set
}

// isCapacityOwning reports whether e is a make call or a reslice — the
// initializers that hand a variable its own (or reused) backing array.
func isCapacityOwning(pass *analysis.Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return builtinName(pass, id) == "make"
		}
	}
	return false
}

// typeLabel renders a composite literal's type compactly for diagnostics:
// foreign types qualified by package name, own-package types bare.
func typeLabel(pass *analysis.Pass, cl *ast.CompositeLit) string {
	if t := pass.TypesInfo.Types[cl].Type; t != nil {
		return types.TypeString(t, func(p *types.Package) string {
			if p == pass.Pkg {
				return ""
			}
			return p.Name()
		})
	}
	return "composite"
}

// exprLabel renders the append destination for the diagnostic.
func exprLabel(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			return id.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	}
	return "slice"
}
