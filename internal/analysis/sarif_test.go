package analysis

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// TestSARIFShape validates the emitted log against the SARIF 2.1.0 shape:
// the required top-level fields, the tool driver with one reporting rule
// per analyzer, and results whose ruleId/ruleIndex/locations agree with
// the findings, with paths relative to SRCROOT.
func TestSARIFShape(t *testing.T) {
	analyzers := []*Analyzer{
		{Name: "alpha", Doc: "short alpha\n\nlong alpha description"},
		{Name: "beta", Doc: "short beta"},
	}
	findings := []Finding{
		{
			Analyzer: "beta",
			Pos:      token.Position{Filename: "/repo/internal/x/file.go", Line: 42, Column: 7},
			Message:  "something is off",
		},
		{
			Analyzer: "alpha",
			Pos:      token.Position{Filename: "/elsewhere/y.go", Line: 3, Column: 1},
			Message:  "outside the root",
		},
	}
	data, err := SARIF(findings, analyzers, "/repo", "v1.2.3")
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}

	var log map[string]any
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}
	if got := log["version"]; got != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", got)
	}
	schema, _ := log["$schema"].(string)
	if !strings.Contains(schema, "sarif-2.1.0") {
		t.Errorf("$schema = %q, want a sarif-2.1.0 schema reference", schema)
	}

	runs, ok := log["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want exactly one run", log["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if got := driver["name"]; got != "tagalint" {
		t.Errorf("driver.name = %v, want tagalint", got)
	}
	if got := driver["version"]; got != "v1.2.3" {
		t.Errorf("driver.version = %v, want v1.2.3", got)
	}
	rules := driver["rules"].([]any)
	if len(rules) != len(analyzers) {
		t.Fatalf("rules = %d entries, want %d", len(rules), len(analyzers))
	}
	rule0 := rules[0].(map[string]any)
	if got := rule0["id"]; got != "alpha" {
		t.Errorf("rules[0].id = %v, want alpha", got)
	}
	if got := rule0["shortDescription"].(map[string]any)["text"]; got != "short alpha" {
		t.Errorf("rules[0].shortDescription.text = %v, want the Doc's first line", got)
	}

	results := run["results"].([]any)
	if len(results) != len(findings) {
		t.Fatalf("results = %d entries, want %d", len(results), len(findings))
	}
	r0 := results[0].(map[string]any)
	if got := r0["ruleId"]; got != "beta" {
		t.Errorf("results[0].ruleId = %v, want beta", got)
	}
	if got := r0["ruleIndex"]; got != float64(1) {
		t.Errorf("results[0].ruleIndex = %v, want 1 (position of beta in rules)", got)
	}
	if got := r0["level"]; got != "warning" {
		t.Errorf("results[0].level = %v, want warning", got)
	}
	if got := r0["message"].(map[string]any)["text"]; got != "something is off" {
		t.Errorf("results[0].message.text = %v", got)
	}
	loc := r0["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	art := loc["artifactLocation"].(map[string]any)
	if got := art["uri"]; got != "internal/x/file.go" {
		t.Errorf("artifactLocation.uri = %v, want root-relative path", got)
	}
	if got := art["uriBaseId"]; got != "SRCROOT" {
		t.Errorf("artifactLocation.uriBaseId = %v, want SRCROOT", got)
	}
	region := loc["region"].(map[string]any)
	if region["startLine"] != float64(42) || region["startColumn"] != float64(7) {
		t.Errorf("region = %v, want startLine 42 startColumn 7", region)
	}

	// A finding outside the root keeps its absolute path and no base id.
	r1 := results[1].(map[string]any)
	art1 := r1["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)["artifactLocation"].(map[string]any)
	if got := art1["uri"]; got != "/elsewhere/y.go" {
		t.Errorf("out-of-root uri = %v, want absolute path", got)
	}
	if _, has := art1["uriBaseId"]; has {
		t.Errorf("out-of-root artifact has uriBaseId %v, want none", art1["uriBaseId"])
	}

	base := run["originalUriBaseIds"].(map[string]any)["SRCROOT"].(map[string]any)
	if got := base["uri"]; got != "file:///repo/" {
		t.Errorf("originalUriBaseIds.SRCROOT.uri = %v, want file:///repo/", got)
	}
}
