package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis. A
// directory containing an external test package (package foo_test) yields
// two Packages.
type Package struct {
	Dir   string // absolute directory
	Path  string // import path (module-relative), "_test"-suffixed for external test packages
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors holds soft type-checking failures. Analyzers still run
	// on packages with type errors, but drivers should surface them.
	TypeErrors []error
}

// Loader parses and type-checks packages from source. One Loader shares a
// FileSet and an importer cache across all loads, so dependencies are
// type-checked once.
type Loader struct {
	Fset     *token.FileSet
	importer types.Importer
}

// NewLoader returns a Loader backed by the standard library's source
// importer, which resolves both std and module-local imports by
// type-checking them from source (the process working directory must be
// inside the module for module-local resolution).
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		importer: importer.ForCompiler(fset, "source", nil),
	}
}

// ModuleRoot walks upward from dir to the nearest directory containing
// go.mod and returns it alongside the module path declared there.
func ModuleRoot(dir string) (root, modpath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return d, "", fmt.Errorf("go.mod in %s declares no module path", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}

// ExpandPatterns resolves package patterns relative to dir into package
// directories. Supported forms are a plain directory ("./internal/vsync")
// and the recursive suffix ("./...", "./internal/..."). Directories named
// testdata, hidden directories, and directories with no .go files are
// skipped during recursion.
//
// A pattern that matches no packages — a misspelled path, a directory
// without Go files, an unreadable tree — is an error, never a silently
// empty result: a driver that "found nothing to check" must not be
// mistakable for one that checked everything and found it clean.
func ExpandPatterns(dir string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	matched := 0
	add := func(d string) {
		matched++
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		matched = 0
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(dir, base)
		}
		base = filepath.Clean(base)
		if !recursive {
			ok, err := hasGoFiles(base)
			if err != nil {
				return nil, fmt.Errorf("pattern %q: %w", pat, err)
			}
			if ok {
				add(base)
			}
		} else {
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				ok, err := hasGoFiles(path)
				if err != nil {
					return err
				}
				if ok {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("pattern %q: %w", pat, err)
			}
		}
		if matched == 0 {
			return nil, fmt.Errorf("pattern %q matched no Go packages under %s", pat, base)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains Go source files. An
// unreadable directory is an error, not a miss (see ExpandPatterns).
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}

// LoadDir parses and type-checks every package rooted in dir (including
// in-package test files; an external _test package becomes a second
// Package). importPath is the canonical path of the non-test package; pass
// "" to derive it from the enclosing module.
func (l *Loader) LoadDir(dir, importPath string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if importPath == "" {
		root, mod, err := ModuleRoot(abs)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil {
			return nil, err
		}
		importPath = mod
		if rel != "." {
			importPath = mod + "/" + filepath.ToSlash(rel)
		}
	}
	astPkgs, err := parser.ParseDir(l.Fset, abs, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}

	// Deterministic package order: the primary package first, then any
	// external test package.
	names := make([]string, 0, len(astPkgs))
	for name := range astPkgs {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		it, jt := strings.HasSuffix(names[i], "_test"), strings.HasSuffix(names[j], "_test")
		if it != jt {
			return jt
		}
		return names[i] < names[j]
	})

	var pkgs []*Package
	for _, name := range names {
		apkg := astPkgs[name]
		var files []*ast.File
		var fnames []string
		for fname := range apkg.Files {
			fnames = append(fnames, fname)
		}
		sort.Strings(fnames)
		for _, fname := range fnames {
			files = append(files, apkg.Files[fname])
		}
		path := importPath
		if strings.HasSuffix(name, "_test") && !strings.HasSuffix(importPath, "_test") {
			path = importPath + "_test"
		}
		pkgs = append(pkgs, l.check(abs, path, files))
	}
	return pkgs, nil
}

func (l *Loader) check(dir, path string, files []*ast.File) *Package {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var terrs []error
	conf := types.Config{
		Importer: l.importer,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	return &Package{
		Dir:        dir,
		Path:       path,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: terrs,
	}
}

// LoadFiles parses and type-checks one package from an explicit file list,
// as handed to a vettool by the go command's unit-checker protocol.
func (l *Loader) LoadFiles(importPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	names := append([]string(nil), filenames...)
	sort.Strings(names)
	dir := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		dir = filepath.Dir(name)
	}
	return l.check(dir, importPath, files), nil
}

// Load expands patterns relative to dir and loads every matched package.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	dirs, err := ExpandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range dirs {
		ps, err := l.LoadDir(d, "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, ps...)
	}
	return pkgs, nil
}
