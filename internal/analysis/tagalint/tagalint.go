// Package tagalint aggregates the repository's analyzers into the suite
// run by cmd/tagalint, the tier-1 gate and the analysis tests. Each
// analyzer encodes one invariant the simulator's correctness rests on; see
// the individual packages and the "Static analysis & invariants" section
// of README.md.
package tagalint

import (
	"repro/internal/analysis"
	"repro/internal/analysis/condloop"
	"repro/internal/analysis/detlint"
	"repro/internal/analysis/doccomment"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lockcross"
	"repro/internal/analysis/poollife"
	"repro/internal/analysis/simerr"
	"repro/internal/analysis/taskctx"
)

// Suite returns the full tagalint analyzer set in stable order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		condloop.Analyzer,
		detlint.Analyzer,
		doccomment.Analyzer,
		hotalloc.Analyzer,
		lockcross.Analyzer,
		poollife.Analyzer,
		simerr.Analyzer,
		taskctx.Analyzer,
	}
}
