package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// failEveryCall is a toy analyzer reporting one diagnostic per call
// expression, used to exercise suppression bookkeeping.
var failEveryCall = &Analyzer{
	Name: "toycall",
	Doc:  "report every call expression\n\nToy analyzer for driver tests.",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(c.Pos(), "call expression")
				}
				return true
			})
		}
		return nil
	},
}

const suppressionSrc = `package toy

func a() {
	println("hit")
}

func b() {
	//lint:ignore toycall this call is fine, honest
	println("suppressed")
}

func c() int {
	//lint:ignore toycall nothing on the next line ever fires
	return 1
}
`

// TestSuppressionAudit checks that RunWithSuppressions reports every
// //lint:ignore directive with its usage: the one silencing a finding as
// used, the one covering a line that produces no diagnostic as stale.
func TestSuppressionAudit(t *testing.T) {
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "a.go"), []byte(suppressionSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := NewLoader()
	pkgs, err := loader.LoadDir(tmp, "toy")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings, sups, err := RunWithSuppressions(loader.Fset, pkgs, []*Analyzer{failEveryCall})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the unsuppressed call in a()", findings)
	}
	if len(sups) != 2 {
		t.Fatalf("suppressions = %v, want 2 directives", sups)
	}
	if !sups[0].Used {
		t.Errorf("directive in b() reported stale; it silences a finding: %s", sups[0])
	}
	if sups[1].Used {
		t.Errorf("directive in c() reported used; nothing fires under it: %s", sups[1])
	}
	stale := Stale(sups)
	if len(stale) != 1 || !strings.Contains(stale[0].Reason, "ever fires") {
		t.Errorf("Stale = %v, want just the c() directive", stale)
	}
}
