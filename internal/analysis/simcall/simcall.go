// Package simcall classifies calls into the simulator's packages: which
// functions can block the calling goroutine (park it on the virtual clock
// or on the Go runtime), and which packages' error returns must never be
// discarded. It is the shared vocabulary of the tagalint analyzers.
package simcall

import (
	"go/ast"
	"go/types"
	"strings"
)

// simErrPackages are the packages whose error returns encode simulator
// failures that must be handled: dropping them hides segment-bounds bugs,
// invalid queue ids and lost completion events (the misuse class TAMPI and
// MPI Continuations both report as the dominant user bug source).
var simErrPackages = map[string]bool{
	"gaspisim": true,
	"mpisim":   true,
	"memory":   true,
	"fabric":   true,
	"tagaspi":  true,
	"tampi":    true,
}

// IsSimErrPackage reports whether the import path names a package whose
// error results are load-bearing. Matching is by the path's final element
// so it holds for "repro/internal/gaspisim" and for relocated forks.
func IsSimErrPackage(path string) bool {
	return simErrPackages[pathBase(path)]
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// blocking maps package-base -> receiver-type name -> method set of calls
// that can park the calling goroutine. Functions without a receiver use
// the "" key.
var blocking = map[string]map[string]map[string]bool{
	"vsync": {
		"Mutex":     {"Lock": true},
		"Semaphore": {"Acquire": true},
		"WaitGroup": {"Wait": true},
		"Cond":      {"Wait": true, "WaitTimeout": true},
		"Resource":  {"Use": true, "Reserve": true},
	},
	"vclock": {
		"Parker":       {"Park": true, "ParkTimeout": true},
		"Clock":        {"Sleep": true},
		"VirtualClock": {"Sleep": true},
		"RealClock":    {"Sleep": true},
	},
	"tasking": {
		"Task":    {"WaitFor": true, "Yield": true, "Compute": true},
		"Runtime": {"TaskWait": true, "Throttle": true, "Shutdown": true},
	},
	"gaspisim": {
		"Proc": {"Wait": true, "Drain": true, "NotifyWaitSome": true, "RequestWait": true},
	},
	"mpisim": {
		"Proc": {
			"Wait": true, "Waitall": true, "Send": true, "Recv": true,
			"Barrier": true, "Bcast": true, "Allreduce": true,
			"AllgatherInt64": true, "Flush": true, "Fence": true,
		},
	},
	"tampi": {
		"Library": {"Wait": true},
	},
	"sync": {
		"Cond":      {"Wait": true},
		"WaitGroup": {"Wait": true},
	},
	"time": {
		"": {"Sleep": true},
	},
}

// Callee resolves the *types.Func a call expression invokes, or nil for
// calls through function values, conversions and built-ins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsBlocking reports whether fn is a known goroutine-parking operation.
func IsBlocking(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	byType := blocking[pathBase(fn.Pkg().Path())]
	if byType == nil {
		return false
	}
	return byType[recvTypeName(fn)][fn.Name()]
}

// IsCondWait reports whether fn is a condition-variable wait: Wait or
// WaitTimeout on sync.Cond or vsync.Cond. Cond waits park the goroutine
// but atomically release the cond's own lock first, so lockcross must not
// treat them as blocking under a held lock; condloop enforces their
// predicate-loop protocol instead.
func IsCondWait(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Name() != "Wait" && fn.Name() != "WaitTimeout" {
		return false
	}
	pkg := pathBase(fn.Pkg().Path())
	return (pkg == "sync" || pkg == "vsync") && recvTypeName(fn) == "Cond"
}

// BlockDescription renders a short human label for a blocking callee.
func BlockDescription(fn *types.Func) string {
	recv := recvTypeName(fn)
	if recv == "" {
		return pathBase(fn.Pkg().Path()) + "." + fn.Name()
	}
	return pathBase(fn.Pkg().Path()) + "." + recv + "." + fn.Name()
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// TaskParam returns the index of the first parameter of type
// *tasking.Task in fn's signature, or -1.
func TaskParam(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isTaskPointer(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

func isTaskPointer(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Task" && obj.Pkg() != nil && pathBase(obj.Pkg().Path()) == "tasking"
}
