package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/tagalint"
)

// TestRepoCleanUnderTagalint is the tier-1 wiring of the lint suite: it
// runs every tagalint analyzer over the whole module (as `go run
// ./cmd/tagalint ./...` does) and fails on any finding, so a violation of
// the simulator's concurrency or completion invariants fails `go test
// ./...` even when the offending package's own tests pass.
func TestRepoCleanUnderTagalint(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check; skipped in -short mode")
	}
	root, _, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.Load(root, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("type error: %s: %v", pkg.Path, terr)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	findings, err := analysis.Run(loader.Fset, pkgs, tagalint.Suite())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
