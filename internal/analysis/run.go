package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one resolved diagnostic: an analyzer name plus a concrete
// file position and message.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Suppression is one //lint:ignore directive encountered during a run,
// with the outcome of the run recorded: Used reports whether the directive
// actually silenced at least one diagnostic. Unused directives are stale —
// the violation they once excused has been fixed (or the directive never
// matched) — and accumulate as misleading documentation unless removed;
// the suppression audit surfaces them.
type Suppression struct {
	Pos    token.Position
	Names  []string // analyzer names the directive silences
	Reason string
	Used   bool
}

func (s Suppression) String() string {
	return fmt.Sprintf("%s: //lint:ignore %s %s", s.Pos, strings.Join(s.Names, ","), s.Reason)
}

// Run applies every analyzer to every package and returns the surviving
// findings, sorted by position. Diagnostics silenced by a //lint:ignore
// directive (same line or the line immediately above, naming the analyzer
// or "all") are dropped.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunWithSuppressions(fset, pkgs, analyzers)
	return findings, err
}

// RunWithSuppressions is Run plus the audit trail: it additionally returns
// every //lint:ignore directive seen, each annotated with whether it
// silenced anything. Callers that enforce suppression hygiene (cmd/tagalint,
// ci.sh) treat Used == false as a stale directive.
func RunWithSuppressions(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, []Suppression, error) {
	var findings []Finding
	var directives []*directive
	for _, pkg := range pkgs {
		ignores := collectIgnores(fset, pkg.Files)
		directives = append(directives, ignores.directives...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := fset.Position(d.Pos)
				if ignores.covers(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})

	sups := make([]Suppression, 0, len(directives))
	for _, d := range directives {
		sups = append(sups, Suppression{Pos: d.pos, Names: d.names, Reason: d.reason, Used: d.used})
	}
	sort.Slice(sups, func(i, j int) bool {
		a, b := sups[i], sups[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return findings, sups, nil
}

// Stale filters a run's suppressions down to the unused ones.
func Stale(sups []Suppression) []Suppression {
	var stale []Suppression
	for _, s := range sups {
		if !s.Used {
			stale = append(stale, s)
		}
	}
	return stale
}

// directive is one parsed //lint:ignore comment; used flips when it
// silences a diagnostic.
type directive struct {
	pos    token.Position
	names  []string
	reason string
	used   bool
}

// ignoreSet records //lint:ignore directives by file and line.
type ignoreSet struct {
	directives []*directive
	byPos      map[string]map[int][]*directive // filename -> line -> directives
}

// collectIgnores scans comments for suppression directives of the form
//
//	//lint:ignore name1,name2 reason
//
// The directive silences the named analyzers (or every analyzer, for the
// name "all") on its own line and on the line directly below, so it works
// both as a trailing comment and as a comment above the offending
// statement. The reason is mandatory, as in staticcheck.
func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	set := &ignoreSet{byPos: map[string]map[int][]*directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					// No reason given: directive is ignored, matching
					// staticcheck's strictness.
					continue
				}
				pos := fset.Position(c.Pos())
				d := &directive{
					pos:    pos,
					names:  strings.Split(fields[0], ","),
					reason: strings.Join(fields[1:], " "),
				}
				set.directives = append(set.directives, d)
				byLine := set.byPos[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*directive{}
					set.byPos[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
	return set
}

func (s *ignoreSet) covers(analyzer string, pos token.Position) bool {
	byLine := s.byPos[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			for _, name := range d.names {
				if name == analyzer || name == "all" {
					d.used = true
					return true
				}
			}
		}
	}
	return false
}
