package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one resolved diagnostic: an analyzer name plus a concrete
// file position and message.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the surviving
// findings, sorted by position. Diagnostics silenced by a //lint:ignore
// directive (same line or the line immediately above, naming the analyzer
// or "all") are dropped.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		ignores := collectIgnores(fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := fset.Position(d.Pos)
				if ignores.covers(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// ignoreSet records //lint:ignore directives by file and line.
type ignoreSet map[string]map[int][]string // filename -> line -> analyzer names

// collectIgnores scans comments for suppression directives of the form
//
//	//lint:ignore name1,name2 reason
//
// The directive silences the named analyzers (or every analyzer, for the
// name "all") on its own line and on the line directly below, so it works
// both as a trailing comment and as a comment above the offending
// statement. The reason is mandatory, as in staticcheck.
func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	set := ignoreSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					// No reason given: directive is ignored, matching
					// staticcheck's strictness.
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					set[pos.Filename] = byLine
				}
				names := strings.Split(fields[0], ",")
				byLine[pos.Line] = append(byLine[pos.Line], names...)
			}
		}
	}
	return set
}

func (s ignoreSet) covers(analyzer string, pos token.Position) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}
