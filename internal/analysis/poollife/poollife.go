// Package poollife defines the flow-sensitive tagalint analyzer that
// guards the pooled-object lifecycle PR 5 introduced on the courier hot
// path: once an object marked //tagalint:pooled is handed to a consumer
// marked //tagalint:pooled release (back to its sync.Pool) or
// //tagalint:pooled transfer (ownership moves to the callee — the fabric
// owns a Message after Send), the caller must not touch it again. The
// pool may recycle the struct at any point afterwards, so a late read is
// a silent data race against the object's next life and a second release
// corrupts the pool.
//
// The analyzer is a forward may-analysis over the cfg package's graphs:
// for every function it tracks, per local variable of a pooled type,
// whether any path to the current point has consumed it. A use while
// possibly-consumed is reported, as is a second consumption. Reassigning
// the variable (m = NewMessage(), m := ...) returns it to the live state.
//
// Limits, chosen to keep the analysis useful rather than noisy: aliases
// are not tracked (m2 := m; release(m); use(m2) escapes it), deferred
// releases are ignored (they run at function exit, after every use in the
// body), and closures are analyzed as separate functions with all
// captured variables assumed live on entry.
package poollife

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sync"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
	"repro/internal/analysis/poolmark"
	"repro/internal/analysis/simcall"
)

// Analyzer reports uses of pool-recycled objects after their release or
// ownership transfer, and double releases.
var Analyzer = &analysis.Analyzer{
	Name: "poollife",
	Doc: "report use-after-release and double-release of //tagalint:pooled objects\n\n" +
		"Objects of a type marked //tagalint:pooled are recycled through a pool " +
		"by functions marked //tagalint:pooled release (or transfer, for " +
		"ownership handoffs like fabric.Send). After any path has consumed such " +
		"an object, further uses and further releases race against the pool.",
	Run: run,
}

// resolver answers the pooled-type / consumer-function questions against
// the enclosing module. It is process-global: marker scans are pure
// directory reads, so one cache serves every pass and every test.
var (
	resolveOnce sync.Once
	resolver    *poolmark.Resolver
	resolveErr  error
)

func getResolver() (*poolmark.Resolver, error) {
	resolveOnce.Do(func() {
		root, modpath, err := analysis.ModuleRoot(".")
		if err != nil {
			resolveErr = fmt.Errorf("poollife: locating module root: %w", err)
			return
		}
		resolver = poolmark.NewResolver(poolmark.NewCache(), root, modpath)
	})
	return resolver, resolveErr
}

func run(pass *analysis.Pass) error {
	res, err := getResolver()
	if err != nil {
		return err
	}
	a := &analyzer{pass: pass, res: res}
	for _, file := range pass.Files {
		var ferr error
		ast.Inspect(file, func(n ast.Node) bool {
			if ferr != nil {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					ferr = a.function(n.Body)
				}
			case *ast.FuncLit:
				// Analyzed as its own function; the enclosing function's
				// graph treats the literal as an opaque expression.
				ferr = a.function(n.Body)
			}
			return true
		})
		if ferr != nil {
			return ferr
		}
	}
	return nil
}

// consumption records how a variable left the live state: which marked
// function consumed it, in which way, and where.
type consumption struct {
	kind poolmark.Kind
	by   string // callee name, e.g. "Send" or "releaseMessage"
	pos  token.Pos
}

// state maps each possibly-consumed pooled variable to its (earliest)
// consumption. Variables not present are live on every path.
type state map[*types.Var]consumption

// lattice is the join-semilattice of states: bottom is "nothing consumed",
// join is the union, keeping the earliest consumption site per variable so
// the fixpoint is deterministic and monotone (positions only decrease).
type lattice struct{}

func (lattice) Bottom() state { return nil }

func (lattice) Clone(s state) state {
	out := make(state, len(s))
	for v, c := range s {
		out[v] = c
	}
	return out
}

func (lattice) Join(a, b state) state {
	if a == nil {
		a = state{}
	}
	for v, c := range b {
		if prev, ok := a[v]; !ok || c.pos < prev.pos {
			a[v] = c
		}
	}
	return a
}

func (lattice) Equal(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for v, c := range a {
		if b[v] != c {
			return false
		}
	}
	return true
}

type analyzer struct {
	pass *analysis.Pass
	res  *poolmark.Resolver
}

// function runs the fixpoint over one function body and then replays it,
// reporting uses-after-consumption and double consumptions.
func (a *analyzer) function(body *ast.BlockStmt) error {
	g := cfg.New(body)
	lat := lattice{}
	fix, err := dataflow.Forward[state](g, lat, nil, func(n ast.Node, s state) state {
		a.node(n, s, nil)
		return s
	})
	if err != nil {
		return fmt.Errorf("poollife: %w", err)
	}
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			a.pass.Reportf(pos, format, args...)
		}
	}
	for _, blk := range g.Blocks {
		if !fix.Reached[blk.Index] {
			continue
		}
		s := lat.Clone(fix.In[blk.Index])
		for _, n := range blk.Nodes {
			a.node(n, s, report)
		}
	}
	return nil
}

// reportf is the diagnostic sink of one replay pass; nil during the
// fixpoint, where only the state transition matters.
type reportf func(pos token.Pos, format string, args ...any)

// node applies one CFG node to s, reporting through report when non-nil.
func (a *analyzer) node(n ast.Node, s state, report reportf) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			a.expr(r, s, report)
		}
		for _, l := range n.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				// Plain reassignment (or definition) revives the variable:
				// it now names a different object.
				if v := a.trackedVar(id); v != nil {
					delete(s, v)
				}
				continue
			}
			// m.Field = x reads m to write through it.
			a.expr(l, s, report)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						a.expr(val, s, report)
					}
					for _, name := range vs.Names {
						if v := a.trackedVar(name); v != nil {
							delete(s, v)
						}
					}
				}
			}
		}
	case *ast.RangeStmt:
		// The cfg package adds the RangeStmt itself as the per-iteration
		// node; its body lives in separate blocks. Evaluate X, then treat
		// the key/value bindings as fresh definitions.
		a.expr(n.X, s, report)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			id, ok := e.(*ast.Ident)
			if !ok {
				continue
			}
			if v := a.trackedVar(id); v != nil {
				delete(s, v)
			}
		}
	case *ast.DeferStmt:
		// Deferred consumers run at function exit, after every use in the
		// body, so a deferred release never makes a later use stale.
	case *ast.ExprStmt:
		a.expr(n.X, s, report)
	case *ast.GoStmt:
		a.expr(n.Call, s, report)
	case *ast.SendStmt:
		a.expr(n.Chan, s, report)
		a.expr(n.Value, s, report)
	case *ast.IncDecStmt:
		a.expr(n.X, s, report)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			a.expr(r, s, report)
		}
	case ast.Expr:
		a.expr(n, s, report)
	case ast.Stmt:
		// Other statement kinds (Empty, Branch, ...) carry no expressions
		// the analysis cares about; walk conservatively for uses.
		ast.Inspect(n, func(x ast.Node) bool {
			if e, ok := x.(ast.Expr); ok {
				a.expr(e, s, report)
				return false
			}
			return true
		})
	}
}

// expr walks one expression: consumer calls consume their pooled
// arguments, every other identifier occurrence is a use.
func (a *analyzer) expr(e ast.Expr, s state, report reportf) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// A closure body is a separate function (analyzed on its own);
			// creating the closure does not use the captured variables yet.
			return false
		case *ast.CallExpr:
			if a.consumerCall(x, s, report) {
				return false
			}
		case *ast.Ident:
			a.use(x, s, report)
		}
		return true
	})
}

// consumerCall handles a call to a //tagalint:pooled release/transfer
// function: pooled identifier arguments (and a pooled method receiver) are
// consumed; everything else in the call is walked as ordinary uses. It
// reports whether the call was a consumer (children already handled).
func (a *analyzer) consumerCall(call *ast.CallExpr, s state, report reportf) bool {
	callee := simcall.Callee(a.pass.TypesInfo, call)
	kind, ok := a.res.ConsumerKind(callee)
	if !ok {
		return false
	}
	// The callee expression: for f.Send(m) the base f is an ordinary use;
	// for a consumer method on a pooled receiver, the receiver is consumed.
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		if recvID, isID := ast.Unparen(sel.X).(*ast.Ident); isID && a.pooledVar(recvID) != nil && hasRecv(callee) {
			a.consume(recvID, kind, callee.Name(), call.Pos(), s, report)
		} else {
			a.expr(sel.X, s, report)
		}
	}
	for _, arg := range call.Args {
		if id, isID := ast.Unparen(arg).(*ast.Ident); isID {
			if v := a.pooledVar(id); v != nil {
				a.consume(id, kind, callee.Name(), call.Pos(), s, report)
				continue
			}
		}
		a.expr(arg, s, report)
	}
	return true
}

// consume transitions one pooled variable to the consumed state, reporting
// a double consumption if any path already consumed it.
func (a *analyzer) consume(id *ast.Ident, kind poolmark.Kind, by string, pos token.Pos, s state, report reportf) {
	v := a.pooledVar(id)
	if v == nil {
		return
	}
	if prev, ok := s[v]; ok {
		if report != nil {
			report(pos, "%s of %s %q: %s already consumed it on line %d",
				kind, a.typeOf(v), id.Name, prev.by, a.line(prev.pos))
		}
		// Keep the earliest consumption: later uses blame the first exit.
		if pos < prev.pos {
			s[v] = consumption{kind: kind, by: by, pos: pos}
		}
		return
	}
	s[v] = consumption{kind: kind, by: by, pos: pos}
}

// use reports a read of a possibly-consumed pooled variable.
func (a *analyzer) use(id *ast.Ident, s state, report reportf) {
	v := a.trackedVar(id)
	if v == nil {
		return
	}
	c, ok := s[v]
	if !ok {
		return
	}
	if report != nil {
		verb := "released it to its pool"
		if c.kind == poolmark.Transfer {
			verb = "took ownership of it"
		}
		report(id.Pos(), "%s %q used after %s %s on line %d; the pool may already have recycled it",
			a.typeOf(v), id.Name, c.by, verb, a.line(c.pos))
	}
}

// trackedVar resolves id to the local/parameter variable it names, or nil
// for fields, package-level objects and non-variables.
func (a *analyzer) trackedVar(id *ast.Ident) *types.Var {
	obj := a.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = a.pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() == nil || (v.Pkg() != nil && v.Parent() == v.Pkg().Scope()) {
		return nil // package-level: lifecycle is not intraprocedural
	}
	return v
}

// pooledVar is trackedVar restricted to //tagalint:pooled types.
func (a *analyzer) pooledVar(id *ast.Ident) *types.Var {
	v := a.trackedVar(id)
	if v == nil || !a.res.IsPooled(v.Type()) {
		return nil
	}
	return v
}

func (a *analyzer) typeOf(v *types.Var) string {
	// Qualify foreign types by package name (*fabric.Message), own-package
	// types bare (*obj) — full import paths only clutter diagnostics.
	return types.TypeString(v.Type(), func(p *types.Package) string {
		if p == a.pass.Pkg {
			return ""
		}
		return p.Name()
	})
}

func (a *analyzer) line(pos token.Pos) int {
	return a.pass.Fset.Position(pos).Line
}

// hasRecv reports whether fn is a method.
func hasRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}
