package poollife_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poollife"
)

func TestPoollife(t *testing.T) {
	analysistest.Run(t, "testdata/src/poollifetest", poollife.Analyzer)
}

// TestPoollifeFabric is the acceptance fixture: a use-after-Send against
// the real fabric.Message that compiles today must be diagnosed through
// the //tagalint:pooled markers on the fabric's own declarations.
func TestPoollifeFabric(t *testing.T) {
	analysistest.Run(t, "testdata/src/poollifefabric", poollife.Analyzer)
}
