// Package poollifefabric proves poollife catches a use-after-Send against
// the real fabric types. This code compiles today: nothing in the type
// system stops a sender from reading a Message the fabric already owns —
// and may already have zeroed and recycled into another rank's transfer.
package poollifefabric

import (
	"repro/internal/fabric"
)

func useAfterSend(f *fabric.Fabric) int {
	msg := fabric.NewMessage()
	msg.Src, msg.Dst, msg.Size = 0, 1, 64
	f.Send(msg)
	return msg.Size // want `\*fabric\.Message "msg" used after Send took ownership of it on line 14`
}

func sendIsTheLastTouch(f *fabric.Fabric) {
	msg := fabric.NewMessage()
	msg.Src, msg.Dst, msg.Size = 0, 1, 64
	f.Send(msg) // ok: nothing reads msg afterwards
}
