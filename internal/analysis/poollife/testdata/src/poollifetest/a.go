// Package poollifetest exercises poollife on a self-contained pooled
// lifecycle: use-after-release, use-after-transfer, double release,
// conditional consumption across branches, and the revive-on-reassign and
// deferred-release non-findings.
package poollifetest

//tagalint:pooled
type obj struct {
	n int
}

var pool []*obj

//tagalint:pooled release
func put(o *obj) { pool = append(pool, o) }

//tagalint:pooled transfer
func send(o *obj) {}

//tagalint:pooled release
func (o *obj) free() {}

func get() *obj { return &obj{} }

func useAfterRelease() {
	o := get()
	put(o)
	_ = o.n // want `\*obj "o" used after put released it to its pool on line 27`
}

func useAfterTransfer() {
	o := get()
	send(o)
	println(o.n) // want `\*obj "o" used after send took ownership of it on line 33`
}

func useAfterMethodRelease() {
	o := get()
	o.free()
	_ = o.n // want `\*obj "o" used after free released it to its pool on line 39`
}

func doubleRelease() {
	o := get()
	put(o)
	put(o) // want `release of \*obj "o": put already consumed it on line 45`
}

func doubleReleaseInLoop() {
	o := get()
	for i := 0; i < 2; i++ {
		put(o) // want `release of \*obj "o": put already consumed it on line 52`
	}
}

func conditionalRelease(c bool) {
	o := get()
	if c {
		put(o)
	}
	o.n = 1 // want `\*obj "o" used after put released it to its pool on line 59`
}

func releasedOnEveryBranch(c bool) {
	o := get()
	if c {
		put(o)
	} else {
		send(o)
	}
	_ = o.n // want `\*obj "o" used after (put|send)`
}

func reassignmentRevives() {
	o := get()
	put(o)
	o = get()
	_ = o.n // ok: o names a fresh object now
}

func earlyExitIsClean(c bool) {
	o := get()
	if c {
		put(o)
		return
	}
	_ = o.n // ok: the releasing path returned
}

func deferredReleaseIsClean() {
	o := get()
	defer put(o)
	o.n = 2 // ok: the deferred release runs after every use
}

func writeThroughAfterRelease() {
	o := get()
	put(o)
	o.n = 3 // want `\*obj "o" used after put released it to its pool on line 98`
}

func switchRelease(k int) {
	o := get()
	switch k {
	case 0:
		put(o)
	case 1:
		// keeps o
	}
	_ = o.n // want `\*obj "o" used after put released it to its pool on line 106`
}
