package critpath

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

const us = time.Microsecond

// handTrace builds a small two-rank scenario with a known critical path:
//
//	rank 0: compute [0,40us], sends a message at 10us (flow 7: s@10us,
//	        f@30us on rank 1), mpi:lock_wait [40,45us] inside an isend
//	        shell [38,47us].
//	rank 1: notify:wait [5,32us] ended by the delivery at 30us, then
//	        compute [32,60us] — the makespan end.
//
// Walking back from (1, 60us): compute 28us ← wait tail [30,32us] 2us ←
// fabric [10,30us] 20us ← rank 0 compute [0,10us] 10us. Total 60us.
func handTrace() []obs.Event {
	rec := obs.NewTracer(2)
	rec.Span(0, obs.TaskTrack(0), obs.CatTask, "body", 0, 40*us, 1)
	rec.Flow(0, obs.TrackFabricTx, obs.CatFabric, "flow:msg", 's', 10*us, 7)
	rec.Span(0, obs.TrackMPI, obs.CatMPI, "mpi:isend", 38*us, 47*us, 64)
	rec.Span(0, obs.TrackMPI, obs.CatMPI, "mpi:lock_wait", 40*us, 45*us, 0)
	rec.Flow(1, obs.TrackFabricRx, obs.CatFabric, "flow:msg", 'f', 30*us, 7)
	rec.Span(1, obs.TrackNotify, obs.CatNotify, "notify:wait", 5*us, 32*us, 0)
	rec.Span(1, obs.TaskTrack(0), obs.CatTask, "body", 32*us, 60*us, 2)
	return rec.Events()
}

func TestAnalyzeHandTrace(t *testing.T) {
	rep, err := Analyze(handTrace())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != 60*us {
		t.Fatalf("makespan = %v, want 60us", rep.Makespan)
	}
	if rep.Attributed != rep.Makespan {
		t.Fatalf("attributed %v of %v", rep.Attributed, rep.Makespan)
	}
	want := map[Class]time.Duration{
		ClassCompute:    38 * us, // 28us on rank 1 + 10us on rank 0
		ClassFabric:     20 * us, // send 10us -> deliver 30us
		ClassNotifyWait: 2 * us,  // delivery 30us -> wait end 32us
	}
	for c, d := range want {
		if rep.Blame[c].Time != d {
			t.Errorf("%s = %v, want %v", c, rep.Blame[c].Time, d)
		}
	}
	if rep.Blame[ClassMPILockWait].Time != 0 {
		t.Errorf("lock wait off-path should be 0, got %v", rep.Blame[ClassMPILockWait].Time)
	}
	if rep.Jumps != 1 {
		t.Errorf("jumps = %d, want 1", rep.Jumps)
	}
}

// TestAnalyzeLinkContendSplit checks the shaped-topology edge split the
// fabric emits when a message queued behind contended links: the flow:msg
// edge ends where uncontended transit would have delivered (25us) and a
// same-rank flow:link edge covers the contention tail [25us, 30us]. The
// walk must blame the tail as link_contend, the transit as fabric, and
// still attribute the full makespan.
func TestAnalyzeLinkContendSplit(t *testing.T) {
	rec := obs.NewTracer(2)
	rec.Span(0, obs.TaskTrack(0), obs.CatTask, "body", 0, 40*us, 1)
	rec.Flow(0, obs.TrackFabricTx, obs.CatFabric, "flow:msg", 's', 10*us, 7)
	rec.Flow(1, obs.TrackFabricRx, obs.CatFabric, "flow:msg", 'f', 25*us, 7)
	rec.Flow(1, obs.TrackFabricRx, obs.CatFabric, "flow:link", 's', 25*us, 8)
	rec.Flow(1, obs.TrackFabricRx, obs.CatFabric, "flow:link", 'f', 30*us, 8)
	rec.Span(1, obs.TrackNotify, obs.CatNotify, "notify:wait", 5*us, 32*us, 0)
	rec.Span(1, obs.TaskTrack(0), obs.CatTask, "body", 32*us, 60*us, 2)
	rep, err := Analyze(rec.Events())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attributed != rep.Makespan {
		t.Fatalf("attributed %v of %v", rep.Attributed, rep.Makespan)
	}
	want := map[Class]time.Duration{
		ClassCompute:     38 * us, // 28us on rank 1 + 10us on rank 0
		ClassLinkContend: 5 * us,  // contention tail 25us -> 30us
		ClassFabric:      15 * us, // uncontended transit 10us -> 25us
		ClassNotifyWait:  2 * us,  // delivery 30us -> wait end 32us
	}
	for c, d := range want {
		if rep.Blame[c].Time != d {
			t.Errorf("%s = %v, want %v", c, rep.Blame[c].Time, d)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "link_contend") {
		t.Errorf("text report missing link_contend row:\n%s", buf.String())
	}
}

func TestAnalyzeLockWaitOnPath(t *testing.T) {
	// A single rank whose last activity is an isend shell with a lock wait
	// inside: the lock wait must outrank the shell where they overlap.
	rec := obs.NewTracer(1)
	rec.Span(0, obs.TaskTrack(0), obs.CatTask, "body", 0, 10*us, 1)
	rec.Span(0, obs.TrackMPI, obs.CatMPI, "mpi:isend", 10*us, 30*us, 64)
	rec.Span(0, obs.TrackMPI, obs.CatMPI, "mpi:lock_wait", 12*us, 25*us, 0)
	rep, err := Analyze(rec.Events())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Blame[ClassMPILockWait].Time; got != 13*us {
		t.Errorf("mpi_lock_wait = %v, want 13us", got)
	}
	if got := rep.Blame[ClassCompute].Time; got != 17*us {
		t.Errorf("compute = %v, want 17us (10 body + 2 shell head + 5 shell tail)", got)
	}
	if rep.Attributed != rep.Makespan {
		t.Fatalf("attributed %v of %v", rep.Attributed, rep.Makespan)
	}
}

func TestAnalyzeGapIsIdle(t *testing.T) {
	rec := obs.NewTracer(1)
	rec.Span(0, obs.TaskTrack(0), obs.CatTask, "body", 0, 10*us, 1)
	rec.Span(0, obs.TaskTrack(0), obs.CatTask, "body", 25*us, 40*us, 2)
	rep, err := Analyze(rec.Events())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Blame[ClassIdle].Time; got != 15*us {
		t.Errorf("idle = %v, want 15us", got)
	}
	if rep.Attributed != rep.Makespan {
		t.Fatalf("attributed %v of %v", rep.Attributed, rep.Makespan)
	}
}

func TestAnalyzeRetrySpan(t *testing.T) {
	rec := obs.NewTracer(1)
	rec.Span(0, obs.TaskTrack(0), obs.CatTask, "body", 0, 10*us, 1)
	rec.Span(0, obs.QueueTrack(0), obs.CatGaspi, "tagaspi:retry", 10*us, 50*us, 2)
	rep, err := Analyze(rec.Events())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Blame[ClassRetry].Time; got != 40*us {
		t.Errorf("retry = %v, want 40us", got)
	}
}

func TestReportDeterministicOutput(t *testing.T) {
	evs := handTrace()
	var a, b, ja, jb bytes.Buffer
	for i, out := range []*bytes.Buffer{&a, &b} {
		rep, err := Analyze(evs)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteText(out); err != nil {
			t.Fatal(err)
		}
		j := []*bytes.Buffer{&ja, &jb}[i]
		if err := rep.WriteJSON(j); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("text reports differ across identical analyses")
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Error("JSON reports differ across identical analyses")
	}
	txt := a.String()
	for _, wantSub := range []string{"critical-path blame", "mpi_lock_wait", "attributed 100.00%"} {
		if !strings.Contains(txt, wantSub) {
			t.Errorf("text report missing %q:\n%s", wantSub, txt)
		}
	}
}

func TestFromTraceFileRoundTrip(t *testing.T) {
	rec := obs.NewTracer(2)
	rec.Span(0, obs.TaskTrack(0), obs.CatTask, "body", 0, 40*us, 1)
	rec.Flow(0, obs.TrackFabricTx, obs.CatFabric, "flow:msg", 's', 10*us, 7)
	rec.Flow(1, obs.TrackFabricRx, obs.CatFabric, "flow:msg", 'f', 30*us, 7)
	rec.Span(1, obs.TaskTrack(0), obs.CatTask, "body", 30*us, 60*us, 2)
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	tf, err := obs.ParseTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Analyze(rec.Events())
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := FromTraceFile(tf)
	if err != nil {
		t.Fatal(err)
	}
	var dj, pj bytes.Buffer
	if err := direct.WriteJSON(&dj); err != nil {
		t.Fatal(err)
	}
	if err := parsed.WriteJSON(&pj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dj.Bytes(), pj.Bytes()) {
		t.Errorf("report from parsed trace differs:\ndirect: %s\nparsed: %s", dj.String(), pj.String())
	}
}
