// Package critpath reconstructs the cross-rank happens-before DAG of one
// instrumented run from its trace events and extracts the critical path:
// the chain of spans and causal flow edges that ends at the instant the
// makespan is reached and, walked backwards, explains where every
// nanosecond of elapsed time went. Each segment of the path is attributed
// to exactly one blame class (DESIGN.md §10):
//
//	compute        task bodies, library call shells, posting overhead,
//	               polling passes — time a core spent doing work
//	fabric         message transit: Send-side flow start to delivery
//	link_contend   queueing at the links of a shaped-topology route:
//	               the backpressure share of transit (DESIGN.md §13)
//	notify_wait    waiting for a remote event — a GASPI notification
//	               sitting unobserved, or an MPI request completion park
//	mpi_lock_wait  serialization on the MPI THREAD_MULTIPLE library lock
//	retry          TAGASPI retry backoff after a queue-error failure
//	idle           scheduler idle: gaps with no span and no arriving
//	               edge to jump through, plus dependency-release slack
//
// The walk is a backward greedy last-finisher traversal. It starts at the
// (rank, time) pair achieving the makespan and repeatedly asks "what was
// this rank doing just before t, and if it was waiting, which causal edge
// ended the wait?". Flow edges ('s'/'f' pairs, see obs.Recorder.Flow) let
// the cursor jump across ranks — from a delivery back to the send that
// caused it — so the path threads through the whole job, not one rank.
//
// Everything is a deterministic function of the event set: ties are broken
// by the canonical event order, and the report serializers emit fixed-order
// fields with fixed-precision numbers, so identical traces produce
// byte-identical reports.
package critpath

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/obs"
)

// Class is one blame class of the critical-path attribution.
type Class uint8

// Blame classes, in canonical report order.
const (
	ClassCompute Class = iota
	ClassFabric
	ClassLinkContend
	ClassNotifyWait
	ClassMPILockWait
	ClassRetry
	ClassIdle
	numClasses
)

// String returns the canonical class name used in reports.
func (c Class) String() string {
	switch c {
	case ClassCompute:
		return "compute"
	case ClassFabric:
		return "fabric"
	case ClassLinkContend:
		return "link_contend"
	case ClassNotifyWait:
		return "notify_wait"
	case ClassMPILockWait:
		return "mpi_lock_wait"
	case ClassRetry:
		return "retry"
	case ClassIdle:
		return "idle"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Report is the critical-path blame attribution of one run.
type Report struct {
	Makespan   time.Duration          // end of the last event in the trace
	Ranks      int                    // distinct ranks seen
	Events     int                    // events analysed
	Segments   int                    // blame segments on the critical path
	Jumps      int                    // cross-rank jumps along the path
	Blame      [numClasses]ClassBlame // per-class attribution, canonical order
	Attributed time.Duration          // total time attributed (== Makespan when the walk reaches t=0)
}

// ClassBlame is one class's share of the critical path.
type ClassBlame struct {
	Class string        `json:"class"`
	Time  time.Duration `json:"time_ns"`
	Share float64       `json:"share"` // fraction of makespan, exact
}

// Share returns the attributed fraction of the makespan, in [0, 1].
func (r *Report) Share(c Class) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Blame[c].Time) / float64(r.Makespan)
}

// spanRef is one 'X' event indexed for the walk.
type spanRef struct {
	start, end time.Duration
	prio       int // covering-span priority; higher wins, see classify
	class      Class
	waitLike   bool // wait shells look for an arriving edge before blaming
}

// flowRef is one paired flow edge as seen from its finish endpoint.
type flowRef struct {
	fTs   time.Duration // finish timestamp (on the waiting rank)
	sTs   time.Duration // start timestamp (on the causing rank)
	sRank int
	class Class // blame class of the edge interval [sTs, fTs]
}

// classify maps a span event to its covering priority, blame class and
// wait-likeness. Spans that never represent rank CPU/wait state (fabric NIC
// activity) return prio < 0 and are excluded from the walk.
func classify(e obs.Event) (prio int, class Class, waitLike bool) {
	if e.Cat == obs.CatFabric {
		return -1, ClassCompute, false // NIC rows: attributed via flow edges
	}
	switch e.Name {
	case "mpi:lock_wait":
		return 5, ClassMPILockWait, false
	case "tagaspi:retry":
		return 4, ClassRetry, false
	case "notify:wait", "mpi:wait":
		return 3, ClassNotifyWait, true
	case "task:wait", "task:yield":
		return 2, ClassIdle, true
	}
	// Task bodies, mpi:isend/mpi:irecv shells, gaspi post spans, polling
	// passes: a core was doing work.
	return 1, ClassCompute, false
}

// edgeClass maps a flow edge name to the blame class of its interval.
func edgeClass(name string) Class {
	switch name {
	case "flow:msg":
		return ClassFabric
	case "flow:link":
		return ClassLinkContend // queueing at a shaped-topology link
	case "flow:notify":
		return ClassNotifyWait
	case "flow:lock":
		return ClassMPILockWait
	case "flow:coll":
		return ClassFabric // collective per-step chunk movement

	case "flow:task":
		return ClassIdle // dependency-release and scheduling slack
	}
	return ClassIdle
}

// maxSteps bounds the walk; a trace needing more segments than four times
// its event count indicates a cycle (which a well-formed trace cannot
// contain) and aborts instead of spinning.
func stepBudget(events int) int {
	n := 4*events + 64
	if n < 1024 {
		n = 1024
	}
	return n
}

// Analyze reconstructs the critical path from a canonically-ordered event
// set (obs.Tracer.Events or obs.EventsOf) and returns its blame report.
func Analyze(evs []obs.Event) (*Report, error) {
	if len(evs) == 0 {
		return nil, errors.New("critpath: empty trace")
	}

	// Index spans and flow finish-edges per rank; pair flow endpoints.
	type endRef struct {
		end  time.Duration
		prio int
	}
	type rankIdx struct {
		spans  []spanRef       // sorted by start (input order is canonical)
		maxEnd []time.Duration // prefix max of spans[k].end, bounds covering scans
		ends   []endRef        // all span ends with priority, sorted by end
		flows  []flowRef       // sorted by fTs
	}
	byRank := map[int]*rankIdx{}
	idx := func(r int) *rankIdx {
		ri := byRank[r]
		if ri == nil {
			ri = &rankIdx{}
			byRank[r] = ri
		}
		return ri
	}
	// Flow endpoints pair FIFO per id: the k-th 's' with the k-th 'f' in
	// canonical order (per-ordering-domain sequences make ids unique in
	// practice; FIFO pairing keeps a hash collision harmless).
	type sEnd struct {
		ts   time.Duration
		rank int
		name string
	}
	starts := map[int64][]sEnd{}

	var makespan time.Duration
	endRank := -1
	for _, e := range evs {
		end := e.Ts + e.Dur
		if end > makespan || (end == makespan && endRank < 0) {
			makespan, endRank = end, int(e.Rank)
		}
		switch e.Ph {
		case 'X':
			prio, class, wait := classify(e)
			if prio < 0 || e.Dur <= 0 {
				continue
			}
			idx(int(e.Rank)).spans = append(idx(int(e.Rank)).spans,
				spanRef{start: e.Ts, end: end, prio: prio, class: class, waitLike: wait})
		case 's':
			starts[e.Flow] = append(starts[e.Flow], sEnd{ts: e.Ts, rank: int(e.Rank), name: e.Name})
		}
	}
	for _, e := range evs {
		if e.Ph != 'f' {
			continue
		}
		q := starts[e.Flow]
		if len(q) == 0 {
			continue // dangling finish: unmatched edge, ignore
		}
		s := q[0]
		starts[e.Flow] = q[1:]
		idx(int(e.Rank)).flows = append(idx(int(e.Rank)).flows,
			flowRef{fTs: e.Ts, sTs: s.ts, sRank: s.rank, class: edgeClass(s.name)})
	}
	for _, ri := range byRank {
		sort.Slice(ri.spans, func(i, j int) bool { return ri.spans[i].start < ri.spans[j].start })
		sort.Slice(ri.flows, func(i, j int) bool { return ri.flows[i].fTs < ri.flows[j].fTs })
		ri.maxEnd = make([]time.Duration, len(ri.spans))
		ri.ends = make([]endRef, len(ri.spans))
		var m time.Duration
		for k, s := range ri.spans {
			if s.end > m {
				m = s.end
			}
			ri.maxEnd[k] = m
			ri.ends[k] = endRef{end: s.end, prio: s.prio}
		}
		sort.Slice(ri.ends, func(i, j int) bool {
			if ri.ends[i].end != ri.ends[j].end {
				return ri.ends[i].end < ri.ends[j].end
			}
			return ri.ends[i].prio < ri.ends[j].prio
		})
	}

	rep := &Report{Makespan: makespan, Ranks: len(byRank), Events: len(evs)}
	if makespan <= 0 {
		return nil, errors.New("critpath: trace has zero makespan")
	}

	// covering returns the highest-priority span s on rank with
	// s.start < t <= s.end (ties on priority: latest start, i.e. innermost).
	covering := func(ri *rankIdx, t time.Duration) (spanRef, bool) {
		best := spanRef{prio: -1}
		// spans are sorted by start; scan backwards from the last start < t,
		// stopping once no earlier span can still reach t (prefix max end).
		i := sort.Search(len(ri.spans), func(k int) bool { return ri.spans[k].start >= t })
		for k := i - 1; k >= 0; k-- {
			if ri.maxEnd[k] < t {
				break
			}
			s := ri.spans[k]
			if s.end >= t && s.prio > best.prio {
				best = s
			}
		}
		if best.prio < 0 {
			return spanRef{}, false
		}
		return best, true
	}
	// latestFlow returns the latest edge arriving on rank with
	// lo < fTs <= t and sTs < t (so jumping makes strict progress).
	latestFlow := func(ri *rankIdx, lo, t time.Duration) (flowRef, bool) {
		i := sort.Search(len(ri.flows), func(k int) bool { return ri.flows[k].fTs > t })
		for k := i - 1; k >= 0; k-- {
			f := ri.flows[k]
			if f.fTs <= lo {
				break
			}
			if f.sTs < t {
				return f, true
			}
		}
		return flowRef{}, false
	}
	// prevEnd returns the latest span end <= t on rank, or 0.
	prevEnd := func(ri *rankIdx, t time.Duration) time.Duration {
		i := sort.Search(len(ri.ends), func(k int) bool { return ri.ends[k].end > t })
		if i == 0 {
			return 0
		}
		return ri.ends[i-1].end
	}
	// hiEnd returns the latest end in (lo, t) of a span whose priority
	// exceeds p: the boundary where a more specific span (a lock wait
	// inside a library-call shell) surfaces under a blamed interval.
	hiEnd := func(ri *rankIdx, lo, t time.Duration, p int) (time.Duration, bool) {
		i := sort.Search(len(ri.ends), func(k int) bool { return ri.ends[k].end >= t })
		for k := i - 1; k >= 0; k-- {
			e := ri.ends[k]
			if e.end <= lo {
				break
			}
			if e.prio > p {
				return e.end, true
			}
		}
		return 0, false
	}

	blame := func(class Class, d time.Duration) {
		if d <= 0 {
			return
		}
		rep.Blame[class].Time += d
		rep.Attributed += d
		rep.Segments++
	}
	jump := func(from int, f flowRef, t time.Duration) (int, time.Duration) {
		blame(f.class, t-f.sTs)
		if f.sRank != from {
			rep.Jumps++
		}
		return f.sRank, f.sTs
	}

	rank, t := endRank, makespan
	budget := stepBudget(len(evs))
	for t > 0 {
		budget--
		if budget < 0 {
			return nil, fmt.Errorf("critpath: walk exceeded step budget at rank %d t %v", rank, t)
		}
		ri := byRank[rank]
		if ri == nil {
			blame(ClassIdle, t)
			break
		}
		s, ok := covering(ri, t)
		if !ok {
			// Gap: no span covers t. Jump through the latest edge arriving
			// in the gap if any; otherwise the rank was idle back to the
			// previous span end (or the start of time).
			lo := prevEnd(ri, t)
			if f, ok := latestFlow(ri, lo, t); ok {
				blame(ClassIdle, t-f.fTs)
				rank, t = jump(rank, f, min(t, f.fTs))
				continue
			}
			blame(ClassIdle, t-lo)
			t = lo
			continue
		}
		if s.waitLike {
			// A wait shell: the wait was ended by the latest causal edge
			// arriving inside it. Blame the post-arrival tail as the wait
			// class, the edge interval as the edge's class, and jump to
			// the cause — unless a higher-priority span (a progress-engine
			// lock wait delaying the delivery) ends even later inside the
			// shell; walk that first.
			f, fok := latestFlow(ri, s.start, t)
			e, eok := hiEnd(ri, s.start, t, s.prio)
			if eok && (!fok || e > f.fTs) {
				blame(s.class, t-e)
				t = e
				continue
			}
			if fok {
				blame(s.class, t-f.fTs)
				rank, t = jump(rank, f, min(t, f.fTs))
				continue
			}
		}
		// Blame back to the span start — or only to the latest boundary
		// where a higher-priority span (a lock wait under a call shell)
		// ends inside the interval; the next iteration picks that span up.
		if e, ok := hiEnd(ri, s.start, t, s.prio); ok {
			blame(s.class, t-e)
			t = e
			continue
		}
		blame(s.class, t-s.start)
		t = s.start
	}

	for c := Class(0); c < numClasses; c++ {
		rep.Blame[c].Class = c.String()
		rep.Blame[c].Share = float64(rep.Blame[c].Time) / float64(makespan)
	}
	return rep, nil
}

// FromTraceFile analyses a parsed trace file (obs.ParseTrace).
func FromTraceFile(tf *obs.TraceFile) (*Report, error) {
	evs, err := obs.EventsOf(tf)
	if err != nil {
		return nil, err
	}
	return Analyze(evs)
}

func min(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// WriteText renders the canonical human-readable blame report. Field order,
// widths and precision are fixed so identical traces yield identical bytes.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "critical-path blame  makespan=%s  ranks=%d  events=%d\n",
		canonDur(r.Makespan), r.Ranks, r.Events); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %18s %8s\n", "class", "time", "share")
	for c := Class(0); c < numClasses; c++ {
		b := r.Blame[c]
		fmt.Fprintf(w, "%-14s %18s %7.2f%%\n", b.Class, canonDur(b.Time), 100*b.Share)
	}
	_, err := fmt.Fprintf(w, "attributed %.2f%% of makespan in %d segments, %d cross-rank jumps\n",
		100*attributedShare(r), r.Segments, r.Jumps)
	return err
}

// WriteJSON renders the report as canonical JSON: fixed key order, integer
// nanoseconds, shares with fixed precision.
func (r *Report) WriteJSON(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "{\"schema\":\"critpath/v1\",\"makespan_ns\":%d,\"ranks\":%d,\"events\":%d,\"segments\":%d,\"jumps\":%d,\"attributed_ns\":%d,\"blame\":[",
		r.Makespan.Nanoseconds(), r.Ranks, r.Events, r.Segments, r.Jumps, r.Attributed.Nanoseconds()); err != nil {
		return err
	}
	for c := Class(0); c < numClasses; c++ {
		b := r.Blame[c]
		sep := ","
		if c == 0 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "%s{\"class\":\"%s\",\"time_ns\":%d,\"share\":%.6f}",
			sep, b.Class, b.Time.Nanoseconds(), b.Share); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

func attributedShare(r *Report) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Attributed) / float64(r.Makespan)
}

// canonDur renders a duration as microseconds with fixed nanosecond
// precision — the same shape as trace timestamps, immune to the unit
// switching of Duration.String.
func canonDur(d time.Duration) string {
	ns := d.Nanoseconds()
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03dus", neg, ns/1000, ns%1000)
}
