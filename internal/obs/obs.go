// Package obs is the unified observability layer of the simulator: a
// low-overhead event tracer producing Chrome trace_event JSON timelines
// (the stand-in for the Extrae/Paraver traces the paper's evaluation is
// built on) and a metrics registry of named counters, gauges and
// fixed-bucket latency histograms.
//
// Every instrumented component (the tasking runtime, the GASPI and MPI
// models, the task-aware libraries, the fabric) holds an optional Recorder.
// A nil Recorder disables observability entirely: every instrumentation
// site is guarded by a single predictable `rec != nil` branch, so the
// uninstrumented hot paths cost one compare-and-jump and nothing else.
//
// Timestamps are the simulation's virtual-clock readings (time.Duration
// since clock start), passed in explicitly by the instrumentation sites.
// The package itself never reads a clock, which keeps traces deterministic
// across identical virtual-time runs and makes the recording layer
// clock-agnostic.
//
// Recording never blocks on modelled time and must never be invoked while
// holding a simulator lock (the tagalint lockcross discipline): every
// instrumentation site records after releasing its component's mutex.
package obs

import "time"

// Cat classifies events for trace filtering, mirroring the event groups of
// the paper's Paraver timelines (task execution, communication, queue
// occupancy, notification latency).
type Cat string

// Event categories.
const (
	CatTask   Cat = "task"   // task lifecycle: create/ready/run/wait/complete
	CatGaspi  Cat = "gaspi"  // one-sided operations: submit/post/complete
	CatMPI    Cat = "mpi"    // two-sided library calls and lock waits
	CatNotify Cat = "notify" // notification waits and fulfilments
	CatPoll   Cat = "poll"   // task-aware polling-task passes
	CatFabric Cat = "fabric" // wire/NIC activity: injection and delivery
	CatColl   Cat = "coll"   // collective phases: reduce-scatter/allgather/bcast
	CatObs    Cat = "obs"    // tracer self-diagnostics: drop/clamp warnings
)

// Track is the timeline row (the Chrome trace "tid") an event is drawn on
// within its rank. Conventional assignments keep every component on a
// stable, named row.
type Track int32

// Track assignments within one rank.
const (
	// TrackMain is the rank main (task submission, waits, barriers).
	TrackMain Track = 0
	// trackTaskBase starts the per-core task-execution lanes: a running
	// task occupies lane TaskTrack(l) where l is a dense index allocated
	// while its body runs.
	trackTaskBase Track = 1
	// TrackMPI carries the two-sided library calls of the rank.
	TrackMPI Track = 24
	// TrackNotify carries notification fulfilments and waits.
	TrackNotify Track = 30
	// TrackColl carries collective-phase spans (reduce-scatter, allgather,
	// broadcast) and per-step collective flow edges.
	TrackColl Track = 31
	// trackQueueBase starts the per-queue GASPI rows: queue q draws on
	// QueueTrack(q).
	trackQueueBase Track = 32
	// TrackFabricTx carries NIC injection spans of messages the rank sent.
	TrackFabricTx Track = 48
	// TrackFabricRx carries delivery instants of messages the rank received.
	TrackFabricRx Track = 49
	// trackPollBase starts the polling-service rows (one per service name).
	trackPollBase Track = 56
)

// TaskTrack returns the timeline row of task-execution lane l.
func TaskTrack(lane int32) Track { return trackTaskBase + Track(lane) }

// QueueTrack returns the timeline row of GASPI queue q.
func QueueTrack(q int) Track { return trackQueueBase + Track(q) }

// PollTrack returns the timeline row of the polling service with the given
// name. The mapping is a stable hash so a service keeps its row across
// runs without central coordination.
func PollTrack(name string) Track {
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return trackPollBase + Track(h%8)
}

// TrackName renders the conventional label of a track id, for the trace
// metadata naming the timeline rows.
func TrackName(t Track) string {
	switch {
	case t == TrackMain:
		return "main"
	case t >= trackTaskBase && t < TrackMPI:
		return "core " + itoa(int(t-trackTaskBase))
	case t == TrackMPI:
		return "mpi"
	case t == TrackNotify:
		return "notify"
	case t == TrackColl:
		return "coll"
	case t >= trackQueueBase && t < TrackFabricTx:
		return "gaspi q" + itoa(int(t-trackQueueBase))
	case t == TrackFabricTx:
		return "fabric tx"
	case t == TrackFabricRx:
		return "fabric rx"
	case t >= trackPollBase:
		return "poll " + itoa(int(t-trackPollBase))
	}
	return "track " + itoa(int(t))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Flow-id kind discriminators for FlowID. Fabric message edges do not use
// FlowID (their ids come from the per-ordering-domain sequence, see
// fabric.Message.Flow); every other edge kind hashes its identifying tuple
// under a distinct kind so the id spaces stay disjoint.
const (
	FlowKindLock   int64 = 2 // MPI THREAD_MULTIPLE lock-acquire edges
	FlowKindTask   int64 = 3 // task-dependency release edges
	FlowKindNotify int64 = 4 // GASPI notification fulfilment edges
	FlowKindColl   int64 = 5 // collective per-step data-movement edges
)

// FlowID derives a deterministic causal-flow edge id from a kind
// discriminator and three kind-specific integer components (FNV-1a over
// the tuple). The result is positive and never zero, so callers can use
// zero as "no flow". Components must be deterministic functions of
// modelled state — virtual times, task ids, sequence numbers — never host
// values, so edge ids are byte-stable across reruns.
//
//tagalint:hotpath
func FlowID(kind, a, b, c int64) int64 {
	h := fnvMix(fnvOffset64, uint64(kind))
	h = fnvMix(h, uint64(a))
	h = fnvMix(h, uint64(b))
	h = fnvMix(h, uint64(c))
	id := int64(h &^ (1 << 63))
	if id == 0 {
		id = 1
	}
	return id
}

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvMix folds one 64-bit value into an FNV-1a state byte by byte.
//
//tagalint:hotpath
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// Recorder receives events and measurements from instrumented components.
// Implementations must be safe for concurrent use from rank mains, task
// bodies, fabric couriers and polling tasks, and must not block on modelled
// time. Collector is the standard implementation.
type Recorder interface {
	// Span records a completed interval [start, end) on the given rank and
	// track. arg is an event-specific payload (bytes, a task id, a retired
	// count) surfaced in the trace viewer.
	Span(rank int, track Track, cat Cat, name string, start, end time.Duration, arg int64)
	// Instant records a point event at ts.
	Instant(rank int, track Track, cat Cat, name string, ts time.Duration, arg int64)
	// Flow records one endpoint of a causal flow edge at ts: ph 's' starts
	// the edge, ph 'f' finishes it, and the two endpoints bind through id.
	// Flow ids must be assigned deterministically from modelled state (see
	// DESIGN.md §10) so traces stay byte-identical across reruns.
	Flow(rank int, track Track, cat Cat, name string, ph byte, ts time.Duration, id int64)
	// Latency adds one duration sample to the named histogram.
	Latency(name string, d time.Duration)
	// Count adds delta to the named counter.
	Count(name string, delta int64)
}

// Collector is the standard Recorder: an optional Tracer half (timeline
// events) and an optional Registry half (metrics). Either half may be nil,
// disabling it; a Collector with both halves nil is valid and records
// nothing.
type Collector struct {
	Tracer  *Tracer
	Metrics *Registry
}

// NewCollector returns a Collector with both halves enabled, sized for the
// given rank count.
func NewCollector(ranks int) *Collector {
	return &Collector{Tracer: NewTracer(ranks), Metrics: NewRegistry()}
}

// Span implements Recorder.
func (c *Collector) Span(rank int, track Track, cat Cat, name string, start, end time.Duration, arg int64) {
	if c.Tracer != nil {
		c.Tracer.Span(rank, track, cat, name, start, end, arg)
	}
}

// Instant implements Recorder.
func (c *Collector) Instant(rank int, track Track, cat Cat, name string, ts time.Duration, arg int64) {
	if c.Tracer != nil {
		c.Tracer.Instant(rank, track, cat, name, ts, arg)
	}
}

// Flow implements Recorder.
//
//tagalint:hotpath
func (c *Collector) Flow(rank int, track Track, cat Cat, name string, ph byte, ts time.Duration, id int64) {
	if c.Tracer != nil {
		c.Tracer.Flow(rank, track, cat, name, ph, ts, id)
	}
}

// Latency implements Recorder.
func (c *Collector) Latency(name string, d time.Duration) {
	if c.Metrics != nil {
		c.Metrics.Histogram(name).Observe(d)
	}
}

// Count implements Recorder.
func (c *Collector) Count(name string, delta int64) {
	if c.Metrics != nil {
		c.Metrics.Counter(name).Add(delta)
	}
}
