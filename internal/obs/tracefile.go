package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"
)

// TraceEvent is one parsed Chrome trace_event entry, as read back by the
// trace CLI. Timestamps and durations are microseconds.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   int64          `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is a parsed trace document.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
}

// ParseTrace decodes a Chrome trace_event JSON document.
func ParseTrace(r io.Reader) (*TraceFile, error) {
	var t TraceFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("obs: trace parse: %w", err)
	}
	return &t, nil
}

// ReadTraceFile parses the trace document at path.
func ReadTraceFile(path string) (*TraceFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseTrace(f)
}

// validPhases are the event phases the tracer emits (including the 's'/'f'
// flow-edge phases) plus the begin/end and counter phases other trace_event
// producers use.
var validPhases = map[string]bool{
	"X": true, "i": true, "I": true, "M": true, "B": true, "E": true, "C": true,
	"s": true, "f": true,
}

// Validate checks structural well-formedness: at least one non-metadata
// event, known phases, non-empty names, non-negative timestamps and
// durations, non-negative pid/tid, and well-formed naming metadata. It
// returns the first violation found.
func (t *TraceFile) Validate() error {
	if len(t.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace has no events")
	}
	real := 0
	for i, e := range t.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("obs: event %d has no name", i)
		}
		if !validPhases[e.Ph] {
			return fmt.Errorf("obs: event %d (%q) has unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Ts < 0 {
			return fmt.Errorf("obs: event %d (%q) has negative ts %g", i, e.Name, e.Ts)
		}
		if e.Dur < 0 {
			return fmt.Errorf("obs: event %d (%q) has negative dur %g", i, e.Name, e.Dur)
		}
		if e.Pid < 0 || e.Tid < 0 {
			return fmt.Errorf("obs: event %d (%q) has negative pid/tid %d/%d", i, e.Name, e.Pid, e.Tid)
		}
		if e.Ph == "M" {
			if e.Name != "process_name" && e.Name != "thread_name" {
				continue
			}
			if _, ok := e.Args["name"].(string); !ok {
				return fmt.Errorf("obs: metadata event %d (%q) lacks args.name", i, e.Name)
			}
			continue
		}
		real++
	}
	if real == 0 {
		return fmt.Errorf("obs: trace has only metadata events")
	}
	return nil
}

// EventsOf converts a parsed trace document back to the tracer's native
// event representation, dropping the naming metadata (WriteEvents re-derives
// it). The tracer serializes timestamps as microseconds with exactly three
// decimals, so the float64 round trip through math.Round is exact for any
// virtual time below 2^52 nanoseconds (~52 days); re-serializing the result
// with WriteEvents reproduces the original document byte for byte.
func EventsOf(t *TraceFile) ([]Event, error) {
	evs := make([]Event, 0, len(t.TraceEvents))
	for i, e := range t.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if len(e.Ph) != 1 {
			return nil, fmt.Errorf("obs: event %d (%q) has unsupported phase %q", i, e.Name, e.Ph)
		}
		ev := Event{
			Name:  e.Name,
			Cat:   Cat(e.Cat),
			Rank:  int32(e.Pid),
			Track: Track(e.Tid),
			Ph:    e.Ph[0],
			Ts:    time.Duration(math.Round(e.Ts * 1e3)),
		}
		switch e.Ph {
		case "X":
			ev.Dur = time.Duration(math.Round(e.Dur * 1e3))
		case "i":
		case "s", "f":
			ev.Flow = e.ID
		default:
			return nil, fmt.Errorf("obs: event %d (%q) has unsupported phase %q", i, e.Name, e.Ph)
		}
		if v, ok := e.Args["v"].(float64); ok {
			ev.Arg = int64(v)
		}
		evs = append(evs, ev)
	}
	sortEvents(evs)
	return evs, nil
}

// TraceSummary aggregates a trace for the CLI.
type TraceSummary struct {
	Events   int // non-metadata events
	Spans    int
	Instants int
	Ranks    []int          // pids with non-metadata events, sorted
	ByCat    map[string]int // non-metadata events per category
	ByName   map[string]int // non-metadata events per name
	FirstUs  float64        // earliest non-metadata ts
	LastUs   float64        // latest ts (span ends included)
}

// Summarize aggregates the trace.
func (t *TraceFile) Summarize() TraceSummary {
	s := TraceSummary{ByCat: map[string]int{}, ByName: map[string]int{}}
	ranks := map[int]bool{}
	first := true
	for _, e := range t.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		s.Events++
		switch e.Ph {
		case "X", "B":
			s.Spans++
		case "i", "I":
			s.Instants++
		}
		ranks[e.Pid] = true
		s.ByCat[e.Cat]++
		s.ByName[e.Name]++
		end := e.Ts + e.Dur
		if first || e.Ts < s.FirstUs {
			s.FirstUs = e.Ts
		}
		if first || end > s.LastUs {
			s.LastUs = end
		}
		first = false
	}
	s.Ranks = make([]int, 0, len(ranks))
	for r := range ranks {
		s.Ranks = append(s.Ranks, r)
	}
	sort.Ints(s.Ranks)
	return s
}

// Write renders the summary as text.
func (s TraceSummary) Write(w io.Writer) {
	fmt.Fprintf(w, "events: %d (%d spans, %d instants) across %d rank(s) %v\n",
		s.Events, s.Spans, s.Instants, len(s.Ranks), s.Ranks)
	fmt.Fprintf(w, "time:   %.3fus .. %.3fus (%.3fus)\n", s.FirstUs, s.LastUs, s.LastUs-s.FirstUs)
	for _, cat := range sortedKeys(s.ByCat) {
		fmt.Fprintf(w, "cat %-8s %d\n", cat, s.ByCat[cat])
	}
	for _, name := range sortedKeys(s.ByName) {
		fmt.Fprintf(w, "  %-24s %d\n", name, s.ByName[name])
	}
}

// TopSpans returns the n longest spans, longest first; ties break by
// earlier timestamp then name.
func (t *TraceFile) TopSpans(n int) []TraceEvent {
	var spans []TraceEvent
	for _, e := range t.TraceEvents {
		if e.Ph == "X" {
			spans = append(spans, e)
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Dur != spans[j].Dur {
			return spans[i].Dur > spans[j].Dur
		}
		if spans[i].Ts != spans[j].Ts {
			return spans[i].Ts < spans[j].Ts
		}
		return spans[i].Name < spans[j].Name
	})
	if n < len(spans) {
		spans = spans[:n]
	}
	return spans
}
