//go:build race

package obs

// The race detector's instrumentation allocates, so allocation-count
// gates skip themselves when it is compiled in.
func init() { raceEnabled = true }
