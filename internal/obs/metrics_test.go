package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the upper-bound-inclusive bucketing:
// a sample equal to a bound lands in that bound's bucket, one nanosecond
// more spills into the next, and samples above the last bound land in the
// overflow slot.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []time.Duration{100, 200, 400}
	h := NewHistogram(bounds)

	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{-5, 0}, // negative clamps to zero
		{99, 0},
		{100, 0}, // inclusive upper bound
		{101, 1},
		{200, 1},
		{201, 2},
		{400, 2},
		{401, 3}, // overflow
		{1 << 40, 3},
	}
	for _, c := range cases {
		h.Observe(c.d)
	}
	s := h.Snapshot()
	want := []int64{4, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.N != int64(len(cases)) {
		t.Errorf("N = %d, want %d", s.N, len(cases))
	}
	if s.Min != 0 || s.Max != 1<<40 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}

	h.Reset()
	if s := h.Snapshot(); s.N != 0 || s.Sum != 0 || s.Max != 0 {
		t.Errorf("after Reset: %+v", s)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]time.Duration{100, 200, 400})
	for i := 0; i < 9; i++ {
		h.Observe(50) // bucket 0
	}
	h.Observe(1000) // overflow
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 100 {
		t.Errorf("p50 = %v, want bucket bound 100ns", q)
	}
	if q := s.Quantile(1); q != 1000 {
		t.Errorf("p100 = %v, want Max 1000ns", q)
	}
	if q := s.Quantile(0.99); q != 1000 {
		t.Errorf("p99 = %v, want Max (overflow bucket)", q)
	}
	// All samples below the first bound: the bound still caps at Max.
	h2 := NewHistogram([]time.Duration{100})
	h2.Observe(30)
	if q := h2.Snapshot().Quantile(0.5); q != 30 {
		t.Errorf("p50 of single 30ns sample = %v, want clamp to Max 30ns", q)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
}

// TestDefaultBucketBoundaries pins upper-bound-inclusive bucketing on the
// production bucket ladder: a sample equal to any DefaultLatencyBuckets
// bound must land in that bound's bucket, never the next one up.
func TestDefaultBucketBoundaries(t *testing.T) {
	h := NewHistogram(nil)
	for _, b := range DefaultLatencyBuckets {
		h.Observe(b)
	}
	s := h.Snapshot()
	for i := range DefaultLatencyBuckets {
		if s.Counts[i] != 1 {
			t.Errorf("bucket %d (bound %v) count = %d, want 1 (boundary sample leaked)",
				i, DefaultLatencyBuckets[i], s.Counts[i])
		}
	}
	if s.Counts[len(DefaultLatencyBuckets)] != 0 {
		t.Errorf("overflow bucket count = %d, want 0", s.Counts[len(DefaultLatencyBuckets)])
	}
}

// TestEmptyHistogramQuantiles pins the empty-histogram contract across the
// ways a histogram can be empty: freshly created, and emptied by Reset.
// Every quantile of an empty histogram is 0, including the extremes.
func TestEmptyHistogramQuantiles(t *testing.T) {
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := NewHistogram(nil).Snapshot().Quantile(q); got != 0 {
			t.Errorf("fresh histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	h := NewHistogram(nil)
	h.Observe(time.Millisecond)
	h.Reset()
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Snapshot().Quantile(q); got != 0 {
			t.Errorf("after Reset, Quantile(%v) = %v, want 0", q, got)
		}
	}
	// q=0 on a non-empty histogram clamps the rank to the first sample.
	h.Observe(50)
	if got := h.Snapshot().Quantile(0); got != 50 {
		t.Errorf("Quantile(0) of single 50ns sample = %v, want 50ns", got)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(nil) // default buckets
	h.Observe(100)
	h.Observe(300)
	if m := h.Snapshot().Mean(); m != 200 {
		t.Errorf("mean = %v, want 200ns", m)
	}
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Error("empty histogram mean must be 0")
	}
}

func TestNonAscendingBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	NewHistogram([]time.Duration{200, 100})
}

// TestRegistryConcurrent hammers one registry from many goroutines (the
// same way couriers, polling tasks and rank mains record concurrently);
// run under -race this checks the locking of every instrument.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared.counter").Add(1)
				r.Gauge("shared.gauge").Set(int64(w))
				r.Histogram("shared.hist").Observe(time.Duration(i) * time.Nanosecond)
				r.Counter("private." + string(rune('a'+w))).Add(1)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("shared.counter").Value(); v != workers*iters {
		t.Errorf("shared counter = %d, want %d", v, workers*iters)
	}
	if n := r.Histogram("shared.hist").Snapshot().N; n != workers*iters {
		t.Errorf("shared histogram N = %d, want %d", n, workers*iters)
	}
	var sb strings.Builder
	r.Write(&sb)
	out := sb.String()
	for _, want := range []string{"shared.counter", "shared.gauge", "shared.hist", "private.a"} {
		if !strings.Contains(out, want) {
			t.Errorf("Write output missing %q:\n%s", want, out)
		}
	}
	r.Reset()
	if v := r.Counter("shared.counter").Value(); v != 0 {
		t.Errorf("counter after Reset = %d", v)
	}
	if n := r.Histogram("shared.hist").Snapshot().N; n != 0 {
		t.Errorf("histogram N after Reset = %d", n)
	}
}

// TestCollectorNilHalves checks that a Collector with only one half
// installed records without crashing — the CLI builds exactly these shapes
// for -trace-only and -metrics-only runs.
func TestCollectorNilHalves(t *testing.T) {
	traceOnly := &Collector{Tracer: NewTracer(1)}
	traceOnly.Span(0, TrackMain, CatTask, "s", 0, 10, 0)
	traceOnly.Instant(0, TrackMain, CatTask, "i", 5, 0)
	traceOnly.Latency("l", 10)
	traceOnly.Count("c", 1)
	if traceOnly.Tracer.Len() != 2 {
		t.Errorf("trace-only events = %d, want 2", traceOnly.Tracer.Len())
	}

	metricsOnly := &Collector{Metrics: NewRegistry()}
	metricsOnly.Span(0, TrackMain, CatTask, "s", 0, 10, 0)
	metricsOnly.Latency("l", 10)
	metricsOnly.Count("c", 2)
	if v := metricsOnly.Metrics.Counter("c").Value(); v != 2 {
		t.Errorf("metrics-only counter = %d, want 2", v)
	}
}
