package obs

import (
	"fmt"
	"io"
)

// Sample is one named metric value inside a Snapshot. Durations are
// reported in seconds (Unit "s"), sizes in bytes (Unit "B"); counts leave
// Unit empty.
type Sample struct {
	Name  string
	Value float64
	Unit  string
}

// Snapshot is the common shape of a component's statistics: a component
// name, the owning rank (-1 for job-global components like the fabric) and
// a flat, ordered sample list. It unifies the previously divergent Stats
// structs of the fabric, the tasking runtime and the GASPI/MPI processes.
type Snapshot struct {
	Component string
	Rank      int
	Samples   []Sample
}

// Snapshotter is implemented by components exposing resettable statistics:
// Snapshot returns the current counters in the common shape, Reset clears
// them so a steady-state measurement window can exclude warm-up.
type Snapshotter interface {
	Snapshot() Snapshot
	Reset()
}

// WriteSnapshots renders snapshots as aligned text, one sample per line.
func WriteSnapshots(w io.Writer, snaps []Snapshot) {
	for _, s := range snaps {
		if s.Rank >= 0 {
			fmt.Fprintf(w, "-- %s (rank %d)\n", s.Component, s.Rank)
		} else {
			fmt.Fprintf(w, "-- %s\n", s.Component)
		}
		for _, smp := range s.Samples {
			if smp.Unit != "" {
				fmt.Fprintf(w, "   %-28s %g %s\n", smp.Name, smp.Value, smp.Unit)
			} else {
				fmt.Fprintf(w, "   %-28s %g\n", smp.Name, smp.Value)
			}
		}
	}
}
