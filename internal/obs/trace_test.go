package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fillTracer records a small fixed event set. Order of calls is
// deliberately scrambled relative to timestamps.
func fillTracer(t *Tracer) {
	t.Instant(1, TrackNotify, CatNotify, "notify:fulfill", 900*time.Nanosecond, 7)
	t.Span(0, TaskTrack(0), CatTask, "compute", 100*time.Nanosecond, 600*time.Nanosecond, 1)
	t.Span(1, QueueTrack(2), CatGaspi, "gaspi:write_notify", 150*time.Nanosecond, 400*time.Nanosecond, 4096)
	t.Instant(0, TrackMain, CatTask, "task:create", 50*time.Nanosecond, 1)
	t.Span(0, TrackMPI, CatMPI, "mpi:isend", 200*time.Nanosecond, 350*time.Nanosecond, 64)
	t.Instant(1, TrackFabricRx, CatFabric, "fabric:deliver", 700*time.Nanosecond, 4096)
}

// TestTracerDeterministicSerialization records the same event set in two
// different insertion orders — including from concurrent goroutines — and
// requires byte-identical output: the property that makes traces of
// identical virtual-time runs comparable.
func TestTracerDeterministicSerialization(t *testing.T) {
	a := NewTracer(2)
	fillTracer(a)

	// Same events, recorded concurrently per rank in reverse order.
	b := NewTracer(2)
	var wg sync.WaitGroup
	record := [](func()){
		func() { b.Instant(1, TrackFabricRx, CatFabric, "fabric:deliver", 700*time.Nanosecond, 4096) },
		func() { b.Span(0, TrackMPI, CatMPI, "mpi:isend", 200*time.Nanosecond, 350*time.Nanosecond, 64) },
		func() { b.Instant(0, TrackMain, CatTask, "task:create", 50*time.Nanosecond, 1) },
		func() {
			b.Span(1, QueueTrack(2), CatGaspi, "gaspi:write_notify", 150*time.Nanosecond, 400*time.Nanosecond, 4096)
		},
		func() { b.Span(0, TaskTrack(0), CatTask, "compute", 100*time.Nanosecond, 600*time.Nanosecond, 1) },
		func() { b.Instant(1, TrackNotify, CatNotify, "notify:fulfill", 900*time.Nanosecond, 7) },
	}
	for _, f := range record {
		f := f
		wg.Add(1)
		go func() { defer wg.Done(); f() }()
	}
	wg.Wait()

	var bufA, bufB bytes.Buffer
	if err := a.Write(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("serialized traces differ:\n--- a ---\n%s\n--- b ---\n%s", bufA.String(), bufB.String())
	}
}

// TestTracerRoundTrip checks that the validator and summarizer accept the
// tracer's own output — the contract cmd/trace -check relies on.
func TestTracerRoundTrip(t *testing.T) {
	tr := NewTracer(2)
	fillTracer(tr)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	tf, err := ParseTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse own output: %v", err)
	}
	if err := tf.Validate(); err != nil {
		t.Fatalf("validate own output: %v", err)
	}
	s := tf.Summarize()
	if s.Events != 6 || s.Spans != 3 || s.Instants != 3 {
		t.Errorf("summary = %d events (%d spans, %d instants), want 6 (3, 3)", s.Events, s.Spans, s.Instants)
	}
	if len(s.Ranks) != 2 || s.Ranks[0] != 0 || s.Ranks[1] != 1 {
		t.Errorf("ranks = %v, want [0 1]", s.Ranks)
	}
	if s.ByCat["task"] != 2 || s.ByCat["gaspi"] != 1 {
		t.Errorf("by-cat = %v", s.ByCat)
	}
	top := tf.TopSpans(1)
	if len(top) != 1 || top[0].Name != "compute" {
		t.Errorf("top span = %+v, want the 500ns compute span", top)
	}
}

// TestTracerGolden pins the exact serialized bytes of the fixed event set
// against testdata/fixed.trace.json, so accidental format drift (which
// would silently break stored traces and their consumers) fails loudly.
// Regenerate with: OBS_UPDATE_GOLDEN=1 go test ./internal/obs -run TestTracerGolden
func TestTracerGolden(t *testing.T) {
	tr := NewTracer(2)
	fillTracer(tr)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fixed.trace.json")
	if updateGolden() {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with OBS_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("serialized trace drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), want)
	}
	// And the golden file itself must satisfy the validator, as any
	// simulator-written trace must.
	tf, err := ReadTraceFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if err := tf.Validate(); err != nil {
		t.Fatalf("golden trace invalid: %v", err)
	}
}

func updateGolden() bool { return os.Getenv("OBS_UPDATE_GOLDEN") != "" }

func TestTracerDropsOutOfRangeRanks(t *testing.T) {
	tr := NewTracer(1)
	tr.Span(5, TrackMain, CatTask, "x", 0, 1, 0)
	tr.Instant(-1, TrackMain, CatTask, "y", 0, 0)
	tr.Flow(7, TrackMain, CatTask, "z", 's', 0, 1)
	if tr.Len() != 0 {
		t.Fatalf("out-of-range events recorded: %d", tr.Len())
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
	snap := tr.Snapshot()
	if snap.Component != "obs.tracer" || len(snap.Samples) != 2 ||
		snap.Samples[0].Name != "obs_events_dropped" || snap.Samples[0].Value != 3 {
		t.Fatalf("Snapshot() = %+v, want obs_events_dropped=3", snap)
	}
	// A written trace embeds the drop warning so file-level checks can fail.
	tr.Instant(0, TrackMain, CatTask, "ok", 0, 0) // keep the trace non-empty
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"obs:events_dropped"`) {
		t.Fatalf("written trace lacks the obs:events_dropped warning:\n%s", buf.String())
	}
	tr.Reset()
	if tr.Dropped() != 0 || tr.Clamped() != 0 || tr.Len() != 0 {
		t.Fatalf("Reset() left dropped=%d clamped=%d len=%d", tr.Dropped(), tr.Clamped(), tr.Len())
	}
}

func TestSpanClampsNegativeDuration(t *testing.T) {
	tr := NewTracer(1)
	tr.Span(0, TrackMain, CatTask, "x", 100, 50, 0)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %+v, want a clamp warning plus the clamped span", evs)
	}
	warn, span := evs[0], evs[1]
	if span.Name == "obs:span_clamped" {
		warn, span = span, warn
	}
	if span.Dur != 0 || span.Ts != 100 {
		t.Fatalf("span = %+v, want zero duration at ts 100", span)
	}
	if warn.Name != "obs:span_clamped" || warn.Ph != 'i' || warn.Ts != 100 || warn.Arg != -50 {
		t.Fatalf("warning = %+v, want obs:span_clamped instant at ts 100 with arg -50", warn)
	}
	if got := tr.Clamped(); got != 1 {
		t.Fatalf("Clamped() = %d, want 1", got)
	}
	if snap := tr.Snapshot(); snap.Samples[1].Name != "obs_span_clamped" || snap.Samples[1].Value != 1 {
		t.Fatalf("Snapshot() = %+v, want obs_span_clamped=1", snap)
	}
}

// TestFlowRoundTrip is the byte-identity gate for traces carrying flow
// events: write → parse → EventsOf → WriteEvents must reproduce the
// original document exactly (the contract that lets stored traces be
// re-processed by critpath without drift).
func TestFlowRoundTrip(t *testing.T) {
	tr := NewTracer(2)
	fillTracer(tr)
	tr.Flow(0, TrackFabricTx, CatFabric, "flow:msg", 's', 210*time.Nanosecond, 9001)
	tr.Flow(1, TrackFabricRx, CatFabric, "flow:msg", 'f', 700*time.Nanosecond, 9001)
	tr.Flow(1, TrackNotify, CatNotify, "flow:notify", 's', 705*time.Nanosecond, 42)
	tr.Flow(1, TrackNotify, CatNotify, "flow:notify", 'f', 900*time.Nanosecond, 42)

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	tf, err := ParseTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse own output: %v", err)
	}
	if err := tf.Validate(); err != nil {
		t.Fatalf("validate own output: %v", err)
	}
	evs, err := EventsOf(tf)
	if err != nil {
		t.Fatalf("EventsOf: %v", err)
	}
	if len(evs) != 10 {
		t.Fatalf("EventsOf returned %d events, want 10", len(evs))
	}
	var buf2 bytes.Buffer
	if err := WriteEvents(&buf2, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("re-serialized trace differs:\n--- original ---\n%s\n--- round-trip ---\n%s", buf.String(), buf2.String())
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"empty", `{"traceEvents":[]}`, "no events"},
		{"unnamed", `{"traceEvents":[{"name":"","ph":"X","ts":1,"pid":0,"tid":0}]}`, "no name"},
		{"badphase", `{"traceEvents":[{"name":"a","ph":"Z","ts":1,"pid":0,"tid":0}]}`, "unknown phase"},
		{"negts", `{"traceEvents":[{"name":"a","ph":"X","ts":-1,"pid":0,"tid":0}]}`, "negative ts"},
		{"negpid", `{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":-1,"tid":0}]}`, "negative pid"},
		{"metaonly", `{"traceEvents":[{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"r"}}]}`, "only metadata"},
		{"badmeta", `{"traceEvents":[{"name":"process_name","ph":"M","pid":0,"tid":0}]}`, "args.name"},
	}
	for _, c := range cases {
		tf, err := ParseTrace(strings.NewReader(c.doc))
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		err = tf.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestTrackNames(t *testing.T) {
	cases := map[Track]string{
		TrackMain:     "main",
		TaskTrack(0):  "core 0",
		TaskTrack(3):  "core 3",
		TrackMPI:      "mpi",
		TrackNotify:   "notify",
		QueueTrack(1): "gaspi q1",
		TrackFabricTx: "fabric tx",
		TrackFabricRx: "fabric rx",
	}
	for tr, want := range cases {
		if got := TrackName(tr); got != want {
			t.Errorf("TrackName(%d) = %q, want %q", tr, got, want)
		}
	}
	if got := TrackName(PollTrack("tampi-poll")); !strings.HasPrefix(got, "poll ") {
		t.Errorf("poll track name = %q", got)
	}
	if PollTrack("x") != PollTrack("x") {
		t.Error("PollTrack not stable")
	}
}
