package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one recorded trace event. Spans carry a duration; instants do
// not. Flow events ('s' start / 'f' finish) carry the flow id binding the
// two endpoints of one causal edge. Timestamps are virtual-clock readings.
type Event struct {
	Name  string
	Cat   Cat
	Rank  int32
	Track Track
	Ph    byte // 'X' (complete span), 'i' (instant), 's'/'f' (flow edge)
	Ts    time.Duration
	Dur   time.Duration
	Arg   int64
	Flow  int64 // flow edge id ('s'/'f' events only)
}

// Tracer records events into per-rank buffers. Recording takes one short
// host-mutex section per event (the buffers are sharded by rank, so ranks
// never contend with each other); serialization sorts events by virtual
// timestamp, which makes the output independent of host-scheduler
// interleaving and therefore deterministic across identical runs.
type Tracer struct {
	shards  []tshard
	dropped atomic.Int64 // events discarded for out-of-range ranks
	clamped atomic.Int64 // spans whose end preceded their start
}

type tshard struct {
	mu     sync.Mutex
	events []Event
	_      [32]byte // padding: keep neighbouring shards off one cache line
}

// NewTracer returns a tracer accepting events for ranks [0, ranks).
// Events for out-of-range ranks are dropped rather than crashing the
// simulation.
func NewTracer(ranks int) *Tracer {
	if ranks <= 0 {
		ranks = 1
	}
	return &Tracer{shards: make([]tshard, ranks)}
}

// Span records a completed interval. A span whose end precedes its start is
// clamped to zero duration at start; the clamp is counted in the
// obs_span_clamped counter and flagged with an "obs:span_clamped" warning
// instant (arg: the negative duration in nanoseconds) so clock bugs are
// visible in the trace instead of silently masked.
func (t *Tracer) Span(rank int, track Track, cat Cat, name string, start, end time.Duration, arg int64) {
	if end < start {
		t.clamped.Add(1)
		t.append(rank, Event{Name: "obs:span_clamped", Cat: CatObs, Rank: int32(rank),
			Track: track, Ph: 'i', Ts: start, Arg: int64(end - start)})
		end = start
	}
	t.append(rank, Event{Name: name, Cat: cat, Rank: int32(rank), Track: track,
		Ph: 'X', Ts: start, Dur: end - start, Arg: arg})
}

// Instant records a point event.
func (t *Tracer) Instant(rank int, track Track, cat Cat, name string, ts time.Duration, arg int64) {
	t.append(rank, Event{Name: name, Cat: cat, Rank: int32(rank), Track: track,
		Ph: 'i', Ts: ts, Arg: arg})
}

// Flow records one endpoint of a causal flow edge: ph 's' starts the edge,
// ph 'f' finishes it, and the two endpoints bind through id.
//
//tagalint:hotpath
func (t *Tracer) Flow(rank int, track Track, cat Cat, name string, ph byte, ts time.Duration, id int64) {
	t.append(rank, Event{Name: name, Cat: cat, Rank: int32(rank), Track: track,
		Ph: ph, Ts: ts, Flow: id})
}

//tagalint:hotpath
func (t *Tracer) append(rank int, e Event) {
	if rank < 0 || rank >= len(t.shards) {
		t.dropped.Add(1)
		return
	}
	s := &t.shards[rank]
	s.mu.Lock()
	//lint:ignore hotalloc per-shard event buffers amortise growth over the run; the steady state appends in place
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Dropped reports how many events were discarded because their rank was
// outside the tracer's shard range.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// Clamped reports how many spans arrived with end < start and were clamped
// to zero duration.
func (t *Tracer) Clamped() int64 { return t.clamped.Load() }

// Snapshot implements Snapshotter, surfacing the tracer's health counters.
func (t *Tracer) Snapshot() Snapshot {
	return Snapshot{Component: "obs.tracer", Rank: -1, Samples: []Sample{
		{Name: "obs_events_dropped", Value: float64(t.dropped.Load())},
		{Name: "obs_span_clamped", Value: float64(t.clamped.Load())},
	}}
}

// Reset implements Snapshotter: it clears the health counters and discards
// all recorded events, retaining the shard buffers' capacity so a
// steady-state measurement window starts empty without reallocating.
func (t *Tracer) Reset() {
	t.dropped.Store(0)
	t.clamped.Store(0)
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.events = s.events[:0]
		s.mu.Unlock()
	}
}

// Len reports the total number of recorded events.
func (t *Tracer) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.events)
		s.mu.Unlock()
	}
	return n
}

// Events returns a copy of all recorded events in canonical order.
func (t *Tracer) Events() []Event {
	var all []Event
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		all = append(all, s.events...)
		s.mu.Unlock()
	}
	sortEvents(all)
	return all
}

// sortEvents orders events canonically: by timestamp, then rank, track and
// the remaining fields. The total order over all fields makes serialized
// traces byte-identical across runs that recorded the same event set,
// regardless of goroutine interleaving during recording.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Dur != b.Dur {
			return a.Dur < b.Dur
		}
		if a.Arg != b.Arg {
			return a.Arg < b.Arg
		}
		if a.Flow != b.Flow {
			return a.Flow < b.Flow
		}
		return a.Ph < b.Ph
	})
}

// Write serializes the trace as Chrome trace_event JSON (the "JSON Array
// with metadata" flavour), loadable in chrome://tracing and Perfetto.
// Timestamps and durations are microseconds with nanosecond precision.
// The event stream is sorted canonically and preceded by process/thread
// naming metadata, so identical simulator runs produce identical bytes.
// When events were dropped for out-of-range ranks, an "obs:events_dropped"
// warning instant (arg: the drop count) is embedded so file-level checks
// (cmd/trace -check) can fail on incomplete traces.
func (t *Tracer) Write(w io.Writer) error {
	evs := t.Events()
	if d := t.dropped.Load(); d > 0 {
		evs = append(evs, Event{Name: "obs:events_dropped", Cat: CatObs,
			Rank: 0, Track: TrackMain, Ph: 'i', Ts: 0, Arg: d})
		sortEvents(evs)
	}
	return WriteEvents(w, evs)
}

// WriteEvents serializes an already-canonically-ordered event set as Chrome
// trace_event JSON, deriving the process/thread naming metadata from the
// events themselves. Tracer.Write delegates here; exposing it separately
// lets parsed traces be re-serialized byte-identically (see EventsOf).
func WriteEvents(w io.Writer, evs []Event) error {
	// Collect the (rank, track) pairs in use for naming metadata.
	type rt struct {
		rank  int32
		track Track
	}
	ranks := map[int32]bool{}
	tracks := map[rt]bool{}
	for _, e := range evs {
		ranks[e.Rank] = true
		tracks[rt{e.Rank, e.Track}] = true
	}
	rankList := make([]int, 0, len(ranks))
	for r := range ranks {
		rankList = append(rankList, int(r))
	}
	sort.Ints(rankList)
	trackList := make([]rt, 0, len(tracks))
	for k := range tracks {
		trackList = append(trackList, k)
	}
	sort.Slice(trackList, func(i, j int) bool {
		if trackList[i].rank != trackList[j].rank {
			return trackList[i].rank < trackList[j].rank
		}
		return trackList[i].track < trackList[j].track
	})

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	sep := func() string {
		if first {
			first = false
			return ""
		}
		return ",\n"
	}
	for _, r := range rankList {
		fmt.Fprintf(bw, "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"rank %d\"}}", sep(), r, r)
	}
	for _, k := range trackList {
		fmt.Fprintf(bw, "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}",
			sep(), k.rank, k.track, jsonString(TrackName(k.track)))
	}
	for _, e := range evs {
		switch e.Ph {
		case 'X':
			fmt.Fprintf(bw, "%s{\"name\":%s,\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"v\":%d}}",
				sep(), jsonString(e.Name), e.Cat, usec(e.Ts), usec(e.Dur), e.Rank, e.Track, e.Arg)
		case 'i':
			fmt.Fprintf(bw, "%s{\"name\":%s,\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"v\":%d}}",
				sep(), jsonString(e.Name), e.Cat, usec(e.Ts), e.Rank, e.Track, e.Arg)
		case 's':
			fmt.Fprintf(bw, "%s{\"name\":%s,\"cat\":\"%s\",\"ph\":\"s\",\"id\":%d,\"ts\":%s,\"pid\":%d,\"tid\":%d}",
				sep(), jsonString(e.Name), e.Cat, e.Flow, usec(e.Ts), e.Rank, e.Track)
		case 'f':
			fmt.Fprintf(bw, "%s{\"name\":%s,\"cat\":\"%s\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"ts\":%s,\"pid\":%d,\"tid\":%d}",
				sep(), jsonString(e.Name), e.Cat, e.Flow, usec(e.Ts), e.Rank, e.Track)
		}
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteFile serializes the trace to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// usec renders a duration as microseconds with nanosecond precision,
// without trailing-zero jitter (fixed three decimals).
func usec(d time.Duration) string {
	ns := d.Nanoseconds()
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// jsonString quotes s as a JSON string (names may carry user task labels).
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return "\"?\""
	}
	return string(b)
}
