package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically adjusted integer metric.
type Counter struct {
	v atomic.Int64
}

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets are the fixed histogram bucket upper bounds used
// for latency distributions: a coarse exponential ladder from sub-NIC
// overheads (100ns) to stall-scale delays (100ms). A sample lands in the
// first bucket whose bound it does not exceed; larger samples land in the
// overflow bucket.
var DefaultLatencyBuckets = []time.Duration{
	100 * time.Nanosecond,
	250 * time.Nanosecond,
	500 * time.Nanosecond,
	1 * time.Microsecond,
	2500 * time.Nanosecond,
	5 * time.Microsecond,
	10 * time.Microsecond,
	25 * time.Microsecond,
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
}

// Histogram is a fixed-bucket duration histogram. Buckets are upper-bound
// inclusive; the final implicit bucket counts samples above the last bound.
type Histogram struct {
	bounds []time.Duration

	mu     sync.Mutex
	counts []int64
	n      int64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// NewHistogram returns a histogram over the given ascending bucket bounds
// (DefaultLatencyBuckets when nil).
func NewHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.mu.Lock()
	h.counts[i]++
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// HistogramSnapshot is a consistent copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []time.Duration // bucket upper bounds; Counts has one extra overflow slot
	Counts []int64
	N      int64
	Sum    time.Duration
	Min    time.Duration
	Max    time.Duration
}

// Snapshot returns a copy of the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: h.bounds,
		Counts: append([]int64(nil), h.counts...),
		N:      h.n, Sum: h.sum, Min: h.min, Max: h.max,
	}
}

// Reset clears the histogram's counts, opening a steady-state measurement
// window.
func (h *Histogram) Reset() {
	h.mu.Lock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n, h.sum, h.min, h.max = 0, 0, 0, 0
	h.mu.Unlock()
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of the
// recorded samples: the bound of the bucket the quantile falls in (Max for
// the overflow bucket). It returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.N == 0 {
		return 0
	}
	// Nearest-rank: the smallest sample position covering fraction q.
	rank := int64(math.Ceil(q * float64(s.N)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.N {
		rank = s.N
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				b := s.Bounds[i]
				if b > s.Max {
					return s.Max
				}
				return b
			}
			return s.Max
		}
	}
	return s.Max
}

// Mean returns the average recorded sample.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.N == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.N)
}

// Registry holds named metrics. Lookups take a read lock on the fast path
// and instruments are created on first use, so instrumentation sites need
// no registration step.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the default latency buckets,
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(nil)
		r.hists[name] = h
	}
	return h
}

// Reset clears every registered metric (counters and gauges to zero,
// histograms emptied), opening a steady-state measurement window without
// discarding the instrument set.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.Reset()
	}
}

// Write renders every metric as aligned text, sorted by name: counters and
// gauges one per line, histograms with count/mean/median/p99/max.
func (r *Registry) Write(w io.Writer) {
	r.mu.RLock()
	cnames := sortedKeys(r.counters)
	gnames := sortedKeys(r.gauges)
	hnames := sortedKeys(r.hists)
	counters := make(map[string]int64, len(cnames))
	for _, n := range cnames {
		counters[n] = r.counters[n].Value()
	}
	gauges := make(map[string]int64, len(gnames))
	for _, n := range gnames {
		gauges[n] = r.gauges[n].Value()
	}
	hists := make(map[string]HistogramSnapshot, len(hnames))
	for _, n := range hnames {
		hists[n] = r.hists[n].Snapshot()
	}
	r.mu.RUnlock()

	for _, n := range cnames {
		fmt.Fprintf(w, "counter  %-32s %d\n", n, counters[n])
	}
	for _, n := range gnames {
		fmt.Fprintf(w, "gauge    %-32s %d\n", n, gauges[n])
	}
	for _, n := range hnames {
		s := hists[n]
		fmt.Fprintf(w, "hist     %-32s n=%d mean=%v p50=%v p99=%v min=%v max=%v\n",
			n, s.N, s.Mean(), s.Quantile(0.50), s.Quantile(0.99), s.Min, s.Max)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
