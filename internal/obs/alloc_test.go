package obs

import (
	"testing"
	"time"
)

// raceEnabled is set by race_on_test.go when the race detector is
// compiled in; its instrumentation allocates, so allocation-count gates
// skip under -race.
var raceEnabled bool

// recordSite mirrors the shape of every instrumentation site in the
// simulator: a component holds an optional Recorder and guards each record
// call with one nil check. go:noinline keeps the call shape honest — the
// compiler must evaluate the arguments exactly as a real site would.
//
//go:noinline
func recordSite(rec Recorder, rank int, now time.Duration) {
	if rec == nil {
		return
	}
	rec.Span(rank, TrackFabricTx, CatFabric, "fabric:inject", now, now+time.Microsecond, 256)
	rec.Instant(rank, TrackFabricRx, CatFabric, "fabric:deliver", now, 256)
	rec.Flow(rank, TrackFabricTx, CatFabric, "flow:msg", 's', now, 12345)
	rec.Latency("fabric_queue_residency", time.Microsecond)
	rec.Count("fabric_messages", 1)
}

// TestNilRecorderZeroAlloc is the allocation-regression gate of
// scripts/ci.sh for the uninstrumented configuration: with a nil Recorder,
// an instrumentation site must cost one compare-and-jump and zero heap
// allocations (the package doc's contract).
func TestNilRecorderZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	var rec Recorder // nil: observability disabled
	allocs := testing.AllocsPerRun(1000, func() {
		recordSite(rec, 3, 5*time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("nil-Recorder record site allocates %.2f/call, want 0", allocs)
	}
}

// TestNilHalvesCollectorZeroAlloc extends the gate to the half-disabled
// Collector shapes the CLI builds: a Collector with a nil Tracer must not
// allocate on timeline calls, and one with a nil Registry must not allocate
// on metric calls.
func TestNilHalvesCollectorZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	var rec Recorder = &Collector{} // both halves nil: records nothing
	allocs := testing.AllocsPerRun(1000, func() {
		recordSite(rec, 3, 5*time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("nil-halves Collector record site allocates %.2f/call, want 0", allocs)
	}
}
