package tagaspi_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/tagaspi"
	"repro/internal/tasking"
)

// Under a transient GASPI drop rate, TAGASPI's retry policy must repair
// the errored queues and resubmit until every write+notify lands: the
// receiver sees all notifications and intact data, and the retry counter
// is nonzero.
func TestRetryRecoversFromTransientDrops(t *testing.T) {
	const (
		ops   = 16
		chunk = 32
	)
	cfg := hybridConfig(2)
	cfg.Seed = 1
	cfg.Faults = fabric.FaultPlan{GASPI: fabric.FaultRates{Drop: 0.5}}
	libs := make([]*tagaspi.Library, 2)
	bad := make(chan string, ops+1)
	res := cluster.Run(cfg, func(env *cluster.Env) {
		libs[env.Rank] = env.TAGASPI
		seg := mustSeg(env, 0, ops*chunk)
		switch env.Rank {
		case 0:
			for i := range seg.Bytes() {
				seg.Bytes()[i] = byte(i % 251)
			}
			for i := 0; i < ops; i++ {
				i := i
				env.RT.Submit(func(tk *tasking.Task) {
					must(env.TAGASPI.WriteNotify(tk, 0, i*chunk, 1, 0, i*chunk, chunk,
						tagaspi.NotificationID(i), int64(i+1), i%env.GASPI.Queues()))
				}, tasking.WithDeps(tasking.In(seg, i*chunk, (i+1)*chunk)))
			}
		case 1:
			vals := make([]int64, ops)
			outs := make([]*int64, ops)
			for i := range outs {
				outs[i] = &vals[i]
			}
			env.RT.Submit(func(tk *tasking.Task) {
				env.TAGASPI.NotifyIwaitAll(tk, 0, 0, ops, outs)
			}, tasking.WithDeps(tasking.Out(seg, 0, ops*chunk)))
			env.RT.Submit(func(tk *tasking.Task) {
				for i := 0; i < ops; i++ {
					if vals[i] != int64(i+1) {
						bad <- "notification value mismatch"
						return
					}
				}
				for i, b := range seg.Bytes() {
					if b != byte(i%251) {
						bad <- "payload corrupted"
						return
					}
				}
			}, tasking.WithDeps(tasking.In(seg, 0, ops*chunk)))
		}
	})
	close(bad)
	for msg := range bad {
		t.Error(msg)
	}
	if got := libs[0].Retries(); got == 0 {
		t.Error("Drop=0.5 over 16 operations triggered no retries")
	}
	if got := libs[0].GaveUp(); got != 0 {
		t.Errorf("GaveUp = %d, want 0 (transient faults must not exhaust %d attempts)",
			got, tagaspi.DefaultMaxAttempts)
	}
	if res.Fabric.Faults == 0 {
		t.Error("fabric recorded no injected faults")
	}
	// The per-rank retry counters surface in the job snapshots.
	found := false
	for _, s := range res.Snapshots {
		if s.Component != "tagaspi" || s.Rank != 0 {
			continue
		}
		for _, smp := range s.Samples {
			if smp.Name == "tagaspi_retries" && smp.Value > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no tagaspi snapshot with tagaspi_retries > 0 in Result.Snapshots")
	}
}

// When the fault is permanent, the retry budget must run out and the task's
// events must still be released — the job degrades (the notification never
// arrives at the peer) instead of deadlocking in TaskWait.
func TestRetryGivesUpGracefully(t *testing.T) {
	cfg := hybridConfig(2)
	cfg.Seed = 1
	cfg.Faults = fabric.FaultPlan{GASPI: fabric.FaultRates{Drop: 1}}
	libs := make([]*tagaspi.Library, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		cluster.Run(cfg, func(env *cluster.Env) {
			libs[env.Rank] = env.TAGASPI
			env.TAGASPI.SetRetryPolicy(3, 5*time.Microsecond)
			mustSeg(env, 0, 64)
			if env.Rank != 0 {
				return // the peer must not wait for a notification that never lands
			}
			env.RT.Submit(func(tk *tasking.Task) {
				must(env.TAGASPI.Notify(tk, 1, 0, 0, 1, 0))
			})
		})
	}()
	select {
	case <-done:
	//lint:ignore detlint host-side deadlock watchdog: this timer guards the test harness, not modelled behaviour
	case <-time.After(30 * time.Second):
		t.Fatal("job deadlocked: give-up did not release the task's events")
	}
	if got := libs[0].GaveUp(); got != 1 {
		t.Errorf("GaveUp = %d, want 1", got)
	}
	if got := libs[0].Retries(); got != 2 {
		t.Errorf("Retries = %d, want 2 (attempts 2 and 3 of a 3-attempt budget)", got)
	}
}
