// Package tagaspi implements the Task-Aware GASPI library — the paper's
// primary contribution (§IV). It lets tasks issue fine-grained one-sided
// operations and asynchronously wait for remote notifications, binding the
// local completion of RMA operations and the arrival of notifications to
// the calling task's event counters. The task keeps running and may finish
// its body at any time, but it does not complete — and does not release its
// data dependencies — until every bound operation finalises (Figure 1).
//
// The implementation mirrors §IV-D:
//
//   - RMA operations are posted through the extended GASPI interface
//     (gaspi_operation_submit) with the task's event counter as the
//     operation tag; a write+notify accounts for two low-level requests.
//   - A transparent polling task drains each queue's completed requests
//     with gaspi_request_wait (non-blocking) and decrements the event
//     counters codified in the returned tags.
//   - Pending notification waits are staged on a multi-producer queue and
//     drained by the polling task into a private list; each pass checks
//     arrival with a non-blocking notify-reset, stores the notified value
//     through the user's pointer, and fulfils the task event.
//
// The standard gaspi_wait is obsoleted: TAGASPI checks local completion of
// task-aware operations internally, so applications only decide which
// queue to post each operation on.
package tagaspi

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gaspisim"
	"repro/internal/obs"
	"repro/internal/tasking"
)

// Re-exported identifier types for caller convenience.
type (
	// SegmentID identifies a GASPI segment.
	SegmentID = gaspisim.SegmentID
	// NotificationID identifies a notification slot within a segment.
	NotificationID = gaspisim.NotificationID
	// Rank identifies a process.
	Rank = gaspisim.Rank
)

// Library is the per-rank TAGASPI instance.
type Library struct {
	p   *gaspisim.Proc
	rt  *tasking.Runtime
	svc *core.Service
	rec obs.Recorder // nil unless instrumented

	pending core.Pending[*notifWait] // staged notification waits (§IV-D)
	waiting []*notifWait             // the polling task's private list

	// Retry policy (DESIGN.md §9): operations that fail — the queue enters
	// the GASPI error state and their completions come back failed — are
	// repaired and resubmitted with bounded exponential backoff. Only the
	// polling task touches retryQ and the pendingOp records.
	retryQ      []*pendingOp
	maxAttempts int
	backoff     time.Duration

	outstanding atomic.Int64 // pending notification waits, for observers
	retries     atomic.Int64 // resubmissions performed
	gaveup      atomic.Int64 // operations abandoned after maxAttempts
}

// notifWait is one pending tagaspi_notify_iwait registration.
type notifWait struct {
	seg     SegmentID
	id      NotificationID
	out     *int64
	counter *tasking.EventCounter
}

// pendingOp is the operation tag TAGASPI posts with every submission: the
// bound task's event counter plus everything needed to resubmit the
// operation if it fails. All mutable fields are owned by the polling task;
// the queue's completion list is the only handoff point.
//
// Records are pooled: a pendingOp is recycled once no completion can
// reference it again — when all nreq requests completed successfully, or
// when the operation is abandoned after its final all-failed attempt. An
// attempt that fails only partially (the fault plane never produces this)
// is leaked to the GC rather than double-released.
//
//tagalint:pooled
type pendingOp struct {
	op       gaspisim.Operation    // as submitted, Tag pointing back at this record
	counter  *tasking.EventCounter // the task's event counter
	nreq     int                   // low-level requests per submission (2 for write+notify)
	oks      int                   // successful completions seen in total
	fails    int                   // failed completions seen this attempt
	attempts int                   // failed attempts so far
	failAt   time.Duration         // modelled time the current attempt failed
	dueAt    time.Duration         // modelled time of the next resubmission
}

var pendingOpPool = sync.Pool{New: func() any { return new(pendingOp) }}

// newPendingOp returns a zeroed record from the pool.
//
//tagalint:hotpath
func newPendingOp() *pendingOp { return pendingOpPool.Get().(*pendingOp) }

// putPendingOp zeroes po and returns it to the pool.
//
//tagalint:pooled release
//tagalint:hotpath
func putPendingOp(po *pendingOp) {
	*po = pendingOp{}
	pendingOpPool.Put(po)
}

var notifWaitPool = sync.Pool{New: func() any { return new(notifWait) }}

// DefaultPollInterval is the polling period used when none is configured.
const DefaultPollInterval = 150 * time.Microsecond

// DefaultMaxAttempts is how many times an operation is submitted before
// TAGASPI gives up and fails the task's events (graceful degradation).
const DefaultMaxAttempts = 16

// DefaultRetryBackoff is the base resubmission delay; attempt n waits
// base << (n-1), capped at 10 doublings.
const DefaultRetryBackoff = 20 * time.Microsecond

// maxRequestsPerPass bounds one gaspi_request_wait drain (MAX_REQS in the
// paper's Figure 7).
const maxRequestsPerPass = 64

// maxBackoffShift caps the exponential backoff at base << 10.
const maxBackoffShift = 10

// New initialises TAGASPI for one rank (tagaspi_proc_init) and spawns its
// polling task. A non-positive interval dedicates the polling task.
func New(p *gaspisim.Proc, rt *tasking.Runtime, interval time.Duration) *Library {
	l := &Library{p: p, rt: rt, maxAttempts: DefaultMaxAttempts, backoff: DefaultRetryBackoff}
	l.svc = core.StartService(rt, "tagaspi-poll", interval, l.poll)
	return l
}

// SetRecorder installs an observability recorder; nil disables recording.
// Call before issuing operations.
func (l *Library) SetRecorder(rec obs.Recorder) { l.rec = rec }

// SetRetryPolicy overrides the retry policy: an operation is submitted at
// most maxAttempts times, with base << (attempt-1) backoff between
// attempts. Non-positive arguments keep the current values.
func (l *Library) SetRetryPolicy(maxAttempts int, base time.Duration) {
	if maxAttempts > 0 {
		l.maxAttempts = maxAttempts
	}
	if base > 0 {
		l.backoff = base
	}
}

// Service exposes the polling service (interval tuning, statistics).
func (l *Library) Service() *core.Service { return l.svc }

// Proc returns the underlying GASPI process.
func (l *Library) Proc() *gaspisim.Proc { return l.p }

// WriteNotify issues a task-aware write+notify (tagaspi_write_notify):
// size bytes from the local segment are written into the remote segment,
// followed by a notification with the given id and value. The function
// returns immediately, binding the calling task's completion to the local
// finalisation of the operation; the source range must be declared as an
// (at least) input dependency of the task and may only be reused by
// successor tasks.
func (l *Library) WriteNotify(t *tasking.Task, localSeg SegmentID, localOff int,
	remote Rank, remoteSeg SegmentID, remoteOff, size int,
	id NotificationID, value int64, queue int) error {
	// write + notify low-level requests (Figure 7)
	return l.submit(t, gaspisim.Operation{
		Type:     gaspisim.OpWriteNotify,
		LocalSeg: localSeg, LocalOff: localOff,
		Remote: remote, RemoteSeg: remoteSeg, RemoteOff: remoteOff, Size: size,
		NotifyID: id, NotifyVal: value, Queue: queue,
	}, 2)
}

// Write issues a task-aware plain write (tagaspi_write).
func (l *Library) Write(t *tasking.Task, localSeg SegmentID, localOff int,
	remote Rank, remoteSeg SegmentID, remoteOff, size, queue int) error {
	return l.submit(t, gaspisim.Operation{
		Type:     gaspisim.OpWrite,
		LocalSeg: localSeg, LocalOff: localOff,
		Remote: remote, RemoteSeg: remoteSeg, RemoteOff: remoteOff, Size: size,
		Queue: queue,
	}, 1)
}

// Read issues a task-aware one-sided read (tagaspi_read): the local range
// must be declared as an output dependency; successor tasks consume the
// data once this task completes.
func (l *Library) Read(t *tasking.Task, localSeg SegmentID, localOff int,
	remote Rank, remoteSeg SegmentID, remoteOff, size, queue int) error {
	return l.submit(t, gaspisim.Operation{
		Type:     gaspisim.OpRead,
		LocalSeg: localSeg, LocalOff: localOff,
		Remote: remote, RemoteSeg: remoteSeg, RemoteOff: remoteOff, Size: size,
		Queue: queue,
	}, 1)
}

// Notify issues a task-aware pure notification (tagaspi_notify), e.g. the
// ack a consumer sends right after unpacking a chunk (§IV-B).
func (l *Library) Notify(t *tasking.Task, remote Rank, remoteSeg SegmentID,
	id NotificationID, value int64, queue int) error {
	return l.submit(t, gaspisim.Operation{
		Type:   gaspisim.OpNotify,
		Remote: remote, RemoteSeg: remoteSeg,
		NotifyID: id, NotifyVal: value, Queue: queue,
	}, 1)
}

// submit binds op to the calling task's event counter and posts it with a
// pendingOp tag so the polling task can retire it on success or retry it on
// failure. nreq is the number of low-level requests the submission spawns.
//
//tagalint:hotpath
func (l *Library) submit(t *tasking.Task, op gaspisim.Operation, nreq int) error {
	c := t.Events()
	c.Increase(nreq)
	po := newPendingOp()
	po.op, po.counter, po.nreq = op, c, nreq
	po.op.Tag = po
	if err := l.p.Submit(po.op); err != nil {
		// An error return means nothing was posted (fast-fails on an errored
		// queue surface as failed completions instead), so no completion can
		// still reference po.
		c.Decrease(nreq)
		putPendingOp(po)
		return err
	}
	return nil
}

// NotifyIwait asynchronously waits for the arrival of one notification
// (tagaspi_notify_iwait). If the notification already arrived it consumes
// it immediately and registers no event; otherwise the calling task's
// completion — or, from an onready callback, its execution (§V-A) — is
// delayed until the notification arrives. The notified value is stored
// through out (if non-nil) upon arrival.
func (l *Library) NotifyIwait(t *tasking.Task, seg SegmentID, id NotificationID, out *int64) {
	if v, ok := l.p.NotifyReset(seg, id); ok {
		if out != nil {
			*out = v
		}
		return
	}
	c := t.Events()
	c.Increase(1)
	l.outstanding.Add(1)
	w := notifWaitPool.Get().(*notifWait)
	w.seg, w.id, w.out, w.counter = seg, id, out, c
	l.pending.Push(w)
}

// NotifyIwaitAll asynchronously waits for a consecutive range of
// notifications [begin, begin+num) (tagaspi_notify_iwaitall). Values are
// stored through outs[i] when non-nil (len(outs) must be num or zero).
func (l *Library) NotifyIwaitAll(t *tasking.Task, seg SegmentID,
	begin NotificationID, num int, outs []*int64) {
	for i := 0; i < num; i++ {
		var out *int64
		if len(outs) > 0 {
			out = outs[i]
		}
		l.NotifyIwait(t, seg, begin+NotificationID(i), out)
	}
}

// poll is one pass of the transparent polling task (Figure 7): resubmit
// failed operations whose backoff expired, drain every queue's completed
// low-level requests, then check the pending notification list.
//
//tagalint:hotpath
func (l *Library) poll() int {
	retired := l.resubmitDue()
	for q := 0; q < l.p.Queues(); q++ {
		for {
			comp := l.p.RequestWait(q, maxRequestsPerPass, gaspisim.Test)
			for _, r := range comp {
				po := r.Tag.(*pendingOp)
				if r.OK {
					po.counter.Decrease(1)
					retired++
					po.oks++
					if po.oks == po.nreq { // fully retired; no completion left
						putPendingOp(po)
					}
					continue
				}
				po.fails++
				if po.fails == po.nreq { // all requests of this attempt failed
					retired += l.opFailed(po)
				}
			}
			if len(comp) < maxRequestsPerPass {
				break
			}
		}
	}
	// Drain freshly staged waits into the private list, then scan it.
	l.waiting = l.pending.Drain(l.waiting)
	keep := l.waiting[:0]
	for _, w := range l.waiting {
		if v, ok := l.p.NotifyReset(w.seg, w.id); ok {
			if w.out != nil {
				*w.out = v
			}
			w.counter.Decrease(1)
			l.outstanding.Add(-1)
			retired++
			*w = notifWait{}
			notifWaitPool.Put(w)
		} else {
			keep = append(keep, w)
		}
	}
	for i := len(keep); i < len(l.waiting); i++ {
		l.waiting[i] = nil
	}
	l.waiting = keep
	return retired
}

// opFailed handles one fully failed attempt: either schedule a backed-off
// resubmission or, past maxAttempts, abandon the operation and release the
// task's events so the application degrades instead of deadlocking. Returns
// the number of task events retired (nonzero only on abandonment).
func (l *Library) opFailed(po *pendingOp) int {
	po.fails = 0
	po.attempts++
	if po.attempts >= l.maxAttempts {
		nreq := po.nreq
		po.counter.Decrease(nreq)
		putPendingOp(po) // final attempt fully failed; no completion left
		l.gaveup.Add(1)
		if l.rec != nil {
			l.rec.Count("tagaspi_gaveup", 1)
		}
		return nreq
	}
	shift := po.attempts - 1
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	po.failAt = l.p.Clock().Now()
	po.dueAt = po.failAt + l.backoff<<shift
	l.retryQ = append(l.retryQ, po)
	return 0
}

// resubmitDue re-posts every queued retry whose backoff expired, repairing
// the target queue first if it is still in the error state.
func (l *Library) resubmitDue() int {
	if len(l.retryQ) == 0 {
		return 0
	}
	now := l.p.Clock().Now()
	keep := l.retryQ[:0]
	resubmitted := 0
	for _, po := range l.retryQ {
		if po.dueAt > now {
			keep = append(keep, po)
			continue
		}
		if l.p.QueueState(po.op.Queue) == gaspisim.QueueError {
			l.p.QueueRepair(po.op.Queue)
		}
		l.retries.Add(1)
		if l.rec != nil {
			l.rec.Count("tagaspi_retries", 1)
			// Retry/backoff blame span: the interval the operation spent
			// failed and backed off before this resubmission (DESIGN.md §10).
			l.rec.Span(int(l.p.Rank()), obs.QueueTrack(po.op.Queue), obs.CatGaspi,
				"tagaspi:retry", po.failAt, now, int64(po.attempts))
		}
		if err := l.p.Submit(po.op); err != nil {
			// Submission errors are programming errors caught on first
			// post; a resubmission cannot produce a new one.
			panic(err)
		}
		resubmitted++
	}
	for i := len(keep); i < len(l.retryQ); i++ {
		l.retryQ[i] = nil
	}
	l.retryQ = keep
	return resubmitted
}

// PendingNotifications reports how many notification waits are outstanding
// (staged plus in the poller's private list).
func (l *Library) PendingNotifications() int {
	return int(l.outstanding.Load())
}

// Retries reports how many operation resubmissions this rank performed.
func (l *Library) Retries() int64 { return l.retries.Load() }

// GaveUp reports how many operations were abandoned after exhausting the
// retry budget.
func (l *Library) GaveUp() int64 { return l.gaveup.Load() }

// Snapshot implements obs.Snapshotter with the retry-policy counters.
func (l *Library) Snapshot() obs.Snapshot {
	return obs.Snapshot{
		Component: "tagaspi",
		Rank:      int(l.p.Rank()),
		Samples: []obs.Sample{
			{Name: "tagaspi_retries", Value: float64(l.retries.Load())},
			{Name: "tagaspi_gaveup", Value: float64(l.gaveup.Load())},
			{Name: "tagaspi_pending_notifications", Value: float64(l.outstanding.Load())},
		},
	}
}

// Reset clears the retry-policy counters (outstanding notification waits
// are operational state and survive).
func (l *Library) Reset() {
	l.retries.Store(0)
	l.gaveup.Store(0)
}
