// Package tagaspi implements the Task-Aware GASPI library — the paper's
// primary contribution (§IV). It lets tasks issue fine-grained one-sided
// operations and asynchronously wait for remote notifications, binding the
// local completion of RMA operations and the arrival of notifications to
// the calling task's event counters. The task keeps running and may finish
// its body at any time, but it does not complete — and does not release its
// data dependencies — until every bound operation finalises (Figure 1).
//
// The implementation mirrors §IV-D:
//
//   - RMA operations are posted through the extended GASPI interface
//     (gaspi_operation_submit) with the task's event counter as the
//     operation tag; a write+notify accounts for two low-level requests.
//   - A transparent polling task drains each queue's completed requests
//     with gaspi_request_wait (non-blocking) and decrements the event
//     counters codified in the returned tags.
//   - Pending notification waits are staged on a multi-producer queue and
//     drained by the polling task into a private list; each pass checks
//     arrival with a non-blocking notify-reset, stores the notified value
//     through the user's pointer, and fulfils the task event.
//
// The standard gaspi_wait is obsoleted: TAGASPI checks local completion of
// task-aware operations internally, so applications only decide which
// queue to post each operation on.
package tagaspi

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gaspisim"
	"repro/internal/tasking"
)

// Re-exported identifier types for caller convenience.
type (
	// SegmentID identifies a GASPI segment.
	SegmentID = gaspisim.SegmentID
	// NotificationID identifies a notification slot within a segment.
	NotificationID = gaspisim.NotificationID
	// Rank identifies a process.
	Rank = gaspisim.Rank
)

// Library is the per-rank TAGASPI instance.
type Library struct {
	p   *gaspisim.Proc
	rt  *tasking.Runtime
	svc *core.Service

	pending core.Pending[*notifWait] // staged notification waits (§IV-D)
	waiting []*notifWait             // the polling task's private list

	outstanding atomic.Int64 // pending notification waits, for observers
}

// notifWait is one pending tagaspi_notify_iwait registration.
type notifWait struct {
	seg     SegmentID
	id      NotificationID
	out     *int64
	counter *tasking.EventCounter
}

// DefaultPollInterval is the polling period used when none is configured.
const DefaultPollInterval = 150 * time.Microsecond

// maxRequestsPerPass bounds one gaspi_request_wait drain (MAX_REQS in the
// paper's Figure 7).
const maxRequestsPerPass = 64

// New initialises TAGASPI for one rank (tagaspi_proc_init) and spawns its
// polling task. A non-positive interval dedicates the polling task.
func New(p *gaspisim.Proc, rt *tasking.Runtime, interval time.Duration) *Library {
	l := &Library{p: p, rt: rt}
	l.svc = core.StartService(rt, "tagaspi-poll", interval, l.poll)
	return l
}

// Service exposes the polling service (interval tuning, statistics).
func (l *Library) Service() *core.Service { return l.svc }

// Proc returns the underlying GASPI process.
func (l *Library) Proc() *gaspisim.Proc { return l.p }

// WriteNotify issues a task-aware write+notify (tagaspi_write_notify):
// size bytes from the local segment are written into the remote segment,
// followed by a notification with the given id and value. The function
// returns immediately, binding the calling task's completion to the local
// finalisation of the operation; the source range must be declared as an
// (at least) input dependency of the task and may only be reused by
// successor tasks.
func (l *Library) WriteNotify(t *tasking.Task, localSeg SegmentID, localOff int,
	remote Rank, remoteSeg SegmentID, remoteOff, size int,
	id NotificationID, value int64, queue int) error {
	c := t.Events()
	c.Increase(2) // write + notify low-level requests (Figure 7)
	if err := l.p.Submit(gaspisim.Operation{
		Type: gaspisim.OpWriteNotify, Tag: c,
		LocalSeg: localSeg, LocalOff: localOff,
		Remote: remote, RemoteSeg: remoteSeg, RemoteOff: remoteOff, Size: size,
		NotifyID: id, NotifyVal: value, Queue: queue,
	}); err != nil {
		c.Decrease(2)
		return err
	}
	return nil
}

// Write issues a task-aware plain write (tagaspi_write).
func (l *Library) Write(t *tasking.Task, localSeg SegmentID, localOff int,
	remote Rank, remoteSeg SegmentID, remoteOff, size, queue int) error {
	c := t.Events()
	c.Increase(1)
	if err := l.p.Submit(gaspisim.Operation{
		Type: gaspisim.OpWrite, Tag: c,
		LocalSeg: localSeg, LocalOff: localOff,
		Remote: remote, RemoteSeg: remoteSeg, RemoteOff: remoteOff, Size: size,
		Queue: queue,
	}); err != nil {
		c.Decrease(1)
		return err
	}
	return nil
}

// Read issues a task-aware one-sided read (tagaspi_read): the local range
// must be declared as an output dependency; successor tasks consume the
// data once this task completes.
func (l *Library) Read(t *tasking.Task, localSeg SegmentID, localOff int,
	remote Rank, remoteSeg SegmentID, remoteOff, size, queue int) error {
	c := t.Events()
	c.Increase(1)
	if err := l.p.Submit(gaspisim.Operation{
		Type: gaspisim.OpRead, Tag: c,
		LocalSeg: localSeg, LocalOff: localOff,
		Remote: remote, RemoteSeg: remoteSeg, RemoteOff: remoteOff, Size: size,
		Queue: queue,
	}); err != nil {
		c.Decrease(1)
		return err
	}
	return nil
}

// Notify issues a task-aware pure notification (tagaspi_notify), e.g. the
// ack a consumer sends right after unpacking a chunk (§IV-B).
func (l *Library) Notify(t *tasking.Task, remote Rank, remoteSeg SegmentID,
	id NotificationID, value int64, queue int) error {
	c := t.Events()
	c.Increase(1)
	if err := l.p.Submit(gaspisim.Operation{
		Type: gaspisim.OpNotify, Tag: c,
		Remote: remote, RemoteSeg: remoteSeg,
		NotifyID: id, NotifyVal: value, Queue: queue,
	}); err != nil {
		c.Decrease(1)
		return err
	}
	return nil
}

// NotifyIwait asynchronously waits for the arrival of one notification
// (tagaspi_notify_iwait). If the notification already arrived it consumes
// it immediately and registers no event; otherwise the calling task's
// completion — or, from an onready callback, its execution (§V-A) — is
// delayed until the notification arrives. The notified value is stored
// through out (if non-nil) upon arrival.
func (l *Library) NotifyIwait(t *tasking.Task, seg SegmentID, id NotificationID, out *int64) {
	if v, ok := l.p.NotifyReset(seg, id); ok {
		if out != nil {
			*out = v
		}
		return
	}
	c := t.Events()
	c.Increase(1)
	l.outstanding.Add(1)
	l.pending.Push(&notifWait{seg: seg, id: id, out: out, counter: c})
}

// NotifyIwaitAll asynchronously waits for a consecutive range of
// notifications [begin, begin+num) (tagaspi_notify_iwaitall). Values are
// stored through outs[i] when non-nil (len(outs) must be num or zero).
func (l *Library) NotifyIwaitAll(t *tasking.Task, seg SegmentID,
	begin NotificationID, num int, outs []*int64) {
	for i := 0; i < num; i++ {
		var out *int64
		if len(outs) > 0 {
			out = outs[i]
		}
		l.NotifyIwait(t, seg, begin+NotificationID(i), out)
	}
}

// poll is one pass of the transparent polling task (Figure 7): drain every
// queue's completed low-level requests, then check the pending notification
// list.
func (l *Library) poll() int {
	retired := 0
	for q := 0; q < l.p.Queues(); q++ {
		for {
			comp := l.p.RequestWait(q, maxRequestsPerPass, gaspisim.Test)
			for _, r := range comp {
				r.Tag.(*tasking.EventCounter).Decrease(1)
				retired++
			}
			if len(comp) < maxRequestsPerPass {
				break
			}
		}
	}
	// Drain freshly staged waits into the private list, then scan it.
	l.waiting = l.pending.Drain(l.waiting)
	keep := l.waiting[:0]
	for _, w := range l.waiting {
		if v, ok := l.p.NotifyReset(w.seg, w.id); ok {
			if w.out != nil {
				*w.out = v
			}
			w.counter.Decrease(1)
			l.outstanding.Add(-1)
			retired++
		} else {
			keep = append(keep, w)
		}
	}
	for i := len(keep); i < len(l.waiting); i++ {
		l.waiting[i] = nil
	}
	l.waiting = keep
	return retired
}

// PendingNotifications reports how many notification waits are outstanding
// (staged plus in the poller's private list).
func (l *Library) PendingNotifications() int {
	return int(l.outstanding.Load())
}
