package tagaspi_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/gaspisim"
	"repro/internal/memory"
	"repro/internal/tagaspi"
	"repro/internal/tasking"
)

// must fails fast on simulator API errors in rank mains and task bodies,
// which run outside the test goroutine and have no *testing.T to report to.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// mustSeg is SegmentCreate with the error turned into a panic, followed by
// a barrier: gaspi_segment_create is a collective operation, so no rank may
// target a remote segment before every rank has registered it. The barrier
// matters under ProfileIdeal, where a zero-latency write+notify posted at
// t=0 would otherwise race the destination rank's registration within the
// same virtual instant.
func mustSeg(env *cluster.Env, id gaspisim.SegmentID, size int) *memory.Segment {
	seg, err := env.GASPI.SegmentCreate(id, size)
	must(err)
	env.MPI.Barrier()
	return seg
}

func hybridConfig(ranks int) cluster.Config {
	return cluster.Config{
		Nodes: ranks, RanksPerNode: 1, CoresPerRank: 4,
		Profile:     fabric.ProfileIdeal(),
		WithTasking: true, WithTAGASPI: true,
		TAGASPIPoll: 5 * time.Microsecond,
	}
}

// The Figures 3+4 flow: the sender task write+notifies from buffer A
// (declared in); the receiver task asynchronously waits the notification
// (buffer B and the notified flag declared out); the processing task
// consumes B once the receiver task's dependencies are released.
func TestWriteNotifyDataFlow(t *testing.T) {
	var processed atomic.Int64
	cluster.Run(hybridConfig(2), func(env *cluster.Env) {
		const N = 64
		seg := mustSeg(env, 0, N)
		switch env.Rank {
		case 0:
			for i := 0; i < N; i++ {
				seg.Bytes()[i] = byte(i)
			}
			env.RT.Submit(func(tk *tasking.Task) {
				// write data: A[0:N] is an input dependency (the source).
				must(env.TAGASPI.WriteNotify(tk, 0, 0, 1, 0, 0, N, 10, 1, 0))
				// A[0:N] cannot be reused here! (Figure 3)
			}, tasking.WithDeps(tasking.In(seg, 0, N)), tasking.WithLabel("write data"))
			env.RT.Submit(func(tk *tasking.Task) {
				// reuse: runs only after the write locally completed.
				for i := 0; i < N; i++ {
					seg.Bytes()[i] = 0xFF
				}
			}, tasking.WithDeps(tasking.InOut(seg, 0, N)), tasking.WithLabel("reuse"))
		case 1:
			var notified int64
			env.RT.Submit(func(tk *tasking.Task) {
				env.TAGASPI.NotifyIwait(tk, 0, 10, &notified)
			}, tasking.WithDeps(tasking.Out(seg, 0, N), tasking.OutVal(&notified)),
				tasking.WithLabel("wait data"))
			env.RT.Submit(func(tk *tasking.Task) {
				if notified != 1 {
					t.Errorf("notified = %d, want 1", notified)
				}
				ok := true
				for i := 0; i < N; i++ {
					if seg.Bytes()[i] != byte(i) {
						ok = false
					}
				}
				if ok {
					processed.Store(1)
				}
			}, tasking.WithDeps(tasking.In(seg, 0, N), tasking.InVal(&notified)),
				tasking.WithLabel("process"))
		}
	})
	if processed.Load() != 1 {
		t.Fatal("processing task did not observe the written data")
	}
}

// The task must not complete (and its source-buffer dependency must not be
// released) before the operation's local completion.
func TestLocalCompletionGatesReuse(t *testing.T) {
	prof := fabric.ProfileOmniPath()
	var writeLocalDone, reuseStart time.Duration
	cluster.Run(cluster.Config{
		Nodes: 2, RanksPerNode: 1, CoresPerRank: 2,
		Profile: prof, WithTasking: true, WithTAGASPI: true,
		TAGASPIPoll: 2 * time.Microsecond,
	}, func(env *cluster.Env) {
		const N = 1 << 20 // 1 MiB: injection takes measurable modelled time
		seg := mustSeg(env, 0, N)
		switch env.Rank {
		case 0:
			env.RT.Submit(func(tk *tasking.Task) {
				must(env.TAGASPI.WriteNotify(tk, 0, 0, 1, 0, 0, N, 0, 1, 0))
				writeLocalDone = env.Clk.Now() // body end; completion comes later
			}, tasking.WithDeps(tasking.In(seg, 0, N)))
			env.RT.Submit(func(tk *tasking.Task) {
				reuseStart = env.Clk.Now()
			}, tasking.WithDeps(tasking.InOut(seg, 0, N)))
		case 1:
			var v int64
			env.RT.Submit(func(tk *tasking.Task) {
				env.TAGASPI.NotifyIwait(tk, 0, 0, &v)
			}, tasking.WithDeps(tasking.Out(seg, 0, N)))
		}
	})
	// 1 MiB at 12 GB/s is ~87µs of injection: reuse must start after that,
	// strictly later than the instant the writer body returned.
	if reuseStart <= writeLocalDone {
		t.Fatalf("reuse at %v did not wait for local completion (body ended %v)",
			reuseStart, writeLocalDone)
	}
	if reuseStart < 80*time.Microsecond {
		t.Fatalf("reuse at %v, want >= ~87µs of injection time", reuseStart)
	}
}

// The Figure 5 pattern: iterative producer-consumer with an ack
// notification waited by an extra task.
func TestIterativeProducerConsumerWithAckTask(t *testing.T) {
	const iters = 8
	const N = 32
	var received atomic.Int64
	cluster.Run(hybridConfig(2), func(env *cluster.Env) {
		seg := mustSeg(env, 0, N)
		switch env.Rank {
		case 0:
			var ackNotified int64
			for i := 0; i < iters; i++ {
				i := i
				// wait ack (not needed on the very first iteration; the
				// receiver pre-seeds ack 20 once at start, as real codes do
				// by initialising the ack notification).
				env.RT.Submit(func(tk *tasking.Task) {
					env.TAGASPI.NotifyIwait(tk, 0, 20, &ackNotified)
				}, tasking.WithDeps(tasking.OutVal(&ackNotified)),
					tasking.WithLabel("wait ack"))
				// write data
				env.RT.Submit(func(tk *tasking.Task) {
					seg.Bytes()[0] = byte(i + 1)
					must(env.TAGASPI.WriteNotify(tk, 0, 0, 1, 0, 0, N, 10, int64(i+1), 0))
				}, tasking.WithDeps(tasking.In(seg, 0, N), tasking.InVal(&ackNotified)),
					tasking.WithLabel("write data"))
				// reuse
				env.RT.Submit(func(tk *tasking.Task) {
					seg.Bytes()[0] = 0
				}, tasking.WithDeps(tasking.InOut(seg, 0, N)), tasking.WithLabel("reuse"))
			}
		case 1:
			// Seed the first ack so the producer may write iteration 0.
			env.RT.Submit(func(tk *tasking.Task) {
				must(env.TAGASPI.Notify(tk, 0, 0, 20, 1, 0))
			}, tasking.WithLabel("seed ack"))
			var notified int64
			for i := 0; i < iters; i++ {
				i := i
				// wait data
				env.RT.Submit(func(tk *tasking.Task) {
					env.TAGASPI.NotifyIwait(tk, 0, 10, &notified)
				}, tasking.WithDeps(tasking.Out(seg, 0, N), tasking.OutVal(&notified)),
					tasking.WithLabel("wait data"))
				// process + send ack (the ack goes right after consumption,
				// inside the consumer task — the §IV-B optimal placement).
				env.RT.Submit(func(tk *tasking.Task) {
					if notified == int64(i+1) && seg.Bytes()[0] == byte(i+1) {
						received.Add(1)
					}
					must(env.TAGASPI.Notify(tk, 0, 0, 20, 1, 0))
				}, tasking.WithDeps(tasking.InOut(seg, 0, N), tasking.InVal(&notified)),
					tasking.WithLabel("process"))
			}
		}
	})
	if received.Load() != iters {
		t.Fatalf("received %d/%d iterations intact", received.Load(), iters)
	}
}

// The Figure 8 pattern: the ack wait moves into an onready callback on the
// writer task, eliminating the extra wait-ack task (§V-A).
func TestProducerConsumerWithOnready(t *testing.T) {
	const iters = 8
	const N = 32
	var received atomic.Int64
	cluster.Run(hybridConfig(2), func(env *cluster.Env) {
		seg := mustSeg(env, 0, N)
		switch env.Rank {
		case 0:
			for i := 0; i < iters; i++ {
				i := i
				env.RT.Submit(func(tk *tasking.Task) {
					seg.Bytes()[0] = byte(i + 1)
					must(env.TAGASPI.WriteNotify(tk, 0, 0, 1, 0, 0, N, 10, int64(i+1), 0))
				}, tasking.WithDeps(tasking.In(seg, 0, N)),
					tasking.WithOnReady(func(tk *tasking.Task) {
						// ack_iwait: delays execution until the ack arrives.
						env.TAGASPI.NotifyIwait(tk, 0, 20, nil)
					}),
					tasking.WithLabel("write data"))
				env.RT.Submit(func(tk *tasking.Task) {
					seg.Bytes()[0] = 0
				}, tasking.WithDeps(tasking.InOut(seg, 0, N)), tasking.WithLabel("reuse"))
			}
		case 1:
			env.RT.Submit(func(tk *tasking.Task) {
				must(env.TAGASPI.Notify(tk, 0, 0, 20, 1, 0))
			}, tasking.WithLabel("seed ack"))
			var notified int64
			for i := 0; i < iters; i++ {
				i := i
				env.RT.Submit(func(tk *tasking.Task) {
					env.TAGASPI.NotifyIwait(tk, 0, 10, &notified)
				}, tasking.WithDeps(tasking.Out(seg, 0, N), tasking.OutVal(&notified)),
					tasking.WithLabel("wait data"))
				env.RT.Submit(func(tk *tasking.Task) {
					if notified == int64(i+1) && seg.Bytes()[0] == byte(i+1) {
						received.Add(1)
					}
					must(env.TAGASPI.Notify(tk, 0, 0, 20, 1, 0))
				}, tasking.WithDeps(tasking.InOut(seg, 0, N), tasking.InVal(&notified)),
					tasking.WithLabel("process"))
			}
		}
	})
	if received.Load() != iters {
		t.Fatalf("received %d/%d iterations intact", received.Load(), iters)
	}
}

// tagaspi_read: the reader task declares the local buffer out; a successor
// consumes the data pulled from the remote rank.
func TestTaskAwareRead(t *testing.T) {
	var ok atomic.Bool
	cluster.Run(hybridConfig(2), func(env *cluster.Env) {
		const N = 16
		seg := mustSeg(env, 0, 2*N)
		switch env.Rank {
		case 0:
			// Expose data for the remote read, then signal readiness.
			for i := 0; i < N; i++ {
				seg.Bytes()[i] = byte(100 + i)
			}
			env.RT.Submit(func(tk *tasking.Task) {
				must(env.TAGASPI.Notify(tk, 1, 0, 5, 1, 0))
			})
		case 1:
			var ready int64
			env.RT.Submit(func(tk *tasking.Task) {
				env.TAGASPI.NotifyIwait(tk, 0, 5, &ready)
			}, tasking.WithDeps(tasking.OutVal(&ready)))
			env.RT.Submit(func(tk *tasking.Task) {
				must(env.TAGASPI.Read(tk, 0, N, 0, 0, 0, N, 0))
			}, tasking.WithDeps(tasking.InVal(&ready), tasking.Out(seg, N, 2*N)),
				tasking.WithLabel("read"))
			env.RT.Submit(func(tk *tasking.Task) {
				good := true
				for i := 0; i < N; i++ {
					if seg.Bytes()[N+i] != byte(100+i) {
						good = false
					}
				}
				ok.Store(good)
			}, tasking.WithDeps(tasking.In(seg, N, 2*N)), tasking.WithLabel("consume"))
		}
	})
	if !ok.Load() {
		t.Fatal("read data not visible to the consumer task")
	}
}

func TestNotifyIwaitAlreadyArrived(t *testing.T) {
	// If the notification arrived before notify_iwait, the call consumes it
	// immediately and registers no event (§IV-D).
	var value int64
	cluster.Run(hybridConfig(2), func(env *cluster.Env) {
		mustSeg(env, 0, 8)
		switch env.Rank {
		case 0:
			env.RT.Submit(func(tk *tasking.Task) {
				must(env.TAGASPI.Notify(tk, 1, 0, 0, 42, 0))
			})
		case 1:
			env.RT.Submit(func(tk *tasking.Task) {
				// Ensure arrival strictly first.
				tk.Compute(50 * time.Microsecond)
				for {
					if _, set := env.GASPI.NotifyTest(0, 0); set {
						break
					}
					tk.WaitFor(5 * time.Microsecond)
				}
				env.TAGASPI.NotifyIwait(tk, 0, 0, &value)
				if env.TAGASPI.PendingNotifications() != 0 {
					t.Error("already-arrived notification must not be staged")
				}
			})
		}
	})
	if value != 42 {
		t.Fatalf("value = %d, want 42", value)
	}
}

func TestNotifyIwaitAllRange(t *testing.T) {
	var sum atomic.Int64
	cluster.Run(hybridConfig(2), func(env *cluster.Env) {
		mustSeg(env, 0, 8)
		switch env.Rank {
		case 0:
			env.RT.Submit(func(tk *tasking.Task) {
				for i := 0; i < 4; i++ {
					must(env.TAGASPI.Notify(tk, 1, 0, tagaspi.NotificationID(i), int64(i+1), i%2))
				}
			})
		case 1:
			vals := make([]int64, 4)
			outs := make([]*int64, 4)
			for i := range outs {
				outs[i] = &vals[i]
			}
			flag := new(int)
			env.RT.Submit(func(tk *tasking.Task) {
				env.TAGASPI.NotifyIwaitAll(tk, 0, 0, 4, outs)
			}, tasking.WithDeps(tasking.OutVal(flag)))
			env.RT.Submit(func(tk *tasking.Task) {
				for _, v := range vals {
					sum.Add(v)
				}
			}, tasking.WithDeps(tasking.InVal(flag)))
		}
	})
	if sum.Load() != 1+2+3+4 {
		t.Fatalf("sum = %d, want 10", sum.Load())
	}
}

// TAGASPI and TAMPI in the same application (§III): one-sided for the data
// path, two-sided for a control exchange, in the same tasks.
func TestInteroperabilityWithTAMPI(t *testing.T) {
	var ok atomic.Bool
	cfg := hybridConfig(2)
	cfg.WithTAMPI = true
	cfg.TAMPIPoll = 5 * time.Microsecond
	cluster.Run(cfg, func(env *cluster.Env) {
		const N = 16
		seg := mustSeg(env, 0, N)
		switch env.Rank {
		case 0:
			for i := 0; i < N; i++ {
				seg.Bytes()[i] = byte(i)
			}
			env.RT.Submit(func(tk *tasking.Task) {
				// One task mixing both libraries' services.
				must(env.TAGASPI.WriteNotify(tk, 0, 0, 1, 0, 0, N, 0, 1, 0))
				env.TAMPI.Iwait(tk, env.MPI.Isend([]byte("meta"), 1, 0))
			}, tasking.WithDeps(tasking.In(seg, 0, N)))
		case 1:
			var notified int64
			meta := make([]byte, 4)
			env.RT.Submit(func(tk *tasking.Task) {
				env.TAGASPI.NotifyIwait(tk, 0, 0, &notified)
				env.TAMPI.Iwait(tk, env.MPI.Irecv(meta, 0, 0))
			}, tasking.WithDeps(tasking.Out(seg, 0, N), tasking.OutVal(&notified)))
			env.RT.Submit(func(tk *tasking.Task) {
				good := string(meta) == "meta"
				for i := 0; i < N; i++ {
					if seg.Bytes()[i] != byte(i) {
						good = false
					}
				}
				ok.Store(good)
			}, tasking.WithDeps(tasking.In(seg, 0, N), tasking.InVal(&notified)))
		}
	})
	if !ok.Load() {
		t.Fatal("mixed TAGASPI+TAMPI task flow failed")
	}
}
