// The task-aware TAGASPI backend: the same ring/tree schedule as the
// blocking backends, but every step is a task. A step task's *execution*
// is gated on its predecessor chunk's arrival through a
// tagaspi_notify_iwait external event registered in the task's onready
// hook — the polling service fulfils it when the notification lands, so
// no worker ever parks inside a collective wait. A step's write binds
// its *completion* to the task's events (tagaspi_write_notify), so the
// chain's dependency order doubles as local-completion order and the
// single send slot stays safe without gaspi_wait. This lifts the paper's
// §IV point-to-point integration idiom to whole collectives.

package collectives

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/gaspisim"
	"repro/internal/memory"
	"repro/internal/tasking"
)

// taStep is the per-step capture record of a task-aware collective
// chain: the comm, schedule coordinates and operand views one submitted
// task needs. Records recycle through stepPool — after a task body hands
// its record to releaseStep, nothing may touch it again.
//
//tagalint:pooled
type taStep struct {
	c     *Comm
	epoch int
	g     int // ring step index; broadcast tasks store the root here
	op    Op
	full  bool
	prev  int // ring-credit epoch step 0 awaits (-1: none)
	in    []float64
	work  []float64
	rsOut []float64
	// evVals captures the values of the step's notify_iwait
	// registrations, checked by the body against the expected epoch —
	// the task-aware half of consumeNotification's corruption tripwire.
	evVals []int64
}

// stepPool recycles taStep records across collectives; step submission is
// the task-aware send path's only allocation site, and with the pool warm
// it allocates nothing.
var stepPool = sync.Pool{New: func() any { return new(taStep) }}

// newStep draws a step record bound to the comm and epoch.
//
//tagalint:hotpath
func newStep(c *Comm, epoch, g int) *taStep {
	s := stepPool.Get().(*taStep)
	s.c, s.epoch, s.g, s.prev = c, epoch, g, -1
	return s
}

// releaseStep zeroes a spent record and returns it to the pool, keeping
// the value-capture scratch so its capacity survives recycling.
//
//tagalint:pooled release
//tagalint:hotpath
func releaseStep(s *taStep) {
	vals := s.evVals[:0]
	*s = taStep{}
	s.evVals = vals
	stepPool.Put(s)
}

// evSlots returns the step's value-capture array resized to n slots, each
// reset to -1 (no epoch) so a never-fulfilled registration cannot pass
// the epoch check by accident.
func (s *taStep) evSlots(n int) []int64 {
	if cap(s.evVals) < n {
		s.evVals = make([]int64, n)
	}
	s.evVals = s.evVals[:n]
	for i := range s.evVals {
		s.evVals[i] = -1
	}
	return s.evVals
}

// checkEvVal panics unless iwait slot i carries the expected epoch,
// mirroring consumeNotification: a flow-control bug on the task-aware
// path must fail loudly, not yield wrong floats.
func (s *taStep) checkEvVal(i, epoch int) {
	if v := s.evVals[i]; v != int64(epoch) {
		panic(fmt.Sprintf("collectives: task-aware iwait slot %d carries epoch %d, want %d — staging protocol violated", i, v, epoch))
	}
}

// taRing submits the task chain of one task-aware ring collective:
// steps+1 tasks serialised InOut on the comm's key, task g gated on
// arrival g-1 (task 0 on the previous same-parity ring epoch's
// consumption ack), the final task acknowledging consumption and copying
// the reduce-scatter result. The call returns after submission; results
// materialise when the chain completes.
func (c *Comm) taRing(epoch int, in, work, rsOut []float64, op Op, full bool) {
	steps := c.n - 1
	if full {
		steps = 2 * (c.n - 1)
	}
	parity := epoch & 1
	prev := c.lastRing[parity]
	c.lastRing[parity] = epoch
	for g := 0; g <= steps; g++ {
		s := newStep(c, epoch, g)
		s.op, s.full = op, full
		s.in, s.work, s.rsOut = in, work, rsOut
		if g == 0 {
			s.prev = prev
		}
		c.rt.Submit(func(t *tasking.Task) {
			s.ringRun(t)
			releaseStep(s)
		},
			tasking.WithDeps(tasking.InOutVal(c.key)),
			tasking.WithOnReady(s.ringOnReady),
			tasking.WithLabel("coll:step"))
	}
}

// ringOnReady registers the external events gating a ring step task:
// step 0 the ring-credit ack of the previous same-parity epoch, every
// later step the arrival notification of its predecessor chunk.
func (s *taStep) ringOnReady(t *tasking.Task) {
	vals := s.evSlots(1)
	if s.g == 0 {
		if s.prev >= 0 {
			s.c.tg.NotifyIwait(t, Seg, s.c.ringAckNid(s.prev), &vals[0])
		}
		return
	}
	s.c.tg.NotifyIwait(t, Seg, s.c.ringNid(s.epoch, s.g-1), &vals[0])
}

// ringRun is a ring step task's body: consume the predecessor arrival
// (already fulfilled — execution was gated on it), combine, and push this
// step's chunk; the final task closes the phase spans, acknowledges
// consumption to the left neighbour and lands the reduce-scatter result.
func (s *taStep) ringRun(t *tasking.Task) {
	c := s.c
	n, me := c.n, c.rank
	chunk := len(s.work) / n
	steps := n - 1
	if s.full {
		steps = 2 * (n - 1)
	}
	parity := s.epoch & 1
	chunkBytes := chunk * memory.F64Bytes
	segB := c.seg.Bytes()

	if s.g == 0 {
		if s.prev >= 0 {
			s.checkEvVal(0, s.prev) // the same-parity ring credit
		}
		c.taOpStart = c.clk.Now()
		c.taPhaseStart = c.taOpStart
		copy(s.work, s.in)
	} else {
		j := s.g - 1
		s.checkEvVal(0, s.epoch) // the predecessor chunk's arrival
		c.flowFinish(c.clk.Now(), stepFlowID(s.epoch, j, me))
		rc := ringRecvChunk(me, n, j)
		slot := segB[c.ringSlotOff(parity, j):]
		dst := s.work[rc*chunk : (rc+1)*chunk]
		if j < n-1 {
			combineF64(dst, slot, s.op)
		} else {
			copyF64(dst, slot)
		}
		if c.elemCost > 0 {
			t.Compute(c.elemCost * time.Duration(chunk))
		}
		if s.full && j == n-2 {
			c.span("coll:reduce_scatter", c.taPhaseStart, c.clk.Now(), int64(s.epoch))
			c.taPhaseStart = c.clk.Now()
		}
	}
	if s.g < steps {
		sc := ringSendChunk(me, n, s.g)
		right := gaspisim.Rank(mod(me+1, n))
		packF64(segB[c.sendOff():], s.work[sc*chunk:(sc+1)*chunk])
		c.flowStart(c.clk.Now(), stepFlowID(s.epoch, s.g, int(right)))
		must(c.tg.WriteNotify(t, Seg, c.sendOff(), right, Seg,
			c.ringSlotOff(parity, s.g), chunkBytes,
			c.ringNid(s.epoch, s.g), int64(s.epoch), c.queue))
		return
	}
	if s.full {
		c.span("coll:allgather", c.taPhaseStart, c.clk.Now(), int64(s.epoch))
		c.latency("coll.allreduce", c.clk.Now()-c.taOpStart)
	} else {
		c.span("coll:reduce_scatter", c.taPhaseStart, c.clk.Now(), int64(s.epoch))
		c.latency("coll.reduce_scatter", c.clk.Now()-c.taOpStart)
	}
	if s.rsOut != nil {
		copy(s.rsOut, c.ownedChunk(s.work))
	}
	must(c.tg.Notify(t, gaspisim.Rank(mod(me-1, n)), Seg,
		c.ringAckNid(s.epoch), int64(s.epoch), c.queue))
}

// taBcast submits the two-task chain of one task-aware broadcast: a
// credit task (grants this epoch's tree parent the rendezvous credit —
// running at all proves, by chain order, that every earlier payload
// landed in this rank's vector, so the buffer is free) and a payload
// task (gated on the parent's write_notify arrival plus the direct
// children's credits; forwards to the subtree and lands the vector) —
// the same per-edge rendezvous protocol as the blocking backend, safe
// under root changes between epochs.
func (c *Comm) taBcast(epoch int, buf []float64, root int) {
	cred := newStep(c, epoch, root)
	c.rt.Submit(func(t *tasking.Task) {
		cred.bcastCreditRun(t)
		releaseStep(cred)
	},
		tasking.WithDeps(tasking.InOutVal(c.key)),
		tasking.WithLabel("coll:bcast_credit"))

	pay := newStep(c, epoch, root)
	pay.in = buf
	c.rt.Submit(func(t *tasking.Task) {
		pay.bcastRun(t)
		releaseStep(pay)
	},
		tasking.WithDeps(tasking.InOutVal(c.key)),
		tasking.WithOnReady(pay.bcastOnReady),
		tasking.WithLabel("coll:bcast"))
}

// bcastCreditRun is the credit task's body: open the broadcast span and
// (non-root) grant this epoch's parent the rendezvous credit.
func (s *taStep) bcastCreditRun(t *tasking.Task) {
	c := s.c
	c.taOpStart = c.clk.Now()
	vr := mod(c.rank-s.g, c.n)
	if vr != 0 {
		parent := gaspisim.Rank(mod(treeParent(vr)+s.g, c.n))
		must(c.tg.Notify(t, parent, Seg,
			c.bcastCreditNid(s.epoch, treeChildIndex(vr, c.n)), int64(s.epoch), c.queue))
	}
}

// bcastOnReady gates the payload task on the parent's write_notify
// arrival (non-root) and on every direct child's rendezvous credit, all
// with value capture for the epoch tripwire.
func (s *taStep) bcastOnReady(t *tasking.Task) {
	c := s.c
	vr := mod(c.rank-s.g, c.n)
	kids := 0
	treeChildren(vr, c.n, func(_, _ int) { kids++ })
	vals := s.evSlots(1 + kids)
	if vr != 0 {
		c.tg.NotifyIwait(t, Seg, c.bcastPayloadNid(s.epoch), &vals[0])
	}
	treeChildren(vr, c.n, func(idx, _ int) {
		c.tg.NotifyIwait(t, Seg, c.bcastCreditNid(s.epoch, idx), &vals[1+idx])
	})
}

// bcastRun is the payload task's body: root packs its vector into the
// broadcast buffer, everyone forwards to their (credit-granting) subtree
// children, non-roots land the buffer into their vector, and the
// broadcast span closes.
func (s *taStep) bcastRun(t *tasking.Task) {
	c := s.c
	n, me, root := c.n, c.rank, s.g
	vr := mod(me-root, n)
	vecBytes := len(s.in) * memory.F64Bytes
	segB := c.seg.Bytes()
	pay := c.bcastPayloadNid(s.epoch)

	if vr == 0 {
		packF64(segB[c.bcastOff():], s.in)
	} else {
		s.checkEvVal(0, s.epoch) // the payload arrival
		c.flowFinish(c.clk.Now(), bcastFlowID(s.epoch, me))
	}
	treeChildren(vr, n, func(idx, child int) {
		s.checkEvVal(1+idx, s.epoch) // the child's rendezvous credit
		dst := mod(child+root, n)
		c.flowStart(c.clk.Now(), bcastFlowID(s.epoch, dst))
		must(c.tg.WriteNotify(t, Seg, c.bcastOff(), gaspisim.Rank(dst), Seg,
			c.bcastOff(), vecBytes, pay, int64(s.epoch), c.queue))
	})
	if vr != 0 {
		copyF64(s.in, segB[c.bcastOff():])
		if c.elemCost > 0 {
			t.Compute(c.elemCost * time.Duration(len(s.in)))
		}
	}
	c.span("coll:bcast", c.taOpStart, c.clk.Now(), int64(s.epoch))
	c.latency("coll.bcast", c.clk.Now()-c.taOpStart)
}
