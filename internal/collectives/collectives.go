// Package collectives implements the collective operations of the
// simulated cluster — ring allreduce (gaspi_allreduce / MPI_Allreduce),
// binomial-tree broadcast (MPI_Bcast) and ring reduce-scatter
// (MPI_Reduce_scatter_block) — over all three communication backends:
//
//   - blocking MPI: point-to-point rounds on reserved collective tags
//     drawn from the mpisim process-wide epoch allocator
//     (mpisim.CollectiveEpoch / mpisim.CollectiveTag), generalising the
//     ad-hoc binomial helpers mpisim ships (Barrier, Bcast, Allreduce);
//   - blocking GASPI: a segment-based ring where every phase step is one
//     gaspi_write_notify into the peer's staging slot, awaited with
//     gaspi_notify_waitsome (parking the rank);
//   - task-aware TAGASPI: the same ring schedule submitted as a chain of
//     tasks whose execution is gated by tagaspi_notify_iwait-registered
//     external events — notification arrival fulfils the event from the
//     polling service, so no worker ever parks in a collective wait
//     (the paper's §IV idiom lifted from point-to-point to collectives).
//
// All three backends run the identical communication schedule
// (schedule.go), so a given reduction combines values in the same order
// everywhere and results are bit-identical across backends — the
// cross-backend equivalence contract DESIGN.md §12 documents, along with
// the epoch/tag namespace rules and the flow control — ring consumption
// acks and broadcast rendezvous credits — that makes staging-slot reuse
// safe.
//
// Every rank must issue the same collective sequence on a Comm (the MPI
// ordering requirement); epochs, notification ids and reserved tags are
// all derived from that shared sequence without wire traffic.
package collectives

import (
	"fmt"
	"time"

	"repro/internal/gaspisim"
	"repro/internal/memory"
	"repro/internal/mpisim"
	"repro/internal/obs"
	"repro/internal/tagaspi"
	"repro/internal/tasking"
	"repro/internal/vclock"
)

// Seg is the reserved segment id of the collectives layer
// (gaspi_segment_id_t). The GASPI-backed comms create it at construction
// time; applications must not register it themselves — the dedicated
// segment is what keeps collective notification ids and staging offsets
// out of every application segment's namespace.
const Seg gaspisim.SegmentID = 0xC0

// Op combines two float64 values during a reduction; it is the simulator's
// rendering of MPI_Op / gaspi_operation_t, shared with mpisim's built-in
// collectives. It must be associative over the ring's combine order and
// identical on every rank.
type Op = mpisim.ReduceOp

// Reduction operators (MPI_SUM / MPI_MAX / MPI_MIN, gaspi_operation_t's
// GASPI_OP_SUM / GASPI_OP_MAX / GASPI_OP_MIN).
var (
	// Sum adds the two operands (MPI_SUM).
	Sum = mpisim.OpSum
	// Max keeps the larger operand (MPI_MAX).
	Max = mpisim.OpMax
	// Min keeps the smaller operand (MPI_MIN).
	Min = mpisim.OpMin
)

// backend discriminates the comm's driving library.
type backend int

const (
	backMPI backend = iota
	backGASPI
	backTAGASPI
)

var backendNames = []string{"mpi", "gaspi", "tagaspi"}

// Option customises a Comm at construction time.
type Option func(*Comm)

// WithQueue selects the GASPI queue the comm posts on (default 0);
// ignored by the MPI backend.
func WithQueue(q int) Option { return func(c *Comm) { c.queue = q } }

// WithRecorder installs the trace recorder collective phases are stamped
// through: phase spans on obs.TrackColl plus one "flow:coll" causal edge
// per ring step, so critpath blame can attribute collective time to
// notify_wait vs mpi_lock_wait per backend. A nil recorder (the default)
// keeps the comm uninstrumented.
func WithRecorder(rec obs.Recorder) Option { return func(c *Comm) { c.rec = rec } }

// WithElemCost sets the modelled compute cost per combined element (the
// local reduction arithmetic). Blocking backends sleep it on the rank
// main; the task-aware backend charges it to the combining task's core.
// Zero (the default) makes combines free.
func WithElemCost(d time.Duration) Option { return func(c *Comm) { c.elemCost = d } }

// Comm is a per-rank collectives communicator bound to one backend, the
// analogue of an MPI communicator (always world-sized here) plus a GASPI
// segment-and-notification namespace. Construct it with NewMPI, NewGASPI
// or NewTAGASPI; every rank must construct its comm with identical
// parameters and then issue identical collective sequences.
type Comm struct {
	rank, n  int
	maxElems int // largest vector any collective on this comm may carry
	chunkMax int // elems: largest ring chunk (maxElems/n)
	steps    int // ring staging slots per parity: 2*(n-1)

	queue    int
	elemCost time.Duration
	rec      obs.Recorder
	clk      vclock.Clock

	backend backend
	mpi     *mpisim.Proc
	g       *gaspisim.Proc
	seg     *memory.Segment
	tg      *tagaspi.Library
	rt      *tasking.Runtime

	// epoch counts the collectives issued on this comm; all ranks agree
	// on it by the ordering requirement, so it namespaces notification
	// ids, staging parities and flow-edge ids without wire traffic.
	epoch int
	// lastRing holds, per staging parity, the epoch of the last ring
	// collective whose consumption ack is still outstanding (-1: none).
	lastRing [2]int

	// key is the dependency object serialising the task-aware backend's
	// collective task chains (successive collectives on one comm are
	// ordered InOut on it).
	key *int

	// taOpStart / taPhaseStart carry phase-span timestamps between the
	// tasks of one task-aware collective; tasks on one comm are
	// serialised by key, so plain fields are race-free.
	taOpStart    time.Duration
	taPhaseStart time.Duration

	// Scratch buffers of the MPI backend (the one-sided backends stage
	// through the collective segment instead).
	sendBuf []byte
	recvBuf []byte
	// work is the full-length working vector of reduce-scatter calls.
	work []float64
}

// NewMPI builds the blocking-MPI communicator: collectives run as
// point-to-point rounds on reserved tags drawn from p's collective epoch
// allocator, so they can never collide with application tags (>= 0) nor
// with mpisim's own Barrier/Bcast/Allreduce epochs. maxElems bounds the
// vector length of any collective issued on the comm.
func NewMPI(p *mpisim.Proc, maxElems int, opts ...Option) *Comm {
	c := newComm(int(p.Rank()), p.Size(), maxElems)
	c.backend = backMPI
	c.mpi = p
	c.clk = p.Clock()
	c.sendBuf = make([]byte, c.chunkMax*memory.F64Bytes)
	c.recvBuf = make([]byte, max(c.chunkMax, maxElems)*memory.F64Bytes)
	c.work = make([]float64, maxElems)
	for _, o := range opts {
		o(c)
	}
	return c
}

// NewGASPI builds the blocking one-sided communicator: collectives run as
// gaspi_write_notify rings through the reserved collective segment (Seg),
// awaited with gaspi_notify_waitsome. The constructor is collective — it
// creates Seg on every rank with a size derived from maxElems, and every
// rank must pass the same maxElems or remote staging offsets would
// disagree. It fails if the application already registered Seg.
func NewGASPI(p *gaspisim.Proc, maxElems int, opts ...Option) (*Comm, error) {
	c := newComm(int(p.Rank()), p.Size(), maxElems)
	c.backend = backGASPI
	c.g = p
	c.clk = p.Clock()
	c.work = make([]float64, maxElems)
	seg, err := p.SegmentCreate(Seg, segSize(c.n, c.maxElems, c.chunkMax, c.steps))
	if err != nil {
		return nil, fmt.Errorf("collectives: reserved segment %d: %w", Seg, err)
	}
	c.seg = seg
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// NewTAGASPI builds the task-aware communicator: collectives are
// submitted as task chains on rt whose steps are gated by
// tagaspi_notify_iwait external events and whose writes bind local
// completion to task events — the §IV integration pattern, so no worker
// parks inside a collective. Calls return once the chain is submitted;
// results materialise when it completes (Drain, or successor tasks
// ordered behind the comm's collectives). Like NewGASPI it collectively
// creates the reserved segment Seg sized from maxElems.
func NewTAGASPI(l *tagaspi.Library, rt *tasking.Runtime, maxElems int, opts ...Option) (*Comm, error) {
	p := l.Proc()
	c, err := NewGASPI(p, maxElems, opts...)
	if err != nil {
		return nil, err
	}
	c.backend = backTAGASPI
	c.tg = l
	c.rt = rt
	return c, nil
}

// newComm builds the backend-independent core.
func newComm(rank, n, maxElems int) *Comm {
	if maxElems <= 0 {
		panic("collectives: maxElems must be positive")
	}
	c := &Comm{
		rank: rank, n: n, maxElems: maxElems,
		chunkMax: maxElems / n,
		steps:    2 * (n - 1),
		key:      new(int),
	}
	if c.chunkMax == 0 {
		c.chunkMax = 1
	}
	c.lastRing[0], c.lastRing[1] = -1, -1
	return c
}

// Rank returns the comm's rank within the world, as gaspi_proc_rank /
// MPI_Comm_rank report it.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size (gaspi_proc_num / MPI_Comm_size).
func (c *Comm) Size() int { return c.n }

// Allreduce element-wise reduces in across all ranks with op and leaves
// the full reduced vector in out on every rank (MPI_Allreduce /
// gaspi_allreduce), via ring reduce-scatter followed by ring allgather —
// 2*(n-1) steps moving 2*len(in)/n elements each. len(in) must equal
// len(out), be divisible by the world size and not exceed maxElems (the
// gaspi_allreduce element-count restriction, documented in DESIGN.md
// §12). On the task-aware backend the call only submits the chain; out
// holds the result after Drain (or behind successor tasks on the comm),
// and — MPI nonblocking semantics — the caller must not modify in or
// read out until the chain has run: step 0 reads in at task execution
// time, not at submission.
func (c *Comm) Allreduce(in, out []float64, op Op) {
	c.checkVec(in, out)
	epoch := c.nextEpoch()
	if c.n == 1 {
		copy(out, in)
		return
	}
	switch c.backend {
	case backMPI:
		copy(out, in)
		c.mpiRing(epoch, out, op, true)
	case backGASPI:
		copy(out, in)
		c.gaspiRing(epoch, out, op, true)
	default:
		c.taRing(epoch, in, out, nil, op, true)
	}
}

// ReduceScatter element-wise reduces in across all ranks with op and
// scatters the result by chunks: out receives this rank's owned chunk —
// chunk index (rank+1) mod n of the reduced vector, len(in)/n elements —
// as MPI_Reduce_scatter_block does with the ring ownership rotated by
// one (the chunk a ring reduce-scatter naturally finishes on each rank).
// Same length restrictions as Allreduce; out must hold len(in)/n
// elements. Task-aware: submitted only — in must stay unmodified and out
// unread until the chain runs (Drain or successor tasks on the comm).
func (c *Comm) ReduceScatter(in, out []float64, op Op) {
	if c.n == 1 {
		if len(out) != len(in) {
			panic("collectives: reduce-scatter out must hold len(in)/n elements")
		}
		c.nextEpoch()
		copy(out, in)
		return
	}
	chunk := len(in) / c.n
	if len(out) != chunk {
		panic("collectives: reduce-scatter out must hold len(in)/n elements")
	}
	c.checkVec(in, in)
	epoch := c.nextEpoch()
	switch c.backend {
	case backMPI:
		copy(c.work[:len(in)], in)
		c.mpiRing(epoch, c.work[:len(in)], op, false)
		copy(out, c.ownedChunk(c.work[:len(in)]))
	case backGASPI:
		copy(c.work[:len(in)], in)
		c.gaspiRing(epoch, c.work[:len(in)], op, false)
		copy(out, c.ownedChunk(c.work[:len(in)]))
	default:
		c.taRing(epoch, in, c.work[:len(in)], out, op, false)
	}
}

// Broadcast distributes root's buf to every rank's buf (MPI_Bcast) down a
// binomial tree rooted there: ceil(log2 n) forwarding levels, each one a
// gaspi_write_notify (one-sided backends) or a reserved-tag send (MPI).
// On the one-sided backends a parent writes a child's payload only after
// that child's rendezvous credit for this epoch, which is what makes the
// single broadcast staging buffer reusable across epochs — including
// back-to-back broadcasts from different roots (DESIGN.md §12). len(buf)
// must not exceed maxElems. Task-aware: submitted only — root's buf must
// stay unmodified and receivers' buf unread until the chain runs (Drain
// or successor tasks on the comm).
func (c *Comm) Broadcast(buf []float64, root int) {
	if len(buf) == 0 || len(buf) > c.maxElems {
		panic(fmt.Sprintf("collectives: broadcast length %d outside (0,%d]", len(buf), c.maxElems))
	}
	if root < 0 || root >= c.n {
		panic(fmt.Sprintf("collectives: broadcast root %d outside [0,%d)", root, c.n))
	}
	epoch := c.nextEpoch()
	if c.n == 1 {
		return
	}
	switch c.backend {
	case backMPI:
		c.mpiBcast(epoch, buf, root)
	case backGASPI:
		c.gaspiBcast(epoch, buf, root)
	default:
		c.taBcast(epoch, buf, root)
	}
}

// Drain blocks until every collective submitted on a task-aware comm has
// completed, so the caller may read result buffers; it is a taskwait over
// the runtime (the pattern §IV's applications end phases with). Blocking
// backends complete synchronously, so it is a no-op there.
func (c *Comm) Drain() {
	if c.backend == backTAGASPI {
		c.rt.TaskWait()
	}
}

// checkVec validates a full-vector operand pair.
func (c *Comm) checkVec(in, out []float64) {
	if len(in) == 0 || len(in) > c.maxElems {
		panic(fmt.Sprintf("collectives: vector length %d outside (0,%d]", len(in), c.maxElems))
	}
	if len(in)%c.n != 0 {
		panic(fmt.Sprintf("collectives: vector length %d not divisible by world size %d", len(in), c.n))
	}
	if len(out) != len(in) {
		panic("collectives: in/out length mismatch")
	}
}

// nextEpoch reserves this comm's next collective epoch (shared across all
// ranks by the ordering requirement).
func (c *Comm) nextEpoch() int {
	e := c.epoch
	c.epoch++
	return e
}

// ownedChunk returns this rank's reduce-scatter result chunk within the
// full working vector: chunk (rank+1) mod n, where the ring finishes.
func (c *Comm) ownedChunk(vec []float64) []float64 {
	chunk := len(vec) / c.n
	o := mod(c.rank+1, c.n)
	return vec[o*chunk : (o+1)*chunk]
}

// compute charges the modelled combine cost of elems elements to the rank
// main (blocking backends).
func (c *Comm) compute(elems int) {
	if c.elemCost > 0 {
		c.clk.Sleep(c.elemCost * time.Duration(elems))
	}
}

// span records a collective-phase span on the comm's rank.
func (c *Comm) span(name string, start, end time.Duration, arg int64) {
	if c.rec != nil {
		c.rec.Span(c.rank, obs.TrackColl, obs.CatColl, name, start, end, arg)
	}
}

// stepFlowID derives the deterministic causal-edge id of one ring step's
// chunk movement: (epoch, step, destination rank) under FlowKindColl.
func stepFlowID(epoch, step, dst int) int64 {
	return obs.FlowID(obs.FlowKindColl, int64(epoch), int64(step), int64(dst))
}

// flowStart stamps the sending half of a collective step edge.
func (c *Comm) flowStart(ts time.Duration, id int64) {
	if c.rec != nil {
		c.rec.Flow(c.rank, obs.TrackColl, obs.CatColl, "flow:coll", 's', ts, id)
	}
}

// flowFinish stamps the consuming half of a collective step edge.
func (c *Comm) flowFinish(ts time.Duration, id int64) {
	if c.rec != nil {
		c.rec.Flow(c.rank, obs.TrackColl, obs.CatColl, "flow:coll", 'f', ts, id)
	}
}

// latency records one completed collective's modelled duration.
func (c *Comm) latency(name string, d time.Duration) {
	if c.rec != nil {
		c.rec.Latency(name, d)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// must panics on a hard backend error (a failed post outside the fault
// plane's recoverable surface); blocking collectives have no retry path —
// fault tolerance is the task-aware backend's job (tagaspi retries).
func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("collectives: %v", err))
	}
}
