// The blocking-MPI backend: the shared ring/tree schedule run as
// point-to-point rounds on reserved collective tags. Tags come from the
// mpisim process-wide epoch allocator, so these collectives can never
// collide with application tags (>= 0) nor with mpisim's own built-in
// collectives — the shared-namespace rule DESIGN.md §12 documents.

package collectives

import (
	"repro/internal/memory"
	"repro/internal/mpisim"
)

// mpiTagSeq deals reserved tags for one collective's rounds, drawing a
// fresh epoch from the process allocator whenever the current one's
// round budget (mpisim.CollectiveRounds) is spent. Every rank issues the
// same collective sequence, so per-rank allocators stay in lockstep and
// all ranks agree on every round's tag without wire traffic.
type mpiTagSeq struct {
	p     *mpisim.Proc
	epoch int
	round int
}

// newTagSeq reserves an epoch and returns the tag sequence for one
// collective.
func newTagSeq(p *mpisim.Proc) mpiTagSeq {
	return mpiTagSeq{p: p, epoch: p.CollectiveEpoch()}
}

// next returns the reserved tag of the next round.
//
//tagalint:hotpath
func (s *mpiTagSeq) next() int {
	if s.round == mpisim.CollectiveRounds {
		s.epoch = s.p.CollectiveEpoch()
		s.round = 0
	}
	t := mpisim.CollectiveTag(s.epoch, s.round)
	s.round++
	return t
}

// mpiRing runs the ring schedule of one blocking-MPI collective:
// reduce-scatter alone (full=false) or reduce-scatter + allgather
// (full=true), over the working vector out. Each step is an eager
// isend of the outgoing chunk to the right neighbour plus a parking
// receive from the left, on the step's reserved tag.
func (c *Comm) mpiRing(epoch int, out []float64, op Op, full bool) {
	n, me := c.n, c.rank
	chunk := len(out) / n
	steps := n - 1
	name := "coll.reduce_scatter"
	if full {
		steps = 2 * (n - 1)
		name = "coll.allreduce"
	}
	right := mpisim.Rank(mod(me+1, n))
	left := mpisim.Rank(mod(me-1, n))
	chunkBytes := chunk * memory.F64Bytes
	seq := newTagSeq(c.mpi)

	opStart := c.clk.Now()
	phaseStart := opStart
	for g := 0; g < steps; g++ {
		tag := seq.next()
		sc := ringSendChunk(me, n, g)
		packF64(c.sendBuf, out[sc*chunk:(sc+1)*chunk])
		c.flowStart(c.clk.Now(), stepFlowID(epoch, g, int(right)))
		sr := c.mpi.CollectiveIsend(c.sendBuf[:chunkBytes], right, tag)
		c.mpi.CollectiveRecv(c.recvBuf[:chunkBytes], left, tag)
		c.flowFinish(c.clk.Now(), stepFlowID(epoch, g, me))
		rc := ringRecvChunk(me, n, g)
		dst := out[rc*chunk : (rc+1)*chunk]
		if g < n-1 {
			combineF64(dst, c.recvBuf, op)
		} else {
			copyF64(dst, c.recvBuf)
		}
		c.compute(chunk)
		c.mpi.Wait(sr) // the send buffer is repacked next step
		if full && g == n-2 {
			c.span("coll:reduce_scatter", phaseStart, c.clk.Now(), int64(epoch))
			phaseStart = c.clk.Now()
		}
	}
	if full {
		c.span("coll:allgather", phaseStart, c.clk.Now(), int64(epoch))
	} else {
		c.span("coll:reduce_scatter", phaseStart, c.clk.Now(), int64(epoch))
	}
	c.latency(name, c.clk.Now()-opStart)
}

// mpiBcast runs the binomial-tree broadcast of one blocking-MPI
// collective: receive from the tree parent, forward to each child
// (farthest subtree first), all on this epoch's reserved tag — source
// matching disambiguates the levels.
func (c *Comm) mpiBcast(epoch int, buf []float64, root int) {
	n, me := c.n, c.rank
	vr := mod(me-root, n)
	vecBytes := len(buf) * memory.F64Bytes
	seq := newTagSeq(c.mpi)
	tag := seq.next()
	start := c.clk.Now()

	if vr == 0 {
		packF64(c.recvBuf, buf)
	} else {
		parent := mpisim.Rank(mod(treeParent(vr)+root, n))
		c.mpi.CollectiveRecv(c.recvBuf[:vecBytes], parent, tag)
		c.flowFinish(c.clk.Now(), bcastFlowID(epoch, me))
	}
	var reqs []*mpisim.Request
	treeChildren(vr, n, func(_, child int) {
		dst := mod(child+root, n)
		c.flowStart(c.clk.Now(), bcastFlowID(epoch, dst))
		reqs = append(reqs, c.mpi.CollectiveIsend(c.recvBuf[:vecBytes], mpisim.Rank(dst), tag))
	})
	if vr != 0 {
		copyF64(buf, c.recvBuf)
		c.compute(len(buf))
	}
	c.mpi.Waitall(reqs)
	c.span("coll:bcast", start, c.clk.Now(), int64(epoch))
	c.latency("coll.bcast", c.clk.Now()-start)
}
