package collectives_test

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/collectives"
	"repro/internal/fabric"
	"repro/internal/obs"
)

const vecLen = 24 // divisible by every tested world size

// fill writes a deterministic pseudo-random vector (LCG over rank and
// salt) whose reduction is order-sensitive in floating point, so any
// backend deviating from the shared combine order breaks bit-identity.
func fill(vec []float64, rank, salt int) {
	s := uint64(rank)*2654435761 + uint64(salt)*40503 + 12345
	for i := range vec {
		s = s*6364136223846793005 + 1442695040888963407
		vec[i] = float64(int64(s>>33))/float64(1<<20) - 1000
	}
}

// backendResults collects, per rank, every output buffer of the mixed
// collective sequence runSequence issues.
type backendResults struct {
	allred1 [][]float64
	bcast   [][]float64
	allred2 [][]float64
	scatter [][]float64
	allred3 [][]float64
}

func newComm(t *testing.T, backend string, env *cluster.Env, maxElems int, opts ...collectives.Option) *collectives.Comm {
	t.Helper()
	switch backend {
	case "mpi":
		return collectives.NewMPI(env.MPI, maxElems, opts...)
	case "gaspi":
		c, err := collectives.NewGASPI(env.GASPI, maxElems, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return c
	case "tagaspi":
		c, err := collectives.NewTAGASPI(env.TAGASPI, env.RT, maxElems, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	t.Fatalf("unknown backend %q", backend)
	return nil
}

func backendConfig(backend string, nodes int) cluster.Config {
	cfg := cluster.Config{
		Nodes: nodes, RanksPerNode: 1,
		Profile: fabric.ProfileIdeal(),
		Seed:    42,
	}
	if backend == "tagaspi" {
		cfg.CoresPerRank = 2
		cfg.WithTasking = true
		cfg.WithTAGASPI = true
		cfg.TAGASPIPoll = 5 * time.Microsecond
	}
	return cfg
}

// runSequence issues a mixed multi-epoch collective sequence — two
// same-parity ring collectives separated by a broadcast, a mixed-op
// allreduce and a reduce-scatter — exercising staging-parity reuse, ring
// consumption acks and the broadcast's rendezvous-credit reuse on every
// backend.
func runSequence(t *testing.T, backend string, nodes int) *backendResults {
	t.Helper()
	n := nodes
	res := &backendResults{
		allred1: make([][]float64, n), bcast: make([][]float64, n),
		allred2: make([][]float64, n), scatter: make([][]float64, n),
		allred3: make([][]float64, n),
	}
	cluster.Run(backendConfig(backend, nodes), func(env *cluster.Env) {
		r := int(env.Rank)
		c := newComm(t, backend, env, vecLen)

		in := make([]float64, vecLen)
		fill(in, r, 1)
		out1 := make([]float64, vecLen)
		c.Allreduce(in, out1, collectives.Sum)
		c.Drain()

		b := make([]float64, vecLen)
		root := (n - 1) % n
		if r == root {
			for i := range b {
				b[i] = out1[i] * 0.5
			}
		}
		c.Broadcast(b, root)
		c.Drain()

		in2 := make([]float64, vecLen)
		fill(in2, r, 2)
		out2 := make([]float64, vecLen)
		c.Allreduce(in2, out2, collectives.Max) // same parity as epoch 0's ring
		c.Drain()

		rs := make([]float64, vecLen/n)
		c.ReduceScatter(b, rs, collectives.Sum)
		c.Drain()

		out3 := make([]float64, vecLen)
		c.Allreduce(out2, out3, collectives.Sum)
		c.Drain()

		res.allred1[r], res.bcast[r] = out1, b
		res.allred2[r], res.scatter[r] = out2, rs
		res.allred3[r] = out3
	})
	return res
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestCrossBackendBitIdentical is the DESIGN.md §12 equivalence contract:
// the same collective sequence must produce bit-identical results on the
// blocking-MPI, blocking-GASPI and task-aware backends, at world sizes
// covering the even/odd ring and full/partial tree cases. Run under -race
// by the CI collectives gate.
func TestCrossBackendBitIdentical(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		ref := runSequence(t, "mpi", n)
		// Allreduce results must also agree across ranks.
		for r := 1; r < n; r++ {
			if !bitsEqual(ref.allred1[0], ref.allred1[r]) ||
				!bitsEqual(ref.allred3[0], ref.allred3[r]) {
				t.Fatalf("n=%d: allreduce results differ across ranks", n)
			}
		}
		for _, backend := range []string{"gaspi", "tagaspi"} {
			got := runSequence(t, backend, n)
			for r := 0; r < n; r++ {
				if !bitsEqual(ref.allred1[r], got.allred1[r]) {
					t.Errorf("n=%d rank %d: %s allreduce(sum) deviates from mpi", n, r, backend)
				}
				if !bitsEqual(ref.bcast[r], got.bcast[r]) {
					t.Errorf("n=%d rank %d: %s broadcast deviates from mpi", n, r, backend)
				}
				if !bitsEqual(ref.allred2[r], got.allred2[r]) {
					t.Errorf("n=%d rank %d: %s allreduce(max) deviates from mpi", n, r, backend)
				}
				if !bitsEqual(ref.scatter[r], got.scatter[r]) {
					t.Errorf("n=%d rank %d: %s reduce-scatter deviates from mpi", n, r, backend)
				}
				if !bitsEqual(ref.allred3[r], got.allred3[r]) {
					t.Errorf("n=%d rank %d: %s chained allreduce deviates from mpi", n, r, backend)
				}
			}
		}
	}
}

// TestBroadcastRotatingRoots is the regression test for the broadcast
// rendezvous-credit flow control: back-to-back broadcasts whose roots
// rotate every epoch reuse the single staging buffer under maximal
// overlap (the task-aware backend submits every epoch before draining
// once). An acknowledgement scheme tied to the previous epoch's tree
// cannot order these — e.g. n=4, epoch e rooted at 0 delivering via
// 0->2->3 while epoch f rooted at 1 writes straight to 3 — so without
// per-edge credits a late rank silently reads the wrong epoch's payload.
func TestBroadcastRotatingRoots(t *testing.T) {
	for _, backend := range []string{"mpi", "gaspi", "tagaspi"} {
		for _, n := range []int{4, 8} {
			epochs := 2 * n // every root twice, covering wrap-around reuse
			got := make([][][]float64, n)
			cfg := backendConfig(backend, n)
			cfg.Profile = fabric.ProfileOmniPath()
			cluster.Run(cfg, func(env *cluster.Env) {
				r := int(env.Rank)
				c := newComm(t, backend, env, vecLen)
				bufs := make([][]float64, epochs)
				for e := 0; e < epochs; e++ {
					bufs[e] = make([]float64, vecLen)
					root := e % n
					if r == root {
						fill(bufs[e], root, 100+e)
					}
					c.Broadcast(bufs[e], root)
				}
				c.Drain()
				got[r] = bufs
			})
			want := make([]float64, vecLen)
			for e := 0; e < epochs; e++ {
				fill(want, e%n, 100+e)
				for r := 0; r < n; r++ {
					if !bitsEqual(got[r][e], want) {
						t.Fatalf("%s n=%d: rank %d holds the wrong payload after broadcast epoch %d (root %d)",
							backend, n, r, e, e%n)
					}
				}
			}
		}
	}
}

// TestReduceScatterOwnership pins the owned-chunk convention: rank r ends
// with chunk (r+1) mod n of the reduced vector, matching where the ring
// reduce-scatter finishes.
func TestReduceScatterOwnership(t *testing.T) {
	const n = 4
	full := make([]float64, vecLen) // element-wise sum over ranks, any order
	ins := make([][]float64, n)
	for r := 0; r < n; r++ {
		ins[r] = make([]float64, vecLen)
		fill(ins[r], r, 9)
		for i, v := range ins[r] {
			full[i] += v
		}
	}
	chunk := vecLen / n
	got := make([][]float64, n)
	cluster.Run(backendConfig("gaspi", n), func(env *cluster.Env) {
		r := int(env.Rank)
		c := newComm(t, "gaspi", env, vecLen)
		rs := make([]float64, chunk)
		c.ReduceScatter(ins[r], rs, collectives.Sum)
		got[r] = rs
	})
	for r := 0; r < n; r++ {
		o := (r + 1) % n
		for i := 0; i < chunk; i++ {
			want := full[o*chunk+i]
			if math.Abs(got[r][i]-want) > 1e-9*math.Abs(want) {
				t.Fatalf("rank %d chunk elem %d = %g, want ~%g (chunk %d)", r, i, got[r][i], want, o)
			}
		}
	}
}

// traceBytes runs one instrumented task-aware collective sequence and
// returns the serialised trace.
func traceBytes(t *testing.T, backend string) []byte {
	t.Helper()
	const n = 4
	col := obs.NewCollector(n)
	cfg := backendConfig(backend, n)
	cfg.Profile = fabric.ProfileOmniPath()
	cfg.Recorder = col
	cluster.Run(cfg, func(env *cluster.Env) {
		r := int(env.Rank)
		c := newComm(t, backend, env, vecLen,
			collectives.WithRecorder(col), collectives.WithElemCost(env.CostOf(1)))
		in := make([]float64, vecLen)
		fill(in, r, 3)
		out := make([]float64, vecLen)
		c.Allreduce(in, out, collectives.Sum)
		c.Drain()
		c.Broadcast(out, 0)
		c.Drain()
		rs := make([]float64, vecLen/n)
		c.ReduceScatter(out, rs, collectives.Sum)
		c.Drain()
	})
	var buf bytes.Buffer
	if err := col.Tracer.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty trace")
	}
	return buf.Bytes()
}

// TestInstrumentedTraceDeterminism requires byte-identical traces across
// repeated seeded collective runs on every backend — the property the CI
// collectives-determinism gate checks end to end through cmd/figures.
func TestInstrumentedTraceDeterminism(t *testing.T) {
	for _, backend := range []string{"mpi", "gaspi", "tagaspi"} {
		ref := traceBytes(t, backend)
		for i := 0; i < 2; i++ {
			if !bytes.Equal(ref, traceBytes(t, backend)) {
				t.Fatalf("%s: instrumented collective trace diverged on rerun %d", backend, i)
			}
		}
	}
}

// TestLinkOutageMidRing drives an allreduce ring through a hard link
// outage covering the job's start. The task-aware backend must absorb the
// GASPI-class failures through the tagaspi retry policy (retries > 0, no
// gave-ups) and still produce the correct sum; the blocking-MPI backend's
// drops retransmit transparently inside mpisim.
func TestLinkOutageMidRing(t *testing.T) {
	const n = 4
	outEnd := 200 * time.Microsecond
	for _, backend := range []string{"tagaspi", "mpi"} {
		cfg := backendConfig(backend, n)
		cfg.Profile = fabric.ProfileOmniPath()
		cfg.Seed = 11
		cfg.Faults = fabric.FaultPlan{
			Outages: []fabric.Outage{{
				Link:  fabric.Link{SrcNode: -1, DstNode: -1},
				Start: 0, End: outEnd,
			}},
		}
		sums := make([][]float64, n)
		var retries, gaveup int64
		res := cluster.Run(cfg, func(env *cluster.Env) {
			r := int(env.Rank)
			c := newComm(t, backend, env, vecLen)
			in := make([]float64, vecLen)
			for i := range in {
				in[i] = float64(r + 1)
			}
			out := make([]float64, vecLen)
			c.Allreduce(in, out, collectives.Sum)
			c.Drain()
			sums[r] = out
			if env.TAGASPI != nil {
				retries += env.TAGASPI.Retries()
				gaveup += env.TAGASPI.GaveUp()
			}
		})
		want := float64(n * (n + 1) / 2)
		for r := 0; r < n; r++ {
			for i, v := range sums[r] {
				if v != want {
					t.Fatalf("%s rank %d elem %d = %g, want %g (data lost across outage)", backend, r, i, v, want)
				}
			}
		}
		if res.Elapsed < outEnd {
			t.Errorf("%s: job finished at %v, inside the outage window ending %v", backend, res.Elapsed, outEnd)
		}
		if backend == "tagaspi" {
			if retries == 0 {
				t.Error("tagaspi: outage absorbed without a single retry — fault plane not exercised")
			}
			if gaveup != 0 {
				t.Errorf("tagaspi: %d operations abandoned", gaveup)
			}
		}
	}
}

// TestOperandValidation pins the gaspi_allreduce-style operand
// restrictions: zero length, over-length, non-divisible length and
// mismatched out all panic.
func TestOperandValidation(t *testing.T) {
	cluster.Run(backendConfig("mpi", 2), func(env *cluster.Env) {
		if env.Rank != 0 {
			return
		}
		c := collectives.NewMPI(env.MPI, 8)
		for name, bad := range map[string]func(){
			"zero length":     func() { c.Allreduce(nil, nil, collectives.Sum) },
			"over maxElems":   func() { c.Allreduce(make([]float64, 10), make([]float64, 10), collectives.Sum) },
			"indivisible":     func() { c.Allreduce(make([]float64, 3), make([]float64, 3), collectives.Sum) },
			"length mismatch": func() { c.Allreduce(make([]float64, 4), make([]float64, 6), collectives.Sum) },
			"bad root":        func() { c.Broadcast(make([]float64, 4), 7) },
			"bad rs out":      func() { c.ReduceScatter(make([]float64, 4), make([]float64, 4), collectives.Sum) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: no panic", name)
					}
				}()
				bad()
			}()
		}
	})
}
