// The communication schedule shared by every backend. Ring collectives
// move chunks rightward (rank r sends to r+1, receives from r-1); the
// broadcast walks a binomial tree. Because all three backends derive
// their sends, receives and combine order from these functions alone, a
// reduction combines values in the same order everywhere — the
// cross-backend bit-identity contract of DESIGN.md §12.

package collectives

import (
	"encoding/binary"
	"math"
)

// mod returns a mod n in [0, n) for possibly-negative a.
//
//tagalint:hotpath
func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// ringSendChunk returns the chunk index rank me sends at global ring step
// g. Steps 0..n-2 are the reduce-scatter phase (each rank pushes its
// running partial of chunk me-g); steps n-1..2n-3 are the allgather phase
// (each rank forwards the finished chunk it most recently received).
//
//tagalint:hotpath
func ringSendChunk(me, n, g int) int {
	if g < n-1 {
		return mod(me-g, n)
	}
	return mod(me+1-(g-(n-1)), n)
}

// ringRecvChunk returns the chunk index rank me receives at step g: what
// its left neighbour sends.
//
//tagalint:hotpath
func ringRecvChunk(me, n, g int) int {
	return ringSendChunk(mod(me-1, n), n, g)
}

// treeParent returns the binomial-tree parent of virtual rank vr > 0
// (clear the lowest set bit).
//
//tagalint:hotpath
func treeParent(vr int) int { return vr &^ (vr & -vr) }

// treeTop returns the smallest power of two bounding the subtree of
// virtual rank vr in a tree of n ranks: the mask just above vr's lowest
// set bit (for vr 0, the full tree bound).
//
//tagalint:hotpath
func treeTop(vr, n int) int {
	if vr == 0 {
		b := 1
		for b < n {
			b <<= 1
		}
		return b
	}
	return vr & -vr
}

// treeChildren calls fn for each child of virtual rank vr in a tree of n
// ranks, farthest subtree first (descending mask) — the forwarding order
// that pipelines the deepest subtree earliest. The callback index is the
// child's position in this enumeration, the namespace broadcast
// acknowledgements are keyed by.
func treeChildren(vr, n int, fn func(idx, child int)) {
	idx := 0
	for mask := treeTop(vr, n) >> 1; mask > 0; mask >>= 1 {
		child := vr | mask
		if child != vr && child < n {
			fn(idx, child)
			idx++
		}
	}
}

// treeChildIndex returns virtual rank vr's position within its parent's
// child enumeration (treeChildren order), for addressing its ack slot.
func treeChildIndex(vr, n int) int {
	found := -1
	treeChildren(treeParent(vr), n, func(i, child int) {
		if child == vr {
			found = i
		}
	})
	if found < 0 {
		panic("collectives: rank is not a child of its tree parent")
	}
	return found
}

// packF64 serialises vals little-endian into dst (8 bytes per element),
// the wire layout shared with mpisim's collectives.
//
//tagalint:hotpath
func packF64(dst []byte, vals []float64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
}

// combineF64 folds the packed incoming chunk into dst element-wise:
// dst[i] = op(dst[i], incoming[i]). The operand order is part of the
// cross-backend bit-identity contract.
//
//tagalint:hotpath
func combineF64(dst []float64, src []byte, op Op) {
	for i := range dst {
		dst[i] = op(dst[i], math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:])))
	}
}

// copyF64 unpacks the packed incoming chunk over dst (the allgather
// phase's copy step).
//
//tagalint:hotpath
func copyF64(dst []float64, src []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
}
