// The blocking one-sided backend: every ring step is one
// gaspi_write_notify into the right neighbour's staging slot, awaited
// with gaspi_notify_waitsome (parking the rank main); the broadcast walks
// the binomial tree the same way. Staging-slot reuse across epochs is
// made safe by explicit flow control (gaspi_notify), not by timing: ring
// writers hold same-parity epochs until the consumer's ack, and a
// broadcast parent holds each child's payload write until that child's
// rendezvous credit proves its buffer free — see DESIGN.md §12.

package collectives

import (
	"fmt"

	"repro/internal/gaspisim"
	"repro/internal/memory"
)

// Segment layout (identical on every rank; all offsets derive from the
// collectively-agreed maxElems):
//
//	[0, 2*steps*chunkMax*8)  ring staging: per parity, one slot per step
//	[bcastOff, +maxElems*8)  broadcast payload buffer (ack-protected)
//	[sendOff, +chunkMax*8)   local send slot (packed outgoing chunk)

// segSize returns the reserved segment's byte size for a world of n
// ranks: parity-doubled ring staging, the broadcast buffer and the local
// send slot.
func segSize(n, maxElems, chunkMax, steps int) int {
	return (2*steps+1)*chunkMax*memory.F64Bytes + maxElems*memory.F64Bytes
}

// ringSlotOff returns the staging offset of ring step g under the given
// epoch parity.
//
//tagalint:hotpath
func (c *Comm) ringSlotOff(parity, g int) int {
	return (parity*c.steps + g) * c.chunkMax * memory.F64Bytes
}

// bcastOff returns the broadcast payload buffer's offset.
//
//tagalint:hotpath
func (c *Comm) bcastOff() int {
	return 2 * c.steps * c.chunkMax * memory.F64Bytes
}

// sendOff returns the local send slot's offset.
//
//tagalint:hotpath
func (c *Comm) sendOff() int {
	return c.bcastOff() + c.maxElems*memory.F64Bytes
}

// Notification-id namespace: each collective epoch owns a stride of
// steps+1 consecutive ids; within an epoch, ring arrivals use +g and the
// ring consumption ack +steps, while broadcast epochs (which never mint
// ring ids) use +0 for the payload and +1+childIndex for the per-child
// rendezvous credits. Ids are never reused across epochs, so a laggard's
// stale notification can never alias a newer one.

// nidStride returns the per-epoch notification-id stride.
//
//tagalint:hotpath
func (c *Comm) nidStride() int { return c.steps + 1 }

// ringNid returns the arrival notification id of ring step g in epoch e.
//
//tagalint:hotpath
func (c *Comm) ringNid(epoch, g int) gaspisim.NotificationID {
	return gaspisim.NotificationID(epoch*c.nidStride() + g)
}

// ringAckNid returns the consumption-ack id of ring epoch e.
//
//tagalint:hotpath
func (c *Comm) ringAckNid(epoch int) gaspisim.NotificationID {
	return gaspisim.NotificationID(epoch*c.nidStride() + c.steps)
}

// bcastPayloadNid returns the broadcast payload arrival id of epoch e.
//
//tagalint:hotpath
func (c *Comm) bcastPayloadNid(epoch int) gaspisim.NotificationID {
	return gaspisim.NotificationID(epoch * c.nidStride())
}

// bcastCreditNid returns the rendezvous-credit id a parent awaits from
// its idx-th child in epoch e before writing that child's payload.
//
//tagalint:hotpath
func (c *Comm) bcastCreditNid(epoch, idx int) gaspisim.NotificationID {
	return gaspisim.NotificationID(epoch*c.nidStride() + 1 + idx)
}

// bcastFlowID derives the causal-edge id of a broadcast payload hop into
// dst (the ring steps use stepFlowID; 1<<20 keeps the step spaces apart).
func bcastFlowID(epoch, dst int) int64 {
	return stepFlowID(epoch, 1<<20, dst)
}

// consumeNotification awaits and resets one notification, validating the
// carried value against the expected epoch — a cheap corruption check on
// the staging protocol.
func (c *Comm) consumeNotification(nid gaspisim.NotificationID, epoch int) {
	id, ok := c.g.NotifyWaitSome(Seg, nid, 1, gaspisim.Block)
	if !ok {
		panic(fmt.Sprintf("collectives: notify_waitsome(%d) failed in epoch %d", nid, epoch))
	}
	if v, _ := c.g.NotifyReset(Seg, id); v != int64(epoch) {
		panic(fmt.Sprintf("collectives: notification %d carries epoch %d, want %d — staging protocol violated", id, v, epoch))
	}
}

// waitRingCredit blocks until the right neighbour has acknowledged
// consuming every staging slot of the previous same-parity ring epoch,
// so this epoch's writes cannot clobber unread data (the credit-2 flow
// control of DESIGN.md §12).
func (c *Comm) waitRingCredit(epoch int) {
	if prev := c.lastRing[epoch&1]; prev >= 0 {
		c.consumeNotification(c.ringAckNid(prev), prev)
	}
}

// gaspiRing runs the ring schedule of one blocking one-sided collective:
// reduce-scatter alone (full=false) or reduce-scatter + allgather
// (full=true), over the working vector out.
func (c *Comm) gaspiRing(epoch int, out []float64, op Op, full bool) {
	n, me := c.n, c.rank
	chunk := len(out) / n
	steps := n - 1
	name := "coll.reduce_scatter"
	if full {
		steps = 2 * (n - 1)
		name = "coll.allreduce"
	}
	right := gaspisim.Rank(mod(me+1, n))
	left := gaspisim.Rank(mod(me-1, n))
	parity := epoch & 1
	chunkBytes := chunk * memory.F64Bytes
	segB := c.seg.Bytes()

	c.waitRingCredit(epoch)
	opStart := c.clk.Now()
	phaseStart := opStart
	for g := 0; g < steps; g++ {
		sc := ringSendChunk(me, n, g)
		packF64(segB[c.sendOff():], out[sc*chunk:(sc+1)*chunk])
		nid := c.ringNid(epoch, g)
		c.flowStart(c.clk.Now(), stepFlowID(epoch, g, int(right)))
		must(c.g.WriteNotify(Seg, c.sendOff(), right, Seg, c.ringSlotOff(parity, g),
			chunkBytes, nid, int64(epoch), c.queue, nil))
		c.g.Wait(c.queue) // local completion: the send slot is reusable

		c.consumeNotification(nid, epoch)
		c.flowFinish(c.clk.Now(), stepFlowID(epoch, g, me))
		rc := ringRecvChunk(me, n, g)
		slot := segB[c.ringSlotOff(parity, g):]
		dst := out[rc*chunk : (rc+1)*chunk]
		if g < n-1 {
			combineF64(dst, slot, op)
		} else {
			copyF64(dst, slot)
		}
		c.compute(chunk)
		if full && g == n-2 {
			c.span("coll:reduce_scatter", phaseStart, c.clk.Now(), int64(epoch))
			phaseStart = c.clk.Now()
		}
	}
	if full {
		c.span("coll:allgather", phaseStart, c.clk.Now(), int64(epoch))
	} else {
		c.span("coll:reduce_scatter", phaseStart, c.clk.Now(), int64(epoch))
	}
	// Acknowledge to the writer of my staging slots (the left neighbour)
	// that every slot of this epoch is consumed.
	must(c.g.Notify(left, Seg, c.ringAckNid(epoch), int64(epoch), c.queue, nil))
	c.g.Wait(c.queue)
	c.lastRing[parity] = epoch
	c.latency(name, c.clk.Now()-opStart)
}

// gaspiBcast runs the binomial-tree broadcast of one blocking one-sided
// collective. Buffer reuse is made safe by a per-edge rendezvous: a
// non-root rank's first action in an epoch is a credit gaspi_notify to
// that epoch's tree parent, and a parent never write_notifies the
// payload to a child before consuming that child's credit. Entering the
// epoch proves (per-rank program order) the child consumed every earlier
// broadcast payload — whichever tree delivered it — so the credit, unlike
// any acknowledgement scheme tied to the *previous* epoch's tree, stays
// sound when successive roots differ (DESIGN.md §12).
func (c *Comm) gaspiBcast(epoch int, buf []float64, root int) {
	n, me := c.n, c.rank
	vr := mod(me-root, n)
	vecBytes := len(buf) * memory.F64Bytes
	segB := c.seg.Bytes()
	pay := c.bcastPayloadNid(epoch)
	start := c.clk.Now()

	if vr == 0 {
		packF64(segB[c.bcastOff():], buf)
	} else {
		// Rendezvous: the buffer is free (all prior payloads consumed),
		// tell this epoch's parent before blocking on the payload.
		parent := gaspisim.Rank(mod(treeParent(vr)+root, n))
		must(c.g.Notify(parent, Seg, c.bcastCreditNid(epoch, treeChildIndex(vr, n)),
			int64(epoch), c.queue, nil))
		c.g.Wait(c.queue)
		c.consumeNotification(pay, epoch)
		c.flowFinish(c.clk.Now(), bcastFlowID(epoch, me))
	}
	treeChildren(vr, n, func(idx, child int) {
		dst := mod(child+root, n)
		c.consumeNotification(c.bcastCreditNid(epoch, idx), epoch)
		c.flowStart(c.clk.Now(), bcastFlowID(epoch, dst))
		must(c.g.WriteNotify(Seg, c.bcastOff(), gaspisim.Rank(dst), Seg, c.bcastOff(),
			vecBytes, pay, int64(epoch), c.queue, nil))
	})
	c.g.Wait(c.queue) // forwards locally complete: the buffer is stable to read
	if vr != 0 {
		copyF64(buf, segB[c.bcastOff():])
		c.compute(len(buf))
	}
	c.span("coll:bcast", start, c.clk.Now(), int64(epoch))
	c.latency("coll.bcast", c.clk.Now()-start)
}
