// Package obscli wires the observability subsystem (package obs) into the
// simulator command-line tools: a common -trace/-metrics/-blame flag set,
// the collector handed to cluster.Config.Recorder, and the end-of-run
// output.
package obscli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// Flags holds the observability options of one CLI.
type Flags struct {
	TracePath string
	Metrics   bool
	BlamePath string
}

// Register declares the -trace, -metrics and -blame flags on the default
// flag set.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.TracePath, "trace", "",
		"write a Chrome trace_event JSON timeline to this file (open in Perfetto)")
	flag.BoolVar(&f.Metrics, "metrics", false,
		"print latency histograms and per-component statistics after the run")
	flag.StringVar(&f.BlamePath, "blame", "",
		"write the critical-path blame report to this file (\"-\" for stdout)")
	return f
}

// Enabled reports whether any observability output was requested.
func (f *Flags) Enabled() bool { return f.TracePath != "" || f.Metrics || f.BlamePath != "" }

// Collector builds the recorder for a job with the given rank count, or
// returns nil when no observability output was requested — the nil keeps
// every instrumentation site on its single-branch fast path.
func (f *Flags) Collector(ranks int) *obs.Collector {
	if !f.Enabled() {
		return nil
	}
	c := &obs.Collector{}
	if f.TracePath != "" || f.BlamePath != "" {
		c.Tracer = obs.NewTracer(ranks)
	}
	if f.Metrics {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// Finish writes the requested outputs: the trace file, the critical-path
// blame report, then (on w) the latency histograms and the per-component
// snapshots of the finished job, including the per-node NIC port
// utilisation relative to elapsed time.
func (f *Flags) Finish(w io.Writer, c *obs.Collector, res cluster.Result) error {
	if c == nil {
		return nil
	}
	if f.TracePath != "" && c.Tracer != nil {
		if err := c.Tracer.WriteFile(f.TracePath); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace: %d events written to %s\n", c.Tracer.Len(), f.TracePath)
	}
	if f.BlamePath != "" {
		if res.Blame == nil {
			return fmt.Errorf("blame: no critical-path report (run recorded no trace events)")
		}
		if f.BlamePath == "-" {
			if err := res.Blame.WriteText(w); err != nil {
				return err
			}
		} else {
			bf, err := os.Create(f.BlamePath)
			if err != nil {
				return err
			}
			if err := res.Blame.WriteText(bf); err != nil {
				bf.Close()
				return err
			}
			if err := bf.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "blame: critical-path report written to %s\n", f.BlamePath)
		}
	}
	if f.Metrics {
		if c.Metrics != nil {
			c.Metrics.Write(w)
		}
		obs.WriteSnapshots(w, res.Snapshots)
		WriteNICUtilisation(w, res)
	}
	return nil
}

// WriteNICUtilisation prints each node's NIC injection/delivery port busy
// fraction over the modelled run — the serialization bottleneck figure the
// fabric's Resource statistics measure.
func WriteNICUtilisation(w io.Writer, res cluster.Result) {
	if res.Elapsed <= 0 || len(res.NIC) == 0 {
		return
	}
	fmt.Fprintf(w, "-- nic utilisation (of %v elapsed)\n", res.Elapsed)
	for _, nic := range res.NIC {
		fmt.Fprintf(w, "   node%-3d tx %5.1f%% (%d msgs, wait %v)   rx %5.1f%% (%d msgs, wait %v)\n",
			nic.Node,
			100*nic.Tx.Busy.Seconds()/res.Elapsed.Seconds(), nic.Tx.Uses, nic.Tx.Waited,
			100*nic.Rx.Busy.Seconds()/res.Elapsed.Seconds(), nic.Rx.Uses, nic.Rx.Waited)
	}
}
