package exp

import (
	"fmt"
	"io"
	"strings"
)

// Series is one line of a figure.
type Series struct {
	Name string
	Y    []float64 // aligned with the figure's X values
}

// Figure is one reproduced figure as a table.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	X      []float64
	YLabel string
	Series []Series
	Notes  []string
}

// Render prints the figure as an aligned text table.
func (f Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	rows := [][]string{cols}
	for i, x := range f.X {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.4g", s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(cols))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var b strings.Builder
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[c]))
		}
		fmt.Fprintln(w, "  "+b.String())
		if ri == 0 {
			fmt.Fprintln(w, "  "+strings.Repeat("-", len(b.String())))
		}
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	for len(s) < w {
		s = " " + s
	}
	return s
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}
