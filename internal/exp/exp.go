// Package exp is the declarative experiment engine behind the paper's
// evaluation (§VI). Every figure is a sweep of independent simulation
// points (variant × nodes × block size × machine profile); exp turns that
// shape into data: a Point names one cluster job and how to reduce it to
// figure-of-merit values, a Sweep is an ordered point set plus the figure
// frame it fills in, and Execute runs the points on a bounded pool of host
// workers — each point is one self-contained discrete-event simulation, so
// points parallelise across host cores with no shared state beyond the Go
// runtime.
//
// Determinism: a point's modelled results depend only on its cluster
// Config (including the seed, derived from the sweep and point ids via
// fabric.SeedOf when left zero) — never on execution order or worker
// count. Sequential and parallel executions of the same sweep therefore
// produce identical figures, and identical machine-readable rows (see
// json.go) up to measured host times.
package exp

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
)

// Point is one independent experiment: a cluster configuration, the rank
// main to run on it, and the reduction from the finished job to named
// series values.
//
// A Point's closures may capture point-local state that the rank mains
// write and Values reads (the engine calls Values after the job's
// cluster.Run has fully returned, on the same goroutine). Points are
// executed at most once per Sweep execution; rebuild the sweep to rerun.
type Point struct {
	// ID identifies the point within its sweep; the fabric seed chain
	// derives from it (see SeedFor), so it must be unique and stable.
	ID string
	// X is the figure x-axis value this point contributes to.
	X float64
	// Cfg is the cluster job description. A zero Seed is replaced by
	// SeedFor(sweep id, point id) before the run.
	Cfg cluster.Config
	// Main is the per-rank main function of the job.
	Main func(*cluster.Env)
	// Values reduces the finished job to one or more named series
	// samples, e.g. {"TAGASPI": GUpdates/s}. Every name must appear in
	// the sweep's Series declaration. Nil yields no samples.
	Values func(cluster.Result) map[string]float64
}

// Result is the machine-readable outcome of one executed point.
type Result struct {
	ID       string
	X        float64
	Seed     int64              // the seed the job actually ran with
	Values   map[string]float64 // named figure-of-merit samples
	Modelled time.Duration      // modelled (virtual) elapsed time
	Host     time.Duration      // host wall-clock spent simulating
	Job      cluster.Result     // full job statistics and snapshots
}

// Sweep is an ordered set of points plus the figure frame they fill in.
type Sweep struct {
	// Fig carries the figure identity, axes, X values and notes; Build
	// fills Series from the executed points.
	Fig Figure
	// Series declares the raw series names and their assembly order.
	// A point yielding an undeclared name is a programming bug (panic).
	Series []string
	// Points are the experiments, in declaration order. Execution order
	// is unspecified (host-parallel); result order matches point order.
	Points []Point
	// Post, when non-nil, runs after raw series assembly and may derive
	// or replace series (speedup, efficiency) and append notes. raw maps
	// each declared series name to its assembled samples; rs are the
	// point results in point order.
	Post func(f *Figure, raw map[string][]float64, rs []Result)
}

// Options configures one sweep execution.
type Options struct {
	// Workers bounds the host-parallel points: 0 (or negative) means
	// GOMAXPROCS, 1 restores fully sequential execution. Ignored when
	// Pool is set.
	Workers int
	// Pool, when non-nil, is a worker pool shared with other sweeps so
	// one global bound covers a whole figure set.
	Pool *Pool
}

// Pool bounds concurrent point executions across any number of sweeps.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool admitting at most workers concurrent points
// (0 or negative: GOMAXPROCS).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// SeedFor derives the deterministic seed of a point from its sweep and
// point identifiers — never from iteration order, so reordering or
// parallelising a sweep cannot change any point's modelled results.
func SeedFor(sweepID, pointID string) int64 {
	return fabric.SeedOf("exp", sweepID, pointID)
}

// Execute runs every point and returns their results in point order.
// Points run concurrently on at most the configured number of host
// workers; each point is one fully isolated cluster.Run.
func (s *Sweep) Execute(opt Options) []Result {
	rs := make([]Result, len(s.Points))
	pool := opt.Pool
	if pool == nil {
		w := opt.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w == 1 || len(s.Points) <= 1 {
			for i := range s.Points {
				rs[i] = s.runPoint(i)
			}
			return rs
		}
		pool = NewPool(w)
	}
	var wg sync.WaitGroup
	for i := range s.Points {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pool.sem <- struct{}{}
			defer func() { <-pool.sem }()
			rs[i] = s.runPoint(i)
		}(i)
	}
	wg.Wait()
	return rs
}

func (s *Sweep) runPoint(i int) Result {
	p := s.Points[i]
	cfg := p.Cfg
	if cfg.Seed == 0 {
		cfg.Seed = SeedFor(s.Fig.ID, p.ID)
	}
	start := time.Now()
	job := cluster.Run(cfg, p.Main)
	host := time.Since(start)
	var vals map[string]float64
	if p.Values != nil {
		vals = p.Values(job)
	}
	return Result{
		ID: p.ID, X: p.X, Seed: cfg.Seed, Values: vals,
		Modelled: job.Elapsed, Host: host, Job: job,
	}
}

// Build assembles the executed points into the sweep's figure: one series
// per declared name, samples aligned to Fig.X by each point's X value,
// then the Post hook (if any) for derived series and notes.
func (s *Sweep) Build(rs []Result) Figure {
	f := s.Fig
	f.X = append([]float64(nil), s.Fig.X...)
	f.Notes = append([]string(nil), s.Fig.Notes...)
	f.Series = append([]Series(nil), s.Fig.Series...)
	raw := make(map[string][]float64, len(s.Series))
	for _, name := range s.Series {
		raw[name] = make([]float64, len(f.X))
	}
	for _, r := range rs {
		xi := indexOfX(f.X, r.X)
		if xi < 0 {
			panic(fmt.Sprintf("exp: sweep %s point %q has x=%v outside the figure axis %v",
				f.ID, r.ID, r.X, f.X))
		}
		for name, v := range r.Values {
			ys, ok := raw[name]
			if !ok {
				panic(fmt.Sprintf("exp: sweep %s point %q yields undeclared series %q",
					f.ID, r.ID, name))
			}
			ys[xi] = v
		}
	}
	for _, name := range s.Series {
		f.Series = append(f.Series, Series{Name: name, Y: raw[name]})
	}
	if s.Post != nil {
		s.Post(&f, raw, rs)
	}
	return f
}

// Run is Execute followed by Build.
func (s *Sweep) Run(opt Options) (Figure, []Result) {
	rs := s.Execute(opt)
	return s.Build(rs), rs
}

func indexOfX(xs []float64, x float64) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// Speedup returns each sample divided by base — the strong-scaling
// speedup math shared by the Gauss–Seidel and miniAMR figures.
func Speedup(ys []float64, base float64) []float64 {
	out := make([]float64, len(ys))
	for i, y := range ys {
		out[i] = y / base
	}
	return out
}

// Efficiency returns ys[i] / (ys[0] * x[i]): the parallel efficiency of a
// strong-scaling series relative to its own first (single-node) point.
func Efficiency(ys, x []float64) []float64 {
	out := make([]float64, len(ys))
	for i, y := range ys {
		out[i] = y / (ys[0] * x[i])
	}
	return out
}
