package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// Two parallel executions of the same sweep must serialize to identical
// bytes once host times are excluded — the property the CI determinism
// gate diffs on the full figure set.
func TestJSONByteIdenticalAcrossParallelRuns(t *testing.T) {
	render := func() []byte {
		sw := testSweep(5)
		rs := sw.Execute(Options{Workers: 4})
		var buf bytes.Buffer
		if err := WriteJSON(&buf, RowsOf(sw, rs, false)); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("JSON differs across runs:\n%s\n--\n%s", a, b)
	}
}

func TestJSONDocumentShape(t *testing.T) {
	sw := testSweep(2)
	rs := sw.Execute(Options{Workers: 1})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, RowsOf(sw, rs, true)); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Rows   []Row  `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if doc.Schema != Schema {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if len(doc.Rows) != 2 {
		t.Fatalf("rows = %d", len(doc.Rows))
	}
	for i, row := range doc.Rows {
		if row.Fig != "test" || row.Series != "t" {
			t.Fatalf("row %d mislabelled: %+v", i, row)
		}
		if row.Y <= 0 || row.ModelledMS <= 0 {
			t.Fatalf("row %d lacks modelled values: %+v", i, row)
		}
		if row.Seed != SeedFor("test", rs[i].ID) {
			t.Fatalf("row %d seed %d not the point seed", i, row.Seed)
		}
		if row.HostMS < 0 {
			t.Fatalf("row %d negative host time: %+v", i, row)
		}
	}
	// Every required schema key must appear literally in the document.
	out := buf.String()
	for _, key := range []string{`"fig"`, `"series"`, `"x"`, `"y"`, `"host_ms"`, `"modelled_ms"`, `"seed"`} {
		if !strings.Contains(out, key) {
			t.Fatalf("document missing key %s:\n%s", key, out)
		}
	}
}

func TestRowsExcludeHostWhenAsked(t *testing.T) {
	sw := testSweep(1)
	rs := sw.Execute(Options{Workers: 1})
	for _, row := range RowsOf(sw, rs, false) {
		if row.HostMS != 0 {
			t.Fatalf("host time leaked into deterministic rows: %+v", row)
		}
	}
}

func TestOrderedNamesDeclaredFirstThenSorted(t *testing.T) {
	names := orderedNames([]string{"b", "a"}, map[string]float64{
		"a": 1, "b": 2, "z": 3, "c": 4,
	})
	want := []string{"b", "a", "c", "z"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestSinkAccumulatesInInsertionOrder(t *testing.T) {
	sw := testSweep(2)
	rs := sw.Execute(Options{Workers: 1})
	s := &Sink{}
	s.Add(sw, rs[:1])
	s.Add(sw, rs[1:])
	rows := s.Rows()
	if len(rows) != 2 || rows[0].X != 0 || rows[1].X != 1 {
		t.Fatalf("sink rows = %+v", rows)
	}
}
