package exp

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fabric"
)

// testSweep builds a sweep of n tiny 2-rank jobs exchanging one message,
// each yielding its modelled elapsed time (in us) under series "t".
func testSweep(n int) *Sweep {
	sw := &Sweep{
		Fig: Figure{
			ID: "test", Title: "executor test",
			XLabel: "i", YLabel: "us",
		},
		Series: []string{"t"},
	}
	for i := 0; i < n; i++ {
		x := float64(i)
		sw.Fig.X = append(sw.Fig.X, x)
		sw.Points = append(sw.Points, Point{
			ID: "p" + string(rune('a'+i)),
			X:  x,
			Cfg: cluster.Config{
				Nodes: 2, RanksPerNode: 1, CoresPerRank: 1,
				Profile: fabric.ProfileInfiniBand(),
			},
			Main: func(env *cluster.Env) {
				buf := make([]byte, 64*(1+int(x)))
				switch env.Rank {
				case 0:
					env.MPI.Send(buf, 1, 7)
				case 1:
					env.MPI.Recv(buf, 0, 7)
				}
			},
			Values: func(job cluster.Result) map[string]float64 {
				return map[string]float64{"t": job.Elapsed.Seconds() * 1e6}
			},
		})
	}
	return sw
}

// The engine's core contract: results arrive in point order with seeds
// derived from ids, and any worker count yields identical results.
func TestExecuteParallelMatchesSequential(t *testing.T) {
	seqFig, seq := testSweep(6).Run(Options{Workers: 1})
	parFig, par := testSweep(6).Run(Options{Workers: 8})
	if len(seq) != 6 || len(par) != 6 {
		t.Fatalf("result counts: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].ID != par[i].ID || seq[i].X != par[i].X {
			t.Fatalf("point %d: order differs: %+v vs %+v", i, seq[i], par[i])
		}
		if seq[i].Seed != SeedFor("test", seq[i].ID) {
			t.Fatalf("point %s: seed %d not derived from id", seq[i].ID, seq[i].Seed)
		}
		if seq[i].Modelled != par[i].Modelled {
			t.Fatalf("point %s: modelled time differs: %v vs %v",
				seq[i].ID, seq[i].Modelled, par[i].Modelled)
		}
		if !reflect.DeepEqual(seq[i].Values, par[i].Values) {
			t.Fatalf("point %s: values differ: %v vs %v",
				seq[i].ID, seq[i].Values, par[i].Values)
		}
		if seq[i].Modelled <= 0 || seq[i].Host < 0 {
			t.Fatalf("point %s: implausible times %v / %v",
				seq[i].ID, seq[i].Modelled, seq[i].Host)
		}
	}
	if !reflect.DeepEqual(seqFig.Series, parFig.Series) {
		t.Fatalf("figures differ:\n%+v\n%+v", seqFig.Series, parFig.Series)
	}
}

// A shared pool must bound concurrency across sweeps without changing
// results.
func TestSharedPoolMatchesPrivateExecution(t *testing.T) {
	pool := NewPool(3)
	if pool.Workers() != 3 {
		t.Fatalf("pool workers = %d", pool.Workers())
	}
	a := testSweep(4).Execute(Options{Pool: pool})
	b := testSweep(4).Execute(Options{Workers: 1})
	for i := range a {
		if a[i].Modelled != b[i].Modelled || !reflect.DeepEqual(a[i].Values, b[i].Values) {
			t.Fatalf("point %d differs under shared pool", i)
		}
	}
}

func TestSeedForStableAndDistinct(t *testing.T) {
	a := SeedFor("9", "TAGASPI/n4/b64x64")
	if a != SeedFor("9", "TAGASPI/n4/b64x64") {
		t.Fatal("SeedFor not stable")
	}
	if a == SeedFor("9", "TAGASPI/n8/b64x64") || a == SeedFor("10", "TAGASPI/n4/b64x64") {
		t.Fatal("SeedFor collides across distinct identities")
	}
	if a <= 0 {
		t.Fatalf("SeedFor must be positive, got %d", a)
	}
}

func TestExplicitSeedIsKept(t *testing.T) {
	sw := testSweep(1)
	sw.Points[0].Cfg.Seed = 12345
	rs := sw.Execute(Options{Workers: 1})
	if rs[0].Seed != 12345 {
		t.Fatalf("explicit seed overridden: %d", rs[0].Seed)
	}
}

func TestBuildPanicsOnUndeclaredSeries(t *testing.T) {
	sw := &Sweep{
		Fig:    Figure{ID: "x", X: []float64{1}},
		Series: []string{"declared"},
	}
	rs := []Result{{ID: "p", X: 1, Values: map[string]float64{"undeclared": 1}}}
	defer func() {
		if recover() == nil {
			t.Fatal("Build accepted an undeclared series")
		}
	}()
	sw.Build(rs)
}

func TestSpeedupAndEfficiency(t *testing.T) {
	thr := []float64{2, 3.6, 6.4}
	x := []float64{1, 2, 4}
	sp := Speedup(thr, 2)
	want := []float64{1, 1.8, 3.2}
	for i := range want {
		if math.Abs(sp[i]-want[i]) > 1e-12 {
			t.Fatalf("Speedup = %v", sp)
		}
	}
	eff := Efficiency(thr, x)
	wantE := []float64{1, 0.9, 0.8}
	for i := range wantE {
		if math.Abs(eff[i]-wantE[i]) > 1e-12 {
			t.Fatalf("Efficiency = %v", eff)
		}
	}
}

func TestRenderFormatsTable(t *testing.T) {
	f := Figure{
		ID: "x", Title: "test figure", XLabel: "n", YLabel: "y",
		X:      []float64{1, 2},
		Series: []Series{{Name: "a", Y: []float64{0.5, 1.5}}, {Name: "b", Y: []float64{2}}},
		Notes:  []string{"a note"},
	}
	var sb strings.Builder
	f.Render(&sb)
	out := sb.String()
	for _, want := range []string{"test figure", "a note", "n", "a", "b", "0.5", "1.5", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(8) != "8" {
		t.Fatal("integers must render without decimals")
	}
	if trimFloat(0.5) != "0.5" {
		t.Fatal("fractions must keep their digits")
	}
}
