package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
)

// Schema names the BENCH_*.json document layout; bump on breaking change.
const Schema = "bench_figures/v1"

// Row is one machine-readable sample of a sweep: the raw per-point value
// of one series (speedup/efficiency derivations happen at render time and
// are reproducible from these), plus the point's modelled elapsed time,
// its host simulation cost, and the seed it ran with.
type Row struct {
	Fig        string  `json:"fig"`
	Series     string  `json:"series"`
	X          float64 `json:"x"`
	Y          float64 `json:"y"`
	HostMS     float64 `json:"host_ms"` // 0 when host times are excluded
	ModelledMS float64 `json:"modelled_ms"`
	Seed       int64   `json:"seed"`
}

// RowsOf flattens executed sweep results into rows: one row per (point,
// series) sample, points in point order, series in declared order (names
// a point yields beyond the declaration follow, sorted). host_ms is the
// only field that is not a pure function of the sweep definition; pass
// includeHost=false to zero it and make the output byte-stable across
// runs — the determinism gate in scripts/ci.sh relies on this.
func RowsOf(sw *Sweep, rs []Result, includeHost bool) []Row {
	var rows []Row
	for _, r := range rs {
		host := 0.0
		if includeHost {
			host = math.Round(float64(r.Host.Microseconds())) / 1e3
		}
		for _, name := range orderedNames(sw.Series, r.Values) {
			rows = append(rows, Row{
				Fig: sw.Fig.ID, Series: name, X: r.X, Y: r.Values[name],
				HostMS:     host,
				ModelledMS: float64(r.Modelled.Nanoseconds()) / 1e6,
				Seed:       r.Seed,
			})
		}
	}
	return rows
}

// orderedNames returns the keys of vals: declared names first in their
// declaration order, any remainder sorted for determinism.
func orderedNames(declared []string, vals map[string]float64) []string {
	if len(vals) == 0 {
		return nil
	}
	names := make([]string, 0, len(vals))
	seen := make(map[string]bool, len(vals))
	for _, name := range declared {
		if _, ok := vals[name]; ok {
			names = append(names, name)
			seen[name] = true
		}
	}
	var extra []string
	for name := range vals {
		if !seen[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	return append(names, extra...)
}

// WriteJSON writes rows as the canonical BENCH_*.json document: a schema
// header and one row object per line (diff- and grep-friendly). Field
// order is fixed by the Row struct, float formatting by encoding/json, so
// identical rows serialize to identical bytes.
func WriteJSON(w io.Writer, rows []Row) error {
	if _, err := fmt.Fprintf(w, "{\n  \"schema\": %q,\n  \"rows\": [\n", Schema); err != nil {
		return err
	}
	for i, row := range rows {
		b, err := json.Marshal(row)
		if err != nil {
			return err
		}
		sep := ","
		if i == len(rows)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "    %s%s\n", b, sep); err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(w, "  ]\n}\n")
	return err
}

// Sink accumulates the rows of several sweeps (guarded for host-parallel
// figure generation) for one JSON document.
type Sink struct {
	// IncludeHost selects whether rows carry measured host times; leave
	// false for byte-stable output (see RowsOf).
	IncludeHost bool

	mu   sync.Mutex
	rows []Row
}

// Add appends the rows of one executed sweep.
func (s *Sink) Add(sw *Sweep, rs []Result) {
	rows := RowsOf(sw, rs, s.IncludeHost)
	s.mu.Lock()
	s.rows = append(s.rows, rows...)
	s.mu.Unlock()
}

// Rows returns the accumulated rows in insertion order.
func (s *Sink) Rows() []Row {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Row(nil), s.rows...)
}

// WriteFile writes the accumulated rows as a JSON document to path.
func (s *Sink) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, s.Rows()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
