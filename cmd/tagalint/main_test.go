package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStandaloneFailsOnUnmatchedPattern is the regression test for the
// silent-skip bug: a pattern naming a directory that does not exist (or
// holds no Go packages) must exit 2 like any other load error, not 0. A
// CI gate that typos a path must fail loudly, not pass vacuously.
func TestStandaloneFailsOnUnmatchedPattern(t *testing.T) {
	if code := standalone([]string{"./no-such-dir"}, "", "", "off"); code != 2 {
		t.Errorf("standalone(./no-such-dir) = exit %d, want 2", code)
	}
	if code := standalone([]string{"./no-such-dir/..."}, "", "", "off"); code != 2 {
		t.Errorf("standalone(./no-such-dir/...) = exit %d, want 2", code)
	}
}

// TestStandaloneFailsOnParseError checks that a package that does not
// parse is a load error (exit 2), not a package silently dropped from the
// run.
func TestStandaloneFailsOnParseError(t *testing.T) {
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "broken.go"), []byte("package broken\nfunc {"), 0o644); err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(tmp); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Fatal(err)
		}
	}()
	if code := standalone([]string{"."}, "", "", "off"); code != 2 {
		t.Errorf("standalone over an unparseable package = exit %d, want 2", code)
	}
}

// TestStandaloneCleanDir checks the happy path still exits 0 on a clean
// package (this command's own directory).
func TestStandaloneCleanDir(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the package from source; skipped in -short mode")
	}
	if code := standalone([]string{"."}, "", "", "error"); code != 0 {
		t.Errorf("standalone(.) = exit %d, want 0", code)
	}
}
