// Command tagalint runs the repository's invariant analyzers (condloop,
// detlint, doccomment, hotalloc, lockcross, poollife, simerr, taskctx)
// over Go packages. It works in two modes:
//
// Standalone, over package patterns (the tier-1 gate):
//
//	go run ./cmd/tagalint ./...
//
// As a vet tool, driven per-package by the go command:
//
//	go vet -vettool=$(go env GOPATH)/bin/tagalint ./...
//
// Exit status: 0 clean, 1 findings (standalone) or 2 findings (vet
// protocol, matching the unitchecker convention), 2 load/type errors.
// A pattern that matches no packages is a load error, never a silent
// clean run.
//
// Standalone flags: -list prints the analyzer set; -json and -sarif write
// the findings to a file (or "-" for stdout) as plain JSON or SARIF 2.1.0
// for CI ingestion.
//
// Findings can be silenced per line with a justified directive:
//
//	//lint:ignore lockcross reason the lock is module-private and uncontended
//
// Every directive must earn its keep: tagalint audits them each run and
// reports the ones that no longer silence anything, stale directives being
// misleading documentation. -stale-ignores selects the severity (warn,
// the default; error, as ci.sh runs it; or off).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/tagalint"
)

const version = "v1.1.0"

func main() {
	// The go command probes vet tools with -V=full before use.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("tagalint version %s\n", version)
		return
	}
	// It also asks for the tool's flag definitions as JSON (-flags); every
	// tagalint analyzer is always on, so there are none to report.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}

	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.String("json", "", "write findings as JSON to `file` (\"-\" for stdout)")
	sarifOut := flag.String("sarif", "", "write findings as SARIF 2.1.0 to `file` (\"-\" for stdout)")
	staleMode := flag.String("stale-ignores", "warn",
		"how to treat //lint:ignore directives that silence nothing: warn, error or off")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: tagalint [-list] [-json file] [-sarif file] [-stale-ignores mode] [package pattern ...]\n       (default pattern ./...)\n\nAnalyzers:\n")
		for _, a := range tagalint.Suite() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, firstLine(a.Doc))
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range tagalint.Suite() {
			fmt.Printf("%-10s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}
	switch *staleMode {
	case "warn", "error", "off":
	default:
		fmt.Fprintf(os.Stderr, "tagalint: -stale-ignores must be warn, error or off, got %q\n", *staleMode)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}
	os.Exit(standalone(args, *jsonOut, *sarifOut, *staleMode))
}

func standalone(patterns []string, jsonOut, sarifOut, staleMode string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tagalint:", err)
		return 2
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tagalint:", err)
		return 2
	}
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "tagalint: %s: %v\n", pkg.Path, terr)
			broken = true
		}
	}
	if broken {
		return 2
	}
	findings, sups, err := analysis.RunWithSuppressions(loader.Fset, pkgs, tagalint.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tagalint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Printf("%s\n", f)
	}

	if jsonOut != "" {
		data, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "tagalint:", err)
			return 2
		}
		if err := writeReport(jsonOut, append(data, '\n')); err != nil {
			fmt.Fprintln(os.Stderr, "tagalint:", err)
			return 2
		}
	}
	if sarifOut != "" {
		root, _, err := analysis.ModuleRoot(cwd)
		if err != nil {
			root = cwd
		}
		data, err := analysis.SARIF(findings, tagalint.Suite(), root, version)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tagalint:", err)
			return 2
		}
		if err := writeReport(sarifOut, append(data, '\n')); err != nil {
			fmt.Fprintln(os.Stderr, "tagalint:", err)
			return 2
		}
	}

	stale := analysis.Stale(sups)
	if staleMode != "off" {
		for _, s := range stale {
			fmt.Fprintf(os.Stderr, "tagalint: stale suppression (silences nothing, remove it): %s\n", s)
		}
	}

	switch {
	case len(findings) > 0:
		fmt.Fprintf(os.Stderr, "tagalint: %d finding(s)\n", len(findings))
		return 1
	case staleMode == "error" && len(stale) > 0:
		fmt.Fprintf(os.Stderr, "tagalint: %d stale suppression(s)\n", len(stale))
		return 1
	}
	return 0
}

// writeReport writes a machine-readable report to path, "-" meaning stdout.
func writeReport(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

// vetConfig is the subset of the go command's unit-checker configuration
// tagalint consumes (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ImportPath                string
	GoFiles                   []string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package as described by a go-vet cfg file.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tagalint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "tagalint:", err)
		return 2
	}
	// tagalint keeps no cross-package facts, but the go command caches
	// the vetx output if present, so write an empty one.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "tagalint:", err)
			return 2
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}
	loader := analysis.NewLoader()
	pkg, err := loader.LoadFiles(cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tagalint:", err)
		return 2
	}
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "tagalint: %s: %v\n", cfg.ImportPath, terr)
		}
		return 2
	}
	findings, err := analysis.Run(loader.Fset, []*analysis.Package{pkg}, tagalint.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tagalint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
