// Command miniamr runs the adaptive-mesh-refinement proxy (§VI-B) on the
// simulated cluster, reporting total and no-refinement (NR) throughput.
//
// Example:
//
//	miniamr -variant tagaspi -nodes 8 -vars 20
//	miniamr -variant mpi -nodes 4 -steps 20
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/apps/miniamr"
	"repro/internal/cliflag"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/obscli"
)

func main() {
	variant := flag.String("variant", "tagaspi", "mpi | tampi | tagaspi")
	nodes := flag.Int("nodes", 4, "compute nodes")
	rpn := flag.Int("rpn", 2, "ranks per node (hybrid variants)")
	cores := flag.Int("cores", 4, "cores per rank (hybrid variants)")
	mpiRPN := flag.Int("mpi-rpn", 8, "ranks per node (mpi variant)")
	vars := flag.Int("vars", 20, "computed variables")
	steps := flag.Int("steps", 20, "timesteps")
	refineEvery := flag.Int("refine", 5, "steps between mesh rebuilds")
	cells := flag.Int("cells", 8, "cells per block edge")
	maxLevel := flag.Int("maxlevel", 2, "maximum refinement level")
	profile := flag.String("profile", "omnipath", "omnipath | infiniband | ideal")
	poll := flag.Duration("poll", 10*time.Microsecond, "task-aware polling period")
	ofl := obscli.Register()
	flag.Parse()

	cliflag.RequirePositive(map[string]int{
		"nodes": *nodes, "rpn": *rpn, "cores": *cores, "mpi-rpn": *mpiRPN,
		"vars": *vars, "steps": *steps, "refine": *refineEvery, "cells": *cells,
	})
	cliflag.RequireNonNegative(map[string]int{"maxlevel": *maxLevel})

	var prof fabric.Profile
	switch *profile {
	case "omnipath":
		prof = fabric.ProfileOmniPath()
	case "infiniband":
		prof = fabric.ProfileInfiniBand()
	case "ideal":
		prof = fabric.ProfileIdeal()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}
	p := miniamr.Params{
		Grid: [3]int{4, 4, 4}, Cells: *cells, Vars: *vars,
		Steps: *steps, RefineEvery: *refineEvery, MaxLevel: *maxLevel,
		Radius: 0.45,
	}
	cfg := cluster.Config{Nodes: *nodes, Profile: prof, Seed: 2}
	switch *variant {
	case "mpi":
		cfg.RanksPerNode, cfg.CoresPerRank = *mpiRPN, 1
	case "tampi":
		cfg.RanksPerNode, cfg.CoresPerRank = *rpn, *cores
		cfg.WithTasking, cfg.WithTAMPI = true, true
		cfg.TAMPIPoll = *poll
	case "tagaspi":
		cfg.RanksPerNode, cfg.CoresPerRank = *rpn, *cores
		// The TAGASPI variant keeps TAMPI for the load-balancing stage
		// (library interoperability, §VI-B).
		cfg.WithTasking, cfg.WithTAMPI, cfg.WithTAGASPI = true, true, true
		cfg.TAMPIPoll, cfg.TAGASPIPoll = *poll, *poll
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(2)
	}

	ranks := cfg.Nodes * cfg.RanksPerNode
	col := ofl.Collector(ranks)
	if col != nil {
		cfg.Recorder = col
	}
	epochs := p.Epochs(ranks)
	leaves := 0
	for _, e := range epochs {
		if len(e.Leaves) > leaves {
			leaves = len(e.Leaves)
		}
	}
	var mu sync.Mutex
	var maxRefine time.Duration
	start := time.Now()
	res := cluster.Run(cfg, func(env *cluster.Env) {
		var out miniamr.Output
		switch *variant {
		case "mpi":
			out = miniamr.RunMPIOnly(env, p, epochs)
		case "tampi":
			out = miniamr.RunTAMPI(env, p, epochs)
		case "tagaspi":
			out = miniamr.RunTAGASPI(env, p, epochs)
		}
		mu.Lock()
		if out.RefineTime > maxRefine {
			maxRefine = out.RefineTime
		}
		mu.Unlock()
	})
	work := miniamr.Work(p, epochs)
	nr := res.Elapsed - maxRefine
	if nr <= 0 {
		nr = res.Elapsed
	}
	fmt.Printf("variant=%s nodes=%d ranks=%d vars=%d steps=%d epochs=%d peak-leaves=%d profile=%s\n",
		*variant, *nodes, ranks, *vars, *steps, len(epochs), leaves, prof.Name)
	fmt.Printf("modelled time: %v (refinement %v)   throughput: %.3f GUpdates/s (NR %.3f)   (host %v)\n",
		res.Elapsed, maxRefine, work/res.Elapsed.Seconds()/1e9, work/nr.Seconds()/1e9,
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("fabric: %d messages;  MPI time (all ranks): %v\n",
		res.Fabric.Messages, res.TotalMPITime())
	if err := ofl.Finish(os.Stdout, col, res); err != nil {
		fmt.Fprintf(os.Stderr, "observability output: %v\n", err)
		os.Exit(1)
	}
}
