// Command trace inspects Chrome trace_event JSON timelines written by the
// simulator's -trace flag (package obs): it validates their structure and
// prints a summary or the longest spans.
//
// Example:
//
//	heat -variant tagaspi -nodes 2 -trace /tmp/heat.json
//	trace /tmp/heat.json            # summary
//	trace -check /tmp/heat.json     # validate only; exit 0/1
//	trace -top 20 /tmp/heat.json    # longest spans
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	check := flag.Bool("check", false, "validate only: exit 0 if the trace is well-formed, 1 otherwise")
	top := flag.Int("top", 0, "print the N longest spans instead of the summary")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: trace [-check] [-top N] <trace.json>...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	fail := false
	for _, path := range flag.Args() {
		if flag.NArg() > 1 {
			fmt.Printf("== %s\n", path)
		}
		t, err := obs.ReadTraceFile(path)
		if err == nil {
			err = t.Validate()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %s: %v\n", path, err)
			fail = true
			continue
		}
		if *check {
			fmt.Printf("%s: ok (%d events)\n", path, len(t.TraceEvents))
			continue
		}
		if *top > 0 {
			for _, e := range t.TopSpans(*top) {
				fmt.Printf("%12.3fus  %-28s rank=%d tid=%d @%.3fus\n",
					e.Dur, e.Name, e.Pid, e.Tid, e.Ts)
			}
			continue
		}
		t.Summarize().Write(os.Stdout)
	}
	if fail {
		os.Exit(1)
	}
}
