// Command trace inspects Chrome trace_event JSON timelines written by the
// simulator's -trace flag (package obs): it validates their structure,
// prints a summary or the longest spans, and reconstructs the critical
// path with per-class blame attribution (package critpath).
//
// Example:
//
//	heat -variant tagaspi -nodes 2 -trace /tmp/heat.json
//	trace /tmp/heat.json             # summary
//	trace -check /tmp/heat.json      # validate only; exit 0/1
//	trace -top 20 /tmp/heat.json     # longest spans
//	trace -blame /tmp/heat.json      # critical-path blame report (text)
//	trace -critpath /tmp/heat.json   # same report as canonical JSON
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/critpath"
)

func main() {
	check := flag.Bool("check", false, "validate only: exit 0 if the trace is well-formed and complete, 1 otherwise")
	top := flag.Int("top", 0, "print the N longest spans instead of the summary")
	blame := flag.Bool("blame", false, "print the critical-path blame report (text)")
	critJSON := flag.Bool("critpath", false, "print the critical-path blame report as canonical JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: trace [-check] [-top N] [-blame] [-critpath] <trace.json>...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	fail := false
	for _, path := range flag.Args() {
		if flag.NArg() > 1 {
			fmt.Printf("== %s\n", path)
		}
		t, err := obs.ReadTraceFile(path)
		if err == nil {
			err = t.Validate()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %s: %v\n", path, err)
			fail = true
			continue
		}
		if *check {
			// A structurally valid trace can still be incomplete: the tracer
			// embeds an "obs:events_dropped" warning instant when events were
			// discarded for out-of-range ranks. Fail on it.
			if n, dropped := droppedEvents(t); dropped {
				fmt.Fprintf(os.Stderr, "trace: %s: %d events were dropped during recording\n", path, n)
				fail = true
				continue
			}
			fmt.Printf("%s: ok (%d events)\n", path, len(t.TraceEvents))
			continue
		}
		if *blame || *critJSON {
			rep, err := critpath.FromTraceFile(t)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace: %s: %v\n", path, err)
				fail = true
				continue
			}
			if *critJSON {
				err = rep.WriteJSON(os.Stdout)
			} else {
				err = rep.WriteText(os.Stdout)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace: %s: %v\n", path, err)
				fail = true
			}
			continue
		}
		if *top > 0 {
			for _, e := range t.TopSpans(*top) {
				fmt.Printf("%12.3fus  %-28s rank=%d tid=%d @%.3fus\n",
					e.Dur, e.Name, e.Pid, e.Tid, e.Ts)
			}
			continue
		}
		t.Summarize().Write(os.Stdout)
	}
	if fail {
		os.Exit(1)
	}
}

// droppedEvents reports whether the trace embeds the tracer's
// events-dropped warning, and the recorded drop count.
func droppedEvents(t *obs.TraceFile) (int64, bool) {
	for _, e := range t.TraceEvents {
		if e.Ph == "i" && e.Name == "obs:events_dropped" {
			n := int64(0)
			if v, ok := e.Args["v"].(float64); ok {
				n = int64(v)
			}
			return n, true
		}
	}
	return 0, false
}
