// Command streaming runs the Streaming pipeline benchmark (§VI-C) on the
// simulated cluster and reports the modelled throughput.
//
// Example:
//
//	streaming -variant tagaspi -nodes 6 -profile infiniband -block 2048
//	streaming -variant tampi -nodes 4 -block 256   # the §VI-C collapse
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps/streaming"
	"repro/internal/cliflag"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/obscli"
)

func main() {
	variant := flag.String("variant", "tagaspi", "mpi | tampi | tagaspi")
	nodes := flag.Int("nodes", 4, "pipeline stages (nodes)")
	rpn := flag.Int("rpn", 1, "ranks per node (hybrid variants)")
	cores := flag.Int("cores", 8, "cores per rank (hybrid variants)")
	mpiRPN := flag.Int("mpi-rpn", 8, "ranks per node (mpi variant)")
	chunks := flag.Int("chunks", 16, "chunks pushed through the pipeline")
	chunkElems := flag.Int("chunk", 64<<10, "elements per chunk")
	block := flag.Int("block", 1024, "block size (elements)")
	profile := flag.String("profile", "infiniband", "omnipath | infiniband | ideal")
	poll := flag.Duration("poll", time.Microsecond, "task-aware polling period")
	ofl := obscli.Register()
	flag.Parse()

	cliflag.RequirePositive(map[string]int{
		"nodes": *nodes, "rpn": *rpn, "cores": *cores, "mpi-rpn": *mpiRPN,
		"chunks": *chunks, "chunk": *chunkElems, "block": *block,
	})

	var prof fabric.Profile
	switch *profile {
	case "omnipath":
		prof = fabric.ProfileOmniPath()
	case "infiniband":
		prof = fabric.ProfileInfiniBand()
	case "ideal":
		prof = fabric.ProfileIdeal()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}
	p := streaming.Params{Chunks: *chunks, ChunkElems: *chunkElems, BlockSize: *block}
	cfg := cluster.Config{Nodes: *nodes, Profile: prof, Seed: 3}
	switch *variant {
	case "mpi":
		cfg.RanksPerNode, cfg.CoresPerRank = *mpiRPN, 1
	case "tampi":
		cfg.RanksPerNode, cfg.CoresPerRank = *rpn, *cores
		cfg.WithTasking, cfg.WithTAMPI = true, true
		cfg.TAMPIPoll = *poll
	case "tagaspi":
		cfg.RanksPerNode, cfg.CoresPerRank = *rpn, *cores
		cfg.WithTasking, cfg.WithTAGASPI = true, true
		cfg.TAGASPIPoll = *poll
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(2)
	}

	col := ofl.Collector(cfg.Nodes * cfg.RanksPerNode)
	if col != nil {
		cfg.Recorder = col
	}

	start := time.Now()
	res := cluster.Run(cfg, func(env *cluster.Env) {
		switch *variant {
		case "mpi":
			streaming.RunMPIOnly(env, p)
		case "tampi":
			streaming.RunTAMPI(env, p)
		case "tagaspi":
			streaming.RunTAGASPI(env, p)
		}
	})
	fmt.Printf("variant=%s nodes=%d chunks=%d chunk=%d block=%d profile=%s\n",
		*variant, *nodes, *chunks, *chunkElems, *block, prof.Name)
	fmt.Printf("modelled time: %v   throughput: %.3f GElements/s   (host %v)\n",
		res.Elapsed, p.Elements()/res.Elapsed.Seconds()/1e9, time.Since(start).Round(time.Millisecond))
	fmt.Printf("fabric: %d messages;  MPI time (all ranks): %v\n",
		res.Fabric.Messages, res.TotalMPITime())
	if err := ofl.Finish(os.Stdout, col, res); err != nil {
		fmt.Fprintf(os.Stderr, "observability output: %v\n", err)
		os.Exit(1)
	}
}
