// Command heat runs the Gauss–Seidel heat-equation benchmark (§VI-A) on
// the simulated cluster and reports the modelled throughput.
//
// Example:
//
//	heat -variant tagaspi -nodes 8 -rows 2048 -cols 2048 -steps 10 -block 64
//	heat -variant mpi -nodes 4 -verify
//	heat -variant tagaspi -faults 0.05    # 5% drop rate on inter-node links
//
// With -host=false the host wall-clock is omitted from the report, making
// two seeded runs byte-identical — the CI fault-determinism gate diffs
// exactly that.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps/heat"
	"repro/internal/cliflag"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/obscli"
)

func main() {
	variant := flag.String("variant", "tagaspi", "mpi | tampi | tagaspi")
	nodes := flag.Int("nodes", 4, "compute nodes")
	rpn := flag.Int("rpn", 2, "ranks per node (hybrid variants)")
	cores := flag.Int("cores", 4, "cores per rank (hybrid variants)")
	mpiRPN := flag.Int("mpi-rpn", 8, "ranks per node (mpi variant)")
	rows := flag.Int("rows", 1024, "matrix rows")
	cols := flag.Int("cols", 2048, "matrix columns")
	steps := flag.Int("steps", 10, "timesteps")
	block := flag.Int("block", 64, "block size (hybrid: square; mpi: columns)")
	profile := flag.String("profile", "omnipath", "omnipath | infiniband | ideal")
	poll := flag.Duration("poll", 10*time.Microsecond, "task-aware polling period")
	verify := flag.Bool("verify", false, "run real arithmetic and check against the serial reference")
	faults := flag.Float64("faults", 0, "inter-node drop probability for both message classes [0,1)")
	host := flag.Bool("host", true, "include host wall-clock in the report (false: byte-stable output)")
	ofl := obscli.Register()
	flag.Parse()

	cliflag.RequirePositive(map[string]int{
		"nodes": *nodes, "rpn": *rpn, "cores": *cores, "mpi-rpn": *mpiRPN,
		"rows": *rows, "cols": *cols, "steps": *steps, "block": *block,
	})

	var prof fabric.Profile
	switch *profile {
	case "omnipath":
		prof = fabric.ProfileOmniPath()
	case "infiniband":
		prof = fabric.ProfileInfiniBand()
	case "ideal":
		prof = fabric.ProfileIdeal()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}

	p := heat.Params{
		Rows: *rows, Cols: *cols, Timesteps: *steps,
		BlockRows: *block, BlockCols: *block, Verify: *verify,
	}
	cfg := cluster.Config{Nodes: *nodes, Profile: prof, Seed: 1}
	if *faults < 0 || *faults >= 1 {
		fmt.Fprintf(os.Stderr, "-faults %v outside [0,1)\n", *faults)
		os.Exit(2)
	}
	if *faults > 0 {
		cfg.Faults = fabric.FaultPlan{
			MPI:   fabric.FaultRates{Drop: *faults},
			GASPI: fabric.FaultRates{Drop: *faults},
		}
	}
	switch *variant {
	case "mpi":
		cfg.RanksPerNode, cfg.CoresPerRank = *mpiRPN, 1
		p.BlockCols = *block
	case "tampi":
		cfg.RanksPerNode, cfg.CoresPerRank = *rpn, *cores
		cfg.WithTasking, cfg.WithTAMPI = true, true
		cfg.TAMPIPoll = *poll
	case "tagaspi":
		cfg.RanksPerNode, cfg.CoresPerRank = *rpn, *cores
		cfg.WithTasking, cfg.WithTAGASPI = true, true
		cfg.TAGASPIPoll = *poll
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(2)
	}

	col := ofl.Collector(*nodes * cfg.RanksPerNode)
	if col != nil {
		cfg.Recorder = col
	}

	start := time.Now()
	res := cluster.Run(cfg, func(env *cluster.Env) {
		switch *variant {
		case "mpi":
			heat.RunMPIOnly(env, p)
		case "tampi":
			heat.RunTAMPI(env, p)
		case "tagaspi":
			heat.RunTAGASPI(env, p)
		}
	})
	fmt.Printf("variant=%s nodes=%d ranks=%d matrix=%dx%d steps=%d block=%d profile=%s\n",
		*variant, *nodes, *nodes*cfg.RanksPerNode, *rows, *cols, *steps, *block, prof.Name)
	hostNote := ""
	if *host {
		hostNote = fmt.Sprintf("   (host %v)", time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("modelled time: %v   throughput: %.3f GUpdates/s%s\n",
		res.Elapsed, p.Updates()/res.Elapsed.Seconds()/1e9, hostNote)
	fmt.Printf("fabric: %d messages, %.1f MiB;  MPI time (all ranks): %v\n",
		res.Fabric.Messages, float64(res.Fabric.Bytes)/(1<<20), res.TotalMPITime())
	if *faults > 0 {
		var retries, gaveup, qerrs float64
		for _, s := range res.Snapshots {
			for _, smp := range s.Samples {
				switch smp.Name {
				case "tagaspi_retries":
					retries += smp.Value
				case "tagaspi_gaveup":
					gaveup += smp.Value
				case "gaspi_queue_errors":
					qerrs += smp.Value
				}
			}
		}
		fmt.Printf("faults: %d injected;  gaspi queue errors: %.0f;  tagaspi retries: %.0f, gave up: %.0f\n",
			res.Fabric.Faults, qerrs, retries, gaveup)
	}
	if *verify {
		fmt.Println("verify: arithmetic ran inside the simulation; use the test suite for the bit-exact check")
	}
	if err := ofl.Finish(os.Stdout, col, res); err != nil {
		fmt.Fprintf(os.Stderr, "observability output: %v\n", err)
		os.Exit(1)
	}
}
